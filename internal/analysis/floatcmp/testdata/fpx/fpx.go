// Fixture loaded under the repro/internal/fpx import path: the
// allowlisted helper package may use raw float equality — that is its
// job.
package fpx

// Eq mirrors the real helper; no diagnostics expected anywhere here.
func Eq(a, b float64) bool { return a == b }

// Zero mirrors the real helper.
func Zero(x float64) bool { return x == 0 }
