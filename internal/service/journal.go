package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	reap "repro"
	"repro/internal/journal"
	"repro/wire"
)

// This file is the crash-safety layer of the daemon: every state
// mutation the service acknowledges (device reports, telemetry steps,
// alpha changes) is framed as a journalEvent and appended to an
// internal/journal store before the response goes out, so a restart —
// even an unclean one — reconstructs the fleet by loading the newest
// snapshot and replaying the logged tail through the same deterministic
// apply paths the live handlers use. Solves are pure and never
// journaled.
//
// Ordering contract: an event is appended while the locks of every
// shard it mutated are still held (a step or alpha change holds one; a
// report group holds all the shards it touched, acquired in ascending
// order), so the journal's per-shard subsequence matches the order
// mutations actually ran in. Replay applies events in journal order,
// which therefore replays each shard's history exactly.

// Fsync policies: how often the journal flushes to disk. Appends always
// reach the kernel before a request is acknowledged (surviving kill
// -9); the policy only bounds exposure to power loss.
const (
	FsyncAlways   = "always"   // fdatasync per append
	FsyncInterval = "interval" // fdatasync on a timer (the default)
	FsyncNever    = "never"    // no explicit sync; kernel writeback only
)

// Journal event ops.
const (
	opReport = "report"
	opStep   = "step"
	opAlpha  = "alpha"
)

// journalEvent is one logged state mutation. Exactly one of the
// op-specific field sets is populated.
type journalEvent struct {
	Op string
	// opReport: the reports applied in one locked group.
	Reports []wire.DeviceReport
	// opStep / opAlpha: the device acted on.
	Device int
	// opStep: the harvest the device planned with.
	HarvestJ *float64
	// opAlpha: the new accuracy-time weight.
	Alpha *float64
}

// Journal event payload encoding: a compact binary format rather than
// JSON, because the report path encodes inside its shard locks on every
// acknowledged batch and float formatting alone would blow the ≤15%
// journaling budget (see BenchmarkReportPath). Layout:
//
//	byte 0: payload format version (evFormat)
//	byte 1: op tag (evReport / evStep / evAlpha)
//	evReport: uvarint count, then per report
//	          [uvarint device | 8B little-endian float64 consumed_j]
//	evStep:   uvarint device, 8B little-endian float64 harvest_j
//	evAlpha:  uvarint device, 8B little-endian float64 alpha
//
// Floats travel as raw IEEE-754 bits — exact round-trip, no formatting
// cost. Integrity (CRC) and record boundaries (length prefix) belong to
// the framing layer in internal/journal; this layer only owns meaning.
// Snapshots stay JSON: they are written once per compaction, and an
// operator debugging a journal directory can read them.
const (
	evFormat = 1
	evReport = 1
	evStep   = 2
	evAlpha  = 3
)

// encodeEvent appends ev's binary encoding to buf and returns it.
func encodeEvent(buf []byte, ev *journalEvent) ([]byte, error) {
	switch ev.Op {
	case opReport:
		buf = append(buf, evFormat, evReport)
		buf = binary.AppendUvarint(buf, uint64(len(ev.Reports)))
		for _, rep := range ev.Reports {
			if rep.Device < 0 {
				return nil, fmt.Errorf("journal event: negative device %d", rep.Device)
			}
			buf = binary.AppendUvarint(buf, uint64(rep.Device))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rep.ConsumedJ))
		}
	case opStep:
		if ev.Device < 0 || ev.HarvestJ == nil {
			return nil, fmt.Errorf("journal step event: device %d, harvest %v", ev.Device, ev.HarvestJ)
		}
		buf = append(buf, evFormat, evStep)
		buf = binary.AppendUvarint(buf, uint64(ev.Device))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(*ev.HarvestJ))
	case opAlpha:
		if ev.Device < 0 || ev.Alpha == nil {
			return nil, fmt.Errorf("journal alpha event: device %d, alpha %v", ev.Device, ev.Alpha)
		}
		buf = append(buf, evFormat, evAlpha)
		buf = binary.AppendUvarint(buf, uint64(ev.Device))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(*ev.Alpha))
	default:
		return nil, fmt.Errorf("journal event: unknown op %q", ev.Op)
	}
	return buf, nil
}

// decodeEvent parses one binary event payload, strictly: every byte
// must be consumed, exactly as the service's wire layer treats JSON.
func decodeEvent(payload []byte) (*journalEvent, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("journal event: %d-byte payload", len(payload))
	}
	if payload[0] != evFormat {
		return nil, fmt.Errorf("journal event: unknown format %d", payload[0])
	}
	tag, rest := payload[1], payload[2:]
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("journal event: truncated varint")
		}
		rest = rest[n:]
		return v, nil
	}
	readFloat := func() (float64, error) {
		if len(rest) < 8 {
			return 0, fmt.Errorf("journal event: truncated float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
		return f, nil
	}
	ev := &journalEvent{}
	switch tag {
	case evReport:
		ev.Op = opReport
		count, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if count > uint64(len(rest)) { // each report needs ≥9 bytes
			return nil, fmt.Errorf("journal event: implausible report count %d", count)
		}
		ev.Reports = make([]wire.DeviceReport, count)
		for i := range ev.Reports {
			device, err := readUvarint()
			if err != nil {
				return nil, err
			}
			consumed, err := readFloat()
			if err != nil {
				return nil, err
			}
			ev.Reports[i] = wire.DeviceReport{Device: int(device), ConsumedJ: consumed}
		}
	case evStep, evAlpha:
		device, err := readUvarint()
		if err != nil {
			return nil, err
		}
		f, err := readFloat()
		if err != nil {
			return nil, err
		}
		ev.Device = int(device)
		if tag == evStep {
			ev.Op = opStep
			ev.HarvestJ = &f
		} else {
			ev.Op = opAlpha
			ev.Alpha = &f
		}
	default:
		return nil, fmt.Errorf("journal event: unknown op tag %d", tag)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("journal event: %d trailing bytes", len(rest))
	}
	return ev, nil
}

// journalSnapshot is the compaction payload: the complete mutable state
// of the service at one sequence number. Counters for journaled
// mutations reconcile exactly across a crash (snapshot base + replay);
// pure-solve counters persist only as of the last snapshot.
type journalSnapshot struct {
	V           int                    `json:"v"`
	Fingerprint string                 `json:"fingerprint"`
	Solves      uint64                 `json:"solves"`
	BatchItems  uint64                 `json:"batch_items"`
	Steps       uint64                 `json:"steps"`
	Reports     uint64                 `json:"reports"`
	AlphaSets   uint64                 `json:"alpha_sets"`
	States      []reap.ControllerState `json:"states"` // index = global device
}

// fingerprint identifies the configuration a journal belongs to. A
// journal written under one fleet shape must not silently replay into
// another: device indices and initial conditions would no longer mean
// the same thing, so boot refuses with an explicit error instead.
func (s *Service) fingerprint() string {
	return fmt.Sprintf("v1 devices=%d solver=%q battery=%g/%g",
		s.cfg.Devices, s.cfg.Solver, s.cfg.BatteryJ, s.cfg.CapacityJ)
}

// openJournal runs the two-phase boot: Open loads the newest snapshot,
// restoreSnapshot rebuilds fleet state and counters from it, Start
// replays the logged tail through replayEvent, and a fresh compaction
// re-bases the journal so the next boot replays only what this process
// appends. Called from New before the service serves anything.
func (s *Service) openJournal() error {
	store, err := journal.Open(s.cfg.JournalDir, journal.Options{
		SyncEveryAppend: s.cfg.FsyncPolicy == FsyncAlways,
		RetainSegments:  s.cfg.RetainSegments,
	})
	if err != nil {
		return err
	}
	if payload, _ := store.Snapshot(); payload != nil {
		if err := s.restoreSnapshot(payload); err != nil {
			return err
		}
	}
	if err := store.Start(s.replayEvent); err != nil {
		return err
	}
	s.store = store
	if err := s.compact(); err != nil {
		return fmt.Errorf("boot compaction: %w", err)
	}
	return nil
}

// restoreSnapshot rebuilds per-device controller state and the
// journaled counters from a snapshot payload.
func (s *Service) restoreSnapshot(payload []byte) error {
	var snap journalSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("journal snapshot: %w", err)
	}
	if snap.Fingerprint != s.fingerprint() {
		return fmt.Errorf("%w: journal %s belongs to %q, this service is %q",
			reap.ErrInvalidConfig, s.cfg.JournalDir, snap.Fingerprint, s.fingerprint())
	}
	if len(snap.States) != s.cfg.Devices {
		return fmt.Errorf("%w: journal snapshot holds %d devices, service owns %d",
			reap.ErrInvalidConfig, len(snap.States), s.cfg.Devices)
	}
	for device, st := range snap.States {
		ctl, err := s.deviceFor(device)
		if err != nil {
			return err
		}
		if err := ctl.Restore(st); err != nil {
			return fmt.Errorf("restoring device %d: %w", device, err)
		}
	}
	s.solves.Store(snap.Solves)
	s.batchItems.Store(snap.BatchItems)
	s.steps.Store(snap.Steps)
	s.reports.Store(snap.Reports)
	s.alphaSets.Store(snap.AlphaSets)
	return nil
}

// deviceFor resolves a global device index to its controller. Boot-time
// only — no shard locking; the service is not serving yet.
func (s *Service) deviceFor(device int) (*reap.Controller, error) {
	sh, err := s.shardFor(device)
	if err != nil {
		return nil, err
	}
	return sh.fleet.Device(device - sh.lo)
}

// replayEvent applies one logged event during boot. Only successful
// mutations were journaled, so apply errors here mean the event is
// re-failing deterministically (skipped, exactly as it failed live);
// structural errors — unknown ops, devices outside the fleet — mean a
// journal this configuration cannot own, and abort the boot.
func (s *Service) replayEvent(payload []byte) error {
	ev, err := decodeEvent(payload)
	if err != nil {
		return fmt.Errorf("malformed journal event: %w", err)
	}
	return s.applyEvent(ev)
}

// applyEvent applies one decoded journal event to the fleet — shared by
// boot replay (no locks: not serving yet) and the follower's stream
// applier (which holds the touched shards' locks; see replication.go).
func (s *Service) applyEvent(ev *journalEvent) error {
	switch ev.Op {
	case opReport:
		for _, rep := range ev.Reports {
			ctl, err := s.deviceFor(rep.Device)
			if err != nil {
				return fmt.Errorf("replaying report: %w", err)
			}
			if ctl.Report(rep.ConsumedJ) == nil {
				s.reports.Add(1)
			}
		}
	case opStep:
		if ev.HarvestJ == nil {
			return fmt.Errorf("journal step event without harvest")
		}
		ctl, err := s.deviceFor(ev.Device)
		if err != nil {
			return fmt.Errorf("replaying step: %w", err)
		}
		if _, err := ctl.Step(*ev.HarvestJ); err == nil {
			s.steps.Add(1)
		}
	case opAlpha:
		if ev.Alpha == nil {
			return fmt.Errorf("journal alpha event without alpha")
		}
		ctl, err := s.deviceFor(ev.Device)
		if err != nil {
			return fmt.Errorf("replaying alpha: %w", err)
		}
		if ctl.SetAlpha(*ev.Alpha) == nil {
			s.alphaSets.Add(1)
		}
	default:
		return fmt.Errorf("unknown journal op %q", ev.Op)
	}
	return nil
}

// journalAppend logs one event, a no-op when journaling is off. Callers
// hold the lock of every shard the event mutated, which is what pins
// per-shard journal order to apply order. On a replicating primary the
// append routes through the hub, which ships the event to every live
// follower before returning — acked ⇒ journaled ⇒ shipped.
func (s *Service) journalAppend(ev *journalEvent) *wire.Error {
	if s.store == nil {
		return nil
	}
	payload, err := encodeEvent(make([]byte, 0, 4+18*(1+len(ev.Reports))), ev)
	if err != nil {
		return wire.Errorf(wire.CodeInternal, "encoding journal event: %v", err)
	}
	var aerr error
	if s.hub != nil {
		_, aerr = s.hub.Append(payload)
	} else {
		_, aerr = s.store.Append(payload)
	}
	if aerr != nil {
		if errors.Is(aerr, journal.ErrDiskFull) {
			// Out of disk: flip to sticky read-only degraded mode — this
			// mutation and all later ones answer 503 degraded (applied but
			// unacknowledged, the same at-least-once contract as any
			// journal failure) while stateless solves keep serving.
			s.degraded.Store(true)
			return wire.Errorf(wire.CodeDegraded, "journal disk full, node now read-only: %v", aerr)
		}
		// The mutation is applied but not durable: answer 500 so the
		// client does not treat it as acknowledged.
		return wire.Errorf(wire.CodeInternal, "journal append: %v", aerr)
	}
	return nil
}

// buildSnapshot serializes the complete service state. Callers must
// hold every shard lock (see compact) so the snapshot is a consistent
// cut: no mutation can land between a shard's capture and the sequence
// number the snapshot is recorded at.
func (s *Service) buildSnapshot() ([]byte, error) {
	snap := journalSnapshot{
		V:           wire.Version,
		Fingerprint: s.fingerprint(),
		Solves:      s.solves.Load(),
		BatchItems:  s.batchItems.Load(),
		Steps:       s.steps.Load(),
		Reports:     s.reports.Load(),
		AlphaSets:   s.alphaSets.Load(),
		States:      make([]reap.ControllerState, s.cfg.Devices),
	}
	for _, sh := range s.shards {
		for local := 0; local < sh.hi-sh.lo; local++ {
			ctl, err := sh.fleet.Device(local)
			if err != nil {
				return nil, err
			}
			snap.States[sh.lo+local] = ctl.State()
		}
	}
	return json.Marshal(&snap)
}

// compact writes a snapshot of current state and re-bases the journal
// on it. It stops the world — every shard lock is held for the
// duration — so the snapshot is exactly the state at the recorded
// sequence number; the pause is one full-fleet state serialization.
func (s *Service) compact() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	payload, err := s.buildSnapshot()
	if err != nil {
		return err
	}
	if err := s.store.Compact(payload); err != nil {
		return err
	}
	s.appendsAtCompact.Store(s.store.Stats().Appended)
	return nil
}

// maintain is the journal's background loop: under the "interval"
// fsync policy it flushes appended records to disk each tick, and under
// every policy it compacts once enough events accumulate past the last
// snapshot. It is the one long-lived goroutine the service owns, and it
// runs behind a resilience.Go recover boundary (enforced by the reapvet
// recoverboundary analyzer).
func (s *Service) maintain() {
	ticker := time.NewTicker(s.cfg.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if s.cfg.FsyncPolicy == FsyncInterval {
				_ = s.store.Sync()
			}
			if n := s.store.Stats().Appended; n-s.appendsAtCompact.Load() >= s.cfg.SnapshotEvery {
				_ = s.compact()
			}
		}
	}
}

// Close stops the replication tail and hub, stops the maintenance
// loop, compacts a final snapshot so the next boot replays nothing, and
// closes the journal. Safe to call more than once; a Service without a
// journal closes trivially.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		s.promoteMu.Lock()
		s.stopTailLocked()
		s.promoteMu.Unlock()
		if s.hub != nil {
			s.hub.Close() // detaches streams; their handlers return
		}
		if s.stop != nil {
			close(s.stop)
		}
		if s.store == nil {
			return
		}
		if err := s.compact(); err != nil {
			_ = s.store.Close()
			s.closeErr = err
			return
		}
		s.closeErr = s.store.Close()
	})
	return s.closeErr
}
