// Package forecast predicts hourly harvested energy for the lookahead
// planner. It implements the exponentially-weighted per-slot estimator of
// Kansal et al. ("Power Management in Energy Harvesting Sensor Networks"),
// the reference the paper cites for its energy-allocation layer: solar
// harvest is strongly diurnal, so the best simple predictor for hour h of
// the day is a decayed average of the harvest observed at hour h on
// previous days.
package forecast

import (
	"fmt"
	"math"
)

// SlotsPerDay is the diurnal period of the estimator.
const SlotsPerDay = 24

// EWMA is the per-slot exponentially weighted moving average predictor.
type EWMA struct {
	// Lambda is the update weight in (0,1]: higher adapts faster but
	// tracks weather noise; Kansal et al. use ~0.5 for solar.
	Lambda float64

	slots [SlotsPerDay]float64
	seen  [SlotsPerDay]bool
	next  int // next slot to observe (hour of day)
}

// NewEWMA creates a predictor starting at hour 0 of the day.
func NewEWMA(lambda float64) (*EWMA, error) {
	if lambda <= 0 || lambda > 1 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("forecast: lambda %v outside (0,1]", lambda)
	}
	return &EWMA{Lambda: lambda}, nil
}

// Observe records the harvest (J) of the current hour and advances the
// clock.
func (e *EWMA) Observe(harvest float64) error {
	if harvest < 0 || math.IsNaN(harvest) {
		return fmt.Errorf("forecast: harvest %v must be non-negative", harvest)
	}
	s := e.next % SlotsPerDay
	if e.seen[s] {
		e.slots[s] = (1-e.Lambda)*e.slots[s] + e.Lambda*harvest
	} else {
		e.slots[s] = harvest
		e.seen[s] = true
	}
	e.next++
	return nil
}

// Predict returns the expected harvest for the next k hours, starting at
// the hour Observe will record next. Slots never observed predict zero.
func (e *EWMA) Predict(k int) []float64 {
	if k <= 0 {
		return nil
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = e.slots[(e.next+i)%SlotsPerDay]
	}
	return out
}

// Hour returns the hour-of-day the next observation belongs to.
func (e *EWMA) Hour() int { return e.next % SlotsPerDay }

// MAE evaluates the predictor against a trace: it replays the trace,
// comparing each one-step-ahead prediction with the observation before
// folding it in, and returns the mean absolute error in joules. The first
// day is a warm-up and is excluded.
func (e *EWMA) MAE(trace []float64) (float64, error) {
	var sum float64
	n := 0
	for i, h := range trace {
		if i >= SlotsPerDay {
			pred := e.Predict(1)[0]
			sum += math.Abs(pred - h)
			n++
		}
		if err := e.Observe(h); err != nil {
			return 0, err
		}
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}
