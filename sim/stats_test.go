package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// oraclePercentile is an independent nearest-rank implementation: sort a
// copy, take the ceiling-rounded rank. Deliberately written differently
// from Percentile (which indexes a pre-sorted slice with clamping) so a
// shared bug cannot hide.
func oraclePercentile(samples []float64, q float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Floor(q*float64(len(s)) + 0.5))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Percentile must agree with the sort-based oracle over random samples
// of every small size, with heavy ties, across the quantiles the
// Summary reports and the reapload latency path uses.
func TestPercentileMatchesOracle(t *testing.T) {
	quantiles := []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1}
	rng := rand.New(rand.NewSource(42))
	for n := 1; n <= 60; n++ {
		samples := make([]float64, n)
		for i := range samples {
			// Coarse quantization forces ties in nearly every sample.
			samples[i] = math.Floor(rng.Float64()*8) / 8
		}
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, q := range quantiles {
			got := Percentile(sorted, q)
			want := oraclePercentile(samples, q)
			if got != want {
				t.Fatalf("n=%d q=%v: Percentile=%v oracle=%v (sorted %v)", n, q, got, want, sorted)
			}
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty sample: got %v, want 0", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := Percentile([]float64{7}, q); got != 7 {
			t.Fatalf("single sample at q=%v: got %v, want 7", q, got)
		}
	}
	// All-ties: every quantile is the tied value.
	ties := []float64{3, 3, 3, 3, 3}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := Percentile(ties, q); got != 3 {
			t.Fatalf("tied sample at q=%v: got %v", q, got)
		}
	}
}

func TestSummarize(t *testing.T) {
	d, err := Summarize(nil)
	if err != nil || d != (Distribution{}) {
		t.Fatalf("empty sample: got %+v, %v", d, err)
	}
	d, err = Summarize([]float64{2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 3 || d.Mean != 2 || d.Min != 1 || d.Max != 3 || d.P50 != 2 {
		t.Fatalf("basic sample: got %+v", d)
	}
	// The input must not be reordered.
	in := []float64{5, 1, 4}
	if _, err := Summarize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 5 || in[1] != 1 || in[2] != 4 {
		t.Fatalf("Summarize mutated its input: %v", in)
	}
	if _, err := Summarize([]float64{1, math.NaN()}); !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("NaN sample: got %v, want ErrInvalidScenario", err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-1, 0, 0.04, 0.5, 0.96, 2, math.NaN()}, 0, 1, 20)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram dropped samples: %d of 7 counted (%v)", total, h.Counts)
	}
	// Low tail and NaN land in the first bucket, high tail in the last.
	if h.Counts[0] != 4 { // -1, 0, 0.04, NaN
		t.Fatalf("first bucket holds %d, want 4 (%v)", h.Counts[0], h.Counts)
	}
	if h.Counts[19] != 2 { // 0.96, 2
		t.Fatalf("last bucket holds %d, want 2 (%v)", h.Counts[19], h.Counts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(n=0) did not panic")
		}
	}()
	NewHistogram(nil, 0, 1, 0)
}

func TestMeanCI(t *testing.T) {
	// Constant samples: zero-width interval at the mean.
	lo, hi, err := MeanCI([]float64{4, 4, 4, 4}, 0.95)
	if err != nil || lo != 4 || hi != 4 {
		t.Fatalf("constant samples: [%v, %v], %v", lo, hi, err)
	}
	samples := []float64{1, 2, 3, 4, 5}
	lo, hi, err = MeanCI(samples, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if mean := 3.0; lo >= mean || hi <= mean || math.Abs((lo+hi)/2-mean) > 1e-12 {
		t.Fatalf("interval [%v, %v] not centered on the mean %v", lo, hi, mean)
	}
	// Higher confidence must widen the interval.
	lo99, hi99, err := MeanCI(samples, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if hi99-lo99 <= hi-lo {
		t.Fatalf("99%% interval [%v, %v] no wider than 95%% [%v, %v]", lo99, hi99, lo, hi)
	}
	for name, call := range map[string]func() error{
		"one sample":     func() error { _, _, err := MeanCI([]float64{1}, 0.95); return err },
		"zero conf":      func() error { _, _, err := MeanCI(samples, 0); return err },
		"full conf":      func() error { _, _, err := MeanCI(samples, 1); return err },
		"NaN sample":     func() error { _, _, err := MeanCI([]float64{1, math.NaN()}, 0.95); return err },
		"empty":          func() error { _, _, err := MeanCI(nil, 0.95); return err },
		"negative conf":  func() error { _, _, err := MeanCI(samples, -0.5); return err },
		"overunity conf": func() error { _, _, err := MeanCI(samples, 1.5); return err },
	} {
		if err := call(); !errors.Is(err, ErrInvalidScenario) {
			t.Errorf("%s: got %v, want ErrInvalidScenario", name, err)
		}
	}
}
