// Command reapload is the load generator for reapd: it drives the
// solve endpoints at full tilt from a pool of keep-alive connections,
// measures per-request latency, and renders a benchmark document —
// BENCH_serve.json, the serving-path counterpart of BENCH_solve.json.
//
// Usage:
//
//	reapload [-addr 127.0.0.1:8080] [-duration 10s] [-conns 4]
//	         [-batch 64] [-solver ""] [-tenant bench]
//	         [-out BENCH_serve.json] [-max-p99 0]
//
// With -batch 1 every request is a POST /v1/solve; larger batches go
// through /v1/batch-solve with that many items per request (one item =
// one solve, the unit the rate limiter charges and the solves/sec
// figure counts). Budgets cycle through a fixed spread covering every
// operating region of the paper's configuration, so the server sees
// realistic key diversity rather than one hot budget.
//
// -max-p99 makes reapload an assertion: if the measured p99 per-request
// latency exceeds it, the run exits 1 — the CI serve-smoke job's gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/wire"
)

type stats struct {
	requests  int
	solves    int
	errors    int
	latencies []time.Duration
}

type document struct {
	Addr       string  `json:"addr"`
	Batch      int     `json:"batch"`
	Conns      int     `json:"conns"`
	DurationS  float64 `json:"duration_s"`
	Requests   int     `json:"requests"`
	Solves     int     `json:"solves"`
	Errors     int     `json:"errors"`
	SolvesPerS float64 `json:"solves_per_sec"`
	Latency    latency `json:"request_latency_us"`
}

type latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("reapload: ")

	addr := flag.String("addr", "127.0.0.1:8080", "reapd address (host:port)")
	duration := flag.Duration("duration", 10*time.Second, "measurement window")
	conns := flag.Int("conns", 4, "concurrent connections")
	batch := flag.Int("batch", 64, "solves per request (1 = /v1/solve singles)")
	solver := flag.String("solver", "", "solver backend to request (default: server default)")
	tenant := flag.String("tenant", "bench", "X-Tenant header value")
	out := flag.String("out", "", "write the benchmark document to this file (default stdout only)")
	maxP99 := flag.Duration("max-p99", 0, "fail (exit 1) if request p99 exceeds this (0 = no gate)")
	flag.Parse()
	if *batch < 1 || *conns < 1 {
		log.Fatal("batch and conns must be positive")
	}

	payloads, path := buildPayloads(*batch, *solver)
	transport := &http.Transport{
		MaxIdleConns:        *conns * 2,
		MaxIdleConnsPerHost: *conns * 2,
	}
	client := &http.Client{Transport: transport}
	url := "http://" + *addr + path

	// Warm connections and verify the server speaks our schema before
	// the measured window.
	if err := probe(client, url, *tenant, payloads[0]); err != nil {
		log.Fatalf("probe %s: %v", url, err)
	}

	deadline := time.Now().Add(*duration)
	results := make([]stats, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &results[w]
			for i := 0; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				err := post(client, url, *tenant, payloads[(w+i)%len(payloads)])
				st.latencies = append(st.latencies, time.Since(t0))
				st.requests++
				if err != nil {
					st.errors++
					continue
				}
				st.solves += *batch
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total stats
	for i := range results {
		total.requests += results[i].requests
		total.solves += results[i].solves
		total.errors += results[i].errors
		total.latencies = append(total.latencies, results[i].latencies...)
	}
	if total.requests == 0 {
		log.Fatal("no requests completed")
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	doc := document{
		Addr:       *addr,
		Batch:      *batch,
		Conns:      *conns,
		DurationS:  elapsed.Seconds(),
		Requests:   total.requests,
		Solves:     total.solves,
		Errors:     total.errors,
		SolvesPerS: float64(total.solves) / elapsed.Seconds(),
		Latency: latency{
			Mean: mean(total.latencies),
			P50:  percentile(total.latencies, 0.50),
			P90:  percentile(total.latencies, 0.90),
			P99:  percentile(total.latencies, 0.99),
			P999: percentile(total.latencies, 0.999),
			Max:  us(total.latencies[len(total.latencies)-1]),
		},
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	os.Stdout.Write(raw)
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *maxP99 > 0 && doc.Latency.P99 > us(*maxP99) {
		log.Fatalf("p99 %.0f µs exceeds gate %v", doc.Latency.P99, *maxP99)
	}
}

// buildPayloads pre-encodes a cycle of request bodies whose budgets
// sweep the dead region through saturation (0–11 J for the paper's
// configuration), so consecutive requests exercise distinct solves.
func buildPayloads(batch int, solver string) (payloads [][]byte, path string) {
	budget := func(i int) float64 { return 11.0 * float64(i%97) / 97 }
	const variants = 16
	for v := 0; v < variants; v++ {
		var body any
		if batch == 1 {
			body = &wire.SolveRequest{V: wire.Version, BudgetJ: budget(v), Solver: solver}
			path = "/v1/solve"
		} else {
			items := make([]wire.SolveItem, batch)
			for i := range items {
				items[i] = wire.SolveItem{BudgetJ: budget(v*batch + i), Solver: solver}
			}
			body = &wire.BatchSolveRequest{V: wire.Version, Items: items}
			path = "/v1/batch-solve"
		}
		raw, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		payloads = append(payloads, raw)
	}
	return payloads, path
}

func post(client *http.Client, url, tenant string, payload []byte) error {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	// Drain so the connection is reusable; the payload is not parsed on
	// the hot path — correctness is the service tests' job, throughput
	// is ours.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// probe sends one request outside the measured window and surfaces its
// body on failure, so a misconfigured run dies with the server's error
// instead of a thousand status-4xx counts.
func probe(client *http.Client, url, tenant string, payload []byte) error {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func mean(ds []time.Duration) float64 {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return us(sum) / float64(len(ds))
}

// percentile reads the q-quantile from sorted latencies using the
// nearest-rank method.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return us(sorted[i])
}
