package eval

import (
	"fmt"

	"repro/internal/har"
	"repro/internal/synth"
)

// Table2Row is one characterized design point, mirroring the columns of
// Table 2 in the paper.
type Table2Row struct {
	Name          string
	Description   string
	AccuracyPct   float64
	AccelFeatMs   float64
	StretchFeatMs float64
	NNMs          float64
	TotalMs       float64
	MCUEnergyMJ   float64
	SensorMJ      float64
	EnergyMJ      float64
	PowerMW       float64
}

// Table2Result regenerates Table 2 from the synthetic corpus and the
// component energy model.
type Table2Result struct {
	Rows []Table2Row
	// PaperAccuracyPct are the published accuracies for side-by-side
	// comparison: 94, 93, 92, 90, 76.
	PaperAccuracyPct []float64
}

// Table2 trains the five Pareto design points on a fresh paper-scale
// corpus and prices them with the calibrated energy model.
func Table2() (*Table2Result, error) {
	ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
	if err != nil {
		return nil, err
	}
	return Table2On(ds)
}

// Table2On is Table2 against a caller-provided corpus (tests use smaller
// ones).
func Table2On(ds *synth.Dataset) (*Table2Result, error) {
	points, err := har.Characterize(ds, har.PaperFive())
	if err != nil {
		return nil, err
	}
	res := &Table2Result{PaperAccuracyPct: []float64{94, 93, 92, 90, 76}}
	for _, p := range points {
		b := p.Breakdown
		res.Rows = append(res.Rows, Table2Row{
			Name: p.Spec.Name,
			Description: fmt.Sprintf("axes=%s sense=%.0f%% accel=%v stretch=%v",
				p.Spec.Features.Axes, 100*p.Spec.Features.SensingFraction,
				p.Spec.Features.AccelFeat, p.Spec.Features.StretchFeat),
			AccuracyPct:   100 * p.Accuracy,
			AccelFeatMs:   1e3 * b.TimeAccelFeatures,
			StretchFeatMs: 1e3 * b.TimeStretchFeatures,
			NNMs:          1e3 * b.TimeNN,
			TotalMs:       1e3 * b.TimeTotal,
			MCUEnergyMJ:   1e3 * b.MCUEnergy(),
			SensorMJ:      1e3 * b.SensorEnergy(),
			EnergyMJ:      1e3 * b.Total(),
			PowerMW:       1e3 * b.Power(),
		})
	}
	return res, nil
}

// Render prints the table in the paper's column order.
func (r *Table2Result) Render() string {
	t := &table{header: []string{
		"DP", "acc%", "paper%", "accel(ms)", "stretch(ms)", "nn(ms)",
		"total(ms)", "mcu(mJ)", "sensor(mJ)", "energy(mJ)", "power(mW)",
	}}
	for i, row := range r.Rows {
		paper := ""
		if i < len(r.PaperAccuracyPct) {
			paper = f1(r.PaperAccuracyPct[i])
		}
		t.add(row.Name, f1(row.AccuracyPct), paper,
			f2(row.AccelFeatMs), f2(row.StretchFeatMs), f2(row.NNMs),
			f2(row.TotalMs), f2(row.MCUEnergyMJ), f2(row.SensorMJ),
			f2(row.EnergyMJ), f2(row.PowerMW))
	}
	return "Table 2: design point characterization (simulated corpus + component energy model)\n" + t.String()
}
