// Package resilience holds the fault-tolerance primitives reapd
// composes around its handlers: recover boundaries for goroutines and
// shard operations, a panic-counting quarantine breaker, deadline
// derivation from request headers, and an in-flight admission gate for
// overload shedding. The chaos middleware (chaos.go) injects the same
// faults deterministically so tests and load runs can prove the
// boundaries hold.
//
// The reapvet recoverboundary analyzer enforces that internal/service
// never spawns a bare goroutine: every `go` there must route through Go
// so a panic in background work is counted and contained instead of
// killing the daemon.
package resilience

import (
	"sync/atomic"
)

// Go runs fn on a new goroutine behind a recover boundary. A panic is
// swallowed and handed to onPanic (which may be nil) together with the
// recovered value; the goroutine then exits instead of crashing the
// process. name labels the goroutine for the onPanic observer.
func Go(name string, onPanic func(name string, recovered any), fn func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil && onPanic != nil {
				onPanic(name, r)
			}
		}()
		fn()
	}()
}

// Safe runs fn synchronously behind a recover boundary and returns the
// recovered value, nil when fn completed — the inline form of Go for
// shard-scoped operations that must convert a panic into an error
// while still holding their locks in a releasable state.
func Safe(fn func()) (recovered any) {
	defer func() { recovered = recover() }()
	fn()
	return nil
}

// Breaker counts panics against a threshold and trips into quarantine
// when they reach it. reapd gives every shard its own breaker: a shard
// whose handlers keep panicking has state that can no longer be
// trusted, so its devices are refused (503 shard_quarantined) while the
// rest of the fleet keeps serving.
type Breaker struct {
	threshold uint64
	panics    atomic.Uint64
}

// NewBreaker returns a breaker that quarantines after threshold panics;
// threshold <= 0 disables quarantine (panics are still counted).
func NewBreaker(threshold int) *Breaker {
	if threshold < 0 {
		threshold = 0
	}
	return &Breaker{threshold: uint64(threshold)}
}

// RecordPanic counts one panic and reports whether the breaker is now
// (or already was) quarantined.
func (b *Breaker) RecordPanic() bool {
	n := b.panics.Add(1)
	return b.threshold > 0 && n >= b.threshold
}

// Quarantined reports whether the panic count has reached the
// threshold.
func (b *Breaker) Quarantined() bool {
	return b.threshold > 0 && b.panics.Load() >= b.threshold
}

// Panics returns the number of panics recorded.
func (b *Breaker) Panics() uint64 { return b.panics.Load() }

// Gate is the queue-depth admission control for overload shedding: at
// most Max requests proceed concurrently, the rest are shed before any
// work is done. Zero Max admits everything.
type Gate struct {
	max      int64
	inflight atomic.Int64
	shed     atomic.Uint64
}

// NewGate returns a gate admitting at most max concurrent entries;
// max <= 0 disables shedding.
func NewGate(max int) *Gate {
	if max < 0 {
		max = 0
	}
	return &Gate{max: int64(max)}
}

// Enter tries to occupy a slot. When it returns false the request must
// be shed — and Leave must NOT be called. When true, the caller owns a
// slot and must release it with Leave.
func (g *Gate) Enter() bool {
	if g.max <= 0 {
		return true
	}
	if g.inflight.Add(1) > g.max {
		g.inflight.Add(-1)
		g.shed.Add(1)
		return false
	}
	return true
}

// Leave releases a slot taken by a successful Enter.
func (g *Gate) Leave() {
	if g.max > 0 {
		g.inflight.Add(-1)
	}
}

// Inflight returns the number of currently admitted requests.
func (g *Gate) Inflight() int64 { return g.inflight.Load() }

// Shed returns how many requests the gate refused.
func (g *Gate) Shed() uint64 { return g.shed.Load() }
