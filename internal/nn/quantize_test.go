package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeValidation(t *testing.T) {
	if _, err := Quantize(&Network{}); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestQuantizedShapeChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net, _ := New([]int{4, 8, 3}, ReLU, Softmax, rng)
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	if q.InputSize() != 4 || q.OutputSize() != 3 {
		t.Fatalf("sizes %d/%d", q.InputSize(), q.OutputSize())
	}
	if q.MACs() != net.MACs() {
		t.Fatalf("MACs %d vs %d", q.MACs(), net.MACs())
	}
	if _, err := q.Forward([]float64{1}); err == nil {
		t.Fatal("wrong width accepted")
	}
	if _, err := q.Predict([]float64{1, 2}); err == nil {
		t.Fatal("Predict accepted wrong width")
	}
}

func TestQuantizedTracksFloatOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net, _ := New([]int{6, 10, 4}, Tanh, Softmax, rng)
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		fo, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		qo, err := q.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fo {
			if math.Abs(fo[i]-qo[i]) > 0.08 {
				t.Fatalf("trial %d output %d: float %v vs quantized %v", trial, i, fo[i], qo[i])
			}
		}
	}
}

func TestQuantizedAccuracyWithinTwoPoints(t *testing.T) {
	// Train on separable blobs, quantize, and require <= 2 points of
	// accuracy loss — the premise of the int8 design-point variant.
	rng := rand.New(rand.NewSource(43))
	all := gaussianBlobs(rng, 4, 120, 0.5)
	trainSet, testSet := all[:360], all[360:]
	net, _ := New([]int{2, 12, 4}, ReLU, Softmax, rand.New(rand.NewSource(44)))
	if _, err := Train(net, trainSet, nil, TrainConfig{
		Epochs: 80, LearningRate: 0.1, Momentum: 0.9, Seed: 45,
	}); err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	floatAcc := Accuracy(net, testSet)
	qAcc := QuantizedAccuracy(q, testSet)
	if floatAcc-qAcc > 0.02 {
		t.Fatalf("quantization lost %.3f accuracy (float %.3f, int8 %.3f)",
			floatAcc-qAcc, floatAcc, qAcc)
	}
	if QuantizedAccuracy(q, nil) != 0 {
		t.Fatal("empty set accuracy should be 0")
	}
}

func TestQuantizeConstantLayer(t *testing.T) {
	// All-zero weights: scales must not be zero (division guard).
	net := &Network{Layers: []*Layer{{
		In: 2, Out: 2, Act: Softmax,
		W: make([]float64, 4), B: make([]float64, 2),
	}}}
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Forward([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(out[0]) {
		t.Fatal("NaN from constant layer")
	}
}

func TestQuantizedWeightsAreInt8Symmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	net, _ := New([]int{3, 5, 2}, ReLU, Softmax, rng)
	// Inject an extreme weight to exercise clamping.
	net.Layers[0].W[0] = 10
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range q.Layers {
		for _, w := range l.W {
			if w < -127 || w > 127 {
				t.Fatalf("weight %d outside symmetric int8 range", w)
			}
		}
	}
	// The extreme weight maps to +127 exactly.
	if q.Layers[0].W[0] != 127 {
		t.Fatalf("max weight quantized to %d, want 127", q.Layers[0].W[0])
	}
}
