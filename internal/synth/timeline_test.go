package synth

import (
	"testing"
)

func TestNewTimelineValidation(t *testing.T) {
	u := NewUserProfile(0, 1)
	if _, err := NewTimeline(u, -1, 1); err == nil {
		t.Fatal("negative hour accepted")
	}
	if _, err := NewTimeline(u, 24, 1); err == nil {
		t.Fatal("hour 24 accepted")
	}
	tl, err := NewTimeline(u, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Hour() != 3 {
		t.Fatalf("hour %d, want 3", tl.Hour())
	}
}

func TestTimelineBoutsPersist(t *testing.T) {
	u := NewUserProfile(1, 2)
	tl, err := NewTimeline(u, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Count label changes across 2000 windows: with 1–16 minute bouts the
	// stream must be strongly autocorrelated, i.e. far fewer changes than
	// windows.
	prev := tl.Next().Activity
	changes := 0
	for i := 0; i < 2000; i++ {
		cur := tl.Next().Activity
		if cur != prev {
			changes++
		}
		prev = cur
	}
	if changes > 200 {
		t.Fatalf("%d label changes in 2000 windows: bouts do not persist", changes)
	}
	if changes == 0 {
		t.Fatal("no activity changes in 2000 windows (~53 min)")
	}
}

func TestTimelineTransitionsBridgeBouts(t *testing.T) {
	u := NewUserProfile(2, 4)
	tl, err := NewTimeline(u, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Whenever the persistent activity changes, a Transition window must
	// appear between the bouts: two consecutive windows may only differ
	// if one of them is a Transition.
	prev := tl.Current()
	sawTransition := false
	for i := 0; i < 5000; i++ {
		w := tl.Next()
		if w.Activity == Transition {
			sawTransition = true
		} else if prev != Transition && w.Activity != prev {
			t.Fatalf("window %d: %v -> %v with no transition", i, prev, w.Activity)
		}
		prev = w.Activity
	}
	if !sawTransition {
		t.Fatal("no transitions in 5000 windows")
	}
}

func TestTimelineHourlyMixShapesStream(t *testing.T) {
	u := NewUserProfile(3, 6)
	// Night: overwhelmingly lying down.
	tl, err := NewTimeline(u, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	lie := 0
	const n = 1500
	for i := 0; i < n; i++ {
		if tl.Next().Activity == LieDown {
			lie++
		}
	}
	if float64(lie)/n < 0.6 {
		t.Fatalf("only %d/%d night windows lying down", lie, n)
	}
	// Midday: mostly not lying down.
	tl2, err := NewTimeline(u, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	lie = 0
	for i := 0; i < n; i++ {
		if tl2.Next().Activity == LieDown {
			lie++
		}
	}
	if float64(lie)/n > 0.2 {
		t.Fatalf("%d/%d midday windows lying down", lie, n)
	}
}

func TestTimelineClockAdvances(t *testing.T) {
	u := NewUserProfile(4, 8)
	tl, err := NewTimeline(u, 23, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < WindowsPerHour; i++ {
		tl.Next()
	}
	if tl.Hour() != 0 {
		t.Fatalf("hour %d after one hour of windows from 23, want 0 (wrap)", tl.Hour())
	}
}

func TestHourlyMixDistributions(t *testing.T) {
	for hour := 0; hour < 24; hour++ {
		mix := hourlyMix(hour)
		var sum float64
		for a, p := range mix {
			if p < 0 {
				t.Fatalf("hour %d: negative probability for %v", hour, a)
			}
			if a == Transition {
				t.Fatalf("hour %d: transition in the persistent mix", hour)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("hour %d: mix sums to %v", hour, sum)
		}
	}
}

func TestDayGeneratesFullStream(t *testing.T) {
	u := NewUserProfile(5, 10)
	day, err := Day(u, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(day) != 24*WindowsPerHour {
		t.Fatalf("day has %d windows, want %d", len(day), 24*WindowsPerHour)
	}
	// Determinism.
	day2, err := Day(u, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range day {
		if day[i].Activity != day2[i].Activity {
			t.Fatal("same seed produced different days")
		}
	}
}

// Skip must advance the stream exactly as n NextLabel calls would — the
// churn seam: a device that was offline for an hour rejoins a user who
// kept living through it.
func TestTimelineSkipAdvancesLikeNext(t *testing.T) {
	user := NewUserProfile(3, 99)
	a, err := NewTimeline(user, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTimeline(user, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < WindowsPerHour; i++ {
		a.NextLabel()
	}
	b.Skip(WindowsPerHour)
	for i := 0; i < 3*WindowsPerHour; i++ {
		if la, lb := a.NextLabel(), b.NextLabel(); la != lb {
			t.Fatalf("window %d after skip: %v vs %v", i, la, lb)
		}
	}
	b.Skip(0) // no-op
	if la, lb := a.NextLabel(), b.NextLabel(); la != lb {
		t.Fatalf("Skip(0) advanced the stream: %v vs %v", la, lb)
	}
}
