// Package floatcmp forbids raw == and != on floating-point operands.
//
// The solver, the plan envelope and the sim harness all trade in
// float64 energies; an accidental equality test on a computed value is
// the classic silent-wrong-answer bug. The repo's discipline is that
// every float comparison names its intent through the helpers in
// repro/internal/fpx: fpx.Eq / fpx.Zero for deliberately exact
// comparisons (breakpoint hits, zero-value defaults, sort tie-breaks),
// fpx.Near / fpx.InDelta for tolerance comparisons. The fpx package
// itself is the allowlisted epsilon-helper set; everywhere else a raw
// float ==/!= is a diagnostic.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// allowedPkg is the one package whose raw float comparisons are the
// point: the helpers everything else must call.
const allowedPkg = "repro/internal/fpx"

// Analyzer flags ==/!= with a floating-point operand outside fpx.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "forbid raw == / != on float64 or float32 operands; spell the intent " +
		"with repro/internal/fpx (Eq, Zero, Near, InDelta) instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Path() == allowedPkg {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo, bin.X) || isFloat(pass.TypesInfo, bin.Y) {
				pass.Reportf(bin.OpPos,
					"raw float comparison (%s): use fpx.Eq/fpx.Zero for intentional exact compares or fpx.Near/fpx.InDelta for tolerances",
					bin.Op)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether the expression's type is (or has underlying)
// float32, float64, or an untyped float constant.
func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&types.IsFloat != 0
}
