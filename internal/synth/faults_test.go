package synth

import (
	"math/rand"
	"testing"
)

func TestFaultStrings(t *testing.T) {
	for _, f := range append(Faults(), NoFault, Fault(99)) {
		if f.String() == "" {
			t.Fatalf("empty name for fault %d", int(f))
		}
	}
	if len(Faults()) != 4 {
		t.Fatalf("%d faults", len(Faults()))
	}
}

func TestCorruptDoesNotAliasOriginal(t *testing.T) {
	u := NewUserProfile(0, 1)
	w := Generate(u, Walk, rand.New(rand.NewSource(2)))
	orig := append([]float64(nil), w.AccelY...)
	for _, f := range Faults() {
		if _, err := Corrupt(w, f, rand.New(rand.NewSource(3))); err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if w.AccelY[i] != orig[i] {
				t.Fatalf("fault %v mutated the original window", f)
			}
		}
	}
}

func TestNoFaultIsIdentity(t *testing.T) {
	u := NewUserProfile(1, 2)
	w := Generate(u, Sit, rand.New(rand.NewSource(4)))
	c, err := Corrupt(w, NoFault, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Stretch {
		if c.Stretch[i] != w.Stretch[i] || c.AccelX[i] != w.AccelX[i] {
			t.Fatal("NoFault changed samples")
		}
	}
	if c.Activity != w.Activity || c.User != w.User {
		t.Fatal("labels lost")
	}
}

func TestStuckAxisFreezesOneAxis(t *testing.T) {
	u := NewUserProfile(2, 3)
	w := Generate(u, Walk, rand.New(rand.NewSource(6)))
	c, err := Corrupt(w, StuckAxis, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	constant := func(x []float64) bool {
		for _, v := range x[1:] {
			if v != x[0] {
				return false
			}
		}
		return true
	}
	frozen := 0
	for _, axis := range [][]float64{c.AccelX, c.AccelY, c.AccelZ} {
		if constant(axis) {
			frozen++
		}
	}
	if frozen != 1 {
		t.Fatalf("%d axes frozen, want exactly 1", frozen)
	}
	if constant(c.Stretch) {
		t.Fatal("stretch should be untouched by a stuck accel axis")
	}
}

func TestDropoutZeroesChunk(t *testing.T) {
	u := NewUserProfile(3, 4)
	w := Generate(u, Jump, rand.New(rand.NewSource(8)))
	c, err := Corrupt(w, Dropout, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for i := range c.AccelX {
		if c.AccelX[i] == 0 && c.AccelY[i] == 0 && c.AccelZ[i] == 0 && c.Stretch[i] == 0 {
			zeros++
		}
	}
	if zeros < len(c.AccelX)/4 || zeros > len(c.AccelX)/2+1 {
		t.Fatalf("dropout zeroed %d samples of %d, want 25–50%%", zeros, len(c.AccelX))
	}
}

func TestStretchDetachedFlattens(t *testing.T) {
	u := NewUserProfile(4, 5)
	w := Generate(u, Walk, rand.New(rand.NewSource(10)))
	c, err := Corrupt(w, StretchDetached, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Stretch[1:] {
		if v != c.Stretch[0] {
			t.Fatal("detached stretch not constant")
		}
	}
	// Accel untouched.
	for i := range w.AccelY {
		if c.AccelY[i] != w.AccelY[i] {
			t.Fatal("detached stretch corrupted accel")
		}
	}
}

func TestSpikeNoiseAddsOutliers(t *testing.T) {
	u := NewUserProfile(5, 6)
	w := Generate(u, Sit, rand.New(rand.NewSource(12)))
	c, err := Corrupt(w, SpikeNoise, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range w.AccelX {
		if c.AccelX[i] != w.AccelX[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("spike noise changed nothing")
	}
	if changed > len(w.AccelX)/5 {
		t.Fatalf("spike noise changed %d samples, should be sparse", changed)
	}
}

func TestCorruptUnknownFault(t *testing.T) {
	u := NewUserProfile(6, 7)
	w := Generate(u, Sit, rand.New(rand.NewSource(14)))
	if _, err := Corrupt(w, Fault(99), rand.New(rand.NewSource(15))); err == nil {
		t.Fatal("unknown fault accepted")
	}
}
