package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/solar"
)

// MultiYearRow summarizes one September's REAP-vs-DP1 improvement at α=1.
type MultiYearRow struct {
	Year          int
	HarvestJ      float64
	MeanRatioDP1  float64
	MeanRatioDP5  float64
	DaylightHours int
}

// MultiYearResult extends Figure 7 across the paper's full measurement
// span (the NREL record of January 2015 – October 2018): each year's
// September gets its own synthetic weather realization.
type MultiYearResult struct {
	Rows []MultiYearRow
}

// MultiYear evaluates Septembers 2015–2018.
func MultiYear(cfg core.Config) (*MultiYearResult, error) {
	res := &MultiYearResult{}
	for year := 2015; year <= 2018; year++ {
		tr, err := solar.MonthlyTrace(9, year, solar.DefaultCell())
		if err != nil {
			return nil, err
		}
		fig, err := Figure7On(cfg, tr, []float64{1})
		if err != nil {
			return nil, err
		}
		r1, _ := fig.Ratio("DP1", 1)
		r5, _ := fig.Ratio("DP5", 1)
		res.Rows = append(res.Rows, MultiYearRow{
			Year:          year,
			HarvestJ:      tr.Total(),
			MeanRatioDP1:  r1.Mean,
			MeanRatioDP5:  r5.Mean,
			DaylightHours: tr.DaylightHours(0.18),
		})
	}
	return res, nil
}

// Render prints the multi-year grid.
func (r *MultiYearResult) Render() string {
	t := &table{header: []string{"september", "harvest(J)", "daylight(h)", "REAP/DP1", "REAP/DP5"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d", row.Year), f1(row.HarvestJ),
			fmt.Sprintf("%d", row.DaylightHours), f2(row.MeanRatioDP1), f2(row.MeanRatioDP5))
	}
	return "Multi-year case study: REAP improvement across four Septembers (alpha=1)\n" + t.String()
}
