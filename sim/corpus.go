package sim

import (
	"embed"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The committed scenario corpus: every *.json under scenarios/ is a
// canonical-form ScenarioConfig, compiled into the binary so reapsim
// and the test harness agree on the corpus without touching the
// filesystem. The five legacy library scenarios live here as configs
// pinned byte-for-byte against their Go constructors; the rest are
// config-only.
//
//go:embed scenarios/*.json
var scenarioFS embed.FS

// scenarioDir is where the embedded corpus files live in the source
// tree (used by the regeneration test and by tooling resolving corpus
// paths).
const scenarioDir = "scenarios"

// ScenarioCorpus is an immutable, name-indexed set of scenarios loaded
// from config files.
type ScenarioCorpus struct {
	scenarios []Scenario // sorted by name
	byName    map[string]Scenario
}

var (
	corpusOnce sync.Once
	corpusVal  *ScenarioCorpus
	corpusErr  error
)

// Corpus returns the embedded scenario corpus — the five legacy library
// scenarios plus every config-only scenario committed under
// sim/scenarios/. The corpus is parsed once and cached; the returned
// value is shared and must be treated as read-only.
func Corpus() (*ScenarioCorpus, error) {
	corpusOnce.Do(func() {
		corpusVal, corpusErr = corpusFromFS(scenarioFS, scenarioDir)
	})
	return corpusVal, corpusErr
}

// LoadCorpus builds a corpus from every *.json file in dir, using the
// same strict decoding and uniqueness rules as the embedded corpus.
func LoadCorpus(dir string) (*ScenarioCorpus, error) {
	return corpusFromFS(os.DirFS(dir), ".")
}

// corpusFromFS parses every *.json under root of fsys into a corpus.
func corpusFromFS(fsys fs.FS, root string) (*ScenarioCorpus, error) {
	paths, err := fs.Glob(fsys, filepath.ToSlash(filepath.Join(root, "*.json")))
	if err != nil {
		return nil, fmt.Errorf("%w: globbing corpus: %v", ErrConfigMalformed, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: no scenario configs found", ErrConfigMalformed)
	}
	sort.Strings(paths)
	c := &ScenarioCorpus{byName: make(map[string]Scenario, len(paths))}
	for _, p := range paths {
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return nil, fmt.Errorf("%w: reading %s: %v", ErrConfigMalformed, p, err)
		}
		sc, err := ParseScenario(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if _, dup := c.byName[sc.Name]; dup {
			return nil, fmt.Errorf("%w: %s: duplicate scenario name %q in corpus", ErrInvalidScenario, p, sc.Name)
		}
		c.byName[sc.Name] = sc
		c.scenarios = append(c.scenarios, sc)
	}
	sort.Slice(c.scenarios, func(i, j int) bool { return c.scenarios[i].Name < c.scenarios[j].Name })
	return c, nil
}

// Scenarios returns the corpus scenarios ordered by name. The slice is
// a copy; the Scenario values share no mutable state.
func (c *ScenarioCorpus) Scenarios() []Scenario {
	return append([]Scenario(nil), c.scenarios...)
}

// Names returns the scenario names in order.
func (c *ScenarioCorpus) Names() []string {
	names := make([]string, len(c.scenarios))
	for i, sc := range c.scenarios {
		names[i] = sc.Name
	}
	return names
}

// Len returns the number of scenarios in the corpus.
func (c *ScenarioCorpus) Len() int { return len(c.scenarios) }

// Lookup returns the named scenario, or an error wrapping
// ErrUnknownScenario naming the corpus contents.
func (c *ScenarioCorpus) Lookup(name string) (Scenario, error) {
	sc, ok := c.byName[name]
	if !ok {
		return Scenario{}, fmt.Errorf("%w: %q (corpus has %v)", ErrUnknownScenario, name, c.Names())
	}
	return sc, nil
}
