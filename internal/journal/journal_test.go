package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openStarted opens dir and replays into a slice, failing the test on
// any error — the common happy-path boot.
func openStarted(t *testing.T, dir string, opts Options) (*Store, [][]byte) {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var replayed [][]byte
	if err := st.Start(func(p []byte) error {
		replayed = append(replayed, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return st, replayed
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, replayed := openStarted(t, dir, Options{})
	if len(replayed) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(replayed))
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf(`{"i":%d,"pad":"%s"}`, i, bytes.Repeat([]byte{'x'}, i%7)))
		want = append(want, p)
		seq, err := st.Append(p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, i+1)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, replayed := openStarted(t, dir, Options{})
	defer st2.Close()
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(want))
	}
	for i := range want {
		if !bytes.Equal(replayed[i], want[i]) {
			t.Fatalf("record %d: got %q, want %q", i, replayed[i], want[i])
		}
	}
	if got := st2.Seq(); got != uint64(len(want)) {
		t.Errorf("Seq = %d, want %d", got, len(want))
	}
}

func TestAbandonSurvivesLikeKillNine(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := st.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Abandon() // no sync, no close ceremony

	_, replayed := openStarted(t, dir, Options{})
	if len(replayed) != 10 {
		t.Fatalf("after abandon: replayed %d records, want 10 — appends must reach the kernel before acking", len(replayed))
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := st.Append([]byte{'a', byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact([]byte("state@5")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append([]byte{'b', byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, seq := st2.Snapshot()
	if string(snap) != "state@5" || seq != 5 {
		t.Fatalf("Snapshot = %q@%d, want state@5@5", snap, seq)
	}
	var replayed [][]byte
	if err := st2.Start(func(p []byte) error {
		replayed = append(replayed, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(replayed) != 3 {
		t.Fatalf("replayed %d post-snapshot records, want 3", len(replayed))
	}
	if st2.Seq() != 8 {
		t.Errorf("Seq = %d, want 8", st2.Seq())
	}
	// Old files are gone: exactly one snapshot, one live segment.
	stats := st2.Stats()
	if stats.SnapshotSeq != 5 || stats.Replayed != 3 {
		t.Errorf("stats = %+v, want snapshot_seq 5 replayed 3", stats)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"))
	if len(segs) != 1 || len(snaps) != 1 {
		t.Errorf("compaction left %d segments, %d snapshots; want 1 and 1", len(segs), len(snaps))
	}
}

func TestRepeatedCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{})
	total := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 7; i++ {
			if _, err := st.Append([]byte{byte(round), byte(i)}); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if err := st.Compact([]byte(fmt.Sprintf("state@%d", total))); err != nil {
			t.Fatal(err)
		}
	}
	// Tail after the last compaction.
	for i := 0; i < 2; i++ {
		if _, err := st.Append([]byte{'t', byte(i)}); err != nil {
			t.Fatal(err)
		}
		total++
	}
	st.Abandon()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, seq := st2.Snapshot()
	if string(snap) != "state@28" || seq != 28 {
		t.Fatalf("Snapshot = %q@%d, want state@28@28", snap, seq)
	}
	n := 0
	if err := st2.Start(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n != 2 || st2.Seq() != uint64(total) {
		t.Errorf("replayed %d, seq %d; want 2 and %d", n, st2.Seq(), total)
	}
}

// TestTornTailTruncates pins the crash contract: a segment ending in a
// half-written record loses exactly that record, and the journal stays
// appendable afterwards.
func TestTornTailTruncates(t *testing.T) {
	for _, cut := range []int{1, 3, 7, 9} { // mid-frame and mid-payload cuts
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			st, _ := openStarted(t, dir, Options{})
			if _, err := st.Append([]byte("keep-me")); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Append([]byte("torn")); err != nil {
				t.Fatal(err)
			}
			st.Abandon()

			seg := onlySegment(t, dir)
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			firstEnd := frameSize + len("keep-me")
			if err := os.WriteFile(seg, raw[:firstEnd+cut], 0o644); err != nil {
				t.Fatal(err)
			}

			st2, replayed := openStarted(t, dir, Options{})
			if len(replayed) != 1 || string(replayed[0]) != "keep-me" {
				t.Fatalf("replayed %q, want just keep-me", replayed)
			}
			if !st2.Stats().TornTail {
				t.Error("stats do not report the torn tail")
			}
			// The journal keeps working: append, reopen, both records read.
			if _, err := st2.Append([]byte("after")); err != nil {
				t.Fatal(err)
			}
			st2.Close()
			_, replayed = openStarted(t, dir, Options{})
			if len(replayed) != 2 || string(replayed[1]) != "after" {
				t.Fatalf("after truncation+append: replayed %q", replayed)
			}
		})
	}
}

// TestCorruptTailTruncates flips a payload byte of the final record:
// the checksum must catch it and replay must stop before it.
func TestCorruptTailTruncates(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{})
	if _, err := st.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("evil")); err != nil {
		t.Fatal(err)
	}
	st.Abandon()

	seg := onlySegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, replayed := openStarted(t, dir, Options{})
	if len(replayed) != 1 || string(replayed[0]) != "good" {
		t.Fatalf("replayed %q, want just the intact record", replayed)
	}
}

func TestSyncEveryAppendPolicy(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{SyncEveryAppend: true})
	defer st.Close()
	for i := 0; i < 5; i++ {
		if _, err := st.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("Append under SyncEveryAppend: %v", err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("explicit Sync: %v", err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("x")); err == nil {
		t.Error("Append before Start: want error")
	}
	if err := st.Compact(nil); err == nil {
		t.Error("Compact before Start: want error")
	}
	if err := st.Start(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(func([]byte) error { return nil }); err == nil {
		t.Error("second Start: want error")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("double Close: %v, want nil", err)
	}
	if _, err := st.Append([]byte("x")); err == nil {
		t.Error("Append after Close: want error")
	}
}

func TestStartAbortsOnReplayError(t *testing.T) {
	dir := t.TempDir()
	st, _ := openStarted(t, dir, Options{})
	if _, err := st.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("apply failed")
	if err := st2.Start(func([]byte) error { return boom }); err == nil {
		t.Fatal("Start with failing replay: want error")
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}
