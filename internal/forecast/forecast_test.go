package forecast

import (
	"math"
	"testing"

	"repro/internal/solar"
)

func TestNewEWMAValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := NewEWMA(bad); err == nil {
			t.Errorf("lambda %v accepted", bad)
		}
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(-1); err == nil {
		t.Error("negative harvest accepted")
	}
	if err := e.Observe(math.NaN()); err == nil {
		t.Error("NaN harvest accepted")
	}
}

func TestEWMAConvergesOnPeriodicSignal(t *testing.T) {
	e, _ := NewEWMA(0.5)
	signal := func(hour int) float64 {
		if hour >= 8 && hour < 16 {
			return 5
		}
		return 0
	}
	// Five identical days.
	for h := 0; h < 5*24; h++ {
		if err := e.Observe(signal(h % 24)); err != nil {
			t.Fatal(err)
		}
	}
	// Predictions for day six must match the pattern exactly (the signal
	// is deterministic, so the EWMA has converged).
	pred := e.Predict(24)
	for h := 0; h < 24; h++ {
		if math.Abs(pred[h]-signal(h)) > 1e-9 {
			t.Fatalf("hour %d: predicted %v, want %v", h, pred[h], signal(h))
		}
	}
}

func TestEWMAAdaptsToChange(t *testing.T) {
	e, _ := NewEWMA(0.5)
	// Three sunny days, then weather turns: noon harvest halves.
	for d := 0; d < 3; d++ {
		for h := 0; h < 24; h++ {
			v := 0.0
			if h == 12 {
				v = 8
			}
			_ = e.Observe(v)
		}
	}
	for d := 0; d < 4; d++ {
		for h := 0; h < 24; h++ {
			v := 0.0
			if h == 12 {
				v = 4
			}
			_ = e.Observe(v)
		}
	}
	// Prediction for the next noon: within 10% of the new level.
	pred := e.Predict(24)
	if math.Abs(pred[12]-4) > 0.4 {
		t.Fatalf("noon prediction %v, want ~4 after adaptation", pred[12])
	}
}

func TestEWMAClockAndUnseenSlots(t *testing.T) {
	e, _ := NewEWMA(0.3)
	if e.Hour() != 0 {
		t.Fatal("clock should start at 0")
	}
	_ = e.Observe(1)
	_ = e.Observe(2)
	if e.Hour() != 2 {
		t.Fatalf("hour %d, want 2", e.Hour())
	}
	// Slot 2 never observed: predicts zero; slot 0 observed: predicts it
	// at the right offset.
	pred := e.Predict(24)
	if pred[0] != 0 {
		t.Fatalf("unseen slot predicted %v", pred[0])
	}
	if pred[22] != 1 { // 2+22 = 24 ≡ slot 0
		t.Fatalf("slot 0 prediction %v, want 1", pred[22])
	}
	if e.Predict(0) != nil || e.Predict(-1) != nil {
		t.Fatal("non-positive horizons should return nil")
	}
}

func TestEWMABeatsNaiveOnSolarTrace(t *testing.T) {
	// On the synthetic September trace, the diurnal EWMA must beat the
	// "predict the previous hour" baseline by a wide margin.
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEWMA(0.5)
	mae, err := e.MAE(tr.Hours)
	if err != nil {
		t.Fatal(err)
	}
	// Naive last-value predictor.
	var naiveSum float64
	n := 0
	for i := 24; i < len(tr.Hours); i++ {
		naiveSum += math.Abs(tr.Hours[i] - tr.Hours[i-1])
		n++
	}
	naive := naiveSum / float64(n)
	if mae >= naive {
		t.Fatalf("EWMA MAE %v not below naive %v", mae, naive)
	}
	if mae <= 0 {
		t.Fatalf("MAE %v suspiciously perfect on a stochastic trace", mae)
	}
}

func TestMAEEmptyAndShortTraces(t *testing.T) {
	e, _ := NewEWMA(0.5)
	if mae, err := e.MAE(nil); err != nil || mae != 0 {
		t.Fatalf("empty trace: %v %v", mae, err)
	}
	e2, _ := NewEWMA(0.5)
	if mae, err := e2.MAE(make([]float64, 10)); err != nil || mae != 0 {
		t.Fatalf("sub-day trace: %v %v", mae, err)
	}
	e3, _ := NewEWMA(0.5)
	if _, err := e3.MAE([]float64{1, -2}); err == nil {
		t.Fatal("negative trace accepted")
	}
}
