// Command reapload is the load generator for reapd: it drives the
// solve and report endpoints at full tilt from a pool of keep-alive
// connections, measures per-request latency, and renders a benchmark
// document — BENCH_serve.json, the serving-path counterpart of
// BENCH_solve.json.
//
// Usage:
//
//	reapload [-addr 127.0.0.1:8080] [-duration 10s] [-conns 4]
//	         [-batch 64] [-mode solve] [-devices 1024]
//	         [-solver ""] [-tenant bench]
//	         [-chaos 0] [-chaos-seed 1]
//	         [-out BENCH_serve.json] [-max-p99 0]
//
// With -mode solve and -batch 1 every request is a POST /v1/solve;
// larger batches go through /v1/batch-solve with that many items per
// request (one item = one solve, the unit the rate limiter charges and
// the solves/sec figure counts). -mode report posts -batch consumption
// reports per request for devices cycling through [0, -devices); -mode
// mixed alternates the two per worker. Budgets cycle through a fixed
// spread covering every operating region of the paper's configuration,
// so the server sees realistic key diversity rather than one hot
// budget.
//
// Back-pressure is honored, not fought: a 429 or 503 counts as shed
// (reported separately from errors, never in the latency population)
// and the worker backs off for the server's Retry-After or a capped
// exponential delay with jitter, whichever is longer. -chaos P tears
// connections on purpose: with probability P a worker writes a partial
// HTTP request over a raw socket and slams it shut — the client half of
// the fault-injection harness, for proving the daemon (and its journal)
// shrugs off vanishing clients. Torn connections are counted and
// excluded from latency.
//
// Replication is first-class: a 503 whose response carries a Leader
// header (a follower refusing a mutation with not_primary) is a
// redirect, not an error — the worker retargets every later request at
// the leader and the attempt never enters the latency population.
//
// -failover D turns a run into the kill-the-primary chaos harness: D
// into the window the process named by -kill-pid is SIGKILLed, the
// follower at -promote is promoted (polled until it accepts), and all
// traffic swings to it stamped with the new fencing epoch
// (X-Reap-Epoch). At the end the run asserts zero acked loss — every
// report acknowledged by either node must be present in the survivor's
// /v1/stats counters — and exits 1 otherwise.
//
// -max-p99 makes reapload an assertion: if the measured p99 per-request
// latency exceeds it, the run exits 1 — the CI serve-smoke and
// chaos-smoke jobs' gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/wire"
)

type stats struct {
	requests  int
	solves    int
	reports   int
	shed      int
	torn      int
	errors    int
	redirects int
	fenced    int
	latencies []time.Duration
}

type document struct {
	Addr       string  `json:"addr"`
	Mode       string  `json:"mode"`
	Batch      int     `json:"batch"`
	Conns      int     `json:"conns"`
	DurationS  float64 `json:"duration_s"`
	Requests   int     `json:"requests"`
	Solves     int     `json:"solves"`
	Reports    int     `json:"reports,omitempty"`
	Shed       int     `json:"shed"`
	Torn       int     `json:"torn,omitempty"`
	Errors     int     `json:"errors"`
	Redirects  int     `json:"redirects,omitempty"`
	Fenced     int     `json:"fenced,omitempty"`
	SolvesPerS float64 `json:"solves_per_sec"`
	Latency    latency `json:"request_latency_us"`

	Failover *failoverDoc `json:"failover,omitempty"`
}

// failoverDoc records the kill-the-primary run: what was killed, who
// took over at which epoch, and the acked-loss reconciliation. Lost
// must be 0 — the run exits 1 otherwise.
type failoverDoc struct {
	KilledPid     int    `json:"killed_pid,omitempty"`
	PromotedAddr  string `json:"promoted_addr"`
	Epoch         uint64 `json:"epoch"`
	AckedReports  int    `json:"acked_reports"`
	ServerReports uint64 `json:"server_reports"`
	Lost          int64  `json:"lost_acked"`
}

type latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// payload is one pre-encoded request body and where to send it.
type payload struct {
	path    string
	body    []byte
	solves  int
	reports int
}

// Backoff bounds for shed requests: exponential from min to max, and
// the server's Retry-After honored up to honorCap so a load test
// cannot be stalled indefinitely by a long Retry-After.
const (
	backoffMin  = 20 * time.Millisecond
	backoffMax  = time.Second
	honorCap    = 2 * time.Second
	jitterFrac  = 0.25
	tearTimeout = time.Second
)

// target is where traffic currently goes: the address every worker
// posts to and the fencing epoch stamped on each request (zero = no
// header). A Leader redirect or a promotion swings it mid-run.
type target struct {
	mu    sync.Mutex
	addr  string
	epoch uint64
}

func (t *target) get() (string, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addr, t.epoch
}

// redirect follows a Leader hint: only the address moves, the epoch is
// whatever the last promotion established.
func (t *target) redirect(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addr = addr
}

// promote swings all traffic to the new primary at its epoch.
func (t *target) promote(addr string, epoch uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addr, t.epoch = addr, epoch
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("reapload: ")

	addr := flag.String("addr", "127.0.0.1:8080", "reapd address (host:port)")
	duration := flag.Duration("duration", 10*time.Second, "measurement window")
	conns := flag.Int("conns", 4, "concurrent connections")
	batch := flag.Int("batch", 64, "solves or reports per request (1 = /v1/solve singles)")
	mode := flag.String("mode", "solve", "traffic mix: solve | report | mixed")
	devices := flag.Int("devices", 1024, "device id space for -mode report/mixed")
	solver := flag.String("solver", "", "solver backend to request (default: server default)")
	tenant := flag.String("tenant", "bench", "X-Tenant header value")
	chaos := flag.Float64("chaos", 0, "probability of tearing a connection mid-request")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for tear decisions and backoff jitter")
	out := flag.String("out", "", "write the benchmark document to this file (default stdout only)")
	maxP99 := flag.Duration("max-p99", 0, "fail (exit 1) if request p99 exceeds this (0 = no gate)")
	failover := flag.Duration("failover", 0, "kill the primary this far into the window and promote -promote (0 = off)")
	promoteAddr := flag.String("promote", "", "follower address to promote during -failover")
	killPid := flag.Int("kill-pid", 0, "primary pid to SIGKILL during -failover (0 = operator kills it)")
	flag.Parse()
	if *batch < 1 || *conns < 1 || *devices < 1 {
		log.Fatal("batch, conns and devices must be positive")
	}
	if *chaos < 0 || *chaos >= 1 {
		log.Fatal("chaos must be in [0, 1)")
	}
	if *failover > 0 && (*promoteAddr == "" || *failover >= *duration) {
		log.Fatal("-failover needs -promote and must fire inside -duration")
	}

	payloads := buildPayloads(*mode, *batch, *devices, *solver)
	transport := &http.Transport{
		MaxIdleConns:        *conns * 2,
		MaxIdleConnsPerHost: *conns * 2,
	}
	client := &http.Client{Transport: transport}

	// Warm connections and verify the server speaks our schema before
	// the measured window.
	if err := probe(client, "http://"+*addr+payloads[0].path, *tenant, payloads[0].body); err != nil {
		log.Fatalf("probe: %v", err)
	}

	tgt := &target{addr: *addr}
	var fdoc *failoverDoc
	if *failover > 0 {
		fdoc = &failoverDoc{KilledPid: *killPid, PromotedAddr: *promoteAddr}
	}

	deadline := time.Now().Add(*duration)
	results := make([]stats, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			drive(&results[w], client, tgt, *tenant, payloads, deadline,
				*chaos, rand.New(rand.NewSource(*chaosSeed+int64(w))), w)
		}(w)
	}
	if fdoc != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runFailover(client, tgt, fdoc, *failover)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total stats
	for i := range results {
		total.requests += results[i].requests
		total.solves += results[i].solves
		total.reports += results[i].reports
		total.shed += results[i].shed
		total.torn += results[i].torn
		total.errors += results[i].errors
		total.redirects += results[i].redirects
		total.fenced += results[i].fenced
		total.latencies = append(total.latencies, results[i].latencies...)
	}
	if len(total.latencies) == 0 {
		log.Fatal("no requests completed")
	}
	sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })

	doc := document{
		Addr:       *addr,
		Mode:       *mode,
		Batch:      *batch,
		Conns:      *conns,
		DurationS:  elapsed.Seconds(),
		Requests:   total.requests,
		Solves:     total.solves,
		Reports:    total.reports,
		Shed:       total.shed,
		Torn:       total.torn,
		Errors:     total.errors,
		Redirects:  total.redirects,
		Fenced:     total.fenced,
		SolvesPerS: float64(total.solves) / elapsed.Seconds(),
		Latency: latency{
			Mean: mean(total.latencies),
			P50:  percentile(total.latencies, 0.50),
			P90:  percentile(total.latencies, 0.90),
			P99:  percentile(total.latencies, 0.99),
			P999: percentile(total.latencies, 0.999),
			Max:  us(total.latencies[len(total.latencies)-1]),
		},
	}
	if fdoc != nil {
		// Reconcile acked mutations against the survivor: every report a
		// worker saw a 200 for — from either primary — must be counted by
		// the promoted node, or acked state was lost in the failover.
		fdoc.AckedReports = total.reports
		finalAddr, _ := tgt.get()
		sr, err := fetchStats(client, finalAddr)
		if err != nil {
			log.Fatalf("failover: final stats from %s: %v", finalAddr, err)
		}
		fdoc.ServerReports = sr.Reports
		fdoc.Lost = int64(fdoc.AckedReports) - int64(sr.Reports)
		if fdoc.Lost < 0 {
			fdoc.Lost = 0 // server may hold more (unacked applies); never fewer
		}
		doc.Failover = fdoc
	}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	os.Stdout.Write(raw)
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if doc.Failover != nil && doc.Failover.Lost > 0 {
		log.Fatalf("failover lost %d acked reports (acked %d, server counts %d)",
			doc.Failover.Lost, doc.Failover.AckedReports, doc.Failover.ServerReports)
	}
	if *maxP99 > 0 && doc.Latency.P99 > us(*maxP99) {
		log.Fatalf("p99 %.0f µs exceeds gate %v", doc.Latency.P99, *maxP99)
	}
}

// runFailover is the chaos choreography: sleep into the window, SIGKILL
// the primary, promote the follower (polling until it answers — it may
// still be catching up on its stream), then swing every worker to it at
// the new epoch.
func runFailover(client *http.Client, tgt *target, fdoc *failoverDoc, after time.Duration) {
	time.Sleep(after)
	if fdoc.KilledPid > 0 {
		if err := syscall.Kill(fdoc.KilledPid, syscall.SIGKILL); err != nil {
			log.Fatalf("failover: kill -9 %d: %v", fdoc.KilledPid, err)
		}
		log.Printf("failover: killed primary pid %d", fdoc.KilledPid)
	}
	epoch, err := promoteNode(client, fdoc.PromotedAddr)
	if err != nil {
		log.Fatalf("failover: promoting %s: %v", fdoc.PromotedAddr, err)
	}
	fdoc.Epoch = epoch
	tgt.promote(fdoc.PromotedAddr, epoch)
	log.Printf("failover: promoted %s at epoch %d", fdoc.PromotedAddr, epoch)
}

// promoteNode posts /v1/promote until the follower accepts, returning
// the epoch now in force.
func promoteNode(client *http.Client, addr string) (uint64, error) {
	deadline := time.Now().Add(15 * time.Second)
	body := []byte(`{"v":1}`)
	for {
		req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/promote", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				var pr wire.PromoteResponse
				if err := json.Unmarshal(raw, &pr); err != nil {
					return 0, fmt.Errorf("decoding promote response: %v", err)
				}
				return pr.Epoch, nil
			}
			err = fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		}
		if time.Now().After(deadline) {
			return 0, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchStats reads /v1/stats from addr.
func fetchStats(client *http.Client, addr string) (*wire.StatsResponse, error) {
	resp, err := client.Get("http://" + addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var sr wire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// drive is one worker's load loop: post payloads until the deadline,
// honoring back-pressure, following Leader redirects, and injecting
// client-side tears.
func drive(st *stats, client *http.Client, tgt *target, tenant string, payloads []payload,
	deadline time.Time, chaosP float64, rng *rand.Rand, w int) {
	backoff := backoffMin
	for i := 0; time.Now().Before(deadline); i++ {
		p := payloads[(w+i)%len(payloads)]
		addr, epoch := tgt.get()
		if chaosP > 0 && rng.Float64() < chaosP {
			tear(addr, p, rng)
			st.torn++
			continue
		}
		t0 := time.Now()
		status, retryAfter, leader, err := post(client, "http://"+addr+p.path, tenant, epoch, p.body)
		switch {
		case err != nil:
			// Connection-level failure — during a failover window this is
			// the dead primary; back off instead of hammering it.
			st.requests++
			st.errors++
			time.Sleep(withJitter(backoff, rng))
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		case status == http.StatusOK:
			st.requests++
			st.latencies = append(st.latencies, time.Since(t0))
			st.solves += p.solves
			st.reports += p.reports
			backoff = backoffMin
		case status == http.StatusServiceUnavailable && leader != "":
			// A follower pointing at its primary: a redirect, not an
			// error, and never part of the latency population.
			st.requests++
			st.redirects++
			tgt.redirect(leader)
		case status == http.StatusConflict:
			// stale_epoch: we hit a fenced node, or our epoch view is
			// behind a promotion in progress. Counted separately; the
			// target will be swung by the failover controller.
			st.requests++
			st.fenced++
			time.Sleep(withJitter(backoff, rng))
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			// Shed, not failed: the server asked us to slow down.
			st.requests++
			st.shed++
			sleepFor := withJitter(backoff, rng)
			if retryAfter > sleepFor {
				sleepFor = min(retryAfter, honorCap)
			}
			time.Sleep(sleepFor)
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
		default:
			st.requests++
			st.errors++
		}
	}
}

// withJitter spreads d by ±jitterFrac so backed-off workers do not
// stampede back in lockstep.
func withJitter(d time.Duration, rng *rand.Rand) time.Duration {
	spread := 1 + jitterFrac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// tear opens a raw connection, writes a deliberately incomplete HTTP
// request — at least the request line, never the full body — and slams
// the socket shut: the client half of the chaos harness.
func tear(addr string, p payload, rng *rand.Rand) {
	conn, err := net.DialTimeout("tcp", addr, tearTimeout)
	if err != nil {
		return
	}
	defer conn.Close()
	raw := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		p.path, addr, len(p.body), p.body)
	cut := len(raw) - 1 - rng.Intn(len(p.body)+len(raw)/2)
	if cut < len("POST / HTTP/1.1\r\n") {
		cut = len("POST / HTTP/1.1\r\n")
	}
	_ = conn.SetWriteDeadline(time.Now().Add(tearTimeout))
	_, _ = io.WriteString(conn, raw[:cut])
}

// buildPayloads pre-encodes a cycle of request bodies. Solve budgets
// sweep the dead region through saturation (0–11 J for the paper's
// configuration) so consecutive requests exercise distinct solves;
// report batches walk the device space in sorted runs, the shape a
// fleet gateway produces.
func buildPayloads(mode string, batch, devices int, solver string) []payload {
	budget := func(i int) float64 { return 11.0 * float64(i%97) / 97 }
	const variants = 16
	var solves, reports []payload
	for v := 0; v < variants; v++ {
		if batch == 1 {
			solves = append(solves, payload{path: "/v1/solve", solves: 1,
				body: mustEncode(&wire.SolveRequest{V: wire.Version, BudgetJ: budget(v), Solver: solver})})
		} else {
			items := make([]wire.SolveItem, batch)
			for i := range items {
				items[i] = wire.SolveItem{BudgetJ: budget(v*batch + i), Solver: solver}
			}
			solves = append(solves, payload{path: "/v1/batch-solve", solves: batch,
				body: mustEncode(&wire.BatchSolveRequest{V: wire.Version, Items: items})})
		}
		reps := make([]wire.DeviceReport, batch)
		for i := range reps {
			reps[i] = wire.DeviceReport{Device: (v*batch + i*7) % devices, ConsumedJ: 1e-6}
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].Device < reps[j].Device })
		reports = append(reports, payload{path: "/v1/report", reports: batch,
			body: mustEncode(&wire.ReportRequest{V: wire.Version, Reports: reps})})
	}
	switch mode {
	case "solve":
		return solves
	case "report":
		return reports
	case "mixed":
		var mixed []payload
		for i := range solves {
			mixed = append(mixed, solves[i], reports[i])
		}
		return mixed
	default:
		log.Fatalf("unknown -mode %q (solve | report | mixed)", mode)
		return nil
	}
}

func mustEncode(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return raw
}

// post sends one request and reports its status plus any Retry-After
// and Leader hints. A nonzero epoch rides the X-Reap-Epoch header so a
// fenced ex-primary rejects us instead of acknowledging into a dead
// log. The body is drained so the connection is reusable; payloads are
// not parsed on the hot path — correctness is the service tests' job,
// throughput is ours.
func post(client *http.Client, url, tenant string, epoch uint64, body []byte) (status int, retryAfter time.Duration, leader string, err error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	if epoch > 0 {
		req.Header.Set("X-Reap-Epoch", strconv.FormatUint(epoch, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, "", err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	return resp.StatusCode, retryAfter, resp.Header.Get("Leader"), nil
}

// probe sends one request outside the measured window and surfaces its
// body on failure, so a misconfigured run dies with the server's error
// instead of a thousand status-4xx counts.
func probe(client *http.Client, url, tenant string, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func mean(ds []time.Duration) float64 {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return us(sum) / float64(len(ds))
}

// percentile reads the q-quantile from sorted latencies using the
// nearest-rank method.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return us(sorted[i])
}
