// The scenario example demonstrates the sim package: it runs a
// starved-winter scenario twice to show determinism (same seed, byte-
// identical trace), then contrasts it with the correlated cache-hot
// regime where sixteen identical devices collapse onto one LP solve per
// hour.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	sc := sim.Brownout()
	first, err := sim.Run(ctx, sc)
	if err != nil {
		log.Fatal(err)
	}
	second, err := sim.Run(ctx, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s: %s\n%s\n\n", sc.Name, sc.Description, first.Summary)
	fmt.Printf("determinism: run twice with seed %d -> traces identical: %v (%d bytes)\n\n",
		sc.Seed, bytes.Equal(first.Trace.Bytes(), second.Trace.Bytes()), len(first.Trace.Bytes()))

	hot := sim.CacheHot()
	res, err := sim.Run(ctx, hot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s: %s\n%s\n", hot.Name, hot.Description, res.Summary)
	if res.CacheStats != nil {
		fmt.Printf("\ncorrelated budgets: %d device-hours served by %d LP solves (%.1f%% hit rate)\n",
			res.Summary.Devices*res.Summary.Steps, res.CacheStats.Misses, 100*res.Summary.CacheHitRate)
	}
}
