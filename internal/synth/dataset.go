package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fpx"
)

// CorpusConfig controls synthetic corpus generation. The defaults
// reproduce the paper's user study scale: 14 subjects, 3553 windows.
type CorpusConfig struct {
	// NumUsers is the number of synthetic subjects.
	NumUsers int
	// TotalWindows is the corpus size across all users.
	TotalWindows int
	// Seed makes the corpus reproducible.
	Seed int64
}

// DefaultCorpusConfig mirrors the paper's data collection.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{NumUsers: 14, TotalWindows: 3553, Seed: 2019}
}

// activityShare is the fraction of wear time spent in each activity; the
// paper does not publish its label distribution, so a plausible daily-life
// mix is used (documented substitution).
var activityShare = map[Activity]float64{
	Sit:        0.20,
	Stand:      0.15,
	Walk:       0.20,
	Jump:       0.08,
	Drive:      0.15,
	LieDown:    0.12,
	Transition: 0.10,
}

// Dataset is a labeled corpus with a fixed stratified train/val/test split
// (60/20/20 per the paper).
type Dataset struct {
	Cfg     CorpusConfig
	Users   []UserProfile
	Windows []Window
	// Train, Val, Test index into Windows.
	Train, Val, Test []int
}

// NewDataset generates the corpus and its split.
func NewDataset(cfg CorpusConfig) (*Dataset, error) {
	if cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("synth: NumUsers %d must be positive", cfg.NumUsers)
	}
	if cfg.TotalWindows < cfg.NumUsers {
		return nil, fmt.Errorf("synth: TotalWindows %d below NumUsers %d", cfg.TotalWindows, cfg.NumUsers)
	}
	ds := &Dataset{Cfg: cfg}
	for u := 0; u < cfg.NumUsers; u++ {
		ds.Users = append(ds.Users, NewUserProfile(u, cfg.Seed))
	}

	// Spread windows across users as evenly as possible.
	perUser := make([]int, cfg.NumUsers)
	for i := range perUser {
		perUser[i] = cfg.TotalWindows / cfg.NumUsers
	}
	for i := 0; i < cfg.TotalWindows%cfg.NumUsers; i++ {
		perUser[i]++
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for u, count := range perUser {
		counts := apportion(count, activityShare)
		for _, act := range Activities() {
			for k := 0; k < counts[act]; k++ {
				ds.Windows = append(ds.Windows, Generate(ds.Users[u], act, rng))
			}
		}
	}
	ds.split(rand.New(rand.NewSource(cfg.Seed + 1)))
	return ds, nil
}

// apportion distributes count across activities proportionally to share
// using the largest-remainder method, so the total is exact.
func apportion(count int, share map[Activity]float64) map[Activity]int {
	type frac struct {
		act Activity
		rem float64
	}
	out := make(map[Activity]int, len(share))
	var fracs []frac
	assigned := 0
	for _, act := range Activities() {
		exact := share[act] * float64(count)
		n := int(exact)
		out[act] = n
		assigned += n
		fracs = append(fracs, frac{act, exact - float64(n)})
	}
	sort.Slice(fracs, func(i, j int) bool {
		if !fpx.Eq(fracs[i].rem, fracs[j].rem) {
			return fracs[i].rem > fracs[j].rem
		}
		return fracs[i].act < fracs[j].act
	})
	for i := 0; assigned < count; i++ {
		out[fracs[i%len(fracs)].act]++
		assigned++
	}
	return out
}

// split partitions windows 60/20/20, stratified by (user, activity) so
// every subject and class appears in every partition.
func (ds *Dataset) split(rng *rand.Rand) {
	groups := make(map[[2]int][]int)
	for i, w := range ds.Windows {
		key := [2]int{w.User, int(w.Activity)}
		groups[key] = append(groups[key], i)
	}
	// Deterministic group order.
	var keys [][2]int
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		idx := groups[k]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTrain := int(float64(len(idx)) * 0.6)
		nVal := int(float64(len(idx)) * 0.2)
		ds.Train = append(ds.Train, idx[:nTrain]...)
		ds.Val = append(ds.Val, idx[nTrain:nTrain+nVal]...)
		ds.Test = append(ds.Test, idx[nTrain+nVal:]...)
	}
}

// CountByActivity tallies windows per class over the whole corpus.
func (ds *Dataset) CountByActivity() map[Activity]int {
	out := make(map[Activity]int)
	for _, w := range ds.Windows {
		out[w.Activity]++
	}
	return out
}

// CountByUser tallies windows per subject.
func (ds *Dataset) CountByUser() map[int]int {
	out := make(map[int]int)
	for _, w := range ds.Windows {
		out[w.User]++
	}
	return out
}
