package synth

import (
	"math"
	"math/rand"
)

// posture describes the quasi-static component of an activity: the gravity
// direction seen by the device (in g, before user mounting rotation) and
// the stretch-band baseline.
type posture struct {
	gx, gy, gz float64
	stretch    float64
}

// postureOf returns the posture parameters for the static component of an
// activity. Dynamic activities still have a carrier posture.
func postureOf(a Activity) posture {
	switch a {
	case Sit:
		return posture{0.10, 0.35, 0.93, 0.46}
	case Stand:
		return posture{0.05, 0.97, 0.12, 0.36}
	case Walk:
		return posture{0.05, 0.92, 0.30, 0.40}
	case Jump:
		return posture{0.02, 0.96, 0.15, 0.40}
	case Drive:
		return posture{0.18, 0.55, 0.80, 0.44}
	case LieDown:
		return posture{0.18, 0.05, 0.96, 0.41}
	default: // Transition's endpoints are chosen per window.
		return posture{0.10, 0.35, 0.93, 0.46}
	}
}

// transitionEndpoints are the static postures a transition can connect.
var transitionEndpoints = []Activity{Sit, Stand, Drive, LieDown}

// Generate synthesizes one labeled activity window for the given user.
// All randomness is drawn from rng, so corpora are reproducible.
//
// On top of the user's mounting rotation, every window carries its own
// small orientation wobble and stretch-band drift: straps shift during
// wear. This within-class variance is what keeps the best design point
// near the paper's 94% rather than at a synthetic 100%.
func Generate(u UserProfile, act Activity, rng *rand.Rand) Window {
	const deg = math.Pi / 180
	u.RotX += rng.NormFloat64() * 6 * deg
	u.RotY += rng.NormFloat64() * 6 * deg
	u.RotZ += rng.NormFloat64() * 6 * deg
	u.StretchBase += rng.NormFloat64() * 0.018
	w := Window{
		User:     u.ID,
		Activity: act,
		AccelX:   make([]float64, WindowSamples),
		AccelY:   make([]float64, WindowSamples),
		AccelZ:   make([]float64, WindowSamples),
		Stretch:  make([]float64, WindowSamples),
	}
	switch act {
	case Sit, Stand, LieDown:
		genStatic(&w, u, act, rng)
	case Walk:
		genWalk(&w, u, rng)
	case Jump:
		genJump(&w, u, rng)
	case Drive:
		genDrive(&w, u, rng)
	case Transition:
		genTransition(&w, u, rng)
	default:
		genStatic(&w, u, Sit, rng)
	}
	return w
}

// fill writes a sample of accel (after mounting rotation and noise) and
// stretch at index i.
func fill(w *Window, u UserProfile, i int, ax, ay, az, accelNoise, stretchVal, stretchNoise float64, rng *rand.Rand) {
	x, y, z := u.rotate(ax, ay, az)
	ns := u.NoiseScale
	w.AccelX[i] = x + rng.NormFloat64()*accelNoise*ns
	w.AccelY[i] = y + rng.NormFloat64()*accelNoise*ns
	w.AccelZ[i] = z + rng.NormFloat64()*accelNoise*ns
	w.Stretch[i] = stretchVal + rng.NormFloat64()*stretchNoise*ns
}

// genStatic synthesizes the low-motion postures: gravity plus tiny
// physiological tremor and breathing sway.
func genStatic(w *Window, u UserProfile, act Activity, rng *rand.Rand) {
	p := postureOf(act)
	breathHz := 0.25 + rng.Float64()*0.1
	breathAmp := 0.012 * u.Vigor
	phase := rng.Float64() * 2 * math.Pi
	base := p.stretch + u.StretchBase
	for i := 0; i < WindowSamples; i++ {
		t := float64(i) / SampleRateHz
		sway := breathAmp * math.Sin(2*math.Pi*breathHz*t+phase)
		fill(w, u, i,
			p.gx, p.gy+sway, p.gz,
			0.045,
			base+u.StretchGain*0.004*math.Sin(2*math.Pi*breathHz*t+phase),
			0.005, rng)
	}
}

// genWalk synthesizes gait: a fundamental at the user's cadence on the
// vertical axis, a second harmonic on the forward axis, and a stretch-band
// oscillation at the same cadence that the 16-FFT feature picks up.
func genWalk(w *Window, u UserProfile, rng *rand.Rand) {
	p := postureOf(Walk)
	f := u.StepHz * (0.95 + rng.Float64()*0.1)
	phase := rng.Float64() * 2 * math.Pi
	v := u.Vigor
	base := p.stretch + u.StretchBase
	for i := 0; i < WindowSamples; i++ {
		t := float64(i) / SampleRateHz
		fund := math.Sin(2*math.Pi*f*t + phase)
		harm := math.Sin(2*math.Pi*2*f*t + phase*1.7)
		fill(w, u, i,
			p.gx+v*0.12*math.Sin(2*math.Pi*f*t+phase+math.Pi/3),
			p.gy+v*(0.30*fund+0.10*harm),
			p.gz+v*0.18*harm,
			0.06,
			base+u.StretchGain*0.10*fund,
			0.010, rng)
	}
}

// genJump synthesizes jumping: rectified-sine vertical bursts with hard
// landing transients and large stretch excursions.
func genJump(w *Window, u UserProfile, rng *rand.Rand) {
	p := postureOf(Jump)
	f := u.JumpHz * (0.95 + rng.Float64()*0.1)
	phase := rng.Float64() * 2 * math.Pi
	v := u.Vigor
	base := p.stretch + u.StretchBase
	for i := 0; i < WindowSamples; i++ {
		t := float64(i) / SampleRateHz
		s := math.Sin(2*math.Pi*f*t + phase)
		burst := s * s * s * s // sharpened to model flight/landing asymmetry
		landing := 0.0
		if s > 0.97 { // near the peak: impact transient
			landing = rng.NormFloat64() * 0.5
		}
		fill(w, u, i,
			p.gx+v*0.25*burst*math.Sin(phase+t),
			p.gy+v*(1.1*burst)+landing,
			p.gz+v*0.45*burst,
			0.08,
			base+u.StretchGain*0.25*math.Abs(s),
			0.015, rng)
	}
}

// genDrive synthesizes riding in a vehicle: a reclined posture carrying
// broadband vibration, sparse road bumps and slow lateral sway.
func genDrive(w *Window, u UserProfile, rng *rand.Rand) {
	p := postureOf(Drive)
	swayHz := 0.3 + rng.Float64()*0.2
	phase := rng.Float64() * 2 * math.Pi
	base := p.stretch + u.StretchBase
	// Sparse bump events with exponential decay.
	type bump struct {
		at  int
		amp float64
	}
	var bumps []bump
	nBumps := rng.Intn(4)
	for b := 0; b < nBumps; b++ {
		bumps = append(bumps, bump{at: rng.Intn(WindowSamples), amp: 0.2 + rng.Float64()*0.3})
	}
	for i := 0; i < WindowSamples; i++ {
		t := float64(i) / SampleRateHz
		var bumpAcc float64
		for _, b := range bumps {
			if i >= b.at {
				dt := float64(i-b.at) / SampleRateHz
				bumpAcc += b.amp * math.Exp(-dt/0.05) * math.Cos(2*math.Pi*12*dt)
			}
		}
		sway := 0.05 * math.Sin(2*math.Pi*swayHz*t+phase)
		fill(w, u, i,
			p.gx+sway,
			p.gy+0.4*bumpAcc,
			p.gz+bumpAcc,
			0.055,
			base+0.35*u.StretchGain*bumpAcc*0.05,
			0.014, rng)
	}
}

// genTransition synthesizes a posture change: gravity and stretch baseline
// smooth-step from one static posture to another over ~0.7 s, beginning at
// a random point in the window. Ramps that start late are exactly what the
// reduced sensing-period design points miss.
func genTransition(w *Window, u UserProfile, rng *rand.Rand) {
	from := transitionEndpoints[rng.Intn(len(transitionEndpoints))]
	to := from
	for to == from {
		to = transitionEndpoints[rng.Intn(len(transitionEndpoints))]
	}
	pf, pt := postureOf(from), postureOf(to)
	start := 0.5 + rng.Float64()*0.9 // seconds into the window; ramps land late, where short sensing periods cannot see them
	dur := 0.5 + rng.Float64()*0.4
	baseF := pf.stretch + u.StretchBase
	baseT := pt.stretch + u.StretchBase
	for i := 0; i < WindowSamples; i++ {
		t := float64(i) / SampleRateHz
		frac := (t - start) / dur
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		// Smoothstep for the posture change, plus effort motion while in
		// the ramp.
		s := frac * frac * (3 - 2*frac)
		effort := 0.0
		if frac > 0 && frac < 1 {
			effort = 0.10 * u.Vigor * math.Sin(2*math.Pi*3*t)
		}
		fill(w, u, i,
			pf.gx+(pt.gx-pf.gx)*s+effort,
			pf.gy+(pt.gy-pf.gy)*s+effort*0.7,
			pf.gz+(pt.gz-pf.gz)*s,
			0.045,
			baseF+(baseT-baseF)*s*u.StretchGain,
			0.012, rng)
	}
}
