package core

import (
	"testing"
)

func TestClassifyPaperBoundaries(t *testing.T) {
	c := DefaultConfig()
	cases := []struct {
		budget float64
		want   Region
	}{
		{0.0, RegionDead},
		{0.1, RegionDead}, // below the 0.18 J floor
		{0.2, Region1},    // barely alive
		{3.0, Region1},    // no DP saturates
		{4.0, Region1},    // DP5 needs 4.32 J
		{4.5, Region2},    // DP5 saturated, DP1 not
		{9.0, Region2},    //
		{9.936, Region3},  // DP1 saturation (the paper's 9.9 J)
		{12.0, Region3},   //
	}
	for _, tc := range cases {
		if got := Classify(c, tc.budget); got != tc.want {
			t.Errorf("Classify(%.3f J) = %v, want %v", tc.budget, got, tc.want)
		}
	}
}

func TestRegionStrings(t *testing.T) {
	for _, r := range []Region{RegionDead, Region1, Region2, Region3, Region(9)} {
		if r.String() == "" {
			t.Fatalf("empty string for region %d", int(r))
		}
	}
}

func TestRegionBoundariesSortedAndComplete(t *testing.T) {
	c := DefaultConfig()
	b := RegionBoundaries(c)
	if len(b) != len(c.DPs)+1 {
		t.Fatalf("got %d boundaries, want %d", len(b), len(c.DPs)+1)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("boundaries not sorted: %v", b)
		}
	}
	if !approx(b[0], 0.18, 1e-9) {
		t.Errorf("first boundary %v, want the 0.18 J idle floor", b[0])
	}
	last := b[len(b)-1]
	if !approx(last, 9.936, 1e-9) {
		t.Errorf("last boundary %v, want DP1 saturation 9.936 J", last)
	}
}

func TestMinMaxBudget(t *testing.T) {
	c := DefaultConfig()
	if !approx(c.MinBudget(), 0.18, 1e-12) {
		t.Errorf("MinBudget = %v, want 0.18", c.MinBudget())
	}
	if !approx(c.MaxUsefulBudget(), 9.936, 1e-9) {
		t.Errorf("MaxUsefulBudget = %v, want 9.936", c.MaxUsefulBudget())
	}
}
