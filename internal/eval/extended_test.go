package eval

import (
	"strings"
	"testing"

	"repro/internal/har"
	"repro/internal/synth"
)

func TestExtendedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res, err := ExtendedOn(smallCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 5 paper + 5 int8 + 2 goertzel
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, base := range []string{"DP1", "DP2", "DP3", "DP4", "DP5"} {
		orig, ok1 := res.Row(base)
		quant, ok2 := res.Row(base + "-int8")
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %s", base)
		}
		if quant.EnergyMJ >= orig.EnergyMJ {
			t.Errorf("%s-int8 energy %v not below float %v", base, quant.EnergyMJ, orig.EnergyMJ)
		}
		if orig.AccuracyPct-quant.AccuracyPct > 3 {
			t.Errorf("%s-int8 lost %.1f accuracy points", base, orig.AccuracyPct-quant.AccuracyPct)
		}
		if !quant.Extension || orig.Extension {
			t.Errorf("%s extension flags wrong", base)
		}
	}
	// Goertzel variants must undercut their FFT counterparts on energy.
	dp5, _ := res.Row("DP5")
	gz5, ok := res.Row("DP5-gz6")
	if !ok {
		t.Fatal("missing DP5-gz6")
	}
	if gz5.EnergyMJ >= dp5.EnergyMJ {
		t.Errorf("DP5-gz6 energy %v not below DP5 %v", gz5.EnergyMJ, dp5.EnergyMJ)
	}
	// Partial spectrum costs some accuracy but must stay well above
	// chance and within a few points of the full FFT.
	if dp5.AccuracyPct-gz5.AccuracyPct > 8 {
		t.Errorf("DP5-gz6 lost %.1f points, too many", dp5.AccuracyPct-gz5.AccuracyPct)
	}
	if !strings.Contains(res.Render(), "extension") {
		t.Error("render incomplete")
	}
}

func TestConfusionExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := smallCorpus(t)

	// DP5 (stretch only) must confuse static postures far more than DP1.
	dp1, err := Confusion(ds, har.PaperFive()[0])
	if err != nil {
		t.Fatal(err)
	}
	dp5, err := Confusion(ds, har.PaperFive()[4])
	if err != nil {
		t.Fatal(err)
	}
	staticRecall := func(r *ConfusionResult) float64 {
		return (r.ClassRecall(synth.Sit) + r.ClassRecall(synth.Stand) +
			r.ClassRecall(synth.Drive) + r.ClassRecall(synth.LieDown)) / 4
	}
	if staticRecall(dp5) >= staticRecall(dp1) {
		t.Errorf("DP5 static recall %.2f not below DP1 %.2f",
			staticRecall(dp5), staticRecall(dp1))
	}
	// Dynamic classes survive the stretch-only design point.
	if dp5.ClassRecall(synth.Walk) < 0.85 || dp5.ClassRecall(synth.Jump) < 0.85 {
		t.Errorf("DP5 dynamic recalls walk=%.2f jump=%.2f, want > 0.85",
			dp5.ClassRecall(synth.Walk), dp5.ClassRecall(synth.Jump))
	}
	// The matrix accounts for the whole test split.
	total := 0
	for _, row := range dp1.Matrix {
		for _, v := range row {
			total += v
		}
	}
	if total != len(ds.Test) {
		t.Fatalf("matrix holds %d samples, test split %d", total, len(ds.Test))
	}
	a, p, c := dp5.MostConfused()
	if c == 0 || a == p {
		t.Fatalf("MostConfused returned %v->%v x%d", a, p, c)
	}
	if !strings.Contains(dp1.Render(), "recall%") {
		t.Error("render incomplete")
	}
}

func TestMultiYearExperiment(t *testing.T) {
	res, err := MultiYear(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	years := map[int]bool{}
	for _, row := range res.Rows {
		years[row.Year] = true
		if row.MeanRatioDP1 < 1 {
			t.Errorf("%d: REAP/DP1 %v below 1", row.Year, row.MeanRatioDP1)
		}
		if row.MeanRatioDP5 < 1-1e-9 {
			t.Errorf("%d: REAP/DP5 %v below 1", row.Year, row.MeanRatioDP5)
		}
		if row.HarvestJ <= 0 || row.DaylightHours < 200 {
			t.Errorf("%d: degenerate trace (%v J, %d daylight hours)",
				row.Year, row.HarvestJ, row.DaylightHours)
		}
	}
	for y := 2015; y <= 2018; y++ {
		if !years[y] {
			t.Errorf("year %d missing", y)
		}
	}
	// Different weather realizations must differ.
	if res.Rows[0].HarvestJ == res.Rows[1].HarvestJ {
		t.Error("2015 and 2016 produced identical harvests")
	}
	if !strings.Contains(res.Render(), "2018") {
		t.Error("render incomplete")
	}
}

func TestDayInLifeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := smallCorpus(t)
	points, err := har.Characterize(ds, har.PaperFive())
	if err != nil {
		t.Fatal(err)
	}
	cfg := har.CoreConfig(points, 1)
	models := make([]*har.Model, len(points))
	for i := range points {
		models[i] = points[i].Model
	}
	day, err := SolarDayBudget(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DayInLife(cfg, models, ds.Users[0], day, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hours) != 24 {
		t.Fatalf("%d hours", len(res.Hours))
	}
	if res.DayRealized <= 0.5 {
		t.Fatalf("day realized accuracy %v, implausibly low", res.DayRealized)
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Fatalf("coverage %v", res.Coverage)
	}
	// Night hours (no harvest, no battery in this experiment) are dark.
	if res.Hours[2].WindowsSeen != 0 {
		t.Errorf("device active at 2am with zero budget")
	}
	// Daylight hours see windows.
	sawDaylight := false
	for _, h := range res.Hours {
		if h.WindowsSeen > 50 {
			sawDaylight = true
		}
	}
	if !sawDaylight {
		t.Error("no hour saw substantial classification")
	}
	if !strings.Contains(res.Render(), "Day in the life") {
		t.Error("render incomplete")
	}

	// Validation paths.
	if _, err := DayInLife(cfg, models[:2], ds.Users[0], day, 1); err == nil {
		t.Error("model count mismatch accepted")
	}
	if _, err := DayInLife(cfg, models, ds.Users[0], day[:10], 1); err == nil {
		t.Error("short day accepted")
	}
}
