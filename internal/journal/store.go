package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Options configures a Store.
type Options struct {
	// SyncEveryAppend runs fdatasync after every append — the "always"
	// fsync policy: an acknowledged event survives power loss, at the
	// cost of a disk flush per mutation. When false, appends still
	// reach the kernel before returning (surviving kill -9); callers
	// bound power-loss exposure with periodic Sync calls.
	SyncEveryAppend bool

	// RetainSegments keeps that many rotated segments on disk after a
	// compaction instead of deleting everything the snapshot covers.
	// Retained segments let a replication cursor read history back past
	// the newest snapshot, so a briefly-lagging follower catches up by
	// log shipping instead of a full snapshot bootstrap. Zero preserves
	// the pre-replication behavior: covered segments are removed.
	RetainSegments int
}

// Stats is a snapshot of a Store's counters for observability surfaces.
type Stats struct {
	// Seq is the total number of events in history: the loaded
	// snapshot's base plus every replayed and appended record.
	Seq uint64 `json:"seq"`
	// SnapshotSeq is the sequence number of the newest snapshot.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Replayed counts records replayed when the store opened.
	Replayed uint64 `json:"replayed"`
	// Appended counts records appended by this process.
	Appended uint64 `json:"appended"`
	// TornTail reports whether Start truncated a torn tail.
	TornTail bool `json:"torn_tail"`
	// Compactions counts snapshots written by this process.
	Compactions uint64 `json:"compactions"`
}

// Store owns one journal directory: the newest snapshot, the log
// segments that follow it, and the active segment appends go to.
//
// Lifecycle: Open scans and validates the directory and loads the
// newest snapshot into memory; the caller restores its state from
// Snapshot, then calls Start with a replay function to apply the logged
// tail; only then may Append, Sync and Compact be used. All methods are
// safe for concurrent use after Start.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment, nil until Start
	started  bool
	closed   bool
	seq      uint64 // events in history (snapshot base + replayed + appended)
	segStart uint64 // seq at which the active segment begins

	snapshot []byte
	snapSeq  uint64

	replayed    uint64
	appended    uint64
	torn        bool
	compactions uint64

	// failAppend, when non-nil, is returned (classified) by every
	// append in place of the real write — the disk-full test hook.
	failAppend error

	// segments pending replay, discovered by Open, consumed by Start.
	pending []segmentFile

	// disk lists every segment currently on disk, sorted ascending by
	// start; the active segment is last. Cursors resolve reads and
	// segment hops against it, so it is the single source of truth for
	// what history remains readable.
	disk []segmentFile
}

type segmentFile struct {
	path  string
	start uint64
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(seq uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }
func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }

// parseSeq extracts the sequence number from a journal file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open scans dir (created if absent), validates and loads the newest
// readable snapshot, and records which log segments must replay. The
// returned store is not yet appendable — restore state from Snapshot,
// then call Start.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	s := &Store{dir: dir, opts: opts}

	var snaps []segmentFile
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// Leftover from a compaction cut short before its atomic
			// rename; never valid state.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, segmentFile{path: filepath.Join(dir, name), start: seq})
		}
		if seq, ok := parseSeq(name, segPrefix, segSuffix); ok {
			s.pending = append(s.pending, segmentFile{path: filepath.Join(dir, name), start: seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].start > snaps[j].start })
	sort.Slice(s.pending, func(i, j int) bool { return s.pending[i].start < s.pending[j].start })

	// Newest snapshot that reads back validly wins; an unreadable one
	// (which the atomic rename should make impossible) falls back to the
	// previous, whose covering segments are still on disk until cleanup.
	for _, sn := range snaps {
		payload, ok := readSnapshot(sn.path)
		if !ok {
			continue
		}
		s.snapshot = payload
		s.snapSeq = sn.start
		break
	}
	s.seq = s.snapSeq
	return s, nil
}

// readSnapshot loads a snapshot file: exactly one valid record.
func readSnapshot(path string) ([]byte, bool) {
	var payload []byte
	n := 0
	_, torn, err := scanSegment(path, func(p []byte) error {
		payload = p
		n++
		return nil
	})
	if err != nil || torn || n != 1 {
		return nil, false
	}
	return payload, true
}

// Snapshot returns the newest snapshot payload loaded by Open, or nil
// when the directory holds none, plus the sequence number it covers.
func (s *Store) Snapshot() (payload []byte, seq uint64) { return s.snapshot, s.snapSeq }

// Start replays every logged event after the snapshot through fn (in
// append order), truncates a torn tail in place, and opens the journal
// for appending. Segments that the snapshot already covers are removed.
// An error from fn aborts the whole start — a daemon must not serve a
// fleet it could not reconstruct.
func (s *Store) Start(fn func(payload []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return fmt.Errorf("%w: Start on a started or closed store", ErrClosed)
	}

	expected := s.snapSeq
	last := -1
	var covered, replayedSegs []segmentFile
	for i, seg := range s.pending {
		if seg.start < s.snapSeq {
			// Fully covered by the snapshot. RetainSegments keeps the
			// newest of these for replication cursors; the rest are
			// crash artifacts of a compaction cut short before cleanup.
			covered = append(covered, seg)
			continue
		}
		if seg.start != expected {
			return fmt.Errorf("%w: missing segment: have %s, expected one starting at %d",
				ErrCorrupt, filepath.Base(seg.path), expected)
		}
		n := uint64(0)
		validEnd, torn, err := scanSegment(seg.path, func(p []byte) error {
			n++
			return fn(p)
		})
		if err != nil {
			return fmt.Errorf("journal: replaying %s: %w", filepath.Base(seg.path), err)
		}
		if torn {
			if i != len(s.pending)-1 {
				// A torn record mid-history with later segments present
				// is corruption, not a crash artifact: later events
				// cannot be trusted without the ones before them.
				return fmt.Errorf("journal: %s: %w mid-history", filepath.Base(seg.path), ErrTornTail)
			}
			if err := os.Truncate(seg.path, validEnd); err != nil {
				return fmt.Errorf("journal: truncating torn tail of %s: %w", filepath.Base(seg.path), err)
			}
			s.torn = true
		}
		expected += n
		s.replayed += n
		replayedSegs = append(replayedSegs, seg)
		last = i
	}
	keep := s.opts.RetainSegments
	if keep > len(covered) {
		keep = len(covered)
	}
	for _, seg := range covered[:len(covered)-keep] {
		_ = os.Remove(seg.path)
	}
	s.disk = append(s.disk[:0], covered[len(covered)-keep:]...)
	s.disk = append(s.disk, replayedSegs...)
	s.seq = expected
	s.pending = nil
	return s.openActive(last >= 0)
}

// openActive opens the active segment for appending. reuse continues
// the newest existing segment; otherwise a fresh segment is cut at the
// current sequence number.
func (s *Store) openActive(reuse bool) error {
	name := segName(s.seq)
	if reuse && len(s.disk) > 0 {
		// The newest on-disk segment ends exactly at s.seq after replay
		// and truncation, so appending continues it; its name keeps the
		// start it had.
		name = filepath.Base(s.disk[len(s.disk)-1].path)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening segment: %w", err)
	}
	s.f = f
	if start, ok := parseSeq(name, segPrefix, segSuffix); ok {
		s.segStart = start
	}
	if !reuse || len(s.disk) == 0 {
		s.disk = append(s.disk, segmentFile{path: filepath.Join(s.dir, name), start: s.seq})
	}
	s.started = true
	return nil
}

// Append logs one event payload. The record reaches the kernel before
// Append returns (an acknowledged event survives process death); with
// Options.SyncEveryAppend it also reaches the disk. It returns the
// event's sequence number, 1-based over all of history.
func (s *Store) Append(payload []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed {
		return 0, fmt.Errorf("%w: Append before Start or after Close", ErrClosed)
	}
	if err := s.writeRecord(payload); err != nil {
		return 0, err
	}
	if s.opts.SyncEveryAppend {
		if err := s.f.Sync(); err != nil {
			return 0, classifyWriteErr(err)
		}
	}
	s.seq++
	s.appended++
	return s.seq, nil
}

// writeRecord frames and writes payload to the active segment, flushed
// to the kernel. Callers hold s.mu.
func (s *Store) writeRecord(payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("journal: payload %d bytes exceeds limit %d", len(payload), MaxPayload)
	}
	if s.failAppend != nil {
		return classifyWriteErr(s.failAppend)
	}
	// Build the frame in one buffer so a crash can tear at most the
	// tail record, never interleave two.
	bw := newFrameBuffer(payload)
	if _, err := s.f.Write(bw); err != nil {
		return classifyWriteErr(err)
	}
	return nil
}

// classifyWriteErr maps an append/sync failure to the taxonomy: out of
// space (ENOSPC, or the short write a full device produces) becomes
// ErrDiskFull so the daemon can degrade instead of crash; anything else
// stays an opaque wrapped I/O error.
func classifyWriteErr(err error) error {
	if errors.Is(err, syscall.ENOSPC) || errors.Is(err, io.ErrShortWrite) {
		return fmt.Errorf("%w: %v", ErrDiskFull, err)
	}
	return fmt.Errorf("journal: append: %w", err)
}

// FailAppends injects err into every subsequent append (nil restores
// real writes) — the regression hook for disk-full behavior, the
// moral twin of Abandon for kill -9.
func (s *Store) FailAppends(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAppend = err
}

// Sync flushes the active segment to disk — the periodic fdatasync of
// the "interval" fsync policy. The flush runs outside the append mutex:
// a multi-megabyte fdatasync must not stall the hot append path behind
// it, and flushing concurrently with new appends is sound — the tick
// covers everything appended before it, newer records belong to the
// next tick. A concurrent Compact may close the segment mid-sync;
// os.File serializes that internally, and the rotation's own sync
// already covered the file, so ErrClosed is benign.
func (s *Store) Sync() error {
	s.mu.Lock()
	if !s.started || s.closed {
		s.mu.Unlock()
		return nil
	}
	f := s.f
	s.mu.Unlock()
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil
		}
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Compact records snapshot as the complete state at the current
// sequence number and makes it the new replay base: the active segment
// is rotated first, then the snapshot is written to a temp file,
// fsynced and atomically renamed, and finally older snapshots and
// segments are removed. A crash anywhere in the sequence reopens to a
// consistent prefix.
func (s *Store) Compact(snapshot []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed {
		return fmt.Errorf("%w: Compact before Start or after Close", ErrClosed)
	}
	seq := s.seq

	// 1. Rotate: the old segment is complete at seq, appends go to a
	// fresh segment starting there.
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("journal: compact: syncing old segment: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("journal: compact: closing old segment: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: rotating segment: %w", err)
	}
	s.f = f
	oldStart := s.segStart
	s.segStart = seq
	if oldStart < seq {
		s.disk = append(s.disk, segmentFile{path: filepath.Join(s.dir, segName(seq)), start: seq})
	}

	// 2. Snapshot: temp write, fsync, atomic rename.
	tmp := filepath.Join(s.dir, snapName(seq)+".tmp")
	if err := writeSnapshotFile(tmp, snapshot); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(seq))); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	syncDir(s.dir)

	// 3. Cleanup: anything strictly before the new snapshot is covered
	// by it, but RetainSegments rotated segments stay on disk so
	// replication cursors can still read recent history. Best-effort —
	// leftovers are skipped and removed next Open.
	if drop := len(s.disk) - 1 - s.opts.RetainSegments; drop > 0 {
		for _, seg := range s.disk[:drop] {
			_ = os.Remove(seg.path)
		}
		s.disk = append(s.disk[:0:0], s.disk[drop:]...)
	}
	if s.snapSeq < seq && s.snapshot != nil {
		_ = os.Remove(filepath.Join(s.dir, snapName(s.snapSeq)))
	}
	s.snapshot = snapshot
	s.snapSeq = seq
	s.compactions++
	return nil
}

func writeSnapshotFile(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := f.Write(newFrameBuffer(payload)); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Close syncs and closes the active segment. It does not compact —
// callers wanting a fast next boot snapshot first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	serr := s.f.Sync()
	cerr := s.f.Close()
	if serr != nil {
		return fmt.Errorf("journal: close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close: %w", cerr)
	}
	return nil
}

// Abandon drops the store without syncing — the crash-test hook that
// models kill -9: buffered user-space state is discarded, anything
// already written to the kernel survives for the next Open.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.f != nil {
		_ = s.f.Close()
	}
}

// Seq returns the current sequence number: events in history so far.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Seq:         s.seq,
		SnapshotSeq: s.snapSeq,
		Replayed:    s.replayed,
		Appended:    s.appended,
		TornTail:    s.torn,
		Compactions: s.compactions,
	}
}

// SnapshotNow returns the newest snapshot payload and the sequence
// number it covers, tracking compactions as they happen (unlike
// Snapshot, which is a boot-time accessor with no synchronization).
// The payload must be treated as read-only.
func (s *Store) SnapshotNow() (payload []byte, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshot, s.snapSeq
}

// OldestRetained returns the sequence number from which on-disk history
// is readable: a cursor can serve events in (OldestRetained, Seq].
// Followers whose position predates it need a snapshot bootstrap.
func (s *Store) OldestRetained() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.disk) > 0 {
		return s.disk[0].start
	}
	return s.seq
}

// Reset discards the store's entire on-disk history and re-roots it at
// seq with the given snapshot — the follower's snapshot-bootstrap
// install, when its local log is not a prefix of the new primary's.
// A crash mid-reset can leave an empty or stale directory; either way
// the follower's next connect detects the mismatch and resets again,
// so the window is self-healing rather than corrupting.
func (s *Store) Reset(snapshot []byte, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed {
		return fmt.Errorf("%w: Reset before Start or after Close", ErrClosed)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		_, isSeg := parseSeq(name, segPrefix, segSuffix)
		_, isSnap := parseSeq(name, snapPrefix, snapSuffix)
		if isSeg || isSnap || strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
	tmp := filepath.Join(s.dir, snapName(seq)+".tmp")
	if err := writeSnapshotFile(tmp, snapshot); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(seq))); err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	syncDir(s.dir)
	f, err := os.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	s.f = f
	s.seq, s.segStart, s.snapSeq = seq, seq, seq
	s.snapshot = snapshot
	s.disk = append(s.disk[:0:0], segmentFile{path: filepath.Join(s.dir, segName(seq)), start: seq})
	s.compactions++
	return nil
}

// segmentContaining returns the on-disk segment holding event seq+1:
// the one with the greatest start <= seq.
func (s *Store) segmentContaining(seq uint64) (path string, start uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.disk) - 1; i >= 0; i-- {
		if s.disk[i].start <= seq {
			return s.disk[i].path, s.disk[i].start, true
		}
	}
	return "", 0, false
}

// segmentAt returns the on-disk segment starting exactly at seq, the
// hop test a cursor uses to tell a finished segment from a live tail.
func (s *Store) segmentAt(seq uint64) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.disk) - 1; i >= 0; i-- {
		if s.disk[i].start == seq {
			return s.disk[i].path, true
		}
	}
	return "", false
}

// newFrameBuffer returns payload framed as one record in a fresh
// buffer, so the write to the file is a single contiguous syscall.
func newFrameBuffer(payload []byte) []byte {
	buf := make([]byte, frameSize+len(payload))
	frameInto(buf, payload)
	return buf
}
