package sim

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden traces instead of comparing against
// them:
//
//	go test ./sim -run TestGoldenTraces -update
//
// Commit the regenerated files with the change that moved them, and say
// why the trace moved in the commit message — a golden diff is a
// behavior diff.
var update = flag.Bool("update", false, "rewrite golden trace files")

// TestGoldenTraces locks every corpus scenario's trace down
// byte-for-byte. Any change to the solvers, the cache, the controller
// accounting, the harvest/consumption models or the trace encoding
// shows up here as a diff against testdata/<scenario>.golden.
//
// The goldens are generated on amd64 (Go's portable math, no fused
// multiply-add); the fixed-point trace encoding leaves ~5·10⁻⁷ of
// headroom before a last-bit arithmetic difference could flip a digit.
func TestGoldenTraces(t *testing.T) {
	for _, sc := range corpusScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Trace.Bytes()
			path := filepath.Join("testdata", sc.Name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trace diverged from %s:\n%s", path, firstDiff(got, want))
			}
		})
	}
}

// TestGoldenTracesPlanBackend guards the default-backend flip to
// "plan". The sim package deliberately resolves an unset
// Scenario.Solver to simplex — not to reap.DefaultSolver — so the
// golden traces stay pinned to the paper's Algorithm 1 across registry
// default changes. This test covers the flip anyway: every library
// scenario that does not name a backend (cloudy-bursts pins enumerate)
// is re-run with the compiled parametric plan and must reproduce its
// checked-in golden trace byte for byte. Only the header's solver=
// token may differ, since the trace honestly records which backend
// ran; every record line — budgets, allocations, planned energy,
// batteries, accuracies — must be byte-identical to the
// simplex-generated golden. No golden is regenerated for the flip: the
// parametric solver is exact enough that the fixed-point trace
// encoding cannot tell it apart from the paper's Algorithm 1.
func TestGoldenTracesPlanBackend(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	covered := 0
	for _, sc := range corpusScenarios(t) {
		if sc.Solver != "" {
			continue // pinned to a specific backend; not affected by the default
		}
		sc := sc
		covered++
		t.Run(sc.Name, func(t *testing.T) {
			sc.Solver = "plan"
			res, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Trace.Bytes()
			// Normalize the single header token that names the backend;
			// everything else must match exactly.
			got = bytes.Replace(got, []byte("solver=plan"), []byte("solver=simplex"), 1)
			want, err := os.ReadFile(filepath.Join("testdata", sc.Name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("plan backend diverged from the golden trace:\n%s", firstDiff(got, want))
			}
		})
	}
	if covered == 0 {
		t.Fatal("no corpus scenario runs on the default backend")
	}
}

// firstDiff renders the first differing line of two trace encodings.
func firstDiff(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d lines", len(g), len(w))
}

// TestGoldenCoversCorpus fails when a scenario is added to the corpus
// without a checked-in golden, or a stale golden lingers after a rename.
func TestGoldenCoversCorpus(t *testing.T) {
	if *update {
		t.Skip("regenerating")
	}
	want := map[string]bool{}
	for _, sc := range corpusScenarios(t) {
		want[sc.Name+".golden"] = true
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !want[e.Name()] {
			t.Errorf("stale golden %s has no corpus scenario", e.Name())
		}
		delete(want, e.Name())
	}
	for name := range want {
		t.Errorf("scenario %s has no checked-in golden", name)
	}
}
