package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro"
)

// variant reruns a scenario with the solver/cache combination under
// test, keeping everything else (seed, climate, consumption model)
// identical. Per-device solver overrides (mixed-fleet) stay in place —
// those devices are simply identical across variants.
func variant(t *testing.T, sc Scenario, solver string, cached bool, resolutionJ float64) *Result {
	t.Helper()
	sc.Solver = solver
	sc.Cache = cached
	sc.CacheResolutionJ = resolutionJ
	res, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("%s/%s cached=%v: %v", sc.Name, solver, cached, err)
	}
	return res
}

// quantizationBound is the documented objective-loss bound of budget
// quantization: resolution · max_i aᵢ^α / (TP·(Pᵢ−Poff)). The LP's
// value function is concave in the budget, so its steepest marginal
// value — the initial slope — bounds the loss over any resolution-sized
// segment.
func quantizationBound(cfg reap.Config, resolutionJ float64) float64 {
	maxRatio := 0.0
	for _, d := range cfg.DPs {
		w := math.Pow(d.Accuracy, cfg.Alpha)
		if cfg.Alpha == 0 {
			w = 1
		}
		if ratio := w / (cfg.Period * (d.Power - cfg.POff)); ratio > maxRatio {
			maxRatio = ratio
		}
	}
	return resolutionJ * maxRatio
}

func allocOf(r *StepRecord) reap.Allocation {
	return reap.Allocation{Active: r.Active, Off: r.OffS, Dead: r.DeadS}
}

// TestDifferentialBackends runs every corpus scenario through the
// simplex, enumerate and plan backends, uncached, and requires the
// closed loops to agree step for step: same LP budgets, same planned
// energy, same objective, same battery trajectory. Simplex is the
// reference; enumerate and the compiled parametric plan must each track
// it. Per-step solver differences are at floating-point noise level and
// the loop is contractive, so the tolerance holds over the whole
// horizon.
func TestDifferentialBackends(t *testing.T) {
	const tol = 1e-6
	for _, sc := range corpusScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := variant(t, sc, reap.SolverSimplex, false, 0)
			for _, solver := range []string{reap.SolverEnumerate, reap.SolverPlan} {
				b := variant(t, sc, solver, false, 0)
				if len(a.Trace.Records) != len(b.Trace.Records) {
					t.Fatalf("%s: record counts differ: %d vs %d", solver, len(a.Trace.Records), len(b.Trace.Records))
				}
				for i := range a.Trace.Records {
					ra, rb := &a.Trace.Records[i], &b.Trace.Records[i]
					cfg := a.Configs[ra.Device]
					if d := math.Abs(ra.SolveBudgetJ - rb.SolveBudgetJ); d > tol {
						t.Fatalf("%s step %d dev %d: LP budgets diverged by %g", solver, ra.Step, ra.Device, d)
					}
					if d := math.Abs(ra.PlannedJ - rb.PlannedJ); d > tol {
						t.Fatalf("%s step %d dev %d: planned energy diverged by %g", solver, ra.Step, ra.Device, d)
					}
					ja := allocOf(ra).Objective(cfg)
					jb := allocOf(rb).Objective(cfg)
					if d := math.Abs(ja - jb); d > tol {
						t.Fatalf("%s step %d dev %d: objectives diverged by %g (%v vs %v)",
							solver, ra.Step, ra.Device, d, ja, jb)
					}
					if d := math.Abs(ra.BatteryJ - rb.BatteryJ); d > 1e-5 {
						t.Fatalf("%s step %d dev %d: battery trajectories diverged by %g", solver, ra.Step, ra.Device, d)
					}
				}
			}
		})
	}
}

// TestDifferentialCacheExactMode requires the cache's exact mode (zero
// resolution: budgets keyed by bit pattern, dedup only) to reproduce
// the uncached run bit for bit, under all three backends, for every
// scenario — the cache layer must be invisible when it does not
// quantize.
func TestDifferentialCacheExactMode(t *testing.T) {
	for _, sc := range corpusScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, solver := range []string{reap.SolverSimplex, reap.SolverEnumerate, reap.SolverPlan} {
				uncached := variant(t, sc, solver, false, 0)
				exact := variant(t, sc, solver, true, -1)
				if !reflect.DeepEqual(uncached.Trace.Records, exact.Trace.Records) {
					for i := range uncached.Trace.Records {
						if !reflect.DeepEqual(uncached.Trace.Records[i], exact.Trace.Records[i]) {
							t.Fatalf("%s: exact-mode cache diverged at record %d:\nuncached: %+v\ncached:   %+v",
								solver, i, uncached.Trace.Records[i], exact.Trace.Records[i])
						}
					}
					t.Fatalf("%s: exact-mode cache diverged", solver)
				}
			}
		})
	}
}

// TestDifferentialCachedWithinQuantizationBound runs every scenario
// cached at the default 1 mJ resolution, under all three backends, and
// checks each step of the cached closed loop against an exact solve at
// the same LP budget: the cached plan must stay feasible (never spend
// more than the true budget) and its objective must sit within the
// documented quantization bound of the exact optimum. This validates
// the bound inside full closed-loop trajectories, not just on isolated
// solves.
func TestDifferentialCachedWithinQuantizationBound(t *testing.T) {
	const eps = 1e-9
	resolution := reap.DefaultCacheResolution
	exactSolver, err := reap.LookupSolver(reap.SolverSimplex)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, sc := range corpusScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, solver := range []string{reap.SolverSimplex, reap.SolverEnumerate, reap.SolverPlan} {
				res := variant(t, sc, solver, true, resolution)
				for i := range res.Trace.Records {
					r := &res.Trace.Records[i]
					cfg := res.Configs[r.Device]
					if r.PlannedJ > r.SolveBudgetJ+eps {
						t.Fatalf("%s step %d dev %d: cached plan spends %v J of a %v J budget",
							solver, r.Step, r.Device, r.PlannedJ, r.SolveBudgetJ)
					}
					exact, err := exactSolver.Solve(ctx, cfg, r.SolveBudgetJ)
					if err != nil {
						t.Fatalf("%s step %d dev %d: exact solve: %v", solver, r.Step, r.Device, err)
					}
					jCached := allocOf(r).Objective(cfg)
					jExact := exact.Objective(cfg)
					bound := quantizationBound(cfg, resolution)
					if jCached < jExact-bound-eps {
						t.Fatalf("%s step %d dev %d: cached objective %v below exact %v by more than the bound %v",
							solver, r.Step, r.Device, jCached, jExact, bound)
					}
					if jCached > jExact+eps {
						t.Fatalf("%s step %d dev %d: cached objective %v exceeds exact optimum %v",
							solver, r.Step, r.Device, jCached, jExact)
					}
				}
			}
		})
	}
}

// TestDifferentialSummariesClose cross-checks the aggregate metrics of
// cached and uncached runs: quantizing budgets down by at most 1 mJ per
// solve must not visibly move fleet-level utility or the neutrality
// residual.
func TestDifferentialSummariesClose(t *testing.T) {
	for _, sc := range corpusScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			uncached := variant(t, sc, reap.SolverSimplex, false, 0)
			cached := variant(t, sc, reap.SolverSimplex, true, reap.DefaultCacheResolution)
			if d := math.Abs(uncached.Summary.MeanUtility - cached.Summary.MeanUtility); d > 1e-2 {
				t.Fatalf("mean utility moved by %g under caching", d)
			}
			if d := math.Abs(uncached.Summary.NeutralityError - cached.Summary.NeutralityError); d > 2e-2 {
				t.Fatalf("neutrality error moved by %g under caching", d)
			}
		})
	}
}
