package sim

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Summary aggregates a run into the closed-loop metrics the paper's
// claims are about. All energies are joules summed over the whole fleet
// and horizon.
type Summary struct {
	Devices, Steps int

	// TotalHarvestJ is the energy actually harvested; TotalBudgetJ what
	// the controllers were told (differs under forecast-driven budgets);
	// TotalPlannedJ what the plans would consume; TotalConsumedJ what
	// execution drew.
	TotalHarvestJ, TotalBudgetJ, TotalPlannedJ, TotalConsumedJ float64

	// BatteryStartJ and BatteryEndJ are fleet-wide battery charge at the
	// horizon ends.
	BatteryStartJ, BatteryEndJ float64

	// NeutralityError is the relative residual of the controllers'
	// energy ledger, |budget − consumed − Δbattery| / budget: zero for a
	// perfectly energy-neutral run; growing with battery-overflow
	// losses, brownout clamping and end-of-horizon accounting carry.
	NeutralityError float64

	// MeanAccuracy and MeanUtility average the per-device-hour expected
	// accuracy and its fault-degraded counterpart. ActiveFraction and
	// DeadFraction are time shares of the whole fleet-horizon.
	MeanAccuracy, MeanUtility    float64
	ActiveFraction, DeadFraction float64

	// FaultCount is the number of injected fault episodes.
	FaultCount int

	// CacheHitRate is the shared solve cache's hit rate (hits plus
	// coalesced over lookups); -1 when the scenario ran uncached.
	CacheHitRate float64

	// Elapsed and StepsPerSec measure wall-clock performance
	// (device-steps per second). Nondeterministic — excluded from golden
	// comparisons.
	Elapsed     time.Duration
	StepsPerSec float64
}

// summarize computes the run metrics from the trace and battery
// endpoints.
func summarize(res *Result, batteryStart, batteryEnd float64, elapsed time.Duration) Summary {
	t := res.Trace
	s := Summary{
		Devices:       t.Devices,
		Steps:         t.Steps,
		BatteryStartJ: batteryStart,
		BatteryEndJ:   batteryEnd,
		CacheHitRate:  -1,
		Elapsed:       elapsed,
	}
	var periodTotal float64
	for i := range t.Records {
		r := &t.Records[i]
		s.TotalHarvestJ += r.HarvestJ
		s.TotalBudgetJ += r.BudgetJ
		s.TotalPlannedJ += r.PlannedJ
		s.TotalConsumedJ += r.ConsumedJ
		s.MeanAccuracy += r.Accuracy
		s.MeanUtility += r.Utility
		if r.Fault != "none" {
			s.FaultCount++
		}
		var active float64
		for _, a := range r.Active {
			active += a
		}
		s.ActiveFraction += active
		s.DeadFraction += r.DeadS
		periodTotal += res.Configs[r.Device].Period
	}
	if n := len(t.Records); n > 0 {
		s.MeanAccuracy /= float64(n)
		s.MeanUtility /= float64(n)
	}
	if periodTotal > 0 {
		s.ActiveFraction /= periodTotal
		s.DeadFraction /= periodTotal
	}
	if s.TotalBudgetJ > 0 {
		s.NeutralityError = math.Abs(s.TotalBudgetJ-s.TotalConsumedJ-(batteryEnd-batteryStart)) / s.TotalBudgetJ
	}
	if res.CacheStats != nil {
		s.CacheHitRate = res.CacheStats.HitRate()
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.StepsPerSec = float64(len(t.Records)) / sec
	}
	return s
}

// String renders the summary as a small human-readable report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "devices=%d steps=%d (%d device-hours)\n", s.Devices, s.Steps, s.Devices*s.Steps)
	fmt.Fprintf(&b, "energy: harvested=%.2f J budgeted=%.2f J planned=%.2f J consumed=%.2f J\n",
		s.TotalHarvestJ, s.TotalBudgetJ, s.TotalPlannedJ, s.TotalConsumedJ)
	fmt.Fprintf(&b, "battery: %.2f J -> %.2f J   neutrality error=%.4f\n",
		s.BatteryStartJ, s.BatteryEndJ, s.NeutralityError)
	fmt.Fprintf(&b, "quality: accuracy=%.4f utility=%.4f active=%.1f%% dead=%.1f%% faults=%d\n",
		s.MeanAccuracy, s.MeanUtility, 100*s.ActiveFraction, 100*s.DeadFraction, s.FaultCount)
	if s.CacheHitRate >= 0 {
		fmt.Fprintf(&b, "cache: hit rate=%.1f%%\n", 100*s.CacheHitRate)
	}
	fmt.Fprintf(&b, "perf: %s elapsed, %.0f device-steps/sec", s.Elapsed.Round(time.Millisecond), s.StepsPerSec)
	return b.String()
}
