package reap

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
)

// Recommended sizing for an opted-in fleet solve cache
// (WithSolveCache(DefaultCacheSize, DefaultCacheResolution)): room for
// sixteen thousand distinct (config, budget) entries and a 1 mJ budget
// resolution — fine enough that the worst-case objective loss for the
// paper's configuration is below 2·10⁻⁴, coarse enough that devices in
// the same harvesting conditions share entries. Since the plan-first
// re-tier NewFleet no longer installs this cache by default: the
// compiled-plan solve is cheaper than a cache lookup, so caching pays
// only on expensive backends (simplex, remote solvers).
const (
	DefaultCacheSize       = 1 << 14
	DefaultCacheResolution = 1e-3
)

// CacheStats is a point-in-time snapshot of a SolveCache's counters:
// hits, misses, singleflight-coalesced lookups, LRU evictions, and the
// current entry count against capacity.
type CacheStats = cache.Stats

// SolveCache memoizes solver results across devices: a sharded,
// LRU-bounded, singleflight-deduplicated cache keyed by a canonical
// configuration fingerprint and a quantized energy budget.
//
// Budgets are quantized DOWN to the cache's resolution, so a cached
// allocation never consumes more energy than the caller's true budget,
// and its objective is within resolution · max_i aᵢ^α/(TP·(Pᵢ−Poff)) of
// the exact optimum (the LP's value function is concave in the budget,
// so the initial marginal value bounds every segment). Callers that need
// bit-identical results use a zero resolution — exact budget keys, dedup
// only — or disable caching entirely with WithoutSolveCache.
//
// A single SolveCache is safe for concurrent use and is meant to be
// shared: every controller in a fleet, or several fleets with the same
// configuration, hit one cache (WithSharedSolveCache).
type SolveCache struct {
	c *cache.Cache
}

// NewSolveCache creates a cache holding at most size entries with the
// given budget quantization resolution in joules (zero for exact mode).
func NewSolveCache(size int, resolutionJ float64) (*SolveCache, error) {
	c, err := cache.New(size, resolutionJ)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return &SolveCache{c: c}, nil
}

// Stats snapshots the cache counters.
func (sc *SolveCache) Stats() CacheStats { return sc.c.Stats() }

// Resolution returns the budget quantization resolution in joules (zero
// in exact mode).
func (sc *SolveCache) Resolution() float64 { return sc.c.Resolution() }

// Cache entries are additionally keyed by a backend tag so that
// different solver backends sharing one cache never serve each other's
// allocations. Registry-named backends tag by name — stable across
// fleets, batches and processes, so sharing works wherever the name
// matches. Anonymous backends (WithSolverBackend, Wrap) get a fresh
// unique tag, trading cross-instance sharing for correctness.
var anonymousTagCounter atomic.Uint64

func solverTag(scope string, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(scope))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return h.Sum64()
}

func registryTag(name string) uint64 { return solverTag("registry", name) }

func anonymousTag() uint64 {
	return solverTag("anon", fmt.Sprint(anonymousTagCounter.Add(1)))
}

// Wrap decorates a solver backend with this cache. The wrapped Solver is
// safe for concurrent use (given s is) and can be registered under its
// own name or installed via WithSolverBackend. Each Wrap call namespaces
// its entries separately — wrap a backend once and reuse the wrapped
// Solver, rather than wrapping per call site.
func (sc *SolveCache) Wrap(s Solver) Solver {
	return sc.wrapTagged(anonymousTag(), s)
}

func (sc *SolveCache) wrapTagged(tag uint64, s Solver) Solver {
	return SolverFunc(sc.c.SolveFunc(tag, s.Solve))
}

// solveIntoFunc wraps a backend as the buffer-reusing core.SolveIntoFunc
// for controller wiring: cache hits copy into the caller's allocation
// instead of cloning, so a cached steady-state step allocates nothing.
func (sc *SolveCache) solveIntoFunc(tag uint64, next core.SolveFunc) core.SolveIntoFunc {
	return func(ctx context.Context, cfg core.Config, budget float64, dst *core.Allocation) error {
		return sc.c.SolveInto(ctx, tag, next, cfg, budget, dst)
	}
}
