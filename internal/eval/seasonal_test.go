package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSwitchingExperiment(t *testing.T) {
	res, err := Switching(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Switches > 2 {
			t.Errorf("budget %v: %d switches, LP structure guarantees <= 2", row.BudgetJ, row.Switches)
		}
		if row.BlockPct > 0.1 {
			t.Errorf("budget %v: block overhead %.3f%%, want < 0.1%%", row.BudgetJ, row.BlockPct)
		}
		if row.Switches > 0 && row.InterleavedPct < 1 {
			t.Errorf("budget %v: interleaved overhead %.2f%% suspiciously small", row.BudgetJ, row.InterleavedPct)
		}
		if row.BlockPct > row.InterleavedPct && row.Switches > 0 {
			t.Errorf("budget %v: block worse than interleaving", row.BudgetJ)
		}
	}
	if !strings.Contains(res.Render(), "interleaved") {
		t.Error("render incomplete")
	}
	if _, err := Switching(core.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSeasonalExperiment(t *testing.T) {
	res, err := Seasonal(paperCfg(), 2016)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	var june, december SeasonalRow
	for _, row := range res.Rows {
		if row.Month == 6 {
			june = row
		}
		if row.Month == 12 {
			december = row
		}
		if row.REAPMeanAcc < row.DP1MeanAcc-1e-9 || row.REAPMeanAcc < row.DP5MeanAcc-1e-9 {
			t.Errorf("month %d: REAP %v below a static baseline (DP1 %v, DP5 %v)",
				row.Month, row.REAPMeanAcc, row.DP1MeanAcc, row.DP5MeanAcc)
		}
		var shares float64
		for _, s := range row.RegionShares {
			shares += s
		}
		if shares < 0.999 || shares > 1.001 {
			t.Errorf("month %d: region shares sum to %v", row.Month, shares)
		}
	}
	// Seasonality: June harvests and performs better than December.
	if june.HarvestJ <= december.HarvestJ {
		t.Errorf("June harvest %v not above December %v", june.HarvestJ, december.HarvestJ)
	}
	if june.REAPMeanAcc <= december.REAPMeanAcc {
		t.Errorf("June accuracy %v not above December %v", june.REAPMeanAcc, december.REAPMeanAcc)
	}
	// Winter has more dead hours.
	if december.RegionShares[0] <= june.RegionShares[0] {
		t.Errorf("December dead share %v not above June %v",
			december.RegionShares[0], june.RegionShares[0])
	}
	if !strings.Contains(res.Render(), "Seasonal sweep") {
		t.Error("render incomplete")
	}
}
