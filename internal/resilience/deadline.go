package resilience

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader is the request header carrying the client's end-to-end
// budget for the request, in whole milliseconds. The server treats it
// as a hint bounded by its own policy, never as an obligation to work
// longer.
const DeadlineHeader = "X-Deadline-Ms"

// DeadlinePolicy derives a per-request timeout from the client's
// X-Deadline-Ms header, clamped into server policy: a request may ask
// for less time than the default but never more than Max.
type DeadlinePolicy struct {
	// Default applies when the request carries no (or an unparseable)
	// deadline header; zero means no deadline.
	Default time.Duration
	// Max caps any client-requested deadline; zero falls back to
	// Default (and when both are zero, client deadlines are ignored).
	Max time.Duration
}

// Timeout resolves the effective timeout for a request: the header
// value clamped to [1ms, Max], or Default when absent or invalid. A
// zero return means "no deadline".
func (p DeadlinePolicy) Timeout(r *http.Request) time.Duration {
	raw := r.Header.Get(DeadlineHeader)
	if raw == "" {
		return p.Default
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return p.Default
	}
	d := time.Duration(ms) * time.Millisecond
	max := p.Max
	if max == 0 {
		max = p.Default
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// Context returns r.Context bounded by the policy's resolved timeout,
// plus its cancel func (always non-nil; callers defer it). With no
// effective deadline the request context passes through untouched.
func (p DeadlinePolicy) Context(r *http.Request) (context.Context, context.CancelFunc) {
	d := p.Timeout(r)
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}
