package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length of x must be a power of two; the paper's
// stretch-sensor feature uses a 16-point transform.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}

	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}

	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place (unitary up to the 1/n
// normalization applied here).
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// DFT computes the discrete Fourier transform by direct summation. It is
// O(n²) and exists as an independent oracle for FFT in tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

// RealFFTMagnitudes resamples x to n points (n a power of two), applies the
// FFT and returns the magnitudes of the first n/2+1 bins (DC through
// Nyquist). This is exactly the paper's "16-FFT of stretch" feature: the
// 160-sample stretch window is reduced to 16 samples and transformed, and
// the magnitude spectrum becomes the feature sub-vector.
func RealFFTMagnitudes(x []float64, n int) ([]float64, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a positive power of two", n)
	}
	resampled := ResampleLinear(x, n)
	buf := make([]complex128, n)
	for i, v := range resampled {
		buf[i] = complex(v, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, err
	}
	mags := make([]float64, n/2+1)
	for i := range mags {
		mags[i] = cmplx.Abs(buf[i]) / float64(n)
	}
	return mags, nil
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies x by window w element-wise into a new slice.
func ApplyWindow(x, w []float64) []float64 {
	n := len(x)
	if len(w) < n {
		n = len(w)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = x[i] * w[i]
	}
	return out
}
