package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestStorageExperiment(t *testing.T) {
	res, err := Storage(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	capOnly, small, large := res.Rows[0], res.Rows[1], res.Rows[2]
	// Batteries dominate the capacitor-only device on every QoS metric.
	if small.ActiveHours <= capOnly.ActiveHours {
		t.Errorf("20 J battery active %d h not above capacitor %d h",
			small.ActiveHours, capOnly.ActiveHours)
	}
	if small.LongestGapHours > capOnly.LongestGapHours {
		t.Errorf("battery's longest gap %d h above capacitor's %d h",
			small.LongestGapHours, capOnly.LongestGapHours)
	}
	// A larger battery cannot do worse than a smaller one.
	if large.ActiveHours < small.ActiveHours {
		t.Errorf("100 J battery active %d h below 20 J's %d h",
			large.ActiveHours, small.ActiveHours)
	}
	if large.MeanAccuracy < small.MeanAccuracy-1e-9 {
		t.Errorf("100 J battery accuracy %v below 20 J's %v",
			large.MeanAccuracy, small.MeanAccuracy)
	}
	// Nights exist: even the big battery has some gap in a month.
	if capOnly.LongestGapHours < 10 {
		t.Errorf("capacitor-only longest gap %d h, nights should dominate", capOnly.LongestGapHours)
	}
	if !strings.Contains(res.Render(), "capacitor") {
		t.Error("render incomplete")
	}
	if _, err := Storage(core.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
