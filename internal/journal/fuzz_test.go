package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to a journal segment and requires
// the recovery contract to hold regardless: Open+Start never panic,
// a torn or corrupt tail truncates to a valid prefix, and the journal
// stays appendable — records appended after recovery read back intact
// on the next open.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a record"))
	// A valid single record ("hi") followed by a torn frame.
	valid := newFrameBuffer([]byte("hi"))
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), 0x00, 0x00))
	f.Add(append(append([]byte{}, valid...), valid[:5]...))
	// Implausible length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5})

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), raw, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on arbitrary bytes: %v", err)
		}
		var prefix [][]byte
		if err := st.Start(func(p []byte) error {
			prefix = append(prefix, append([]byte(nil), p...))
			return nil
		}); err != nil {
			// Start may only fail for structural reasons it names, never
			// panic; arbitrary bytes in one segment must always recover.
			t.Fatalf("Start on arbitrary bytes: %v", err)
		}
		if _, err := st.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		var again [][]byte
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("re-Open: %v", err)
		}
		if err := st2.Start(func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("re-Start: %v", err)
		}
		st2.Close()
		if len(again) != len(prefix)+1 {
			t.Fatalf("reopen replayed %d records, want %d valid prefix + 1 appended", len(again), len(prefix)+1)
		}
		for i := range prefix {
			if !bytes.Equal(again[i], prefix[i]) {
				t.Fatalf("record %d changed across recovery: %q != %q", i, again[i], prefix[i])
			}
		}
		if string(again[len(again)-1]) != "post-recovery" {
			t.Fatalf("appended record read back as %q", again[len(again)-1])
		}
	})
}
