package solar

import (
	"math"
	"testing"
)

func TestSolarAzimuthBasics(t *testing.T) {
	doy := dayOfYear(9, 15)
	// Solar noon: due south (π) in the northern hemisphere.
	if az := SolarAzimuth(GoldenLatitudeDeg, doy, 12); math.Abs(az-math.Pi) > 0.05 {
		t.Errorf("noon azimuth %v rad, want ~pi", az)
	}
	// Morning: east of south; afternoon: west of south.
	am := SolarAzimuth(GoldenLatitudeDeg, doy, 8)
	pm := SolarAzimuth(GoldenLatitudeDeg, doy, 16)
	if am >= math.Pi {
		t.Errorf("8am azimuth %v, want east of south (< pi)", am)
	}
	if pm <= math.Pi {
		t.Errorf("4pm azimuth %v, want west of south (> pi)", pm)
	}
}

func TestPanelValidation(t *testing.T) {
	bad := []Panel{
		{TiltDeg: -1},
		{TiltDeg: 91},
		{TiltDeg: 30, AzimuthDeg: 360},
		{TiltDeg: 30, AzimuthDeg: -1},
		{TiltDeg: 30, AzimuthDeg: 180, Albedo: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := Panel{TiltDeg: 40, AzimuthDeg: 180, Albedo: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid panel rejected: %v", err)
	}
}

func TestPOAHorizontalIsIdentity(t *testing.T) {
	// Zero tilt: POA must equal GHI regardless of azimuth (no reflected
	// term, full sky view, beam factor cosInc/sin(el) = 1).
	flat := Panel{TiltDeg: 0, AzimuthDeg: 180, Albedo: 0.2}
	doy := dayOfYear(6, 21)
	for _, hour := range []float64{9, 12, 15} {
		el := SolarElevation(GoldenLatitudeDeg, doy, hour)
		az := SolarAzimuth(GoldenLatitudeDeg, doy, hour)
		ghi := ClearSkyGHI(el)
		poa := flat.POA(ghi, el, az, 0.2)
		if math.Abs(poa-ghi) > 1e-9*ghi {
			t.Errorf("hour %v: flat POA %v != GHI %v", hour, poa, ghi)
		}
	}
}

func TestPOAWinterTiltGain(t *testing.T) {
	// December noon at 40°N: the sun sits ~27° high; a south-facing 40°
	// tilt points much closer to it and must collect substantially more
	// than the horizontal on a clear day.
	tilted := Panel{TiltDeg: 40, AzimuthDeg: 180, Albedo: 0.2}
	doy := dayOfYear(12, 21)
	el := SolarElevation(GoldenLatitudeDeg, doy, 12)
	az := SolarAzimuth(GoldenLatitudeDeg, doy, 12)
	ghi := ClearSkyGHI(el)
	poa := tilted.POA(ghi, el, az, 0.15)
	if poa < ghi*1.3 {
		t.Errorf("winter noon POA %v not >= 1.3x GHI %v", poa, ghi)
	}
	// June noon: the high sun favours the horizontal; the tilt gain must
	// be small or negative.
	doy = dayOfYear(6, 21)
	el = SolarElevation(GoldenLatitudeDeg, doy, 12)
	az = SolarAzimuth(GoldenLatitudeDeg, doy, 12)
	ghi = ClearSkyGHI(el)
	poa = tilted.POA(ghi, el, az, 0.15)
	if poa > ghi*1.1 {
		t.Errorf("summer noon POA %v suspiciously above GHI %v", poa, ghi)
	}
}

func TestPOASunBehindPanel(t *testing.T) {
	// A vertical north-facing panel sees no beam at noon, only diffuse +
	// reflected.
	north := Panel{TiltDeg: 90, AzimuthDeg: 0, Albedo: 0.2}
	doy := dayOfYear(6, 21)
	el := SolarElevation(GoldenLatitudeDeg, doy, 12)
	az := SolarAzimuth(GoldenLatitudeDeg, doy, 12)
	ghi := ClearSkyGHI(el)
	const fd = 0.2
	poa := north.POA(ghi, el, az, fd)
	expected := ghi*fd*0.5 + ghi*0.2*0.5 // half sky view + half ground view
	if math.Abs(poa-expected) > 1e-9*ghi {
		t.Errorf("north wall POA %v, want diffuse+reflected only %v", poa, expected)
	}
	// Night: zero.
	if north.POA(100, -0.1, az, fd) != 0 {
		t.Error("POA below the horizon")
	}
	if north.POA(0, el, az, fd) != 0 {
		t.Error("POA with zero GHI")
	}
}

func TestTiltedMonthlyTrace(t *testing.T) {
	cell := DefaultCell()
	flatPanel := Panel{TiltDeg: 0, AzimuthDeg: 180, Albedo: 0.2}
	tilted := Panel{TiltDeg: 40, AzimuthDeg: 180, Albedo: 0.2}

	flat, err := TiltedMonthlyTrace(12, 2015, cell, flatPanel)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := TiltedMonthlyTrace(12, 2015, cell, tilted)
	if err != nil {
		t.Fatal(err)
	}
	// December: tilt wins clearly on monthly total.
	if tl.Total() <= flat.Total()*1.15 {
		t.Errorf("December tilted total %v not >= 1.15x flat %v", tl.Total(), flat.Total())
	}
	// Same weather realization as the horizontal MonthlyTrace.
	base, err := MonthlyTrace(12, 2015, cell)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Skies {
		if base.Skies[i] != flat.Skies[i] {
			t.Fatal("weather realization differs between trace kinds")
		}
	}
	// Validation paths.
	if _, err := TiltedMonthlyTrace(0, 2015, cell, tilted); err == nil {
		t.Error("month 0 accepted")
	}
	if _, err := TiltedMonthlyTrace(12, 2015, Cell{}, tilted); err == nil {
		t.Error("invalid cell accepted")
	}
	if _, err := TiltedMonthlyTrace(12, 2015, cell, Panel{TiltDeg: -5}); err == nil {
		t.Error("invalid panel accepted")
	}
}
