package core

// StaticAllocation models the baseline policies of the paper's evaluation:
// the device runs a single design point i, duty-cycled against the off
// state so the period's energy budget is respected. This is what Figures
// 5–7 plot as "DP1".."DP5".
func StaticAllocation(c Config, i int, budget float64) Allocation {
	alloc := Allocation{Active: make([]float64, len(c.DPs))}
	floor := c.MinBudget()
	if budget < floor {
		// Same sub-floor behaviour as the optimizer: idle until the
		// budget is exhausted, dead afterwards.
		off := 0.0
		if c.POff > 0 {
			off = budget / c.POff
		}
		if off > c.Period {
			off = c.Period
		}
		alloc.Off = off
		alloc.Dead = c.Period - off
		return alloc
	}
	t := c.Period
	if denom := c.DPs[i].Power - c.POff; denom > 0 {
		if tMax := (budget - floor) / denom; tMax < t {
			t = tMax
		}
	}
	if t < 0 {
		t = 0
	}
	alloc.Active[i] = t
	alloc.Off = c.Period - t
	return alloc
}

// StaticObjective evaluates J(t) for the static design-point-i baseline.
func StaticObjective(c Config, i int, budget float64) float64 {
	return StaticAllocation(c, i, budget).Objective(c)
}

// StaticExpectedAccuracy evaluates E{a} for the static baseline.
func StaticExpectedAccuracy(c Config, i int, budget float64) float64 {
	return StaticAllocation(c, i, budget).ExpectedAccuracy(c)
}
