package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Scenario-as-data: the versioned JSON config format scenarios are
// defined in. The format follows the wire/ schema discipline:
//
//   - Every config carries an explicit schema version in its "v" field.
//     A loader only accepts the version it speaks; an unversioned
//     config is a version-0 config and is rejected, so stale corpora
//     fail loudly instead of being misparsed.
//   - Configs decode strictly: unknown fields, version mismatches and
//     trailing data are all errors wrapping ErrConfigMalformed. A
//     config either matches the schema exactly or does not load.
//   - Fields name their units (energy "_j", rates "_per_day") — the
//     same discipline as the solver API and wire schema.
//   - Encode is canonical: decode → encode → decode is byte-stable,
//     and every committed corpus file is in canonical form (pinned by
//     test), so config diffs are semantic diffs.
//
// ConfigVersion is 2: "corpus v1" was the Go-constructor library of
// PR 3; v2 is the first scenarios-as-data schema.
const ConfigVersion = 2

// ScenarioConfig is the JSON form of a Scenario. Zero-valued fields
// inherit the documented scenario defaults, exactly like the Scenario
// struct itself; the "v" version field is the only addition.
type ScenarioConfig struct {
	V           int    `json:"v"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	Devices int   `json:"devices"`
	Days    int   `json:"days"`
	Seed    int64 `json:"seed"`

	Month  int `json:"month"`
	Year   int `json:"year"`
	Months int `json:"months,omitempty"`

	HarvestScale float64 `json:"harvest_scale,omitempty"`
	DeviceJitter float64 `json:"device_jitter,omitempty"`

	Alpha     float64 `json:"alpha,omitempty"`
	BatteryJ  float64 `json:"battery_j,omitempty"`
	CapacityJ float64 `json:"capacity_j,omitempty"`
	Solver    string  `json:"solver,omitempty"`
	Workers   int     `json:"workers,omitempty"`

	Cache            bool    `json:"cache,omitempty"`
	CacheSize        int     `json:"cache_size,omitempty"`
	CacheResolutionJ float64 `json:"cache_resolution_j,omitempty"`

	Forecast       bool    `json:"forecast,omitempty"`
	ForecastLambda float64 `json:"forecast_lambda,omitempty"`

	Noise          float64 `json:"noise,omitempty"`
	FaultRate      float64 `json:"fault_rate,omitempty"`
	TelemetryBytes int     `json:"telemetry_bytes,omitempty"`
	AgingPerDay    float64 `json:"aging_per_day,omitempty"`

	FlatConsumption bool `json:"flat_consumption,omitempty"`

	Populations []PopulationConfig `json:"populations,omitempty"`
	Regions     []RegionConfig     `json:"regions,omitempty"`
	Churn       []ChurnEventConfig `json:"churn,omitempty"`
	Storm       *StormConfig       `json:"storm,omitempty"`
}

// PopulationConfig is the JSON form of a Population.
type PopulationConfig struct {
	Modulus   int     `json:"modulus,omitempty"`
	Residue   int     `json:"residue,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`
	BatteryJ  float64 `json:"battery_j,omitempty"`
	CapacityJ float64 `json:"capacity_j,omitempty"`
	Solver    string  `json:"solver,omitempty"`
}

// RegionConfig is the JSON form of a Region.
type RegionConfig struct {
	Name         string  `json:"name,omitempty"`
	HarvestScale float64 `json:"harvest_scale,omitempty"`
}

// ChurnEventConfig is the JSON form of a ChurnEvent.
type ChurnEventConfig struct {
	Step  int   `json:"step"`
	Join  []int `json:"join,omitempty"`
	Leave []int `json:"leave,omitempty"`
}

// StormConfig is the JSON form of a Storm.
type StormConfig struct {
	StartRate     float64 `json:"start_rate"`
	DurationHours int     `json:"duration_hours"`
	FaultRate     float64 `json:"fault_rate,omitempty"`
	HarvestScale  float64 `json:"harvest_scale,omitempty"`
}

// Scenario converts the config to its runnable form. The conversion is
// purely structural; validation happens through Scenario.Validate (Run
// and ParseScenario both apply it).
func (c ScenarioConfig) Scenario() Scenario {
	sc := Scenario{
		Name:             c.Name,
		Description:      c.Description,
		Devices:          c.Devices,
		Days:             c.Days,
		Seed:             c.Seed,
		Month:            c.Month,
		Year:             c.Year,
		Months:           c.Months,
		HarvestScale:     c.HarvestScale,
		DeviceJitter:     c.DeviceJitter,
		Alpha:            c.Alpha,
		BatteryJ:         c.BatteryJ,
		CapacityJ:        c.CapacityJ,
		Solver:           c.Solver,
		Workers:          c.Workers,
		Cache:            c.Cache,
		CacheSize:        c.CacheSize,
		CacheResolutionJ: c.CacheResolutionJ,
		Forecast:         c.Forecast,
		ForecastLambda:   c.ForecastLambda,
		Noise:            c.Noise,
		FaultRate:        c.FaultRate,
		TelemetryBytes:   c.TelemetryBytes,
		AgingPerDay:      c.AgingPerDay,
		FlatConsumption:  c.FlatConsumption,
	}
	for _, p := range c.Populations {
		sc.Populations = append(sc.Populations, Population(p))
	}
	for _, r := range c.Regions {
		sc.Regions = append(sc.Regions, Region(r))
	}
	for _, e := range c.Churn {
		sc.Churn = append(sc.Churn, ChurnEvent{Step: e.Step, Join: e.Join, Leave: e.Leave})
	}
	if c.Storm != nil {
		st := Storm(*c.Storm)
		sc.Storm = &st
	}
	return sc
}

// ConfigFromScenario converts a Scenario to its config form. Scenarios
// carrying a programmatic PerDevice hook are not representable as data
// and return an error wrapping ErrInvalidScenario — express the
// heterogeneity with Populations instead.
func ConfigFromScenario(sc Scenario) (ScenarioConfig, error) {
	if sc.PerDevice != nil {
		return ScenarioConfig{}, fmt.Errorf(
			"%w: %s: a PerDevice func is not representable as config; use Populations", ErrInvalidScenario, sc.Name)
	}
	c := ScenarioConfig{
		V:                ConfigVersion,
		Name:             sc.Name,
		Description:      sc.Description,
		Devices:          sc.Devices,
		Days:             sc.Days,
		Seed:             sc.Seed,
		Month:            sc.Month,
		Year:             sc.Year,
		Months:           sc.Months,
		HarvestScale:     sc.HarvestScale,
		DeviceJitter:     sc.DeviceJitter,
		Alpha:            sc.Alpha,
		BatteryJ:         sc.BatteryJ,
		CapacityJ:        sc.CapacityJ,
		Solver:           sc.Solver,
		Workers:          sc.Workers,
		Cache:            sc.Cache,
		CacheSize:        sc.CacheSize,
		CacheResolutionJ: sc.CacheResolutionJ,
		Forecast:         sc.Forecast,
		ForecastLambda:   sc.ForecastLambda,
		Noise:            sc.Noise,
		FaultRate:        sc.FaultRate,
		TelemetryBytes:   sc.TelemetryBytes,
		AgingPerDay:      sc.AgingPerDay,
		FlatConsumption:  sc.FlatConsumption,
	}
	for _, p := range sc.Populations {
		c.Populations = append(c.Populations, PopulationConfig(p))
	}
	for _, r := range sc.Regions {
		c.Regions = append(c.Regions, RegionConfig(r))
	}
	for _, e := range sc.Churn {
		c.Churn = append(c.Churn, ChurnEventConfig{Step: e.Step, Join: e.Join, Leave: e.Leave})
	}
	if sc.Storm != nil {
		st := StormConfig(*sc.Storm)
		c.Storm = &st
	}
	return c, nil
}

// Encode renders the config in its canonical byte form: two-space
// indented JSON with a trailing newline. Every committed corpus file is
// in this form, making decode → encode → decode byte-stable (the
// round-trip regression the corpus tests pin).
func (c ScenarioConfig) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("%w: encoding %s: %v", ErrConfigMalformed, c.Name, err)
	}
	return append(data, '\n'), nil
}

// DecodeScenarioConfig decodes one config from r under the strict
// contract: unknown fields, trailing data and version mismatches all
// fail with errors wrapping ErrConfigMalformed. Scenario-semantics
// validation is separate (ParseScenario, Scenario.Validate) so tooling
// can round-trip syntactically-valid configs it would not run.
func DecodeScenarioConfig(r io.Reader) (ScenarioConfig, error) {
	var c ScenarioConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return ScenarioConfig{}, fmt.Errorf("%w: decoding config: %v", ErrConfigMalformed, err)
	}
	// A second Decode must see EOF: two values in one file means the
	// caller is confused about framing.
	if err := dec.Decode(&json.RawMessage{}); err != io.EOF {
		return ScenarioConfig{}, fmt.Errorf("%w: trailing data after config", ErrConfigMalformed)
	}
	if c.V != ConfigVersion {
		return ScenarioConfig{}, fmt.Errorf(
			"%w: config version %d not supported (this build speaks v%d)", ErrConfigMalformed, c.V, ConfigVersion)
	}
	return c, nil
}

// ParseScenario decodes a scenario config from bytes and validates it,
// returning the runnable Scenario.
func ParseScenario(data []byte) (Scenario, error) {
	c, err := DecodeScenarioConfig(bytes.NewReader(data))
	if err != nil {
		return Scenario{}, err
	}
	sc := c.Scenario()
	if err := sc.withDefaults().Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// LoadScenario reads, decodes and validates one scenario config file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("%w: %v", ErrConfigMalformed, err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}
