package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDesignPointValidate(t *testing.T) {
	good := DesignPoint{Name: "ok", Accuracy: 0.9, Power: 1e-3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid DP rejected: %v", err)
	}
	bad := []DesignPoint{
		{Accuracy: -0.1, Power: 1},
		{Accuracy: 1.1, Power: 1},
		{Accuracy: math.NaN(), Power: 1},
		{Accuracy: 0.5, Power: 0},
		{Accuracy: 0.5, Power: -1},
		{Accuracy: 0.5, Power: math.NaN()},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid DP %+v accepted", i, d)
		}
	}
}

func TestDominates(t *testing.T) {
	a := DesignPoint{Accuracy: 0.9, Power: 2}
	b := DesignPoint{Accuracy: 0.8, Power: 3}
	c := DesignPoint{Accuracy: 0.9, Power: 2}
	d := DesignPoint{Accuracy: 0.95, Power: 3}
	if !a.Dominates(b) {
		t.Error("a should dominate b (better accuracy, lower power)")
	}
	if b.Dominates(a) {
		t.Error("b should not dominate a")
	}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("equal points must not dominate each other")
	}
	if a.Dominates(d) || d.Dominates(a) {
		t.Error("incomparable points must not dominate each other")
	}
}

func TestParetoFrontPaperShape(t *testing.T) {
	// The paper's Figure 3: 24 points, 5 survive. Reconstruct a similar
	// cloud: the Table 2 five plus dominated points.
	dps := PaperDesignPoints()
	dominated := []DesignPoint{
		{Name: "redbox", Accuracy: 0.85, Power: 2.1e-3}, // the red-rectangle point
		{Name: "d2", Accuracy: 0.70, Power: 1.9e-3},
		{Name: "d3", Accuracy: 0.90, Power: 2.9e-3},
	}
	front := ParetoFront(append(append([]DesignPoint{}, dps...), dominated...))
	if len(front) != 5 {
		t.Fatalf("front size = %d, want 5: %v", len(front), front)
	}
	// Sorted by decreasing power = DP1..DP5 order.
	for i, want := range []string{"DP1", "DP2", "DP3", "DP4", "DP5"} {
		if front[i].Name != want {
			t.Fatalf("front[%d] = %q, want %q", i, front[i].Name, want)
		}
	}
}

func TestParetoFrontDeduplicates(t *testing.T) {
	dps := []DesignPoint{
		{Name: "a", Accuracy: 0.9, Power: 2},
		{Name: "b", Accuracy: 0.9, Power: 2},
	}
	front := ParetoFront(dps)
	if len(front) != 1 || front[0].Name != "a" {
		t.Fatalf("front = %v, want just the first duplicate", front)
	}
}

func TestParetoFrontProperty(t *testing.T) {
	// Property: no element of the front is dominated by any input point,
	// and every input point is dominated by (or equal to) some front
	// element or is itself on the front.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		dps := make([]DesignPoint, n)
		for i := range dps {
			dps[i] = DesignPoint{
				Accuracy: math.Round(rng.Float64()*100) / 100,
				Power:    math.Round((0.5+rng.Float64()*4)*100) / 100,
			}
		}
		front := ParetoFront(dps)
		if len(front) == 0 {
			return false
		}
		for _, fdp := range front {
			for _, d := range dps {
				if d.Dominates(fdp) {
					return false
				}
			}
		}
		// Front sorted by decreasing power and increasing accuracy going
		// right means accuracy must be non-increasing too (Pareto chain).
		for i := 1; i < len(front); i++ {
			if front[i].Power > front[i-1].Power+1e-12 {
				return false
			}
			if front[i].Accuracy > front[i-1].Accuracy+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyPerPeriod(t *testing.T) {
	d := DesignPoint{Accuracy: 0.94, Power: 2.76e-3}
	if e := d.EnergyPerPeriod(3600); !approx(e, 9.936, 1e-9) {
		t.Fatalf("DP1 hourly energy = %v, want 9.936 J (the paper's 9.9 J)", e)
	}
}
