// Package eval regenerates every table and figure of the paper's
// evaluation (Table 2, Figures 3–7, the headline claims of the abstract,
// the offloading analysis, and a design-space ablation). Each experiment
// returns a structured result with a Render method that prints the same
// rows/series the paper reports, so the benchmark harness and the
// experiments command share one implementation.
//
// Two data sources exist for the design points:
//
//   - the paper's measured Table 2 numbers (core.PaperDesignPoints), which
//     reproduce the optimizer-level figures (5, 6, 7) exactly as published;
//   - the from-scratch simulated characterization (har.Characterize), which
//     regenerates Table 2 and Figure 3 themselves.
//
// EXPERIMENTS.md records both views.
package eval

import (
	"fmt"
	"strings"
)

// table is a tiny column-aligned text renderer (stdlib-only).
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
