package resilience

import (
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig sizes deterministic fault injection. Probabilities are
// per request in [0, 1]; a zero config injects nothing. The same seed
// and request order reproduce the same fault sequence, which is what
// lets the chaos test suite assert exact outcomes.
type ChaosConfig struct {
	Seed int64
	// LatencyP injects Latency of extra handler time.
	LatencyP float64
	Latency  time.Duration
	// PanicP panics inside the handler chain — upstream recover
	// boundaries must convert it to a 500 with a stable code.
	PanicP float64
	// TearP hijacks the connection and closes it mid-exchange, the
	// server-side version of a client that vanished.
	TearP float64
}

// enabled reports whether any fault has a chance of firing.
func (c ChaosConfig) enabled() bool { return c.LatencyP > 0 || c.PanicP > 0 || c.TearP > 0 }

// Chaos is the fault-injecting middleware. It sits inside the recover
// boundary (panics it throws must be caught and answered like any
// handler bug) and outside the real handlers.
type Chaos struct {
	cfg ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	latencies atomic.Uint64
	panics    atomic.Uint64
	tears     atomic.Uint64
}

// NewChaos builds a fault injector from cfg; a nil return means chaos
// is disabled and callers should skip the middleware entirely.
func NewChaos(cfg ChaosConfig) *Chaos {
	if !cfg.enabled() {
		return nil
	}
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected reports how many faults of each kind have fired.
func (c *Chaos) Injected() (latencies, panics, tears uint64) {
	return c.latencies.Load(), c.panics.Load(), c.tears.Load()
}

// roll draws the three fault decisions for one request under the lock,
// so concurrent requests see a deterministic *sequence* of decisions
// even though their assignment to requests depends on arrival order.
func (c *Chaos) roll() (latency, panics, tear bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	latency = c.cfg.LatencyP > 0 && c.rng.Float64() < c.cfg.LatencyP
	panics = c.cfg.PanicP > 0 && c.rng.Float64() < c.cfg.PanicP
	tear = c.cfg.TearP > 0 && c.rng.Float64() < c.cfg.TearP
	return
}

// Middleware wraps next with fault injection.
func (c *Chaos) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		latency, panics, tear := c.roll()
		if latency {
			c.latencies.Add(1)
			time.Sleep(c.cfg.Latency)
		}
		if tear {
			if hj, ok := w.(http.Hijacker); ok {
				c.tears.Add(1)
				if conn, _, err := hj.Hijack(); err == nil {
					_ = conn.Close()
				}
				return
			}
			// Recorders and other non-hijackable writers: fall through,
			// the fault cannot be modelled on this transport.
		}
		if panics {
			c.panics.Add(1)
			panic("chaos: injected handler panic")
		}
		next.ServeHTTP(w, r)
	})
}
