package synth

import (
	"fmt"
	"math/rand"
)

// Timeline generates a realistic sequence of activity windows for a day
// of wear: activities persist for minutes (not single windows), posture
// changes are bridged by explicit Transition windows, and the mix varies
// by hour of day (nobody jogs at 3 am). The device simulator consumes
// timelines to measure realized accuracy against a lifelike stream rather
// than uniformly shuffled windows.
type Timeline struct {
	user UserProfile
	rng  *rand.Rand

	current   Activity
	remaining int // windows left in the current bout
	hour      int // hour of day, advanced by the caller via Advance
	windows   int // windows generated within the current hour
}

// WindowsPerHour is how many 1.6 s activity windows fit in an hour
// (3600 / 1.6).
const WindowsPerHour = 2250

// boutWindows is the dwell-time range of a bout, in windows (a window is
// 1.6 s; 40–600 windows ≈ 1–16 minutes).
const (
	minBout = 40
	maxBout = 600
)

// hourlyMix returns the activity distribution for an hour of day.
// Probabilities sum to 1 over the six persistent activities; transitions
// are inserted between bouts rather than drawn.
func hourlyMix(hour int) map[Activity]float64 {
	switch {
	case hour < 6: // night
		return map[Activity]float64{LieDown: 0.92, Sit: 0.05, Stand: 0.02, Walk: 0.01}
	case hour < 9: // morning: commute
		return map[Activity]float64{Sit: 0.25, Stand: 0.15, Walk: 0.25, Drive: 0.25, Jump: 0.05, LieDown: 0.05}
	case hour < 12: // working morning
		return map[Activity]float64{Sit: 0.55, Stand: 0.20, Walk: 0.20, Jump: 0.05}
	case hour < 14: // lunch
		return map[Activity]float64{Sit: 0.40, Stand: 0.20, Walk: 0.35, Jump: 0.05}
	case hour < 18: // working afternoon
		return map[Activity]float64{Sit: 0.55, Stand: 0.20, Walk: 0.18, Drive: 0.05, Jump: 0.02}
	case hour < 20: // evening: commute/exercise
		return map[Activity]float64{Sit: 0.20, Stand: 0.10, Walk: 0.30, Drive: 0.20, Jump: 0.15, LieDown: 0.05}
	default: // wind-down
		return map[Activity]float64{Sit: 0.45, Stand: 0.05, Walk: 0.10, LieDown: 0.40}
	}
}

// NewTimeline starts a timeline for the given user at the given hour of
// day (0–23).
func NewTimeline(u UserProfile, startHour int, seed int64) (*Timeline, error) {
	if startHour < 0 || startHour > 23 {
		return nil, fmt.Errorf("synth: start hour %d outside 0..23", startHour)
	}
	tl := &Timeline{
		user: u,
		rng:  rand.New(rand.NewSource(seed)),
		hour: startHour,
	}
	tl.startBout()
	return tl, nil
}

// startBout draws the next persistent activity and its dwell time.
func (tl *Timeline) startBout() {
	mix := hourlyMix(tl.hour)
	r := tl.rng.Float64()
	acc := 0.0
	next := Sit
	for _, a := range Activities() {
		p, ok := mix[a]
		if !ok {
			continue
		}
		acc += p
		if r < acc {
			next = a
			break
		}
	}
	tl.current = next
	tl.remaining = minBout + tl.rng.Intn(maxBout-minBout)
}

// Next returns the next activity window in the stream. Between bouts it
// emits a single Transition window.
func (tl *Timeline) Next() Window {
	return Generate(tl.user, tl.NextLabel(), tl.rng)
}

// NextLabel advances the stream one window and returns its label without
// synthesizing the 640-sample sensor window. Hour-scale consumers — the
// sim package's activity-dependent consumption model needs the per-hour
// activity mix, not the raw signals — step the same bout state machine
// at a tiny fraction of the cost. Interleaving NextLabel and Next on one
// Timeline is valid; the bout sequence only diverges from an all-Next
// run because Generate consumes additional randomness.
func (tl *Timeline) NextLabel() Activity {
	tl.windows++
	if tl.windows >= WindowsPerHour {
		tl.windows = 0
		tl.hour = (tl.hour + 1) % 24
	}
	if tl.remaining <= 0 {
		tl.startBout()
		return Transition
	}
	tl.remaining--
	return tl.current
}

// Skip advances the stream n windows without returning labels — the
// churn seam: a device that leaves the fleet stops observing its user,
// but the user keeps living, so when the device rejoins the timeline
// must have moved on to the right hour of day (and the right point in
// the bout state machine), not frozen at the hour it left.
func (tl *Timeline) Skip(n int) {
	for i := 0; i < n; i++ {
		tl.NextLabel()
	}
}

// Hour returns the current hour of day.
func (tl *Timeline) Hour() int { return tl.hour }

// Current returns the ongoing persistent activity.
func (tl *Timeline) Current() Activity { return tl.current }

// Day generates a full day (24 x WindowsPerHour windows) for the user,
// returning the labeled stream. It is a convenience for experiments that
// need the whole sequence at once; streaming callers should use Next.
func Day(u UserProfile, seed int64) ([]Window, error) {
	tl, err := NewTimeline(u, 0, seed)
	if err != nil {
		return nil, err
	}
	out := make([]Window, 0, 24*WindowsPerHour)
	for i := 0; i < 24*WindowsPerHour; i++ {
		out = append(out, tl.Next())
	}
	return out, nil
}
