// Fixture for the errtaxonomy analyzer, loaded as repro/internal/core:
// errors crossing the public boundary must wrap a sentinel.
package core

import (
	"errors"
	"fmt"
)

// Sentinel definitions are legal uses of errors.New — they ARE the
// taxonomy.
var (
	ErrInvalidConfig  = errors.New("core: invalid configuration")
	ErrBudgetNegative = errors.New("core: energy budget must be non-negative")
)

// Fresh returns a brand-new error that wraps nothing.
func Fresh() error {
	return errors.New("boom") // want `Fresh returns errors\.New\(\.\.\.\), which wraps no sentinel`
}

// Unwrapped formats without %w, severing the errors.Is chain.
func Unwrapped(budget float64) error {
	if budget < 0 {
		return fmt.Errorf("budget %v must be non-negative", budget) // want `Unwrapped returns fmt\.Errorf without %w`
	}
	return nil
}

// Wrapped is the required pattern: %w reaches a sentinel.
func Wrapped(budget float64) error {
	if budget < 0 {
		return fmt.Errorf("%w: got %v", ErrBudgetNegative, budget)
	}
	return nil
}

// Direct returns a sentinel itself — errors.Is works, no wrapping
// needed.
func Direct() error {
	return ErrInvalidConfig
}

// Chained wraps an upstream error with %w: the chain is trusted.
func Chained() error {
	if err := Wrapped(-1); err != nil {
		return fmt.Errorf("chained: %w", err)
	}
	return nil
}

// Variable returns an error built elsewhere; construction is policed at
// the boundary, not full dataflow.
func Variable() error {
	err := Wrapped(-1)
	return err
}

// internal is unexported: its errors do not cross the public boundary
// directly, so the boundary check does not apply.
func internal() error {
	return errors.New("internal detail")
}

// Suppressed documents a deliberate taxonomy exception.
func Suppressed() error {
	return errors.New("deliberate") //lint:reapvet errtaxonomy -- fixture: demonstrating a documented exception
}

var _ = internal
