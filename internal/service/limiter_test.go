package service

import (
	"testing"
	"time"
)

// fakeClock makes the token bucket deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(rate, burst float64) (*limiter, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	l := newLimiter(rate, burst)
	l.now = clk.now
	return l, clk
}

func TestLimiterBurstThenRefill(t *testing.T) {
	l, clk := newTestLimiter(2, 4)

	for i := range 4 {
		if _, ok := l.admit("a", 1); !ok {
			t.Fatalf("admit %d within burst refused", i)
		}
	}
	retry, ok := l.admit("a", 1)
	if ok {
		t.Fatal("admit over burst succeeded")
	}
	// Empty bucket at 2 tokens/s: one token is 500ms away.
	if retry < 400*time.Millisecond || retry > 600*time.Millisecond {
		t.Errorf("retry = %v, want ≈500ms", retry)
	}

	clk.advance(500 * time.Millisecond)
	if _, ok := l.admit("a", 1); !ok {
		t.Error("admit refused after the advertised retry interval")
	}
}

func TestLimiterRefusalNotCharged(t *testing.T) {
	l, clk := newTestLimiter(1, 1)
	if _, ok := l.admit("a", 1); !ok {
		t.Fatal("first admit refused")
	}
	// Hammer refusals; they must not push the bucket below empty.
	for range 10 {
		if _, ok := l.admit("a", 1); ok {
			t.Fatal("admit on empty bucket succeeded")
		}
	}
	clk.advance(time.Second)
	if _, ok := l.admit("a", 1); !ok {
		t.Error("one full refill interval did not restore one token")
	}
}

func TestLimiterBatchCost(t *testing.T) {
	l, _ := newTestLimiter(1, 10)
	if _, ok := l.admit("a", 8); !ok {
		t.Fatal("batch of 8 within burst refused")
	}
	retry, ok := l.admit("a", 8)
	if ok {
		t.Fatal("second batch of 8 admitted with 2 tokens left")
	}
	// 6 tokens short at 1 token/s.
	if retry < 5*time.Second || retry > 7*time.Second {
		t.Errorf("retry = %v, want ≈6s", retry)
	}
}

func TestLimiterTenantsIsolated(t *testing.T) {
	l, _ := newTestLimiter(1, 1)
	if _, ok := l.admit("a", 1); !ok {
		t.Fatal("tenant a refused its burst")
	}
	if _, ok := l.admit("b", 1); !ok {
		t.Error("tenant b affected by tenant a's spend")
	}
	if _, ok := l.admit("a", 1); ok {
		t.Error("tenant a admitted over its burst")
	}
}

func TestLimiterCapsAtBurst(t *testing.T) {
	l, clk := newTestLimiter(100, 5)
	for range 5 {
		if _, ok := l.admit("a", 1); !ok {
			t.Fatal("admit within burst refused")
		}
	}
	// A long idle period must not bank more than burst tokens.
	clk.advance(time.Hour)
	for i := range 5 {
		if _, ok := l.admit("a", 1); !ok {
			t.Fatalf("admit %d after refill refused", i)
		}
	}
	if _, ok := l.admit("a", 1); ok {
		t.Error("bucket banked more than burst over an idle hour")
	}
}
