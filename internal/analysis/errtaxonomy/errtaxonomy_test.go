package errtaxonomy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errtaxonomy"
)

func TestErrtaxonomyInScope(t *testing.T) {
	analysistest.Run(t, errtaxonomy.Analyzer, "testdata/core", "repro/internal/core")
}

// TestErrtaxonomyJournal pins the scope widened by the replication
// work: internal/journal's sentinels (ErrDiskFull, ErrCompacted) route
// the daemon's degraded and bootstrap paths.
func TestErrtaxonomyJournal(t *testing.T) {
	analysistest.Run(t, errtaxonomy.Analyzer, "testdata/journal", "repro/internal/journal")
}

// TestErrtaxonomyOutOfScope loads the same violations under a support
// package path: no diagnostics, the taxonomy governs only the solver
// packages' boundaries.
func TestErrtaxonomyOutOfScope(t *testing.T) {
	analysistest.Run(t, errtaxonomy.Analyzer, "testdata/outofscope", "repro/internal/dsp")
}
