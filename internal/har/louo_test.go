package har

import (
	"testing"

	"repro/internal/synth"
)

func louoCorpus(t *testing.T) *synth.Dataset {
	t.Helper()
	ds, err := synth.NewDataset(synth.CorpusConfig{NumUsers: 4, TotalWindows: 560, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPerUserAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := louoCorpus(t)
	model, err := TrainModel(ds, PaperFive()[0])
	if err != nil {
		t.Fatal(err)
	}
	per, err := PerUserAccuracy(ds, model, ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("%d users in per-user report, want 4", len(per))
	}
	for u, acc := range per {
		if acc < 0 || acc > 1 {
			t.Errorf("user %d accuracy %v", u, acc)
		}
	}
	// Empty index set: empty map.
	empty, err := PerUserAccuracy(ds, model, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty set: %v %v", empty, err)
	}
}

func TestLeaveOneUserOut(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := louoCorpus(t)
	res, err := LeaveOneUserOut(ds, PaperFive()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerUser) != 4 {
		t.Fatalf("%d held-out users, want 4", len(res.PerUser))
	}
	if res.Min > res.Mean || res.Mean > res.Max {
		t.Fatalf("min/mean/max inconsistent: %v %v %v", res.Min, res.Mean, res.Max)
	}
	// Unseen-user accuracy must still be far above chance (1/7) but is
	// expected to trail the within-corpus split.
	if res.Mean < 0.4 {
		t.Fatalf("LOUO mean %v barely above chance", res.Mean)
	}
	within, err := TrainModel(ds, PaperFive()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean > within.TestAcc+0.05 {
		t.Errorf("LOUO mean %v implausibly above within-corpus %v", res.Mean, within.TestAcc)
	}
}

func TestLeaveOneUserOutValidation(t *testing.T) {
	ds, err := synth.NewDataset(synth.CorpusConfig{NumUsers: 1, TotalWindows: 70, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LeaveOneUserOut(ds, PaperFive()[0]); err == nil {
		t.Fatal("single-user corpus accepted")
	}
	ds2 := louoCorpus(t)
	if _, err := LeaveOneUserOut(ds2, DesignPointSpec{Name: "bad"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
