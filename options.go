package reap

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Option configures New, NewConfig and NewFleet. Options are applied in
// order, so later options override earlier ones; every option validates
// its arguments and construction fails on the first bad one.
type Option func(*settings) error

// settings accumulates the option values before construction. The zero
// battery (0 J charge, 0 J capacity) models the battery-less device
// class, matching the paper's harvesting-only prototype.
type settings struct {
	cfg        Config
	solverName string
	solver     Solver
	batteryJ   float64
	capacityJ  float64
	workers    int

	// solveCache is the shared solve cache, nil (the default) for the
	// direct compiled-plan path.
	solveCache *SolveCache

	// deviceOverride refines settings per device when NewFleet builds a
	// heterogeneous fleet; nil means every device is identical.
	deviceOverride func(device int) []Option
}

func defaultSettings() *settings {
	return &settings{cfg: core.DefaultConfig(), solverName: DefaultSolver}
}

func (s *settings) apply(opts []Option) error {
	for _, opt := range opts {
		if opt == nil {
			return fmt.Errorf("%w: nil option", ErrInvalidConfig)
		}
		if err := opt(s); err != nil {
			return err
		}
	}
	return nil
}

// resolveSolver returns the configured backend and its cache tag: an
// explicit WithSolverBackend wins (anonymous tag — its identity is
// unknowable), otherwise the named registry entry (tagged by name, so
// shared caches dedup across constructions).
func (s *settings) resolveSolver() (Solver, uint64, error) {
	if s.solver != nil {
		return s.solver, anonymousTag(), nil
	}
	solver, err := LookupSolver(s.solverName)
	if err != nil {
		return nil, 0, err
	}
	return solver, registryTag(s.solverName), nil
}

// WithConfig replaces the whole configuration, for callers that already
// hold a Config (for instance one characterized by the har pipeline).
// Field-level options placed after it refine the replaced value. The
// design-point slice is copied, so mutating the caller's Config after
// construction never reaches a validated session.
func WithConfig(cfg Config) Option {
	return func(s *settings) error {
		cfg.DPs = append([]DesignPoint(nil), cfg.DPs...)
		s.cfg = cfg
		return nil
	}
}

// WithDesignPoints replaces the design-point set. The points are used as
// given — call ParetoFront first to drop dominated points.
func WithDesignPoints(dps ...DesignPoint) Option {
	return func(s *settings) error {
		if len(dps) == 0 {
			return fmt.Errorf("%w: WithDesignPoints needs at least one point", ErrInvalidConfig)
		}
		s.cfg.DPs = append([]DesignPoint(nil), dps...)
		return nil
	}
}

// WithAlpha sets the accuracy-versus-active-time emphasis exponent of the
// objective J(t) = (1/TP) Σ aᵢ^α tᵢ. Range checking happens once, in
// Config.Validate, when the construction completes.
func WithAlpha(alpha float64) Option {
	return func(s *settings) error {
		s.cfg.Alpha = alpha
		return nil
	}
}

// WithPeriod sets the activity period TP in seconds.
func WithPeriod(seconds float64) Option {
	return func(s *settings) error {
		s.cfg.Period = seconds
		return nil
	}
}

// WithOffPower sets the off-state power draw in watts (the harvesting and
// monitoring circuitry that stays powered while the application is off).
func WithOffPower(watts float64) Option {
	return func(s *settings) error {
		s.cfg.POff = watts
		return nil
	}
}

// WithSolver selects a registered backend by name; see Solvers for the
// available names. The name resolves at construction time, so an unknown
// backend fails New rather than the first Step. NewConfig ignores this
// option (beyond validating the name) since a Config carries no solver.
func WithSolver(name string) Option {
	return func(s *settings) error {
		if _, err := LookupSolver(name); err != nil {
			return err
		}
		s.solverName = name
		s.solver = nil
		return nil
	}
}

// WithSolverBackend installs an unregistered Solver directly, bypassing
// the registry — useful for tests and for decorators (caching, metrics)
// that wrap a registered backend. NewConfig ignores this option.
func WithSolverBackend(s Solver) Option {
	return func(st *settings) error {
		if s == nil {
			return fmt.Errorf("%w: nil solver backend", ErrInvalidConfig)
		}
		st.solver = s
		return nil
	}
}

// WithBattery sets the backup battery's initial charge and capacity in
// joules. The default (0, 0) models a battery-less device; NewConfig
// ignores this option since a Config carries no battery state.
func WithBattery(chargeJ, capacityJ float64) Option {
	return func(s *settings) error {
		if capacityJ < 0 || chargeJ < 0 || chargeJ > capacityJ+1e-9 ||
			math.IsNaN(chargeJ) || math.IsNaN(capacityJ) {
			return fmt.Errorf("%w: battery state %v/%v", ErrInvalidConfig, chargeJ, capacityJ)
		}
		s.batteryJ, s.capacityJ = chargeJ, capacityJ
		return nil
	}
}

// WithSolveCache installs a fresh solve cache holding at most size
// entries, with budgets quantized down to resolutionJ joules so
// near-identical devices share entries (zero resolution keys budgets
// exactly — bit-identical results, dedup only). New, NewFleet and
// SolveBatch route every solve through the cache; NewConfig ignores it.
//
// Caching is an explicit opt-in for expensive backends — simplex,
// enumerate, or future remote solvers — where memoizing an LP solve
// actually pays. On the default compiled-plan backend a solve is a
// ~300 ns binary search, cheaper than the cache's own
// fingerprint+quantize+lookup work, so plan-backed fleets run fastest
// without this option (the default since the plan-first re-tier; see
// DESIGN.md).
func WithSolveCache(size int, resolutionJ float64) Option {
	return func(s *settings) error {
		sc, err := NewSolveCache(size, resolutionJ)
		if err != nil {
			return err
		}
		s.solveCache = sc
		return nil
	}
}

// WithSharedSolveCache installs an existing cache, sharing entries and
// statistics across fleets, controllers and batches that solve the same
// configurations.
func WithSharedSolveCache(sc *SolveCache) Option {
	return func(s *settings) error {
		if sc == nil {
			return fmt.Errorf("%w: nil solve cache", ErrInvalidConfig)
		}
		s.solveCache = sc
		return nil
	}
}

// WithoutSolveCache disables solve caching, overriding any earlier
// WithSolveCache/WithSharedSolveCache in the option list. Uncached
// solving has been the default since the plan-first re-tier, so with no
// cache option in play this is a no-op; it remains the explicit
// spelling for device overrides and option lists built by composition.
func WithoutSolveCache() Option {
	return func(s *settings) error {
		s.solveCache = nil
		return nil
	}
}

// WithDeviceOverride makes a fleet heterogeneous: when NewFleet builds
// device i it first applies the fleet-wide options, then the options
// override(i) returns — so a scenario can give half the fleet a bigger
// battery, a different α, or a reduced design-point set while the rest
// keep the defaults:
//
//	fleet, _ := reap.NewFleet(100,
//	    reap.WithBattery(20, 100),
//	    reap.WithDeviceOverride(func(i int) []reap.Option {
//	        if i%2 == 0 {
//	            return []reap.Option{reap.WithAlpha(2)}
//	        }
//	        return nil
//	    }))
//
// The fleet-level solve cache stays shared across all devices unless an
// override replaces it; devices whose overrides change the Config simply
// occupy distinct cache keys (the cache is keyed by a configuration
// fingerprint). New, NewConfig and SolveBatch ignore this option.
func WithDeviceOverride(override func(device int) []Option) Option {
	return func(s *settings) error {
		if override == nil {
			return fmt.Errorf("%w: nil device override", ErrInvalidConfig)
		}
		s.deviceOverride = override
		return nil
	}
}

// WithWorkers bounds the worker pool a Fleet uses for StepAll. Zero (the
// default) selects GOMAXPROCS. New and NewConfig ignore this option.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("%w: workers %d must be non-negative", ErrInvalidConfig, n)
		}
		s.workers = n
		return nil
	}
}

// NewConfig builds a validated Config from options, starting from the
// paper's defaults (one-hour period, 50 µW off-state power, α = 1, the
// five Table 2 design points). NewConfig() with no options is the
// options-layer spelling of DefaultConfig.
func NewConfig(opts ...Option) (Config, error) {
	s := defaultSettings()
	if err := s.apply(opts); err != nil {
		return Config{}, err
	}
	if err := s.cfg.Validate(); err != nil {
		return Config{}, err
	}
	return s.cfg, nil
}

// New creates a runtime controller session from options. The zero-option
// call reproduces the paper's setup: simplex backend, Table 2 design
// points, battery-less device.
//
//	ctl, err := reap.New(
//	    reap.WithAlpha(2),
//	    reap.WithSolver(reap.SolverEnumerate),
//	    reap.WithBattery(20, 100),
//	)
func New(opts ...Option) (*Controller, error) {
	s := defaultSettings()
	if err := s.apply(opts); err != nil {
		return nil, err
	}
	ctl, err := core.NewController(s.cfg, s.batteryJ, s.capacityJ)
	if err != nil {
		return nil, err
	}
	if err := s.wireSolver(ctl); err != nil {
		return nil, err
	}
	return ctl, nil
}

// wireSolver resolves the configured backend and installs it on the
// controller. The plan backend gets special treatment when solves are
// uncached: the controller receives the compiled core.Plan directly
// (SetPlan), so its steady-state step solves with zero allocations
// instead of round-tripping each solve through the Solver interface.
// Cached or non-plan backends install the usual SolveFunc, routed
// through the solve cache when one is configured.
func (s *settings) wireSolver(ctl *Controller) error {
	solver, tag, err := s.resolveSolver()
	if err != nil {
		return err
	}
	return s.wireResolved(ctl, solver, tag)
}

// wireResolved is wireSolver for a backend the caller already resolved
// — NewFleet resolves once per fleet (or per overridden device) so that
// anonymous backends keep one cache tag across all devices.
func (s *settings) wireResolved(ctl *Controller, solver Solver, tag uint64) error {
	if s.solveCache != nil {
		// Cached solving takes the buffer-reusing path: hits copy into
		// the controller's own allocation instead of cloning, so cached
		// steady-state steps allocate nothing.
		ctl.SetSolveIntoFunc(s.solveCache.solveIntoFunc(tag, solver.Solve))
		return nil
	}
	if pb, ok := solver.(*planBackend); ok {
		p, err := pb.planFor(ctl.Config())
		if err != nil {
			return err
		}
		return ctl.SetPlan(p)
	}
	ctl.SetSolveFunc(solver.Solve)
	return nil
}
