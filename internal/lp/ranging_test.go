package lp

import (
	"math"
	"testing"
)

func TestRangeRHSSimple(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6. Optimum x=4 (first row
	// binding, second slack by 2). The binding row's RHS can grow until
	// the second constraint binds (x = 6 → RHS 6) and shrink to 0
	// (x ≥ 0): range [0, 6].
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Op: LE, RHS: 6},
		},
	}
	lo, hi, ok := RangeRHS(p, 0)
	if !ok {
		t.Fatal("ranging failed")
	}
	if math.Abs(lo-0) > 1e-7 || math.Abs(hi-6) > 1e-7 {
		t.Fatalf("range [%v, %v], want [0, 6]", lo, hi)
	}
	// The slack row: reducing its RHS below 4 (the used amount) breaks
	// the basis; increasing it never does.
	lo2, hi2, ok := RangeRHS(p, 1)
	if !ok {
		t.Fatal("ranging failed on slack row")
	}
	if math.Abs(lo2-4) > 1e-7 {
		t.Fatalf("slack row lower bound %v, want 4", lo2)
	}
	if !math.IsInf(hi2, 1) {
		t.Fatalf("slack row upper bound %v, want +inf", hi2)
	}
}

func TestRangeRHSValidation(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: EQ, RHS: 1},
			{Coeffs: []float64{1}, Op: LE, RHS: 2},
		},
	}
	if _, _, ok := RangeRHS(p, 0); ok {
		t.Error("equality row accepted")
	}
	if _, _, ok := RangeRHS(p, -1); ok {
		t.Error("negative row accepted")
	}
	if _, _, ok := RangeRHS(p, 5); ok {
		t.Error("out-of-range row accepted")
	}
	bad := &Problem{}
	if _, _, ok := RangeRHS(bad, 0); ok {
		t.Error("invalid problem accepted")
	}
}

func TestRangeRHSBasisInvariance(t *testing.T) {
	// Property: inside the reported range the optimal support (set of
	// positive variables) is unchanged; just outside it changes or the
	// objective slope changes.
	p := &Problem{
		Objective: []float64{0.94, 0.9, 0.76, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 1}, Op: EQ, RHS: 3600},
			{Coeffs: []float64{2.76e-3, 1.64e-3, 1.2e-3, 5e-5}, Op: LE, RHS: 5},
		},
	}
	support := func(rhs float64) map[int]bool {
		q := &Problem{Objective: p.Objective}
		q.Constraints = append(q.Constraints, p.Constraints[0])
		q.Constraints = append(q.Constraints, Constraint{
			Coeffs: p.Constraints[1].Coeffs, Op: LE, RHS: rhs,
		})
		sol, err := Solve(q)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("solve at rhs %v failed", rhs)
		}
		s := make(map[int]bool)
		for j, v := range sol.X {
			if v > 1e-6 {
				s[j] = true
			}
		}
		return s
	}
	lo, hi, ok := RangeRHS(p, 1)
	if !ok {
		t.Fatal("ranging failed")
	}
	if lo >= 5 || hi <= 5 {
		t.Fatalf("range [%v, %v] does not contain the nominal RHS 5", lo, hi)
	}
	base := support(5)
	for _, rhs := range []float64{lo + 1e-4, (lo + hi) / 2, hi - 1e-4} {
		s := support(rhs)
		if len(s) != len(base) {
			t.Fatalf("support changed inside range at rhs %v: %v vs %v", rhs, s, base)
		}
		for j := range base {
			if !s[j] {
				t.Fatalf("support changed inside range at rhs %v: %v vs %v", rhs, s, base)
			}
		}
	}
	// Outside the range the support must differ (step to another mix).
	outside := support(hi + 0.3)
	same := len(outside) == len(base)
	if same {
		for j := range base {
			if !outside[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("support unchanged beyond the range: %v", outside)
	}
}

func TestRangeRHSFlippedRow(t *testing.T) {
	// x >= 1 entered as -x <= -1, maximize -x (minimize x): optimum x=1.
	// The original RHS b=-1 (i.e. x >= -b): tightening below... the basis
	// stays optimal for b in (-inf, 0]: at b=0 the constraint becomes
	// x >= 0 which merges with non-negativity.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Op: LE, RHS: -1},
		},
	}
	lo, hi, ok := RangeRHS(p, 0)
	if !ok {
		t.Fatal("ranging failed")
	}
	if !math.IsInf(lo, -1) {
		t.Fatalf("lower bound %v, want -inf (any tighter floor keeps the basis)", lo)
	}
	if hi < -1e-9 || hi > 1e-6 {
		t.Fatalf("upper bound %v, want ~0", hi)
	}
	// Spot-check: at RHS -0.5 the optimum is x=0.5 with the same basis.
	q := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Op: LE, RHS: -0.5},
		},
	}
	sol, err := Solve(q)
	if err != nil || sol.Status != Optimal || math.Abs(sol.X[0]-0.5) > 1e-9 {
		t.Fatalf("interior solve: %v %v", sol, err)
	}
}
