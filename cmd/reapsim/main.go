// Command reapsim runs deterministic fleet scenarios from the sim
// package's corpus: multi-day closed loops of solar harvest, LP
// allocation, activity-modulated execution and fault injection, with
// per-step traces and fleet-level metrics.
//
// Usage:
//
//	reapsim -list
//	reapsim -scenario cache-hot
//	reapsim -scenario brownout -devices 8 -days 7 -seed 99 -trace -
//	reapsim -config my-world.json -metrics -
//	reapsim -all -metrics-dir out/
//	reapsim -validate my-world.json other.json
//
// Scenarios come from the embedded corpus (-scenario, -all; every
// committed sim/scenarios/*.json file), from a corpus directory
// (-corpus), or from a single config file (-config). Without overrides
// a scenario runs exactly as its config (and the golden-trace tests)
// defines it, so two invocations print identical traces. -trace writes
// the canonical trace encoding to a file, or to standard output with
// "-"; -metrics writes the summary metrics (distributions, percentiles
// and histograms included) as JSON the same way, and -metrics-dir
// writes one <scenario>.metrics.json per scenario — the artifact the
// scenario-corpus CI job archives.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/sim"
)

func main() {
	log.SetFlags(0)
	list := flag.Bool("list", false, "list the scenario corpus and exit")
	all := flag.Bool("all", false, "run every corpus scenario")
	name := flag.String("scenario", "", "corpus scenario to run (see -list)")
	configPath := flag.String("config", "", "run a single scenario config file instead of a corpus entry")
	corpusDir := flag.String("corpus", "", "load the corpus from this directory instead of the embedded one")
	validate := flag.Bool("validate", false, "validate the config files given as arguments and exit")
	devices := flag.Int("devices", 0, "override the scenario's fleet size")
	days := flag.Int("days", 0, "override the scenario's horizon in days")
	seed := flag.Int64("seed", 0, "override the scenario's seed (0 keeps it)")
	solver := flag.String("solver", "", "override the solver backend")
	tracePath := flag.String("trace", "", "write the canonical trace here (\"-\" for stdout)")
	metricsPath := flag.String("metrics", "", "write the summary metrics as JSON here (\"-\" for stdout)")
	metricsDir := flag.String("metrics-dir", "", "write per-scenario metrics JSON files into this directory")
	flag.Parse()

	if *validate {
		if flag.NArg() == 0 {
			log.Fatal("reapsim: -validate needs config file arguments")
		}
		failed := false
		for _, path := range flag.Args() {
			if _, err := sim.LoadScenario(path); err != nil {
				log.Printf("reapsim: %v", err)
				failed = true
				continue
			}
			fmt.Printf("%s: ok\n", path)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	corpus, err := loadCorpus(*corpusDir)
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *list:
		for _, sc := range corpus.Scenarios() {
			fmt.Printf("%-15s %s (%d devices, %d days, seed %d)\n",
				sc.Name, sc.Description, sc.Devices, sc.Days, sc.Seed)
		}
		return
	case *all:
		if *tracePath != "" || *metricsPath != "" {
			log.Fatal("reapsim: -trace/-metrics need a single scenario; use -metrics-dir with -all")
		}
		for _, sc := range corpus.Scenarios() {
			run(sc, *devices, *days, *seed, *solver, "", "", *metricsDir)
			fmt.Println()
		}
		return
	case *configPath != "":
		if *name != "" {
			log.Fatal("reapsim: -config and -scenario are mutually exclusive")
		}
		sc, err := sim.LoadScenario(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		run(sc, *devices, *days, *seed, *solver, *tracePath, *metricsPath, *metricsDir)
		return
	case *name == "":
		log.Fatal("reapsim: pick a -scenario (see -list), -config, -all or -validate")
	}
	sc, err := corpus.Lookup(*name)
	if err != nil {
		log.Fatal(err)
	}
	run(sc, *devices, *days, *seed, *solver, *tracePath, *metricsPath, *metricsDir)
}

// loadCorpus resolves the scenario source: the embedded corpus by
// default, or a directory of config files.
func loadCorpus(dir string) (*sim.ScenarioCorpus, error) {
	if dir == "" {
		return sim.Corpus()
	}
	return sim.LoadCorpus(dir)
}

func run(sc sim.Scenario, devices, days int, seed int64, solver, tracePath, metricsPath, metricsDir string) {
	if devices > 0 {
		sc.Devices = devices
	}
	if days > 0 {
		sc.Days = days
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if solver != "" {
		sc.Solver = solver
	}
	res, err := sim.Run(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s: %s\n%s\n", sc.Name, sc.Description, res.Summary)
	if tracePath != "" {
		writeTo(tracePath, func(f *os.File) error { return res.Trace.WriteText(f) })
	}
	if metricsPath != "" {
		writeTo(metricsPath, func(f *os.File) error { return writeMetrics(f, res) })
	}
	if metricsDir != "" {
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(metricsDir, sc.Name+".metrics.json")
		writeTo(path, func(f *os.File) error { return writeMetrics(f, res) })
	}
}

// writeTo opens path ("-" for stdout) and hands it to write.
func writeTo(path string, write func(*os.File) error) {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := write(out); err != nil {
		log.Fatal(err)
	}
}

// writeMetrics emits the per-scenario metrics document: the scenario
// name and seed plus the full Summary, distributions and histograms
// included.
func writeMetrics(f *os.File, res *sim.Result) error {
	doc := struct {
		Scenario string      `json:"scenario"`
		Seed     int64       `json:"seed"`
		Solver   string      `json:"solver"`
		Summary  sim.Summary `json:"summary"`
	}{res.Scenario.Name, res.Scenario.Seed, res.Scenario.Solver, res.Summary}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
