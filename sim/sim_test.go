package sim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro"
)

// corpusScenarios returns every scenario in the embedded corpus,
// failing the test if the corpus does not load.
func corpusScenarios(t *testing.T) []Scenario {
	t.Helper()
	c, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	return c.Scenarios()
}

// Two runs of the same scenario must produce byte-identical traces —
// the core determinism contract, independent of the checked-in goldens.
func TestSameSeedByteIdenticalTrace(t *testing.T) {
	for _, sc := range corpusScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Trace.Bytes(), b.Trace.Bytes()) {
				t.Fatalf("same seed produced different traces (%d vs %d bytes)",
					len(a.Trace.Bytes()), len(b.Trace.Bytes()))
			}
		})
	}
}

func TestDifferentSeedDifferentTrace(t *testing.T) {
	sc := Brownout()
	a, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed++
	b, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Trace.Bytes(), b.Trace.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

// The trace must be internally consistent: canonical ordering, time
// conservation, energy feasibility, batteries within capacity. Runs
// over the whole corpus, so churned, stormed, regional and aging
// scenarios are all held to the same invariants.
func TestTraceInvariants(t *testing.T) {
	for _, sc := range corpusScenarios(t) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Trace
			if got := len(tr.Records); got != tr.Steps*tr.Devices {
				t.Fatalf("%d records for %d steps x %d devices", got, tr.Steps, tr.Devices)
			}
			for step := 0; step < tr.Steps; step++ {
				for dev := 0; dev < tr.Devices; dev++ {
					r := tr.At(step, dev)
					if r.Step != step || r.Device != dev {
						t.Fatalf("record at (%d,%d) holds (%d,%d): ordering broken",
							step, dev, r.Step, r.Device)
					}
					cfg := res.Configs[dev]
					var active float64
					for _, a := range r.Active {
						if a < -1e-9 {
							t.Fatalf("step %d dev %d: negative active time %v", step, dev, a)
						}
						active += a
					}
					if total := active + r.OffS + r.DeadS; math.Abs(total-cfg.Period) > 1e-6 {
						t.Fatalf("step %d dev %d: allocation totals %v s, period is %v s",
							step, dev, total, cfg.Period)
					}
					if r.BatteryJ < -1e-9 || r.BatteryJ > capacityOf(res, dev)+1e-9 {
						t.Fatalf("step %d dev %d: battery %v outside [0, capacity]", step, dev, r.BatteryJ)
					}
					if r.ConsumedJ < 0 {
						t.Fatalf("step %d dev %d: negative consumption %v", step, dev, r.ConsumedJ)
					}
				}
			}
		})
	}
}

// capacityOf resolves device dev's battery capacity from the scenario's
// declarative population overrides, mirroring perDeviceOverride's
// matching rule.
func capacityOf(res *Result, dev int) float64 {
	capacity := res.Scenario.CapacityJ
	for _, p := range res.Scenario.Populations {
		if p.Modulus > 0 && dev%p.Modulus != p.Residue {
			continue
		}
		if p.BatteryJ != 0 || p.CapacityJ != 0 {
			capacity = p.CapacityJ
		}
	}
	return capacity
}

// The cache-hot scenario exists to prove budget correlation: all
// sixteen devices must collapse onto one solve per hour.
func TestCacheHotHitRate(t *testing.T) {
	res, err := Run(context.Background(), CacheHot())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheStats == nil {
		t.Fatal("cache-hot ran without a cache")
	}
	if rate := res.Summary.CacheHitRate; rate < 0.90 {
		t.Fatalf("cache hit rate %.3f below 0.90: budgets decorrelated (stats %+v)",
			rate, *res.CacheStats)
	}
	// Distinct solves should be about one per hour, not per device-hour.
	if res.CacheStats.Misses > uint64(res.Trace.Steps)+4 {
		t.Fatalf("%d cache misses for %d hours: correlated devices are not sharing entries",
			res.CacheStats.Misses, res.Trace.Steps)
	}
}

// Forecast-driven budgets must decouple the budget from the actual
// harvest after the warm-up day, and stay within the predictor's range.
func TestForecastBudgetsDecouple(t *testing.T) {
	res, err := Run(context.Background(), CloudyBursts())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	warm, post := 0, 0
	var diverged bool
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Step < 24 {
			if r.BudgetJ != r.HarvestJ {
				t.Fatalf("step %d dev %d: warm-up budget %v != harvest %v",
					r.Step, r.Device, r.BudgetJ, r.HarvestJ)
			}
			warm++
			continue
		}
		post++
		if r.BudgetJ != r.HarvestJ {
			diverged = true
		}
		if r.BudgetJ < 0 {
			t.Fatalf("step %d dev %d: negative forecast budget %v", r.Step, r.Device, r.BudgetJ)
		}
	}
	if warm == 0 || post == 0 {
		t.Fatalf("degenerate horizon: %d warm-up, %d forecast records", warm, post)
	}
	if !diverged {
		t.Fatal("forecast budgets never diverged from actual harvest")
	}
}

// Fault injection must actually fire at the configured rate and degrade
// utility relative to accuracy.
func TestFaultInjection(t *testing.T) {
	res, err := Run(context.Background(), Brownout())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.FaultCount == 0 {
		t.Fatal("brownout scenario injected no faults at FaultRate=0.12")
	}
	for i := range res.Trace.Records {
		r := &res.Trace.Records[i]
		if r.Fault == "none" {
			if r.Utility != r.Accuracy {
				t.Fatalf("step %d dev %d: utility %v != accuracy %v without a fault",
					r.Step, r.Device, r.Utility, r.Accuracy)
			}
		} else if r.Accuracy > 0 && r.Utility >= r.Accuracy {
			t.Fatalf("step %d dev %d: fault %s did not degrade utility (%v >= %v)",
				r.Step, r.Device, r.Fault, r.Utility, r.Accuracy)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := map[string]func(*Scenario){
		"no devices":      func(s *Scenario) { s.Devices = 0 },
		"bad month":       func(s *Scenario) { s.Month = 13 },
		"too many days":   func(s *Scenario) { s.Days = 40 },
		"neg noise":       func(s *Scenario) { s.Noise = -1 },
		"bad fault":       func(s *Scenario) { s.FaultRate = 2 },
		"bad jitter":      func(s *Scenario) { s.DeviceJitter = 1 },
		"neg scale":       func(s *Scenario) { s.HarvestScale = -2 },
		"neg months":      func(s *Scenario) { s.Months = -1 },
		"huge months":     func(s *Scenario) { s.Months = 37 },
		"neg aging":       func(s *Scenario) { s.AgingPerDay = -0.01 },
		"huge aging":      func(s *Scenario) { s.AgingPerDay = 0.2 },
		"bad residue":     func(s *Scenario) { s.Populations = []Population{{Modulus: 3, Residue: 3}} },
		"bad pop battery": func(s *Scenario) { s.Populations = []Population{{BatteryJ: 10}} },
		"pops+perdevice": func(s *Scenario) {
			s.Populations = []Population{{Modulus: 2}}
			s.PerDevice = func(int) []reap.Option { return nil }
		},
		"dup region":        func(s *Scenario) { s.Regions = []Region{{Name: "a"}, {Name: "a"}} },
		"neg region scale":  func(s *Scenario) { s.Regions = []Region{{Name: "a", HarvestScale: -1}} },
		"churn early":       func(s *Scenario) { s.Churn = []ChurnEvent{{Step: -1}} },
		"churn late":        func(s *Scenario) { s.Churn = []ChurnEvent{{Step: 72}} },
		"churn unordered":   func(s *Scenario) { s.Churn = []ChurnEvent{{Step: 10}, {Step: 5}} },
		"churn bad device":  func(s *Scenario) { s.Churn = []ChurnEvent{{Step: 1, Leave: []int{9}}} },
		"storm bad rate":    func(s *Scenario) { s.Storm = &Storm{StartRate: 2, DurationHours: 3} },
		"storm no duration": func(s *Scenario) { s.Storm = &Storm{StartRate: 0.1} },
		"storm bad faults":  func(s *Scenario) { s.Storm = &Storm{StartRate: 0.1, DurationHours: 3, FaultRate: -1} },
		"storm bad scale":   func(s *Scenario) { s.Storm = &Storm{StartRate: 0.1, DurationHours: 3, HarvestScale: -1} },
	}
	for name, mutate := range cases {
		sc := ClearMonth()
		mutate(&sc)
		_, err := Run(context.Background(), sc)
		if err == nil {
			t.Errorf("%s: Run accepted an invalid scenario", name)
			continue
		}
		if !errors.Is(err, ErrInvalidScenario) {
			t.Errorf("%s: error does not wrap ErrInvalidScenario: %v", name, err)
		}
	}
	if _, err := Run(context.Background(), Scenario{}); !errors.Is(err, ErrInvalidScenario) {
		t.Errorf("zero scenario must fail with ErrInvalidScenario, got %v", err)
	}
	sc := ClearMonth()
	sc.Solver = "no-such-backend"
	if _, err := Run(context.Background(), sc); err == nil {
		t.Error("unknown solver must fail the run")
	}
}

// Lookup resolves corpus scenarios by name and classifies unknown names
// with the ErrUnknownScenario sentinel.
func TestLookup(t *testing.T) {
	for _, want := range Library() {
		got, err := Lookup(want.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != want.Name || got.Seed != want.Seed {
			t.Fatalf("Lookup(%q) returned %q seed %d", want.Name, got.Name, got.Seed)
		}
	}
	cases := []struct {
		name string
		want error
	}{
		{"nope", ErrUnknownScenario},
		{"", ErrUnknownScenario},
		{"clear-month ", ErrUnknownScenario}, // names are exact, no trimming
	}
	for _, tc := range cases {
		_, err := Lookup(tc.name)
		if !errors.Is(err, tc.want) {
			t.Errorf("Lookup(%q): got %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
	// The message must name what was asked for, so operators can see the
	// typo, and list what exists.
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("Lookup of unknown scenario: %v", err)
	}
}

// The embedded corpus must contain every legacy library scenario with
// semantics identical to its Go constructor (the byte-level pinning of
// the config files is config_test.go's job).
func TestCorpusSupersetOfLibrary(t *testing.T) {
	c, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range Library() {
		got, err := c.Lookup(want.Name)
		if err != nil {
			t.Fatalf("library scenario %s missing from corpus: %v", want.Name, err)
		}
		wc, err := ConfigFromScenario(want)
		if err != nil {
			t.Fatal(err)
		}
		gc, err := ConfigFromScenario(got)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := wc.Encode()
		if err != nil {
			t.Fatal(err)
		}
		gb, err := gc.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("%s: corpus scenario differs from constructor:\ncorpus:      %s\nconstructor: %s",
				want.Name, gb, wb)
		}
	}
	if c.Len() < len(Library())+4 {
		t.Fatalf("corpus has %d scenarios; want the %d legacy ones plus at least 4 config-only",
			c.Len(), len(Library()))
	}
}

// Cancelling mid-run must abort with the context error rather than
// recording a partial trace as success.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, ClearMonth()); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

// The mixed fleet must actually be heterogeneous: the α = 2 population
// plans differently from the α = 0.5 population under the same sky.
func TestMixedFleetHeterogeneous(t *testing.T) {
	res, err := Run(context.Background(), MixedFleet())
	if err != nil {
		t.Fatal(err)
	}
	if a0, a1 := res.Configs[0].Alpha, res.Configs[1].Alpha; a0 == a1 {
		t.Fatalf("device 0 and 1 share alpha %v: override did not apply", a0)
	}
}

// mustScenario fetches a corpus scenario the test depends on.
func mustScenario(t *testing.T, name string) Scenario {
	t.Helper()
	sc, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// Fleet churn: the fleet-churn scenario provisions device 4 at step 24
// and takes device 0 offline for [36, 60). Offline device-hours must be
// fully dead — no budget, no consumption, battery frozen — and the
// device must resume from its frozen battery when it rejoins.
func TestFleetChurnOfflineAccounting(t *testing.T) {
	res, err := Run(context.Background(), mustScenario(t, "fleet-churn"))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	offline := func(dev, step int) bool {
		switch dev {
		case 4:
			return step < 24
		case 0:
			return step >= 36 && step < 60
		}
		return false
	}
	frozen := map[int]float64{}
	for step := 0; step < tr.Steps; step++ {
		for dev := 0; dev < tr.Devices; dev++ {
			r := tr.At(step, dev)
			if !offline(dev, step) {
				delete(frozen, dev)
				continue
			}
			if r.BudgetJ != 0 || r.ConsumedJ != 0 || r.HarvestJ != 0 {
				t.Fatalf("step %d dev %d: offline device has budget %v harvest %v consumed %v",
					step, dev, r.BudgetJ, r.HarvestJ, r.ConsumedJ)
			}
			if r.DeadS != res.Configs[dev].Period {
				t.Fatalf("step %d dev %d: offline period not fully dead (%v s)", step, dev, r.DeadS)
			}
			if prev, ok := frozen[dev]; ok && r.BatteryJ != prev {
				t.Fatalf("step %d dev %d: battery moved offline (%v -> %v)", step, dev, prev, r.BatteryJ)
			}
			frozen[dev] = r.BatteryJ
		}
	}
	// Device 0's first online step after rejoin starts from the frozen
	// battery level (continuity across the gap).
	preOffline := tr.At(35, 0).BatteryJ
	if got := tr.At(59, 0).BatteryJ; got != preOffline {
		t.Fatalf("device 0 battery drifted offline: %v -> %v", preOffline, got)
	}
	// The rejoined device must actually do work again.
	var post float64
	for step := 60; step < tr.Steps; step++ {
		post += tr.At(step, 0).ConsumedJ
	}
	if post == 0 {
		t.Fatal("device 0 never consumed after rejoining")
	}
}

// Correlated storms: removing the storm from the fault-storm scenario
// must strictly reduce both the fault count and total harvest — the
// correlated windows are where the cascade comes from.
func TestStormCorrelatedFaults(t *testing.T) {
	sc := mustScenario(t, "fault-storm")
	stormy, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	calm := sc
	calm.Storm = nil
	base, err := Run(context.Background(), calm)
	if err != nil {
		t.Fatal(err)
	}
	if stormy.Summary.FaultCount <= base.Summary.FaultCount {
		t.Fatalf("storm did not raise fault count: %d with storm, %d without",
			stormy.Summary.FaultCount, base.Summary.FaultCount)
	}
	if stormy.Summary.TotalHarvestJ >= base.Summary.TotalHarvestJ {
		t.Fatalf("storm did not darken the sky: %v J with storm, %v J without",
			stormy.Summary.TotalHarvestJ, base.Summary.TotalHarvestJ)
	}
	// Storm windows hit the whole fleet at once: some hour must see at
	// least two devices faulting together (p ≈ 1 per run at these rates).
	perStep := map[int]int{}
	for i := range stormy.Trace.Records {
		r := &stormy.Trace.Records[i]
		if r.Fault != "none" {
			perStep[r.Step]++
		}
	}
	correlated := 0
	for _, n := range perStep {
		if n >= 2 {
			correlated++
		}
	}
	if correlated == 0 {
		t.Fatal("no hour saw two devices faulting together; storms are not correlated")
	}
}

// Geographic fleets: devices in the same region share a sky sequence;
// devices in different regions see genuinely different weather.
func TestGeoFleetRegionalSkies(t *testing.T) {
	res, err := Run(context.Background(), mustScenario(t, "geo-fleet"))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	diff := 0
	for step := 0; step < tr.Steps; step++ {
		// Devices 0 and 3 share region 0 (i % 3).
		if a, b := tr.At(step, 0).Sky, tr.At(step, 3).Sky; a != b {
			t.Fatalf("step %d: same-region devices saw %s vs %s", step, a, b)
		}
		if tr.At(step, 0).Sky != tr.At(step, 1).Sky {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("regions oslo and lisbon produced identical sky sequences")
	}
}

// Battery aging: the seasonal-aging scenario's consumption inflation
// must compound — switching aging off strictly reduces total consumed
// energy over the two-month horizon.
func TestSeasonalAgingInflatesConsumption(t *testing.T) {
	sc := mustScenario(t, "seasonal-aging")
	aged, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	fresh := sc
	fresh.AgingPerDay = 0
	base, err := Run(context.Background(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if aged.Summary.TotalConsumedJ <= base.Summary.TotalConsumedJ {
		t.Fatalf("aging did not inflate consumption: %v J aged, %v J fresh",
			aged.Summary.TotalConsumedJ, base.Summary.TotalConsumedJ)
	}
	// The horizon must actually cross the month boundary (30 November
	// days < 40 simulated days), or the seasonal seam is untested.
	if sc.Days*24 <= 30*24 {
		t.Fatalf("seasonal-aging horizon %d days does not cross the month boundary", sc.Days)
	}
}

// The statistical golden: utility and neutrality across independent
// seeds must be stable enough that a 95% confidence interval on the
// mean stays inside a fixed band. A regression that shifts the
// distribution — not just one seed — moves the interval out of the
// band; a single noisy seed does not.
func TestMultiSeedStatisticalGolden(t *testing.T) {
	const seeds = 8
	sc := ClearMonth()
	var utilities, neutralities []float64
	for s := int64(0); s < seeds; s++ {
		run := sc
		run.Seed = sc.Seed + 100 + s
		res, err := Run(context.Background(), run)
		if err != nil {
			t.Fatal(err)
		}
		utilities = append(utilities, res.Summary.MeanUtility)
		neutralities = append(neutralities, res.Summary.NeutralityError)
	}
	uLo, uHi, err := MeanCI(utilities, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// The band is deliberately loose (±25% around the seed-1 golden's
	// utility): it catches distribution-level regressions, not noise.
	if uLo < 0.45 || uHi > 0.95 {
		t.Fatalf("mean utility CI [%v, %v] left the expected band [0.45, 0.95] (samples %v)",
			uLo, uHi, utilities)
	}
	if uHi-uLo > 0.15 {
		t.Fatalf("utility CI [%v, %v] too wide: seeds disagree wildly (samples %v)", uLo, uHi, utilities)
	}
	nLo, nHi, err := MeanCI(neutralities, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if nLo < 0 || nHi > 0.5 {
		t.Fatalf("neutrality CI [%v, %v] outside [0, 0.5] (samples %v)", nLo, nHi, neutralities)
	}
}
