package eval

import (
	"strings"
	"testing"

	"repro/internal/har"
	"repro/internal/solar"
)

func TestStrategiesExperiment(t *testing.T) {
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	// Ten days keeps the receding-horizon LPs quick.
	res, err := StrategiesOn(paperCfg(), tr.Hours[:240])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byName := map[string]StrategyRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		if r.MeanAccuracy < 0 || r.MeanAccuracy > 1 {
			t.Errorf("%s mean accuracy %v", r.Name, r.MeanAccuracy)
		}
	}
	greedy := byName["greedy (no battery)"]
	oracle := byName["oracle-forecast lookahead"]
	ewma := byName["EWMA-forecast lookahead"]
	battery := byName["battery allocator + myopic REAP"]
	// Storage and foresight must help: oracle >= others; anything with a
	// battery >= greedy.
	if oracle.MeanAccuracy < battery.MeanAccuracy-1e-9 ||
		oracle.MeanAccuracy < ewma.MeanAccuracy-1e-9 ||
		oracle.MeanAccuracy < greedy.MeanAccuracy-1e-9 {
		t.Errorf("oracle lookahead (%v) beaten: battery %v, ewma %v, greedy %v",
			oracle.MeanAccuracy, battery.MeanAccuracy, ewma.MeanAccuracy, greedy.MeanAccuracy)
	}
	if battery.MeanAccuracy < greedy.MeanAccuracy-1e-9 {
		t.Errorf("battery allocator (%v) worse than greedy (%v)",
			battery.MeanAccuracy, greedy.MeanAccuracy)
	}
	if oracle.RelativeToOracle != 1 {
		t.Errorf("oracle normalization %v", oracle.RelativeToOracle)
	}
	if !strings.Contains(res.Render(), "oracle") {
		t.Error("render incomplete")
	}
}

func TestStrategiesValidation(t *testing.T) {
	if _, err := StrategiesOn(paperCfg(), nil); err != nil {
		t.Fatalf("empty trace should be fine: %v", err)
	}
}

func TestQuantizationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res, err := QuantizationOn(smallCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Int8EnergyMJ >= row.FloatEnergyMJ {
			t.Errorf("%s: int8 energy %v not below float %v", row.Name, row.Int8EnergyMJ, row.FloatEnergyMJ)
		}
		if row.EnergySavedPct <= 0 || row.EnergySavedPct > 25 {
			t.Errorf("%s: energy saving %v%% implausible", row.Name, row.EnergySavedPct)
		}
		if row.FloatAccPct-row.Int8AccPct > 3 {
			t.Errorf("%s: quantization lost %.1f accuracy points",
				row.Name, row.FloatAccPct-row.Int8AccPct)
		}
	}
	if !strings.Contains(res.Render(), "int8") {
		t.Error("render incomplete")
	}
}

func TestGeneralizationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := smallCorpus(t)
	res, err := Generalization(ds, har.PaperFive()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.PerUserMin > res.PerUserMax {
		t.Fatal("per-user bounds inverted")
	}
	if len(res.PerUser) != len(ds.Users) {
		t.Fatalf("per-user report covers %d users, corpus has %d", len(res.PerUser), len(ds.Users))
	}
	// LOUO must trail the within-corpus split (unseen users are harder)
	// but stay far above chance.
	if res.LOUO.Mean > res.WithinSplit+0.03 {
		t.Errorf("LOUO %v above within-split %v", res.LOUO.Mean, res.WithinSplit)
	}
	if res.LOUO.Mean < 0.4 {
		t.Errorf("LOUO mean %v near chance", res.LOUO.Mean)
	}
	out := res.Render()
	if !strings.Contains(out, "LOUO") || !strings.Contains(out, "mean") {
		t.Error("render incomplete")
	}
}
