package device

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/solar"
)

func TestOracleForecaster(t *testing.T) {
	o := &OracleForecaster{Trace: []float64{1, 2, 3}}
	p := o.Predict(5)
	want := []float64{1, 2, 3, 0, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("predict %v, want %v", p, want)
		}
	}
	if err := o.Observe(1); err != nil {
		t.Fatal(err)
	}
	p = o.Predict(2)
	if p[0] != 2 || p[1] != 3 {
		t.Fatalf("after observe: %v", p)
	}
}

func TestRecedingHorizonValidation(t *testing.T) {
	rh := &RecedingHorizon{Cfg: core.Config{}, Forecast: &OracleForecaster{}}
	if _, err := rh.Run([]float64{1}); err == nil {
		t.Fatal("invalid config accepted")
	}
	rh = &RecedingHorizon{Cfg: core.DefaultConfig()}
	if _, err := rh.Run([]float64{1}); err == nil {
		t.Fatal("nil forecaster accepted")
	}
	rh = &RecedingHorizon{Cfg: core.DefaultConfig(), Forecast: &OracleForecaster{},
		BatteryJ: 5, CapacityJ: 1}
	if _, err := rh.Run([]float64{1}); err == nil {
		t.Fatal("charge above capacity accepted")
	}
}

func TestRecedingHorizonBanksForTheNight(t *testing.T) {
	// Two days of square-wave sun. The oracle lookahead must achieve
	// strictly more total objective than greedy myopic REAP, because it
	// banks midday surplus (beyond DP1's needs) for the dark hours.
	cfg := core.DefaultConfig()
	var harvest []float64
	for d := 0; d < 2; d++ {
		for h := 0; h < 24; h++ {
			if h >= 9 && h < 15 {
				harvest = append(harvest, 12)
			} else {
				harvest = append(harvest, 0)
			}
		}
	}
	rh := &RecedingHorizon{
		Cfg: cfg, CapacityJ: 200, Horizon: 24,
		Forecast: &OracleForecaster{Trace: harvest},
	}
	look, err := rh.Run(harvest)
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulator{Cfg: cfg}
	greedy, err := sim.Run(REAPPolicy{}, harvest)
	if err != nil {
		t.Fatal(err)
	}
	if look.MeanObjective() <= greedy.MeanObjective() {
		t.Fatalf("lookahead %v does not beat greedy %v on square-wave sun",
			look.MeanObjective(), greedy.MeanObjective())
	}
	// Night hours after a sunny day must show activity under lookahead.
	nightActive := 0.0
	for h := 16; h < 24; h++ {
		nightActive += look.Hours[h].ActiveTime
	}
	if nightActive <= 0 {
		t.Fatal("lookahead never active at night despite a 200 J battery")
	}
}

func TestRecedingHorizonWithEWMAOnSolar(t *testing.T) {
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	ew, err := forecast.NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	rh := &RecedingHorizon{Cfg: core.DefaultConfig(), CapacityJ: 200, Horizon: 24, Forecast: ew}
	res, err := rh.Run(tr.Hours[:168]) // one week
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hours) != 168 {
		t.Fatal("length mismatch")
	}
	// Energy conservation: total consumed cannot exceed total harvested
	// plus initial battery (0).
	var consumed, harvested float64
	for i, h := range res.Hours {
		consumed += h.Consumed
		harvested += tr.Hours[i]
	}
	if consumed > harvested+1e-6 {
		t.Fatalf("consumed %v exceeds harvested %v", consumed, harvested)
	}
	if res.TotalActiveTime() <= 0 {
		t.Fatal("never active in a September week")
	}
}

func TestRecedingHorizonDefaultHorizon(t *testing.T) {
	rh := &RecedingHorizon{
		Cfg: core.DefaultConfig(), CapacityJ: 10,
		Forecast: &OracleForecaster{Trace: []float64{5}},
	}
	res, err := rh.Run([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if rh.Horizon != 24 {
		t.Fatalf("default horizon %d", rh.Horizon)
	}
	if math.Abs(res.Hours[0].Consumed-res.Hours[0].Alloc.Energy(rh.Cfg)) > 1e-9 {
		t.Fatal("consumed != planned without noise")
	}
}
