// Package load type-checks this module's packages for the reapvet
// analyzers without depending on golang.org/x/tools/go/packages.
//
// It shells out to `go list -export -deps -json`, which both describes
// the package graph and materializes compiler export data for every
// dependency in the build cache. Target packages are then parsed from
// source and type-checked with go/types, resolving imports through the
// gc export data — so the loader needs exactly what the build already
// needed: the go toolchain and the module's own sources. No network, no
// third-party loader.
//
// Test files are deliberately excluded: the reapvet invariants govern
// shipping code, and tests are free to use context.Background, exact
// float comparisons against golden values, and allocation-heavy
// scaffolding.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the loader
// reads.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// list runs `go list -export -deps -json` for the patterns in dir.
func list(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to export data files for
// importer.ForCompiler.
type exportLookup map[string]string

func (e exportLookup) lookup(path string) (io.ReadCloser, error) {
	file, ok := e[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// Packages loads and type-checks the packages matching the go list
// patterns (e.g. "./..."), rooted at dir, returning them ready for
// analysis. Dependencies resolve from compiler export data; only the
// matched packages themselves are parsed from source.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	all, err := list(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := exportLookup{}
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.lookup)
	var out []*analysis.Package
	for _, p := range all {
		// DepOnly marks packages present only as dependencies of the
		// matched patterns; those resolve from export data alone.
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Dir loads one directory of Go files as a package with the given
// import path, resolving its imports through export data listed from
// moduleRoot. This is the analysistest entry point: fixture packages
// under testdata/ (invisible to the go tool) get type-checked as if
// they lived at importPath, so analyzers keyed on package paths see the
// path the fixture claims.
func Dir(moduleRoot, fixtureDir, importPath string) (*analysis.Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, fmt.Errorf("load: reading fixture dir: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", fixtureDir)
	}
	// Parse first to learn the fixture's imports, then list exactly
	// those packages for export data.
	fset := token.NewFileSet()
	var syntax []*ast.File
	imports := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(fixtureDir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parsing fixture: %w", err)
		}
		syntax = append(syntax, f)
		for _, spec := range f.Imports {
			imports[importPathOf(spec)] = true
		}
	}
	exports := exportLookup{}
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for path := range imports {
			patterns = append(patterns, path)
		}
		all, err := list(moduleRoot, patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range all {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exports.lookup)
	return checkParsed(fset, imp, importPath, syntax)
}

func importPathOf(spec *ast.ImportSpec) string {
	path := spec.Path.Value
	return path[1 : len(path)-1] // strip quotes
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*analysis.Package, error) {
	var syntax []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parsing %s: %w", importPath, err)
		}
		syntax = append(syntax, f)
	}
	return checkParsed(fset, imp, importPath, syntax)
}

func checkParsed(fset *token.FileSet, imp types.Importer, importPath string, syntax []*ast.File) (*analysis.Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, err)
	}
	return &analysis.Package{Fset: fset, Files: syntax, Pkg: pkg, TypesInfo: info}, nil
}
