package solar

import (
	"fmt"
	"math"
)

// Cell models the flexible photovoltaic cell and its harvesting circuit.
// Defaults approximate the FlexSolarCells SP3-37 module on the paper's
// prototype, derated by a wearing-exposure factor: a wearable's cell is
// rarely normal to the sun and spends much of the day shaded by clothing
// and buildings. The exposure default is calibrated so September hourly
// budgets in Golden span the paper's evaluation range (≈0.2–10 J).
type Cell struct {
	// AreaM2 is the active cell area in m² (SP3-37: 37 mm x 64 mm).
	AreaM2 float64
	// Efficiency is the photovoltaic conversion efficiency.
	Efficiency float64
	// HarvesterEfficiency is the boost-converter/MPPT chain efficiency.
	HarvesterEfficiency float64
	// Exposure derates irradiance for body shading and orientation.
	Exposure float64
}

// DefaultCell returns the calibrated SP3-37-like harvesting chain.
func DefaultCell() Cell {
	return Cell{
		AreaM2:              0.037 * 0.064,
		Efficiency:          0.06,
		HarvesterEfficiency: 0.70,
		Exposure:            0.035,
	}
}

// Validate checks the cell parameters.
func (c Cell) Validate() error {
	if c.AreaM2 <= 0 || math.IsNaN(c.AreaM2) {
		return fmt.Errorf("solar: cell area %v must be positive", c.AreaM2)
	}
	for name, v := range map[string]float64{
		"efficiency":           c.Efficiency,
		"harvester efficiency": c.HarvesterEfficiency,
		"exposure":             c.Exposure,
	} {
		if v <= 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("solar: %s %v outside (0,1]", name, v)
		}
	}
	return nil
}

// Power returns the harvested electrical power in watts for an incident
// irradiance in W/m².
func (c Cell) Power(ghi float64) float64 {
	if ghi <= 0 {
		return 0
	}
	return ghi * c.AreaM2 * c.Efficiency * c.HarvesterEfficiency * c.Exposure
}

// HourEnergy returns the energy in joules harvested over one hour at the
// given average irradiance.
func (c Cell) HourEnergy(ghi float64) float64 { return c.Power(ghi) * 3600 }
