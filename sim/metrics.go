package sim

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Summary aggregates a run into the closed-loop metrics the paper's
// claims are about. All energies are joules summed over the whole fleet
// and horizon. Beyond the fleet-level means, Summary reports full
// per-device-step distributions (nearest-rank p50/p90/p99, matching
// cmd/reapload's percentile convention) so a regression confined to the
// tail — one region starving, one population browning out — cannot hide
// behind an unchanged mean. The JSON encoding of a Summary is the
// per-scenario metrics document reapsim emits and CI archives.
type Summary struct {
	Devices, Steps int

	// TotalHarvestJ is the energy actually harvested; TotalBudgetJ what
	// the controllers were told (differs under forecast-driven budgets);
	// TotalPlannedJ what the plans would consume; TotalConsumedJ what
	// execution drew.
	TotalHarvestJ, TotalBudgetJ, TotalPlannedJ, TotalConsumedJ float64

	// BatteryStartJ and BatteryEndJ are fleet-wide battery charge at the
	// horizon ends.
	BatteryStartJ, BatteryEndJ float64

	// NeutralityError is the relative residual of the controllers'
	// energy ledger, |budget − consumed − Δbattery| / budget: zero for a
	// perfectly energy-neutral run; growing with battery-overflow
	// losses, brownout clamping and end-of-horizon accounting carry.
	NeutralityError float64

	// NeutralityErrDist is the distribution of the per-device-step
	// neutrality residual |b − c − Δbattery| / max(b, c, 1 nJ) — the
	// step-local version of NeutralityError, whose p90/p99 expose
	// overflow and clamping episodes the horizon total averages away.
	NeutralityErrDist Distribution

	// MeanAccuracy and MeanUtility average the per-device-hour expected
	// accuracy and its fault-degraded counterpart. ActiveFraction and
	// DeadFraction are time shares of the whole fleet-horizon. Offline
	// (churned-out) device-hours count as dead time with zero utility —
	// the fleet-operator's view, not the per-device one.
	MeanAccuracy, MeanUtility    float64
	ActiveFraction, DeadFraction float64

	// UtilityDist is the distribution of per-device-step utility.
	UtilityDist Distribution

	// UtilityHist and NeutralityErrHist bucket the same samples into 20
	// equal bins over [0, 1] (neutrality residuals above 1 land in the
	// last bucket), for the per-scenario metrics artifact.
	UtilityHist       Histogram
	NeutralityErrHist Histogram

	// FaultCount is the number of injected fault episodes.
	FaultCount int

	// CacheHitRate is the shared solve cache's hit rate (hits plus
	// coalesced over lookups); -1 when the scenario ran uncached.
	CacheHitRate float64

	// Elapsed and StepsPerSec measure wall-clock performance
	// (device-steps per second). Nondeterministic — excluded from golden
	// comparisons.
	Elapsed     time.Duration
	StepsPerSec float64
}

// histBuckets is the fixed bucket count of the summary histograms.
const histBuckets = 20

// summarize computes the run metrics from the trace, the per-device
// start batteries and the fleet battery endpoint.
func summarize(res *Result, batteryStarts []float64, batteryEnd float64, elapsed time.Duration) (Summary, error) {
	t := res.Trace
	var batteryStart float64
	for _, b := range batteryStarts {
		batteryStart += b
	}
	s := Summary{
		Devices:       t.Devices,
		Steps:         t.Steps,
		BatteryStartJ: batteryStart,
		BatteryEndJ:   batteryEnd,
		CacheHitRate:  -1,
		Elapsed:       elapsed,
	}
	var periodTotal float64
	utilities := make([]float64, 0, len(t.Records))
	residuals := make([]float64, 0, len(t.Records))
	prevBattery := append([]float64(nil), batteryStarts...)
	for i := range t.Records {
		r := &t.Records[i]
		s.TotalHarvestJ += r.HarvestJ
		s.TotalBudgetJ += r.BudgetJ
		s.TotalPlannedJ += r.PlannedJ
		s.TotalConsumedJ += r.ConsumedJ
		s.MeanAccuracy += r.Accuracy
		s.MeanUtility += r.Utility
		if r.Fault != "none" {
			s.FaultCount++
		}
		var active float64
		for _, a := range r.Active {
			active += a
		}
		s.ActiveFraction += active
		s.DeadFraction += r.DeadS
		periodTotal += res.Configs[r.Device].Period

		utilities = append(utilities, r.Utility)
		delta := r.BatteryJ - prevBattery[r.Device]
		prevBattery[r.Device] = r.BatteryJ
		residual := math.Abs(r.BudgetJ - r.ConsumedJ - delta)
		denom := math.Max(math.Max(r.BudgetJ, r.ConsumedJ), 1e-9)
		residuals = append(residuals, residual/denom)
	}
	if n := len(t.Records); n > 0 {
		s.MeanAccuracy /= float64(n)
		s.MeanUtility /= float64(n)
	}
	if periodTotal > 0 {
		s.ActiveFraction /= periodTotal
		s.DeadFraction /= periodTotal
	}
	if s.TotalBudgetJ > 0 {
		s.NeutralityError = math.Abs(s.TotalBudgetJ-s.TotalConsumedJ-(batteryEnd-batteryStart)) / s.TotalBudgetJ
	}
	var err error
	if s.UtilityDist, err = Summarize(utilities); err != nil {
		return Summary{}, fmt.Errorf("utility distribution: %w", err)
	}
	if s.NeutralityErrDist, err = Summarize(residuals); err != nil {
		return Summary{}, fmt.Errorf("neutrality distribution: %w", err)
	}
	s.UtilityHist = NewHistogram(utilities, 0, 1, histBuckets)
	s.NeutralityErrHist = NewHistogram(residuals, 0, 1, histBuckets)
	if res.CacheStats != nil {
		s.CacheHitRate = res.CacheStats.HitRate()
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.StepsPerSec = float64(len(t.Records)) / sec
	}
	return s, nil
}

// String renders the summary as a small human-readable report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "devices=%d steps=%d (%d device-hours)\n", s.Devices, s.Steps, s.Devices*s.Steps)
	fmt.Fprintf(&b, "energy: harvested=%.2f J budgeted=%.2f J planned=%.2f J consumed=%.2f J\n",
		s.TotalHarvestJ, s.TotalBudgetJ, s.TotalPlannedJ, s.TotalConsumedJ)
	fmt.Fprintf(&b, "battery: %.2f J -> %.2f J   neutrality error=%.4f\n",
		s.BatteryStartJ, s.BatteryEndJ, s.NeutralityError)
	fmt.Fprintf(&b, "neutrality/step: p50=%.4f p90=%.4f p99=%.4f max=%.4f\n",
		s.NeutralityErrDist.P50, s.NeutralityErrDist.P90, s.NeutralityErrDist.P99, s.NeutralityErrDist.Max)
	fmt.Fprintf(&b, "quality: accuracy=%.4f utility=%.4f active=%.1f%% dead=%.1f%% faults=%d\n",
		s.MeanAccuracy, s.MeanUtility, 100*s.ActiveFraction, 100*s.DeadFraction, s.FaultCount)
	fmt.Fprintf(&b, "utility/step: p50=%.4f p90=%.4f p99=%.4f min=%.4f\n",
		s.UtilityDist.P50, s.UtilityDist.P90, s.UtilityDist.P99, s.UtilityDist.Min)
	if s.CacheHitRate >= 0 {
		fmt.Fprintf(&b, "cache: hit rate=%.1f%%\n", 100*s.CacheHitRate)
	}
	fmt.Fprintf(&b, "perf: %s elapsed, %.0f device-steps/sec", s.Elapsed.Round(time.Millisecond), s.StepsPerSec)
	return b.String()
}
