package eval

import (
	"fmt"

	"repro/internal/core"
)

// SweepPoint is one budget sample of the Figure 5 energy sweep.
type SweepPoint struct {
	BudgetJ float64
	Region  core.Region
	// REAPAccuracyPct and REAPActiveFrac evaluate the optimal allocation.
	REAPAccuracyPct float64
	REAPActiveFrac  float64
	// DPAccuracyPct and DPActiveFrac evaluate each static design point.
	DPAccuracyPct []float64
	DPActiveFrac  []float64
	// Mix is the REAP time share per design point (plus off), summing
	// to 1 with the off share.
	Mix []float64
	Off float64
}

// Figure5Result holds the sweep behind Figures 5(a) and 5(b).
type Figure5Result struct {
	Cfg    core.Config
	Points []SweepPoint
}

// Figure5 sweeps the allocated energy from the idle floor to past DP1
// saturation with α = 1, evaluating REAP and the static design points —
// the content of Figure 5(a) (expected accuracy) and 5(b) (active time
// normalized to REAP).
func Figure5(cfg core.Config, step float64) (*Figure5Result, error) {
	if step <= 0 {
		step = 0.1
	}
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Figure5Result{Cfg: cfg}
	max := cfg.MaxUsefulBudget() * 1.08
	for budget := cfg.MinBudget(); budget <= max; budget += step {
		alloc, err := core.Solve(cfg, budget)
		if err != nil {
			return nil, err
		}
		p := SweepPoint{
			BudgetJ:         budget,
			Region:          core.Classify(cfg, budget),
			REAPAccuracyPct: 100 * alloc.ExpectedAccuracy(cfg),
			REAPActiveFrac:  alloc.ActiveTime() / cfg.Period,
			Off:             alloc.Off / cfg.Period,
		}
		for i := range cfg.DPs {
			p.Mix = append(p.Mix, alloc.Active[i]/cfg.Period)
			s := core.StaticAllocation(cfg, i, budget)
			p.DPAccuracyPct = append(p.DPAccuracyPct, 100*s.ExpectedAccuracy(cfg))
			p.DPActiveFrac = append(p.DPActiveFrac, s.ActiveTime()/cfg.Period)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// At returns the sweep point nearest the given budget.
func (r *Figure5Result) At(budget float64) SweepPoint {
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if abs(p.BudgetJ-budget) < abs(best.BudgetJ-budget) {
			best = p
		}
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Render prints the two series of Figure 5: expected accuracy and active
// time (the latter normalized to REAP, as the paper plots it).
func (r *Figure5Result) Render() string {
	ta := &table{header: []string{"budget(J)", "region", "REAP"}}
	for i := range r.Cfg.DPs {
		ta.header = append(ta.header, fmt.Sprintf("DP%d", i+1))
	}
	tb := &table{header: append([]string{}, ta.header...)}
	for _, p := range r.Points {
		rowA := []string{f2(p.BudgetJ), p.Region.String(), f1(p.REAPAccuracyPct)}
		rowB := []string{f2(p.BudgetJ), p.Region.String(), "1.00"}
		for i := range r.Cfg.DPs {
			rowA = append(rowA, f1(p.DPAccuracyPct[i]))
			norm := 0.0
			if p.REAPActiveFrac > 0 {
				norm = p.DPActiveFrac[i] / p.REAPActiveFrac
			}
			rowB = append(rowB, f2(norm))
		}
		ta.add(rowA...)
		tb.add(rowB...)
	}
	return "Figure 5(a): expected accuracy (%) vs allocated energy, alpha=1\n" + ta.String() +
		"\nFigure 5(b): active time normalized to REAP\n" + tb.String()
}
