package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPlacementExperiment(t *testing.T) {
	res, err := Placement(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Harvest strictly increases with exposure.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].HarvestJ <= res.Rows[i-1].HarvestJ {
			t.Errorf("harvest not increasing at %s", res.Rows[i].Label)
		}
		if res.Rows[i].REAPMeanAcc < res.Rows[i-1].REAPMeanAcc-1e-9 {
			t.Errorf("REAP accuracy dropped with more light at %s", res.Rows[i].Label)
		}
	}
	for _, row := range res.Rows {
		if row.REAPMeanAcc < row.DP1MeanAcc-1e-9 || row.REAPMeanAcc < row.DP5MeanAcc-1e-9 {
			t.Errorf("%s: REAP below a static baseline", row.Label)
		}
	}
	// The advantage over DP1 shrinks as energy becomes plentiful, and
	// the advantage over DP5 grows (DP5's accuracy ceiling binds).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.REAPOverDP1 >= first.REAPOverDP1 {
		t.Errorf("REAP/DP1 did not shrink with exposure: %v -> %v",
			first.REAPOverDP1, last.REAPOverDP1)
	}
	if last.REAPOverDP5 <= first.REAPOverDP5 {
		t.Errorf("REAP/DP5 did not grow with exposure: %v -> %v",
			first.REAPOverDP5, last.REAPOverDP5)
	}
	if !strings.Contains(res.Render(), "Placement") {
		t.Error("render incomplete")
	}
	if _, err := Placement(core.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
