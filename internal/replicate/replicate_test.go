package replicate

import (
	"bytes"
	"errors"
	"testing"
)

func TestMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{Kind: KindHello, Epoch: 7, Seq: 123456, Bootstrap: true},
		{Kind: KindHello},
		{Kind: KindHeartbeat, Seq: 1<<63 + 17},
		{Kind: KindSnapshot, Seq: 42, Payload: []byte(`{"v":1}`)},
		{Kind: KindSnapshot, Seq: 0, Payload: []byte{}},
		{Kind: KindEvent, Seq: 9000, Payload: []byte{0x01, 0x00, 0xff}},
	}
	for i, want := range cases {
		got, err := Decode(want.Encode())
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if got.Kind != want.Kind || got.Epoch != want.Epoch || got.Seq != want.Seq ||
			got.Bootstrap != want.Bootstrap || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, want, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{frameFormat},
		{99, KindHello, 0, 0, 0},                 // unknown format
		{frameFormat, 77, 0, 0, 0},               // unknown kind
		{frameFormat, KindHello, 0x80},           // truncated epoch varint
		{frameFormat, KindHello, 0, 0x80},        // truncated seq varint
		{frameFormat, KindHello, 0, 0},           // missing flags
		{frameFormat, KindHello, 0, 0, 0, 0xAB},  // trailing bytes on hello
		{frameFormat, KindHeartbeat, 0, 0, 0, 1}, // trailing bytes on heartbeat
	}
	for i, p := range bad {
		if _, err := Decode(p); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("case %d (% x): err = %v, want ErrBadFrame", i, p, err)
		}
	}
}

func TestEpochPersistence(t *testing.T) {
	dir := t.TempDir()
	e, err := LoadEpoch(dir)
	if err != nil || e != 1 {
		t.Fatalf("LoadEpoch fresh dir = (%d, %v), want (1, nil) — the first term", e, err)
	}
	if err := SaveEpoch(dir, 41); err != nil {
		t.Fatalf("SaveEpoch: %v", err)
	}
	if err := SaveEpoch(dir, 42); err != nil {
		t.Fatalf("SaveEpoch overwrite: %v", err)
	}
	e, err = LoadEpoch(dir)
	if err != nil || e != 42 {
		t.Fatalf("LoadEpoch = (%d, %v), want (42, nil)", e, err)
	}
}
