package solar

import (
	"fmt"
	"math"
)

// SolarAzimuth returns the sun's azimuth in radians (0 = north, π/2 =
// east, π = south) for the given site latitude, day of year and local
// solar hour. Used together with SolarElevation to evaluate tilted
// panels.
func SolarAzimuth(latitudeDeg float64, doy int, hour float64) float64 {
	lat := latitudeDeg * math.Pi / 180
	decl := 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*float64(284+doy)/365)
	h := (hour - 12) * 15 * math.Pi / 180
	el := SolarElevation(latitudeDeg, doy, hour)
	cosAz := (math.Sin(decl) - math.Sin(el)*math.Sin(lat)) /
		(math.Cos(el) * math.Cos(lat))
	az := math.Acos(clamp(cosAz, -1, 1))
	// Morning sun is east of south.
	if h > 0 {
		az = 2*math.Pi - az
	}
	return az
}

// Panel orients a cell: Tilt is the angle from horizontal in degrees,
// Azimuth the direction the panel faces (degrees, 180 = due south).
type Panel struct {
	TiltDeg    float64
	AzimuthDeg float64
	// Albedo is the ground reflectance feeding the ground-reflected
	// component (0.2 is the standard grass/concrete value).
	Albedo float64
}

// Validate checks the panel geometry.
func (p Panel) Validate() error {
	if p.TiltDeg < 0 || p.TiltDeg > 90 || math.IsNaN(p.TiltDeg) {
		return fmt.Errorf("solar: tilt %v outside 0..90", p.TiltDeg)
	}
	if p.AzimuthDeg < 0 || p.AzimuthDeg >= 360 || math.IsNaN(p.AzimuthDeg) {
		return fmt.Errorf("solar: azimuth %v outside [0,360)", p.AzimuthDeg)
	}
	if p.Albedo < 0 || p.Albedo > 1 {
		return fmt.Errorf("solar: albedo %v outside [0,1]", p.Albedo)
	}
	return nil
}

// POA converts global horizontal irradiance to plane-of-array irradiance
// with the isotropic-sky model: beam projected by the incidence angle,
// diffuse scaled by the sky-view factor, plus a ground-reflected term.
// diffuseFraction is the share of ghi that is diffuse (clear sky ~0.15,
// overcast ~1.0).
func (p Panel) POA(ghi, elevation, sunAzimuth, diffuseFraction float64) float64 {
	if ghi <= 0 || elevation <= 0 {
		return 0
	}
	diffuseFraction = clamp(diffuseFraction, 0, 1)
	tilt := p.TiltDeg * math.Pi / 180
	panelAz := p.AzimuthDeg * math.Pi / 180

	dhi := ghi * diffuseFraction
	bhi := ghi - dhi // beam on horizontal
	// Incidence angle on the panel.
	cosInc := math.Sin(elevation)*math.Cos(tilt) +
		math.Cos(elevation)*math.Sin(tilt)*math.Cos(sunAzimuth-panelAz)
	if cosInc < 0 {
		cosInc = 0 // sun behind the panel
	}
	beam := 0.0
	if s := math.Sin(elevation); s > 0.02 { // avoid horizon blow-up
		beam = bhi / s * cosInc
	}
	diffuse := dhi * (1 + math.Cos(tilt)) / 2
	reflected := ghi * p.Albedo * (1 - math.Cos(tilt)) / 2
	return beam + diffuse + reflected
}

// diffuseFractionFor maps the weather attenuation factor to a diffuse
// share: clear hours are beam-dominated, overcast hours fully diffuse.
func diffuseFractionFor(attenuation float64) float64 {
	return clamp(1.15-attenuation, 0.15, 1)
}

// TiltedMonthlyTrace is MonthlyTrace for a tilted panel: the same weather
// realization as the horizontal trace for (month, year), with each hour's
// irradiance transposed to the panel plane before the cell model.
func TiltedMonthlyTrace(month, year int, cell Cell, panel Panel) (*Trace, error) {
	if err := validateMonth(month); err != nil {
		return nil, err
	}
	if err := cell.Validate(); err != nil {
		return nil, err
	}
	if err := panel.Validate(); err != nil {
		return nil, err
	}
	w := NewWeather(int64(year)*100 + int64(month))
	tr := &Trace{Month: month, Year: year}
	for day := 1; day <= DaysInMonth(month); day++ {
		doy := dayOfYear(month, day)
		for hour := 0; hour < 24; hour++ {
			_, att := w.Step()
			t := float64(hour) + 0.5
			el := SolarElevation(GoldenLatitudeDeg, doy, t)
			ghi := ClearSkyGHI(el) * att
			poa := panel.POA(ghi, el, SolarAzimuth(GoldenLatitudeDeg, doy, t), diffuseFractionFor(att))
			tr.Hours = append(tr.Hours, cell.HourEnergy(poa))
			tr.Skies = append(tr.Skies, w.State())
		}
	}
	return tr, nil
}
