package core

import (
	"fmt"
	"math"

	"repro/internal/fpx"
)

// Defaults matching the paper's experimental setup.
const (
	// DefaultPeriod is the activity period TP: one hour, in seconds.
	DefaultPeriod = 3600.0
	// DefaultPOff is the off-state power draw of the harvesting and
	// monitoring circuitry: 0.18 J over one hour = 50 µW.
	DefaultPOff = 0.18 / 3600
	// DefaultAlpha selects the expected-accuracy objective.
	DefaultAlpha = 1.0
)

// Config fixes everything about the optimization except the energy budget,
// which arrives at runtime from the harvesting subsystem.
type Config struct {
	// Period is the activity period TP in seconds.
	Period float64
	// POff is the power drawn while the device is "off" (harvesting and
	// battery charging circuitry remain powered), in watts.
	POff float64
	// Alpha is the accuracy-versus-active-time trade-off exponent of the
	// objective J(t) = (1/TP) Σ aᵢ^α tᵢ.
	Alpha float64
	// DPs are the design points available at runtime; the paper uses the
	// five Pareto-optimal points of Table 2.
	DPs []DesignPoint
}

// DefaultConfig returns the paper's configuration: one-hour period, 50 µW
// off-state power, α = 1, and the Table 2 design points.
func DefaultConfig() Config {
	return Config{
		Period: DefaultPeriod,
		POff:   DefaultPOff,
		Alpha:  DefaultAlpha,
		DPs:    PaperDesignPoints(),
	}
}

// Validate checks the configuration for physical consistency. Every
// failure wraps ErrInvalidConfig so callers can classify with errors.Is.
func (c Config) Validate() error {
	if c.Period <= 0 || math.IsNaN(c.Period) {
		return fmt.Errorf("%w: period %v must be positive", ErrInvalidConfig, c.Period)
	}
	if c.POff < 0 || math.IsNaN(c.POff) {
		return fmt.Errorf("%w: off power %v must be non-negative", ErrInvalidConfig, c.POff)
	}
	if c.Alpha < 0 || math.IsNaN(c.Alpha) {
		return fmt.Errorf("%w: alpha %v must be non-negative", ErrInvalidConfig, c.Alpha)
	}
	if len(c.DPs) == 0 {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, ErrNoDesignPoints)
	}
	for _, d := range c.DPs {
		if err := d.Validate(); err != nil {
			return err // already wraps ErrInvalidConfig
		}
		if d.Power <= c.POff {
			return fmt.Errorf("%w: design point %q power %v must exceed off power %v",
				ErrInvalidConfig, d.Name, d.Power, c.POff)
		}
	}
	return nil
}

// MinBudget is the energy needed to keep the harvesting circuitry powered
// for the whole period with every design point idle (the paper's 0.18 J
// floor for the default configuration).
func (c Config) MinBudget() float64 { return c.POff * c.Period }

// MaxUsefulBudget is the energy that lets the hungriest design point run
// for the entire period (9.9 J for DP1 in the paper); budgets beyond it
// change nothing.
func (c Config) MaxUsefulBudget() float64 {
	max := 0.0
	for _, d := range c.DPs {
		if e := d.EnergyPerPeriod(c.Period); e > max {
			max = e
		}
	}
	return max
}

// weight returns aᵢ^α, the objective coefficient of design point i.
// The α = 0 case degenerates to active time, where every design point
// counts equally (including, per the convention of the paper, one with
// zero accuracy).
func (c Config) weight(i int) float64 {
	if fpx.Zero(c.Alpha) {
		return 1
	}
	return math.Pow(c.DPs[i].Accuracy, c.Alpha)
}

// weightVector fills dst (len(c.DPs) long) with every design point's
// objective coefficient aᵢ^α. The solvers call it once per solve — and
// NewPlan once per compilation — so the math.Pow cost stays out of
// their vertex loops.
func (c Config) weightVector(dst []float64) []float64 {
	for i := range dst {
		dst[i] = c.weight(i)
	}
	return dst
}

// Allocation is the output of the optimizer: how long to run each design
// point, how long to stay off, and how long the device is dead because the
// budget cannot even sustain the off state.
type Allocation struct {
	// Active holds the time in seconds allocated to each design point,
	// index-aligned with Config.DPs.
	Active []float64
	// Off is the time spent in the off state (harvester still powered).
	Off float64
	// Dead is the time the device is completely unpowered because the
	// budget is below POff·TP. The LP of the paper does not model this
	// explicitly; it appears when sweeping budgets below the 0.18 J floor.
	Dead float64
}

// ActiveTime returns the total time any design point is running.
func (a Allocation) ActiveTime() float64 {
	var s float64
	for _, t := range a.Active {
		s += t
	}
	return s
}

// Total returns active + off + dead time; it must equal the period.
func (a Allocation) Total() float64 { return a.ActiveTime() + a.Off + a.Dead }

// ExpectedAccuracy returns E{a} = (1/TP) Σ aᵢ tᵢ for the allocation under
// configuration c (the α = 1 objective regardless of c.Alpha).
func (a Allocation) ExpectedAccuracy(c Config) float64 {
	var s float64
	for i, t := range a.Active {
		s += c.DPs[i].Accuracy * t
	}
	return s / c.Period
}

// Objective evaluates J(t) = (1/TP) Σ aᵢ^α tᵢ for the allocation.
func (a Allocation) Objective(c Config) float64 {
	var s float64
	for i, t := range a.Active {
		s += c.weight(i) * t
	}
	return s / c.Period
}

// Energy returns the total energy in joules the allocation consumes.
func (a Allocation) Energy(c Config) float64 {
	s := c.POff * a.Off
	for i, t := range a.Active {
		s += c.DPs[i].Power * t
	}
	return s
}

// Utilization returns the fraction of the period allocated to design point
// i, a convenience for reporting (the paper quotes "DP4 42% of the time").
func (a Allocation) Utilization(c Config, i int) float64 {
	return a.Active[i] / c.Period
}

// String renders the allocation as percentages of the period.
func (a Allocation) String() string {
	total := a.Total()
	if fpx.Zero(total) {
		return "allocation{}"
	}
	s := "allocation{"
	for i, t := range a.Active {
		if t > 1e-9 {
			s += fmt.Sprintf("dp%d:%.1f%% ", i+1, 100*t/total)
		}
	}
	if a.Off > 1e-9 {
		s += fmt.Sprintf("off:%.1f%% ", 100*a.Off/total)
	}
	if a.Dead > 1e-9 {
		s += fmt.Sprintf("dead:%.1f%% ", 100*a.Dead/total)
	}
	return s[:len(s)-1] + "}"
}
