package replicate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/journal"
)

// HubConfig configures the primary side of replication.
type HubConfig struct {
	// Store is the journal every append flows through.
	Store *journal.Store
	// Epoch returns the node's current term, stamped on hellos so
	// followers adopt it.
	Epoch func() uint64
	// Heartbeat is the idle-stream keepalive interval (default 500ms);
	// it bounds how stale a follower's lag measurement can get.
	Heartbeat time.Duration
	// ShipTimeout bounds how long a slow follower may stall the append
	// path (default 1s): a live write that cannot complete within it
	// detaches the follower, which must reconnect and catch up.
	ShipTimeout time.Duration
	// WrapStream, when non-nil, wraps each stream's writer — the chaos
	// seam for injecting mid-frame tears.
	WrapStream func(io.Writer) io.Writer
}

// FollowerStatus is one follower's replication position for /v1/stats.
type FollowerStatus struct {
	ID string `json:"id"`
	// Live reports an attached stream (false: last known ack of a
	// detached follower).
	Live bool `json:"live"`
	// ShippedSeq is the last event written to the follower's stream.
	ShippedSeq uint64 `json:"shipped_seq"`
	// AckSeq is the last sequence number the follower acknowledged
	// applying, and AckAgeS how long ago it said so.
	AckSeq  uint64  `json:"ack_seq"`
	AckAgeS float64 `json:"ack_age_s"`
}

// Hub is the primary-side replication fan-out. All appends are routed
// through it: under one mutex the event is journaled and then written
// (flushed) to every live follower stream, so the kernel owns delivery
// before the client sees an acknowledgment — ship-before-ack.
type Hub struct {
	cfg HubConfig

	mu     sync.Mutex
	live   map[string]*liveFollower
	acks   map[string]ackState
	closed bool
}

type liveFollower struct {
	id      string
	write   func([]byte) error // frame write + flush, deadline-bounded
	shipped uint64
	gone    chan struct{} // closed exactly once, by detachLocked
}

type ackState struct {
	seq uint64
	at  time.Time
}

// NewHub builds the primary-side fan-out over store.
func NewHub(cfg HubConfig) *Hub {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.ShipTimeout <= 0 {
		cfg.ShipTimeout = time.Second
	}
	return &Hub{
		cfg:  cfg,
		live: make(map[string]*liveFollower),
		acks: make(map[string]ackState),
	}
}

// Append journals payload and ships it to every live follower before
// returning — the replication-aware replacement for Store.Append on
// the primary's mutation path. A follower whose write fails or times
// out is detached (it reconnects and catches up from the journal);
// the append itself never fails on account of a follower.
func (h *Hub) Append(payload []byte) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	seq, err := h.cfg.Store.Append(payload)
	if err != nil {
		return seq, err
	}
	if len(h.live) > 0 {
		frame := journal.EncodeFrame(Message{Kind: KindEvent, Seq: seq, Payload: payload}.Encode())
		for id, f := range h.live {
			if err := f.write(frame); err != nil {
				h.detachLocked(id, f)
				continue
			}
			f.shipped = seq
		}
	}
	return seq, nil
}

// RecordAck notes that follower id has applied through seq.
func (h *Hub) RecordAck(id string, seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev, ok := h.acks[id]; !ok || seq >= prev.seq {
		h.acks[id] = ackState{seq: seq, at: time.Now()}
	}
}

// Followers reports every known follower's position, live streams
// first-class and detached ones by their last ack.
func (h *Hub) Followers() []FollowerStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	out := make([]FollowerStatus, 0, len(h.live)+len(h.acks))
	seen := make(map[string]bool, len(h.live))
	for id, f := range h.live {
		st := FollowerStatus{ID: id, Live: true, ShippedSeq: f.shipped}
		if a, ok := h.acks[id]; ok {
			st.AckSeq = a.seq
			st.AckAgeS = now.Sub(a.at).Seconds()
		}
		out = append(out, st)
		seen[id] = true
	}
	for id, a := range h.acks {
		if seen[id] {
			continue
		}
		out = append(out, FollowerStatus{ID: id, AckSeq: a.seq, AckAgeS: now.Sub(a.at).Seconds()})
	}
	return out
}

// Close detaches every live follower; their stream handlers return.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for id, f := range h.live {
		h.detachLocked(id, f)
	}
}

// detachLocked removes f if it is still the registered stream for id,
// closing its gone channel exactly once. Callers hold h.mu.
func (h *Hub) detachLocked(id string, f *liveFollower) {
	if h.live[id] == f {
		delete(h.live, id)
		close(f.gone)
	}
}

// ServeStream runs one follower's replication stream to completion:
// hello, optional snapshot bootstrap, journal catch-up via a cursor,
// then live attachment (events arrive via Append, heartbeats from
// here) until the context ends, the hub closes, or a write fails.
//
// bootstrap forces a snapshot-first start (epoch mismatch or an
// explicit resync); even without it, a cursor that falls off retention
// mid-catch-up recovers by sending a snapshot frame in-stream — the
// follower treats any snapshot frame as "discard local state, re-root
// here".
func (h *Hub) ServeStream(ctx context.Context, w http.ResponseWriter, id string, from uint64, bootstrap bool) error {
	// The stream hijacks the connection: each frame then costs one raw
	// TCP write instead of a pass through the chunked encoder and its
	// double-buffered flush — and that write sits on the primary's
	// acknowledgment path for every mutation. The response head is
	// written by hand; the body is frames until connection close.
	conn, bw, err := http.NewResponseController(w).Hijack()
	if err != nil {
		return fmt.Errorf("%w: response writer cannot stream: %v", ErrStream, err)
	}
	defer conn.Close()
	if _, err := bw.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nConnection: close\r\n\r\n"); err != nil {
		return fmt.Errorf("%w: response head: %v", ErrStream, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("%w: response head: %v", ErrStream, err)
	}
	var sink io.Writer = conn
	if h.cfg.WrapStream != nil {
		sink = h.cfg.WrapStream(conn)
	}

	// The write deadline bounds a stalled follower, so it only needs to
	// be roughly right: refreshing it once per quarter-timeout instead
	// of per frame saves a setsockopt on the hot append path, at the
	// cost of the effective bound being ShipTimeout±25%. Writes on one
	// stream never race: catch-up runs before the follower attaches,
	// and attached writes all happen under h.mu.
	var deadlineAt time.Time
	write := func(frame []byte) error {
		if now := time.Now(); now.Sub(deadlineAt) > h.cfg.ShipTimeout/4 {
			_ = conn.SetWriteDeadline(now.Add(h.cfg.ShipTimeout))
			deadlineAt = now
		}
		_, err := sink.Write(frame)
		return err
	}
	send := func(m Message) error { return write(journal.EncodeFrame(m.Encode())) }

	st := h.cfg.Store
	if !bootstrap && from < st.OldestRetained() {
		bootstrap = true
	}
	if err := send(Message{Kind: KindHello, Epoch: h.cfg.Epoch(), Seq: st.Seq(), Bootstrap: bootstrap}); err != nil {
		return fmt.Errorf("%w: hello: %v", ErrStream, err)
	}

	var cur *journal.Cursor
	defer func() {
		if cur != nil {
			_ = cur.Close()
		}
	}()
	// sendSnapshot re-roots the follower at the newest snapshot and
	// points the cursor at the events that follow it.
	sendSnapshot := func() error {
		if cur != nil {
			_ = cur.Close()
		}
		snap, snapSeq := st.SnapshotNow()
		if err := send(Message{Kind: KindSnapshot, Seq: snapSeq, Payload: snap}); err != nil {
			return fmt.Errorf("%w: snapshot: %v", ErrStream, err)
		}
		var err error
		cur, err = st.OpenCursor(snapSeq)
		return err
	}
	if bootstrap {
		if err := sendSnapshot(); err != nil {
			return err
		}
	} else {
		var err error
		cur, err = st.OpenCursor(from)
		if errors.Is(err, journal.ErrCompacted) {
			err = sendSnapshot()
		}
		if err != nil {
			return err
		}
	}

	// Catch-up: drain the journal to the follower until we are exactly
	// level with the store under the hub lock, then attach live.
	var f *liveFollower
	for f == nil {
		if ctx.Err() != nil {
			return nil
		}
		payload, seq, err := cur.Next()
		switch {
		case err == nil:
			if err := send(Message{Kind: KindEvent, Seq: seq, Payload: payload}); err != nil {
				return fmt.Errorf("%w: catch-up: %v", ErrStream, err)
			}
		case errors.Is(err, journal.ErrCompacted):
			// Retention outran this cursor; start over from the newest
			// snapshot, still in-stream.
			if err := sendSnapshot(); err != nil {
				return err
			}
		case errors.Is(err, journal.ErrNotReady):
			h.mu.Lock()
			if h.closed {
				h.mu.Unlock()
				return nil
			}
			// Append holds h.mu while journaling, so under the lock the
			// store seq is stable: equal means nothing is in flight and
			// every future event will be shipped to us by Append.
			if cur.Seq() == st.Seq() {
				f = &liveFollower{id: id, write: write, shipped: cur.Seq(), gone: make(chan struct{})}
				if old := h.live[id]; old != nil {
					h.detachLocked(id, old) // a reconnect supersedes its zombie
				}
				h.live[id] = f
			}
			h.mu.Unlock()
			if f == nil {
				// An append slipped in between Next and the lock (or a
				// tail record is mid-write); let it land.
				time.Sleep(time.Millisecond)
			}
		default:
			return err
		}
	}

	defer func() {
		h.mu.Lock()
		h.detachLocked(id, f)
		h.mu.Unlock()
	}()
	hb := time.NewTicker(h.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-f.gone:
			return nil
		case <-hb.C:
			h.mu.Lock()
			if h.live[id] != f {
				h.mu.Unlock()
				return nil
			}
			if err := send(Message{Kind: KindHeartbeat, Seq: st.Seq()}); err != nil {
				h.detachLocked(id, f)
				h.mu.Unlock()
				return nil
			}
			h.mu.Unlock()
		}
	}
}
