package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestGoertzelMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := make([]float64, 160)
	for i := range x {
		x[i] = rng.NormFloat64() + math.Sin(2*math.Pi*2*float64(i)/100)
	}
	fftMags, err := RealFFTMagnitudes(x, 16)
	if err != nil {
		t.Fatal(err)
	}
	bins := make([]int, 9)
	for i := range bins {
		bins[i] = i
	}
	gMags, err := GoertzelMagnitudes(x, 16, bins)
	if err != nil {
		t.Fatal(err)
	}
	for k := range bins {
		if math.Abs(gMags[k]-fftMags[k]) > 1e-9*(1+fftMags[k]) {
			t.Fatalf("bin %d: goertzel %v vs fft %v", k, gMags[k], fftMags[k])
		}
	}
}

func TestGoertzelPureTone(t *testing.T) {
	const n = 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 5 * float64(i) / n)
	}
	mag5, err := Goertzel(x, 5, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mag5-n/2) > 1e-9*n {
		t.Fatalf("tone bin magnitude %v, want %v", mag5, float64(n)/2)
	}
	mag7, err := Goertzel(x, 7, n)
	if err != nil {
		t.Fatal(err)
	}
	if mag7 > 1e-9*n {
		t.Fatalf("off-tone bin magnitude %v, want ~0", mag7)
	}
}

func TestGoertzelValidation(t *testing.T) {
	x := make([]float64, 16)
	if _, err := Goertzel(x, -1, 16); err == nil {
		t.Error("negative bin accepted")
	}
	if _, err := Goertzel(x, 9, 16); err == nil {
		t.Error("bin above Nyquist accepted")
	}
	if _, err := Goertzel(x, 3, 8); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Goertzel(nil, 0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := GoertzelMagnitudes(x, 0, []int{0}); err == nil {
		t.Error("zero size accepted by magnitudes")
	}
	if _, err := GoertzelMagnitudes(x, 16, []int{99}); err == nil {
		t.Error("out-of-range bin accepted by magnitudes")
	}
}

func TestGoertzelDCBin(t *testing.T) {
	x := []float64{2, 2, 2, 2, 2, 2, 2, 2}
	mag, err := Goertzel(x, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mag-16) > 1e-9 {
		t.Fatalf("DC magnitude %v, want 16 (sum of samples)", mag)
	}
}
