package errtaxonomy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errtaxonomy"
)

func TestErrtaxonomyInScope(t *testing.T) {
	analysistest.Run(t, errtaxonomy.Analyzer, "testdata/core", "repro/internal/core")
}

// TestErrtaxonomyOutOfScope loads the same violations under a support
// package path: no diagnostics, the taxonomy governs only the solver
// packages' boundaries.
func TestErrtaxonomyOutOfScope(t *testing.T) {
	analysistest.Run(t, errtaxonomy.Analyzer, "testdata/outofscope", "repro/internal/dsp")
}
