package nn

import (
	"fmt"
	"math"

	"repro/internal/fpx"
)

// QuantizedNetwork is an int8 post-training quantization of a Network:
// weights and biases are stored as 8-bit integers with one scale per
// layer, and inference accumulates in int32 — the arithmetic a CC2650-
// class MCU does natively, roughly 4x cheaper per MAC than software
// floating point. Activations stay in float64 between layers (per-layer
// dynamic quantization), which keeps the scheme simple while capturing
// the accuracy cost of 8-bit weights.
type QuantizedNetwork struct {
	Layers []*QuantizedLayer
}

// QuantizedLayer mirrors Layer with int8 parameters.
type QuantizedLayer struct {
	In, Out int
	Act     Activation
	// Scale converts stored int8 weights back to the float domain:
	// w ≈ float64(W[i]) * Scale.
	Scale float64
	// BScale is the bias scale (biases are quantized separately; their
	// dynamic range differs from the weights').
	BScale float64
	W      []int8
	B      []int8
}

// Quantize converts a trained network to int8 with symmetric per-layer
// scaling.
func Quantize(n *Network) (*QuantizedNetwork, error) {
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("nn: quantizing an empty network")
	}
	q := &QuantizedNetwork{}
	for _, l := range n.Layers {
		ql := &QuantizedLayer{
			In: l.In, Out: l.Out, Act: l.Act,
			W: make([]int8, len(l.W)),
			B: make([]int8, len(l.B)),
		}
		ql.Scale = maxAbs(l.W) / 127
		ql.BScale = maxAbs(l.B) / 127
		if fpx.Zero(ql.Scale) {
			ql.Scale = 1
		}
		if fpx.Zero(ql.BScale) {
			ql.BScale = 1
		}
		for i, w := range l.W {
			ql.W[i] = clampInt8(math.Round(w / ql.Scale))
		}
		for i, b := range l.B {
			ql.B[i] = clampInt8(math.Round(b / ql.BScale))
		}
		q.Layers = append(q.Layers, ql)
	}
	return q, nil
}

func maxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func clampInt8(v float64) int8 {
	if v > 127 {
		return 127
	}
	if v < -127 {
		return -127
	}
	return int8(v)
}

// InputSize returns the expected feature width.
func (q *QuantizedNetwork) InputSize() int { return q.Layers[0].In }

// OutputSize returns the class count.
func (q *QuantizedNetwork) OutputSize() int { return q.Layers[len(q.Layers)-1].Out }

// MACs matches Network.MACs for the same topology.
func (q *QuantizedNetwork) MACs() int {
	total := 0
	for _, l := range q.Layers {
		total += l.In * l.Out
	}
	return total
}

// Forward runs quantized inference: per layer, the input is dynamically
// quantized to int8 against its own max, the dot products accumulate in
// int32, and the result is rescaled to float for the activation.
func (q *QuantizedNetwork) Forward(x []float64) ([]float64, error) {
	if len(x) != q.InputSize() {
		return nil, fmt.Errorf("%w: input width %d, network expects %d",
			ErrShape, len(x), q.InputSize())
	}
	cur := x
	for _, l := range q.Layers {
		// Dynamic input quantization.
		inScale := maxAbs(cur) / 127
		if fpx.Zero(inScale) {
			inScale = 1
		}
		qin := make([]int8, len(cur))
		for i, v := range cur {
			qin[i] = clampInt8(math.Round(v / inScale))
		}
		out := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			var acc int32
			row := l.W[o*l.In : (o+1)*l.In]
			for i := range qin {
				acc += int32(row[i]) * int32(qin[i])
			}
			out[o] = float64(acc)*l.Scale*inScale + float64(l.B[o])*l.BScale
		}
		cur = applyActivation(l.Act, out)
	}
	return cur, nil
}

// Predict returns the argmax class of Forward.
func (q *QuantizedNetwork) Predict(x []float64) (int, error) {
	out, err := q.Forward(x)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, out[0]
	for i, v := range out[1:] {
		if v > bestV {
			bestV = v
			best = i + 1
		}
	}
	return best, nil
}

// QuantizedAccuracy evaluates the quantized network on labeled samples.
func QuantizedAccuracy(q *QuantizedNetwork, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if pred, err := q.Predict(s.X); err == nil && pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
