package device

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestBuildScheduleTwoPointMix(t *testing.T) {
	cfg := core.DefaultConfig()
	alloc, err := core.Solve(cfg, 5) // DP4 + DP5, no off
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(cfg, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 2 || s.Switches != 1 {
		t.Fatalf("segments %v, switches %d", s.Segments, s.Switches)
	}
	// Higher-power design point first: DP4 (index 3) before DP5 (4).
	if s.Segments[0].DP != 3 || s.Segments[1].DP != 4 {
		t.Fatalf("order %d, %d, want 3 then 4", s.Segments[0].DP, s.Segments[1].DP)
	}
	// Segments are contiguous up to switch slots.
	if s.Segments[0].Start != 0 {
		t.Fatal("first segment must start at 0")
	}
	gap := s.Segments[1].Start - (s.Segments[0].Start + s.Segments[0].Duration)
	if math.Abs(gap-SwitchTime) > 1e-9 {
		t.Fatalf("inter-segment gap %v, want the switch time %v", gap, SwitchTime)
	}
	// Total time accounted: durations + switch dead time = period.
	var total float64
	for _, seg := range s.Segments {
		total += seg.Duration
	}
	total += s.OverheadTime
	if math.Abs(total-cfg.Period) > 1e-6 {
		t.Fatalf("schedule covers %v s of %v", total, cfg.Period)
	}
	// Energy with overhead slightly exceeds the LP's but stays close.
	lpE := alloc.Energy(cfg)
	schedE := s.Energy(cfg)
	if schedE <= lpE-1e-9 {
		t.Fatalf("schedule energy %v below LP %v", schedE, lpE)
	}
	if (schedE-lpE)/lpE > 0.001 {
		t.Fatalf("block schedule overhead %.4f%% too large", 100*(schedE-lpE)/lpE)
	}
}

func TestBuildScheduleWithOff(t *testing.T) {
	cfg := core.DefaultConfig()
	alloc, err := core.Solve(cfg, 2) // DP5 + off
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(cfg, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 2 || s.Segments[1].DP != -1 {
		t.Fatalf("segments %v, want DP then off", s.Segments)
	}
	// The switch dead time is charged to the longest block — here the off
	// block — so observing time is preserved (and never grows).
	if s.ActiveTime() > alloc.ActiveTime()+1e-9 {
		t.Fatal("schedule observes longer than the allocation allows")
	}
	offSeg := s.Segments[1]
	if math.Abs(offSeg.Duration-(alloc.Off-SwitchTime)) > 1e-6 {
		t.Fatalf("off segment %v s, want %v (off minus the switch slot)",
			offSeg.Duration, alloc.Off-SwitchTime)
	}
}

func TestBuildScheduleEdgeCases(t *testing.T) {
	cfg := core.DefaultConfig()
	// Fully off.
	empty := core.Allocation{Active: make([]float64, 5), Off: cfg.Period}
	s, err := BuildSchedule(cfg, empty)
	if err != nil {
		t.Fatal(err)
	}
	if s.Switches != 0 || len(s.Segments) != 1 || s.Segments[0].DP != -1 {
		t.Fatalf("off-only schedule %v", s)
	}
	// Saturated single DP.
	full := core.Allocation{Active: []float64{cfg.Period, 0, 0, 0, 0}}
	s, err = BuildSchedule(cfg, full)
	if err != nil {
		t.Fatal(err)
	}
	if s.Switches != 0 || s.OverheadEnergy != 0 {
		t.Fatalf("single-state schedule has overhead: %v", s)
	}
	// Width mismatch.
	if _, err := BuildSchedule(cfg, core.Allocation{Active: []float64{1}}); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := BuildSchedule(core.Config{}, empty); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestOverheadFractionBlocksVsInterleaving(t *testing.T) {
	// The ablation: block scheduling's overhead is negligible (<0.1%),
	// per-window interleaving at 1.6 s is ruinous (>10%).
	cfg := core.DefaultConfig()
	alloc, err := core.Solve(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	block, interleaved, err := OverheadFraction(cfg, alloc, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if block > 0.001 {
		t.Errorf("block overhead %.4f, want < 0.1%%", block)
	}
	if interleaved < 0.10 {
		t.Errorf("interleaved overhead %.4f, want > 10%%", interleaved)
	}
	if interleaved <= block {
		t.Error("interleaving not worse than blocks")
	}
	// Single-state allocations have no interleaving penalty.
	full := core.Allocation{Active: []float64{cfg.Period, 0, 0, 0, 0}}
	b2, i2, err := OverheadFraction(cfg, full, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != 0 || i2 != 0 {
		t.Errorf("single-state overheads %v/%v, want 0/0", b2, i2)
	}
	if _, _, err := OverheadFraction(cfg, alloc, 0); err == nil {
		t.Fatal("zero interleave period accepted")
	}
}
