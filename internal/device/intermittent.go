package device

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Capacitor models the storage element of the battery-less device class
// from the paper's related work (Shenck & Paradiso's piezo scavengers and
// kin): energy lives in a small capacitor; the device boots when the
// stored energy crosses the turn-on threshold and dies when it falls to
// the turn-off threshold (hysteresis prevents boot-loops). REAP applies
// "to all devices that operate under a fixed energy budget" — this model
// lets the simulator quantify how much the missing battery costs.
type Capacitor struct {
	// CapacityJ is the usable energy at full charge.
	CapacityJ float64
	// TurnOnJ and TurnOffJ are the hysteresis thresholds.
	TurnOnJ, TurnOffJ float64
	// LeakWattsPerJoule models leakage as proportional to the state of
	// charge (dielectric absorption + regulator quiescent).
	LeakWattsPerJoule float64

	charge float64
	on     bool
}

// DefaultCapacitor returns a supercap sized for roughly one hour of DP5
// (5 J usable) with 20%/5% hysteresis.
func DefaultCapacitor() *Capacitor {
	return &Capacitor{
		CapacityJ:         5,
		TurnOnJ:           1.0,
		TurnOffJ:          0.25,
		LeakWattsPerJoule: 2e-6,
	}
}

// Validate checks the capacitor parameters.
func (c *Capacitor) Validate() error {
	if c.CapacityJ <= 0 || math.IsNaN(c.CapacityJ) {
		return fmt.Errorf("device: capacitor capacity %v", c.CapacityJ)
	}
	if c.TurnOffJ < 0 || c.TurnOnJ <= c.TurnOffJ || c.TurnOnJ > c.CapacityJ {
		return fmt.Errorf("device: hysteresis %v/%v invalid for capacity %v",
			c.TurnOnJ, c.TurnOffJ, c.CapacityJ)
	}
	if c.LeakWattsPerJoule < 0 {
		return fmt.Errorf("device: negative leakage")
	}
	return nil
}

// Charge returns the stored energy.
func (c *Capacitor) Charge() float64 { return c.charge }

// On reports whether the device is powered.
func (c *Capacitor) On() bool { return c.on }

// step advances one hour: harvest flows in (minus what the hour's plan
// consumed), leakage flows out, hysteresis updates the power state.
func (c *Capacitor) step(harvested, consumed float64) {
	c.charge += harvested - consumed
	// Hour-scale leakage, proportional to the (mean) state of charge.
	c.charge -= c.LeakWattsPerJoule * c.charge * 3600
	c.charge = math.Max(0, math.Min(c.CapacityJ, c.charge))
	if c.on && c.charge <= c.TurnOffJ {
		c.on = false
	}
	if !c.on && c.charge >= c.TurnOnJ {
		c.on = true
	}
}

// IntermittentDevice runs REAP on the capacitor-only platform: each hour
// the budget is whatever the capacitor can give down to the turn-off
// threshold plus the hour's expected harvest; when the device is off it
// only charges.
type IntermittentDevice struct {
	Cfg core.Config
	Cap *Capacitor
}

// Run simulates the hourly harvest sequence and returns per-hour records.
func (d *IntermittentDevice) Run(harvest []float64) (*RunResult, error) {
	if err := d.Cfg.Validate(); err != nil {
		return nil, err
	}
	if d.Cap == nil {
		return nil, fmt.Errorf("device: intermittent device needs a capacitor")
	}
	if err := d.Cap.Validate(); err != nil {
		return nil, err
	}
	res := &RunResult{Policy: "REAP-intermittent"}
	for _, h := range harvest {
		var alloc core.Allocation
		var consumed float64
		if d.Cap.On() {
			budget := math.Max(0, d.Cap.Charge()-d.Cap.TurnOffJ) + h
			a, err := core.Solve(d.Cfg, budget)
			if err != nil {
				return nil, err
			}
			alloc = a
			consumed = a.Energy(d.Cfg)
		} else {
			// Dead: not even the harvesting monitor runs off the cap
			// model here; the hour only charges.
			alloc = core.Allocation{
				Active: make([]float64, len(d.Cfg.DPs)),
				Dead:   d.Cfg.Period,
			}
		}
		d.Cap.step(h, consumed)
		res.Hours = append(res.Hours, HourRecord{
			Budget:           h,
			Alloc:            alloc,
			Consumed:         consumed,
			ExpectedAccuracy: alloc.ExpectedAccuracy(d.Cfg),
			ActiveTime:       alloc.ActiveTime(),
			Objective:        alloc.Objective(d.Cfg),
			Region:           core.Classify(d.Cfg, h),
		})
	}
	return res, nil
}

// GapStats summarizes observation blackouts over a run: for a health
// monitor, the longest unobserved stretch matters as much as the mean
// accuracy (a fall during a blackout is a fall missed).
type GapStats struct {
	// ActiveHours counts hours with any active time.
	ActiveHours int
	// LongestGapHours is the longest run of fully-inactive hours.
	LongestGapHours int
	// MeanGapHours is the mean length of inactive runs.
	MeanGapHours float64
	// Gaps is the number of inactive runs.
	Gaps int
}

// ComputeGapStats scans a run's hourly records.
func ComputeGapStats(r *RunResult) GapStats {
	var s GapStats
	run := 0
	var total int
	flush := func() {
		if run > 0 {
			s.Gaps++
			total += run
			if run > s.LongestGapHours {
				s.LongestGapHours = run
			}
			run = 0
		}
	}
	for _, h := range r.Hours {
		if h.ActiveTime > 0 {
			s.ActiveHours++
			flush()
		} else {
			run++
		}
	}
	flush()
	if s.Gaps > 0 {
		s.MeanGapHours = float64(total) / float64(s.Gaps)
	}
	return s
}
