package reap

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestSolverRegistryBuiltins(t *testing.T) {
	names := Solvers()
	want := map[string]bool{SolverSimplex: false, SolverEnumerate: false, SolverPlan: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("built-in solver %q missing from registry %v", n, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Solvers() not sorted: %v", names)
		}
	}
}

func TestLookupSolverUnknown(t *testing.T) {
	_, err := LookupSolver("no-such-backend")
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("LookupSolver error %v, want ErrUnknownSolver", err)
	}
}

func TestRegisterSolverValidation(t *testing.T) {
	dummy := SolverFunc(func(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
		return Allocation{}, nil
	})
	if err := RegisterSolver("", dummy); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterSolver("nil-backend", nil); err == nil {
		t.Error("nil solver accepted")
	}
	if err := RegisterSolver(SolverSimplex, dummy); err == nil {
		t.Error("duplicate registration accepted")
	}
	// A fresh name registers and becomes visible.
	if err := RegisterSolver("test-dummy", dummy); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupSolver("test-dummy"); err != nil {
		t.Fatal(err)
	}
}

// TestBackendsAgreeAcrossRegions is the acceptance sweep: all three
// registered backends must produce identical allocations on the paper's
// Table 2 configuration across every Figure 5 operating region,
// including the region boundaries themselves. The plan backend is held
// to the same allocation-level agreement as the iterative pair — on a
// generic-position design set like Table 2 the LP optimum is unique, so
// the backends may differ only by floating-point noise.
func TestBackendsAgreeAcrossRegions(t *testing.T) {
	ctx := context.Background()
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	simplex, err := LookupSolver(SolverSimplex)
	if err != nil {
		t.Fatal(err)
	}

	budgets := []float64{0, 0.05, 0.1, 0.18} // dead region and the idle floor
	for b := 0.2; b <= 11.0; b += 0.05 {     // regions 1-3 and beyond saturation
		budgets = append(budgets, b)
	}
	budgets = append(budgets, RegionBoundaries(cfg)...)

	regions := map[Region]int{}
	for _, budget := range budgets {
		a1, err := simplex.Solve(ctx, cfg, budget)
		if err != nil {
			t.Fatalf("simplex at %v J: %v", budget, err)
		}
		for _, name := range []string{SolverEnumerate, SolverPlan} {
			other, err := LookupSolver(name)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := other.Solve(ctx, cfg, budget)
			if err != nil {
				t.Fatalf("%s at %v J: %v", name, budget, err)
			}
			if math.Abs(a1.Objective(cfg)-a2.Objective(cfg)) > 1e-9 {
				t.Fatalf("objectives disagree at %v J: simplex %v %s %v",
					budget, a1.Objective(cfg), name, a2.Objective(cfg))
			}
			for i := range a1.Active {
				if math.Abs(a1.Active[i]-a2.Active[i]) > 1e-6 {
					t.Fatalf("allocations disagree at %v J (%s): simplex %v vs %s %v",
						budget, Classify(cfg, budget), a1, name, a2)
				}
			}
			if math.Abs(a1.Off-a2.Off) > 1e-6 || math.Abs(a1.Dead-a2.Dead) > 1e-6 {
				t.Fatalf("off/dead disagree at %v J: simplex %v vs %s %v", budget, a1, name, a2)
			}
		}
		regions[Classify(cfg, budget)]++
	}
	for _, r := range []Region{RegionDead, Region1, Region2, Region3} {
		if regions[r] == 0 {
			t.Errorf("sweep never visited %v", r)
		}
	}
}

// TestDefaultBackendIsPlanAndCacheExact pins the default flip: New runs
// on the compiled plan backend, and wrapping the plan in an exact-mode
// solve cache (zero resolution) stays bit-identical to the uncached
// plan — the cache must remain invisible when it does not quantize,
// whatever backend it wraps.
func TestDefaultBackendIsPlanAndCacheExact(t *testing.T) {
	if DefaultSolver != SolverPlan {
		t.Fatalf("DefaultSolver = %q, want %q", DefaultSolver, SolverPlan)
	}
	uncached, err := New(WithBattery(20, 100))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := New(WithBattery(20, 100), WithSolveCache(1024, 0))
	if err != nil {
		t.Fatal(err)
	}
	harvests := []float64{0, 0.3, 2.2, 5, 9.936, 30, 0.1, 4.5, 5, 5}
	for step, h := range harvests {
		a, err := uncached.Step(h)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cached.Step(h)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Active {
			if a.Active[i] != b.Active[i] {
				t.Fatalf("step %d: exact-mode cached plan diverges: %v vs %v", step, a, b)
			}
		}
		if a.Off != b.Off || a.Dead != b.Dead {
			t.Fatalf("step %d: off/dead diverge: %v vs %v", step, a, b)
		}
		if uncached.Battery() != cached.Battery() {
			t.Fatalf("step %d: batteries diverge: %v vs %v", step, uncached.Battery(), cached.Battery())
		}
		if err := uncached.Report(a.Energy(uncached.Config())); err != nil {
			t.Fatal(err)
		}
		if err := cached.Report(b.Energy(cached.Config())); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolverContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{SolverSimplex, SolverEnumerate, SolverPlan} {
		s, err := LookupSolver(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(ctx, cfg, 5.0); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context: err %v, want context.Canceled", name, err)
		}
	}
}
