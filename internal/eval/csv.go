package eval

import (
	"encoding/csv"
	"strings"
)

// RenderCSV converts any experiment's Render output into CSV. Every
// renderer in this package emits a one-line title followed by a column-
// aligned table whose cells are separated by runs of two or more spaces
// (and never contain two consecutive spaces themselves), so the
// conversion is lossless. The title becomes a "# "-prefixed comment line.
func RenderCSV(rendered string) (string, error) {
	lines := strings.Split(strings.TrimRight(rendered, "\n"), "\n")
	var b strings.Builder
	w := csv.NewWriter(&b)
	for _, line := range lines {
		if line == "" {
			continue
		}
		cells := splitAligned(line)
		if len(cells) == 1 {
			// Title or section line: keep as a comment.
			b.WriteString("# " + line + "\n")
			continue
		}
		if err := w.Write(cells); err != nil {
			return "", err
		}
		w.Flush()
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	return b.String(), nil
}

// splitAligned splits a column-aligned row on runs of 2+ spaces.
func splitAligned(line string) []string {
	var cells []string
	var cur strings.Builder
	spaces := 0
	flush := func() {
		if cur.Len() > 0 {
			cells = append(cells, strings.TrimSpace(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range line {
		if r == ' ' {
			spaces++
			if spaces < 2 {
				cur.WriteRune(r)
			}
			continue
		}
		if spaces >= 2 {
			flush()
		}
		spaces = 0
		cur.WriteRune(r)
	}
	flush()
	return cells
}
