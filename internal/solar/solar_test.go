package solar

import (
	"math"
	"testing"
)

func TestSolarElevationBasics(t *testing.T) {
	// Solar noon on the June solstice at Golden: elevation ≈ 90 - lat +
	// 23.45 ≈ 73.7 degrees.
	el := SolarElevation(GoldenLatitudeDeg, dayOfYear(6, 21), 12)
	if deg := el * 180 / math.Pi; math.Abs(deg-73.7) > 1.5 {
		t.Errorf("solstice noon elevation %.1f deg, want ~73.7", deg)
	}
	// Midnight: far below horizon.
	if el := SolarElevation(GoldenLatitudeDeg, 100, 0); el >= 0 {
		t.Errorf("midnight elevation %v, want negative", el)
	}
	// December noon lower than June noon.
	dec := SolarElevation(GoldenLatitudeDeg, dayOfYear(12, 21), 12)
	jun := SolarElevation(GoldenLatitudeDeg, dayOfYear(6, 21), 12)
	if dec >= jun {
		t.Errorf("December noon %v not below June noon %v", dec, jun)
	}
}

func TestClearSkyGHI(t *testing.T) {
	if ghi := ClearSkyGHI(-0.1); ghi != 0 {
		t.Errorf("below-horizon GHI %v, want 0", ghi)
	}
	// Vertical sun: close to the Haurwitz maximum.
	if ghi := ClearSkyGHI(math.Pi / 2); ghi < 1000 || ghi > 1098 {
		t.Errorf("zenith GHI %v outside [1000, 1098]", ghi)
	}
	// Monotone in elevation.
	prev := -1.0
	for el := 0.05; el < math.Pi/2; el += 0.05 {
		g := ClearSkyGHI(el)
		if g <= prev {
			t.Fatalf("GHI not increasing at elevation %v", el)
		}
		prev = g
	}
}

func TestDayNightCycle(t *testing.T) {
	// September 15th in Golden: dark at 3:00, bright at 12:30.
	if g := ClearSkyGHIAt(9, 15, 3); g != 0 {
		t.Errorf("3am GHI %v, want 0", g)
	}
	noon := ClearSkyGHIAt(9, 15, 12.5)
	if noon < 500 || noon > 1000 {
		t.Errorf("September noon GHI %v outside plausible range", noon)
	}
	morning := ClearSkyGHIAt(9, 15, 8)
	if morning <= 0 || morning >= noon {
		t.Errorf("8am GHI %v not between 0 and noon %v", morning, noon)
	}
}

func TestDaysInMonth(t *testing.T) {
	if DaysInMonth(9) != 30 || DaysInMonth(2) != 28 || DaysInMonth(12) != 31 {
		t.Fatal("month lengths wrong")
	}
	if DaysInMonth(0) != 0 || DaysInMonth(13) != 0 {
		t.Fatal("invalid months should return 0")
	}
}

func TestWeatherMarkovChain(t *testing.T) {
	w := NewWeather(42)
	counts := map[Sky]int{}
	for i := 0; i < 5000; i++ {
		s, att := w.Step()
		counts[s]++
		if att <= 0 || att > 1 {
			t.Fatalf("attenuation %v outside (0,1]", att)
		}
		switch s {
		case Clear:
			if att < 0.92 {
				t.Fatalf("clear attenuation %v below 0.92", att)
			}
		case Overcast:
			if att > 0.33 {
				t.Fatalf("overcast attenuation %v above 0.33", att)
			}
		}
	}
	// Clear must dominate (Golden averages ~245 sunny days).
	if counts[Clear] <= counts[Overcast] {
		t.Errorf("clear hours %d not above overcast %d", counts[Clear], counts[Overcast])
	}
	for _, s := range []Sky{Clear, Partly, Overcast, Sky(9)} {
		if s.String() == "" {
			t.Fatal("empty sky name")
		}
	}
}

func TestWeatherDeterministic(t *testing.T) {
	a, b := NewWeather(7), NewWeather(7)
	for i := 0; i < 100; i++ {
		sa, aa := a.Step()
		sb, ab := b.Step()
		if sa != sb || aa != ab {
			t.Fatal("same seed diverged")
		}
	}
	if a.State() != b.State() {
		t.Fatal("states diverged")
	}
}

func TestCellValidation(t *testing.T) {
	if err := DefaultCell().Validate(); err != nil {
		t.Fatalf("default cell invalid: %v", err)
	}
	bad := []Cell{
		{AreaM2: 0, Efficiency: 0.1, HarvesterEfficiency: 0.7, Exposure: 0.05},
		{AreaM2: 1e-3, Efficiency: 0, HarvesterEfficiency: 0.7, Exposure: 0.05},
		{AreaM2: 1e-3, Efficiency: 0.1, HarvesterEfficiency: 1.5, Exposure: 0.05},
		{AreaM2: 1e-3, Efficiency: 0.1, HarvesterEfficiency: 0.7, Exposure: 0},
		{AreaM2: math.NaN(), Efficiency: 0.1, HarvesterEfficiency: 0.7, Exposure: 0.05},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid cell accepted", i)
		}
	}
	if p := DefaultCell().Power(-10); p != 0 {
		t.Errorf("negative irradiance power %v, want 0", p)
	}
}

func TestTraceCalibration(t *testing.T) {
	// The September trace must span the paper's evaluation range: peak
	// hours near DP1 saturation (9.9 J) but not wildly beyond, plenty of
	// hours in Regions 1 and 2, and zero harvest at night.
	tr, err := September2015()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Hours) != 30*24 {
		t.Fatalf("trace has %d hours, want 720", len(tr.Hours))
	}
	peak := tr.Peak()
	if peak < 6 || peak > 16 {
		t.Errorf("peak hourly harvest %v J outside [6, 16]", peak)
	}
	mid := 0
	for _, v := range tr.Hours {
		if v >= 1 && v <= 9.9 {
			mid++
		}
	}
	if mid < 150 {
		t.Errorf("only %d hours fall in the interesting 1–9.9 J band", mid)
	}
	// Night hours harvest nothing.
	for d := 1; d <= 30; d++ {
		day, err := tr.Day(d)
		if err != nil {
			t.Fatal(err)
		}
		if day[2] != 0 || day[23] != 0 {
			t.Fatalf("day %d harvests at night: %v / %v", d, day[2], day[23])
		}
	}
	mean, std := tr.Stats()
	if mean <= 0 || std <= 0 {
		t.Errorf("degenerate stats mean=%v std=%v", mean, std)
	}
	if tr.Total() <= 0 || tr.DaylightHours(0.18) < 300 {
		t.Errorf("total %v, daylight hours %d", tr.Total(), tr.DaylightHours(0.18))
	}
}

func TestTraceDeterminismAndSeasons(t *testing.T) {
	a, err := MonthlyTrace(9, 2015, DefaultCell())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonthlyTrace(9, 2015, DefaultCell())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Hours {
		if a.Hours[i] != b.Hours[i] {
			t.Fatal("same month/year diverged")
		}
	}
	dec, err := MonthlyTrace(12, 2015, DefaultCell())
	if err != nil {
		t.Fatal(err)
	}
	jun, err := MonthlyTrace(6, 2015, DefaultCell())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Total() >= jun.Total() {
		t.Errorf("December total %v not below June total %v", dec.Total(), jun.Total())
	}
	if _, err := MonthlyTrace(0, 2015, DefaultCell()); err == nil {
		t.Error("month 0 accepted")
	}
	if _, err := MonthlyTrace(9, 2015, Cell{}); err == nil {
		t.Error("zero cell accepted")
	}
	if _, err := a.Day(0); err == nil {
		t.Error("day 0 accepted")
	}
	if _, err := a.Day(31); err == nil {
		t.Error("day 31 accepted for September")
	}
}

func TestGreedyAllocator(t *testing.T) {
	h := []float64{0, 1, 5, 2}
	b := GreedyAllocator{}.Budgets(h)
	for i := range h {
		if b[i] != h[i] {
			t.Fatalf("greedy budgets %v != harvest %v", b, h)
		}
	}
	b[0] = 99
	if h[0] == 99 {
		t.Fatal("greedy must copy, not alias")
	}
}

func TestBatteryAllocatorSmooths(t *testing.T) {
	// A harsh day/night square wave must come out smoother: night budgets
	// above zero (battery draw), day budgets below raw harvest.
	var harvest []float64
	for d := 0; d < 5; d++ {
		for h := 0; h < 24; h++ {
			if h >= 8 && h < 16 {
				harvest = append(harvest, 6)
			} else {
				harvest = append(harvest, 0)
			}
		}
	}
	alloc := DefaultBatteryAllocator()
	budgets := alloc.Budgets(harvest)
	if len(budgets) != len(harvest) {
		t.Fatal("length mismatch")
	}
	// After the first day the battery has charge: some night budget > 0.
	nightBudget := 0.0
	for i := 30; i < len(budgets); i++ {
		if harvest[i] == 0 {
			nightBudget += budgets[i]
		}
	}
	if nightBudget <= 0 {
		t.Error("battery allocator never spends at night")
	}
	// Energy conservation: total budgets cannot exceed initial charge +
	// total harvest.
	var spent, harvested float64
	for i := range budgets {
		spent += budgets[i]
		harvested += harvest[i]
	}
	if spent > harvested+alloc.InitialJ+1e-6 {
		t.Errorf("allocator spends %v but only %v is available", spent, harvested+alloc.InitialJ)
	}
	// Variance must shrink.
	if varOf(budgets) >= varOf(harvest) {
		t.Errorf("budgets variance %v not below harvest variance %v", varOf(budgets), varOf(harvest))
	}
}

func varOf(x []float64) float64 {
	var m float64
	for _, v := range x {
		m += v
	}
	m /= float64(len(x))
	var s float64
	for _, v := range x {
		s += (v - m) * (v - m)
	}
	return s / float64(len(x))
}

func TestBatteryAllocatorValidation(t *testing.T) {
	bad := []BatteryAllocator{
		{CapacityJ: 0, HorizonHours: 24, Efficiency: 0.9},
		{CapacityJ: 10, InitialJ: 20, HorizonHours: 24, Efficiency: 0.9},
		{CapacityJ: 10, HorizonHours: 0, Efficiency: 0.9},
		{CapacityJ: 10, HorizonHours: 24, Efficiency: 1.5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid allocator accepted", i)
		}
		// Budgets falls back to greedy rather than failing.
		h := []float64{1, 2, 3}
		out := b.Budgets(h)
		for j := range h {
			if out[j] != h[j] {
				t.Errorf("case %d: fallback not greedy", i)
			}
		}
	}
}

// The region seed seam: an empty region must reproduce the canonical
// weather stream exactly (legacy traces cannot move), while distinct
// region names must decorrelate the weather without touching the
// clear-sky geometry.
func TestRegionWeatherSeed(t *testing.T) {
	month, year := 6, 2016
	if got, want := RegionWeatherSeed(month, year, ""), WeatherSeed(month, year); got != want {
		t.Fatalf("empty region seed %d != canonical seed %d", got, want)
	}
	if RegionWeatherSeed(month, year, "oslo") == RegionWeatherSeed(month, year, "lisbon") {
		t.Fatal("distinct regions share a weather seed")
	}
	if RegionWeatherSeed(month, year, "oslo") == WeatherSeed(month, year) {
		t.Fatal("named region collides with the canonical stream")
	}
	// Same region, different month: the seed must move with the calendar.
	if RegionWeatherSeed(6, year, "oslo") == RegionWeatherSeed(7, year, "oslo") {
		t.Fatal("region seed ignores the month")
	}

	base, err := MonthlyTrace(month, year, DefaultCell())
	if err != nil {
		t.Fatal(err)
	}
	same, err := MonthlyTraceSeeded(month, year, DefaultCell(), RegionWeatherSeed(month, year, ""))
	if err != nil {
		t.Fatal(err)
	}
	for h := range base.Hours {
		if base.Hours[h] != same.Hours[h] || base.Skies[h] != same.Skies[h] {
			t.Fatalf("hour %d: empty-region trace diverged from MonthlyTrace", h)
		}
	}
	other, err := MonthlyTraceSeeded(month, year, DefaultCell(), RegionWeatherSeed(month, year, "oslo"))
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for h := range base.Hours {
		if base.Skies[h] != other.Skies[h] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("named region produced the canonical sky sequence")
	}
}
