package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, _ := New([]int{2, 4, 2}, ReLU, Softmax, rng)
	if _, err := Train(net, nil, nil, TrainConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	bad := []Sample{{X: []float64{1}, Label: 0}}
	if _, err := Train(net, bad, nil, TrainConfig{}); err == nil {
		t.Fatal("wrong sample width accepted")
	}
	badLabel := []Sample{{X: []float64{1, 2}, Label: 5}}
	if _, err := Train(net, badLabel, nil, TrainConfig{}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	linNet, _ := New([]int{2, 2}, ReLU, Linear, rng)
	ok := []Sample{{X: []float64{1, 2}, Label: 0}}
	if _, err := Train(linNet, ok, nil, TrainConfig{}); err == nil {
		t.Fatal("non-softmax output layer accepted")
	}
}

func TestTrainLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, _ := New([]int{2, 8, 2}, Tanh, Softmax, rng)
	var data []Sample
	for i := 0; i < 4; i++ {
		a, b := i&1, i>>1
		data = append(data, Sample{X: []float64{float64(a), float64(b)}, Label: a ^ b})
	}
	// Replicate so batches are meaningful.
	var train []Sample
	for i := 0; i < 50; i++ {
		train = append(train, data...)
	}
	res, err := Train(net, train, nil, TrainConfig{
		Epochs: 200, BatchSize: 8, LearningRate: 0.2, Momentum: 0.9, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, data); acc != 1 {
		t.Fatalf("XOR accuracy = %v after %d epochs (loss %v)", acc, res.Epochs, res.FinalLoss)
	}
}

// gaussianBlobs builds a k-class linearly separable dataset.
func gaussianBlobs(rng *rand.Rand, k, perClass int, spread float64) []Sample {
	var samples []Sample
	for c := 0; c < k; c++ {
		ang := 2 * math.Pi * float64(c) / float64(k)
		cx, cy := 3*math.Cos(ang), 3*math.Sin(ang)
		for i := 0; i < perClass; i++ {
			samples = append(samples, Sample{
				X:     []float64{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread},
				Label: c,
			})
		}
	}
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	return samples
}

func TestTrainSeparableBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	all := gaussianBlobs(rng, 4, 100, 0.4)
	trainSet, valSet := all[:300], all[300:]
	net, _ := New([]int{2, 10, 4}, ReLU, Softmax, rand.New(rand.NewSource(5)))
	res, err := Train(net, trainSet, valSet, TrainConfig{
		Epochs: 100, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9, Seed: 6, Patience: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValAcc < 0.95 {
		t.Fatalf("val accuracy %v on separable blobs, want >= 0.95", res.BestValAcc)
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all := gaussianBlobs(rng, 3, 60, 0.3)
	trainSet, valSet := all[:120], all[120:]
	net, _ := New([]int{2, 8, 3}, ReLU, Softmax, rand.New(rand.NewSource(8)))
	res, err := Train(net, trainSet, valSet, TrainConfig{
		Epochs: 500, BatchSize: 16, LearningRate: 0.1, Momentum: 0.9, Seed: 9, Patience: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly && res.Epochs == 500 {
		t.Error("500 epochs on an easy problem with patience 5: early stopping never fired")
	}
	if len(res.ValAccHistory) != res.Epochs {
		t.Errorf("history length %d != epochs %d", len(res.ValAccHistory), res.Epochs)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	all := gaussianBlobs(rng, 3, 40, 0.5)
	run := func() []float64 {
		net, _ := New([]int{2, 6, 3}, ReLU, Softmax, rand.New(rand.NewSource(11)))
		_, err := Train(net, all, nil, TrainConfig{Epochs: 20, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), net.Layers[0].W...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is not deterministic under fixed seeds")
		}
	}
}

func TestWeightDecayShrinksNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	all := gaussianBlobs(rng, 3, 40, 0.5)
	norm := func(decay float64) float64 {
		net, _ := New([]int{2, 12, 3}, ReLU, Softmax, rand.New(rand.NewSource(14)))
		if _, err := Train(net, all, nil, TrainConfig{
			Epochs: 60, LearningRate: 0.1, WeightDecay: decay, Seed: 15,
		}); err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, l := range net.Layers {
			for _, w := range l.W {
				s += w * w
			}
		}
		return s
	}
	if norm(0.01) >= norm(0) {
		t.Error("weight decay did not shrink the weight norm")
	}
}

func TestAccuracyAndConfusion(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net, _ := New([]int{2, 2}, ReLU, Softmax, rng)
	// Hand-set weights: class 0 iff x0 > x1.
	net.Layers[0].W = []float64{5, -5, -5, 5}
	net.Layers[0].B = []float64{0, 0}
	samples := []Sample{
		{X: []float64{2, 0}, Label: 0},
		{X: []float64{0, 2}, Label: 1},
		{X: []float64{3, 1}, Label: 1}, // deliberately mislabeled
	}
	if acc := Accuracy(net, samples); !approx(acc, 2.0/3, 1e-12) {
		t.Fatalf("accuracy = %v, want 2/3", acc)
	}
	cm := ConfusionMatrix(net, samples)
	if cm[0][0] != 1 || cm[1][1] != 1 || cm[1][0] != 1 {
		t.Fatalf("confusion matrix %v", cm)
	}
	if Accuracy(net, nil) != 0 {
		t.Fatal("accuracy of empty set should be 0")
	}
}

func TestCrossEntropyDecreasesWithTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	all := gaussianBlobs(rng, 3, 50, 0.4)
	net, _ := New([]int{2, 8, 3}, ReLU, Softmax, rand.New(rand.NewSource(18)))
	before := CrossEntropy(net, all)
	if _, err := Train(net, all, nil, TrainConfig{Epochs: 40, LearningRate: 0.1, Seed: 19}); err != nil {
		t.Fatal(err)
	}
	after := CrossEntropy(net, all)
	if after >= before {
		t.Fatalf("cross entropy did not decrease: %v -> %v", before, after)
	}
	if CrossEntropy(net, nil) != 0 {
		t.Fatal("empty set cross entropy should be 0")
	}
}
