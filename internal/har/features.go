// Package har implements the paper's driver application: human activity
// recognition on a wearable device. It wires the synthetic user-study
// corpus (internal/synth), the signal-processing feature bank
// (internal/dsp), the neural classifier (internal/nn) and the component
// energy model (internal/energy) into the 24 design points of Figure 2,
// characterizes each one (accuracy from training/testing, energy from the
// calibrated model) and extracts the Pareto-optimal set that REAP consumes.
package har

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/fpx"
	"repro/internal/synth"
)

// AxesMask selects accelerometer axes.
type AxesMask uint8

// Axis bits.
const (
	AxisX AxesMask = 1 << iota
	AxisY
	AxisZ

	// AxesNone disables the accelerometer entirely.
	AxesNone AxesMask = 0
	// AxesXY enables the x and y axes.
	AxesXY = AxisX | AxisY
	// AxesAll enables all three axes.
	AxesAll = AxisX | AxisY | AxisZ
)

// Count returns the number of enabled axes.
func (m AxesMask) Count() int {
	n := 0
	for b := AxisX; b <= AxisZ; b <<= 1 {
		if m&b != 0 {
			n++
		}
	}
	return n
}

// String names the mask ("xyz", "y", "none", ...).
func (m AxesMask) String() string {
	if m == 0 {
		return "none"
	}
	s := ""
	if m&AxisX != 0 {
		s += "x"
	}
	if m&AxisY != 0 {
		s += "y"
	}
	if m&AxisZ != 0 {
		s += "z"
	}
	return s
}

// AccelFeatureKind selects the accelerometer feature family.
type AccelFeatureKind int

const (
	// AccelNone: the accelerometer contributes no features.
	AccelNone AccelFeatureKind = iota
	// AccelStats: the statistical feature bank (mean, deviation, range,
	// crossings, IQR) per axis — the paper's "Statistics of accel".
	AccelStats
	// AccelDWT: Haar wavelet band energies per axis — "DWT of accel".
	AccelDWT
)

// String names the feature family.
func (k AccelFeatureKind) String() string {
	switch k {
	case AccelNone:
		return "none"
	case AccelStats:
		return "stats"
	case AccelDWT:
		return "dwt"
	default:
		return fmt.Sprintf("accelfeat(%d)", int(k))
	}
}

// StretchFeatureKind selects the stretch-sensor feature family.
type StretchFeatureKind int

const (
	// StretchNone: no stretch features.
	StretchNone StretchFeatureKind = iota
	// StretchFFT16: magnitudes of a 16-point FFT — "16-FFT of stretch".
	StretchFFT16
	// StretchStats: statistical summary — "Statistics of stretch".
	StretchStats
	// StretchGoertzel6: the six lowest FFT bins computed with per-bin
	// Goertzel filters — a partial-spectrum extension that trades the
	// (uninformative) top bins for feature-generation energy.
	StretchGoertzel6
)

// String names the feature family.
func (k StretchFeatureKind) String() string {
	switch k {
	case StretchNone:
		return "none"
	case StretchFFT16:
		return "fft16"
	case StretchStats:
		return "stats"
	case StretchGoertzel6:
		return "goertzel6"
	default:
		return fmt.Sprintf("stretchfeat(%d)", int(k))
	}
}

// Feature-bank dimensionalities.
const (
	// statsPerAxis is the statistical feature count per accelerometer
	// axis: mean, std, min, max, range, mean-crossing rate, IQR.
	statsPerAxis = 7
	// dwtLevels and dwtResample control the wavelet family: each axis is
	// resampled to dwtResample points and decomposed dwtLevels deep,
	// giving dwtLevels+1 band energies per axis.
	dwtLevels   = 2
	dwtResample = 16
	// fftBins is the 16-point FFT magnitude count (n/2+1).
	fftBins = 16/2 + 1
	// stretchStatCount is the statistical stretch summary width.
	stretchStatCount = 4
	// goertzelBins is the partial-spectrum width of StretchGoertzel6.
	goertzelBins = 6
)

// FeatureConfig fixes the sensing and feature knobs of a design point
// (everything in Figure 2 except the classifier structure).
type FeatureConfig struct {
	// Axes selects the accelerometer axes.
	Axes AxesMask
	// SensingFraction is the fraction of the window the accelerometer
	// samples (1, 0.75, 0.5 or 0.375 in the paper's knob set).
	SensingFraction float64
	// AccelFeat selects the accelerometer feature family.
	AccelFeat AccelFeatureKind
	// StretchFeat selects the stretch feature family. The stretch sensor
	// is passive and stays on for the whole window.
	StretchFeat StretchFeatureKind
}

// Validate checks knob consistency.
func (c FeatureConfig) Validate() error {
	if c.Axes.Count() == 0 && c.AccelFeat != AccelNone {
		return fmt.Errorf("har: accel features %v with no axes enabled", c.AccelFeat)
	}
	if c.Axes.Count() > 0 && c.AccelFeat == AccelNone {
		return fmt.Errorf("har: axes %v enabled with no accel features", c.Axes)
	}
	if c.Axes.Count() > 0 &&
		(c.SensingFraction <= 0 || c.SensingFraction > 1 || math.IsNaN(c.SensingFraction)) {
		return fmt.Errorf("har: sensing fraction %v outside (0,1]", c.SensingFraction)
	}
	if c.AccelFeat == AccelNone && c.StretchFeat == StretchNone {
		return fmt.Errorf("har: design point senses nothing")
	}
	return nil
}

// Dim returns the feature-vector width the configuration produces.
func (c FeatureConfig) Dim() int {
	d := 0
	switch c.AccelFeat {
	case AccelStats:
		d += statsPerAxis * c.Axes.Count()
	case AccelDWT:
		d += (dwtLevels + 1) * c.Axes.Count()
	}
	switch c.StretchFeat {
	case StretchFFT16:
		d += fftBins
	case StretchStats:
		d += stretchStatCount
	case StretchGoertzel6:
		d += goertzelBins
	}
	return d
}

// Extract computes the feature vector for one activity window under the
// configuration. The accelerometer channels are truncated to the sensing
// fraction first — samples after the sensor powers down simply do not
// exist on the device.
func (c FeatureConfig) Extract(w synth.Window) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, 0, c.Dim())
	if c.AccelFeat != AccelNone {
		for _, axis := range c.activeAxes(w) {
			seen := dsp.Truncate(axis, c.SensingFraction)
			switch c.AccelFeat {
			case AccelStats:
				out = append(out, accelStats(seen)...)
			case AccelDWT:
				bands, err := dsp.HaarBandEnergies(dsp.ResampleLinear(seen, dwtResample), dwtLevels)
				if err != nil {
					return nil, err
				}
				out = append(out, bands...)
			}
		}
	}
	switch c.StretchFeat {
	case StretchFFT16:
		mags, err := dsp.RealFFTMagnitudes(w.Stretch, 16)
		if err != nil {
			return nil, err
		}
		out = append(out, mags...)
	case StretchStats:
		out = append(out,
			dsp.Mean(w.Stretch), dsp.Std(w.Stretch),
			dsp.Range(w.Stretch), dsp.IQR(w.Stretch))
	case StretchGoertzel6:
		bins := make([]int, goertzelBins)
		for i := range bins {
			bins[i] = i
		}
		mags, err := dsp.GoertzelMagnitudes(w.Stretch, 16, bins)
		if err != nil {
			return nil, err
		}
		out = append(out, mags...)
	}
	return out, nil
}

// activeAxes returns the enabled accelerometer channels in x, y, z order.
func (c FeatureConfig) activeAxes(w synth.Window) [][]float64 {
	var axes [][]float64
	if c.Axes&AxisX != 0 {
		axes = append(axes, w.AccelX)
	}
	if c.Axes&AxisY != 0 {
		axes = append(axes, w.AccelY)
	}
	if c.Axes&AxisZ != 0 {
		axes = append(axes, w.AccelZ)
	}
	return axes
}

// accelStats is the statistical feature bank for one axis.
func accelStats(x []float64) []float64 {
	n := float64(len(x))
	if fpx.Zero(n) {
		n = 1
	}
	return []float64{
		dsp.Mean(x),
		dsp.Std(x),
		dsp.Min(x),
		dsp.Max(x),
		dsp.Range(x),
		float64(dsp.MeanCrossings(x)) / n,
		dsp.IQR(x),
	}
}

// Normalizer standardizes features to zero mean and unit variance using
// statistics estimated on the training split only.
type Normalizer struct {
	Mean, Std []float64
}

// FitNormalizer estimates per-feature statistics from rows.
func FitNormalizer(rows [][]float64) *Normalizer {
	if len(rows) == 0 {
		return &Normalizer{}
	}
	d := len(rows[0])
	n := &Normalizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, r := range rows {
		for j, v := range r {
			n.Mean[j] += v
		}
	}
	for j := range n.Mean {
		n.Mean[j] /= float64(len(rows))
	}
	for _, r := range rows {
		for j, v := range r {
			d := v - n.Mean[j]
			n.Std[j] += d * d
		}
	}
	for j := range n.Std {
		n.Std[j] = math.Sqrt(n.Std[j] / float64(len(rows)))
		if n.Std[j] < 1e-9 {
			n.Std[j] = 1
		}
	}
	return n
}

// Apply standardizes one feature vector in place and returns it.
func (n *Normalizer) Apply(x []float64) []float64 {
	for j := range x {
		if j < len(n.Mean) {
			x[j] = (x[j] - n.Mean[j]) / n.Std[j]
		}
	}
	return x
}
