package eval

import (
	"fmt"

	"repro/internal/core"
)

// HeadlineResult quantifies the abstract's claims: "46% higher expected
// accuracy and 66% longer active time compared to the highest performance
// design point", the 2.3× Region-1 active-time gain of Figure 5(b), and
// the "22% to 29% higher accuracy than low-power design points" of the
// conclusion.
type HeadlineResult struct {
	// MeanAccuracyGainVsDP1 is the sweep-average of
	// E{a}(REAP)/E{a}(DP1) - 1 over the energy-constrained budgets.
	MeanAccuracyGainVsDP1 float64
	// MaxAccuracyGainVsDP1 is the largest gain in the sweep.
	MaxAccuracyGainVsDP1 float64
	// MeanActiveGainVsDP1 and MaxActiveGainVsDP1 are the analogous
	// active-time gains.
	MeanActiveGainVsDP1 float64
	MaxActiveGainVsDP1  float64
	// Region1ActiveRatioVsDP1 is the largest REAP/DP1 active-time ratio
	// observed inside Region 1 (the paper reports 2.3×).
	Region1ActiveRatioVsDP1 float64
	// AccuracyGainVsDP5 and AccuracyGainVsDP4 are the mean accuracy gains
	// over the low-power points in Region 2, where REAP mixes design
	// points (the paper reports 22–29%).
	AccuracyGainVsDP5 float64
	AccuracyGainVsDP4 float64
}

// Headline computes the headline numbers from an energy sweep over the
// constrained regions (budgets between the idle floor and DP1
// saturation).
func Headline(cfg core.Config) (*HeadlineResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &HeadlineResult{}
	var accSum, actSum float64
	var accN, actN int
	var dp5Sum float64
	var dp5N int
	var dp4Sum float64
	var dp4N int

	max := cfg.MaxUsefulBudget()
	for budget := 0.3; budget < max; budget += 0.05 {
		alloc, err := core.Solve(cfg, budget)
		if err != nil {
			return nil, err
		}
		reapAcc := alloc.ExpectedAccuracy(cfg)
		reapAct := alloc.ActiveTime()

		dp1 := core.StaticAllocation(cfg, 0, budget)
		if a := dp1.ExpectedAccuracy(cfg); a > 1e-9 {
			g := reapAcc/a - 1
			accSum += g
			accN++
			if g > res.MaxAccuracyGainVsDP1 {
				res.MaxAccuracyGainVsDP1 = g
			}
		}
		if t := dp1.ActiveTime(); t > 1e-9 {
			g := reapAct/t - 1
			actSum += g
			actN++
			if g > res.MaxActiveGainVsDP1 {
				res.MaxActiveGainVsDP1 = g
			}
			if core.Classify(cfg, budget) == core.Region1 && reapAct/t > res.Region1ActiveRatioVsDP1 {
				res.Region1ActiveRatioVsDP1 = reapAct / t
			}
		}
		if core.Classify(cfg, budget) == core.Region2 {
			dp5 := core.StaticAllocation(cfg, len(cfg.DPs)-1, budget)
			if a := dp5.ExpectedAccuracy(cfg); a > 1e-9 {
				dp5Sum += reapAcc/a - 1
				dp5N++
			}
			dp4 := core.StaticAllocation(cfg, len(cfg.DPs)-2, budget)
			if a := dp4.ExpectedAccuracy(cfg); a > 1e-9 {
				dp4Sum += reapAcc/a - 1
				dp4N++
			}
		}
	}
	if accN > 0 {
		res.MeanAccuracyGainVsDP1 = accSum / float64(accN)
	}
	if actN > 0 {
		res.MeanActiveGainVsDP1 = actSum / float64(actN)
	}
	if dp5N > 0 {
		res.AccuracyGainVsDP5 = dp5Sum / float64(dp5N)
	}
	if dp4N > 0 {
		res.AccuracyGainVsDP4 = dp4Sum / float64(dp4N)
	}
	return res, nil
}

// Render prints the paper-vs-measured headline grid.
func (r *HeadlineResult) Render() string {
	t := &table{header: []string{"claim", "paper", "measured"}}
	t.add("expected accuracy vs DP1 (mean gain)", "+46%", fmt.Sprintf("%+.0f%%", 100*r.MeanAccuracyGainVsDP1))
	t.add("active time vs DP1 (mean gain)", "+66%", fmt.Sprintf("%+.0f%%", 100*r.MeanActiveGainVsDP1))
	t.add("region-1 active time ratio vs DP1", "2.3x", fmt.Sprintf("%.1fx", r.Region1ActiveRatioVsDP1))
	t.add("accuracy vs DP5 in region 2 (mean gain)", "22-29%", fmt.Sprintf("%+.0f%%", 100*r.AccuracyGainVsDP5))
	t.add("accuracy vs DP4 in region 2 (mean gain)", "(low-power DP)", fmt.Sprintf("%+.0f%%", 100*r.AccuracyGainVsDP4))
	return "Headline claims (abstract / conclusion)\n" + t.String()
}
