package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fpx"
)

// Plan is a Config compiled into the parametric form of the allocation
// LP. The LP has exactly two structural constraints (the time identity
// and the energy budget), so its optimal value J*(Eb) is a
// piecewise-linear concave function of the budget whose breakpoints are
// the vertices of the upper concave envelope of the device's states in
// (energy-per-period, objective-weight) space — the off state at
// (POff·TP, 0) plus one point per design point at (Pᵢ·TP, aᵢ^α). Between
// two adjacent envelope vertices the optimum mixes exactly those two
// states with the budget binding; beyond the last vertex the best state
// runs the whole period; below the idle floor the device dies partway
// through (the regime the LP cannot express).
//
// Compiling the envelope once per configuration hoists everything a
// solve does not need to repeat: validation, the aᵢ^α powers, the sort
// by power, and the hull construction. A compiled Plan answers
// Solve(budget) with a binary search over the breakpoints plus two
// multiplies, and SolveInto reuses the caller's Active slice so the
// steady-state solve path allocates nothing.
//
// A Plan is immutable after NewPlan and therefore safe for concurrent
// use by any number of goroutines; a whole fleet shares one Plan per
// distinct configuration.
type Plan struct {
	cfg       Config
	weights   []float64
	minBudget float64

	// The envelope, in strictly increasing budget order. vertBudget[k]
	// is the energy the vertex state consumes running the whole period
	// (a breakpoint of J*), vertValue[k] the objective it then earns,
	// and vertState[k] the design-point index (offState for the off
	// vertex, always index 0). Segment k mixes vertState[k] and
	// vertState[k+1]. Design points strictly below the envelope
	// (LP-dominated) appear in no vertex: no budget makes them optimal.
	vertBudget []float64
	vertValue  []float64
	vertState  []int
}

// offState marks the off vertex in Plan.vertState.
const offState = -1

// NewPlan validates the configuration and compiles it into its budget-
// parametric solved form. The design-point slice is copied, so later
// mutation of the caller's Config never reaches a compiled plan.
func NewPlan(c Config) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c.DPs = append([]DesignPoint(nil), c.DPs...)
	n := len(c.DPs)
	p := &Plan{cfg: c, weights: make([]float64, n), minBudget: c.MinBudget()}
	c.weightVector(p.weights)

	type vert struct {
		budget, value float64
		state         int
	}
	verts := make([]vert, 0, n+1)
	verts = append(verts, vert{budget: p.minBudget, value: 0, state: offState})
	for i, d := range c.DPs {
		verts = append(verts, vert{budget: d.EnergyPerPeriod(c.Period), value: p.weights[i], state: i})
	}
	// Sort by budget; for equal budgets the higher-value state shadows
	// the rest (stable, so equal (budget, value) ties keep the lowest
	// index — deterministic compilation). The off vertex sorts strictly
	// first because Validate guarantees every Pᵢ > POff.
	sort.SliceStable(verts, func(i, j int) bool {
		if !fpx.Eq(verts[i].budget, verts[j].budget) {
			return verts[i].budget < verts[j].budget
		}
		return verts[i].value > verts[j].value
	})

	// Upper concave envelope (monotone-chain over the value-increasing
	// prefix). J* is non-decreasing — spending more never hurts while
	// the off state can absorb slack — so states that add energy without
	// adding value are skipped outright, and the hull ends at the
	// cheapest maximum-weight state.
	hull := make([]vert, 0, n+1)
	hull = append(hull, verts[0])
	for _, v := range verts[1:] {
		if v.value <= hull[len(hull)-1].value {
			continue
		}
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Pop b when the a→v chord passes on or above it (slope to v
			// at least the slope to b), written cross-product style so no
			// division can overflow or lose precision.
			if (b.value-a.value)*(v.budget-b.budget) <= (v.value-b.value)*(b.budget-a.budget) {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, v)
	}

	p.vertBudget = make([]float64, len(hull))
	p.vertValue = make([]float64, len(hull))
	p.vertState = make([]int, len(hull))
	for k, v := range hull {
		p.vertBudget[k] = v.budget
		p.vertValue[k] = v.value
		p.vertState[k] = v.state
	}
	return p, nil
}

// Config returns the configuration the plan was compiled from.
func (p *Plan) Config() Config { return p.cfg }

// Breakpoints returns the budgets at which the optimal mix changes: the
// envelope vertices in increasing order, starting at the idle floor
// MinBudget and ending at the saturation energy of the best design
// point. Every breakpoint is one of RegionBoundaries' budgets; the
// boundaries of LP-dominated design points (never part of any optimal
// mix) do not appear.
func (p *Plan) Breakpoints() []float64 {
	return append([]float64(nil), p.vertBudget...)
}

// Value returns the optimal objective J*(budget) without materializing
// an allocation: zero below the idle floor, the envelope's linear
// interpolation between breakpoints, and the saturated maximum beyond
// the last one. Value allocates nothing. NaN budgets return NaN.
//
//reap:hotpath
func (p *Plan) Value(budget float64) float64 {
	if math.IsNaN(budget) {
		return math.NaN()
	}
	if budget < p.minBudget {
		return 0
	}
	k := len(p.vertBudget)
	if budget >= p.vertBudget[k-1] {
		return p.vertValue[k-1]
	}
	hi := sort.SearchFloat64s(p.vertBudget, budget)
	if fpx.Eq(p.vertBudget[hi], budget) {
		return p.vertValue[hi]
	}
	lo := hi - 1
	lam := (budget - p.vertBudget[lo]) / (p.vertBudget[hi] - p.vertBudget[lo])
	return (1-lam)*p.vertValue[lo] + lam*p.vertValue[hi]
}

// Solve computes the optimal allocation for the budget (J). It is exact:
// the result optimizes the same LP as Solve/SolveEnumerate, to floating-
// point noise. Use SolveInto to reuse an allocation across solves.
func (p *Plan) Solve(budget float64) (Allocation, error) {
	var a Allocation
	if err := p.SolveInto(budget, &a); err != nil {
		return Allocation{}, err
	}
	return a, nil
}

// SolveInto writes the optimal allocation for the budget into dst,
// reusing dst.Active when its capacity suffices — after the first call
// with a given dst, solving allocates nothing. dst's previous contents
// are fully overwritten.
//
//reap:hotpath
func (p *Plan) SolveInto(budget float64, dst *Allocation) error {
	if math.IsNaN(budget) || budget < 0 {
		return fmt.Errorf("%w: got %v", ErrBudgetNegative, budget) //lint:reapvet hotalloc -- cold error path
	}
	n := len(p.cfg.DPs)
	if cap(dst.Active) < n {
		dst.Active = make([]float64, n) //lint:reapvet hotalloc -- one-time buffer growth, amortized to zero
	} else {
		dst.Active = dst.Active[:n]
		for i := range dst.Active {
			dst.Active[i] = 0
		}
	}
	dst.Off, dst.Dead = 0, 0

	if budget < p.minBudget {
		// Below the idle floor the LP is infeasible in spirit: idle for
		// as long as the budget lasts, dead for the rest (same regime
		// preLP carves off for the iterative solvers).
		off := 0.0
		if p.cfg.POff > 0 {
			off = budget / p.cfg.POff
		}
		if off > p.cfg.Period {
			off = p.cfg.Period
		}
		dst.Off = off
		dst.Dead = p.cfg.Period - off
		return nil
	}

	k := len(p.vertBudget)
	if budget >= p.vertBudget[k-1] {
		// Saturation: the best state runs the whole period, the budget
		// constraint is slack.
		p.assign(dst, p.vertState[k-1], p.cfg.Period)
		clampAllocation(dst, p.cfg)
		return nil
	}
	hi := sort.SearchFloat64s(p.vertBudget, budget)
	if fpx.Eq(p.vertBudget[hi], budget) {
		// Exactly at a breakpoint: the vertex state alone is optimal.
		p.assign(dst, p.vertState[hi], p.cfg.Period)
		clampAllocation(dst, p.cfg)
		return nil
	}
	// Interior of segment (hi-1, hi): mix the two vertex states with the
	// budget binding. budget ≥ minBudget = vertBudget[0] guarantees
	// hi ≥ 1, and vertBudget[hi-1] ≤ budget < vertBudget[hi] keeps the
	// mixing fraction in [0, 1).
	lo := hi - 1
	lam := (budget - p.vertBudget[lo]) / (p.vertBudget[hi] - p.vertBudget[lo])
	tHigh := lam * p.cfg.Period
	p.assign(dst, p.vertState[hi], tHigh)
	p.assign(dst, p.vertState[lo], p.cfg.Period-tHigh)
	clampAllocation(dst, p.cfg)
	return nil
}

// assign adds t seconds to the given state (a design-point index or
// offState) in dst.
func (p *Plan) assign(dst *Allocation, state int, t float64) {
	if state == offState {
		dst.Off += t
		return
	}
	dst.Active[state] += t
}
