// Package recoverboundary enforces the service's panic-containment
// invariant: every goroutine launched inside repro/internal/service or
// repro/internal/replicate starts behind a recover boundary.
//
// A panic on a request goroutine is caught by the service's recover
// middleware; a panic on a goroutine the service spawned itself is
// caught by nothing and kills the daemon — exactly the failure the
// crash-safety work exists to prevent. resilience.Go wraps the spawn in
// the recover-and-count boundary, so the rule is mechanical: no bare go
// statements in the scoped packages, ever. internal/replicate is in
// scope because its machinery (hub fan-out, follower tailer) runs
// inside the daemon for the life of the process: a replication goroutine
// that panics bare would kill a primary mid-fleet. Other packages are
// out of scope — libraries below the service don't spawn daemon
// goroutines, and binaries own their own lifecycles.
package recoverboundary

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer forbids bare go statements in repro/internal/service and
// repro/internal/replicate.
var Analyzer = &analysis.Analyzer{
	Name: "recoverboundary",
	Doc: "forbid bare go statements in internal/service and internal/replicate: " +
		"daemon goroutines must start via resilience.Go so a panic is recovered and counted",
	Run: run,
}

// inScope reports whether the package must launch goroutines behind a
// recover boundary.
func inScope(pkgPath string) bool {
	for _, p := range []string{"repro/internal/service", "repro/internal/replicate"} {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path()) {
		return nil
	}
	pkg := strings.TrimPrefix(pass.Path(), "repro/")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare go statement in %s: launch goroutines with "+
						"resilience.Go(name, onPanic, fn) so a panic hits a recover boundary "+
						"instead of killing the daemon", pkg)
			}
			return true
		})
	}
	return nil
}
