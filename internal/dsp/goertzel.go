package dsp

import (
	"fmt"
	"math"
)

// Goertzel computes the magnitude of DFT bin k of an n-point signal using
// the Goertzel algorithm: O(n) per bin with two multiplies per sample and
// no twiddle table, which is why MCU firmware prefers it when only a few
// spectral bins are needed. Computing all n/2+1 bins this way costs more
// than one radix-2 FFT, but the HAR stretch feature could drop its three
// highest bins (they carry little gait information) and come out ahead —
// the kind of knob Figure 2 of the paper enumerates.
func Goertzel(x []float64, k, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("dsp: Goertzel size %d must be positive", n)
	}
	if k < 0 || k > n/2 {
		return 0, fmt.Errorf("dsp: Goertzel bin %d outside [0, %d]", k, n/2)
	}
	if len(x) != n {
		return 0, fmt.Errorf("dsp: Goertzel input length %d, want %d", len(x), n)
	}
	w := 2 * math.Pi * float64(k) / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Power of the bin from the final recurrence state.
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power), nil
}

// GoertzelMagnitudes mirrors RealFFTMagnitudes using per-bin Goertzel
// filters: the input is resampled to n points and bins 0..n/2 are
// evaluated. Results match the FFT path bit-for-tolerance; it exists so
// the energy model can price partial-spectrum features.
func GoertzelMagnitudes(x []float64, n int, bins []int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: size %d must be positive", n)
	}
	resampled := ResampleLinear(x, n)
	out := make([]float64, len(bins))
	for i, k := range bins {
		mag, err := Goertzel(resampled, k, n)
		if err != nil {
			return nil, err
		}
		out[i] = mag / float64(n)
	}
	return out, nil
}
