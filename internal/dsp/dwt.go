package dsp

import (
	"fmt"
	"math"
)

// HaarDWT computes one level of the Haar discrete wavelet transform:
// the first half of the result holds approximation coefficients, the
// second half detail coefficients. The input length must be even.
func HaarDWT(x []float64) ([]float64, error) {
	n := len(x)
	if n%2 != 0 {
		return nil, fmt.Errorf("dsp: Haar DWT input length %d is odd", n)
	}
	out := make([]float64, n)
	half := n / 2
	inv := 1 / math.Sqrt2
	for i := 0; i < half; i++ {
		a, b := x[2*i], x[2*i+1]
		out[i] = (a + b) * inv
		out[half+i] = (a - b) * inv
	}
	return out, nil
}

// HaarIDWT inverts one level of HaarDWT.
func HaarIDWT(x []float64) ([]float64, error) {
	n := len(x)
	if n%2 != 0 {
		return nil, fmt.Errorf("dsp: Haar IDWT input length %d is odd", n)
	}
	out := make([]float64, n)
	half := n / 2
	inv := 1 / math.Sqrt2
	for i := 0; i < half; i++ {
		a, d := x[i], x[half+i]
		out[2*i] = (a + d) * inv
		out[2*i+1] = (a - d) * inv
	}
	return out, nil
}

// HaarMultiLevel applies `levels` cascaded Haar decompositions to the
// approximation band. The returned slice is laid out as
// [A_L | D_L | D_{L-1} | ... | D_1] where A_L occupies n/2^L entries.
// The input length must be divisible by 2^levels.
func HaarMultiLevel(x []float64, levels int) ([]float64, error) {
	n := len(x)
	if levels < 0 {
		return nil, fmt.Errorf("dsp: negative DWT levels %d", levels)
	}
	if n%(1<<uint(levels)) != 0 {
		return nil, fmt.Errorf("dsp: length %d not divisible by 2^%d", n, levels)
	}
	out := append([]float64(nil), x...)
	span := n
	for l := 0; l < levels; l++ {
		transformed, err := HaarDWT(out[:span])
		if err != nil {
			return nil, err
		}
		copy(out[:span], transformed)
		span /= 2
	}
	return out, nil
}

// HaarBandEnergies returns the energy in the final approximation band and
// each detail band of a multi-level decomposition, ordered coarse to fine.
// This compact summary is the paper's "DWT of accel" feature family.
func HaarBandEnergies(x []float64, levels int) ([]float64, error) {
	coeffs, err := HaarMultiLevel(x, levels)
	if err != nil {
		return nil, err
	}
	n := len(x)
	energies := make([]float64, 0, levels+1)
	span := n >> uint(levels)
	energies = append(energies, Energy(coeffs[:span])) // approximation
	lo := span
	for l := levels; l >= 1; l-- {
		hi := lo * 2
		energies = append(energies, Energy(coeffs[lo:hi]))
		lo = hi
	}
	return energies, nil
}
