package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHaarDWTKnownValues(t *testing.T) {
	x := []float64{4, 6, 10, 12, 8, 6, 5, 5}
	out, err := HaarDWT(x)
	if err != nil {
		t.Fatal(err)
	}
	s := math.Sqrt2
	want := []float64{10 / s, 22 / s, 14 / s, 10 / s, -2 / s, -2 / s, 2 / s, 0}
	for i := range want {
		if !approx(out[i], want[i], 1e-12) {
			t.Fatalf("coefficient %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestHaarDWTRejectsOddLength(t *testing.T) {
	if _, err := HaarDWT(make([]float64, 5)); err == nil {
		t.Error("odd length accepted")
	}
	if _, err := HaarIDWT(make([]float64, 3)); err == nil {
		t.Error("odd length accepted by inverse")
	}
}

func TestHaarRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 * (1 + rng.Intn(64))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		fwd, err := HaarDWT(x)
		if err != nil {
			return false
		}
		back, err := HaarIDWT(fwd)
		if err != nil {
			return false
		}
		for i := range x {
			if !approx(back[i], x[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarEnergyPreservation(t *testing.T) {
	// Haar is orthonormal: coefficient energy equals signal energy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 64)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		coeffs, err := HaarMultiLevel(x, 3)
		if err != nil {
			return false
		}
		return approx(Energy(coeffs), Energy(x), 1e-9*(1+Energy(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarMultiLevelValidation(t *testing.T) {
	if _, err := HaarMultiLevel(make([]float64, 12), 3); err == nil {
		t.Error("length not divisible by 2^levels accepted")
	}
	if _, err := HaarMultiLevel(make([]float64, 8), -1); err == nil {
		t.Error("negative levels accepted")
	}
	out, err := HaarMultiLevel([]float64{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{1, 2, 3, 4} {
		if out[i] != v {
			t.Fatal("zero levels must be identity")
		}
	}
}

func TestHaarBandEnergies(t *testing.T) {
	// Constant signal: all energy in the approximation band.
	x := make([]float64, 16)
	for i := range x {
		x[i] = 3
	}
	bands, err := HaarBandEnergies(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 4 {
		t.Fatalf("got %d bands, want 4", len(bands))
	}
	if !approx(bands[0], Energy(x), 1e-9) {
		t.Errorf("approximation energy %v, want %v", bands[0], Energy(x))
	}
	for i := 1; i < len(bands); i++ {
		if bands[i] > 1e-9 {
			t.Errorf("detail band %d energy %v, want 0 for constant input", i, bands[i])
		}
	}
	// Fast alternation: energy concentrates in the finest detail band.
	alt := make([]float64, 16)
	for i := range alt {
		alt[i] = float64(1 - 2*(i%2))
	}
	bands, err = HaarBandEnergies(alt, 3)
	if err != nil {
		t.Fatal(err)
	}
	finest := bands[len(bands)-1]
	if !approx(finest, Energy(alt), 1e-9) {
		t.Errorf("finest band %v, want all the energy %v; bands %v", finest, Energy(alt), bands)
	}
	if _, err := HaarBandEnergies(make([]float64, 10), 2); err == nil {
		t.Error("invalid length accepted")
	}
}

func TestHaarBandEnergiesSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 32)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		bands, err := HaarBandEnergies(x, 4)
		if err != nil {
			return false
		}
		var sum float64
		for _, b := range bands {
			if b < 0 {
				return false
			}
			sum += b
		}
		return approx(sum, Energy(x), 1e-9*(1+Energy(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
