package core

import (
	"math"
	"testing"
)

func TestControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}, 0, 0); err == nil {
		t.Fatal("empty config accepted")
	}
	c := DefaultConfig()
	if _, err := NewController(c, 5, 1); err == nil {
		t.Fatal("charge above capacity accepted")
	}
	if _, err := NewController(c, -1, 1); err == nil {
		t.Fatal("negative charge accepted")
	}
	ct, err := NewController(c, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.SetAlpha(-1); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if err := ct.SetAlpha(math.NaN()); err == nil {
		t.Fatal("NaN alpha accepted")
	}
	if _, err := ct.Step(-1); err == nil {
		t.Fatal("negative harvest accepted")
	}
	if err := ct.Report(-1); err == nil {
		t.Fatal("negative consumption accepted")
	}
}

func TestControllerBatteryNeutralOperation(t *testing.T) {
	// Harvest exactly what DP5 needs every hour; the controller must keep
	// the device fully active and the battery level must not drift.
	c := DefaultConfig()
	ct, err := NewController(c, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	harvest := c.DPs[4].EnergyPerPeriod(c.Period) // 4.32 J
	for hour := 0; hour < 48; hour++ {
		alloc, err := ct.Step(harvest)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.ActiveTime() < c.Period-1e-6 {
			t.Fatalf("hour %d: device not fully active: %v", hour, alloc)
		}
		if err := ct.Report(alloc.Energy(c)); err != nil {
			t.Fatal(err)
		}
	}
	if ct.Steps() != 48 {
		t.Fatalf("steps = %d, want 48", ct.Steps())
	}
	// Battery should only have grown or stayed level (surplus from hours
	// where REAP spent less than harvest+battery).
	if ct.Battery() < 0 || ct.Battery() > 20 {
		t.Fatalf("battery %v out of bounds", ct.Battery())
	}
}

func TestControllerNightDrainsBattery(t *testing.T) {
	c := DefaultConfig()
	ct, err := NewController(c, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// No harvest: the controller spends battery, which monotonically
	// drains to zero across successive nights.
	prev := ct.Battery()
	for hour := 0; hour < 12; hour++ {
		alloc, err := ct.Step(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := ct.Report(alloc.Energy(c)); err != nil {
			t.Fatal(err)
		}
		if ct.Battery() > prev+1e-9 {
			t.Fatalf("hour %d: battery grew from %v to %v with zero harvest", hour, prev, ct.Battery())
		}
		prev = ct.Battery()
	}
	if ct.Battery() > 1e-6 {
		t.Fatalf("battery %v, want fully drained after 12 dark hours", ct.Battery())
	}
	// Once empty and dark, the device must be dead for the whole period.
	alloc, err := ct.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.ActiveTime() != 0 {
		t.Fatalf("active with no energy: %v", alloc)
	}
}

func TestControllerReportFeedback(t *testing.T) {
	// If the device under-consumes (e.g. user docked it), the surplus must
	// carry into the next period's budget.
	c := DefaultConfig()
	ct, err := NewController(c, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := ct.Step(5)
	if err != nil {
		t.Fatal(err)
	}
	planned := a1.Energy(c)
	if err := ct.Report(planned / 2); err != nil { // consumed only half
		t.Fatal(err)
	}
	b1 := ct.LastBudget()
	_, err = ct.Step(5)
	if err != nil {
		t.Fatal(err)
	}
	b2 := ct.LastBudget()
	if b2 <= b1 {
		t.Fatalf("budget did not grow after under-consumption: %v -> %v", b1, b2)
	}
	if want := 5 + planned/2; math.Abs(b2-want) > 0.5 {
		t.Fatalf("second budget %v, want about %v (harvest + carried surplus)", b2, want)
	}
}

func TestControllerSetAlphaChangesPlan(t *testing.T) {
	c := DefaultConfig()
	ct, err := NewController(c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := ct.Step(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.SetAlpha(8); err != nil {
		t.Fatal(err)
	}
	a8, err := ct.Step(5)
	if err != nil {
		t.Fatal(err)
	}
	// At α=8 accuracy dominates: the plan must shift toward higher-
	// accuracy design points relative to α=1.
	hiShare := func(a Allocation) float64 {
		return a.Active[0] + a.Active[1] + a.Active[2]
	}
	if hiShare(a8) <= hiShare(a1) {
		t.Fatalf("alpha=8 plan %v not more accuracy-hungry than alpha=1 plan %v", a8, a1)
	}
}

func TestStaticAllocationBaseline(t *testing.T) {
	c := DefaultConfig()
	// DP1 at 5 J: t = (5 - 0.18)/(2.76e-3 - 5e-5) ≈ 1778.6 s.
	a := StaticAllocation(c, 0, 5)
	want := (5 - 0.18) / (2.76e-3 - DefaultPOff)
	if !approx(a.Active[0], want, 1e-6) {
		t.Fatalf("DP1 static time = %v, want %v", a.Active[0], want)
	}
	if !approx(a.Total(), c.Period, 1e-6) {
		t.Fatalf("total %v != period", a.Total())
	}
	// Unlimited energy: full period.
	a = StaticAllocation(c, 0, 100)
	if !approx(a.Active[0], c.Period, 1e-9) {
		t.Fatalf("DP1 at 100 J = %v, want full period", a.Active[0])
	}
	// Below floor: dead time appears.
	a = StaticAllocation(c, 0, 0.09)
	if a.ActiveTime() != 0 || !approx(a.Dead, c.Period/2, 1) {
		t.Fatalf("sub-floor static allocation %v", a)
	}
}

func TestPaperHeadlineClaims(t *testing.T) {
	// "REAP achieves both 46% higher expected accuracy and 66% longer
	// active time compared to the highest performance design point."
	// These gains are averages over the constrained regions; verify that
	// budgets exist where the gains are at least this large, and compute
	// the sweep-average for EXPERIMENTS.md elsewhere.
	c := DefaultConfig()
	bestAccGain, bestTimeGain := 0.0, 0.0
	for budget := 0.5; budget <= 9.9; budget += 0.1 {
		reap, err := Solve(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		dp1 := StaticAllocation(c, 0, budget)
		if dp1.ExpectedAccuracy(c) > 0 {
			if g := reap.ExpectedAccuracy(c)/dp1.ExpectedAccuracy(c) - 1; g > bestAccGain {
				bestAccGain = g
			}
		}
		if dp1.ActiveTime() > 0 {
			if g := reap.ActiveTime()/dp1.ActiveTime() - 1; g > bestTimeGain {
				bestTimeGain = g
			}
		}
	}
	if bestAccGain < 0.46 {
		t.Errorf("max accuracy gain over DP1 = %.2f, want >= 0.46", bestAccGain)
	}
	if bestTimeGain < 0.66 {
		t.Errorf("max active-time gain over DP1 = %.2f, want >= 0.66", bestTimeGain)
	}
}

func TestPaper2point3xActiveTime(t *testing.T) {
	// Figure 5(b): in Region 1 REAP achieves 2.3× the active time of DP1.
	c := DefaultConfig()
	found := false
	for budget := 0.5; budget < 4.3; budget += 0.05 {
		reap, err := Solve(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		dp1 := StaticAllocation(c, 0, budget)
		if dp1.ActiveTime() > 0 && reap.ActiveTime()/dp1.ActiveTime() >= 2.29 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no Region-1 budget where REAP active time >= 2.3x DP1")
	}
}
