// Package hotalloc bans allocating constructs from functions annotated
// //reap:hotpath.
//
// PR 5's headline claim is that steady-state solves allocate nothing:
// Plan.SolveInto, Controller.StepInto and the fleet tick run at 0
// allocs/op. Benchmarks prove that after the fact; this analyzer
// protects it at review time by flagging the constructs that allocate
// (or typically allocate) inside an annotated function:
//
//   - make, new, append (growth), map and slice literals,
//     address-taken composite literals
//   - fmt.* calls (formatting always allocates)
//   - boxing a numeric or string value into an interface parameter
//   - string concatenation and string<->[]byte/[]rune conversions
//   - closures that capture variables, and go statements
//
// The analysis is syntactic over typed ASTs, deliberately stricter than
// the escape analyzer: a flagged construct on a genuinely cold branch
// (error paths, one-time buffer growth) carries a //lint:reapvet
// suppression naming its reason, and the testing.AllocsPerRun pins in
// *_alloc_test.go files remain the runtime ground truth the analyzer
// cross-validates.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer bans allocating constructs in //reap:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //reap:hotpath must not contain allocating " +
		"constructs; cold branches carry //lint:reapvet suppressions with reasons",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.IsHotPath(fn) {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// addressed marks composite literals already reported through an
	// enclosing &T{...}, so they are not reported twice.
	addressed map[*ast.CompositeLit]bool
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{pass: pass, fn: fn, addressed: map[*ast.CompositeLit]bool{}}
	ast.Inspect(fn.Body, c.visit)
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := n.X.(*ast.CompositeLit); ok {
				c.addressed[lit] = true
				c.reportf(n.Pos(), "&%s{...} escapes to the heap", typeLabel(c.pass.TypesInfo, lit))
			}
		}
	case *ast.CompositeLit:
		c.compositeLit(n)
	case *ast.CallExpr:
		c.call(n)
	case *ast.FuncLit:
		c.funcLit(n)
	case *ast.GoStmt:
		c.reportf(n.Pos(), "go statement allocates a goroutine on the hot path")
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(c.pass.TypesInfo.TypeOf(n.X)) {
			c.reportf(n.OpPos, "string concatenation allocates")
		}
	}
	return true
}

func (c *checker) compositeLit(lit *ast.CompositeLit) {
	if c.addressed[lit] {
		return
	}
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.reportf(lit.Pos(), "map literal allocates")
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal allocates its backing array")
	}
	// Plain struct and array value literals are zero-cost assignments
	// (Allocation{} resets, not allocates) and stay legal.
}

func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	// Builtins: make/new always allocate, append may grow.
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[ident].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.reportf(call.Pos(), "make allocates: preallocate the buffer outside the hot path")
			case "new":
				c.reportf(call.Pos(), "new allocates")
			case "append":
				c.reportf(call.Pos(), "append may grow its backing array: preallocate capacity outside the hot path")
			}
			return
		}
	}
	// Conversions: T(x) where the conversion itself allocates.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.conversion(call, tv.Type)
		return
	}
	// fmt.* always formats into fresh memory.
	if pkg, name := analysis.CalleePkgFunc(info, call); pkg == "fmt" {
		c.reportf(call.Pos(), "fmt.%s allocates (formatting boxes every operand)", name)
		return
	}
	// Interface boxing: a numeric or string argument passed as an
	// interface parameter forces a heap box.
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && isBoxable(info.TypeOf(arg)) {
			c.reportf(arg.Pos(), "argument boxes a %s into interface %s", info.TypeOf(arg), pt)
		}
	}
}

func (c *checker) conversion(call *ast.CallExpr, target types.Type) {
	info := c.pass.TypesInfo
	argType := info.TypeOf(call.Args[0])
	if types.IsInterface(target) && isBoxable(argType) {
		c.reportf(call.Pos(), "conversion boxes a %s into interface %s", argType, target)
		return
	}
	// string <-> []byte / []rune conversions copy.
	if isString(argType) != isString(target) {
		_, fromSlice := argType.Underlying().(*types.Slice)
		_, toSlice := target.Underlying().(*types.Slice)
		if fromSlice || toSlice {
			c.reportf(call.Pos(), "conversion between string and slice copies")
		}
	}
}

func (c *checker) funcLit(lit *ast.FuncLit) {
	captured := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[ident]
		if obj == nil || obj.Pos() == token.NoPos {
			return true
		}
		// A capture is a use of an object declared inside the enclosing
		// hot function (params and receiver included) but outside the
		// literal itself.
		if obj.Pos() >= c.fn.Pos() && obj.Pos() < c.fn.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			captured[obj] = true
		}
		return true
	})
	if len(captured) > 0 {
		c.reportf(lit.Pos(), "closure captures %d variable(s) and escapes to the heap", len(captured))
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "hot path %s: "+format, append([]any{c.fn.Name.Name}, args...)...)
}

// typeLabel names a composite literal's type for diagnostics, falling
// back to the source expression when type info is unavailable.
func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}
	return "composite"
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// isBoxable reports whether values of t heap-box when converted to an
// interface: the basic kinds (numerics, strings, bools) the issue's
// invariant singles out.
func isBoxable(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsNumeric|types.IsString|types.IsBoolean) != 0
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
