package sim

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestLegacyConfigsPinned pins the five legacy library scenarios'
// config files byte-for-byte against their Go constructors: migrating a
// scenario to data must not change what it means. Regenerate with
// -update (and justify the diff in the commit — a config diff here is a
// semantics diff).
func TestLegacyConfigsPinned(t *testing.T) {
	for _, sc := range Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cfg, err := ConfigFromScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cfg.Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(scenarioDir, sc.Name+".json")
			if *update {
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(want))
				return
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing legacy config (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s diverged from its constructor:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// TestCorpusConfigsCanonical requires every committed corpus file to be
// in canonical encoding: decode → encode must reproduce the file
// byte-for-byte, so config diffs are always semantic. -update rewrites
// files into canonical form.
func TestCorpusConfigsCanonical(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed scenario configs")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := DecodeScenarioConfig(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			canonical, err := cfg.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(data, canonical) {
				return
			}
			if *update {
				if err := os.WriteFile(path, canonical, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("canonicalized %s", path)
				return
			}
			t.Fatalf("%s is not canonical (run with -update to rewrite):\n file: %s\ncanon: %s",
				path, data, canonical)
		})
	}
}

// TestConfigRoundTrip: decode → encode → decode is the identity on
// every committed config, at both the byte and the struct level.
func TestConfigRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := DecodeScenarioConfig(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		b1, err := c1.Encode()
		if err != nil {
			t.Fatal(err)
		}
		c2, err := DecodeScenarioConfig(bytes.NewReader(b1))
		if err != nil {
			t.Fatalf("%s: canonical bytes failed to decode: %v", path, err)
		}
		b2, err := c2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: decode→encode→decode is not byte-stable:\n b1: %s\n b2: %s", path, b1, b2)
		}
	}
}

// TestConfigStrictDecode enumerates the rejection contract: unknown
// fields, version drift, trailing data and syntax errors all fail with
// the ErrConfigMalformed sentinel.
func TestConfigStrictDecode(t *testing.T) {
	valid := `{"v": 2, "name": "x", "devices": 1, "days": 1, "seed": 1, "month": 6, "year": 2016}`
	if _, err := DecodeScenarioConfig(strings.NewReader(valid)); err != nil {
		t.Fatalf("minimal valid config rejected: %v", err)
	}
	cases := map[string]string{
		"unknown field":    `{"v": 2, "name": "x", "devices": 1, "days": 1, "seed": 1, "month": 6, "year": 2016, "turbo": true}`,
		"unknown nested":   `{"v": 2, "name": "x", "devices": 1, "days": 1, "seed": 1, "month": 6, "year": 2016, "storm": {"start_rate": 0.1, "duration_hours": 2, "lightning": 1}}`,
		"missing version":  `{"name": "x", "devices": 1, "days": 1, "seed": 1, "month": 6, "year": 2016}`,
		"old version":      `{"v": 1, "name": "x", "devices": 1, "days": 1, "seed": 1, "month": 6, "year": 2016}`,
		"future version":   `{"v": 3, "name": "x", "devices": 1, "days": 1, "seed": 1, "month": 6, "year": 2016}`,
		"trailing data":    valid + ` {"v": 2}`,
		"trailing garbage": valid + ` x`,
		"syntax error":     `{"v": 2,`,
		"wrong type":       `{"v": 2, "name": "x", "devices": "many", "days": 1, "seed": 1, "month": 6, "year": 2016}`,
		"empty":            ``,
		"array":            `[1, 2, 3]`,
	}
	for name, input := range cases {
		_, err := DecodeScenarioConfig(strings.NewReader(input))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrConfigMalformed) {
			t.Errorf("%s: error does not wrap ErrConfigMalformed: %v", name, err)
		}
	}
	// ParseScenario layers semantic validation on top of the decode.
	if _, err := ParseScenario([]byte(`{"v": 2, "name": "x", "devices": 0, "days": 1, "seed": 1, "month": 6, "year": 2016}`)); !errors.Is(err, ErrInvalidScenario) {
		t.Errorf("semantically invalid config: got %v, want ErrInvalidScenario", err)
	}
}

func TestConfigFromScenarioRejectsPerDevice(t *testing.T) {
	sc := ClearMonth()
	sc.PerDevice = func(int) []reap.Option { return nil }
	if _, err := ConfigFromScenario(sc); !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("PerDevice scenario converted to config: %v", err)
	}
}

// LoadScenario and LoadCorpus are the filesystem counterparts of the
// embedded corpus: same strict decode, same validation.
func TestLoadScenarioAndCorpus(t *testing.T) {
	sc, err := LoadScenario(filepath.Join(scenarioDir, "clear-month.json"))
	if err != nil {
		t.Fatal(err)
	}
	if want := ClearMonth(); sc.Name != want.Name || sc.Seed != want.Seed {
		t.Fatalf("loaded %q seed %d", sc.Name, sc.Seed)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); !errors.Is(err, ErrConfigMalformed) {
		t.Fatalf("missing file: got %v, want ErrConfigMalformed", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"v": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(bad); !errors.Is(err, ErrConfigMalformed) {
		t.Fatalf("stale-version file: got %v, want ErrConfigMalformed", err)
	}

	disk, err := LoadCorpus(scenarioDir)
	if err != nil {
		t.Fatal(err)
	}
	embedded, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := disk.Names(), embedded.Names(); len(got) != len(want) {
		t.Fatalf("disk corpus has %v, embedded %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("disk corpus has %v, embedded %v", got, want)
			}
		}
	}
	// Duplicate names across files must be rejected.
	dir := t.TempDir()
	data, err := os.ReadFile(filepath.Join(scenarioDir, "clear-month.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.json", "b.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadCorpus(dir); !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("duplicate scenario names: got %v, want ErrInvalidScenario", err)
	}
}

// FuzzScenarioDecode drives the strict decoder with arbitrary bytes: it
// must never panic, and whenever it accepts an input, the canonical
// re-encoding must be decodable and byte-stable (one canonicalization
// reaches the fixpoint).
func FuzzScenarioDecode(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"v": 2, "name": "x", "devices": 1, "days": 1, "seed": 1, "month": 6, "year": 2016}`))
	f.Add([]byte(`{"v": 1}`))
	f.Add([]byte(`{"v": 2} {"v": 2}`))
	f.Add([]byte(`{"v": 2, "unknown": []}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		c1, err := DecodeScenarioConfig(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrConfigMalformed) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			return
		}
		b1, err := c1.Encode()
		if err != nil {
			t.Fatalf("accepted config failed to encode: %v", err)
		}
		c2, err := DecodeScenarioConfig(bytes.NewReader(b1))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v\n%s", err, b1)
		}
		b2, err := c2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonicalization is not a fixpoint:\nb1: %s\nb2: %s", b1, b2)
		}
		// ParseScenario on the same input must classify cleanly too.
		if _, err := ParseScenario(data); err != nil &&
			!errors.Is(err, ErrConfigMalformed) && !errors.Is(err, ErrInvalidScenario) {
			t.Fatalf("ParseScenario error outside the taxonomy: %v", err)
		}
	})
}
