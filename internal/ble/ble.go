// Package ble models the Bluetooth Low Energy link the prototype uses to
// ship recognized activities (or, in the offloading alternative, raw
// sensor windows) to the phone. The energy package prices a transmission
// with two fitted constants; this package opens that box: connection
// events, data-PDU fragmentation, acknowledgement and retransmission
// under a packet-loss model, and per-state radio power. It reproduces the
// paper's two calibration points (0.38 mJ for a label, ≈5.5 mJ for a raw
// window on a clean link) and extends them with loss sensitivity.
package ble

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fpx"
)

// Link-layer constants for a CC2650-class 1M PHY connection.
const (
	// DataPDUPayload is the usable payload of a BLE 4.x data PDU.
	DataPDUPayload = 27
	// pduOverheadBytes is header + MIC + access address overhead per PDU
	// on air.
	pduOverheadBytes = 14
	// bitTime is the air time per byte at 1 Mbit/s.
	byteAirTime = 8e-6

	// PTx and PRx are radio power in transmit and receive states
	// (CC2650 datasheet scale: ~6 mA TX / 6 mA RX at 3 V).
	PTx = 18e-3
	PRx = 18e-3
	// eventOverheadJ prices the pre/post-event overhead (oscillator
	// ramp-up, channel hop computation, host notification).
	eventOverheadJ = 0.27e-3
	// perPDUProcessingJ is the stack's per-PDU handling cost (copying,
	// CRC/MIC, queue management on the application MCU). On this class
	// of SoC it dominates the raw air-time energy; it is fitted so a
	// 2-byte label costs the paper's 0.38 mJ and a 1280-byte raw window
	// ~5.5 mJ.
	perPDUProcessingJ = 0.10e-3
	// interFrameSpace is the T_IFS between a PDU and its acknowledgement.
	interFrameSpace = 150e-6
	// emptyAckBytes is the on-air size of an empty acknowledgement PDU.
	emptyAckBytes = 10
)

// Config describes a link.
type Config struct {
	// LossRate is the independent per-PDU corruption probability in
	// [0, 1).
	LossRate float64
	// MaxRetries bounds retransmissions per PDU before the link gives
	// up; the connection-supervision behaviour of real stacks is out of
	// scope.
	MaxRetries int
	// Seed drives the loss process.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LossRate < 0 || c.LossRate >= 1 || math.IsNaN(c.LossRate) {
		return fmt.Errorf("ble: loss rate %v outside [0,1)", c.LossRate)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("ble: negative retry bound %d", c.MaxRetries)
	}
	return nil
}

// Result reports one payload transfer.
type Result struct {
	// Delivered is false when a PDU exhausted its retries.
	Delivered bool
	// PDUs is the number of data PDUs the payload fragmented into.
	PDUs int
	// Transmissions counts PDU transmissions including retries.
	Transmissions int
	// AirTime is the total radio-on time in seconds.
	AirTime float64
	// Energy is the total radio energy in joules.
	Energy float64
}

// Transfer simulates sending a payload of n bytes over the link.
func Transfer(cfg Config, n int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if n < 0 {
		return Result{}, fmt.Errorf("ble: negative payload %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Delivered: true}
	if n == 0 {
		return res, nil
	}
	res.PDUs = (n + DataPDUPayload - 1) / DataPDUPayload
	res.Energy = eventOverheadJ // connection-event wakeup

	remaining := n
	for p := 0; p < res.PDUs; p++ {
		payload := DataPDUPayload
		if remaining < payload {
			payload = remaining
		}
		remaining -= payload
		onAir := float64(payload+pduOverheadBytes) * byteAirTime
		ackTime := float64(emptyAckBytes) * byteAirTime

		delivered := false
		for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
			res.Transmissions++
			res.AirTime += onAir + ackTime
			res.Energy += PTx*onAir + PRx*ackTime + (PRx+PTx)/2*interFrameSpace + perPDUProcessingJ
			if rng.Float64() >= cfg.LossRate {
				delivered = true
				break
			}
		}
		if !delivered {
			res.Delivered = false
		}
	}
	return res, nil
}

// ExpectedEnergy returns the analytic expectation of Transfer's energy for
// a payload of n bytes: each PDU retries geometrically with success
// probability 1−loss, truncated at MaxRetries+1 attempts.
func ExpectedEnergy(cfg Config, n int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, nil
	}
	pdus := (n + DataPDUPayload - 1) / DataPDUPayload
	total := eventOverheadJ
	remaining := n
	for p := 0; p < pdus; p++ {
		payload := DataPDUPayload
		if remaining < payload {
			payload = remaining
		}
		remaining -= payload
		onAir := float64(payload+pduOverheadBytes) * byteAirTime
		ackTime := float64(emptyAckBytes) * byteAirTime
		perAttempt := PTx*onAir + PRx*ackTime + (PRx+PTx)/2*interFrameSpace + perPDUProcessingJ
		// Expected attempts of a truncated geometric distribution.
		q := cfg.LossRate
		k := float64(cfg.MaxRetries + 1)
		var attempts float64
		if fpx.Zero(q) {
			attempts = 1
		} else {
			attempts = (1 - math.Pow(q, k)) / (1 - q)
		}
		total += perAttempt * attempts
	}
	return total, nil
}

// LabelEnergy prices the paper's recognized-activity transmission on a
// clean link.
func LabelEnergy() float64 {
	e, _ := ExpectedEnergy(Config{}, 2)
	return e
}

// RawWindowEnergy prices the offloading alternative (1280-byte window) on
// a clean link.
func RawWindowEnergy() float64 {
	e, _ := ExpectedEnergy(Config{}, 1280)
	return e
}
