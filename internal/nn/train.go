package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one labeled training example.
type Sample struct {
	X     []float64
	Label int
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size; values below 1 default to 16.
	BatchSize int
	// LearningRate is the SGD step size; values <= 0 default to 0.05.
	LearningRate float64
	// Momentum is the classical momentum coefficient in [0,1).
	Momentum float64
	// WeightDecay is the L2 regularization coefficient.
	WeightDecay float64
	// Seed drives shuffling, making training deterministic.
	Seed int64
	// Patience stops training after this many epochs without validation
	// improvement; zero disables early stopping.
	Patience int
}

// TrainResult reports the outcome of a training run.
type TrainResult struct {
	Epochs        int
	FinalLoss     float64
	BestValAcc    float64
	StoppedEarly  bool
	ValAccHistory []float64
}

// Train fits the network to train with softmax/cross-entropy loss,
// optionally early-stopping on val accuracy. The final layer must use the
// Softmax activation.
func Train(net *Network, train, val []Sample, cfg TrainConfig) (TrainResult, error) {
	if len(train) == 0 {
		return TrainResult{}, fmt.Errorf("nn: empty training set")
	}
	last := net.Layers[len(net.Layers)-1]
	if last.Act != Softmax {
		return TrainResult{}, fmt.Errorf("nn: Train requires a softmax output layer, got %v", last.Act)
	}
	for _, s := range train {
		if len(s.X) != net.InputSize() {
			return TrainResult{}, fmt.Errorf("%w: sample width %d, network expects %d",
				ErrShape, len(s.X), net.InputSize())
		}
		if s.Label < 0 || s.Label >= net.OutputSize() {
			return TrainResult{}, fmt.Errorf("nn: label %d outside [0,%d)", s.Label, net.OutputSize())
		}
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 16
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 50
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(train))
	vel := newGradBuffer(net)
	grad := newGradBuffer(net)

	var res TrainResult
	best := net.Clone()
	bestVal := -1.0
	sinceBest := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Reshuffle each epoch.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			grad.zero()
			for _, idx := range order[start:end] {
				s := train[idx]
				epochLoss += backprop(net, s, grad)
			}
			scale := 1 / float64(end-start)
			applyGradients(net, grad, vel, cfg, scale)
		}
		res.Epochs = epoch + 1
		res.FinalLoss = epochLoss / float64(len(train))

		if len(val) > 0 {
			acc := Accuracy(net, val)
			res.ValAccHistory = append(res.ValAccHistory, acc)
			if acc > bestVal {
				bestVal = acc
				best = net.Clone()
				sinceBest = 0
			} else {
				sinceBest++
				if cfg.Patience > 0 && sinceBest >= cfg.Patience {
					res.StoppedEarly = true
					break
				}
			}
		}
	}
	if bestVal >= 0 {
		// Restore the best validation snapshot.
		for i, l := range best.Layers {
			copy(net.Layers[i].W, l.W)
			copy(net.Layers[i].B, l.B)
		}
		res.BestValAcc = bestVal
	}
	return res, nil
}

// gradBuffer mirrors the network's parameter shapes.
type gradBuffer struct {
	w [][]float64
	b [][]float64
}

func newGradBuffer(net *Network) *gradBuffer {
	g := &gradBuffer{}
	for _, l := range net.Layers {
		g.w = append(g.w, make([]float64, len(l.W)))
		g.b = append(g.b, make([]float64, len(l.B)))
	}
	return g
}

func (g *gradBuffer) zero() {
	for i := range g.w {
		for j := range g.w[i] {
			g.w[i][j] = 0
		}
		for j := range g.b[i] {
			g.b[i][j] = 0
		}
	}
}

// backprop accumulates the gradient of the cross-entropy loss for sample s
// into grad and returns the loss value.
func backprop(net *Network, s Sample, grad *gradBuffer) float64 {
	L := len(net.Layers)
	// Forward pass, keeping activations.
	acts := make([][]float64, L+1)
	acts[0] = s.X
	for i, l := range net.Layers {
		acts[i+1] = l.forward(acts[i], nil)
	}
	out := acts[L]
	p := out[s.Label]
	if p < 1e-15 {
		p = 1e-15
	}
	loss := -math.Log(p)

	// Output delta for softmax + cross-entropy: p - onehot.
	delta := append([]float64(nil), out...)
	delta[s.Label] -= 1

	for li := L - 1; li >= 0; li-- {
		l := net.Layers[li]
		in := acts[li]
		// For hidden layers the delta arriving here is dL/da; convert to
		// dL/dz with the activation derivative. The softmax output layer
		// already holds dL/dz.
		if li != L-1 {
			for o := range delta {
				delta[o] *= activationDerivFromOutput(l.Act, acts[li+1][o])
			}
		}
		gw, gb := grad.w[li], grad.b[li]
		for o := 0; o < l.Out; o++ {
			d := delta[o]
			gb[o] += d
			row := gw[o*l.In : (o+1)*l.In]
			for i, v := range in {
				row[i] += d * v
			}
		}
		if li > 0 {
			prev := make([]float64, l.In)
			for o := 0; o < l.Out; o++ {
				d := delta[o]
				row := l.W[o*l.In : (o+1)*l.In]
				for i := range prev {
					prev[i] += d * row[i]
				}
			}
			delta = prev
		}
	}
	return loss
}

// applyGradients performs one SGD-with-momentum step.
func applyGradients(net *Network, grad, vel *gradBuffer, cfg TrainConfig, scale float64) {
	lr := cfg.LearningRate
	for li, l := range net.Layers {
		gw, gb := grad.w[li], grad.b[li]
		vw, vb := vel.w[li], vel.b[li]
		for j := range l.W {
			g := gw[j]*scale + cfg.WeightDecay*l.W[j]
			vw[j] = cfg.Momentum*vw[j] - lr*g
			l.W[j] += vw[j]
		}
		for j := range l.B {
			vb[j] = cfg.Momentum*vb[j] - lr*gb[j]*scale
			l.B[j] += vb[j]
		}
	}
}

// Accuracy returns the fraction of samples the network classifies
// correctly.
func Accuracy(net *Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if pred, err := net.Predict(s.X); err == nil && pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// ConfusionMatrix returns counts[actual][predicted] over samples for a
// network with k output classes.
func ConfusionMatrix(net *Network, samples []Sample) [][]int {
	k := net.OutputSize()
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for _, s := range samples {
		if pred, err := net.Predict(s.X); err == nil {
			m[s.Label][pred]++
		}
	}
	return m
}

// CrossEntropy returns the mean cross-entropy loss over samples.
func CrossEntropy(net *Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var total float64
	for _, s := range samples {
		out, err := net.Forward(s.X)
		if err != nil {
			continue
		}
		p := out[s.Label]
		if p < 1e-15 {
			p = 1e-15
		}
		total += -math.Log(p)
	}
	return total / float64(len(samples))
}
