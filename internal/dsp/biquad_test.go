package dsp

import (
	"math"
	"testing"
)

func TestLowPassValidation(t *testing.T) {
	if _, err := LowPass(20, 0); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := LowPass(0, 100); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := LowPass(50, 100); err == nil {
		t.Error("cutoff at Nyquist accepted")
	}
	if _, err := LowPass(60, 100); err == nil {
		t.Error("cutoff above Nyquist accepted")
	}
}

func TestLowPassFrequencyResponse(t *testing.T) {
	f, err := LowPass(20, 100)
	if err != nil {
		t.Fatal(err)
	}
	// DC passes at unity.
	if r := f.Response(0, 100); math.Abs(r-1) > 1e-9 {
		t.Errorf("DC response %v, want 1", r)
	}
	// Cutoff sits at -3 dB (1/sqrt2) for a Butterworth section.
	if r := f.Response(20, 100); math.Abs(r-1/math.Sqrt2) > 0.01 {
		t.Errorf("cutoff response %v, want %v", r, 1/math.Sqrt2)
	}
	// Stopband: two octaves up (hitting Nyquist region) strongly
	// attenuated (2nd order ≈ -12 dB/octave).
	if r := f.Response(45, 100); r > 0.12 {
		t.Errorf("45 Hz response %v, want < 0.12", r)
	}
	// Monotone decreasing through the transition band.
	prev := math.Inf(1)
	for hz := 1.0; hz < 49; hz += 2 {
		r := f.Response(hz, 100)
		if r > prev+1e-9 {
			t.Fatalf("response not monotone at %v Hz", hz)
		}
		prev = r
	}
}

func TestLowPassFiltersSignal(t *testing.T) {
	f, err := LowPass(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 2 Hz passes, 30 Hz is crushed.
	n := 400
	low := make([]float64, n)
	high := make([]float64, n)
	for i := range low {
		tt := float64(i) / 100
		low[i] = math.Sin(2 * math.Pi * 2 * tt)
		high[i] = math.Sin(2 * math.Pi * 30 * tt)
	}
	// Skip the transient when measuring.
	lowOut := f.Filter(low)[100:]
	highOut := f.Filter(high)[100:]
	if RMS(lowOut) < 0.6 {
		t.Errorf("2 Hz RMS after filter %v, want mostly preserved", RMS(lowOut))
	}
	if RMS(highOut) > 0.05 {
		t.Errorf("30 Hz RMS after filter %v, want crushed", RMS(highOut))
	}
	// Empty input.
	if out := f.Filter(nil); len(out) != 0 {
		t.Error("nil input should give empty output")
	}
}

func TestLowPassPreservesGravityOffset(t *testing.T) {
	// A DC component (gravity) must pass unchanged after settling — the
	// posture information HAR depends on survives pre-filtering.
	f, err := LowPass(20, 100)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 300)
	for i := range x {
		x[i] = 0.95
	}
	out := f.Filter(x)
	if math.Abs(out[len(out)-1]-0.95) > 1e-6 {
		t.Errorf("settled DC output %v, want 0.95", out[len(out)-1])
	}
}
