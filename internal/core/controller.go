package core

import (
	"context"
	"fmt"
	"math"
)

// SolveFunc is the pluggable optimizer backend of a Controller: it maps a
// configuration and an energy budget onto an allocation. SolveContext and
// SolveEnumerateContext both satisfy it; the public reap package adapts
// registered Solver backends through this type.
type SolveFunc func(ctx context.Context, c Config, budget float64) (Allocation, error)

// SolveIntoFunc is the buffer-reusing backend shape: it writes the
// allocation into dst, reusing dst.Active's capacity, so a steady-state
// solve can answer without allocating (the solve-cache hit path uses
// this). dst's previous contents are fully overwritten.
type SolveIntoFunc func(ctx context.Context, c Config, budget float64, dst *Allocation) error

// Controller is the runtime side of REAP: once per activity period it
// receives the energy made available by the harvesting subsystem, folds in
// the accounting surplus or deficit of the previous period (planned versus
// actually consumed energy), solves the allocation LP, and hands the
// schedule to the device.
//
// The paper re-optimizes every hour because "the available energy budget is
// not known at design time" and because α may change with user preference;
// both paths are exposed here (Step and SetAlpha).
type Controller struct {
	cfg Config

	// carry is the energy accounting balance in joules: positive when the
	// previous period consumed less than planned (e.g. the device was
	// docked), negative when it overshot.
	carry float64
	// battery tracks the backup battery state of charge in joules; the
	// carry is bounded by what the battery can absorb.
	battery     float64
	capacityJ   float64
	lastPlanned float64
	lastBudget  float64
	steps       int

	// solveInto is the buffer-reusing optimizer backend; when set it wins
	// over solve and plan (StepInto solves straight into dst).
	solveInto SolveIntoFunc
	// solve is the optimizer backend; when nil, plan answers solves if
	// set, and SolveContext (simplex) otherwise.
	solve SolveFunc
	// plan is the compiled parametric solver for cfg; the zero-allocation
	// fast path of StepInto. Kept in sync with cfg by SetAlpha.
	plan *Plan
}

// NewController creates a runtime controller. batteryJ is the initial
// battery charge and capacityJ its capacity, both in joules; a zero
// capacity models the battery-less class of harvesting devices (any
// surplus is lost).
func NewController(cfg Config, batteryJ, capacityJ float64) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if capacityJ < 0 || batteryJ < 0 || batteryJ > capacityJ+1e-9 ||
		math.IsNaN(batteryJ) || math.IsNaN(capacityJ) {
		return nil, fmt.Errorf("%w: battery state %v/%v", ErrInvalidConfig, batteryJ, capacityJ)
	}
	return &Controller{cfg: cfg, battery: batteryJ, capacityJ: capacityJ}, nil
}

// Config returns the controller's current configuration.
func (ct *Controller) Config() Config { return ct.cfg }

// Battery returns the current battery charge in joules.
func (ct *Controller) Battery() float64 { return ct.battery }

// Steps returns the number of periods stepped so far.
func (ct *Controller) Steps() int { return ct.steps }

// LastBudget returns the budget used in the most recent Step.
func (ct *Controller) LastBudget() float64 { return ct.lastBudget }

// SetAlpha changes the accuracy/active-time emphasis for subsequent
// periods, modelling a user-preference update at runtime. A controller
// running on a compiled plan recompiles it, since the plan's envelope
// depends on α.
func (ct *Controller) SetAlpha(alpha float64) error {
	if alpha < 0 || math.IsNaN(alpha) {
		return fmt.Errorf("%w: alpha %v must be non-negative", ErrInvalidConfig, alpha)
	}
	ct.cfg.Alpha = alpha
	if ct.plan != nil {
		p, err := NewPlan(ct.cfg)
		if err != nil {
			return err
		}
		ct.plan = p
	}
	return nil
}

// SetSolveFunc selects the optimizer backend used by subsequent Steps; a
// nil fn restores the default path (the compiled plan when one is set,
// simplex otherwise). Not safe for concurrent use with Step — configure
// the controller before starting its period loop.
func (ct *Controller) SetSolveFunc(fn SolveFunc) { ct.solve = fn }

// SetSolveIntoFunc selects a buffer-reusing optimizer backend, which wins
// over SetSolveFunc and SetPlan: StepInto hands fn its own dst, so a
// backend that reuses dst.Active (the solve-cache hit path) keeps the
// steady-state step allocation-free. A nil fn restores the SolveFunc /
// plan / simplex fallback chain. Not safe for concurrent use with Step.
func (ct *Controller) SetSolveIntoFunc(fn SolveIntoFunc) { ct.solveInto = fn }

// SetPlan installs a compiled parametric plan as the controller's
// allocation-free solve path, used whenever no SolveFunc is set. The
// plan must be compiled from the controller's exact configuration; a
// nil plan clears the fast path. Like SetSolveFunc, not safe for
// concurrent use with Step.
func (ct *Controller) SetPlan(p *Plan) error {
	if p != nil && p.Config().Fingerprint() != ct.cfg.Fingerprint() {
		return fmt.Errorf("%w: plan compiled for a different configuration", ErrInvalidConfig)
	}
	ct.plan = p
	return nil
}

// Step plans the next activity period. harvested is the energy (J) the
// harvesting subsystem expects to collect during the period. The budget
// handed to the optimizer is the harvested energy plus whatever the battery
// can contribute, corrected by the previous period's accounting balance.
func (ct *Controller) Step(harvested float64) (Allocation, error) {
	return ct.StepContext(context.Background(), harvested) //lint:reapvet ctxflow -- context-free compatibility shim; the root context is deliberate
}

// StepContext is Step with cancellation, forwarded to the solver backend.
func (ct *Controller) StepContext(ctx context.Context, harvested float64) (Allocation, error) {
	var alloc Allocation
	if err := ct.StepInto(ctx, harvested, &alloc); err != nil {
		return Allocation{}, err
	}
	return alloc, nil
}

// StepInto is StepContext writing the schedule into dst, the buffer-
// reusing form for closed loops: on a controller with a compiled plan
// (and no SolveFunc) a steady-state step allocates nothing, because the
// plan solves straight into dst's existing Active slice. dst's previous
// contents are fully overwritten; on error the controller commits no
// state and dst is reset to the zero Allocation.
//
//reap:hotpath
func (ct *Controller) StepInto(ctx context.Context, harvested float64, dst *Allocation) error {
	if harvested < 0 || math.IsNaN(harvested) {
		*dst = Allocation{}
		return fmt.Errorf("%w: harvested energy %v", ErrBudgetNegative, harvested) //lint:reapvet hotalloc -- cold error path
	}
	budget := harvested + ct.battery + ct.carry
	if budget < 0 {
		budget = 0
	}
	switch {
	case ct.solveInto != nil:
		if err := ct.solveInto(ctx, ct.cfg, budget, dst); err != nil {
			*dst = Allocation{}
			return err
		}
	case ct.solve != nil:
		alloc, err := ct.solve(ctx, ct.cfg, budget)
		if err != nil {
			*dst = Allocation{}
			return err
		}
		*dst = alloc
	case ct.plan != nil:
		if err := ctx.Err(); err != nil {
			*dst = Allocation{}
			return err
		}
		if err := ct.plan.SolveInto(budget, dst); err != nil {
			*dst = Allocation{}
			return err
		}
	default:
		alloc, err := SolveContext(ctx, ct.cfg, budget)
		if err != nil {
			*dst = Allocation{}
			return err
		}
		*dst = alloc
	}
	ct.lastBudget = budget
	ct.carry = 0
	ct.steps++

	// Provisional accounting: assume the plan executes exactly. Report
	// corrects this when the device reports measured consumption.
	ct.lastPlanned = dst.Energy(ct.cfg)
	ct.settle(harvested, ct.lastPlanned)
	return nil
}

// Report records the energy actually consumed during the period that
// Step most recently planned, correcting the provisional accounting. The
// difference between planned and measured consumption becomes a carry for
// the next period — the feedback loop that keeps long-horizon operation
// energy-neutral even when the device deviates from the plan.
func (ct *Controller) Report(consumed float64) error {
	if consumed < 0 || math.IsNaN(consumed) {
		return fmt.Errorf("%w: consumed energy %v", ErrBudgetNegative, consumed)
	}
	ct.carry += ct.lastPlanned - consumed
	return nil
}

// ControllerState is the serializable mutable state of a Controller —
// everything Step and Report accumulate, plus the one configuration
// field that changes at runtime (alpha, via SetAlpha). It exists for
// crash-safe serving: reapd's journal snapshots capture it and Restore
// reconstructs a controller mid-history without replaying from boot.
type ControllerState struct {
	BatteryJ     float64 `json:"battery_j"`
	CarryJ       float64 `json:"carry_j"`
	LastPlannedJ float64 `json:"last_planned_j"`
	LastBudgetJ  float64 `json:"last_budget_j"`
	Steps        int     `json:"steps"`
	Alpha        float64 `json:"alpha"`
}

// State snapshots the controller's mutable state.
func (ct *Controller) State() ControllerState {
	return ControllerState{
		BatteryJ:     ct.battery,
		CarryJ:       ct.carry,
		LastPlannedJ: ct.lastPlanned,
		LastBudgetJ:  ct.lastBudget,
		Steps:        ct.steps,
		Alpha:        ct.cfg.Alpha,
	}
}

// Restore overwrites the controller's mutable state with a snapshot
// taken by State on a controller with the same configuration and
// battery capacity. An alpha differing from the current configuration
// re-runs SetAlpha (recompiling a configured plan); invalid values are
// rejected without committing anything.
func (ct *Controller) Restore(st ControllerState) error {
	if st.BatteryJ < 0 || st.BatteryJ > ct.capacityJ+1e-9 ||
		math.IsNaN(st.BatteryJ) || math.IsNaN(st.CarryJ) ||
		math.IsNaN(st.LastPlannedJ) || math.IsNaN(st.LastBudgetJ) || st.Steps < 0 {
		return fmt.Errorf("%w: controller state %+v", ErrInvalidConfig, st)
	}
	if !(st.Alpha == ct.cfg.Alpha) { //lint:reapvet floatcmp -- exact: only an explicit SetAlpha changes it
		if err := ct.SetAlpha(st.Alpha); err != nil {
			return err
		}
	}
	ct.battery = st.BatteryJ
	ct.carry = st.CarryJ
	ct.lastPlanned = st.LastPlannedJ
	ct.lastBudget = st.LastBudgetJ
	ct.steps = st.Steps
	return nil
}

// settle updates the battery after a period that harvested `in` joules and
// consumed `out` joules. Net surplus charges the battery up to capacity
// (overflow is lost — the harvester cannot store it); net deficit drains it.
func (ct *Controller) settle(in, out float64) {
	ct.battery += in - out
	if ct.battery > ct.capacityJ {
		ct.battery = ct.capacityJ
	}
	if ct.battery < 0 {
		ct.battery = 0
	}
}
