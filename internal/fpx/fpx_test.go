package fpx

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	if !Eq(1.5, 1.5) {
		t.Error("Eq(1.5, 1.5) = false")
	}
	if Eq(1.5, 1.5000001) {
		t.Error("Eq on distinct values = true")
	}
	if Eq(math.NaN(), math.NaN()) {
		t.Error("Eq(NaN, NaN) = true, want false (matches ==)")
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(math.Copysign(0, -1)) {
		t.Error("Zero must accept both signed zeros")
	}
	if Zero(math.SmallestNonzeroFloat64) || Zero(math.NaN()) {
		t.Error("Zero accepted a non-zero value")
	}
}

func TestNear(t *testing.T) {
	if !Near(1.0, 1.0+1e-12, 1e-9) {
		t.Error("Near rejected values within tolerance")
	}
	if Near(1.0, 1.1, 1e-9) {
		t.Error("Near accepted values outside tolerance")
	}
	if !Near(math.Inf(1), math.Inf(1), 0) {
		t.Error("Near(+Inf, +Inf) = false")
	}
	if Near(math.NaN(), 0, 1e9) {
		t.Error("Near(NaN, 0) = true")
	}
	if !InDelta(2, 2.5, 0.5) {
		t.Error("InDelta boundary case failed")
	}
}

func TestRelNear(t *testing.T) {
	if !RelNear(0, 0, 0) {
		t.Error("RelNear(0, 0) = false")
	}
	if !RelNear(1e9, 1e9*(1+1e-12), 1e-9) {
		t.Error("RelNear rejected relative agreement")
	}
	if RelNear(1e9, 1.1e9, 1e-9) {
		t.Error("RelNear accepted 10% disagreement")
	}
}
