package reap

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
)

// TestErrorsIsRoundTrips pins the error taxonomy contract: every failure
// mode of the public surface classifies with errors.Is against the
// package sentinels, across the reap -> core -> lp wrapping chain.
func TestErrorsIsRoundTrips(t *testing.T) {
	ctx := context.Background()
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	solver := LookupSolverMust(t, SolverSimplex)

	t.Run("budget negative", func(t *testing.T) {
		for _, bad := range []float64{-1, math.NaN()} {
			if _, err := solver.Solve(ctx, cfg, bad); !errors.Is(err, ErrBudgetNegative) {
				t.Errorf("Solve(%v): err %v, want ErrBudgetNegative", bad, err)
			}
		}
	})

	t.Run("invalid config", func(t *testing.T) {
		bad := cfg
		bad.Period = -1
		if _, err := solver.Solve(ctx, bad, 5); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("negative period: err %v, want ErrInvalidConfig", err)
		}
		bad = cfg
		bad.DPs = nil
		_, err := solver.Solve(ctx, bad, 5)
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("no DPs: err %v, want ErrInvalidConfig", err)
		}
		// The finer-grained sentinel stays visible through the wrap.
		if !errors.Is(err, core.ErrNoDesignPoints) {
			t.Errorf("no DPs: err %v should also match core.ErrNoDesignPoints", err)
		}
	})

	t.Run("constructor errors", func(t *testing.T) {
		if _, err := New(WithPeriod(-1)); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("New: err %v, want ErrInvalidConfig", err)
		}
		if _, err := NewFleet(0); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("NewFleet(0): err %v, want ErrInvalidConfig", err)
		}
		if _, err := LookupSolver("bogus"); !errors.Is(err, ErrUnknownSolver) {
			t.Errorf("LookupSolver: err %v, want ErrUnknownSolver", err)
		}
		// NaN battery state must fail construction on both the options
		// path and the deprecated positional path.
		if _, err := New(WithBattery(math.NaN(), 100)); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("New with NaN battery: err %v, want ErrInvalidConfig", err)
		}
		if _, err := NewController(DefaultConfig(), math.NaN(), 100); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("NewController with NaN battery: err %v, want ErrInvalidConfig", err)
		}
	})

	t.Run("infeasible wraps lp sentinel", func(t *testing.T) {
		// The public sentinel chains down to the lp-layer one, so callers
		// holding either classify identically.
		err := error(core.ErrInfeasible)
		if !errors.Is(ErrInfeasible, err) {
			t.Error("reap.ErrInfeasible must alias core.ErrInfeasible")
		}
		if lp.Infeasible.Err() == nil || !errors.Is(lp.Infeasible.Err(), lp.ErrInfeasible) {
			t.Error("lp.Infeasible.Err() must yield lp.ErrInfeasible")
		}
		// Non-infeasible terminal statuses classify publicly too.
		if !errors.Is(ErrSolverFailure, core.ErrSolverFailure) {
			t.Error("reap.ErrSolverFailure must alias core.ErrSolverFailure")
		}
		for _, s := range []lp.Status{lp.Unbounded, lp.IterationLimit} {
			if !errors.Is(s.Err(), s.Err()) || s.Err() == nil {
				t.Errorf("status %v must map to a sentinel", s)
			}
		}
	})

	t.Run("batch errors", func(t *testing.T) {
		results := SolveBatch(ctx, []Request{
			{Budget: 5},
			{Budget: -3},
			{Budget: 5, Solver: "bogus"},
		})
		if results[0].Err != nil {
			t.Errorf("good request failed: %v", results[0].Err)
		}
		if !errors.Is(results[1].Err, ErrBudgetNegative) {
			t.Errorf("negative budget: err %v, want ErrBudgetNegative", results[1].Err)
		}
		if !errors.Is(results[2].Err, ErrUnknownSolver) {
			t.Errorf("bogus solver: err %v, want ErrUnknownSolver", results[2].Err)
		}
	})
}
