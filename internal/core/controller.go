package core

import (
	"context"
	"fmt"
	"math"
)

// SolveFunc is the pluggable optimizer backend of a Controller: it maps a
// configuration and an energy budget onto an allocation. SolveContext and
// SolveEnumerateContext both satisfy it; the public reap package adapts
// registered Solver backends through this type.
type SolveFunc func(ctx context.Context, c Config, budget float64) (Allocation, error)

// Controller is the runtime side of REAP: once per activity period it
// receives the energy made available by the harvesting subsystem, folds in
// the accounting surplus or deficit of the previous period (planned versus
// actually consumed energy), solves the allocation LP, and hands the
// schedule to the device.
//
// The paper re-optimizes every hour because "the available energy budget is
// not known at design time" and because α may change with user preference;
// both paths are exposed here (Step and SetAlpha).
type Controller struct {
	cfg Config

	// carry is the energy accounting balance in joules: positive when the
	// previous period consumed less than planned (e.g. the device was
	// docked), negative when it overshot.
	carry float64
	// battery tracks the backup battery state of charge in joules; the
	// carry is bounded by what the battery can absorb.
	battery    float64
	capacityJ  float64
	lastAlloc  Allocation
	lastBudget float64
	steps      int

	// solve is the optimizer backend; nil selects SolveContext (simplex).
	solve SolveFunc
}

// NewController creates a runtime controller. batteryJ is the initial
// battery charge and capacityJ its capacity, both in joules; a zero
// capacity models the battery-less class of harvesting devices (any
// surplus is lost).
func NewController(cfg Config, batteryJ, capacityJ float64) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if capacityJ < 0 || batteryJ < 0 || batteryJ > capacityJ+1e-9 ||
		math.IsNaN(batteryJ) || math.IsNaN(capacityJ) {
		return nil, fmt.Errorf("%w: battery state %v/%v", ErrInvalidConfig, batteryJ, capacityJ)
	}
	return &Controller{cfg: cfg, battery: batteryJ, capacityJ: capacityJ}, nil
}

// Config returns the controller's current configuration.
func (ct *Controller) Config() Config { return ct.cfg }

// Battery returns the current battery charge in joules.
func (ct *Controller) Battery() float64 { return ct.battery }

// Steps returns the number of periods stepped so far.
func (ct *Controller) Steps() int { return ct.steps }

// LastBudget returns the budget used in the most recent Step.
func (ct *Controller) LastBudget() float64 { return ct.lastBudget }

// SetAlpha changes the accuracy/active-time emphasis for subsequent
// periods, modelling a user-preference update at runtime.
func (ct *Controller) SetAlpha(alpha float64) error {
	if alpha < 0 || math.IsNaN(alpha) {
		return fmt.Errorf("%w: alpha %v must be non-negative", ErrInvalidConfig, alpha)
	}
	ct.cfg.Alpha = alpha
	return nil
}

// SetSolveFunc selects the optimizer backend used by subsequent Steps; a
// nil fn restores the default simplex path. Not safe for concurrent use
// with Step — configure the controller before starting its period loop.
func (ct *Controller) SetSolveFunc(fn SolveFunc) { ct.solve = fn }

// Step plans the next activity period. harvested is the energy (J) the
// harvesting subsystem expects to collect during the period. The budget
// handed to the optimizer is the harvested energy plus whatever the battery
// can contribute, corrected by the previous period's accounting balance.
func (ct *Controller) Step(harvested float64) (Allocation, error) {
	return ct.StepContext(context.Background(), harvested)
}

// StepContext is Step with cancellation, forwarded to the solver backend.
func (ct *Controller) StepContext(ctx context.Context, harvested float64) (Allocation, error) {
	if harvested < 0 || math.IsNaN(harvested) {
		return Allocation{}, fmt.Errorf("%w: harvested energy %v", ErrBudgetNegative, harvested)
	}
	budget := harvested + ct.battery + ct.carry
	if budget < 0 {
		budget = 0
	}
	solve := ct.solve
	if solve == nil {
		solve = SolveContext
	}
	alloc, err := solve(ctx, ct.cfg, budget)
	if err != nil {
		return Allocation{}, err
	}
	ct.lastAlloc = alloc
	ct.lastBudget = budget
	ct.carry = 0
	ct.steps++

	// Provisional accounting: assume the plan executes exactly. Report
	// corrects this when the device reports measured consumption.
	planned := alloc.Energy(ct.cfg)
	ct.settle(harvested, planned)
	return alloc, nil
}

// Report records the energy actually consumed during the period that
// Step most recently planned, correcting the provisional accounting. The
// difference between planned and measured consumption becomes a carry for
// the next period — the feedback loop that keeps long-horizon operation
// energy-neutral even when the device deviates from the plan.
func (ct *Controller) Report(consumed float64) error {
	if consumed < 0 || math.IsNaN(consumed) {
		return fmt.Errorf("%w: consumed energy %v", ErrBudgetNegative, consumed)
	}
	planned := ct.lastAlloc.Energy(ct.cfg)
	ct.carry += planned - consumed
	return nil
}

// settle updates the battery after a period that harvested `in` joules and
// consumed `out` joules. Net surplus charges the battery up to capacity
// (overflow is lost — the harvester cannot store it); net deficit drains it.
func (ct *Controller) settle(in, out float64) {
	ct.battery += in - out
	if ct.battery > ct.capacityJ {
		ct.battery = ct.capacityJ
	}
	if ct.battery < 0 {
		ct.battery = 0
	}
}
