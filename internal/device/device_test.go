package device

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/solar"
)

func defaultSim() *Simulator {
	return &Simulator{Cfg: core.DefaultConfig()}
}

func TestPolicyNames(t *testing.T) {
	if (REAPPolicy{}).Name() != "REAP" {
		t.Fatal("REAP name")
	}
	if (StaticPolicy{Index: 2}).Name() != "DP3" {
		t.Fatal("static name")
	}
	if (OraclePolicy{}).Name() != "oracle" {
		t.Fatal("oracle name")
	}
}

func TestSimulatorValidation(t *testing.T) {
	s := &Simulator{Cfg: core.Config{}}
	if _, err := s.Run(REAPPolicy{}, []float64{1}); err == nil {
		t.Fatal("invalid config accepted")
	}
	s = defaultSim()
	s.ExecutionNoise = 0.9
	if _, err := s.Run(REAPPolicy{}, []float64{1}); err == nil {
		t.Fatal("excessive noise accepted")
	}
	s = defaultSim()
	if _, err := s.Run(StaticPolicy{Index: 9}, []float64{1}); err == nil {
		t.Fatal("out-of-range static index accepted")
	}
}

func TestREAPBeatsStaticsOverMonth(t *testing.T) {
	// Figure 7's qualitative claim on our synthetic September: mean J(t)
	// of REAP >= mean J(t) of every static DP, for every alpha.
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	budgets := solar.GreedyAllocator{}.Budgets(tr.Hours)
	for _, alpha := range []float64{0.5, 1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Alpha = alpha
		sim := &Simulator{Cfg: cfg}
		reap, err := sim.Run(REAPPolicy{}, budgets)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfg.DPs {
			static, err := sim.Run(StaticPolicy{Index: i}, budgets)
			if err != nil {
				t.Fatal(err)
			}
			if static.MeanObjective() > reap.MeanObjective()+1e-9 {
				t.Errorf("alpha %v: DP%d mean J %v beats REAP %v",
					alpha, i+1, static.MeanObjective(), reap.MeanObjective())
			}
		}
	}
}

func TestSimulatorHourRecordsConsistent(t *testing.T) {
	sim := defaultSim()
	budgets := []float64{0, 0.1, 1, 3, 5, 8, 12}
	res, err := sim.Run(REAPPolicy{}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hours) != len(budgets) {
		t.Fatal("hour count mismatch")
	}
	for i, h := range res.Hours {
		if h.Consumed > budgets[i]+1e-9 {
			t.Errorf("hour %d: consumed %v exceeds budget %v", i, h.Consumed, budgets[i])
		}
		if h.ActiveTime < 0 || h.ActiveTime > sim.Cfg.Period+1e-9 {
			t.Errorf("hour %d: active time %v out of range", i, h.ActiveTime)
		}
		if !math.IsNaN(h.ExpectedAccuracy) && h.ExpectedAccuracy < 0 || h.ExpectedAccuracy > 1 {
			t.Errorf("hour %d: expected accuracy %v", i, h.ExpectedAccuracy)
		}
	}
	// Totals are sums.
	var consumed float64
	for _, h := range res.Hours {
		consumed += h.Consumed
	}
	if math.Abs(consumed-res.TotalConsumed()) > 1e-9 {
		t.Fatal("TotalConsumed mismatch")
	}
	if res.MeanObjective() < 0 || res.MeanExpectedAccuracy() < 0 {
		t.Fatal("negative aggregates")
	}
	// Empty run aggregates are zero.
	empty := &RunResult{}
	if empty.MeanObjective() != 0 || empty.MeanExpectedAccuracy() != 0 {
		t.Fatal("empty aggregates not zero")
	}
}

func TestOracleMatchesREAP(t *testing.T) {
	sim := defaultSim()
	budgets := []float64{0.5, 2, 4.5, 7, 9.9, 11}
	a, err := sim.Run(REAPPolicy{}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(OraclePolicy{}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Hours {
		if math.Abs(a.Hours[i].Objective-b.Hours[i].Objective) > 1e-9 {
			t.Fatalf("hour %d: simplex J %v != enumeration J %v",
				i, a.Hours[i].Objective, b.Hours[i].Objective)
		}
	}
}

func TestExecutionNoiseDeterministic(t *testing.T) {
	mk := func() *RunResult {
		sim := defaultSim()
		sim.ExecutionNoise = 0.05
		sim.Seed = 11
		res, err := sim.Run(StaticPolicy{Index: 0}, []float64{5, 5, 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	for i := range a.Hours {
		if a.Hours[i].Consumed != b.Hours[i].Consumed {
			t.Fatal("same seed produced different noise")
		}
	}
	// Noise actually perturbs.
	noiseless := defaultSim()
	c, err := noiseless.Run(StaticPolicy{Index: 0}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Hours {
		if math.Abs(a.Hours[i].Consumed-c.Hours[i].Consumed) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Fatal("execution noise had no effect")
	}
}

func TestRegionAnnotation(t *testing.T) {
	sim := defaultSim()
	res, err := sim.Run(REAPPolicy{}, []float64{0.05, 2, 6, 11})
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Region{core.RegionDead, core.Region1, core.Region2, core.Region3}
	for i, h := range res.Hours {
		if h.Region != want[i] {
			t.Errorf("hour %d: region %v, want %v", i, h.Region, want[i])
		}
	}
}
