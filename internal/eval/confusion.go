package eval

import (
	"fmt"

	"repro/internal/har"
	"repro/internal/synth"
)

// ConfusionResult reports where a design point's errors live: the class
// confusion matrix on the test split. It substantiates the calibration
// story behind Table 2 — the stretch-only DP5 must confuse the static
// postures (sit/stand/lie/drive) while keeping the dynamic classes, and
// the reduced-sensing points must lose transitions.
type ConfusionResult struct {
	Spec har.DesignPointSpec
	// Matrix[actual][predicted] holds test-split counts.
	Matrix [][]int
	// Accuracy is the overall test accuracy.
	Accuracy float64
}

// Confusion trains the spec and tabulates its test-split confusion.
func Confusion(ds *synth.Dataset, spec har.DesignPointSpec) (*ConfusionResult, error) {
	model, err := har.TrainModel(ds, spec)
	if err != nil {
		return nil, err
	}
	matrix := make([][]int, synth.NumActivities)
	for i := range matrix {
		matrix[i] = make([]int, synth.NumActivities)
	}
	correct := 0
	for _, i := range ds.Test {
		w := ds.Windows[i]
		pred, err := model.Classify(w)
		if err != nil {
			return nil, err
		}
		matrix[int(w.Activity)][int(pred)]++
		if pred == w.Activity {
			correct++
		}
	}
	return &ConfusionResult{
		Spec:     spec,
		Matrix:   matrix,
		Accuracy: float64(correct) / float64(len(ds.Test)),
	}, nil
}

// ClassRecall returns the per-class recall (diagonal over row sum); rows
// with no test samples report 0.
func (r *ConfusionResult) ClassRecall(a synth.Activity) float64 {
	row := r.Matrix[int(a)]
	total := 0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(row[int(a)]) / float64(total)
}

// MostConfused returns the off-diagonal cell with the largest count.
func (r *ConfusionResult) MostConfused() (actual, predicted synth.Activity, count int) {
	for i := range r.Matrix {
		for j, v := range r.Matrix[i] {
			if i != j && v > count {
				actual, predicted, count = synth.Activity(i), synth.Activity(j), v
			}
		}
	}
	return actual, predicted, count
}

// Render prints the matrix with class names.
func (r *ConfusionResult) Render() string {
	t := &table{header: []string{"actual\\pred"}}
	for _, a := range synth.Activities() {
		t.header = append(t.header, a.String())
	}
	t.header = append(t.header, "recall%")
	for _, a := range synth.Activities() {
		row := []string{a.String()}
		for _, p := range synth.Activities() {
			row = append(row, fmt.Sprintf("%d", r.Matrix[int(a)][int(p)]))
		}
		row = append(row, f1(100*r.ClassRecall(a)))
		t.add(row...)
	}
	return fmt.Sprintf("Confusion matrix (%s, test split, accuracy %.1f%%)\n",
		r.Spec.Name, 100*r.Accuracy) + t.String()
}
