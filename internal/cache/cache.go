// Package cache is the fleet-scale solve cache: a sharded, LRU-bounded,
// singleflight-deduplicated memo of LP solutions keyed by a backend
// tag, a canonical configuration fingerprint and a quantized energy
// budget.
//
// The REAP controller re-solves a small LP every activity period, and in
// a fleet thousands of devices with the same configuration and
// near-identical harvests solve the same LP concurrently. The cache
// collapses that work three ways:
//
//   - Quantization: budgets are snapped DOWN to a configurable resolution
//     (floor(budget/r)·r), so near-identical devices share one entry. A
//     cached allocation therefore never consumes more energy than the
//     caller's true budget — feasibility is structural, not checked —
//     and because the LP's optimal value is concave in the budget, the
//     objective loss is at most r · max_i wᵢ/(TP·(Pᵢ−Poff)).
//   - Singleflight: concurrent misses on the same key coalesce onto one
//     solve; the waiters share the leader's result.
//   - LRU bounding: each shard evicts least-recently-used entries past
//     its capacity, so the cache's footprint is fixed.
//
// A zero resolution disables quantization: budgets key by exact bit
// pattern, which keeps results bit-identical to the uncached path while
// still deduplicating exactly-equal solves.
package cache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Cache memoizes solve results. It is safe for concurrent use by any
// number of goroutines; a single Cache is meant to be shared by a whole
// fleet of controllers.
type Cache struct {
	resolution float64
	shards     []shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

// key identifies one cached solve: the backend tag (different solver
// backends must never serve each other's entries), the configuration
// fingerprint, and the quantized budget (the quantization step when
// resolution > 0, the raw float bits in exact mode).
type key struct{ tag, cfg, budget uint64 }

type entry struct {
	k     key
	alloc core.Allocation
}

// call is one in-flight solve that concurrent misses coalesce onto.
type call struct {
	done  chan struct{}
	alloc core.Allocation
	err   error
}

type shard struct {
	mu       sync.Mutex
	capacity int
	entries  map[key]*list.Element
	lru      list.List // front = most recently used
	inflight map[key]*call
}

// New creates a cache holding at most size entries (rounded up to shard
// granularity) with the given budget quantization resolution in joules.
// A zero resolution selects exact mode: no quantization, bit-identical
// results, dedup only for exactly equal budgets.
func New(size int, resolutionJ float64) (*Cache, error) {
	if size <= 0 {
		return nil, fmt.Errorf("cache: size %d must be positive", size)
	}
	if resolutionJ < 0 || math.IsNaN(resolutionJ) || math.IsInf(resolutionJ, 0) {
		return nil, fmt.Errorf("cache: resolution %v J must be finite and non-negative", resolutionJ)
	}
	// Small caches get one shard so LRU order (and tests) stay exact;
	// large ones spread lock contention across 16.
	nshards := 16
	if size < 4*nshards {
		nshards = 1
	}
	per := (size + nshards - 1) / nshards
	c := &Cache{resolution: resolutionJ, shards: make([]shard, nshards)}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].entries = make(map[key]*list.Element)
		c.shards[i].inflight = make(map[key]*call)
	}
	return c, nil
}

// Resolution returns the budget quantization resolution in joules (zero
// in exact mode).
func (c *Cache) Resolution() float64 { return c.resolution }

// maxExactStep bounds the quantization step that still converts to
// uint64 exactly; budgets beyond it (absurd for this problem) fall back
// to exact-bits keying.
const maxExactStep = 1 << 53

// quantize maps a non-negative budget onto its cache key component and
// the representative budget actually solved. Quantization rounds DOWN so
// the representative never exceeds the true budget.
func (c *Cache) quantize(budget float64) (uint64, float64) {
	if c.resolution <= 0 {
		return math.Float64bits(budget), budget
	}
	step := math.Floor(budget / c.resolution)
	if !(step >= 0 && step < maxExactStep) {
		return math.Float64bits(budget), budget
	}
	return uint64(step), step * c.resolution
}

func (c *Cache) shardFor(k key) *shard {
	h := k.tag ^ (k.cfg * 0x9e3779b97f4a7c15) ^ (k.budget * 0xff51afd7ed558ccd)
	h ^= h >> 33
	return &c.shards[h%uint64(len(c.shards))]
}

// Solve answers (tag, cfg, budget) from the cache, or computes it
// through next at the quantized representative budget and caches the
// result. tag names the backend identity: callers wrapping different
// solver backends over one cache MUST pass distinct tags, or the
// backends serve each other's allocations. Errors are never cached; a
// miss whose leader fails propagates the failure to its coalesced
// waiters, except that a leader's own cancellation makes still-live
// waiters re-solve directly rather than inherit an unrelated context
// error.
func (c *Cache) Solve(ctx context.Context, tag uint64, next core.SolveFunc, cfg core.Config, budget float64) (core.Allocation, error) {
	if math.IsNaN(budget) || budget < 0 {
		// Invalid budgets bypass the cache so the backend produces its
		// usual sentinel error.
		return next(ctx, cfg, budget)
	}
	kb, qBudget := c.quantize(budget)
	k := key{tag: tag, cfg: cfg.Fingerprint(), budget: kb}
	sh := c.shardFor(k)

	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		alloc := el.Value.(*entry).alloc
		sh.mu.Unlock()
		c.hits.Add(1)
		return cloneAllocation(alloc), nil
	}
	if cl, ok := sh.inflight[k]; ok {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-cl.done:
		case <-ctx.Done():
			return core.Allocation{}, ctx.Err()
		}
		if cl.err != nil {
			if ctx.Err() == nil && (errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded)) {
				return next(ctx, cfg, qBudget)
			}
			return core.Allocation{}, cl.err
		}
		return cloneAllocation(cl.alloc), nil
	}
	cl := &call{done: make(chan struct{})}
	sh.inflight[k] = cl
	sh.mu.Unlock()
	c.misses.Add(1)

	cl.alloc, cl.err = next(ctx, cfg, qBudget)

	sh.mu.Lock()
	delete(sh.inflight, k)
	if cl.err == nil {
		sh.insert(k, cl.alloc, &c.evictions)
	}
	sh.mu.Unlock()
	close(cl.done)
	if cl.err != nil {
		return core.Allocation{}, cl.err
	}
	return cloneAllocation(cl.alloc), nil
}

// SolveFunc wraps a backend as a cache-reading core.SolveFunc, the shape
// Controller.SetSolveFunc accepts. tag identifies the wrapped backend;
// wrappers of distinct backends need distinct tags.
func (c *Cache) SolveFunc(tag uint64, next core.SolveFunc) core.SolveFunc {
	return func(ctx context.Context, cfg core.Config, budget float64) (core.Allocation, error) {
		return c.Solve(ctx, tag, next, cfg, budget)
	}
}

// SolveInto is Solve writing the allocation into dst: a cache hit copies
// the stored entry into dst's existing Active capacity instead of
// cloning, so a warmed steady-state lookup allocates nothing. Misses,
// coalesced waits and invalid budgets take the Solve path and adopt its
// result. dst's previous contents are fully overwritten; on error dst is
// reset to the zero Allocation.
//
//reap:hotpath
func (c *Cache) SolveInto(ctx context.Context, tag uint64, next core.SolveFunc, cfg core.Config, budget float64, dst *core.Allocation) error {
	if !(budget >= 0) { // negative or NaN: the cold bypass below reports it
		return c.solveIntoCold(ctx, tag, next, cfg, budget, dst)
	}
	kb, _ := c.quantize(budget)
	k := key{tag: tag, cfg: cfg.Fingerprint(), budget: kb}
	sh := c.shardFor(k)

	sh.mu.Lock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		copyAllocation(dst, el.Value.(*entry).alloc)
		sh.mu.Unlock()
		c.hits.Add(1)
		return nil
	}
	sh.mu.Unlock()
	return c.solveIntoCold(ctx, tag, next, cfg, budget, dst)
}

// solveIntoCold is SolveInto's miss path: run the full Solve protocol
// (singleflight, insert, counters) and adopt its freshly cloned result.
func (c *Cache) solveIntoCold(ctx context.Context, tag uint64, next core.SolveFunc, cfg core.Config, budget float64, dst *core.Allocation) error {
	a, err := c.Solve(ctx, tag, next, cfg, budget)
	if err != nil {
		*dst = core.Allocation{}
		return err
	}
	*dst = a
	return nil
}

// insert adds a fresh entry and evicts past capacity. Caller holds sh.mu.
func (sh *shard) insert(k key, alloc core.Allocation, evictions *atomic.Uint64) {
	if el, ok := sh.entries[k]; ok {
		// Another leader raced us between delete(inflight) and insert;
		// keep the fresher value and the recency bump.
		sh.lru.MoveToFront(el)
		el.Value.(*entry).alloc = alloc
		return
	}
	sh.entries[k] = sh.lru.PushFront(&entry{k: k, alloc: alloc})
	for len(sh.entries) > sh.capacity {
		oldest := sh.lru.Back()
		if oldest == nil {
			break
		}
		sh.lru.Remove(oldest)
		delete(sh.entries, oldest.Value.(*entry).k)
		evictions.Add(1)
	}
}

// cloneAllocation deep-copies the Active slice so no two callers (and
// never the cache itself) share mutable state.
func cloneAllocation(a core.Allocation) core.Allocation {
	a.Active = append([]float64(nil), a.Active...)
	return a
}

// copyAllocation writes src into dst, reusing dst.Active's capacity so a
// warmed caller pays no allocation. Callers hold the shard lock, so src
// (a stored entry) cannot change mid-copy.
//
//reap:hotpath
func copyAllocation(dst *core.Allocation, src core.Allocation) {
	n := len(src.Active)
	if cap(dst.Active) < n {
		dst.Active = make([]float64, n) //lint:reapvet hotalloc -- one-time buffer growth, amortized to zero
	}
	dst.Active = dst.Active[:n]
	copy(dst.Active, src.Active)
	dst.Off, dst.Dead = src.Off, src.Dead
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits counts lookups answered from a stored entry.
	Hits uint64
	// Misses counts lookups that ran the underlying solver as leader.
	Misses uint64
	// Coalesced counts lookups that joined another caller's in-flight
	// solve instead of running their own (singleflight dedup).
	Coalesced uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Entries is the current number of stored solutions.
	Entries int
	// Capacity is the maximum number of stored solutions.
	Capacity int
}

// HitRate returns the fraction of lookups served without a fresh solve
// (hits plus coalesced over all lookups), or zero before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Stats snapshots the counters. The counters are read individually, so a
// snapshot taken under concurrent traffic is approximate.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		s.Capacity += sh.capacity
		sh.mu.Unlock()
	}
	return s
}
