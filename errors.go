package reap

import (
	"errors"

	"repro/internal/core"
)

// Sentinel errors of the public API. Every error the package returns
// wraps one of these, so callers branch with errors.Is rather than string
// matching:
//
//	alloc, err := solver.Solve(ctx, cfg, budget)
//	switch {
//	case errors.Is(err, reap.ErrBudgetNegative): // caller passed bad input
//	case errors.Is(err, reap.ErrInvalidConfig):  // options produced a bad Config
//	case errors.Is(err, reap.ErrInfeasible):     // no feasible schedule
//	}
var (
	// ErrInvalidConfig wraps every configuration failure: non-positive
	// period, negative alpha or off power, missing or malformed design
	// points, and inconsistent battery states.
	ErrInvalidConfig = core.ErrInvalidConfig
	// ErrBudgetNegative is returned when a solve, step or batch request
	// carries a negative or NaN energy value.
	ErrBudgetNegative = core.ErrBudgetNegative
	// ErrInfeasible is returned when the allocation LP has no feasible
	// solution; with a validated Config this signals numerical trouble,
	// not a modelling outcome.
	ErrInfeasible = core.ErrInfeasible
	// ErrSolverFailure is returned when the LP terminates without an
	// optimum for any reason other than infeasibility (unbounded,
	// iteration limit).
	ErrSolverFailure = core.ErrSolverFailure
	// ErrUnknownSolver is returned by LookupSolver, WithSolver and
	// SolveBatch when a backend name is not in the registry.
	ErrUnknownSolver = errors.New("reap: unknown solver backend")
)
