// adaptivealpha demonstrates the user-preference knob of Section 5.3: the
// same device, the same budgets, but the accuracy emphasis α changes at
// runtime ("If the user needs a higher accuracy, REAP can successfully
// adapt to new requirements"). A physician reviewing gait data in the
// afternoon asks for maximum accuracy; overnight the device reverts to
// maximum coverage.
package main

import (
	"fmt"

	"repro"
)

func main() {
	ctl, err := reap.New(reap.WithBattery(10, 50))
	if err != nil {
		panic(err)
	}

	// A stylized day of hourly harvests (J).
	type phase struct {
		name    string
		alpha   float64
		harvest []float64
	}
	day := []phase{
		{"morning (balanced, alpha=1)", 1, []float64{1.5, 3.0, 4.5, 6.0}},
		{"clinic visit (accuracy-first, alpha=8)", 8, []float64{7.0, 8.0, 7.5}},
		{"evening (coverage-first, alpha=0.5)", 0.5, []float64{4.0, 2.0, 0.8}},
	}

	for _, ph := range day {
		if err := ctl.SetAlpha(ph.alpha); err != nil {
			panic(err)
		}
		fmt.Printf("\n== %s\n", ph.name)
		for _, h := range ph.harvest {
			alloc, err := ctl.Step(h)
			if err != nil {
				panic(err)
			}
			cfg := ctl.Config()
			// The device executes the plan faithfully here; a real
			// deployment would report measured consumption.
			if err := ctl.Report(alloc.Energy(cfg)); err != nil {
				panic(err)
			}
			fmt.Printf("harvest %4.1f J -> %v  E{a} %.1f%%  active %3.0f%%  battery %5.1f J\n",
				h, alloc, 100*alloc.ExpectedAccuracy(cfg),
				100*alloc.ActiveTime()/cfg.Period, ctl.Battery())
		}
	}

	fmt.Println("\nNote how alpha=8 hours run the accurate DP1/DP2 even at the cost of")
	fmt.Println("off time, while alpha=0.5 hours stretch the cheap DP5 to stay on.")
}
