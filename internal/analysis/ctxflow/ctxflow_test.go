package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxflowLibrary(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/lib", "repro/internal/fixture")
}

// TestCtxflowCmd checks the cmd/ exemption: root contexts are legal in
// binaries, dropped context parameters are not.
func TestCtxflowCmd(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata/cmd", "repro/cmd/fixture")
}
