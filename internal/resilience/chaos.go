package resilience

import (
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig sizes deterministic fault injection. Probabilities are
// per request in [0, 1]; a zero config injects nothing. The same seed
// and request order reproduce the same fault sequence, which is what
// lets the chaos test suite assert exact outcomes.
type ChaosConfig struct {
	Seed int64
	// LatencyP injects Latency of extra handler time.
	LatencyP float64
	Latency  time.Duration
	// PanicP panics inside the handler chain — upstream recover
	// boundaries must convert it to a 500 with a stable code.
	PanicP float64
	// TearP hijacks the connection and closes it mid-exchange, the
	// server-side version of a client that vanished.
	TearP float64
	// StreamTearP cuts a long-lived stream (the replication feed) after
	// a random number of bytes — deliberately mid-frame, so readers
	// must prove their torn-frame resync. StreamTearBytes bounds where
	// the cut lands (default 64 KiB into the stream).
	StreamTearP     float64
	StreamTearBytes int
}

// enabled reports whether any fault has a chance of firing.
func (c ChaosConfig) enabled() bool {
	return c.LatencyP > 0 || c.PanicP > 0 || c.TearP > 0 || c.StreamTearP > 0
}

// Chaos is the fault-injecting middleware. It sits inside the recover
// boundary (panics it throws must be caught and answered like any
// handler bug) and outside the real handlers.
type Chaos struct {
	cfg ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	latencies   atomic.Uint64
	panics      atomic.Uint64
	tears       atomic.Uint64
	streamTears atomic.Uint64
}

// NewChaos builds a fault injector from cfg; a nil return means chaos
// is disabled and callers should skip the middleware entirely.
func NewChaos(cfg ChaosConfig) *Chaos {
	if !cfg.enabled() {
		return nil
	}
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected reports how many faults of each kind have fired.
func (c *Chaos) Injected() (latencies, panics, tears uint64) {
	return c.latencies.Load(), c.panics.Load(), c.tears.Load()
}

// StreamTears reports how many stream tears have fired.
func (c *Chaos) StreamTears() uint64 { return c.streamTears.Load() }

// ErrStreamTorn is the failure a chaos-torn stream writer reports once
// its byte budget is spent.
var ErrStreamTorn = errors.New("chaos: injected stream tear")

// WrapStream decides, per stream, whether to tear it: with probability
// StreamTearP the returned writer delivers a deterministic number of
// bytes — cutting whatever frame straddles the boundary — then fails
// every write. Otherwise w is returned untouched. The decision and the
// cut point come from the seeded rng, so a chaos run is reproducible.
func (c *Chaos) WrapStream(w io.Writer) io.Writer {
	if c.cfg.StreamTearP <= 0 {
		return w
	}
	c.mu.Lock()
	tear := c.rng.Float64() < c.cfg.StreamTearP
	limit := c.cfg.StreamTearBytes
	if limit <= 0 {
		limit = 64 << 10
	}
	// +1 so the budget is never zero: at least one byte flows, meaning
	// the cut is always observed as a torn frame, not a dead stream.
	budget := c.rng.Intn(limit) + 1
	c.mu.Unlock()
	if !tear {
		return w
	}
	c.streamTears.Add(1)
	return &tornStreamWriter{w: w, left: budget}
}

// tornStreamWriter delivers its budget of bytes, short-writing the
// straddling frame, then fails permanently.
type tornStreamWriter struct {
	w    io.Writer
	left int
}

func (t *tornStreamWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, ErrStreamTorn
	}
	if len(p) <= t.left {
		n, err := t.w.Write(p)
		t.left -= n
		return n, err
	}
	n, err := t.w.Write(p[:t.left])
	t.left -= n
	if err != nil {
		return n, err
	}
	return n, ErrStreamTorn
}

// roll draws the three fault decisions for one request under the lock,
// so concurrent requests see a deterministic *sequence* of decisions
// even though their assignment to requests depends on arrival order.
func (c *Chaos) roll() (latency, panics, tear bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	latency = c.cfg.LatencyP > 0 && c.rng.Float64() < c.cfg.LatencyP
	panics = c.cfg.PanicP > 0 && c.rng.Float64() < c.cfg.PanicP
	tear = c.cfg.TearP > 0 && c.rng.Float64() < c.cfg.TearP
	return
}

// Middleware wraps next with fault injection.
func (c *Chaos) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		latency, panics, tear := c.roll()
		if latency {
			c.latencies.Add(1)
			time.Sleep(c.cfg.Latency)
		}
		if tear {
			if hj, ok := w.(http.Hijacker); ok {
				c.tears.Add(1)
				if conn, _, err := hj.Hijack(); err == nil {
					_ = conn.Close()
				}
				return
			}
			// Recorders and other non-hijackable writers: fall through,
			// the fault cannot be modelled on this transport.
		}
		if panics {
			c.panics.Add(1)
			panic("chaos: injected handler panic")
		}
		next.ServeHTTP(w, r)
	})
}
