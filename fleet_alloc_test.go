package reap

import (
	"context"
	"testing"
)

// Steady-state fleet ticks are //reap:hotpath: with the per-tick scratch
// hoisted into the Fleet and a single worker, a warmed tick must not
// allocate — on the uncached plan path and on the cache-hit path alike.

func fleetTickAllocs(t *testing.T, opts ...Option) float64 {
	t.Helper()
	const n = 8
	f, err := NewFleet(n, append([]Option{WithWorkers(1)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	budgets := make([]float64, n)
	for i := range budgets {
		budgets[i] = 1.0
	}
	allocs := make([]Allocation, n)
	// Warm: populate cache entries and grow every Active buffer.
	for i := 0; i < 3; i++ {
		if err := f.stepAllInto(ctx, budgets, allocs); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(100, func() {
		if err := f.stepAllInto(ctx, budgets, allocs); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFleetTickZeroAllocsPlanPath(t *testing.T) {
	if allocs := fleetTickAllocs(t); allocs != 0 {
		t.Fatalf("default plan-path fleet tick allocated %v times per run, want 0", allocs)
	}
}

func TestFleetTickZeroAllocsCacheHitPath(t *testing.T) {
	if allocs := fleetTickAllocs(t, WithSolveCache(DefaultCacheSize, DefaultCacheResolution)); allocs != 0 {
		t.Fatalf("cache-hit fleet tick allocated %v times per run, want 0", allocs)
	}
}
