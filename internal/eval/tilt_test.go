package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTiltExperiment(t *testing.T) {
	res, err := Tilt(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byMonth := map[int]TiltRow{}
	for _, row := range res.Rows {
		byMonth[row.Month] = row
		if row.FlatJ <= 0 || row.TiltedJ <= 0 {
			t.Errorf("month %d: degenerate harvests", row.Month)
		}
	}
	dec, jun := byMonth[12], byMonth[6]
	// Winter: the tilt pays off strongly, and the extra harvest must
	// translate into accuracy.
	if dec.HarvestGain < 1.15 {
		t.Errorf("December tilt gain %v, want >= 1.15", dec.HarvestGain)
	}
	if dec.TiltedAcc <= dec.FlatAcc {
		t.Errorf("December tilted accuracy %v not above flat %v", dec.TiltedAcc, dec.FlatAcc)
	}
	// Summer: the tilt gain must be much smaller than winter's (the high
	// sun favours the horizontal).
	if jun.HarvestGain >= dec.HarvestGain {
		t.Errorf("June gain %v not below December %v", jun.HarvestGain, dec.HarvestGain)
	}
	if !strings.Contains(res.Render(), "tilt") {
		t.Error("render incomplete")
	}
	if _, err := Tilt(core.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
