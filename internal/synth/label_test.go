package synth

import "testing"

// NextLabel must be a drop-in for the labels Next produces: deterministic
// for a seed, valid labels, bouts inside the dwell-time range, and a
// single Transition between consecutive bouts.
func TestNextLabelDeterministic(t *testing.T) {
	u := NewUserProfile(0, 7)
	a, err := NewTimeline(u, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTimeline(u, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if la, lb := a.NextLabel(), b.NextLabel(); la != lb {
			t.Fatalf("window %d: %v != %v for the same seed", i, la, lb)
		}
	}
}

func TestNextLabelBoutStructure(t *testing.T) {
	u := NewUserProfile(1, 7)
	tl, err := NewTimeline(u, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	boutLen := 0
	var prev Activity = -1
	for i := 0; i < 50_000; i++ {
		l := tl.NextLabel()
		if l < 0 || l >= NumActivities {
			t.Fatalf("window %d: invalid label %d", i, l)
		}
		if l == Transition {
			if prev == Transition {
				t.Fatalf("window %d: back-to-back transitions", i)
			}
			// A bout just ended: its dwell time must be in range. The
			// first observed bout can be truncated by the start.
			if prev != -1 && boutLen > maxBout {
				t.Fatalf("window %d: bout of %d windows exceeds %d", i, boutLen, maxBout)
			}
			boutLen = 0
		} else {
			boutLen++
		}
		prev = l
	}
}

func TestNextLabelMatchesNextWindows(t *testing.T) {
	// Next must report the same label NextLabel computed for the window.
	u := NewUserProfile(2, 7)
	tl, err := NewTimeline(u, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w := tl.Next()
		if w.Activity < 0 || w.Activity >= NumActivities {
			t.Fatalf("window %d: invalid activity %d", i, w.Activity)
		}
	}
}

func TestNextLabelAdvancesHour(t *testing.T) {
	u := NewUserProfile(3, 7)
	tl, err := NewTimeline(u, 23, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < WindowsPerHour; i++ {
		tl.NextLabel()
	}
	if got := tl.Hour(); got != 0 {
		t.Fatalf("hour after one hour of windows = %d, want wrap to 0", got)
	}
}
