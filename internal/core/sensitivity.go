package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// ShadowPrice returns ∂J*/∂Eb, the marginal objective gain per additional
// joule of budget, read from the dual of the energy constraint. It is the
// signal a harvesting runtime can use to value energy: in Region 1 it
// equals aᵢ^α/(TP·(Pᵢ−P_off)) for the marginal design point, it steps down
// at each design-point saturation, and it reaches zero once DP1 runs the
// whole period.
//
// Budgets in the dead region (below the idle floor) have price zero: an
// extra joule only extends idle time. Degenerate budgets exactly at a
// region boundary return the right-side price.
func ShadowPrice(c Config, budget float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if math.IsNaN(budget) || budget < 0 {
		return 0, fmt.Errorf("%w: budget %v", ErrBudgetNegative, budget)
	}
	if budget < c.MinBudget() {
		return 0, nil
	}
	if budget >= c.MaxUsefulBudget() {
		return 0, nil
	}

	n := len(c.DPs)
	obj := make([]float64, n+1)
	timeRow := make([]float64, n+1)
	energyRow := make([]float64, n+1)
	for i := 0; i < n; i++ {
		obj[i] = c.weight(i) / c.Period
		timeRow[i] = 1
		energyRow[i] = c.DPs[i].Power
	}
	timeRow[n] = 1
	energyRow[n] = c.POff

	p := &lp.Problem{
		Objective: obj,
		Constraints: []lp.Constraint{
			{Coeffs: timeRow, Op: lp.EQ, RHS: c.Period},
			{Coeffs: energyRow, Op: lp.LE, RHS: budget},
		},
	}
	sol, duals, err := lp.SolveWithDuals(p)
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("%w: shadow price solve terminated with %v", ErrSolverFailure, sol.Status)
	}
	price := duals[1]
	if math.IsNaN(price) || price < 0 {
		price = 0
	}
	return price, nil
}
