// Quickstart: solve one hour's energy-accuracy allocation with the
// public API, using the paper's five Table 2 design points, and see how
// the optimal schedule changes across the three operating regions.
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	cfg, err := reap.NewConfig() // the paper's defaults; compose WithAlpha etc. to change them
	if err != nil {
		panic(err)
	}
	// The default backend is "plan" — the compiled parametric solver;
	// reap.SolverSimplex pins the paper's Algorithm 1 instead.
	solver, err := reap.LookupSolver(reap.DefaultSolver)
	if err != nil {
		panic(err)
	}
	fmt.Printf("registered solver backends: %v\n\n", reap.Solvers())

	fmt.Println("REAP quickstart: the paper's five design points")
	for _, dp := range cfg.DPs {
		fmt.Printf("  %-4s accuracy %.0f%%  power %.2f mW (%.2f J/hour)\n",
			dp.Name, 100*dp.Accuracy, 1e3*dp.Power, dp.EnergyPerPeriod(cfg.Period))
	}
	fmt.Printf("off-state floor %.2f J/hour\n\n", cfg.MinBudget())

	// The paper's running example: a 5 J hourly budget lands in Region 2,
	// and the optimum mixes DP4 (42%) with DP5 (58%).
	for _, budget := range []float64{0.5, 2.0, 5.0, 8.0, 10.5} {
		alloc, err := solver.Solve(ctx, cfg, budget)
		if err != nil {
			panic(err)
		}
		fmt.Printf("budget %5.1f J  [%s]\n", budget, reap.Classify(cfg, budget))
		fmt.Printf("  schedule          %v\n", alloc)
		fmt.Printf("  expected accuracy %.1f%%\n", 100*alloc.ExpectedAccuracy(cfg))
		fmt.Printf("  active time       %.0f%% of the hour\n", 100*alloc.ActiveTime()/cfg.Period)

		// Compare with the best single design point at this budget.
		bestJ, best := 0.0, 0
		for i := range cfg.DPs {
			if j := reap.StaticObjective(cfg, i, budget); j > bestJ {
				bestJ, best = j, i
			}
		}
		fmt.Printf("  best static DP    %s with J=%.3f (REAP: %.3f)\n\n",
			cfg.DPs[best].Name, bestJ, alloc.Objective(cfg))
	}
}
