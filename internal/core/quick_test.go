package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConfig derives a valid random configuration from a seed.
func randomConfig(seed int64) (Config, float64) {
	rng := rand.New(rand.NewSource(seed))
	c := Config{
		Period: 600 + rng.Float64()*7200,
		POff:   rng.Float64() * 2e-4,
		Alpha:  []float64{0, 0.5, 1, 2, 4, 8}[rng.Intn(6)],
	}
	n := 2 + rng.Intn(6)
	for i := 0; i < n; i++ {
		c.DPs = append(c.DPs, DesignPoint{
			Name:     "dp",
			Accuracy: 0.2 + rng.Float64()*0.8,
			Power:    c.POff + 1e-4 + rng.Float64()*4e-3,
		})
	}
	budget := rng.Float64() * c.MaxUsefulBudget() * 1.3
	return c, budget
}

func TestQuickAllocationInvariants(t *testing.T) {
	// For every valid configuration and budget, the solver's output
	// satisfies the LP's constraints and basic physics.
	f := func(seed int64) bool {
		c, budget := randomConfig(seed)
		a, err := Solve(c, budget)
		if err != nil {
			return false
		}
		// Time identity.
		if math.Abs(a.Total()-c.Period) > 1e-5 {
			return false
		}
		// Non-negativity.
		for _, v := range a.Active {
			if v < 0 {
				return false
			}
		}
		if a.Off < 0 || a.Dead < 0 {
			return false
		}
		// Budget respected.
		if a.Energy(c) > budget+1e-6 {
			return false
		}
		// Expected accuracy bounded by the best design point.
		best := 0.0
		for _, d := range c.DPs {
			if d.Accuracy > best {
				best = d.Accuracy
			}
		}
		if a.ExpectedAccuracy(c) > best+1e-9 {
			return false
		}
		// Objective is non-negative.
		return a.Objective(c) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMoreBudgetNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		c, budget := randomConfig(seed)
		a1, err := Solve(c, budget)
		if err != nil {
			return false
		}
		a2, err := Solve(c, budget*1.2+0.01)
		if err != nil {
			return false
		}
		return a2.Objective(c) >= a1.Objective(c)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickREAPWeaklyDominatesEveryStatic(t *testing.T) {
	f := func(seed int64) bool {
		c, budget := randomConfig(seed)
		a, err := Solve(c, budget)
		if err != nil {
			return false
		}
		reapJ := a.Objective(c)
		for i := range c.DPs {
			if StaticObjective(c, i, budget) > reapJ+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShadowPriceIsLocalSlope(t *testing.T) {
	// Wherever the price is defined and the budget is interior to its
	// regime, a small budget increase raises J by ~price x delta.
	f := func(seed int64) bool {
		c, budget := randomConfig(seed)
		if budget <= c.MinBudget()*1.1 || budget >= c.MaxUsefulBudget()*0.95 {
			return true // skip boundary regimes
		}
		lo, hi, err := BudgetRange(c, budget)
		if err != nil {
			return false
		}
		// Stay strictly inside the stable interval.
		h := math.Min(budget-lo, hi-budget) / 4
		if h <= 1e-9 {
			return true // degenerate at a boundary
		}
		price, err := ShadowPrice(c, budget)
		if err != nil {
			return false
		}
		a1, err := Solve(c, budget)
		if err != nil {
			return false
		}
		a2, err := Solve(c, budget+h)
		if err != nil {
			return false
		}
		gain := a2.Objective(c) - a1.Objective(c)
		return math.Abs(gain-price*h) <= 1e-6*(1+math.Abs(gain))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParetoFrontIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		var dps []DesignPoint
		for i := 0; i < n; i++ {
			dps = append(dps, DesignPoint{
				Accuracy: rng.Float64(),
				Power:    0.1 + rng.Float64(),
			})
		}
		once := ParetoFront(dps)
		twice := ParetoFront(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLookaheadNeverWorseThanMyopic(t *testing.T) {
	// With a generous battery, joint planning can only improve on the
	// greedy hour-by-hour path (it can always reproduce it).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := DefaultConfig()
		k := 2 + rng.Intn(4)
		forecast := make([]float64, k)
		for i := range forecast {
			forecast[i] = rng.Float64() * 12
		}
		plan, err := Lookahead(c, 0, 1e6, forecast)
		if err != nil {
			return false
		}
		// Myopic replay with the same (infinite) battery.
		battery := 0.0
		var myopicJ float64
		for _, h := range forecast {
			a, err := Solve(c, battery+h)
			if err != nil {
				return false
			}
			battery = math.Max(0, battery+h-a.Energy(c))
			myopicJ += a.Objective(c)
		}
		myopicJ /= float64(k)
		return plan.Objective >= myopicJ-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
