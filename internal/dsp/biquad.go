package dsp

import (
	"fmt"
	"math"

	"repro/internal/fpx"
)

// Biquad is a second-order IIR filter section (direct form I). Sensor
// pipelines on MCU-class devices run one of these in front of the feature
// bank: a low-pass around 20 Hz removes high-frequency vibration and
// aliasing products from the 100 Hz accelerometer stream without the cost
// of a long FIR.
type Biquad struct {
	B0, B1, B2 float64 // feed-forward
	A1, A2     float64 // feedback (a0 normalized to 1)
}

// LowPass designs a Butterworth-Q low-pass biquad with the given cutoff
// (Hz) at the given sample rate using the bilinear transform (RBJ audio
// cookbook form).
func LowPass(cutoffHz, sampleRateHz float64) (*Biquad, error) {
	if sampleRateHz <= 0 || math.IsNaN(sampleRateHz) {
		return nil, fmt.Errorf("dsp: sample rate %v must be positive", sampleRateHz)
	}
	if cutoffHz <= 0 || cutoffHz >= sampleRateHz/2 {
		return nil, fmt.Errorf("dsp: cutoff %v Hz outside (0, Nyquist %v)", cutoffHz, sampleRateHz/2)
	}
	w0 := 2 * math.Pi * cutoffHz / sampleRateHz
	const q = math.Sqrt2 / 2 // Butterworth
	alpha := math.Sin(w0) / (2 * q)
	cosw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		B0: (1 - cosw) / 2 / a0,
		B1: (1 - cosw) / a0,
		B2: (1 - cosw) / 2 / a0,
		A1: -2 * cosw / a0,
		A2: (1 - alpha) / a0,
	}, nil
}

// Filter applies the section to x and returns a new slice (zero initial
// state).
func (f *Biquad) Filter(x []float64) []float64 {
	out := make([]float64, len(x))
	var x1, x2, y1, y2 float64
	for i, v := range x {
		y := f.B0*v + f.B1*x1 + f.B2*x2 - f.A1*y1 - f.A2*y2
		x2, x1 = x1, v
		y2, y1 = y1, y
		out[i] = y
	}
	return out
}

// Response returns the filter's magnitude response at the given frequency
// (Hz) for the given sample rate: |H(e^{jω})|.
func (f *Biquad) Response(freqHz, sampleRateHz float64) float64 {
	w := 2 * math.Pi * freqHz / sampleRateHz
	// Evaluate H(z) at z = e^{jw}.
	cos1, sin1 := math.Cos(w), math.Sin(w)
	cos2, sin2 := math.Cos(2*w), math.Sin(2*w)
	numRe := f.B0 + f.B1*cos1 + f.B2*cos2
	numIm := -f.B1*sin1 - f.B2*sin2
	denRe := 1 + f.A1*cos1 + f.A2*cos2
	denIm := -f.A1*sin1 - f.A2*sin2
	num := math.Hypot(numRe, numIm)
	den := math.Hypot(denRe, denIm)
	if fpx.Zero(den) {
		return math.Inf(1)
	}
	return num / den
}
