package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/wire"
)

// TestTelemetryDisconnectMidStream opens real TCP telemetry streams and
// vanishes mid-line, the way battery-powered clients do: each stream
// carries one complete event and then a partial trailing line cut off
// by an abrupt close. The contract: the complete event is processed
// (steps counter moves), the partial line is never half-parsed (no
// extra step, no malformed-event error), and every handler goroutine
// winds down — an abandoned stream may not pin a goroutine.
//
// The responses are deliberately not read: Go's HTTP/1 server drains an
// unconsumed request body before flushing response headers, so a
// client that both streams and reads would deadlock against a test
// that controls one socket. The observable effects — counters and
// goroutine count — are the contract here; response framing per event
// is covered by TestTelemetryStream and the handler-level test below.
func TestTelemetryDisconnectMidStream(t *testing.T) {
	svc := newTestService(t, Config{Devices: 8, BatteryJ: 20, CapacityJ: 100})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	baseline := runtime.NumGoroutine()

	const streams = 5
	for i := 0; i < streams; i++ {
		conn, err := net.Dial("tcp", strings.TrimPrefix(srv.URL, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "POST /v1/telemetry HTTP/1.1\r\nHost: reapd-test\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\n\r\n")
		writeChunk := func(s string) {
			if _, err := fmt.Fprintf(conn, "%x\r\n%s\r\n", len(s), s); err != nil {
				t.Fatalf("stream %d: writing chunk: %v", i, err)
			}
		}
		writeChunk(fmt.Sprintf(`{"v":%d,"device":%d,"harvest_j":1.5}`+"\n", wire.Version, i))
		writeChunk(fmt.Sprintf(`{"v":%d,"device":%d,"harv`, wire.Version, i)) // the line the client died on
		_ = conn.Close()
	}

	// Every complete event stepped its device; no partial line did.
	waitFor(t, 10*time.Second, func() bool { return svc.Stats().Steps == streams }, func() string {
		return fmt.Sprintf("steps = %d, want %d (complete events only)", svc.Stats().Steps, streams)
	})

	// The handler goroutines must exit once their readers fail.
	waitFor(t, 10*time.Second, func() bool { return runtime.NumGoroutine() <= baseline+2 }, func() string {
		return fmt.Sprintf("goroutines = %d, baseline %d — telemetry handlers leaked", runtime.NumGoroutine(), baseline)
	})
}

// TestTelemetryPartialLineAnsweredPrefix is the handler-level view of
// the same disconnect, where the response stream is observable: the
// complete events are each answered, and the partial trailing line
// produces no result line at all — dropped, not misparsed as an event.
func TestTelemetryPartialLineAnsweredPrefix(t *testing.T) {
	svc := newTestService(t, Config{Devices: 8, BatteryJ: 20, CapacityJ: 100})
	h := svc.Handler()

	pr, pw := io.Pipe()
	w := newLineWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/telemetry", pr))
	}()

	harvest := 2.0
	for _, device := range []int{0, 5} {
		raw := mustMarshal(t, &wire.TelemetryEvent{V: wire.Version, Device: device, HarvestJ: &harvest})
		if _, err := pw.Write(append(raw, '\n')); err != nil {
			t.Fatal(err)
		}
		select {
		case line := <-w.lines:
			var res wire.TelemetryResult
			if err := json.Unmarshal([]byte(line), &res); err != nil {
				t.Fatalf("decoding %q: %v", line, err)
			}
			if res.Device != device || res.Error != nil || res.Allocation == nil {
				t.Fatalf("device %d answered %+v", device, res)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("no result for device %d", device)
		}
	}

	// Half a line, then the connection dies.
	if _, err := pw.Write([]byte(`{"v":1,"device":3,"harv`)); err != nil {
		t.Fatal(err)
	}
	pw.CloseWithError(fmt.Errorf("client vanished"))

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after the body failed")
	}
	select {
	case line := <-w.lines:
		t.Fatalf("partial trailing line produced a result: %s", line)
	default:
	}
	if got := svc.Stats().Steps; got != 2 {
		t.Errorf("steps = %d, want 2 — the partial line must not have stepped device 3", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg func() string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg())
}
