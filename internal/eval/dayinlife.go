package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/har"
	"repro/internal/solar"
	"repro/internal/synth"
)

// DayHour is one hour of the day-in-the-life experiment.
type DayHour struct {
	Hour             int
	HarvestJ         float64
	ExpectedAccuracy float64
	RealizedAccuracy float64
	WindowsSeen      int
	WindowsCorrect   int
	WindowsMissed    int
}

// DayInLifeResult replays a realistic day: a subject lives through the
// synthetic activity timeline (sleep, commute, desk work, exercise) while
// the device runs REAP against the day's solar budgets and classifies the
// actual stream with the trained design-point classifiers. It closes the
// loop between the LP's *expected* accuracy (computed from test-split
// accuracies) and the accuracy *realized* on a lifelike, highly
// non-uniform activity mix.
type DayInLifeResult struct {
	Hours []DayHour
	// DayExpected and DayRealized aggregate over active windows.
	DayExpected, DayRealized float64
	// Coverage is the fraction of the day's windows the device observed.
	Coverage float64
}

// DayInLife runs the experiment: models must be index-aligned with
// cfg.DPs (as produced by har.Characterize + har.CoreConfig).
func DayInLife(cfg core.Config, models []*har.Model, user synth.UserProfile,
	dayBudget []float64, seed int64) (*DayInLifeResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(models) != len(cfg.DPs) {
		return nil, fmt.Errorf("eval: %d models for %d design points", len(models), len(cfg.DPs))
	}
	if len(dayBudget) != 24 {
		return nil, fmt.Errorf("eval: day budget has %d hours, want 24", len(dayBudget))
	}
	tl, err := synth.NewTimeline(user, 0, seed)
	if err != nil {
		return nil, err
	}
	// Sampling: classifying all 2250 windows per hour is exact but slow;
	// a fixed stride keeps the run fast while following the timeline.
	const stride = 10
	rng := rand.New(rand.NewSource(seed + 1))

	res := &DayInLifeResult{}
	var sumExpected float64
	var activeHours int
	totalSeen, totalWindows, totalCorrect := 0, 0, 0
	for hour := 0; hour < 24; hour++ {
		alloc, err := core.Solve(cfg, dayBudget[hour])
		if err != nil {
			return nil, err
		}
		h := DayHour{
			Hour:             hour,
			HarvestJ:         dayBudget[hour],
			ExpectedAccuracy: alloc.ExpectedAccuracy(cfg),
		}
		// Walk the hour's windows; the device observes a window when some
		// design point is scheduled "now". Allocation order within the
		// hour is immaterial to the LP, so the schedule is realized by
		// drawing the design point per observed window proportionally.
		activeFrac := alloc.ActiveTime() / cfg.Period
		for w := 0; w < synth.WindowsPerHour; w++ {
			win := tl.Next()
			totalWindows++
			if w%stride != 0 {
				// Unclassified stride windows still advance the timeline.
				continue
			}
			if rng.Float64() >= activeFrac {
				h.WindowsMissed++
				continue
			}
			// Pick the design point proportional to its share.
			r := rng.Float64() * activeFrac
			dp := -1
			acc := 0.0
			for i, t := range alloc.Active {
				acc += t / cfg.Period
				if r < acc {
					dp = i
					break
				}
			}
			if dp < 0 {
				h.WindowsMissed++
				continue
			}
			pred, err := models[dp].Classify(win)
			if err != nil {
				return nil, err
			}
			h.WindowsSeen++
			totalSeen++
			if pred == win.Activity {
				h.WindowsCorrect++
				totalCorrect++
			}
		}
		if h.WindowsSeen > 0 {
			h.RealizedAccuracy = float64(h.WindowsCorrect) / float64(h.WindowsSeen)
			sumExpected += h.ExpectedAccuracy
			activeHours++
		}
		res.Hours = append(res.Hours, h)
	}
	if totalSeen > 0 {
		res.DayRealized = float64(totalCorrect) / float64(totalSeen)
	}
	if activeHours > 0 {
		res.DayExpected = sumExpected / float64(activeHours)
	}
	sampled := totalWindows / stride
	if sampled > 0 {
		res.Coverage = float64(totalSeen) / float64(sampled)
	}
	return res, nil
}

// Render prints the hour-by-hour day.
func (r *DayInLifeResult) Render() string {
	t := &table{header: []string{"hour", "harvest(J)", "expected%", "realized%", "seen", "missed"}}
	for _, h := range r.Hours {
		t.add(fmt.Sprintf("%d", h.Hour), f2(h.HarvestJ),
			f1(100*h.ExpectedAccuracy), f1(100*h.RealizedAccuracy),
			fmt.Sprintf("%d", h.WindowsSeen), fmt.Sprintf("%d", h.WindowsMissed))
	}
	return fmt.Sprintf(
		"Day in the life: realized %.1f%% on the live stream (coverage %.0f%%)\n",
		100*r.DayRealized, 100*r.Coverage) + t.String()
}

// SolarDayBudget extracts day d (1-based) of the September trace as a
// 24-hour budget vector.
func SolarDayBudget(d int) ([]float64, error) {
	tr, err := solar.September2015()
	if err != nil {
		return nil, err
	}
	return tr.Day(d)
}
