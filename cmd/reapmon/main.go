// Command reapmon simulates a live REAP device and streams its hourly
// decisions: harvest, budget, chosen design-point mix, battery level,
// expected accuracy and the marginal value of energy (the LP's shadow
// price). It is the observability surface a developer would attach to a
// real deployment.
//
// Usage:
//
//	reapmon [-days 3] [-month 9] [-year 2015] [-alpha 1] [-battery 20]
//	        [-capacity 100] [-noise 0.03] [-solver plan] [-lookahead]
//	        [-cache] [-cachesize 4096] [-cacheres 0.001]
//
// With -cache the controller's solves go through a solve cache (the same
// subsystem fleets share; see reap.WithSolveCache) and the final line
// reports its statistics — hits, misses, singleflight-coalesced lookups,
// evictions and hit rate. -solver picks the hourly optimizer backend
// (default plan, the compiled parametric solver). The -lookahead planner
// bypasses the hourly solver entirely, so neither -solver nor the cache
// applies there.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/forecast"
	"repro/internal/solar"
)

func main() {
	log.SetFlags(0)
	days := flag.Int("days", 3, "days to simulate")
	month := flag.Int("month", 9, "month of the solar trace")
	year := flag.Int("year", 2015, "year (weather seed)")
	alpha := flag.Float64("alpha", 1, "accuracy emphasis")
	battery := flag.Float64("battery", 20, "initial battery charge, J")
	capacity := flag.Float64("capacity", 100, "battery capacity, J")
	noise := flag.Float64("noise", 0.03, "execution noise (relative std)")
	solverName := flag.String("solver", reap.DefaultSolver,
		"optimizer backend: "+strings.Join(reap.Solvers(), ", "))
	lookahead := flag.Bool("lookahead", false, "use the 24h receding-horizon planner instead of myopic REAP")
	useCache := flag.Bool("cache", false, "route solves through a solve cache and report its stats")
	cacheSize := flag.Int("cachesize", 4096, "solve cache capacity in entries")
	cacheRes := flag.Float64("cacheres", 0.001, "budget quantization resolution in J (0 = exact)")
	flag.Parse()

	tr, err := solar.MonthlyTrace(*month, *year, solar.DefaultCell())
	if err != nil {
		log.Fatal(err)
	}
	hours := *days * 24
	if hours > len(tr.Hours) {
		hours = len(tr.Hours)
	}
	harvest := tr.Hours[:hours]

	cfg, err := reap.NewConfig(reap.WithAlpha(*alpha))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-5s %-9s %-9s %-22s %-9s %-7s %-10s\n",
		"hour", "harvest", "budget", "schedule", "E{a}%", "batt", "dJ/dE(1/J)")

	if *lookahead {
		ew, err := forecast.NewEWMA(0.5)
		if err != nil {
			log.Fatal(err)
		}
		rh := &device.RecedingHorizon{
			Cfg: cfg, CapacityJ: *capacity, BatteryJ: *battery,
			Horizon: 24, Forecast: ew,
		}
		res, err := rh.Run(harvest)
		if err != nil {
			log.Fatal(err)
		}
		for i, h := range res.Hours {
			printHour(cfg, i, harvest[i], h.Budget, h.Alloc, -1)
		}
		fmt.Printf("\nmean E{a} %.3f over %d hours (receding-horizon planner)\n",
			res.MeanExpectedAccuracy(), len(res.Hours))
		return
	}

	opts := []reap.Option{reap.WithConfig(cfg), reap.WithBattery(*battery, *capacity),
		reap.WithSolver(*solverName)}
	var sc *reap.SolveCache
	if *useCache {
		sc, err = reap.NewSolveCache(*cacheSize, *cacheRes)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, reap.WithSharedSolveCache(sc))
	}
	ctl, err := reap.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	cl := &device.ClosedLoop{Controller: ctl, ExecutionNoise: *noise, Seed: 1}
	outs, err := cl.Run(harvest)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for i, o := range outs {
		printHour(cfg, i, harvest[i], o.Budget, o.Alloc, o.Battery)
		sum += o.ExpectedAccuracy
	}
	fmt.Printf("\nmean E{a} %.3f over %d hours, final battery %.1f J\n",
		sum/float64(len(outs)), len(outs), ctl.Battery())
	if sc != nil {
		s := sc.Stats()
		fmt.Printf("solve cache: %d hits, %d misses, %d coalesced, %d evictions "+
			"(%.1f%% served without a fresh solve, %d/%d entries, %g J resolution)\n",
			s.Hits, s.Misses, s.Coalesced, s.Evictions,
			100*s.HitRate(), s.Entries, s.Capacity, sc.Resolution())
	}
}

func printHour(cfg core.Config, i int, harvest, budget float64, alloc core.Allocation, battery float64) {
	price, err := core.ShadowPrice(cfg, budget)
	priceStr := "-"
	if err == nil {
		priceStr = fmt.Sprintf("%.5f", price)
	}
	battStr := "-"
	if battery >= 0 {
		battStr = fmt.Sprintf("%.1f", battery)
	}
	fmt.Printf("%02d:00 %-9.2f %-9.2f %-22s %-9.1f %-7s %-10s\n",
		i%24, harvest, budget, alloc.String(),
		100*alloc.ExpectedAccuracy(cfg), battStr, priceStr)
}
