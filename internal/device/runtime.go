package device

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/har"
	"repro/internal/synth"
)

// ClosedLoop couples the REAP controller (with its battery and energy-
// accounting feedback) to the simulator, and optionally validates the
// planned expected accuracy by pushing real synthetic sensor windows
// through the trained design-point classifiers.
type ClosedLoop struct {
	// Controller owns the configuration, battery and carry accounting.
	Controller *core.Controller
	// Models, when non-nil, provides the trained classifier for each
	// design point (index-aligned with the configuration's DPs) so hours
	// can be validated sample-by-sample.
	Models []*har.Model
	// Users supplies subjects for realized-accuracy validation.
	Users []synth.UserProfile
	// WindowsPerHour is how many windows are classified per active DP
	// per hour during validation (sampling keeps month-scale runs fast;
	// a real hour holds 2250 windows).
	WindowsPerHour int
	// ExecutionNoise perturbs consumption as in Simulator.
	ExecutionNoise float64
	// Seed drives sampling and noise.
	Seed int64
}

// HourOutcome extends HourRecord with realized (measured) accuracy.
type HourOutcome struct {
	HourRecord
	// RealizedAccuracy is the fraction of classified sample windows that
	// were correct, weighted by DP usage; NaN-free: hours with no active
	// time report 0.
	RealizedAccuracy float64
	// Battery is the controller's battery level after the hour.
	Battery float64
}

// Run simulates the closed loop over an hourly harvest sequence (J).
func (cl *ClosedLoop) Run(harvest []float64) ([]HourOutcome, error) {
	if cl.Controller == nil {
		return nil, fmt.Errorf("device: closed loop needs a controller")
	}
	cfg := cl.Controller.Config()
	if cl.Models != nil && len(cl.Models) != len(cfg.DPs) {
		return nil, fmt.Errorf("device: %d models for %d design points",
			len(cl.Models), len(cfg.DPs))
	}
	if cl.WindowsPerHour <= 0 {
		cl.WindowsPerHour = 24
	}
	rng := rand.New(rand.NewSource(cl.Seed))
	var out []HourOutcome
	for _, h := range harvest {
		alloc, err := cl.Controller.Step(h)
		if err != nil {
			return nil, err
		}
		cfg := cl.Controller.Config()
		planned := alloc.Energy(cfg)
		consumed := planned
		if cl.ExecutionNoise > 0 {
			consumed = planned * (1 + rng.NormFloat64()*cl.ExecutionNoise)
			if consumed < 0 {
				consumed = 0
			}
		}
		if err := cl.Controller.Report(consumed); err != nil {
			return nil, err
		}
		o := HourOutcome{
			HourRecord: HourRecord{
				Budget:           cl.Controller.LastBudget(),
				Alloc:            alloc,
				Consumed:         consumed,
				ExpectedAccuracy: alloc.ExpectedAccuracy(cfg),
				ActiveTime:       alloc.ActiveTime(),
				Objective:        alloc.Objective(cfg),
				Region:           core.Classify(cfg, cl.Controller.LastBudget()),
			},
			Battery: cl.Controller.Battery(),
		}
		if cl.Models != nil {
			o.RealizedAccuracy = cl.realize(alloc, rng)
		}
		out = append(out, o)
	}
	return out, nil
}

// realize classifies sampled live windows under each active design point
// and returns the usage-weighted realized accuracy for the hour.
func (cl *ClosedLoop) realize(alloc core.Allocation, rng *rand.Rand) float64 {
	cfg := cl.Controller.Config()
	var weighted float64
	for i, t := range alloc.Active {
		if t <= 0 || cl.Models[i] == nil {
			continue
		}
		correct, total := 0, 0
		for k := 0; k < cl.WindowsPerHour; k++ {
			u := cl.Users[rng.Intn(len(cl.Users))]
			act := synth.Activities()[rng.Intn(synth.NumActivities)]
			w := synth.Generate(u, act, rng)
			pred, err := cl.Models[i].Classify(w)
			if err != nil {
				continue
			}
			total++
			if pred == act {
				correct++
			}
		}
		if total > 0 {
			weighted += (t / cfg.Period) * float64(correct) / float64(total)
		}
	}
	return weighted
}
