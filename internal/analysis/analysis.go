// Package analysis is the repo's own miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer, Pass
// and Diagnostic machinery to host the reapvet suite without pulling a
// dependency the build environment cannot fetch. The API mirrors the
// upstream shapes deliberately, so the suite ports to the real
// framework by swapping import paths if x/tools ever lands in go.mod.
//
// Two project-specific conventions live here because every analyzer
// shares them:
//
//   - Hot-path annotation: a function whose doc comment contains a line
//     starting with "//reap:hotpath" opts into the hotalloc analyzer's
//     allocation ban.
//
//   - Suppression: a diagnostic is suppressed by a comment
//
//     //lint:reapvet <analyzer...> -- <reason>
//
//     on the flagged line or the line above it. The analyzer list may
//     be empty (suppresses every analyzer on that line), and the reason
//     after " -- " is mandatory: a suppression without a reason is
//     itself reported, so every escape hatch in the tree documents why
//     it exists.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check: a name, a human description, and a
// Run function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:reapvet suppression comments.
	Name string
	// Doc is the one-paragraph description printed by reapvet's usage.
	Doc string
	// Run inspects one package and reports findings through
	// Pass.Reportf. The returned error aborts the whole run (loader or
	// internal failures, not findings).
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files is the package's parsed syntax, test files excluded.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's object and type resolutions
	// for Files.
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: which analyzer, where, and what.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// A Package is a loaded, type-checked package ready for analysis; the
// load package produces them.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics: suppressed findings are dropped, malformed suppressions
// are themselves reported, and the result is sorted by position for
// deterministic output.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				diags:     &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Pkg.Path(), err)
			}
		}
		diags = append(diags, sup.filter(pkgDiags)...)
		diags = append(diags, sup.malformed...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppressionPrefix starts every suppression comment.
const suppressionPrefix = "//lint:reapvet"

// A suppression covers one source line for a set of analyzers (empty =
// all), provided it carries a reason.
type suppression struct {
	file      string
	line      int
	analyzers []string
}

func (s suppression) covers(d Diagnostic) bool {
	if d.Position.Filename != s.file {
		return false
	}
	// A suppression shields its own line and the line below, so it can
	// sit either trailing the flagged expression or on its own line
	// immediately above it.
	if d.Position.Line != s.line && d.Position.Line != s.line+1 {
		return false
	}
	if len(s.analyzers) == 0 {
		return true
	}
	for _, name := range s.analyzers {
		if name == d.Analyzer {
			return true
		}
	}
	return false
}

type suppressionSet struct {
	sups      []suppression
	malformed []Diagnostic
}

// collectSuppressions scans every comment for //lint:reapvet markers.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	var set suppressionSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, suppressionPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, suppressionPrefix)
				spec, reason, hasReason := strings.Cut(rest, " -- ")
				if !hasReason || strings.TrimSpace(reason) == "" {
					set.malformed = append(set.malformed, Diagnostic{
						Analyzer: "reapvet",
						Position: pos,
						Message:  "suppression comment needs a reason: //lint:reapvet [analyzers] -- why",
					})
					continue
				}
				set.sups = append(set.sups, suppression{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Fields(spec),
				})
			}
		}
	}
	return set
}

func (s suppressionSet) filter(diags []Diagnostic) []Diagnostic {
	if len(s.sups) == 0 {
		return diags
	}
	kept := diags[:0]
outer:
	for _, d := range diags {
		for _, sup := range s.sups {
			if sup.covers(d) {
				continue outer
			}
		}
		kept = append(kept, d)
	}
	return kept
}

// hotpathMarker is the doc-comment annotation that opts a function into
// the hotalloc analyzer.
const hotpathMarker = "//reap:hotpath"

// IsHotPath reports whether the function declaration carries a
// //reap:hotpath annotation in its doc comment.
func IsHotPath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, hotpathMarker) {
			return true
		}
	}
	return false
}

// PkgOf resolves an identifier used as a package qualifier (the "fmt"
// in fmt.Errorf) to the imported package's path, or "".
func PkgOf(info *types.Info, ident *ast.Ident) string {
	if obj, ok := info.Uses[ident].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// CalleePkgFunc splits a call to a package-level function of an
// imported package into (package path, function name); other calls
// (methods, locals, builtins) return ("", "").
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	path := PkgOf(info, ident)
	if path == "" {
		return "", ""
	}
	return path, sel.Sel.Name
}
