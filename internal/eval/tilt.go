package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/solar"
)

// TiltRow compares panel orientations for one month.
type TiltRow struct {
	Month       int
	FlatJ       float64
	TiltedJ     float64
	FlatAcc     float64
	TiltedAcc   float64
	HarvestGain float64 // tilted/flat harvest
}

// TiltResult evaluates a south-facing 40° panel against the horizontal
// cell across the year's extremes: tilt recovers winter harvest (low sun)
// at a small summer cost, directly shifting how many hours REAP spends in
// each region.
type TiltResult struct {
	Rows []TiltRow
}

// Tilt runs December, March and June with both orientations.
func Tilt(cfg core.Config) (*TiltResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	flatPanel := solar.Panel{TiltDeg: 0, AzimuthDeg: 180, Albedo: 0.2}
	tiltedPanel := solar.Panel{TiltDeg: 40, AzimuthDeg: 180, Albedo: 0.2}
	res := &TiltResult{}
	for _, month := range []int{12, 3, 6} {
		flatTr, err := solar.TiltedMonthlyTrace(month, 2015, solar.DefaultCell(), flatPanel)
		if err != nil {
			return nil, err
		}
		tiltTr, err := solar.TiltedMonthlyTrace(month, 2015, solar.DefaultCell(), tiltedPanel)
		if err != nil {
			return nil, err
		}
		sim := &device.Simulator{Cfg: cfg}
		flatRun, err := sim.Run(device.REAPPolicy{}, flatTr.Hours)
		if err != nil {
			return nil, err
		}
		tiltRun, err := sim.Run(device.REAPPolicy{}, tiltTr.Hours)
		if err != nil {
			return nil, err
		}
		row := TiltRow{
			Month:     month,
			FlatJ:     flatTr.Total(),
			TiltedJ:   tiltTr.Total(),
			FlatAcc:   flatRun.MeanExpectedAccuracy(),
			TiltedAcc: tiltRun.MeanExpectedAccuracy(),
		}
		if row.FlatJ > 0 {
			row.HarvestGain = row.TiltedJ / row.FlatJ
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the orientation comparison.
func (r *TiltResult) Render() string {
	t := &table{header: []string{
		"month", "flat harvest(J)", "tilted harvest(J)", "gain", "flat E{a}", "tilted E{a}",
	}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%02d", row.Month), f1(row.FlatJ), f1(row.TiltedJ),
			f2(row.HarvestGain), f3(row.FlatAcc), f3(row.TiltedAcc))
	}
	return "Panel orientation: horizontal vs 40-degree south-facing tilt (alpha=1)\n" + t.String()
}
