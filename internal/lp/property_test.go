package lp

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForce solves a small LP by enumerating all basic solutions: every
// subset of constraints taken as tight, solved as a linear system, filtered
// for feasibility. It is exponential and only valid for tiny instances, but
// it is an independent oracle for the simplex implementation.
//
// It returns (bestX, found). Unbounded problems return found=false along
// with unbounded=true.
func bruteForce(p *Problem) (best []float64, bestVal float64, found bool) {
	n := len(p.Objective)

	// Collect all hyperplanes: constraint rows (as equalities when tight)
	// plus the axis planes x_j = 0.
	type plane struct {
		coeffs []float64
		rhs    float64
	}
	var planes []plane
	for _, c := range p.Constraints {
		planes = append(planes, plane{c.Coeffs, c.RHS})
	}
	for j := 0; j < n; j++ {
		axis := make([]float64, n)
		axis[j] = 1
		planes = append(planes, plane{axis, 0})
	}

	bestVal = math.Inf(-1)
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			// Solve the n×n system of the chosen tight planes.
			a := make([][]float64, n)
			for i := 0; i < n; i++ {
				a[i] = append(append([]float64(nil), planes[idx[i]].coeffs...), planes[idx[i]].rhs)
			}
			x, ok := gauss(a, n)
			if !ok {
				return
			}
			if !p.Feasible(x, 1e-6) {
				return
			}
			v := p.Value(x)
			if v > bestVal {
				bestVal = v
				best = append([]float64(nil), x...)
				found = true
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, bestVal, found
}

// gauss solves an n×n augmented system with partial pivoting.
func gauss(a [][]float64, n int) ([]float64, bool) {
	for col := 0; col < n; col++ {
		piv := -1
		max := 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > max {
				max = v
				piv = r
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for j := col; j <= n; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = a[i][n]
	}
	return x, true
}

// randomBoundedProblem generates an LP that is guaranteed feasible (origin
// is feasible) and bounded (a box constraint on every variable).
func randomBoundedProblem(rng *rand.Rand, n int) *Problem {
	m := 1 + rng.Intn(3)
	p := &Problem{Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = math.Round((rng.Float64()*10-3)*100) / 100
	}
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n), Op: LE, RHS: rng.Float64() * 10}
		for j := range c.Coeffs {
			c.Coeffs[j] = math.Round(rng.Float64()*5*100) / 100 // non-negative keeps origin feasible
		}
		p.Constraints = append(p.Constraints, c)
	}
	// Box to guarantee boundedness.
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Op: LE, RHS: 5 + rng.Float64()*10})
	}
	return p
}

func TestPropertySimplexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(2) // 2 or 3 variables keeps brute force tractable
		p := randomBoundedProblem(rng, n)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: error %v\n%s", trial, err, p)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal\n%s", trial, sol.Status, p)
		}
		if !p.Feasible(sol.X, 1e-6) {
			t.Fatalf("trial %d: infeasible solution %v\n%s", trial, sol.X, p)
		}
		_, bestVal, found := bruteForce(p)
		if !found {
			t.Fatalf("trial %d: brute force found nothing\n%s", trial, p)
		}
		if math.Abs(sol.Objective-bestVal) > 1e-5*(1+math.Abs(bestVal)) {
			t.Fatalf("trial %d: simplex %v != brute force %v\n%s",
				trial, sol.Objective, bestVal, p)
		}
	}
}

func TestPropertyEqualityProblems(t *testing.T) {
	// Random transportation-flavoured problems with an equality row:
	// sum x_j = T plus random LE rows. Compare to brute force.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 1
		}
		total := 1 + rng.Float64()*9
		all := make([]float64, n)
		for j := range all {
			all[j] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: all, Op: EQ, RHS: total})
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64() * 3
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Op: LE, RHS: rng.Float64()*20 + total*3})

		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bx, bv, found := bruteForce(p)
		if sol.Status == Infeasible {
			if found {
				t.Fatalf("trial %d: simplex infeasible but brute force found %v (val %v)\n%s",
					trial, bx, bv, p)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v\n%s", trial, sol.Status, p)
		}
		if !found {
			t.Fatalf("trial %d: simplex optimal %v but brute force infeasible\n%s", trial, sol.X, p)
		}
		if math.Abs(sol.Objective-bv) > 1e-5*(1+math.Abs(bv)) {
			t.Fatalf("trial %d: simplex %v != brute force %v\n%s", trial, sol.Objective, bv, p)
		}
	}
}

func TestPropertySolutionSupport(t *testing.T) {
	// A basic optimal solution has at most (number of constraints) nonzero
	// variables. For REAP-shaped problems (2 constraints) this is the
	// "at most two design points are mixed" structural fact the runtime
	// relies on.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		obj := make([]float64, n)
		timeRow := make([]float64, n)
		energyRow := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = rng.Float64()
			timeRow[j] = 1
			energyRow[j] = 0.1 + rng.Float64()*3
		}
		tp := 3600.0
		budget := energyRow[rng.Intn(n)] * tp * (0.3 + rng.Float64()*0.7)
		p := &Problem{
			Objective: obj,
			Constraints: []Constraint{
				{Coeffs: timeRow, Op: LE, RHS: tp},
				{Coeffs: energyRow, Op: LE, RHS: budget},
			},
		}
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("trial %d: err=%v status=%v", trial, err, sol.Status)
		}
		nonzero := 0
		for _, v := range sol.X {
			if v > 1e-7 {
				nonzero++
			}
		}
		if nonzero > 2 {
			t.Fatalf("trial %d: %d nonzero variables in a 2-constraint LP solution %v",
				trial, nonzero, sol.X)
		}
	}
}

func TestPropertyScaleInvariance(t *testing.T) {
	// Scaling the objective by a positive constant must not change the
	// argmax (up to degeneracy the same objective ratio holds).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		p := randomBoundedProblem(rng, 3)
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			t.Fatalf("trial %d: err=%v status=%v", trial, err, s1.Status)
		}
		scaled := &Problem{
			Objective:   append([]float64(nil), p.Objective...),
			Constraints: p.Constraints,
		}
		const k = 7.5
		for j := range scaled.Objective {
			scaled.Objective[j] *= k
		}
		s2, err := Solve(scaled)
		if err != nil || s2.Status != Optimal {
			t.Fatalf("trial %d: scaled err=%v status=%v", trial, err, s2.Status)
		}
		if math.Abs(s2.Objective-k*s1.Objective) > 1e-5*(1+math.Abs(k*s1.Objective)) {
			t.Fatalf("trial %d: scaled objective %v, want %v", trial, s2.Objective, k*s1.Objective)
		}
	}
}
