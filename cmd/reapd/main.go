// Command reapd serves the REAP fleet-allocation solver over HTTP/JSON:
// a daemon owning a sharded fleet of controller sessions, speaking the
// versioned wire schema of repro/wire (see DESIGN.md "The reapd
// service").
//
// Usage:
//
//	reapd [-addr :8080] [-devices 1024] [-shards 8]
//	      [-battery 0] [-capacity 0] [-solver plan]
//	      [-cache 0] [-cacheres 0.001]
//	      [-rate 0] [-burst 0] [-drain-timeout 30s]
//	      [-journal DIR] [-fsync interval] [-fsync-interval 100ms]
//	      [-snapshot-every 4096] [-retain-segments 4]
//	      [-role primary] [-primary HOST:PORT] [-follower-id ID]
//	      [-quarantine-after 0]
//	      [-max-inflight 0] [-default-deadline 0] [-max-deadline 0]
//
// Endpoints:
//
//	POST /v1/solve          one stateless allocation
//	POST /v1/batch-solve    many independent allocations in one round trip
//	POST /v1/report         measured consumption for owned devices
//	POST /v1/telemetry      NDJSON stream: harvest in, allocation out
//	POST /v1/alpha          re-weight one device's accuracy-time objective
//	GET  /v1/stats          counters, shards, cache, journal, replication
//	GET  /healthz           liveness + role/epoch/lag (503 while draining)
//	GET  /v1/replicate      journal-shipping stream for followers
//	POST /v1/replicate/ack  follower apply-position acks
//	POST /v1/promote        admin failover: follower becomes primary
//
// -rate enables per-tenant admission control (tenant = X-Tenant header):
// each tenant gets -rate solves/second with bursts of -burst, excess is
// answered 429 with Retry-After. SIGTERM/SIGINT drains gracefully:
// listeners stop accepting, in-flight solves and telemetry events
// finish, bounded by -drain-timeout.
//
// -journal makes the fleet crash-safe: every acknowledged mutation is
// appended to a write-ahead log in DIR before its response goes out,
// and boot replays the newest snapshot plus the logged tail, so a crash
// — even kill -9 — loses nothing that was acknowledged. -fsync picks
// the disk-flush policy (always | interval | never; all three survive
// process death, the policy bounds power-loss exposure). See DESIGN.md
// "Failure model".
//
// -role follower -primary HOST:PORT makes this daemon a hot standby: it
// boots from its own -journal, tails the primary's journal stream
// (snapshot bootstrap when it is too far behind), applies every acked
// mutation, serves stateless solves normally, and refuses mutations
// with 503 not_primary plus a Leader hint header. POST /v1/promote
// turns it into the primary, bumping the fencing epoch persisted in the
// journal dir so the old primary — should it come back — is rejected
// with 409 stale_epoch instead of split-braining. See DESIGN.md
// "Replication contract" and the README failover runbook.
//
// -max-inflight sheds excess load with 503 + Retry-After before any
// work is done; -default-deadline/-max-deadline bound per-request solve
// time, with clients lowering (never raising) their own deadline via
// the X-Deadline-Ms header; -quarantine-after N fences a shard off with
// 503s after N panics inside its critical sections.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/resilience"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reapd: ")

	addr := flag.String("addr", ":8080", "listen address")
	devices := flag.Int("devices", 1024, "number of owned controller sessions")
	shards := flag.Int("shards", 0, "fleet shards (0 = min(devices, 8))")
	battery := flag.Float64("battery", 0, "per-device initial battery charge in J")
	capacity := flag.Float64("capacity", 0, "per-device battery capacity in J")
	solver := flag.String("solver", "", "solver backend (default: compiled plan)")
	cacheSize := flag.Int("cache", 0, "solve cache entries (0 = plan-direct, the fast default)")
	cacheRes := flag.Float64("cacheres", 0.001, "cache budget quantization in J")
	rate := flag.Float64("rate", 0, "per-tenant admitted solves/second (0 = unlimited)")
	burst := flag.Int("burst", 0, "admission burst (0 = max(rate, 1))")
	drainTimeout := flag.Duration("drain-timeout", 30e9, "grace period for in-flight work on SIGTERM")
	journalDir := flag.String("journal", "", "journal directory for crash-safe fleet state (empty = off)")
	fsync := flag.String("fsync", service.FsyncInterval, "journal fsync policy: always | interval | never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "flush cadence under -fsync interval (0 = 100ms)")
	snapshotEvery := flag.Uint64("snapshot-every", 0, "compact a snapshot every N journal appends (0 = 4096)")
	role := flag.String("role", "", "replication role: primary (default) | follower")
	primary := flag.String("primary", "", "primary address a follower replicates from")
	followerID := flag.String("follower-id", "", "name for this follower in the primary's lag accounting")
	retainSegments := flag.Int("retain-segments", 0, "rotated journal segments kept for replication catch-up (0 = 4, negative = none)")
	quarantineAfter := flag.Int("quarantine-after", 0, "quarantine a shard after N panics (0 = never)")
	maxInflight := flag.Int("max-inflight", 0, "shed requests beyond N in flight with 503 (0 = unlimited)")
	defaultDeadline := flag.Duration("default-deadline", 0, "per-request deadline when the client sends none (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client X-Deadline-Ms requests (0 = default-deadline)")
	flag.Parse()

	svc, err := service.New(service.Config{
		Devices:          *devices,
		Shards:           *shards,
		BatteryJ:         *battery,
		CapacityJ:        *capacity,
		Solver:           *solver,
		CacheSize:        *cacheSize,
		CacheResolutionJ: *cacheRes,
		RatePerSec:       *rate,
		Burst:            *burst,
		JournalDir:       *journalDir,
		FsyncPolicy:      *fsync,
		FsyncInterval:    *fsyncInterval,
		SnapshotEvery:    *snapshotEvery,
		Role:             *role,
		PrimaryAddr:      *primary,
		FollowerID:       *followerID,
		RetainSegments:   *retainSegments,
		QuarantineAfter:  *quarantineAfter,
		MaxInflight:      *maxInflight,
		Deadline: resilience.DeadlinePolicy{
			Default: *defaultDeadline,
			Max:     *maxDeadline,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if js := svc.Stats().Journal; js != nil {
		log.Printf("journal %s: replayed %d events onto snapshot seq %d (torn tail: %v), fsync %s",
			*journalDir, js.Replayed, js.SnapshotSeq, js.TornTail, js.FsyncPolicy)
	}
	if rs := svc.Stats().Replication; rs != nil {
		if rs.Role == "follower" {
			log.Printf("replication: follower of %s at epoch %d", rs.Primary, rs.Epoch)
		} else {
			log.Printf("replication: primary at epoch %d", rs.Epoch)
		}
	}
	srv := service.NewServer(svc, *addr)
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d devices on %d shards at http://%s", svc.Devices(), svc.Shards(), srv.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case sig := <-sigs:
		log.Printf("%v: draining (in-flight work finishes, listeners closed)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Fatal(err)
		}
		log.Print("drained")
	}
}
