// Command reapsim runs deterministic fleet scenarios from the sim
// package's library: multi-day closed loops of solar harvest, LP
// allocation, activity-modulated execution and fault injection, with
// per-step traces and fleet-level metrics.
//
// Usage:
//
//	reapsim -list
//	reapsim -scenario cache-hot
//	reapsim -scenario brownout -devices 8 -days 7 -seed 99 -trace -
//	reapsim -all
//
// Without overrides a scenario runs exactly as the library (and the
// golden-trace tests) define it, so two invocations print identical
// traces. -trace writes the canonical trace encoding to a file, or to
// standard output with "-".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/sim"
)

func main() {
	log.SetFlags(0)
	list := flag.Bool("list", false, "list the scenario library and exit")
	all := flag.Bool("all", false, "run every library scenario")
	name := flag.String("scenario", "", "library scenario to run (see -list)")
	devices := flag.Int("devices", 0, "override the scenario's fleet size")
	days := flag.Int("days", 0, "override the scenario's horizon in days")
	seed := flag.Int64("seed", 0, "override the scenario's seed (0 keeps it)")
	solver := flag.String("solver", "", "override the solver backend")
	tracePath := flag.String("trace", "", "write the canonical trace here (\"-\" for stdout)")
	flag.Parse()

	switch {
	case *list:
		for _, sc := range sim.Library() {
			fmt.Printf("%-14s %s (%d devices, %d days, seed %d)\n",
				sc.Name, sc.Description, sc.Devices, sc.Days, sc.Seed)
		}
		return
	case *all:
		if *tracePath != "" {
			log.Fatal("reapsim: -trace needs a single -scenario, not -all")
		}
		for _, sc := range sim.Library() {
			run(sc, *devices, *days, *seed, *solver, "")
			fmt.Println()
		}
		return
	case *name == "":
		log.Fatal("reapsim: pick a -scenario (see -list) or -all")
	}
	sc, err := sim.Lookup(*name)
	if err != nil {
		log.Fatal(err)
	}
	run(sc, *devices, *days, *seed, *solver, *tracePath)
}

func run(sc sim.Scenario, devices, days int, seed int64, solver, tracePath string) {
	if devices > 0 {
		sc.Devices = devices
	}
	if days > 0 {
		sc.Days = days
	}
	if seed != 0 {
		sc.Seed = seed
	}
	if solver != "" {
		sc.Solver = solver
	}
	res, err := sim.Run(context.Background(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s: %s\n%s\n", sc.Name, sc.Description, res.Summary)
	if tracePath == "" {
		return
	}
	out := os.Stdout
	if tracePath != "-" {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := res.Trace.WriteText(out); err != nil {
		log.Fatal(err)
	}
}
