package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/solar"
)

// SeasonalRow summarizes one month of the year.
type SeasonalRow struct {
	Month        int
	HarvestJ     float64
	REAPMeanAcc  float64
	DP1MeanAcc   float64
	DP5MeanAcc   float64
	REAPOverDP1  float64
	ActiveHours  float64
	RegionShares [4]float64 // dead, r1, r2, r3 fractions
}

// SeasonalResult sweeps a full year month by month: harvest collapses in
// winter (short days, low sun) and REAP's advantage over the static
// points moves with it — a view the paper's single September cannot show.
type SeasonalResult struct {
	Year int
	Rows []SeasonalRow
}

// Seasonal runs REAP and the DP1/DP5 baselines over every month of the
// year (α=1, greedy budgets).
func Seasonal(cfg core.Config, year int) (*SeasonalResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SeasonalResult{Year: year}
	for month := 1; month <= 12; month++ {
		tr, err := solar.MonthlyTrace(month, year, solar.DefaultCell())
		if err != nil {
			return nil, err
		}
		budgets := solar.GreedyAllocator{}.Budgets(tr.Hours)
		sim := &device.Simulator{Cfg: cfg}
		reap, err := sim.Run(device.REAPPolicy{}, budgets)
		if err != nil {
			return nil, err
		}
		dp1, err := sim.Run(device.StaticPolicy{Index: 0}, budgets)
		if err != nil {
			return nil, err
		}
		dp5, err := sim.Run(device.StaticPolicy{Index: len(cfg.DPs) - 1}, budgets)
		if err != nil {
			return nil, err
		}
		row := SeasonalRow{
			Month:       month,
			HarvestJ:    tr.Total(),
			REAPMeanAcc: reap.MeanExpectedAccuracy(),
			DP1MeanAcc:  dp1.MeanExpectedAccuracy(),
			DP5MeanAcc:  dp5.MeanExpectedAccuracy(),
			ActiveHours: reap.TotalActiveTime() / 3600,
		}
		if row.DP1MeanAcc > 0 {
			row.REAPOverDP1 = row.REAPMeanAcc / row.DP1MeanAcc
		}
		for _, h := range reap.Hours {
			row.RegionShares[int(h.Region)]++
		}
		for i := range row.RegionShares {
			row.RegionShares[i] /= float64(len(reap.Hours))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the seasonal grid.
func (r *SeasonalResult) Render() string {
	t := &table{header: []string{
		"month", "harvest(J)", "REAP E{a}", "DP1 E{a}", "DP5 E{a}",
		"REAP/DP1", "active(h)", "dead%", "r1%", "r2%", "r3%",
	}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%02d", row.Month), f1(row.HarvestJ),
			f3(row.REAPMeanAcc), f3(row.DP1MeanAcc), f3(row.DP5MeanAcc),
			f2(row.REAPOverDP1), f1(row.ActiveHours),
			f1(100*row.RegionShares[0]), f1(100*row.RegionShares[1]),
			f1(100*row.RegionShares[2]), f1(100*row.RegionShares[3]))
	}
	return fmt.Sprintf("Seasonal sweep, %d: harvest and REAP advantage across the year\n", r.Year) +
		t.String()
}
