package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// BudgetRange returns the interval of energy budgets [lo, hi] around
// budget within which the optimal solution keeps the same design-point
// support (the same one or two DPs mixed with off); inside it the time
// shares vary linearly with the budget. The runtime uses this to skip
// the simplex when consecutive hours land in the same regime: the
// allocation can be updated by Rescale instead.
//
// Budgets outside the LP regime (below the idle floor or beyond DP1
// saturation) return the enclosing regime interval directly.
func BudgetRange(c Config, budget float64) (lo, hi float64, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	if math.IsNaN(budget) || budget < 0 {
		return 0, 0, fmt.Errorf("%w: budget %v", ErrBudgetNegative, budget)
	}
	floor := c.MinBudget()
	if budget < floor {
		return 0, floor, nil
	}
	max := c.MaxUsefulBudget()
	if budget >= max {
		return max, math.Inf(1), nil
	}

	n := len(c.DPs)
	obj := make([]float64, n+1)
	timeRow := make([]float64, n+1)
	energyRow := make([]float64, n+1)
	for i := 0; i < n; i++ {
		obj[i] = c.weight(i) / c.Period
		timeRow[i] = 1
		energyRow[i] = c.DPs[i].Power
	}
	timeRow[n] = 1
	energyRow[n] = c.POff

	p := &lp.Problem{
		Objective: obj,
		Constraints: []lp.Constraint{
			{Coeffs: timeRow, Op: lp.EQ, RHS: c.Period},
			{Coeffs: energyRow, Op: lp.LE, RHS: budget},
		},
	}
	rlo, rhi, ok := lp.RangeRHS(p, 1)
	if !ok {
		return 0, 0, fmt.Errorf("%w: ranging failed at budget %v", ErrSolverFailure, budget)
	}
	// Clip to the LP regime.
	if rlo < floor {
		rlo = floor
	}
	if rhi > max {
		rhi = max
	}
	return rlo, rhi, nil
}

// Rescale updates an allocation solved at oldBudget to newBudget without
// re-running the simplex, valid only while both budgets lie in the same
// BudgetRange interval (same support). With the support fixed to at most
// two states plus off, the times solve in closed form from the two
// constraints; the function re-derives them.
//
// It returns an error if the stored support cannot absorb the new budget
// (a sign the caller left the interval and must re-solve).
func Rescale(c Config, a Allocation, newBudget float64) (Allocation, error) {
	if err := c.Validate(); err != nil {
		return Allocation{}, err
	}
	if newBudget < c.MinBudget() {
		return Allocation{}, fmt.Errorf("%w: budget %v below the idle floor; re-solve", ErrSolverFailure, newBudget)
	}
	// Identify the support.
	var support []int
	for i, t := range a.Active {
		if t > 1e-9 {
			support = append(support, i)
		}
	}
	out := Allocation{Active: make([]float64, len(c.DPs))}
	switch len(support) {
	case 0:
		// Only off time: nothing to rescale; newBudget is absorbed by
		// slack (valid while below the cheapest DP's marginal regime —
		// callers inside a BudgetRange interval satisfy this).
		out.Off = c.Period
		return out, nil
	case 1:
		// One DP + off with the budget binding:
		// P t + POff (TP - t) = Eb.
		i := support[0]
		denom := c.DPs[i].Power - c.POff
		t := (newBudget - c.MinBudget()) / denom
		if t < -1e-9 {
			return Allocation{}, fmt.Errorf("%w: rescale underflow; re-solve", ErrSolverFailure)
		}
		if t > c.Period {
			t = c.Period // budget slack beyond saturation
		}
		out.Active[i] = t
		out.Off = c.Period - t
		return out, nil
	case 2:
		// Two DPs, no off, both constraints binding:
		// t_i + t_j = TP, P_i t_i + P_j t_j = Eb.
		i, j := support[0], support[1]
		pi, pj := c.DPs[i].Power, c.DPs[j].Power
		if math.Abs(pi-pj) < 1e-15 {
			return Allocation{}, fmt.Errorf("%w: degenerate support powers; re-solve", ErrSolverFailure)
		}
		ti := (newBudget - pj*c.Period) / (pi - pj)
		tj := c.Period - ti
		if ti < -1e-9 || tj < -1e-9 {
			return Allocation{}, fmt.Errorf("%w: rescale left the support; re-solve", ErrSolverFailure)
		}
		out.Active[i] = math.Max(0, ti)
		out.Active[j] = math.Max(0, tj)
		return out, nil
	default:
		return Allocation{}, fmt.Errorf("%w: %d-point support cannot come from this LP; re-solve", ErrSolverFailure, len(support))
	}
}
