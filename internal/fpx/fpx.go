// Package fpx is the repo's allowlisted floating-point comparison set:
// the one place raw float equality is legal (the floatcmp analyzer
// skips this package and flags ==/!= on floats everywhere else).
//
// The point is not that exact comparison is always wrong — breakpoint
// hits after sort.SearchFloat64s, zero-value default detection and sort
// tie-breaks all want it — but that it must be *named*. A call to
// fpx.Eq or fpx.Zero tells the reader the exactness is deliberate; a
// bare == cannot be told apart from the classic accumulated-roundoff
// bug. Tolerance comparisons spell their tolerance with Near or
// InDelta.
//
// Every function is a single comparison or arithmetic expression, so
// the compiler inlines them to exactly the code the raw operator would
// have produced: using fpx costs nothing on hot paths.
package fpx

import "math"

// Eq reports whether a and b are exactly equal as float64 values.
// Use it only where exactness is structural — e.g. testing a budget
// against an envelope breakpoint found by binary search, or comparing
// values copied untouched from a common source. NaN equals nothing,
// including itself, matching ==.
func Eq(a, b float64) bool { return a == b }

// Zero reports whether x is exactly zero (either sign). The idiomatic
// use is zero-value detection: "was this config field ever set". Note
// Zero(-0) is true, like x == 0.
func Zero(x float64) bool { return x == 0 }

// Near reports whether a and b differ by at most tol in absolute
// value. NaN inputs are never near anything; infinities of the same
// sign are near each other for any non-negative tol.
func Near(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// InDelta is Near under the name test suites conventionally use.
func InDelta(a, b, delta float64) bool { return Near(a, b, delta) }

// RelNear reports whether a and b agree to within rel relative
// tolerance, scaled by the larger magnitude; exact equality (including
// both zero) always passes.
func RelNear(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*scale
}
