package core

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Config{}, 1); err == nil {
		t.Fatal("empty config accepted")
	}
	c := DefaultConfig()
	if _, err := Solve(c, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := Solve(c, math.NaN()); err == nil {
		t.Fatal("NaN budget accepted")
	}
	bad := DefaultConfig()
	bad.DPs[0].Accuracy = 2
	if _, err := Solve(bad, 1); err == nil {
		t.Fatal("accuracy > 1 accepted")
	}
	bad2 := DefaultConfig()
	bad2.DPs[0].Power = DefaultPOff / 2
	if _, err := Solve(bad2, 1); err == nil {
		t.Fatal("DP power below off power accepted")
	}
	bad3 := DefaultConfig()
	bad3.Alpha = -1
	if _, err := Solve(bad3, 1); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestPaper5JouleSplit(t *testing.T) {
	// Section 5.2: "At 5 J energy budget, REAP utilizes DP4 42% of the
	// time and DP5 for 58% of the time."
	c := DefaultConfig()
	alloc, err := Solve(c, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if u4 := alloc.Utilization(c, 3); !approx(u4, 0.42, 0.02) {
		t.Errorf("DP4 utilization = %.3f, want ~0.42", u4)
	}
	if u5 := alloc.Utilization(c, 4); !approx(u5, 0.58, 0.02) {
		t.Errorf("DP5 utilization = %.3f, want ~0.58", u5)
	}
	if got := alloc.ActiveTime(); !approx(got, c.Period, 1e-6) {
		t.Errorf("active time = %v, want full period (device never off at 5 J)", got)
	}
	if e := alloc.Energy(c); e > 5.0+1e-6 {
		t.Errorf("energy %v exceeds budget", e)
	}
}

func TestRegion3ReducesToDP1(t *testing.T) {
	// "All design points can remain active ... when the energy budget is
	// larger than 9.9 J ... REAP reduces to DP1 beyond this point."
	c := DefaultConfig()
	alloc, err := Solve(c, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(alloc.Active[0], c.Period, 1e-6) {
		t.Fatalf("allocation %v: want DP1 for the full period at 10 J", alloc)
	}
	if !approx(alloc.ExpectedAccuracy(c), 0.94, 1e-9) {
		t.Fatalf("expected accuracy %v, want 0.94", alloc.ExpectedAccuracy(c))
	}
}

func TestRegion1PrefersDP5(t *testing.T) {
	// Under severe constraint (α=1) the best marginal accuracy per joule
	// above idle belongs to the cheapest design point.
	c := DefaultConfig()
	alloc, err := Solve(c, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Active[4] == 0 {
		t.Fatalf("allocation %v: want DP5 used in region 1", alloc)
	}
	for i := 0; i < 4; i++ {
		if alloc.Active[i] > 1e-6 {
			t.Fatalf("allocation %v: DP%d active in region 1 at α=1", alloc, i+1)
		}
	}
	if alloc.Off <= 0 {
		t.Fatalf("allocation %v: device should be partly off at 2 J", alloc)
	}
}

func TestBelowFloorDevicePartiallyDead(t *testing.T) {
	c := DefaultConfig()
	alloc, err := Solve(c, c.MinBudget()/2)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.ActiveTime() != 0 {
		t.Fatalf("active time %v, want 0 below the idle floor", alloc.ActiveTime())
	}
	if !approx(alloc.Off, c.Period/2, 1e-6) || !approx(alloc.Dead, c.Period/2, 1e-6) {
		t.Fatalf("off=%v dead=%v, want half/half at half the floor budget", alloc.Off, alloc.Dead)
	}
	if !approx(alloc.Total(), c.Period, 1e-6) {
		t.Fatalf("total %v != period", alloc.Total())
	}
}

func TestZeroBudget(t *testing.T) {
	c := DefaultConfig()
	alloc, err := Solve(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.ActiveTime() != 0 || !approx(alloc.Dead, c.Period, 1e-6) {
		t.Fatalf("allocation %v, want fully dead at zero budget", alloc)
	}
}

func TestAlphaZeroMaximizesActiveTime(t *testing.T) {
	// α = 0 turns the objective into total active time; the cheapest DP
	// maximizes it regardless of accuracy.
	c := DefaultConfig()
	c.Alpha = 0
	budget := 3.0
	alloc, err := Solve(c, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Best possible active time with budget Eb:
	// t = (Eb - POff·TP) / (P5 - POff).
	want := (budget - c.MinBudget()) / (c.DPs[4].Power - c.POff)
	if !approx(alloc.ActiveTime(), want, 1e-3) {
		t.Fatalf("active time %v, want %v (all budget to cheapest DP)", alloc.ActiveTime(), want)
	}
}

func TestHighAlphaPrefersAccuracy(t *testing.T) {
	// As α → ∞ the objective is dominated by the highest-accuracy DP even
	// if it can only run briefly.
	c := DefaultConfig()
	c.Alpha = 64
	alloc, err := Solve(c, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Active[0] <= 0 {
		t.Fatalf("allocation %v: want DP1 used at very large alpha", alloc)
	}
	for i := 1; i < 5; i++ {
		if alloc.Active[i] > 1e-6 {
			t.Fatalf("allocation %v: DP%d should not be used at alpha=64", alloc, i+1)
		}
	}
}

func TestSolveMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(7)
		c := Config{
			Period: 3600,
			POff:   rng.Float64() * 1e-4,
			Alpha:  []float64{0, 0.5, 1, 2, 4, 8}[rng.Intn(6)],
		}
		for i := 0; i < n; i++ {
			c.DPs = append(c.DPs, DesignPoint{
				Name:     "dp",
				Accuracy: 0.3 + rng.Float64()*0.7,
				Power:    c.POff + 1e-4 + rng.Float64()*5e-3,
			})
		}
		budget := rng.Float64() * c.MaxUsefulBudget() * 1.2
		a1, err := Solve(c, budget)
		if err != nil {
			t.Fatalf("trial %d: simplex error %v", trial, err)
		}
		a2, err := SolveEnumerate(c, budget)
		if err != nil {
			t.Fatalf("trial %d: enumerate error %v", trial, err)
		}
		j1, j2 := a1.Objective(c), a2.Objective(c)
		if math.Abs(j1-j2) > 1e-6*(1+math.Abs(j2)) {
			t.Fatalf("trial %d: simplex J=%v enumerate J=%v (budget %v, alpha %v)\nsimplex %v\nenum    %v",
				trial, j1, j2, budget, c.Alpha, a1, a2)
		}
		// Both must respect budget and time identity.
		for _, a := range []Allocation{a1, a2} {
			if a.Energy(c) > budget+1e-6 {
				t.Fatalf("trial %d: energy %v exceeds budget %v", trial, a.Energy(c), budget)
			}
			if !approx(a.Total(), c.Period, 1e-5) {
				t.Fatalf("trial %d: total time %v != period", trial, a.Total())
			}
		}
	}
}

func TestREAPDominatesStaticPoints(t *testing.T) {
	// The fundamental claim: for every budget and α, J(REAP) ≥ J(best
	// static DP), where a static DP runs until its budget share is gone.
	c := DefaultConfig()
	for _, alpha := range []float64{0, 0.5, 1, 2, 4, 8} {
		c.Alpha = alpha
		for budget := 0.2; budget <= 11; budget += 0.1 {
			alloc, err := Solve(c, budget)
			if err != nil {
				t.Fatal(err)
			}
			reapJ := alloc.Objective(c)
			for i := range c.DPs {
				staticJ := StaticObjective(c, i, budget)
				if staticJ > reapJ+1e-9 {
					t.Fatalf("budget %.2f alpha %v: static DP%d J=%v beats REAP J=%v",
						budget, alpha, i+1, staticJ, reapJ)
				}
			}
		}
	}
}

func TestObjectiveMonotoneInBudget(t *testing.T) {
	c := DefaultConfig()
	for _, alpha := range []float64{0.5, 1, 2} {
		c.Alpha = alpha
		prev := -1.0
		for budget := 0.0; budget <= 12; budget += 0.05 {
			alloc, err := Solve(c, budget)
			if err != nil {
				t.Fatal(err)
			}
			j := alloc.Objective(c)
			if j < prev-1e-9 {
				t.Fatalf("alpha %v: J decreased from %v to %v at budget %v", alpha, prev, j, budget)
			}
			prev = j
		}
	}
}

func TestAllocationString(t *testing.T) {
	c := DefaultConfig()
	alloc, err := Solve(c, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if s := alloc.String(); s == "" || s == "allocation{}" {
		t.Fatalf("String() = %q", s)
	}
	if s := (Allocation{}).String(); s != "allocation{}" {
		t.Fatalf("empty String() = %q", s)
	}
}

func TestSolveEnumerateValidation(t *testing.T) {
	if _, err := SolveEnumerate(Config{}, 1); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := SolveEnumerate(DefaultConfig(), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}
