package har

import (
	"encoding/json"
	"fmt"

	"repro/internal/nn"
)

// Bundle is the serializable form of a trained design point: everything
// the device needs to run it (spec, normalizer, weights) plus the
// characterization metadata. A deployment flashes bundles; retraining
// happens off-device.
type Bundle struct {
	Name            string      `json:"name"`
	Axes            uint8       `json:"axes"`
	SensingFraction float64     `json:"sensing_fraction"`
	AccelFeat       int         `json:"accel_feat"`
	StretchFeat     int         `json:"stretch_feat"`
	Hidden          []int       `json:"hidden"`
	Quantized       bool        `json:"quantized"`
	NormMean        []float64   `json:"norm_mean"`
	NormStd         []float64   `json:"norm_std"`
	Net             *nn.Network `json:"net"`
	ValAcc          float64     `json:"val_acc"`
	TestAcc         float64     `json:"test_acc"`
}

// SaveModels serializes trained models to JSON.
func SaveModels(models []*Model) ([]byte, error) {
	var bundles []Bundle
	for _, m := range models {
		if m == nil || m.Net == nil {
			return nil, fmt.Errorf("har: cannot save a nil model")
		}
		bundles = append(bundles, Bundle{
			Name:            m.Spec.Name,
			Axes:            uint8(m.Spec.Features.Axes),
			SensingFraction: m.Spec.Features.SensingFraction,
			AccelFeat:       int(m.Spec.Features.AccelFeat),
			StretchFeat:     int(m.Spec.Features.StretchFeat),
			Hidden:          m.Spec.Hidden,
			Quantized:       m.Spec.Quantized,
			NormMean:        m.Normalizer.Mean,
			NormStd:         m.Normalizer.Std,
			Net:             m.Net,
			ValAcc:          m.ValAcc,
			TestAcc:         m.TestAcc,
		})
	}
	return json.MarshalIndent(bundles, "", " ")
}

// LoadModels restores models serialized with SaveModels, re-deriving the
// quantized network for quantized specs and validating feature/classifier
// shape consistency.
func LoadModels(data []byte) ([]*Model, error) {
	var bundles []Bundle
	if err := json.Unmarshal(data, &bundles); err != nil {
		return nil, fmt.Errorf("har: decoding bundles: %w", err)
	}
	var models []*Model
	for i, b := range bundles {
		spec := DesignPointSpec{
			Name: b.Name,
			Features: FeatureConfig{
				Axes:            AxesMask(b.Axes),
				SensingFraction: b.SensingFraction,
				AccelFeat:       AccelFeatureKind(b.AccelFeat),
				StretchFeat:     StretchFeatureKind(b.StretchFeat),
			},
			Hidden:    b.Hidden,
			Quantized: b.Quantized,
		}
		if err := spec.Features.Validate(); err != nil {
			return nil, fmt.Errorf("har: bundle %d (%s): %w", i, b.Name, err)
		}
		if b.Net == nil || len(b.Net.Layers) == 0 {
			return nil, fmt.Errorf("har: bundle %d (%s): missing network", i, b.Name)
		}
		if got, want := b.Net.InputSize(), spec.Features.Dim(); got != want {
			return nil, fmt.Errorf("har: bundle %d (%s): network input %d, features produce %d",
				i, b.Name, got, want)
		}
		if len(b.NormMean) != spec.Features.Dim() || len(b.NormStd) != spec.Features.Dim() {
			return nil, fmt.Errorf("har: bundle %d (%s): normalizer width mismatch", i, b.Name)
		}
		m := &Model{
			Spec:       spec,
			Normalizer: &Normalizer{Mean: b.NormMean, Std: b.NormStd},
			Net:        b.Net,
			ValAcc:     b.ValAcc,
			TestAcc:    b.TestAcc,
		}
		if b.Quantized {
			q, err := nn.Quantize(b.Net)
			if err != nil {
				return nil, fmt.Errorf("har: bundle %d (%s): %w", i, b.Name, err)
			}
			m.QNet = q
		}
		models = append(models, m)
	}
	return models, nil
}
