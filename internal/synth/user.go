package synth

import (
	"math"
	"math/rand"
)

// UserProfile captures the per-subject variation that makes HAR accuracy
// user-dependent: device orientation on the body, gait cadence, motion
// vigor, sensor noise level and stretch-band fit.
type UserProfile struct {
	// ID is the subject index.
	ID int
	// RotX, RotY, RotZ are small device-mounting rotation angles in
	// radians applied to every accelerometer sample.
	RotX, RotY, RotZ float64
	// StepHz is the subject's walking cadence.
	StepHz float64
	// JumpHz is the subject's jumping rate.
	JumpHz float64
	// Vigor scales motion amplitudes.
	Vigor float64
	// NoiseScale scales all sensor noise.
	NoiseScale float64
	// StretchBase offsets the stretch-band baseline (band fit).
	StretchBase float64
	// StretchGain scales stretch excursions (band elasticity).
	StretchGain float64
}

// NewUserProfile derives a deterministic profile for subject id from the
// corpus seed.
func NewUserProfile(id int, seed int64) UserProfile {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(id)*7919))
	const deg = math.Pi / 180
	return UserProfile{
		ID:          id,
		RotX:        rng.NormFloat64() * 12 * deg,
		RotY:        rng.NormFloat64() * 12 * deg,
		RotZ:        rng.NormFloat64() * 12 * deg,
		StepHz:      1.5 + rng.Float64()*0.7,
		JumpHz:      2.0 + rng.Float64()*0.8,
		Vigor:       0.8 + rng.Float64()*0.4,
		NoiseScale:  0.8 + rng.Float64()*0.5,
		StretchBase: rng.NormFloat64() * 0.04,
		StretchGain: 0.85 + rng.Float64()*0.3,
	}
}

// rotate applies the user's mounting rotation (XYZ Euler order) to an
// acceleration vector.
func (u UserProfile) rotate(x, y, z float64) (float64, float64, float64) {
	// Rotate about X.
	cy, sy := math.Cos(u.RotX), math.Sin(u.RotX)
	y, z = y*cy-z*sy, y*sy+z*cy
	// Rotate about Y.
	cz, sz := math.Cos(u.RotY), math.Sin(u.RotY)
	x, z = x*cz+z*sz, -x*sz+z*cz
	// Rotate about Z.
	cx, sx := math.Cos(u.RotZ), math.Sin(u.RotZ)
	x, y = x*cx-y*sx, x*sx+y*cx
	return x, y, z
}
