package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestBudgetRangeRegimes(t *testing.T) {
	c := DefaultConfig()
	// Below the floor.
	lo, hi, err := BudgetRange(c, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || math.Abs(hi-0.18) > 1e-9 {
		t.Fatalf("dead regime range [%v, %v]", lo, hi)
	}
	// Beyond saturation.
	lo, hi, err = BudgetRange(c, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-c.MaxUsefulBudget()) > 1e-9 || !math.IsInf(hi, 1) {
		t.Fatalf("saturated regime range [%v, %v]", lo, hi)
	}
	// Region 2 at 5 J: the DP4/DP5 mix holds between DP5 saturation
	// (4.32 J) and DP4 saturation (5.90 J).
	lo, hi, err = BudgetRange(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-4.32) > 0.01 || math.Abs(hi-5.904) > 0.01 {
		t.Fatalf("5 J range [%v, %v], want ~[4.32, 5.90]", lo, hi)
	}
	// Validation.
	if _, _, err := BudgetRange(Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, _, err := BudgetRange(c, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestRescaleMatchesSolveInsideRange(t *testing.T) {
	// Property: for random budgets, a Rescale to any point inside the
	// BudgetRange reproduces the full Solve exactly.
	c := DefaultConfig()
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		budget := 0.3 + rng.Float64()*10
		lo, hi, err := BudgetRange(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(hi, 1) {
			hi = lo + 2
		}
		base, err := Solve(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if budget < c.MinBudget() {
			continue // dead regime has no rescale path
		}
		// A few points strictly inside the interval.
		for k := 0; k < 3; k++ {
			target := lo + (hi-lo)*(0.05+0.9*rng.Float64())
			if target < c.MinBudget() {
				continue
			}
			fast, err := Rescale(c, base, target)
			if err != nil {
				t.Fatalf("trial %d: rescale to %v (range [%v,%v]): %v", trial, target, lo, hi, err)
			}
			slow, err := Solve(c, target)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fast.Objective(c)-slow.Objective(c)) > 1e-6 {
				t.Fatalf("trial %d: rescale J %v != solve J %v at %v (from %v, range [%v, %v])",
					trial, fast.Objective(c), slow.Objective(c), target, budget, lo, hi)
			}
			if fast.Energy(c) > target+1e-6 {
				t.Fatalf("trial %d: rescaled energy %v exceeds %v", trial, fast.Energy(c), target)
			}
		}
	}
}

func TestRescaleRefusesOutsideSupport(t *testing.T) {
	c := DefaultConfig()
	// 5 J: DP4/DP5 mix. Rescaling to 2 J (pure DP5 + off regime) must be
	// refused: t4 would go negative.
	base, err := Solve(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rescale(c, base, 2); err == nil {
		t.Fatal("rescale across a regime boundary accepted")
	}
	// Below the floor: refused.
	if _, err := Rescale(c, base, 0.05); err == nil {
		t.Fatal("sub-floor rescale accepted")
	}
	if _, err := Rescale(Config{}, base, 5); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRescaleSingleDPRegime(t *testing.T) {
	c := DefaultConfig()
	base, err := Solve(c, 2) // DP5 + off
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Rescale(c, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Solve(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Objective(c)-slow.Objective(c)) > 1e-9 {
		t.Fatalf("single-DP rescale J %v != solve J %v", fast.Objective(c), slow.Objective(c))
	}
}
