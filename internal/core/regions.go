package core

import "sort"

// Region labels the energy-budget regimes discussed in Section 5.2 of the
// paper (Figure 5).
type Region int

const (
	// RegionDead: the budget cannot even power the idle circuitry for the
	// whole period (below the 0.18 J floor in the paper).
	RegionDead Region = iota
	// Region1: no design point can stay active for the whole period; the
	// low-energy points dominate because they maximize active time.
	Region1
	// Region2: the cheapest design point saturates (runs the full period)
	// but the hungriest cannot; REAP mixes adjacent Pareto points.
	Region2
	// Region3: every design point can run the full period; REAP reduces
	// to the highest-accuracy design point.
	Region3
)

// String returns the paper's name for the region.
func (r Region) String() string {
	switch r {
	case RegionDead:
		return "dead"
	case Region1:
		return "region-1"
	case Region2:
		return "region-2"
	case Region3:
		return "region-3"
	default:
		return "region-?"
	}
}

// Classify places an energy budget into its region for configuration c.
func Classify(c Config, budget float64) Region {
	switch {
	case budget < c.MinBudget():
		return RegionDead
	case budget < minFullEnergy(c):
		return Region1
	case budget < c.MaxUsefulBudget():
		return Region2
	default:
		return Region3
	}
}

// minFullEnergy is the energy needed to run the cheapest design point for
// the whole period (4.3 J for DP5 in the paper).
func minFullEnergy(c Config) float64 {
	min := c.DPs[0].EnergyPerPeriod(c.Period)
	for _, d := range c.DPs[1:] {
		if e := d.EnergyPerPeriod(c.Period); e < min {
			min = e
		}
	}
	return min
}

// RegionBoundaries returns the budget values at which the optimizer's
// behaviour changes qualitatively: the idle floor, the saturation energy of
// each design point in increasing order, and (implicitly) the maximum
// useful budget as the last entry.
func RegionBoundaries(c Config) []float64 {
	bounds := []float64{c.MinBudget()}
	for _, d := range c.DPs {
		bounds = append(bounds, d.EnergyPerPeriod(c.Period))
	}
	sort.Float64s(bounds)
	return bounds
}
