package cache

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestSolveIntoHitZeroAllocs pins the //reap:hotpath promise of the hit
// path: once a dst has capacity and the entry is cached, a lookup copies
// without allocating.
func TestSolveIntoHitZeroAllocs(t *testing.T) {
	c, err := New(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	ctx := context.Background()
	var dst core.Allocation
	// First call is the miss that populates the entry and grows dst.
	if err := c.SolveInto(ctx, 1, core.SolveContext, cfg, 1.0, &dst); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.SolveInto(ctx, 1, core.SolveContext, cfg, 1.0, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Cache.SolveInto hit path allocated %v times per run, want 0", allocs)
	}
}

// TestSolveIntoMatchesSolve checks the buffer-reusing path returns the
// same allocation as the cloning path, across hits and misses.
func TestSolveIntoMatchesSolve(t *testing.T) {
	c, err := New(64, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	ctx := context.Background()
	var dst core.Allocation
	for _, budget := range []float64{0, 0.05, 0.4, 1.1, 2.5, 1.1, 0.4} {
		want, err := c.Solve(ctx, 7, core.SolveContext, cfg, budget)
		if err != nil {
			t.Fatalf("Solve(%v): %v", budget, err)
		}
		if err := c.SolveInto(ctx, 7, core.SolveContext, cfg, budget, &dst); err != nil {
			t.Fatalf("SolveInto(%v): %v", budget, err)
		}
		if len(dst.Active) != len(want.Active) || dst.Off != want.Off || dst.Dead != want.Dead {
			t.Fatalf("SolveInto(%v) = %+v, want %+v", budget, dst, want)
		}
		for i := range want.Active {
			if dst.Active[i] != want.Active[i] {
				t.Fatalf("SolveInto(%v).Active[%d] = %v, want %v", budget, i, dst.Active[i], want.Active[i])
			}
		}
	}
}

// TestSolveIntoInvalidBudget checks invalid budgets reset dst and report
// the backend's sentinel, matching Solve's bypass behavior.
func TestSolveIntoInvalidBudget(t *testing.T) {
	c, err := New(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	dst := core.Allocation{Active: []float64{1, 2, 3, 4, 5}, Off: 9}
	err = c.SolveInto(context.Background(), 1, core.SolveContext, cfg, -1, &dst)
	if err == nil {
		t.Fatal("SolveInto(-1) succeeded, want error")
	}
	if dst.Active != nil || dst.Off != 0 {
		t.Fatalf("dst not reset on error: %+v", dst)
	}
}
