// Package service is the reapd fleet-allocation daemon behind cmd/reapd:
// it owns a sharded fleet of controller sessions and serves the solver
// over HTTP/JSON using the typed structs of repro/wire.
//
// The architecture follows the registry-of-small-services shape named in
// ROADMAP.md rather than one monolith handler: each endpoint is a small
// single-purpose handler, every payload passes through the wire schema
// (strict decode, explicit versioning), and cross-cutting concerns —
// per-tenant admission control, drain state, counters — compose around
// the handlers rather than inside them.
//
//   - Sharding: the owned fleet is partitioned contiguously into shards,
//     each wrapping its own reap.Fleet behind its own mutex. Stateful
//     work (telemetry steps, reports) serializes per shard and runs
//     concurrently across shards; stateless solves never touch a shard.
//   - Admission: a per-tenant token bucket (tenant = X-Tenant header)
//     charges one token per solve — batch items each cost one — and
//     rejects over-budget work with 429 and a Retry-After hint.
//   - Drain: Drain stops admitting new work (503 draining, Retry-After)
//     while in-flight requests, including open telemetry streams,
//     finish; Server.Drain composes this with http.Server.Shutdown so
//     listeners close too. cmd/reapd wires SIGTERM to exactly that.
//   - Crash safety: with Config.JournalDir set, every acknowledged
//     state mutation (reports, steps, alpha changes) is logged to an
//     internal/journal write-ahead store before the response goes out,
//     and boot replays snapshot + tail back into the fleet — see
//     journal.go and the "Failure model" section of DESIGN.md.
//   - Fault containment: handlers run behind recover boundaries
//     (middleware.go); shard critical sections convert panics into
//     500/CodePanic and quarantine the shard after repeated panics; an
//     in-flight gate sheds overload with 503 before work is done; the
//     X-Deadline-Ms header bounds each request under server policy.
package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	reap "repro"
	"repro/internal/journal"
	"repro/internal/replicate"
	"repro/internal/resilience"
	"repro/wire"
)

// Config sizes a Service. The zero value is not runnable — Devices must
// be positive; every other field has a usable default.
type Config struct {
	// Devices is the number of controller sessions the daemon owns.
	Devices int
	// Shards partitions the fleet; 0 picks min(Devices, 8). Stateful
	// endpoints lock one shard, so more shards mean more telemetry
	// concurrency at the cost of more fleets.
	Shards int
	// BatteryJ/CapacityJ is every device's initial battery state.
	BatteryJ, CapacityJ float64
	// Solver names the backend for every solve; empty = default (plan).
	Solver string
	// CacheSize, when positive, opts the owned fleet into one solve
	// cache of that capacity shared across all shards, quantizing at
	// CacheResolutionJ. Zero (the default) is the plan-direct fast
	// path — see the plan-first re-tier in DESIGN.md.
	CacheSize        int
	CacheResolutionJ float64
	// RatePerSec is the per-tenant admission rate in solves per second;
	// 0 disables rate limiting. Burst is the token-bucket depth, at
	// least 1 (default max(RatePerSec, 1)).
	RatePerSec float64
	Burst      int
	// JournalDir, when set, makes the service crash-safe: every state
	// mutation is appended to a write-ahead journal there before it is
	// acknowledged, and boot replays snapshot + tail back into the
	// fleet. Empty (the default) disables journaling.
	JournalDir string
	// FsyncPolicy bounds power-loss exposure: FsyncAlways syncs per
	// append, FsyncInterval (the default) syncs every FsyncInterval,
	// FsyncNever leaves flushing to kernel writeback. All policies
	// survive process death (kill -9): appends reach the kernel before
	// the response does.
	FsyncPolicy string
	// FsyncInterval is the maintenance-loop tick (default 100ms): the
	// sync cadence under FsyncInterval and the compaction check cadence
	// under every policy.
	FsyncInterval time.Duration
	// SnapshotEvery compacts the journal after this many appends
	// (default 4096), bounding replay time at the next boot.
	SnapshotEvery uint64
	// Role selects the replication role: "" or "primary" acknowledges
	// mutations (and, when journaled, serves GET /v1/replicate to
	// followers); "follower" tails PrimaryAddr, refuses mutations with
	// 503 not_primary, and serves stateless solves normally. Follower
	// requires JournalDir and PrimaryAddr.
	Role string
	// PrimaryAddr is the host:port a follower replicates from, and the
	// Leader hint attached to its refusals.
	PrimaryAddr string
	// FollowerID names this follower in the primary's lag accounting
	// (default "follower").
	FollowerID string
	// RetainSegments keeps that many rotated journal segments after each
	// compaction so replication cursors can read recent history; 0
	// defaults to 4 when journaling is on, negative retains none (the
	// pre-replication behavior).
	RetainSegments int
	// Heartbeat is the replication stream keepalive interval (default
	// 500ms): it bounds how stale a follower's lag measurement can get.
	Heartbeat time.Duration
	// QuarantineAfter takes a shard out of service (503
	// shard_quarantined) after that many panics inside its handlers —
	// state that keeps panicking can no longer be trusted. 0 disables
	// quarantine; panics are still counted and contained.
	QuarantineAfter int
	// MaxInflight sheds requests (503 overloaded, Retry-After) past
	// this many concurrently admitted requests; 0 admits everything.
	MaxInflight int
	// Deadline derives per-request timeouts from the X-Deadline-Ms
	// header, clamped into [0, Max]. The zero policy applies none.
	Deadline resilience.DeadlinePolicy
	// Chaos enables deterministic fault injection — test and load-rig
	// use only. The zero config injects nothing.
	Chaos resilience.ChaosConfig
}

// Service owns the sharded fleet and implements the endpoint handlers.
type Service struct {
	cfg     Config
	shards  []*shard
	bounds  []int // shard i owns global devices [bounds[i], bounds[i+1])
	cache   *reap.SolveCache
	limiter *limiter
	store   *journal.Store // nil when journaling is off
	gate    *resilience.Gate
	chaos   *resilience.Chaos // nil when chaos is off

	// Replication state (see replication.go). hub exists on every
	// journaled node; tailer only on one booted as a follower.
	hub        *replicate.Hub
	tailer     *replicate.Tailer
	tailCancel context.CancelFunc
	tailDone   chan struct{}
	promoteMu  sync.Mutex // serializes promote and Close teardown

	epoch        atomic.Uint64 // persisted fencing term
	maxSeenEpoch atomic.Uint64 // highest epoch observed from peers/clients
	follower     atomic.Bool
	fenced       atomic.Bool // ex-primary that saw a higher epoch
	degraded     atomic.Bool // journal disk full: read-only

	primarySeq atomic.Uint64 // follower: primary's seq as of last frame
	lastFrame  atomic.Int64  // follower: unixnano of last stream frame
	applied    atomic.Uint64 // follower: replicated events applied

	draining atomic.Bool

	solves      atomic.Uint64
	batchItems  atomic.Uint64
	steps       atomic.Uint64
	reports     atomic.Uint64
	alphaSets   atomic.Uint64
	rateLimited atomic.Uint64
	panics      atomic.Uint64

	// appendsAtCompact is the journal's appended-count as of the last
	// compaction — the maintenance loop compacts again SnapshotEvery
	// appends later.
	appendsAtCompact atomic.Uint64

	stop      chan struct{} // closes to stop the maintenance loop
	closeOnce sync.Once
	closeErr  error

	// testHookSolve, when set, runs inside the solve handler between
	// admission and the solve itself — the seam the drain test uses to
	// hold a request in flight deterministically. testHookReport runs
	// inside the shard critical section of every report apply — the
	// seam the quarantine tests use to panic where it hurts.
	testHookSolve  func()
	testHookReport func()
}

// shard is one partition of the owned fleet: a reap.Fleet plus the
// mutex that serializes stateful access to it (Controller sessions are
// not safe for concurrent stepping) and the breaker that quarantines
// the shard when its handlers keep panicking.
type shard struct {
	mu      sync.Mutex
	fleet   *reap.Fleet
	lo, hi  int
	breaker *resilience.Breaker
}

// New builds the sharded service. Every shard's fleet shares one solve
// cache when caching is opted in, so stats and entries aggregate across
// the whole daemon.
func New(cfg Config) (*Service, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("%w: service needs a positive device count, got %d",
			reap.ErrInvalidConfig, cfg.Devices)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > cfg.Devices {
		cfg.Shards = cfg.Devices
	}
	switch cfg.FsyncPolicy {
	case "":
		cfg.FsyncPolicy = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return nil, fmt.Errorf("%w: unknown fsync policy %q (want %s, %s or %s)",
			reap.ErrInvalidConfig, cfg.FsyncPolicy, FsyncAlways, FsyncInterval, FsyncNever)
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = 100 * time.Millisecond
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 4096
	}
	switch cfg.Role {
	case "", wire.RolePrimary:
	case wire.RoleFollower:
		if cfg.JournalDir == "" || cfg.PrimaryAddr == "" {
			return nil, fmt.Errorf("%w: follower role requires a journal dir and a primary address",
				reap.ErrInvalidConfig)
		}
		if cfg.FollowerID == "" {
			cfg.FollowerID = "follower"
		}
	default:
		return nil, fmt.Errorf("%w: unknown role %q (want %q or %q)",
			reap.ErrInvalidConfig, cfg.Role, wire.RolePrimary, wire.RoleFollower)
	}
	switch {
	case cfg.RetainSegments == 0:
		cfg.RetainSegments = 4
	case cfg.RetainSegments < 0:
		cfg.RetainSegments = 0
	}
	s := &Service{cfg: cfg}
	s.gate = resilience.NewGate(cfg.MaxInflight)
	s.chaos = resilience.NewChaos(cfg.Chaos)

	opts := []reap.Option{reap.WithBattery(cfg.BatteryJ, cfg.CapacityJ)}
	if cfg.Solver != "" {
		opts = append(opts, reap.WithSolver(cfg.Solver))
	}
	if cfg.CacheSize > 0 {
		sc, err := reap.NewSolveCache(cfg.CacheSize, cfg.CacheResolutionJ)
		if err != nil {
			return nil, err
		}
		s.cache = sc
		opts = append(opts, reap.WithSharedSolveCache(sc))
	}

	s.bounds = make([]int, cfg.Shards+1)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		lo := i * cfg.Devices / cfg.Shards
		hi := (i + 1) * cfg.Devices / cfg.Shards
		s.bounds[i], s.bounds[i+1] = lo, hi
		fleet, err := reap.NewFleet(hi-lo, opts...)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i] = &shard{fleet: fleet, lo: lo, hi: hi,
			breaker: resilience.NewBreaker(cfg.QuarantineAfter)}
	}

	if cfg.RatePerSec > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(math.Max(cfg.RatePerSec, 1))
		}
		s.limiter = newLimiter(cfg.RatePerSec, float64(burst))
	}

	if cfg.JournalDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, fmt.Errorf("service journal: %w", err)
		}
		epoch, err := replicate.LoadEpoch(cfg.JournalDir)
		if err != nil {
			return nil, fmt.Errorf("service epoch: %w", err)
		}
		s.epoch.Store(epoch)
		hubCfg := replicate.HubConfig{Store: s.store, Epoch: s.epoch.Load, Heartbeat: cfg.Heartbeat}
		if s.chaos != nil {
			hubCfg.WrapStream = s.chaos.WrapStream
		}
		s.hub = replicate.NewHub(hubCfg)
		s.stop = make(chan struct{})
		resilience.Go("journal-maintenance", s.backgroundPanic, s.maintain)
		if cfg.Role == wire.RoleFollower {
			s.follower.Store(true)
			s.startTail()
		}
	}
	return s, nil
}

// backgroundPanic is the recover observer for the service's background
// goroutines: the panic is counted and the daemon keeps serving (with
// degraded maintenance) instead of dying.
func (s *Service) backgroundPanic(string, any) { s.panics.Add(1) }

// Devices returns the number of controller sessions the service owns.
func (s *Service) Devices() int { return s.cfg.Devices }

// Shards returns the shard count.
func (s *Service) Shards() int { return len(s.shards) }

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain flips the service into drain mode: new work is refused with
// 503/CodeDraining while requests already admitted run to completion.
// Open telemetry streams finish their current event and close. Drain
// does not touch listeners — Server.Drain pairs it with
// http.Server.Shutdown for the full SIGTERM sequence.
func (s *Service) Drain() { s.draining.Store(true) }

// shardFor maps a global device index to its shard, or an unknown-device
// error.
func (s *Service) shardFor(device int) (*shard, error) {
	if device < 0 || device >= s.cfg.Devices {
		return nil, wire.Errorf(wire.CodeUnknownDevice,
			"device %d outside owned fleet [0, %d)", device, s.cfg.Devices)
	}
	// Contiguous partition: shard sizes differ by at most one, so the
	// proportional guess lands on the owner or its neighbor.
	i := device * len(s.shards) / s.cfg.Devices
	for i+1 < len(s.bounds) && device >= s.bounds[i+1] {
		i++
	}
	for i > 0 && device < s.bounds[i] {
		i--
	}
	return s.shards[i], nil
}

// Handler returns the service's HTTP routes wrapped in the resilience
// middleware chain (recover → chaos → overload gate → deadline → mux;
// see middleware.go).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch-solve", s.handleBatchSolve)
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("POST /v1/alpha", s.handleAlpha)
	mux.HandleFunc("POST /v1/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/replicate", s.handleReplicate)
	mux.HandleFunc("POST /v1/replicate/ack", s.handleReplicateAck)
	mux.HandleFunc("POST /v1/promote", s.handlePromote)
	var h http.Handler = mux
	h = s.deadlineMiddleware(h)
	h = s.gateMiddleware(h)
	if s.chaos != nil {
		h = s.chaos.Middleware(h)
	}
	return s.recoverMiddleware(h)
}

// admit runs the cross-cutting request gates — drain state, then the
// tenant token bucket at the given solve cost — writing the refusal
// itself when the request may not proceed.
func (s *Service) admit(w http.ResponseWriter, r *http.Request, cost float64) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable,
			wire.Errorf(wire.CodeDraining, "server is draining"))
		return false
	}
	if s.limiter == nil || cost <= 0 {
		return true
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	retryAfter, ok := s.limiter.admit(tenant, cost)
	if !ok {
		s.rateLimited.Add(1)
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests,
			wire.Errorf(wire.CodeRateLimited, "tenant %q over admission rate, retry in %ds", tenant, secs))
		return false
	}
	return true
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, 1) {
		return
	}
	var req wire.SolveRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if s.testHookSolve != nil {
		s.testHookSolve()
	}
	resp, werr := s.solveOne(r.Context(), wire.SolveItem{
		Config: req.Config, BudgetJ: req.BudgetJ, Solver: req.Solver,
	})
	if werr != nil {
		writeError(w, statusFor(werr), werr)
		return
	}
	s.solves.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// solveOne answers one stateless solve item — the shared core of the
// solve and batch-solve endpoints.
func (s *Service) solveOne(ctx context.Context, item wire.SolveItem) (*wire.SolveResponse, *wire.Error) {
	name := item.Solver
	if name == "" {
		name = reap.DefaultSolver
	}
	solver, err := reap.LookupSolver(name)
	if err != nil {
		return nil, wire.AsError(err)
	}
	cfg := item.Config.ToReap()
	alloc, err := solver.Solve(ctx, cfg, item.BudgetJ)
	if err != nil {
		return nil, wire.AsError(err)
	}
	return wire.NewSolveResponse(cfg, alloc), nil
}

func (s *Service) handleBatchSolve(w http.ResponseWriter, r *http.Request) {
	// Charging admission per item keeps one tenant's 10k-item batch
	// from being cheaper than 10k solos; the body must decode first to
	// know the cost, so decode precedes admission here.
	var req wire.BatchSolveRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if !s.admit(w, r, float64(len(req.Items))) {
		return
	}
	reqs := make([]reap.Request, len(req.Items))
	for i, item := range req.Items {
		reqs[i] = item.ToRequest()
	}
	results := reap.SolveBatch(r.Context(), reqs)
	resp := wire.BatchSolveResponse{V: wire.Version, Results: make([]wire.SolveResult, len(results))}
	for i, res := range results {
		if res.Err != nil {
			resp.Results[i].Error = wire.AsError(res.Err)
			continue
		}
		resp.Results[i].Solve = wire.NewSolveResponse(reqs[i].Config, res.Allocation)
	}
	s.batchItems.Add(uint64(len(req.Items)))
	writeJSON(w, http.StatusOK, &resp)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, 0) { // reports are cheap: drain-gated, not rate-charged
		return
	}
	if !s.gateWrite(w, r) {
		return
	}
	var req wire.ReportRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	accepted, werr := s.applyReportBatch(req.Reports)
	if werr != nil {
		writeError(w, statusFor(werr), werr)
		return
	}
	writeJSON(w, http.StatusOK, &wire.ReportResponse{V: wire.Version, Accepted: accepted})
}

// applyReportBatch applies device reports in request order. Reports are
// grouped into the longest prefix whose owning shards can be locked in
// ascending order; a group applies and journals as ONE record while
// every touched shard lock is held, so the journal's per-shard
// subsequence still matches apply order and a sorted gateway batch —
// the common case — costs one append total instead of one per shard
// run (the difference between ~90% and <15% journaling overhead, see
// BenchmarkReportPath). On failure the applied-and-journaled prefix
// stays applied; the error names the report that stopped the batch.
func (s *Service) applyReportBatch(reports []wire.DeviceReport) (int, *wire.Error) {
	accepted := 0
	for accepted < len(reports) {
		n, werr := s.reportGroup(reports[accepted:])
		accepted += n
		if werr != nil {
			return accepted, werr
		}
		if n == 0 {
			// A group always applies at least one report or errors;
			// refuse to spin if that invariant ever breaks.
			return accepted, wire.Errorf(wire.CodeInternal, "report batch made no progress")
		}
	}
	return accepted, nil
}

// reportGroup applies the longest applicable prefix of reports, locking
// each newly-touched shard in ascending index order and holding all of
// them until the applied prefix is journaled as one record. A group
// ends at a report owned by a lower-indexed shard not already held
// (out-of-order batches fall back to multiple groups — ascending
// acquisition is what keeps concurrent batches and compaction
// deadlock-free), at a failing report, or at the end of the batch.
func (s *Service) reportGroup(reports []wire.DeviceReport) (n int, werr *wire.Error) {
	var held []*shard // ascending by sh.lo; all released below
	var cur *shard    // shard owning the report being applied — panic attribution
	defer func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].mu.Unlock()
		}
	}()
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		s.panics.Add(1)
		if cur != nil {
			cur.breaker.RecordPanic()
		}
		werr = wire.Errorf(wire.CodePanic, "shard handler panicked: %v", rec)
	}()
	for n < len(reports) {
		rep := reports[n]
		sh, err := s.shardFor(rep.Device)
		if err != nil {
			werr = wire.AsError(err)
			break
		}
		if !shardHeld(held, sh) {
			if len(held) > 0 && sh.lo < held[len(held)-1].lo {
				break // lower-indexed shard: close this group, start the next
			}
			if werr = s.checkShard(sh); werr != nil {
				break
			}
			sh.mu.Lock()
			held = append(held, sh)
			cur = sh
			if s.testHookReport != nil {
				s.testHookReport()
			}
		}
		cur = sh
		ctl, derr := sh.fleet.Device(rep.Device - sh.lo)
		if derr != nil {
			werr = wire.AsError(derr)
			break
		}
		if rerr := ctl.Report(rep.ConsumedJ); rerr != nil {
			werr = wire.AsError(rerr)
			break
		}
		n++
	}
	if n > 0 {
		s.reports.Add(uint64(n))
		if jerr := s.journalAppend(&journalEvent{Op: opReport, Reports: reports[:n]}); jerr != nil && werr == nil {
			werr = jerr
		}
	}
	return n, werr
}

// shardHeld reports whether sh is among the locks this group holds.
// Linear scan: groups touch at most a handful of shards.
func shardHeld(held []*shard, sh *shard) bool {
	for _, h := range held {
		if h == sh {
			return true
		}
	}
	return false
}

// reportDevice applies one consumption report — the telemetry path's
// entry into the shared report machinery.
func (s *Service) reportDevice(device int, consumedJ float64) *wire.Error {
	_, werr := s.applyReportBatch([]wire.DeviceReport{{Device: device, ConsumedJ: consumedJ}})
	return werr
}

// checkShard refuses work for a quarantined shard: after
// QuarantineAfter panics inside its critical sections, the shard's
// state can no longer be trusted and its devices answer 503 until the
// process restarts (and replays a journal of only acknowledged,
// pre-panic mutations).
func (s *Service) checkShard(sh *shard) *wire.Error {
	if sh.breaker.Quarantined() {
		return wire.Errorf(wire.CodeShardQuarantined,
			"shard owning devices [%d, %d) is quarantined after repeated panics", sh.lo, sh.hi)
	}
	return nil
}

// recoverShard is the deferred recover boundary for shard critical
// sections: a panic is counted against the service and the shard's
// breaker, converted into a 500/CodePanic wire error, and the shard
// lock still releases normally via its own deferred unlock.
func (s *Service) recoverShard(sh *shard, werr **wire.Error) {
	rec := recover()
	if rec == nil {
		return
	}
	s.panics.Add(1)
	sh.breaker.RecordPanic()
	*werr = wire.Errorf(wire.CodePanic,
		"shard handler panicked: %v", rec)
}

// stepDevice plans one owned device's next period from its reported
// harvest, under its shard's lock, journaling the successful step
// before it is acknowledged.
func (s *Service) stepDevice(ctx context.Context, device int, harvestJ float64) (alloc reap.Allocation, cfg reap.Config, werr *wire.Error) {
	sh, err := s.shardFor(device)
	if err != nil {
		return reap.Allocation{}, reap.Config{}, wire.AsError(err)
	}
	if werr := s.checkShard(sh); werr != nil {
		return reap.Allocation{}, reap.Config{}, werr
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	defer s.recoverShard(sh, &werr)
	ctl, derr := sh.fleet.Device(device - sh.lo)
	if derr != nil {
		return reap.Allocation{}, reap.Config{}, wire.AsError(derr)
	}
	alloc, serr := ctl.StepContext(ctx, harvestJ)
	if serr != nil {
		return reap.Allocation{}, reap.Config{}, wire.AsError(serr)
	}
	s.steps.Add(1)
	if jerr := s.journalAppend(&journalEvent{Op: opStep, Device: device, HarvestJ: &harvestJ}); jerr != nil {
		return reap.Allocation{}, reap.Config{}, jerr
	}
	return alloc, ctl.Config(), nil
}

func (s *Service) handleAlpha(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, 0) { // config changes are rare: drain-gated only
		return
	}
	if !s.gateWrite(w, r) {
		return
	}
	var req wire.AlphaRequest
	if err := wire.DecodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		writeError(w, http.StatusBadRequest, wire.AsError(err))
		return
	}
	if werr := s.setAlpha(req.Device, req.Alpha); werr != nil {
		writeError(w, statusFor(werr), werr)
		return
	}
	writeJSON(w, http.StatusOK, &wire.AlphaResponse{V: wire.Version, Device: req.Device, Alpha: req.Alpha})
}

// setAlpha re-weights one device's accuracy-time objective, journaled
// like every other mutation.
func (s *Service) setAlpha(device int, alpha float64) (werr *wire.Error) {
	sh, err := s.shardFor(device)
	if err != nil {
		return wire.AsError(err)
	}
	if werr := s.checkShard(sh); werr != nil {
		return werr
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	defer s.recoverShard(sh, &werr)
	ctl, derr := sh.fleet.Device(device - sh.lo)
	if derr != nil {
		return wire.AsError(derr)
	}
	if serr := ctl.SetAlpha(alpha); serr != nil {
		return wire.AsError(serr)
	}
	s.alphaSets.Add(1)
	return s.journalAppend(&journalEvent{Op: opAlpha, Device: device, Alpha: &alpha})
}

// handleTelemetry is the streaming ingest endpoint: NDJSON
// TelemetryEvent lines in, one TelemetryResult line out per event, in
// order, flushed per event so devices see their allocation as soon as
// it is planned. Per-event failures answer on the stream and keep it
// open; only an unreadable stream ends the exchange. A drain finishes
// the in-flight event and then closes the stream, so SIGTERM never
// abandons a half-processed event.
func (s *Service) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, 0) { // charged per event below, not per stream
		return
	}
	if !s.gateWrite(w, r) { // every telemetry event mutates state
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	sc.Split(scanCompleteLines)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev wire.TelemetryEvent
		res := s.telemetryEvent(r.Context(), tenant, line, &ev)
		if err := enc.Encode(res); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		if s.draining.Load() {
			return // finish current event, then close the stream
		}
	}
}

// scanCompleteLines is bufio.ScanLines minus its end-of-input special
// case: only newline-terminated lines are events. A client that dies
// mid-line leaves an unterminated tail, and treating that fragment as
// an event (as ScanLines would) turns every abrupt disconnect into a
// spurious malformed-event result; the fragment is dropped instead.
func scanCompleteLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		line := data[:i]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		return i + 1, line, nil
	}
	if atEOF {
		// Unterminated tail: consume without emitting.
		return len(data), nil, nil
	}
	return 0, nil, nil
}

// telemetryEvent processes one NDJSON line: strict decode, version and
// admission checks, then consumption report and/or harvest step.
func (s *Service) telemetryEvent(ctx context.Context, tenant string, line []byte, ev *wire.TelemetryEvent) *wire.TelemetryResult {
	res := &wire.TelemetryResult{V: wire.Version, Device: -1}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(ev); err != nil {
		res.Error = wire.Errorf(wire.CodeMalformed, "decoding telemetry event: %v", err)
		return res
	}
	res.Device = ev.Device
	if err := wire.CheckVersion(ev.V); err != nil {
		res.Error = wire.AsError(err)
		return res
	}
	// A step is a solve; charge it like one. Reports stay uncharged.
	if ev.HarvestJ != nil && s.limiter != nil {
		if retry, ok := s.limiter.admit(tenant, 1); !ok {
			s.rateLimited.Add(1)
			res.Error = wire.Errorf(wire.CodeRateLimited,
				"over admission rate, retry in %v", retry.Round(time.Millisecond))
			return res
		}
	}
	if ev.ConsumedJ != nil {
		if werr := s.reportDevice(ev.Device, *ev.ConsumedJ); werr != nil {
			res.Error = werr
			return res
		}
	}
	if ev.HarvestJ != nil {
		alloc, _, werr := s.stepDevice(ctx, ev.Device, *ev.HarvestJ)
		if werr != nil {
			res.Error = werr
			return res
		}
		wa := wire.FromAllocation(alloc)
		res.Allocation = &wa
	}
	return res
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the service counters. Cache is nil when the fleet
// runs plan-direct (no cache configured) and non-nil — possibly all
// zeros — when a cache exists but is cold; reapd's stats endpoint keeps
// the two distinguishable because Fleet.CacheStats reports presence
// separately from counters.
func (s *Service) Stats() *wire.StatsResponse {
	resp := &wire.StatsResponse{
		V:           wire.Version,
		Devices:     s.cfg.Devices,
		Shards:      len(s.shards),
		Solves:      s.solves.Load(),
		BatchItems:  s.batchItems.Load(),
		Steps:       s.steps.Load(),
		Reports:     s.reports.Load(),
		AlphaSets:   s.alphaSets.Load(),
		RateLimited: s.rateLimited.Load(),
		Shed:        s.gate.Shed(),
		Panics:      s.panics.Load(),
		Draining:    s.draining.Load(),
	}
	// TotalBatteryJ is the reconciliation handle for crash tests and
	// operators alike: one number that moves with every journaled
	// mutation, summed under the shard locks.
	for _, sh := range s.shards {
		if sh.breaker.Quarantined() {
			resp.ShardsQuarantined++
		}
		sh.mu.Lock()
		for local := 0; local < sh.hi-sh.lo; local++ {
			if ctl, err := sh.fleet.Device(local); err == nil {
				resp.TotalBatteryJ += ctl.Battery()
			}
		}
		sh.mu.Unlock()
	}
	// All shards share one cache, so any shard's fleet answers for the
	// daemon; a plan-direct fleet answers ok=false and Cache stays nil.
	if stats, ok := s.shards[0].fleet.CacheStats(); ok {
		resp.Cache = wire.FromCacheStats(stats)
	}
	if s.store != nil {
		js := s.store.Stats()
		resp.Journal = &wire.JournalStats{
			Seq:         js.Seq,
			SnapshotSeq: js.SnapshotSeq,
			Replayed:    js.Replayed,
			Appended:    js.Appended,
			TornTail:    js.TornTail,
			Compactions: js.Compactions,
			FsyncPolicy: s.cfg.FsyncPolicy,
		}
	}
	resp.Replication = s.replicationStats()
	return resp
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := &wire.HealthzResponse{V: wire.Version, Status: wire.HealthOK}
	if s.cfg.JournalDir != "" {
		resp.Role = s.role()
		resp.Epoch = s.epoch.Load()
		if s.follower.Load() {
			if lf := s.lastFrame.Load(); lf != 0 {
				lag := time.Since(time.Unix(0, lf)).Seconds()
				resp.ReplicationLagS = &lag
			}
		}
	}
	if s.draining.Load() {
		resp.Status = wire.HealthDraining
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor maps wire error codes onto HTTP statuses.
func statusFor(e *wire.Error) int {
	switch e.Code {
	case wire.CodeMalformed, wire.CodeUnknownVersion, wire.CodeInvalidConfig,
		wire.CodeBudgetNegative, wire.CodeUnknownSolver, wire.CodeUnknownDevice:
		return http.StatusBadRequest
	case wire.CodeRateLimited:
		return http.StatusTooManyRequests
	case wire.CodeDraining, wire.CodeOverloaded, wire.CodeShardQuarantined,
		wire.CodeNotPrimary, wire.CodeDegraded:
		return http.StatusServiceUnavailable
	case wire.CodeStaleEpoch:
		return http.StatusConflict
	case wire.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case wire.CodeInfeasible, wire.CodeSolverFailure:
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, e *wire.Error) {
	writeJSON(w, status, &wire.ErrorResponse{V: wire.Version, Error: *e})
}
