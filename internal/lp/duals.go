package lp

// Dual-value (shadow price) extraction. For a maximization LP, the dual
// value of constraint i is ∂z*/∂bᵢ: how much the optimal objective
// improves per unit of right-hand side. REAP uses the energy constraint's
// dual as the marginal value of harvested energy — the "accuracy per
// joule" signal a harvesting runtime can act on (e.g. to decide whether
// chasing more light is worth it).
//
// Duals are read from the optimal objective row: with the c−z reduced-cost
// convention, a slack column sᵢ (unit coefficient on row i) carries
// reduced cost −yᵢ and a surplus column (−1 coefficient) carries +yᵢ.
// Rows that were sign-flipped during normalization flip their dual back.
// Equality rows have no slack column; their duals are not recovered here
// and are reported as NaN (callers that need them can perturb and
// re-solve).

import "math"

// SolveWithDuals runs Solve and additionally extracts the dual value of
// every inequality constraint at the optimum. The returned slice is
// index-aligned with p.Constraints; equality rows hold NaN.
func SolveWithDuals(p *Problem) (Solution, []float64, error) {
	if err := p.Validate(); err != nil {
		return Solution{Status: Infeasible}, nil, err
	}
	n := p.NumVars()
	m := p.NumConstraints()
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 100 * (n + m + 10)
	}

	t, meta, nArt := buildWithMeta(p)
	iters := 0
	if nArt > 0 {
		st, it := t.iterate(maxIter)
		iters += it
		if st == IterationLimit {
			return Solution{Status: IterationLimit, Iterations: iters}, nil, nil
		}
		if t.rows[t.m][t.total] > 1e-7 {
			return Solution{Status: Infeasible, Iterations: iters}, nil, nil
		}
		t.dropArtificials(nArt)
		t.setObjective(p.Objective)
	}
	st, it := t.iterate(maxIter - iters)
	iters += it
	sol := Solution{Status: st, Iterations: iters}
	if st != Optimal && st != IterationLimit {
		return sol, nil, nil
	}
	sol.X = t.extract(n)
	sol.Objective = p.Value(sol.X)

	duals := make([]float64, m)
	obj := t.rows[t.m]
	for i := 0; i < m; i++ {
		switch {
		case meta[i].slackCol < 0:
			duals[i] = math.NaN() // equality row
		case meta[i].surplus:
			duals[i] = obj[meta[i].slackCol] * meta[i].flip
		default:
			duals[i] = -obj[meta[i].slackCol] * meta[i].flip
		}
	}
	return sol, duals, nil
}

// rowMeta records how each original constraint row was transformed.
type rowMeta struct {
	slackCol int     // column of the slack/surplus variable, -1 for EQ
	surplus  bool    // true when the column carries a -1 (GE surplus)
	flip     float64 // -1 when the row was negated during normalization
}

// buildWithMeta mirrors build but records per-row slack metadata.
func buildWithMeta(p *Problem) (*tableau, []rowMeta, int) {
	n := p.NumVars()
	m := p.NumConstraints()

	type row struct {
		coeffs []float64
		op     Op
		rhs    float64
		flip   float64
	}
	rows := make([]row, m)
	for i, c := range p.Constraints {
		r := row{coeffs: append([]float64(nil), c.Coeffs...), op: c.Op, rhs: c.RHS, flip: 1}
		if r.rhs < 0 {
			for j := range r.coeffs {
				r.coeffs[j] = -r.coeffs[j]
			}
			r.rhs = -r.rhs
			r.flip = -1
			switch r.op {
			case LE:
				r.op = GE
			case GE:
				r.op = LE
			}
		}
		rows[i] = r
	}

	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	total := n + nSlack + nArt
	t := &tableau{
		rows:  make([][]float64, m+1),
		basis: make([]int, m),
		m:     m,
		total: total,
	}
	for i := range t.rows {
		t.rows[i] = make([]float64, total+1)
	}
	meta := make([]rowMeta, m)

	slackAt, artAt := n, n+nSlack
	for i, r := range rows {
		copy(t.rows[i], r.coeffs)
		t.rows[i][total] = r.rhs
		meta[i] = rowMeta{slackCol: -1, flip: r.flip}
		switch r.op {
		case LE:
			t.rows[i][slackAt] = 1
			t.basis[i] = slackAt
			meta[i].slackCol = slackAt
			slackAt++
		case GE:
			t.rows[i][slackAt] = -1
			meta[i].slackCol = slackAt
			meta[i].surplus = true
			slackAt++
			t.rows[i][artAt] = 1
			t.basis[i] = artAt
			artAt++
		case EQ:
			t.rows[i][artAt] = 1
			t.basis[i] = artAt
			artAt++
		}
	}

	if nArt > 0 {
		obj := t.rows[m]
		for j := n + nSlack; j < total; j++ {
			obj[j] = -1
		}
		for i := 0; i < m; i++ {
			if t.basis[i] >= n+nSlack {
				addRow(obj, t.rows[i], 1)
			}
		}
	} else {
		t.setObjective(p.Objective)
	}
	return t, meta, nArt
}
