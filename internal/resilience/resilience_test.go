package resilience

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestGoRecoversPanics(t *testing.T) {
	type report struct {
		name string
		rec  any
	}
	got := make(chan report, 1)
	Go("boomer", func(name string, r any) { got <- report{name, r} }, func() {
		panic("boom")
	})
	select {
	case r := <-got:
		if r.name != "boomer" || r.rec != "boom" {
			t.Errorf("onPanic got (%q, %v), want (boomer, boom)", r.name, r.rec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("panic not delivered to onPanic")
	}

	// A nil observer must not crash the process.
	done := make(chan struct{})
	Go("silent", nil, func() { defer close(done); panic("ignored") })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("goroutine with nil observer did not run")
	}
}

func TestSafe(t *testing.T) {
	if rec := Safe(func() {}); rec != nil {
		t.Errorf("Safe on clean fn = %v, want nil", rec)
	}
	if rec := Safe(func() { panic(42) }); rec != 42 {
		t.Errorf("Safe on panicking fn = %v, want 42", rec)
	}
}

func TestBreakerQuarantinesAtThreshold(t *testing.T) {
	b := NewBreaker(3)
	for i := 0; i < 2; i++ {
		if b.RecordPanic() {
			t.Fatalf("quarantined after %d panics, threshold 3", i+1)
		}
	}
	if b.Quarantined() {
		t.Fatal("quarantined below threshold")
	}
	if !b.RecordPanic() || !b.Quarantined() {
		t.Fatal("not quarantined at threshold")
	}
	if b.Panics() != 3 {
		t.Errorf("panics = %d, want 3", b.Panics())
	}

	off := NewBreaker(0)
	for i := 0; i < 100; i++ {
		off.RecordPanic()
	}
	if off.Quarantined() {
		t.Error("threshold 0 must never quarantine")
	}
	if off.Panics() != 100 {
		t.Errorf("disabled breaker still counts: panics = %d, want 100", off.Panics())
	}
}

func TestGateShedsOverMax(t *testing.T) {
	g := NewGate(2)
	if !g.Enter() || !g.Enter() {
		t.Fatal("gate refused entries within capacity")
	}
	if g.Enter() {
		t.Fatal("gate admitted over capacity")
	}
	if g.Shed() != 1 {
		t.Errorf("shed = %d, want 1", g.Shed())
	}
	g.Leave()
	if !g.Enter() {
		t.Error("gate refused after a slot freed")
	}

	unlimited := NewGate(0)
	for i := 0; i < 10; i++ {
		if !unlimited.Enter() {
			t.Fatal("unlimited gate shed a request")
		}
	}
	if unlimited.Shed() != 0 {
		t.Errorf("unlimited gate shed = %d, want 0", unlimited.Shed())
	}
}

func TestGateUnderConcurrency(t *testing.T) {
	g := NewGate(4)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g.Enter() {
				time.Sleep(time.Millisecond)
				g.Leave()
			}
		}()
	}
	wg.Wait()
	if g.Inflight() != 0 {
		t.Errorf("inflight = %d after all leave, want 0", g.Inflight())
	}
}

func TestDeadlinePolicyTimeout(t *testing.T) {
	p := DeadlinePolicy{Default: 200 * time.Millisecond, Max: time.Second}
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 200 * time.Millisecond},       // absent → default
		{"50", 50 * time.Millisecond},      // within max
		{"5000", time.Second},              // capped by policy
		{"0", 200 * time.Millisecond},      // non-positive → default
		{"-3", 200 * time.Millisecond},     // negative → default
		{"banana", 200 * time.Millisecond}, // unparseable → default
		{"1000000", time.Second},           // huge → capped
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		if tc.header != "" {
			r.Header.Set(DeadlineHeader, tc.header)
		}
		if got := p.Timeout(r); got != tc.want {
			t.Errorf("header %q: timeout = %v, want %v", tc.header, got, tc.want)
		}
	}

	// No policy, no header → context passes through with no deadline.
	r := httptest.NewRequest(http.MethodGet, "/", nil)
	ctx, cancel := DeadlinePolicy{}.Context(r)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero policy set a deadline")
	}

	// Header under a Max-only policy (Default 0) is honored.
	r = httptest.NewRequest(http.MethodGet, "/", nil)
	r.Header.Set(DeadlineHeader, "25")
	maxOnly := DeadlinePolicy{Max: time.Second}
	if got := maxOnly.Timeout(r); got != 25*time.Millisecond {
		t.Errorf("max-only policy: timeout = %v, want 25ms", got)
	}
	ctx, cancel = maxOnly.Context(r)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Error("max-only policy with header set no deadline")
	}
}

func TestChaosDeterministicSequence(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, PanicP: 0.5}
	seq := func() []bool {
		c := NewChaos(cfg)
		var out []bool
		for i := 0; i < 32; i++ {
			_, p, _ := c.roll()
			out = append(out, p)
		}
		return out
	}
	a, b := seq(), seq()
	anyFired := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded runs", i)
		}
		anyFired = anyFired || a[i]
	}
	if !anyFired {
		t.Error("PanicP=0.5 over 32 rolls never fired")
	}
	if NewChaos(ChaosConfig{}) != nil {
		t.Error("zero config must disable chaos")
	}
}

func TestChaosPanicInjection(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, PanicP: 1})
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran despite injected panic")
	}))
	rec := Safe(func() {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	})
	if rec == nil {
		t.Fatal("injected panic did not propagate")
	}
	if _, p, _ := c.Injected(); p != 1 {
		t.Errorf("injected panics = %d, want 1", p)
	}
}

func TestChaosTornConnection(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, TearP: 1})
	srv := httptest.NewServer(c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran despite torn connection")
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("want transport error from torn connection, got status %d", resp.StatusCode)
	}
	if _, _, tears := c.Injected(); tears != 1 {
		t.Errorf("injected tears = %d, want 1", tears)
	}
}

func TestChaosLatency(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1, LatencyP: 1, Latency: 30 * time.Millisecond})
	var ran bool
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { ran = true }))
	t0 := time.Now()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if !ran {
		t.Fatal("handler did not run")
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Errorf("request took %v, want >= 30ms injected latency", d)
	}
}
