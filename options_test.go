package reap

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestNewConfigDefaultsMatchPaper(t *testing.T) {
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig()
	if cfg.Period != want.Period || cfg.POff != want.POff || cfg.Alpha != want.Alpha {
		t.Fatalf("NewConfig() = %+v, want the paper defaults %+v", cfg, want)
	}
	if len(cfg.DPs) != 5 || cfg.DPs[0].Name != "DP1" {
		t.Fatalf("NewConfig() design points %v", cfg.DPs)
	}
}

func TestOptionCombinators(t *testing.T) {
	dps := []DesignPoint{
		{Name: "hi", Accuracy: 0.9, Power: 2e-3},
		{Name: "lo", Accuracy: 0.6, Power: 1e-3},
	}
	cfg, err := NewConfig(
		WithPeriod(1800),
		WithOffPower(1e-5),
		WithAlpha(2),
		WithDesignPoints(dps...),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Period != 1800 || cfg.POff != 1e-5 || cfg.Alpha != 2 || len(cfg.DPs) != 2 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	// The DP slice must be a copy: mutating the caller's slice afterwards
	// must not reach the config.
	dps[0].Accuracy = 0
	if cfg.DPs[0].Accuracy != 0.9 {
		t.Fatal("WithDesignPoints aliases the caller's slice")
	}

	// WithConfig must copy too.
	src := DefaultConfig()
	cfg2, err := NewConfig(WithConfig(src))
	if err != nil {
		t.Fatal(err)
	}
	src.DPs[0].Power = 1
	if cfg2.DPs[0].Power == 1 {
		t.Fatal("WithConfig aliases the caller's design-point slice")
	}
}

func TestOptionOrderLaterWins(t *testing.T) {
	cfg, err := NewConfig(WithAlpha(1), WithAlpha(3))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 3 {
		t.Fatalf("alpha %v, want the later option's 3", cfg.Alpha)
	}
	// WithConfig replaces wholesale; field options after it refine.
	base := DefaultConfig()
	base.Alpha = 5
	cfg, err = NewConfig(WithAlpha(2), WithConfig(base))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Alpha != 5 {
		t.Fatalf("WithConfig should override the earlier WithAlpha, got %v", cfg.Alpha)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := map[string]Option{
		"negative alpha":   WithAlpha(-1),
		"NaN alpha":        WithAlpha(math.NaN()),
		"zero period":      WithPeriod(0),
		"negative period":  WithPeriod(-3600),
		"negative poff":    WithOffPower(-1),
		"no design points": WithDesignPoints(),
		"nil backend":      WithSolverBackend(nil),
		"bad battery":      WithBattery(10, 5),
		"negative battery": WithBattery(-1, 5),
		"bad workers":      WithWorkers(-1),
		"nil option":       nil,
	}
	for name, opt := range cases {
		if _, err := New(opt); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: err %v, want ErrInvalidConfig", name, err)
		}
	}
	if _, err := New(WithSolver("missing")); !errors.Is(err, ErrUnknownSolver) {
		t.Errorf("WithSolver(missing): err %v, want ErrUnknownSolver", err)
	}
}

func TestNewDefaultSessionMatchesLegacyController(t *testing.T) {
	ctl, err := New()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := NewController(DefaultConfig(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []float64{0.1, 2, 5, 8, 12} {
		a, err := ctl.Step(h)
		if err != nil {
			t.Fatal(err)
		}
		b, err := legacy.Step(h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Objective(ctl.Config())-b.Objective(legacy.Config())) > 1e-12 {
			t.Fatalf("New() and NewController diverge at %v J", h)
		}
	}
}

func TestNewWithEnumerateBackend(t *testing.T) {
	ctl, err := New(WithSolver(SolverEnumerate), WithBattery(20, 100))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := ctl.Step(4.5)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.ActiveTime() == 0 {
		t.Fatal("enumerate-backed session produced an empty schedule")
	}
	if ctl.Battery() > 100 {
		t.Fatalf("battery %v exceeds capacity", ctl.Battery())
	}
}

func TestNewWithCustomBackend(t *testing.T) {
	calls := 0
	spy := SolverFunc(func(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
		calls++
		return LookupSolverMust(t, SolverSimplex).Solve(ctx, cfg, budget)
	})
	ctl, err := New(WithSolverBackend(spy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Step(5); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("custom backend called %d times, want 1", calls)
	}
}

// LookupSolverMust is a test helper that fails the test on lookup errors.
func LookupSolverMust(t *testing.T, name string) Solver {
	t.Helper()
	s, err := LookupSolver(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
