package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/solar"
	"repro/internal/synth"
)

// paperCfg is the optimizer configuration built from the published Table 2
// values — the source the paper's Figures 5–7 derive from.
func paperCfg() core.Config { return core.DefaultConfig() }

var (
	smallOnce sync.Once
	smallDS   *synth.Dataset
	smallErr  error
)

// smallCorpus keeps training-based tests quick.
func smallCorpus(t *testing.T) *synth.Dataset {
	t.Helper()
	smallOnce.Do(func() {
		smallDS, smallErr = synth.NewDataset(synth.CorpusConfig{
			NumUsers: 8, TotalWindows: 1600, Seed: 2019,
		})
	})
	if smallErr != nil {
		t.Fatal(smallErr)
	}
	return smallDS
}

func TestTable2Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res, err := Table2On(smallCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if math.Abs(row.AccuracyPct-res.PaperAccuracyPct[i]) > 5 {
			t.Errorf("%s accuracy %.1f%%, paper %.0f%% (tolerance 5 on the small corpus)",
				row.Name, row.AccuracyPct, res.PaperAccuracyPct[i])
		}
		if row.EnergyMJ <= 0 || row.PowerMW <= 0 || row.TotalMs <= 0 {
			t.Errorf("%s has non-positive physicals", row.Name)
		}
	}
	out := res.Render()
	for _, want := range []string{"DP1", "DP5", "power(mW)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure3Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	res, err := Figure3On(smallCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 24 {
		t.Fatalf("%d points, want 24", len(res.Points))
	}
	front := res.Front()
	if len(front) < 4 {
		t.Fatalf("front of %d", len(front))
	}
	published := 0
	for _, p := range res.Points {
		if p.Published {
			published++
		}
	}
	if published != 5 {
		t.Fatalf("%d published points", published)
	}
	if !strings.Contains(res.Render(), "Pareto") {
		t.Error("render missing front marker legend")
	}
}

func TestFigure4Experiment(t *testing.T) {
	res, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 9.9 J total, ~47% sensors.
	if math.Abs(res.TotalJ-9.9) > 9.9*0.15 {
		t.Errorf("DP1 hour total %.2f J, paper 9.9", res.TotalJ)
	}
	if math.Abs(res.SensorSharePct-47) > 47*0.15 {
		t.Errorf("sensor share %.1f%%, paper ~47%%", res.SensorSharePct)
	}
	var sum float64
	for _, v := range res.Components {
		sum += v
	}
	if math.Abs(sum-res.TotalJ) > 1e-9 {
		t.Errorf("components sum %v != total %v", sum, res.TotalJ)
	}
	if !strings.Contains(res.Render(), "accelerometer") {
		t.Error("render missing components")
	}
}

func TestFigure5Experiment(t *testing.T) {
	res, err := Figure5(paperCfg(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 50 {
		t.Fatalf("sweep has only %d points", len(res.Points))
	}
	// Paper claim: at 5 J REAP mixes DP4 ~42% and DP5 ~58%.
	p5 := res.At(5.0)
	if math.Abs(p5.Mix[3]-0.42) > 0.03 || math.Abs(p5.Mix[4]-0.58) > 0.03 {
		t.Errorf("5 J mix DP4=%.2f DP5=%.2f, paper 0.42/0.58", p5.Mix[3], p5.Mix[4])
	}
	// REAP accuracy must dominate every static curve everywhere.
	for _, p := range res.Points {
		for i, dp := range p.DPAccuracyPct {
			if dp > p.REAPAccuracyPct+1e-6 {
				t.Fatalf("budget %.2f: DP%d accuracy %.2f beats REAP %.2f",
					p.BudgetJ, i+1, dp, p.REAPAccuracyPct)
			}
		}
	}
	// Region 1: REAP matches DP5's accuracy (the best available).
	p2 := res.At(2.0)
	if math.Abs(p2.REAPAccuracyPct-p2.DPAccuracyPct[4]) > 0.5 {
		t.Errorf("region 1: REAP %.2f%% vs DP5 %.2f%%", p2.REAPAccuracyPct, p2.DPAccuracyPct[4])
	}
	// Region 3: REAP reduces to DP1 (94%).
	p10 := res.At(10.5)
	if math.Abs(p10.REAPAccuracyPct-94) > 0.5 {
		t.Errorf("region 3 accuracy %.2f%%, want 94%%", p10.REAPAccuracyPct)
	}
	// 5(b): in region 1, REAP active time beats DP1's by >2x somewhere.
	sawBigGain := false
	for _, p := range res.Points {
		if p.Region == core.Region1 && p.DPActiveFrac[0] > 0 &&
			p.REAPActiveFrac/p.DPActiveFrac[0] >= 2.3 {
			sawBigGain = true
			break
		}
	}
	if !sawBigGain {
		t.Error("never observed the paper's 2.3x region-1 active-time gain")
	}
	if !strings.Contains(res.Render(), "Figure 5(b)") {
		t.Error("render missing 5(b) block")
	}
}

func TestFigure6Experiment(t *testing.T) {
	res, err := Figure6(paperCfg(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// All normalized values <= 1 (+eps): REAP dominates at alpha=2.
	for _, p := range res.Points {
		for i, v := range p.DPNormalized {
			if v > 1+1e-9 {
				t.Fatalf("budget %.2f: DP%d normalized %v exceeds 1", p.BudgetJ, i+1, v)
			}
		}
	}
	// Paper: below 6 J, DP4 is the best static point and REAP matches it.
	p4 := res.At(5.0)
	if p4.DPNormalized[3] < 0.999 {
		t.Errorf("at 5 J DP4/REAP = %v, paper says REAP matches DP4", p4.DPNormalized[3])
	}
	best := 0
	for i, v := range p4.DPNormalized {
		if v > p4.DPNormalized[best] {
			best = i
		}
	}
	if best != 3 {
		t.Errorf("best static at 5 J is DP%d, paper says DP4", best+1)
	}
	// Paper: DP3 reaches REAP parity around 6.5 J.
	p65 := res.At(6.5)
	if p65.DPNormalized[2] < 0.99 {
		t.Errorf("at 6.5 J DP3/REAP = %v, paper says ~parity", p65.DPNormalized[2])
	}
	// Paper: beyond 9.9 J REAP reduces to DP1.
	p10 := res.At(10.5)
	if p10.DPNormalized[0] < 0.999 {
		t.Errorf("at 10.5 J DP1/REAP = %v, want 1", p10.DPNormalized[0])
	}
	// DP5's normalized performance is poor at alpha=2 when energy is
	// plentiful (accuracy weighted heavily).
	if p10.DPNormalized[4] > 0.75 {
		t.Errorf("DP5/REAP at 10.5 J = %v, want clearly below REAP", p10.DPNormalized[4])
	}
	if !strings.Contains(res.Render(), "alpha=2") {
		t.Error("render missing alpha")
	}
}

func TestFigureAlphaTrend(t *testing.T) {
	// Section 5.3: "The difference between REAP and DP5 increases further
	// as alpha grows."
	gap := func(alpha float64) float64 {
		res, err := FigureAlpha(paperCfg(), alpha, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		p := res.At(8.0)
		return 1 - p.DPNormalized[4]
	}
	g2, g4, g8 := gap(2), gap(4), gap(8)
	if !(g2 < g4 && g4 < g8) {
		t.Errorf("DP5 gap not growing with alpha: %v %v %v", g2, g4, g8)
	}
}

func TestFigure7Experiment(t *testing.T) {
	res, err := Figure7(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 15 { // 5 alphas x 3 baselines
		t.Fatalf("%d ratios", len(res.Ratios))
	}
	for _, x := range res.Ratios {
		if x.Mean < 1-1e-9 {
			t.Errorf("alpha %g vs %s: mean ratio %v below 1 (REAP must not lose)",
				x.Alpha, x.Baseline, x.Mean)
		}
		if x.Min > x.Mean+1e-9 || x.Max < x.Mean-1e-9 {
			t.Errorf("alpha %g vs %s: min/mean/max inconsistent: %v/%v/%v",
				x.Alpha, x.Baseline, x.Min, x.Mean, x.Max)
		}
	}
	// Trend vs DP1: improvement decreases as alpha grows (paper: 1.6x
	// mean at alpha=0.5 shrinking to 1.1-1.3x at alpha=8).
	lo, _ := res.Ratio("DP1", 0.5)
	hi, _ := res.Ratio("DP1", 8)
	if lo.Mean <= hi.Mean {
		t.Errorf("DP1 improvement did not shrink with alpha: %v -> %v", lo.Mean, hi.Mean)
	}
	if lo.Mean < 1.3 {
		t.Errorf("alpha=0.5 mean improvement over DP1 = %v, paper ~1.6x", lo.Mean)
	}
	// Trend vs DP5: improvement grows with alpha.
	lo5, _ := res.Ratio("DP5", 0.5)
	hi5, _ := res.Ratio("DP5", 8)
	if hi5.Mean <= lo5.Mean {
		t.Errorf("DP5 improvement did not grow with alpha: %v -> %v", lo5.Mean, hi5.Mean)
	}
	// DP3 improvements are the smallest (best-trade-off baseline).
	for _, alpha := range res.Alphas {
		r1, _ := res.Ratio("DP1", alpha)
		r3, _ := res.Ratio("DP3", alpha)
		if alpha <= 1 && r3.Mean > r1.Mean+1e-9 {
			t.Errorf("alpha %g: DP3 ratio %v above DP1 ratio %v", alpha, r3.Mean, r1.Mean)
		}
	}
	if !strings.Contains(res.Render(), "Figure 7") {
		t.Error("render header missing")
	}
}

func TestHeadlineExperiment(t *testing.T) {
	res, err := Headline(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The abstract's 46%/66% are mean gains over the constrained sweep;
	// our reproduction must reach at least those levels somewhere and be
	// of the same order on average.
	if res.MaxAccuracyGainVsDP1 < 0.46 {
		t.Errorf("max accuracy gain %.2f, paper's 46%% unreachable", res.MaxAccuracyGainVsDP1)
	}
	if res.MaxActiveGainVsDP1 < 0.66 {
		t.Errorf("max active gain %.2f, paper's 66%% unreachable", res.MaxActiveGainVsDP1)
	}
	if res.MeanAccuracyGainVsDP1 < 0.2 {
		t.Errorf("mean accuracy gain %.2f implausibly small", res.MeanAccuracyGainVsDP1)
	}
	if res.Region1ActiveRatioVsDP1 < 2.2 {
		t.Errorf("region-1 active ratio %.2f, paper 2.3x", res.Region1ActiveRatioVsDP1)
	}
	// Conclusion: 22-29% higher accuracy than low-power DPs. Our region-2
	// means must be positive and of that order for DP5.
	if res.AccuracyGainVsDP5 < 0.10 || res.AccuracyGainVsDP5 > 0.40 {
		t.Errorf("region-2 gain vs DP5 %.2f outside sanity band", res.AccuracyGainVsDP5)
	}
	if !strings.Contains(res.Render(), "paper") {
		t.Error("render missing paper column")
	}
}

func TestAblationExperiment(t *testing.T) {
	// Use a short deterministic budget trace for speed.
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	res, err := AblationOn(paperCfg(), tr.Hours[:240])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	full := res.Rows[len(res.Rows)-1]
	if full.RelativeToFull != 1 {
		t.Fatalf("full set not normalized to 1: %v", full.RelativeToFull)
	}
	for _, row := range res.Rows {
		if row.MeanJ > full.MeanJ+1e-9 {
			t.Errorf("%s beats the full set: %v > %v", row.Name, row.MeanJ, full.MeanJ)
		}
	}
	// The single-DP baselines must be strictly worse than full REAP.
	if res.Rows[0].RelativeToFull > 0.999 {
		t.Errorf("on/off DP1 matches REAP (%v); ablation shows no benefit", res.Rows[0].RelativeToFull)
	}
	// Richer sets are monotonically at least as good.
	if res.Rows[2].MeanJ < res.Rows[0].MeanJ-1e-9 && res.Rows[2].MeanJ < res.Rows[1].MeanJ-1e-9 {
		t.Error("two-point set worse than both single points")
	}
	if !strings.Contains(res.Render(), "REAP") {
		t.Error("render missing")
	}
}

func TestOffloadExperiment(t *testing.T) {
	res, err := Offload()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RawStreamMJ-5.5) > 5.5*0.15 {
		t.Errorf("raw stream %.2f mJ, paper 5.5", res.RawStreamMJ)
	}
	if math.Abs(res.LabelTxMJ-0.38) > 0.38*0.15 {
		t.Errorf("label tx %.2f mJ, paper 0.38", res.LabelTxMJ)
	}
	if res.OffloadTotalMJ <= res.DP1TotalMJ {
		t.Error("offloading not more expensive than DP1")
	}
	if !strings.Contains(res.Render(), "0.38") {
		t.Error("render missing paper values")
	}
}

func TestFigureValidationErrors(t *testing.T) {
	if _, err := Figure5(core.Config{}, 0.1); err == nil {
		t.Error("Figure5 accepted empty config")
	}
	if _, err := Figure6(core.Config{}, 0.1); err == nil {
		t.Error("Figure6 accepted empty config")
	}
	if _, err := Headline(core.Config{}); err == nil {
		t.Error("Headline accepted empty config")
	}
	if _, err := AblationOn(core.Config{}, []float64{1}); err == nil {
		t.Error("Ablation accepted empty config")
	}
}
