package reap

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// Failing test backends, registered once: SolveBatch must surface a
// backend's sentinel to the right per-result slot, so the taxonomy test
// needs backends that fail with each core sentinel on demand.
var registerFailingBackends sync.Once

func sentinelBackend(err error) Solver {
	return SolverFunc(func(context.Context, Config, float64) (Allocation, error) {
		return Allocation{}, fmt.Errorf("test backend: %w", err)
	})
}

func failingBackends(t *testing.T) {
	t.Helper()
	registerFailingBackends.Do(func() {
		if err := RegisterSolver("test-infeasible", sentinelBackend(ErrInfeasible)); err != nil {
			t.Fatal(err)
		}
		if err := RegisterSolver("test-solverfailure", sentinelBackend(ErrSolverFailure)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSolveBatchErrorTaxonomy drives every sentinel of the public error
// taxonomy through SolveBatch and requires each to land in its own
// request's Result, classifiable with errors.Is, without disturbing the
// healthy requests sharing the batch.
func TestSolveBatchErrorTaxonomy(t *testing.T) {
	failingBackends(t)

	badConfig := DefaultConfig()
	badConfig.Period = -1

	cases := []struct {
		name     string
		req      Request
		sentinel error
	}{
		{
			name:     "invalid config",
			req:      Request{Config: badConfig, Budget: 5},
			sentinel: ErrInvalidConfig,
		},
		{
			name:     "negative budget",
			req:      Request{Budget: -5},
			sentinel: ErrBudgetNegative,
		},
		{
			name:     "NaN budget",
			req:      Request{Budget: math.NaN()},
			sentinel: ErrBudgetNegative,
		},
		{
			name:     "unknown solver",
			req:      Request{Budget: 5, Solver: "no-such-backend"},
			sentinel: ErrUnknownSolver,
		},
		{
			name:     "infeasible",
			req:      Request{Budget: 5, Solver: "test-infeasible"},
			sentinel: ErrInfeasible,
		},
		{
			name:     "solver failure",
			req:      Request{Budget: 5, Solver: "test-solverfailure"},
			sentinel: ErrSolverFailure,
		},
	}

	// Interleave a healthy request after every failing one: per-result
	// errors must not leak across slots.
	reqs := make([]Request, 0, 2*len(cases))
	for _, c := range cases {
		reqs = append(reqs, c.req, Request{Budget: 5})
	}
	results := SolveBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, c := range cases {
		got := results[2*i]
		if got.Err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !errors.Is(got.Err, c.sentinel) {
			t.Errorf("%s: error %v does not wrap the sentinel", c.name, got.Err)
		}
		// Each sentinel classification must be exclusive within the
		// taxonomy the caller branches on.
		for _, other := range cases {
			if other.sentinel != c.sentinel && errors.Is(got.Err, other.sentinel) {
				t.Errorf("%s: error also matches %v", c.name, other.sentinel)
			}
		}
		healthy := results[2*i+1]
		if healthy.Err != nil {
			t.Errorf("healthy request after %s failed: %v", c.name, healthy.Err)
		}
		if healthy.Err == nil && healthy.Allocation.Total() == 0 {
			t.Errorf("healthy request after %s returned an empty allocation", c.name)
		}
	}
}

// TestFleetReportAllEdgeCases exercises the feedback path beyond the
// happy loop: length mismatches, NaN and negative consumption, and the
// guarantee that a bad device's report never blocks its siblings'.
func TestFleetReportAllEdgeCases(t *testing.T) {
	newStepped := func(t *testing.T, n int) *Fleet {
		t.Helper()
		fleet, err := NewFleet(n, WithoutSolveCache())
		if err != nil {
			t.Fatal(err)
		}
		budgets := make([]float64, n)
		for i := range budgets {
			budgets[i] = 5
		}
		if _, err := fleet.StepAll(context.Background(), budgets); err != nil {
			t.Fatal(err)
		}
		return fleet
	}

	t.Run("length mismatch", func(t *testing.T) {
		fleet := newStepped(t, 3)
		for _, consumed := range [][]float64{nil, {1}, {1, 2, 3, 4}} {
			err := fleet.ReportAll(consumed)
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("ReportAll(%d values) for 3 devices: %v", len(consumed), err)
			}
		}
	})

	t.Run("NaN and negative consumption", func(t *testing.T) {
		fleet := newStepped(t, 4)
		err := fleet.ReportAll([]float64{1, math.NaN(), -2, 1})
		if !errors.Is(err, ErrBudgetNegative) {
			t.Fatalf("bad consumption not classified: %v", err)
		}
		msg := err.Error()
		for _, want := range []string{"device 1", "device 2"} {
			if !strings.Contains(msg, want) {
				t.Errorf("error %q does not name %s", msg, want)
			}
		}
		if strings.Contains(msg, "device 0") || strings.Contains(msg, "device 3") {
			t.Errorf("error %q blames a healthy device", msg)
		}
	})

	t.Run("healthy devices still reported", func(t *testing.T) {
		// Device 0 reports consuming nothing (a large positive carry),
		// device 1 reports NaN. The next step must show device 0's carry
		// arriving in its LP budget and device 1 unaffected by its
		// failed report.
		fleet := newStepped(t, 2)
		if err := fleet.ReportAll([]float64{0, math.NaN()}); err == nil {
			t.Fatal("NaN report succeeded")
		}
		if _, err := fleet.StepAll(context.Background(), []float64{0, 0}); err != nil {
			t.Fatal(err)
		}
		dev0, err := fleet.Device(0)
		if err != nil {
			t.Fatal(err)
		}
		dev1, err := fleet.Device(1)
		if err != nil {
			t.Fatal(err)
		}
		// Device 0 planned ~5 J, consumed 0, so its second budget is the
		// unspent plan; device 1's failed report leaves no carry.
		if got := dev0.LastBudget(); math.Abs(got-5) > 1e-6 {
			t.Fatalf("device 0 second budget %v, want the 5 J carry", got)
		}
		if got := dev1.LastBudget(); got != 0 {
			t.Fatalf("device 1 second budget %v, want 0 (failed report must not carry)", got)
		}
	})

	t.Run("zero consumption is valid", func(t *testing.T) {
		fleet := newStepped(t, 2)
		if err := fleet.ReportAll([]float64{0, 0}); err != nil {
			t.Fatalf("zero consumption rejected: %v", err)
		}
	})
}
