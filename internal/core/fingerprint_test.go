package core

import "testing"

func TestFingerprintDeterministic(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configurations hash differently")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig()
	mutate := map[string]func(c *Config){
		"period": func(c *Config) { c.Period = 1800 },
		"poff":   func(c *Config) { c.POff *= 2 },
		"alpha":  func(c *Config) { c.Alpha = 2 },
		"dp accuracy": func(c *Config) {
			c.DPs = append([]DesignPoint(nil), c.DPs...)
			c.DPs[0].Accuracy = 0.95
		},
		"dp power": func(c *Config) {
			c.DPs = append([]DesignPoint(nil), c.DPs...)
			c.DPs[2].Power *= 1.001
		},
		"dp dropped": func(c *Config) { c.DPs = c.DPs[:len(c.DPs)-1] },
		"dp order": func(c *Config) {
			c.DPs = append([]DesignPoint(nil), c.DPs...)
			c.DPs[0], c.DPs[1] = c.DPs[1], c.DPs[0]
		},
	}
	for name, f := range mutate {
		c := base
		f(&c)
		if c.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.DPs = append([]DesignPoint(nil), b.DPs...)
	for i := range b.DPs {
		b.DPs[i].Name = "renamed"
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("design-point names must not affect the fingerprint (they never reach the LP)")
	}
}
