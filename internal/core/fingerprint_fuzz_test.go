package core

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzConfig builds a deterministic configuration from the fuzzer's raw
// inputs: the scalar fields verbatim (any bit pattern, including NaN and
// infinities — the fingerprint must stay total) and seed-derived design
// points.
func fuzzConfig(period, poff, alpha float64, ndps int, seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{Period: period, POff: poff, Alpha: alpha}
	for i := 0; i < ndps; i++ {
		cfg.DPs = append(cfg.DPs, DesignPoint{
			Name:     "dp",
			Accuracy: rng.Float64(),
			Power:    rng.Float64() * 1e-2,
		})
	}
	return cfg
}

// cloneConfig deep-copies a configuration.
func cloneConfig(c Config) Config {
	c.DPs = append([]DesignPoint(nil), c.DPs...)
	return c
}

// FuzzFingerprint checks the two properties the solve cache stakes its
// correctness on: identical canonical configurations always agree, and
// any change to a solver-read field (at the bit-pattern level) always
// changes the fingerprint — the length-prefixed encoding admits no
// concatenation collisions, so in practice distinct configurations
// never collide.
func FuzzFingerprint(f *testing.F) {
	f.Add(3600.0, 0.18/3600, 1.0, uint8(5), int64(1), uint8(0), 1.5)
	f.Add(1800.0, 0.0, 0.0, uint8(1), int64(7), uint8(2), -3.0)
	f.Add(math.Inf(1), math.NaN(), 2.0, uint8(3), int64(42), uint8(4), 0.0)
	f.Add(0.0, -1.0, 123.456, uint8(8), int64(-9), uint8(6), math.Copysign(0, -1))
	f.Fuzz(func(t *testing.T, period, poff, alpha float64, ndpsRaw uint8, seed int64, mutSel uint8, delta float64) {
		ndps := int(ndpsRaw%8) + 1
		cfg := fuzzConfig(period, poff, alpha, ndps, seed)

		// Property 1: identical configurations agree — across deep
		// copies and repeated calls.
		fp := cfg.Fingerprint()
		if got := cloneConfig(cfg).Fingerprint(); got != fp {
			t.Fatalf("deep copy fingerprints differently: %x vs %x", got, fp)
		}
		if got := cfg.Fingerprint(); got != fp {
			t.Fatalf("second call fingerprints differently: %x vs %x", got, fp)
		}

		// Design-point names never reach the LP and must not affect the
		// fingerprint.
		renamed := cloneConfig(cfg)
		for i := range renamed.DPs {
			renamed.DPs[i].Name = "renamed"
		}
		if got := renamed.Fingerprint(); got != fp {
			t.Fatalf("renaming design points changed the fingerprint: %x vs %x", got, fp)
		}

		// Property 2: mutating one solver-read field changes the
		// fingerprint, provided the mutation changed the value's bit
		// pattern (delta can be 0, NaN, or lost to rounding).
		mut := cloneConfig(cfg)
		var before, after uint64
		switch mutSel % 5 {
		case 0:
			before = math.Float64bits(mut.Period)
			mut.Period += delta
			after = math.Float64bits(mut.Period)
		case 1:
			before = math.Float64bits(mut.POff)
			mut.POff += delta
			after = math.Float64bits(mut.POff)
		case 2:
			before = math.Float64bits(mut.Alpha)
			mut.Alpha += delta
			after = math.Float64bits(mut.Alpha)
		case 3:
			i := int(mutSel/5) % len(mut.DPs)
			before = math.Float64bits(mut.DPs[i].Accuracy)
			mut.DPs[i].Accuracy += delta
			after = math.Float64bits(mut.DPs[i].Accuracy)
		case 4:
			i := int(mutSel/5) % len(mut.DPs)
			before = math.Float64bits(mut.DPs[i].Power)
			mut.DPs[i].Power += delta
			after = math.Float64bits(mut.DPs[i].Power)
		}
		if before != after && mut.Fingerprint() == fp {
			t.Fatalf("mutation %d (bits %x -> %x) did not change the fingerprint", mutSel%5, before, after)
		}

		// Dropping or appending a design point always changes the
		// length prefix, hence the fingerprint.
		grown := cloneConfig(cfg)
		grown.DPs = append(grown.DPs, DesignPoint{Accuracy: 0.5, Power: 1e-3})
		if grown.Fingerprint() == fp {
			t.Fatal("appending a design point did not change the fingerprint")
		}
		shrunk := cloneConfig(cfg)
		shrunk.DPs = shrunk.DPs[:len(shrunk.DPs)-1]
		if shrunk.Fingerprint() == fp {
			t.Fatal("dropping a design point did not change the fingerprint")
		}
	})
}
