// Package lp implements a dense two-phase simplex solver for linear
// programs. It is the substrate for the paper's Algorithm 1 (the REAP
// procedure), which solves
//
//	maximize   c'x
//	subject to A x (≤ | = | ≥) b,   x ≥ 0
//
// at every activity period on the IoT device. The solver is deliberately
// allocation-light and deterministic: it uses Bland's anti-cycling rule, so
// the same instance always pivots through the same sequence of bases.
package lp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/fpx"
)

// Op is the relational operator of a constraint row.
type Op int

const (
	// LE is a "less than or equal" (≤) constraint.
	LE Op = iota
	// GE is a "greater than or equal" (≥) constraint.
	GE
	// EQ is an equality (=) constraint.
	EQ
)

// String returns the mathematical symbol for the operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status reports the outcome of a Solve call.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set has no solution with x ≥ 0.
	Infeasible
	// Unbounded means the objective can be made arbitrarily large.
	Unbounded
	// IterationLimit means the pivot budget was exhausted before
	// optimality; the returned solution is the best basis visited.
	IterationLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Constraint is one row of the constraint system: Coeffs·x Op RHS.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a linear program in the natural (not standard) form
// maximize Objective·x subject to the Constraints and x ≥ 0.
type Problem struct {
	// Objective holds the coefficients c of the maximization objective.
	Objective []float64
	// Constraints holds the rows of the constraint system.
	Constraints []Constraint
	// MaxIter caps the number of simplex pivots across both phases.
	// Zero selects a generous default derived from the problem size.
	MaxIter int
}

// Solution is the result of solving a Problem.
type Solution struct {
	// Status describes how the solve terminated.
	Status Status
	// X holds the optimal values of the decision variables
	// (valid when Status is Optimal or IterationLimit).
	X []float64
	// Objective is the objective value c'X.
	Objective float64
	// Iterations is the total number of pivots performed.
	Iterations int
}

// Common solver errors.
var (
	ErrDimension = errors.New("lp: constraint width does not match objective length")
	ErrEmpty     = errors.New("lp: problem has no variables")
	// ErrMalformed wraps every remaining structural defect Validate can
	// find — invalid operators, non-finite coefficients — and out-of-domain
	// Status values, so every lp error reaches a sentinel via errors.Is.
	ErrMalformed = errors.New("lp: malformed input")
)

// Terminal status errors. Solve itself reports these through
// Solution.Status; Status.Err converts them into sentinel errors so
// callers can classify outcomes with errors.Is across package
// boundaries.
var (
	ErrInfeasible     = errors.New("lp: problem is infeasible")
	ErrUnbounded      = errors.New("lp: problem is unbounded")
	ErrIterationLimit = errors.New("lp: iteration limit reached before optimality")
)

// Err returns the sentinel error matching a non-Optimal status, or nil
// for Optimal. Unknown status values map to a generic error.
func (s Status) Err() error {
	switch s {
	case Optimal:
		return nil
	case Infeasible:
		return ErrInfeasible
	case Unbounded:
		return ErrUnbounded
	case IterationLimit:
		return ErrIterationLimit
	default:
		return fmt.Errorf("%w: unknown status %d", ErrMalformed, int(s))
	}
}

// eps is the numerical tolerance used for pivoting and feasibility tests.
const eps = 1e-9

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.Constraints) }

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.Objective)
	if n == 0 {
		return ErrEmpty
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return fmt.Errorf("%w: row %d has %d coefficients, want %d",
				ErrDimension, i, len(c.Coeffs), n)
		}
		if c.Op != LE && c.Op != GE && c.Op != EQ {
			return fmt.Errorf("%w: row %d has invalid operator %d", ErrMalformed, i, int(c.Op))
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: row %d has non-finite RHS %v", ErrMalformed, i, c.RHS)
		}
		for j, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: row %d column %d has non-finite coefficient %v", ErrMalformed, i, j, v)
			}
		}
	}
	for j, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: objective column %d has non-finite coefficient %v", ErrMalformed, j, v)
		}
	}
	return nil
}

// String renders the problem in a compact algebraic form, useful in test
// failure messages.
func (p *Problem) String() string {
	var b strings.Builder
	b.WriteString("max ")
	writeLinear(&b, p.Objective)
	for _, c := range p.Constraints {
		b.WriteString("\n  ")
		writeLinear(&b, c.Coeffs)
		fmt.Fprintf(&b, " %s %g", c.Op, c.RHS)
	}
	return b.String()
}

func writeLinear(b *strings.Builder, coeffs []float64) {
	first := true
	for j, v := range coeffs {
		if fpx.Zero(v) {
			continue
		}
		if !first {
			if v >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				v = -v
			}
		}
		fmt.Fprintf(b, "%g*x%d", v, j)
		first = false
	}
	if first {
		b.WriteString("0")
	}
}

// Feasible reports whether x satisfies every constraint of p (and x ≥ 0)
// within tolerance tol. It is primarily used by tests and by callers that
// want to sanity-check a solution before acting on it.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != len(p.Objective) {
		return false
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for _, c := range p.Constraints {
		lhs := dot(c.Coeffs, x)
		switch c.Op {
		case LE:
			if lhs > c.RHS+tol {
				return false
			}
		case GE:
			if lhs < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// Value evaluates the objective at x.
func (p *Problem) Value(x []float64) float64 { return dot(p.Objective, x) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
