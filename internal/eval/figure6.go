package eval

import (
	"fmt"

	"repro/internal/core"
)

// Figure6Point is one budget sample of the α=2 objective comparison.
type Figure6Point struct {
	BudgetJ float64
	// REAPJ is the optimal objective value.
	REAPJ float64
	// DPNormalized is each static design point's J(t) divided by REAP's
	// (≤ 1 everywhere, the paper's Figure 6 y-axis).
	DPNormalized []float64
}

// Figure6Result is the α=2 sweep of Figure 6.
type Figure6Result struct {
	Cfg    core.Config
	Alpha  float64
	Points []Figure6Point
}

// Figure6 sweeps the budget at α=2 and normalizes every static design
// point's objective by REAP's.
func Figure6(cfg core.Config, step float64) (*Figure6Result, error) {
	return FigureAlpha(cfg, 2, step)
}

// FigureAlpha generalizes Figure 6 to any α (the paper's Section 5.3
// notes the DP5 gap widens as α grows; this lets tests check that).
func FigureAlpha(cfg core.Config, alpha, step float64) (*Figure6Result, error) {
	if step <= 0 {
		step = 0.1
	}
	cfg.Alpha = alpha
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Figure6Result{Cfg: cfg, Alpha: alpha}
	max := cfg.MaxUsefulBudget() * 1.08
	for budget := cfg.MinBudget() + 1e-9; budget <= max; budget += step {
		alloc, err := core.Solve(cfg, budget)
		if err != nil {
			return nil, err
		}
		p := Figure6Point{BudgetJ: budget, REAPJ: alloc.Objective(cfg)}
		for i := range cfg.DPs {
			dpJ := core.StaticObjective(cfg, i, budget)
			norm := 0.0
			if p.REAPJ > 0 {
				norm = dpJ / p.REAPJ
			}
			p.DPNormalized = append(p.DPNormalized, norm)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// At returns the point nearest the budget.
func (r *Figure6Result) At(budget float64) Figure6Point {
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if abs(p.BudgetJ-budget) < abs(best.BudgetJ-budget) {
			best = p
		}
	}
	return best
}

// Render prints the normalized-performance series.
func (r *Figure6Result) Render() string {
	t := &table{header: []string{"budget(J)", "REAP J"}}
	for i := range r.Cfg.DPs {
		t.header = append(t.header, fmt.Sprintf("DP%d/REAP", i+1))
	}
	for _, p := range r.Points {
		row := []string{f2(p.BudgetJ), f3(p.REAPJ)}
		for _, v := range p.DPNormalized {
			row = append(row, f2(v))
		}
		t.add(row...)
	}
	return fmt.Sprintf("Figure 6: static design point J(t) normalized to REAP, alpha=%g\n", r.Alpha) +
		t.String()
}
