package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/replicate"
	"repro/internal/resilience"
	"repro/wire"
)

// These tests pin the hot-standby replication contract end to end over
// real HTTP: a journaled primary ships every acknowledged mutation to a
// follower before the client's ack, the follower applies in sequence
// lockstep, failover is fenced by the persisted epoch, and a full disk
// degrades the node to read-only instead of crashing it. The stream
// machinery itself is covered in internal/replicate; here the subject
// is the service wiring — role gates, shard-lock application, promote,
// and teardown hygiene.

// newPrimary boots a journaled primary and serves it over a real
// listener (followers dial TCP). The caller owns teardown ordering:
// close followers first, then the returned server, then the service.
func newPrimary(t *testing.T, cfg Config) (*Service, *httptest.Server, string) {
	t.Helper()
	if cfg.JournalDir == "" {
		cfg.JournalDir = t.TempDir()
	}
	svc := newTestService(t, cfg)
	srv := httptest.NewServer(svc.Handler())
	return svc, srv, strings.TrimPrefix(srv.URL, "http://")
}

// newFollower boots a follower tailing primaryAddr, with its own
// journal dir.
func newFollower(t *testing.T, cfg Config, primaryAddr string) *Service {
	t.Helper()
	if cfg.JournalDir == "" {
		cfg.JournalDir = t.TempDir()
	}
	cfg.Role = wire.RoleFollower
	cfg.PrimaryAddr = primaryAddr
	if cfg.FollowerID == "" {
		cfg.FollowerID = "f1"
	}
	return newTestService(t, cfg)
}

// waitCaughtUp polls until the follower's journal position matches the
// primary's — the convergence point every test drives to.
func waitCaughtUp(t *testing.T, primary, follower *Service) {
	t.Helper()
	waitFor(t, 10*time.Second, func() bool {
		return follower.store.Seq() == primary.store.Seq()
	}, func() string {
		return fmt.Sprintf("follower at seq %d, primary at seq %d",
			follower.store.Seq(), primary.store.Seq())
	})
}

// doEpoch is do with an X-Reap-Epoch header — the client-side fencing
// token reapload carries after a failover.
func doEpoch(t *testing.T, h http.Handler, method, path string, epoch uint64, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw := mustMarshal(t, body)
	req := httptest.NewRequest(method, path, strings.NewReader(string(raw)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Reap-Epoch", fmt.Sprintf("%d", epoch))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// fleetMutations drives a state history touching reports, telemetry
// steps, and alpha changes across a devices-sized fleet's shards.
func fleetMutations(t *testing.T, h http.Handler, n, devices int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var m mutation
		switch i % 3 {
		case 0:
			m = mutation{op: "step", device: i % devices, harvestJ: 1 + float64(i%5)}
		case 1:
			m = mutation{op: "report", device: (i * 5) % devices, consumedJ: 0.01 * float64(1+i%4)}
		default:
			m = mutation{op: "alpha", device: i % devices, alpha: 0.25 + 0.05*float64(i%10)}
		}
		if !m.apply(t, h) {
			t.Fatalf("mutation %d (%+v) not acknowledged", i, m)
		}
	}
}

func TestFollowerCatchUpLiveStream(t *testing.T) {
	cfg := Config{Devices: 12, Shards: 4, BatteryJ: 30, CapacityJ: 100}
	primary, srv, addr := newPrimary(t, cfg)
	defer primary.Close()
	defer srv.Close()

	// History before the follower exists: it must arrive via cursor
	// catch-up over retained segments.
	fleetMutations(t, primary.Handler(), 6, 12)

	follower := newFollower(t, cfg, addr)
	defer follower.Close()
	waitCaughtUp(t, primary, follower)

	// History after attach: shipped live, before each ack.
	fleetMutations(t, primary.Handler(), 6, 12)
	waitCaughtUp(t, primary, follower)

	expectStatesEqual(t, deviceStates(t, follower), deviceStates(t, primary))

	rs := follower.Stats().Replication
	if rs == nil || rs.Role != wire.RoleFollower || !rs.Connected {
		t.Fatalf("follower replication stats = %+v, want connected follower", rs)
	}
	if rs.Applied == 0 {
		t.Errorf("follower applied %d events, want > 0", rs.Applied)
	}

	// The primary's lag accounting should see the follower ack up to
	// the shared position (acks ride a 500ms ticker — poll).
	waitFor(t, 10*time.Second, func() bool {
		prs := primary.Stats().Replication
		return prs != nil && len(prs.Followers) == 1 &&
			prs.Followers[0].AckSeq == primary.store.Seq()
	}, func() string {
		return fmt.Sprintf("primary follower lag = %+v", primary.Stats().Replication)
	})
}

func TestFollowerRefusesMutationsWithLeaderHint(t *testing.T) {
	cfg := Config{Devices: 8, BatteryJ: 20, CapacityJ: 100}
	primary, srv, addr := newPrimary(t, cfg)
	defer primary.Close()
	defer srv.Close()
	follower := newFollower(t, cfg, addr)
	defer follower.Close()
	h := follower.Handler()

	rec := do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V: wire.Version, Reports: []wire.DeviceReport{{Device: 1, ConsumedJ: 0.1}},
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("follower report: status %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if code := decodeErrCode(t, rec); code != wire.CodeNotPrimary {
		t.Errorf("error code %q, want %q", code, wire.CodeNotPrimary)
	}
	if got := rec.Header().Get("Leader"); got != addr {
		t.Errorf("Leader hint %q, want %q", got, addr)
	}

	// Stateless solves keep serving on a follower.
	rec = do(t, h, http.MethodPost, "/v1/solve", &wire.SolveRequest{V: wire.Version, BudgetJ: 5})
	if rec.Code != http.StatusOK {
		t.Errorf("follower solve: status %d, want 200 (%s)", rec.Code, rec.Body)
	}

	// /healthz reports the role and a lag measurement once frames flow.
	waitFor(t, 10*time.Second, func() bool {
		rec := do(t, h, http.MethodGet, "/healthz", nil)
		var resp wire.HealthzResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			return false
		}
		return rec.Code == http.StatusOK && resp.Role == wire.RoleFollower &&
			resp.Epoch >= 1 && resp.ReplicationLagS != nil
	}, func() string {
		rec := do(t, h, http.MethodGet, "/healthz", nil)
		return fmt.Sprintf("healthz = %d %s", rec.Code, rec.Body)
	})
}

func TestSnapshotBootstrapBehindRetention(t *testing.T) {
	// RetainSegments < 0 keeps no history past each snapshot, and
	// SnapshotEvery 1 compacts aggressively: a follower connecting from
	// seq 0 is guaranteed to predate retention and must bootstrap from
	// the in-stream snapshot.
	cfg := Config{Devices: 12, Shards: 4, BatteryJ: 30, CapacityJ: 100,
		SnapshotEvery: 1, RetainSegments: -1, FsyncInterval: 5 * time.Millisecond}
	primary, srv, addr := newPrimary(t, cfg)
	defer primary.Close()
	defer srv.Close()

	fleetMutations(t, primary.Handler(), 8, 12)
	waitFor(t, 10*time.Second, func() bool {
		return primary.store.OldestRetained() > 0
	}, func() string {
		return fmt.Sprintf("oldest retained still %d after compaction window", primary.store.OldestRetained())
	})

	fcfg := cfg
	fcfg.RetainSegments = 0
	follower := newFollower(t, fcfg, addr)
	defer follower.Close()
	waitCaughtUp(t, primary, follower)
	expectStatesEqual(t, deviceStates(t, follower), deviceStates(t, primary))

	fleetMutations(t, primary.Handler(), 4, 12)
	waitCaughtUp(t, primary, follower)
	expectStatesEqual(t, deviceStates(t, follower), deviceStates(t, primary))
}

func TestStreamTearResync(t *testing.T) {
	// Every replication stream the primary serves is cut mid-frame
	// after a few hundred bytes — far less than the 30-event history —
	// so catch-up is forced through repeated torn frames: the follower
	// must discard the partial record (CRC framing) and resume exactly
	// where it left off, stream after stream.
	cfg := Config{Devices: 12, Shards: 4, BatteryJ: 30, CapacityJ: 100}
	pcfg := cfg
	pcfg.Chaos = resilience.ChaosConfig{Seed: 7, StreamTearP: 1, StreamTearBytes: 384}
	primary, srv, addr := newPrimary(t, pcfg)
	defer primary.Close()
	defer srv.Close()

	fleetMutations(t, primary.Handler(), 30, 12)

	follower := newFollower(t, cfg, addr)
	defer follower.Close()
	waitCaughtUp(t, primary, follower)
	expectStatesEqual(t, deviceStates(t, follower), deviceStates(t, primary))

	if rs := follower.Stats().Replication; rs.Reconnects == 0 {
		t.Errorf("reconnects = 0, want > 0 — the 384-byte tear budget cannot fit the whole history")
	}
}

func TestPromoteBumpsEpochAndAcceptsWrites(t *testing.T) {
	cfg := Config{Devices: 8, BatteryJ: 20, CapacityJ: 100}
	primary, srv, addr := newPrimary(t, cfg)
	defer primary.Close()
	defer srv.Close()
	follower := newFollower(t, cfg, addr)
	defer follower.Close()

	fleetMutations(t, primary.Handler(), 3, 8)
	waitCaughtUp(t, primary, follower)
	h := follower.Handler()

	rec := do(t, h, http.MethodPost, "/v1/promote", &wire.PromoteRequest{V: wire.Version})
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: status %d (%s)", rec.Code, rec.Body)
	}
	var resp wire.PromoteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Role != wire.RolePrimary || resp.Epoch != 2 {
		t.Fatalf("promote response %+v, want primary at epoch 2", resp)
	}
	if resp.Seq != follower.store.Seq() {
		t.Errorf("promote seq %d, want journal position %d", resp.Seq, follower.store.Seq())
	}

	// Idempotent: a second promote neither re-bumps nor errors.
	rec = do(t, h, http.MethodPost, "/v1/promote", &wire.PromoteRequest{V: wire.Version})
	if rec.Code != http.StatusOK {
		t.Fatalf("re-promote: status %d (%s)", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 2 {
		t.Errorf("re-promote epoch %d, want 2 (idempotent)", resp.Epoch)
	}

	// The new primary acknowledges mutations — even with the new
	// epoch's fencing token attached.
	rec = doEpoch(t, h, http.MethodPost, "/v1/report", 2, &wire.ReportRequest{
		V: wire.Version, Reports: []wire.DeviceReport{{Device: 2, ConsumedJ: 0.05}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-promote report: status %d (%s)", rec.Code, rec.Body)
	}

	// The persisted epoch survives restart: promotion is crash-safe.
	if e, err := replicate.LoadEpoch(follower.cfg.JournalDir); err != nil || e != 2 {
		t.Errorf("persisted epoch = %d, %v; want 2", e, err)
	}
}

func TestStaleEpochFencesExPrimary(t *testing.T) {
	cfg := Config{Devices: 8, BatteryJ: 20, CapacityJ: 100}
	primary, srv, _ := newPrimary(t, cfg)
	defer primary.Close()
	defer srv.Close()
	h := primary.Handler()

	// A client carrying a newer epoch than ours proves a promotion
	// happened elsewhere: the mutation is refused and the node fences.
	rec := doEpoch(t, h, http.MethodPost, "/v1/report", 2, &wire.ReportRequest{
		V: wire.Version, Reports: []wire.DeviceReport{{Device: 1, ConsumedJ: 0.1}},
	})
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale-epoch report: status %d, want 409 (%s)", rec.Code, rec.Body)
	}
	if code := decodeErrCode(t, rec); code != wire.CodeStaleEpoch {
		t.Errorf("error code %q, want %q", code, wire.CodeStaleEpoch)
	}

	// The fence is sticky: even epoch-less mutations are refused now —
	// this node can never again acknowledge a write at its dead term.
	rec = do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V: wire.Version, Reports: []wire.DeviceReport{{Device: 1, ConsumedJ: 0.1}},
	})
	if rec.Code != http.StatusConflict || decodeErrCode(t, rec) != wire.CodeStaleEpoch {
		t.Fatalf("fenced report: %d %s, want 409 stale_epoch", rec.Code, rec.Body)
	}

	// Solves keep serving — fencing is about mutations only.
	rec = do(t, h, http.MethodPost, "/v1/solve", &wire.SolveRequest{V: wire.Version, BudgetJ: 5})
	if rec.Code != http.StatusOK {
		t.Errorf("fenced solve: status %d, want 200 (%s)", rec.Code, rec.Body)
	}

	// The fence is visible to load balancers: /healthz stops claiming
	// the primary role.
	rec = do(t, h, http.MethodGet, "/healthz", nil)
	var hz wire.HealthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != wire.RoleFenced {
		t.Errorf("fenced healthz role %q, want %q", hz.Role, wire.RoleFenced)
	}

	// A follower from a later term is refused the stream the same way.
	rec = do(t, h, http.MethodGet, "/v1/replicate?from=0&epoch=3", nil)
	if rec.Code != http.StatusConflict || decodeErrCode(t, rec) != wire.CodeStaleEpoch {
		t.Fatalf("replicate at higher epoch: %d %s, want 409 stale_epoch", rec.Code, rec.Body)
	}

	// Promote re-arms the fenced node at a term that out-bids every
	// epoch it has seen.
	rec = do(t, h, http.MethodPost, "/v1/promote", &wire.PromoteRequest{V: wire.Version})
	if rec.Code != http.StatusOK {
		t.Fatalf("promote fenced node: %d (%s)", rec.Code, rec.Body)
	}
	var presp wire.PromoteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &presp); err != nil {
		t.Fatal(err)
	}
	if presp.Epoch < 4 {
		t.Errorf("re-armed epoch %d, want > every seen term (≥ 4)", presp.Epoch)
	}
	rec = do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V: wire.Version, Reports: []wire.DeviceReport{{Device: 1, ConsumedJ: 0.1}},
	})
	if rec.Code != http.StatusOK {
		t.Errorf("re-armed report: status %d, want 200 (%s)", rec.Code, rec.Body)
	}
}

func TestPrimaryRestartWithHigherEpochAdopted(t *testing.T) {
	cfg := Config{Devices: 8, BatteryJ: 20, CapacityJ: 100}
	pcfg := cfg
	pcfg.JournalDir = t.TempDir()
	primary, srv, addr := newPrimary(t, pcfg)
	closedSrv := false
	defer func() {
		if !closedSrv {
			srv.Close()
		}
	}()

	fleetMutations(t, primary.Handler(), 4, 8)
	follower := newFollower(t, cfg, addr)
	defer follower.Close()
	waitCaughtUp(t, primary, follower)

	// The primary dies, is promoted out-of-band (epoch file bumped, as
	// a promote-then-crash would leave it), and comes back on the same
	// address at the higher term.
	srv.CloseClientConnections()
	srv.Close()
	closedSrv = true
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	if err := replicate.SaveEpoch(pcfg.JournalDir, 7); err != nil {
		t.Fatal(err)
	}

	restarted := newTestService(t, pcfg)
	defer restarted.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: restarted.Handler()}
	go func() { _ = srv2.Serve(ln) }()
	defer srv2.Close()

	// The follower's reconnect sees hello at epoch 7, adopts and
	// persists it, and replication continues.
	waitFor(t, 10*time.Second, func() bool {
		rs := follower.Stats().Replication
		return rs != nil && rs.Epoch == 7 && rs.Connected
	}, func() string {
		return fmt.Sprintf("follower replication = %+v, want connected at epoch 7", follower.Stats().Replication)
	})
	fleetMutations(t, restarted.Handler(), 3, 8)
	waitCaughtUp(t, restarted, follower)
	expectStatesEqual(t, deviceStates(t, follower), deviceStates(t, restarted))
	if e, err := replicate.LoadEpoch(follower.cfg.JournalDir); err != nil || e != 7 {
		t.Errorf("follower persisted epoch = %d, %v; want 7", e, err)
	}
}

func TestDiskFullDegradesToReadOnly(t *testing.T) {
	cfg := Config{Devices: 8, BatteryJ: 20, CapacityJ: 100, JournalDir: t.TempDir()}
	svc := newTestService(t, cfg)
	defer svc.Close()
	h := svc.Handler()

	if !(mutation{op: "report", device: 1, consumedJ: 0.1}).apply(t, h) {
		t.Fatal("pre-ENOSPC mutation not acknowledged")
	}

	// Every further append fails the way a full disk fails.
	svc.store.FailAppends(syscall.ENOSPC)

	rec := do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V: wire.Version, Reports: []wire.DeviceReport{{Device: 2, ConsumedJ: 0.1}},
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("report on full disk: status %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if code := decodeErrCode(t, rec); code != wire.CodeDegraded {
		t.Errorf("error code %q, want %q", code, wire.CodeDegraded)
	}

	// Degraded is sticky: the refusal now happens before the journal is
	// touched at all.
	rec = do(t, h, http.MethodPost, "/v1/alpha", &wire.AlphaRequest{V: wire.Version, Device: 1, Alpha: 0.5})
	if rec.Code != http.StatusServiceUnavailable || decodeErrCode(t, rec) != wire.CodeDegraded {
		t.Fatalf("alpha while degraded: %d %s, want 503 degraded", rec.Code, rec.Body)
	}

	// Solves keep serving — the whole point of degrading instead of
	// dying.
	rec = do(t, h, http.MethodPost, "/v1/solve", &wire.SolveRequest{V: wire.Version, BudgetJ: 5})
	if rec.Code != http.StatusOK {
		t.Errorf("solve while degraded: status %d, want 200 (%s)", rec.Code, rec.Body)
	}

	// /healthz routes on the degraded role.
	rec = do(t, h, http.MethodGet, "/healthz", nil)
	var hz wire.HealthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || hz.Role != wire.RoleDegraded {
		t.Errorf("healthz = %d role %q, want 200 %q", rec.Code, hz.Role, wire.RoleDegraded)
	}
}

func TestReplicationTeardownLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cfg := Config{Devices: 8, BatteryJ: 20, CapacityJ: 100}
	primary, srv, addr := newPrimary(t, cfg)
	follower := newFollower(t, cfg, addr)

	fleetMutations(t, primary.Handler(), 5, 8)
	waitCaughtUp(t, primary, follower)

	// Teardown order an operator would use: follower first (its stream
	// request ends), then the listener, then the primary. Close waits
	// for the tail goroutine, the hub, and the maintenance loop.
	if err := follower.Close(); err != nil {
		t.Fatalf("follower close: %v", err)
	}
	srv.CloseClientConnections()
	srv.Close()
	if err := primary.Close(); err != nil {
		t.Fatalf("primary close: %v", err)
	}

	waitFor(t, 10*time.Second, func() bool { return runtime.NumGoroutine() <= baseline+2 }, func() string {
		return fmt.Sprintf("goroutines = %d, baseline %d — replication teardown leaked", runtime.NumGoroutine(), baseline)
	})
}

// BenchmarkReportPathReplicated is BenchmarkReportPath's hot path with
// a live follower attached, measuring what replication adds to the
// primary's acknowledgment latency.
//
// follower=stream is the acceptance number (≤10% over journal=interval,
// BENCH_serve.json): the follower consumes the stream but applies
// nothing, so the measurement isolates exactly what rides the primary's
// ack path — the ship-before-ack socket write. follower=inproc runs a
// full applying follower in the same process; on a small CI box its
// apply pipeline (decode, shard locks, its own journal) competes for
// the same cores and inflates wall time with work that a real follower
// does on its own machine.
func BenchmarkReportPathReplicated(b *testing.B) {
	const devices = 64
	const batch = 16
	reports := make([]wire.DeviceReport, batch)
	for i := range reports {
		reports[i] = wire.DeviceReport{Device: i * (devices / batch), ConsumedJ: 0.001}
	}
	body := mustMarshalB(b, &wire.ReportRequest{V: wire.Version, Reports: reports})

	newBenchPrimary := func(b *testing.B) (*Service, *httptest.Server, string) {
		cfg := Config{Devices: devices, BatteryJ: 1e6, CapacityJ: 2e6,
			JournalDir: b.TempDir(), FsyncPolicy: FsyncInterval}
		primary, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(primary.Handler())
		return primary, srv, strings.TrimPrefix(srv.URL, "http://")
	}
	waitLive := func(b *testing.B, primary *Service) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			rs := primary.Stats().Replication
			if rs != nil && len(rs.Followers) > 0 && rs.Followers[0].Live {
				return
			}
			if time.Now().After(deadline) {
				b.Fatal("follower never attached")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	loop := func(b *testing.B, h http.Handler) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, rec := benchRequest(body)
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	}

	b.Run("follower=stream", func(b *testing.B) {
		primary, srv, addr := newBenchPrimary(b)
		resp, err := http.Get("http://" + addr + "/v1/replicate?from=0&epoch=1&id=bench")
		if err != nil {
			b.Fatal(err)
		}
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			_, _ = io.Copy(io.Discard, resp.Body)
		}()
		defer func() {
			srv.CloseClientConnections()
			srv.Close()
			_ = primary.Close()
			_ = resp.Body.Close()
			<-drained
		}()
		waitLive(b, primary)
		loop(b, primary.Handler())
	})

	b.Run("follower=inproc", func(b *testing.B) {
		primary, srv, addr := newBenchPrimary(b)
		fcfg := Config{Devices: devices, BatteryJ: 1e6, CapacityJ: 2e6,
			JournalDir: b.TempDir(), FsyncPolicy: FsyncInterval,
			Role: wire.RoleFollower, PrimaryAddr: addr, FollowerID: "bench"}
		follower, err := New(fcfg)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			_ = follower.Close()
			srv.CloseClientConnections()
			srv.Close()
			_ = primary.Close()
		}()
		waitLive(b, primary)
		loop(b, primary.Handler())
	})
}
