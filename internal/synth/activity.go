// Package synth generates the synthetic user-study corpus that substitutes
// for the paper's 14-subject data collection (3553 labeled activity
// windows). Each activity class has a stochastic signal model for the
// 3-axis accelerometer and the passive stretch sensor, both sampled at
// 100 Hz over the paper's 1.6 s activity window. Per-user variation
// (orientation jitter, gait frequency, sensor baseline drift) is what makes
// the classification problem non-trivial, mirroring the paper's observation
// that "recognition accuracy is a strong function of the users".
//
// The class-conditional structure is calibrated so information content maps
// to sensors the way Table 2 reports: the stretch sensor alone separates
// the dynamic activities (walk, jump, transition) but confuses the static
// postures, landing near DP5's 76%; adding accelerometer axes and longer
// sensing windows recovers the static postures, climbing toward DP1's 94%.
package synth

import "fmt"

// Activity is one of the seven recognized classes: the six activities of
// the paper plus the transitions among them.
type Activity int

const (
	// Sit: seated posture, minimal motion.
	Sit Activity = iota
	// Stand: upright posture, small postural sway.
	Stand
	// Walk: periodic gait around 1.5–2.2 Hz.
	Walk
	// Jump: large-amplitude vertical bursts.
	Jump
	// Drive: reclined posture with broadband road vibration.
	Drive
	// LieDown: horizontal posture, lowest motion energy.
	LieDown
	// Transition: posture change in progress (e.g. sit-to-stand).
	Transition

	// NumActivities is the number of classes.
	NumActivities = 7
)

// String returns the activity name used in reports.
func (a Activity) String() string {
	switch a {
	case Sit:
		return "sit"
	case Stand:
		return "stand"
	case Walk:
		return "walk"
	case Jump:
		return "jump"
	case Drive:
		return "drive"
	case LieDown:
		return "lie"
	case Transition:
		return "transition"
	default:
		return fmt.Sprintf("activity(%d)", int(a))
	}
}

// Activities lists all classes in label order.
func Activities() []Activity {
	return []Activity{Sit, Stand, Walk, Jump, Drive, LieDown, Transition}
}

// Signal acquisition constants shared with the paper's prototype.
const (
	// SampleRateHz is the sensor sampling rate (Section 5.1).
	SampleRateHz = 100
	// WindowSeconds is the activity window length (Section 4.2, DP1).
	WindowSeconds = 1.6
	// WindowSamples is the number of samples per window and axis.
	WindowSamples = int(SampleRateHz * WindowSeconds)
)

// Window is one labeled activity window: what a user study contributes per
// 1.6 s of wear time.
type Window struct {
	// User identifies the subject (0-based).
	User int
	// Activity is the ground-truth label.
	Activity Activity
	// AccelX, AccelY, AccelZ are the accelerometer axes in g.
	AccelX, AccelY, AccelZ []float64
	// Stretch is the stretch-sensor channel in normalized units.
	Stretch []float64
}
