package eval

import (
	"repro/internal/core"
	"repro/internal/device"
)

// SwitchingRow compares scheduling granularities at one budget.
type SwitchingRow struct {
	BudgetJ float64
	// Switches is the block schedule's switch count.
	Switches int
	// BlockPct and InterleavedPct are switching-energy overheads as
	// percentages of the LP energy for block scheduling and for naive
	// per-window (1.6 s) interleaving.
	BlockPct       float64
	InterleavedPct float64
}

// SwitchingResult is the scheduling-granularity ablation: the LP treats
// design-point switching as free, which block schedules justify (≤2
// switches/hour) and naive interleaving does not.
type SwitchingResult struct {
	Rows []SwitchingRow
}

// Switching sweeps representative budgets across the three regions.
func Switching(cfg core.Config) (*SwitchingResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &SwitchingResult{}
	for _, budget := range []float64{1, 2, 3, 4.5, 5, 6, 7, 8, 9, 9.9} {
		alloc, err := core.Solve(cfg, budget)
		if err != nil {
			return nil, err
		}
		s, err := device.BuildSchedule(cfg, alloc)
		if err != nil {
			return nil, err
		}
		block, inter, err := device.OverheadFraction(cfg, alloc, 1.6)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SwitchingRow{
			BudgetJ:        budget,
			Switches:       s.Switches,
			BlockPct:       100 * block,
			InterleavedPct: 100 * inter,
		})
	}
	return res, nil
}

// Render prints the granularity grid.
func (r *SwitchingResult) Render() string {
	t := &table{header: []string{"budget(J)", "switches", "block ovh%", "interleaved ovh%"}}
	for _, row := range r.Rows {
		t.add(f2(row.BudgetJ), f1(float64(row.Switches)), f3(row.BlockPct), f2(row.InterleavedPct))
	}
	return "Switching-overhead ablation: block schedules vs 1.6 s interleaving\n" + t.String()
}
