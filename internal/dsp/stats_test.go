package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); !approx(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(x); !approx(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := Std(x); !approx(s, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := []float64{}
	checks := map[string]float64{
		"Mean":     Mean(empty),
		"Variance": Variance(empty),
		"Std":      Std(empty),
		"Min":      Min(empty),
		"Max":      Max(empty),
		"RMS":      RMS(empty),
		"MAD":      MAD(empty),
		"Skewness": Skewness(empty),
		"Kurtosis": Kurtosis(empty),
		"Pctl":     Percentile(empty, 0.5),
		"SMA":      SMA(),
	}
	for name, v := range checks {
		if v != 0 {
			t.Errorf("%s(empty) = %v, want 0", name, v)
		}
	}
	if ZeroCrossings(empty) != 0 || MeanCrossings(empty) != 0 {
		t.Error("crossings of empty input should be 0")
	}
	if Correlation(empty, empty) != 0 {
		t.Error("Correlation(empty) should be 0")
	}
}

func TestMinMaxRange(t *testing.T) {
	x := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if Min(x) != -9 || Max(x) != 6 {
		t.Fatalf("min=%v max=%v", Min(x), Max(x))
	}
	if Range(x) != 15 {
		t.Fatalf("range=%v", Range(x))
	}
}

func TestRMSAndEnergy(t *testing.T) {
	x := []float64{3, 4}
	if !approx(RMS(x), math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", RMS(x))
	}
	if !approx(Energy(x), 25, 1e-12) {
		t.Errorf("Energy = %v", Energy(x))
	}
}

func TestSkewnessSymmetric(t *testing.T) {
	x := []float64{-2, -1, 0, 1, 2}
	if s := Skewness(x); !approx(s, 0, 1e-12) {
		t.Errorf("Skewness of symmetric data = %v, want 0", s)
	}
	right := []float64{0, 0, 0, 0, 10}
	if s := Skewness(right); s <= 0 {
		t.Errorf("Skewness of right-tailed data = %v, want > 0", s)
	}
	if Skewness([]float64{5, 5, 5}) != 0 {
		t.Error("Skewness of constant data should be 0")
	}
}

func TestKurtosis(t *testing.T) {
	// Uniform-ish data has negative excess kurtosis; a big outlier makes
	// it positive.
	uniform := make([]float64, 100)
	for i := range uniform {
		uniform[i] = float64(i)
	}
	if k := Kurtosis(uniform); k >= 0 {
		t.Errorf("Kurtosis(uniform) = %v, want < 0", k)
	}
	spiky := append(make([]float64, 99), 100)
	if k := Kurtosis(spiky); k <= 0 {
		t.Errorf("Kurtosis(spiky) = %v, want > 0", k)
	}
	if Kurtosis([]float64{1, 1}) != 0 {
		t.Error("Kurtosis of constant data should be 0")
	}
}

func TestZeroCrossings(t *testing.T) {
	if n := ZeroCrossings([]float64{1, -1, 1, -1}); n != 3 {
		t.Errorf("ZeroCrossings = %d, want 3", n)
	}
	if n := ZeroCrossings([]float64{1, 0, -1}); n != 1 {
		t.Errorf("ZeroCrossings with zero sample = %d, want 1", n)
	}
	if n := ZeroCrossings([]float64{1, 2, 3}); n != 0 {
		t.Errorf("ZeroCrossings of positive signal = %d, want 0", n)
	}
}

func TestMeanCrossings(t *testing.T) {
	// A sine at 2 Hz over 1 s crosses its mean 4 times.
	x := make([]float64, 100)
	for i := range x {
		x[i] = 5 + math.Sin(2*math.Pi*2*float64(i)/100)
	}
	if n := MeanCrossings(x); n < 3 || n > 5 {
		t.Errorf("MeanCrossings = %d, want ~4", n)
	}
}

func TestPercentileAndIQR(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if p := Percentile(x, 0.5); !approx(p, 3, 1e-12) {
		t.Errorf("median = %v", p)
	}
	if p := Percentile(x, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(x, 1); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if v := IQR(x); !approx(v, 2, 1e-12) {
		t.Errorf("IQR = %v, want 2", v)
	}
	// Percentile must not mutate its input.
	y := []float64{3, 1, 2}
	Percentile(y, 0.5)
	if y[0] != 3 || y[1] != 1 || y[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if c := Correlation(a, b); !approx(c, 1, 1e-12) {
		t.Errorf("corr = %v, want 1", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(a, neg); !approx(c, -1, 1e-12) {
		t.Errorf("corr = %v, want -1", c)
	}
	if c := Correlation(a, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("corr with constant = %v, want 0", c)
	}
	if c := Correlation(a, []float64{1, 2}); c != 0 {
		t.Errorf("corr with length mismatch = %v, want 0", c)
	}
}

func TestSMA(t *testing.T) {
	x := []float64{1, -1, 1, -1}
	y := []float64{2, 2, -2, -2}
	if v := SMA(x, y); !approx(v, 3, 1e-12) {
		t.Errorf("SMA = %v, want 3", v)
	}
}

func TestStatProperties(t *testing.T) {
	// Shift invariance of variance; scale behaviour of std.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		const shift, scale = 17.5, 3.0
		for i := range x {
			x[i] = rng.NormFloat64()
			shifted[i] = x[i] + shift
			scaled[i] = x[i] * scale
		}
		if !approx(Variance(shifted), Variance(x), 1e-8*(1+Variance(x))) {
			return false
		}
		if !approx(Std(scaled), scale*Std(x), 1e-8*(1+Std(x))) {
			return false
		}
		if Min(x) > Mean(x)+1e-12 || Max(x) < Mean(x)-1e-12 {
			return false
		}
		// RMS² = mean² + variance.
		lhs := RMS(x) * RMS(x)
		rhs := Mean(x)*Mean(x) + Variance(x)
		return approx(lhs, rhs, 1e-8*(1+rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
