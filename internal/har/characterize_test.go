package har

import (
	"math"
	"sync"
	"testing"

	"repro/internal/synth"
)

// fullCorpus is the paper-scale corpus, built once per test binary.
var (
	corpusOnce sync.Once
	corpus     *synth.Dataset
	corpusErr  error
)

func paperCorpus(t *testing.T) *synth.Dataset {
	t.Helper()
	corpusOnce.Do(func() {
		corpus, corpusErr = synth.NewDataset(synth.DefaultCorpusConfig())
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func TestKnobSpaceHas24Points(t *testing.T) {
	specs := AllSpecs()
	if len(specs) != 24 {
		t.Fatalf("design space has %d points, want the paper's 24", len(specs))
	}
	names := make(map[string]bool)
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		names[s.Name] = true
		if err := s.Features.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Name, err)
		}
	}
	for _, want := range []string{"DP1", "DP2", "DP3", "DP4", "DP5"} {
		if !names[want] {
			t.Errorf("published point %s missing from the design space", want)
		}
	}
}

func TestSpecMACsAndSizes(t *testing.T) {
	five := PaperFive()
	// DP1: 30 features -> hidden 12 -> 7 classes.
	if got := five[0].NNSizes(); got[0] != 30 || got[1] != 12 || got[2] != NumClasses {
		t.Fatalf("DP1 sizes %v", got)
	}
	if got := five[0].MACs(); got != 30*12+12*7 {
		t.Fatalf("DP1 MACs %d", got)
	}
	// DP5: 9 FFT bins only.
	if got := five[4].NNSizes(); got[0] != 9 {
		t.Fatalf("DP5 input width %d, want 9", got[0])
	}
	// No hidden layer.
	s := DesignPointSpec{Name: "flat", Features: withStretchFFT(AxesNone, 0)}
	if got := s.NNSizes(); len(got) != 2 || got[1] != NumClasses {
		t.Fatalf("flat sizes %v", got)
	}
	if s.String() == "" {
		t.Fatal("empty spec String")
	}
}

func TestTable2AccuracyCalibration(t *testing.T) {
	// The synthetic corpus must reproduce the paper's Table 2 accuracy
	// column within 3 points: 94/93/92/90/76.
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := paperCorpus(t)
	points, err := Characterize(ds, PaperFive())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.94, 0.93, 0.92, 0.90, 0.76}
	for i, p := range points {
		if math.Abs(p.Accuracy-want[i]) > 0.03 {
			t.Errorf("%s accuracy %.3f, want %.2f +/- 0.03", p.Spec.Name, p.Accuracy, want[i])
		}
	}
	// DP1 must be the most accurate and DP5 the least accurate of the five.
	for i := 1; i < 5; i++ {
		if points[i].Accuracy > points[0].Accuracy+0.005 {
			t.Errorf("%s accuracy %.3f exceeds DP1's %.3f", points[i].Spec.Name,
				points[i].Accuracy, points[0].Accuracy)
		}
		if points[i].Accuracy < points[4].Accuracy-0.005 {
			t.Errorf("%s accuracy %.3f below DP5's %.3f", points[i].Spec.Name,
				points[i].Accuracy, points[4].Accuracy)
		}
	}
	// Energy strictly decreasing DP1 -> DP5 (Table 2 energy column).
	for i := 1; i < 5; i++ {
		if points[i].EnergyPerActivity() >= points[i-1].EnergyPerActivity() {
			t.Errorf("energy not decreasing at %s", points[i].Spec.Name)
		}
	}
	// The five must form a Pareto chain among themselves.
	front := ParetoFront(points)
	if len(front) != 5 {
		t.Errorf("published five reduce to a front of %d", len(front))
	}
}

func TestParetoFrontOfFullSpace(t *testing.T) {
	// Figure 3: 24 scattered points; the best-accuracy point is DP1 and
	// the energy-accuracy span runs from ~76%/low-energy to ~94%/4.5 mJ.
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := paperCorpus(t)
	points, err := Characterize(ds, AllSpecs())
	if err != nil {
		t.Fatal(err)
	}
	best := points[0]
	for _, p := range points {
		if p.Accuracy > best.Accuracy {
			best = p
		}
	}
	if best.Spec.Name != "DP1" && best.Accuracy > points[0].Accuracy+0.01 {
		t.Errorf("best accuracy belongs to %s (%.3f), want DP1 (%.3f) within 1pt",
			best.Spec.Name, best.Accuracy, points[0].Accuracy)
	}
	front := ParetoFront(points)
	if len(front) < 4 {
		t.Fatalf("front has only %d points", len(front))
	}
	// Front must be sorted by decreasing power with non-increasing accuracy.
	for i := 1; i < len(front); i++ {
		if front[i].Power() > front[i-1].Power() {
			t.Fatal("front not sorted by power")
		}
		if front[i].Accuracy > front[i-1].Accuracy+1e-9 {
			t.Fatal("front accuracy not non-increasing")
		}
	}
	// Nothing in the cloud may dominate a front member.
	for _, f := range front {
		for _, p := range points {
			if p.Accuracy > f.Accuracy && p.Power() < f.Power() {
				t.Errorf("front member %s dominated by %s", f.Spec.Name, p.Spec.Name)
			}
		}
	}
}

func TestClassifyPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds := paperCorpus(t)
	model, err := TrainModel(ds, PaperFive()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Classify the test split through the full pipeline; agreement with
	// the reported test accuracy validates Classify end to end.
	correct := 0
	for _, i := range ds.Test {
		pred, err := model.Classify(ds.Windows[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == ds.Windows[i].Activity {
			correct++
		}
	}
	acc := float64(correct) / float64(len(ds.Test))
	if math.Abs(acc-model.TestAcc) > 1e-9 {
		t.Fatalf("pipeline accuracy %.4f != reported %.4f", acc, model.TestAcc)
	}
}

func TestCoreConfigAssembly(t *testing.T) {
	pts := []Characterized{
		{Spec: DesignPointSpec{Name: "a"}, Accuracy: 0.9},
		{Spec: DesignPointSpec{Name: "b"}, Accuracy: 0.8},
	}
	// Breakdowns are zero here; fill via energy profile of a real spec.
	cfg := CoreConfig(pts, 2)
	if cfg.Alpha != 2 || len(cfg.DPs) != 2 || cfg.DPs[0].Name != "a" {
		t.Fatalf("config %+v", cfg)
	}
	if cfg.Period != 3600 {
		t.Fatalf("period %v", cfg.Period)
	}
}

func TestTrainModelValidation(t *testing.T) {
	ds, err := synth.NewDataset(synth.CorpusConfig{NumUsers: 2, TotalWindows: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := DesignPointSpec{Name: "bad", Features: FeatureConfig{}}
	if _, err := TrainModel(ds, bad); err == nil {
		t.Fatal("invalid feature config accepted")
	}
}

func TestCharacterizeSmallCorpusRuns(t *testing.T) {
	// Smoke test on a tiny corpus: accuracy ordering cannot be asserted,
	// but the machinery must work end to end.
	ds, err := synth.NewDataset(synth.CorpusConfig{NumUsers: 3, TotalWindows: 210, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	points, err := Characterize(ds, PaperFive()[3:]) // DP4, DP5 only
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Accuracy <= 1.0/7 {
			t.Errorf("%s accuracy %.3f at or below chance", p.Spec.Name, p.Accuracy)
		}
		if p.Model == nil {
			t.Errorf("%s missing trained model", p.Spec.Name)
		}
		if p.Power() <= 0 {
			t.Errorf("%s power %v", p.Spec.Name, p.Power())
		}
	}
}
