// Package core implements REAP, the runtime energy-accuracy optimization
// framework of Bhat et al. (DAC 2019).
//
// The device exposes N design points (DPs); design point i recognizes user
// activity with accuracy aᵢ while drawing power Pᵢ. Over every activity
// period TP (one hour in the paper) the device receives an energy budget Eb
// from its harvesting subsystem. REAP chooses how long to run each design
// point — and how long to stay off — by solving the linear program
//
//	maximize   J(t) = (1/TP) Σ aᵢ^α tᵢ
//	subject to t_off + Σ tᵢ = TP
//	           P_off·t_off + Σ Pᵢ·tᵢ ≤ Eb
//	           tᵢ ≥ 0
//
// (Equations 1–4 of the paper). The exponent α trades active time (α < 1)
// against accuracy (α > 1); α = 1 maximizes the expected accuracy.
//
// Two independent solvers are provided: the simplex-based Solve, which is
// the paper's Algorithm 1, and SolveEnumerate, a closed-form vertex
// enumeration that is valid because the LP has only two structural
// constraints (so an optimal basic solution mixes at most two states).
// They are cross-checked against each other in the test suite.
package core
