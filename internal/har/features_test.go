package har

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/synth"
)

func testWindow(act synth.Activity) synth.Window {
	u := synth.NewUserProfile(0, 42)
	return synth.Generate(u, act, rand.New(rand.NewSource(1)))
}

func TestAxesMask(t *testing.T) {
	cases := []struct {
		m    AxesMask
		n    int
		name string
	}{
		{AxesNone, 0, "none"},
		{AxisX, 1, "x"},
		{AxisY, 1, "y"},
		{AxisZ, 1, "z"},
		{AxesXY, 2, "xy"},
		{AxesAll, 3, "xyz"},
		{AxisX | AxisZ, 2, "xz"},
	}
	for _, tc := range cases {
		if tc.m.Count() != tc.n {
			t.Errorf("%v Count = %d, want %d", tc.m, tc.m.Count(), tc.n)
		}
		if tc.m.String() != tc.name {
			t.Errorf("mask String = %q, want %q", tc.m.String(), tc.name)
		}
	}
}

func TestFeatureConfigValidate(t *testing.T) {
	bad := []FeatureConfig{
		{Axes: AxesNone, AccelFeat: AccelStats, StretchFeat: StretchFFT16},
		{Axes: AxesAll, SensingFraction: 1, AccelFeat: AccelNone, StretchFeat: StretchFFT16},
		{Axes: AxesAll, SensingFraction: 0, AccelFeat: AccelStats, StretchFeat: StretchFFT16},
		{Axes: AxesAll, SensingFraction: 1.5, AccelFeat: AccelStats, StretchFeat: StretchFFT16},
		{Axes: AxesAll, SensingFraction: math.NaN(), AccelFeat: AccelStats, StretchFeat: StretchFFT16},
		{Axes: AxesNone, AccelFeat: AccelNone, StretchFeat: StretchNone},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
		if _, err := c.Extract(testWindow(synth.Sit)); err == nil {
			t.Errorf("case %d: Extract accepted invalid config", i)
		}
	}
	good := withStretchFFT(AxesAll, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestFeatureDimMatchesExtract(t *testing.T) {
	w := testWindow(synth.Walk)
	configs := []FeatureConfig{
		withStretchFFT(AxesAll, 1.0),
		withStretchFFT(AxesXY, 0.5),
		withStretchFFT(AxisY, 0.375),
		withStretchFFT(AxesNone, 0),
		{Axes: AxesAll, SensingFraction: 1, AccelFeat: AccelDWT, StretchFeat: StretchFFT16},
		{StretchFeat: StretchStats},
		{Axes: AxisY, SensingFraction: 1, AccelFeat: AccelStats, StretchFeat: StretchNone},
	}
	for _, c := range configs {
		x, err := c.Extract(w)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if len(x) != c.Dim() {
			t.Errorf("config %+v: Extract len %d != Dim %d", c, len(x), c.Dim())
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("config %+v: feature %d is %v", c, j, v)
			}
		}
	}
}

func TestSensingFractionChangesFeatures(t *testing.T) {
	// A transition whose ramp is late in the window must look different
	// under full-window and truncated sensing.
	u := synth.NewUserProfile(1, 7)
	var w synth.Window
	// Find a transition window with a clearly late posture change.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		w = synth.Generate(u, synth.Transition, rng)
		head := mean(w.AccelY[:40])
		tail := mean(w.AccelY[120:])
		if math.Abs(head-tail) > 0.3 {
			break
		}
	}
	full := withStretchFFT(AxisY, 1.0)
	short := withStretchFFT(AxisY, 0.375)
	xf, err := full.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := short.Extract(w)
	if err != nil {
		t.Fatal(err)
	}
	// Range feature (index 4 of the y stats) must shrink under truncation
	// when the change happens late.
	if xs[4] >= xf[4] {
		t.Errorf("truncated range %v not below full-window range %v", xs[4], xf[4])
	}
}

func TestNormalizer(t *testing.T) {
	rows := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	n := FitNormalizer(rows)
	if math.Abs(n.Mean[0]-3) > 1e-12 || math.Abs(n.Mean[1]-30) > 1e-12 {
		t.Fatalf("means %v", n.Mean)
	}
	x := n.Apply([]float64{3, 30})
	if math.Abs(x[0]) > 1e-12 || math.Abs(x[1]) > 1e-12 {
		t.Fatalf("centered value %v, want zeros", x)
	}
	// Constant features must not divide by zero.
	n2 := FitNormalizer([][]float64{{7}, {7}})
	y := n2.Apply([]float64{7})
	if math.IsNaN(y[0]) || math.IsInf(y[0], 0) {
		t.Fatalf("constant feature normalized to %v", y[0])
	}
	// Empty input.
	n3 := FitNormalizer(nil)
	if out := n3.Apply([]float64{1, 2}); out[0] != 1 || out[1] != 2 {
		t.Fatal("empty normalizer must be identity")
	}
}

func TestFeatureKindStrings(t *testing.T) {
	for _, k := range []AccelFeatureKind{AccelNone, AccelStats, AccelDWT, AccelFeatureKind(9)} {
		if k.String() == "" {
			t.Errorf("empty accel feature name for %d", int(k))
		}
	}
	for _, k := range []StretchFeatureKind{StretchNone, StretchFFT16, StretchStats, StretchFeatureKind(9)} {
		if k.String() == "" {
			t.Errorf("empty stretch feature name for %d", int(k))
		}
	}
}

func mean(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
