// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them as text reports: Table 2, Figures
// 3–7, the headline claims, the offloading analysis and the design-set
// ablation. Pass -out to also write each report to a file.
//
// Usage:
//
//	experiments [-out dir] [-skip-training]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/eval"
	"repro/internal/har"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	outDir := flag.String("out", "", "directory to write per-experiment reports into")
	asCSV := flag.Bool("csv", false, "also write .csv files next to the .txt reports")
	skipTraining := flag.Bool("skip-training", false,
		"skip Table 2 / Figure 3 (the experiments that train classifiers)")
	flag.Parse()

	cfg, err := reap.NewConfig()
	if err != nil {
		log.Fatal(err)
	}
	type experiment struct {
		name string
		run  func() (interface{ Render() string }, error)
	}
	experiments := []experiment{
		{"table2", func() (interface{ Render() string }, error) { return eval.Table2() }},
		{"figure3", func() (interface{ Render() string }, error) { return eval.Figure3() }},
		{"figure4", func() (interface{ Render() string }, error) { return eval.Figure4() }},
		{"figure5", func() (interface{ Render() string }, error) { return eval.Figure5(cfg, 0.25) }},
		{"figure6", func() (interface{ Render() string }, error) { return eval.Figure6(cfg, 0.25) }},
		{"figure7", func() (interface{ Render() string }, error) { return eval.Figure7(cfg) }},
		{"headline", func() (interface{ Render() string }, error) { return eval.Headline(cfg) }},
		{"offload", func() (interface{ Render() string }, error) { return eval.Offload() }},
		{"ablation", func() (interface{ Render() string }, error) { return eval.Ablation(cfg) }},
		{"strategies", func() (interface{ Render() string }, error) { return eval.Strategies(cfg) }},
		{"quantization", func() (interface{ Render() string }, error) { return eval.Quantization() }},
		{"generalization", func() (interface{ Render() string }, error) {
			ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
			if err != nil {
				return nil, err
			}
			return eval.Generalization(ds, har.PaperFive()[0])
		}},
		{"extended", func() (interface{ Render() string }, error) { return eval.Extended() }},
		{"confusion-dp1", func() (interface{ Render() string }, error) {
			ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
			if err != nil {
				return nil, err
			}
			return eval.Confusion(ds, har.PaperFive()[0])
		}},
		{"confusion-dp5", func() (interface{ Render() string }, error) {
			ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
			if err != nil {
				return nil, err
			}
			return eval.Confusion(ds, har.PaperFive()[4])
		}},
		{"multiyear", func() (interface{ Render() string }, error) { return eval.MultiYear(cfg) }},
		{"switching", func() (interface{ Render() string }, error) { return eval.Switching(cfg) }},
		{"placement", func() (interface{ Render() string }, error) { return eval.Placement(cfg) }},
		{"seasonal", func() (interface{ Render() string }, error) { return eval.Seasonal(cfg, 2016) }},
		{"storage", func() (interface{ Render() string }, error) { return eval.Storage(cfg) }},
		{"alphagrid", func() (interface{ Render() string }, error) { return eval.AlphaGrid(cfg) }},
		{"tilt", func() (interface{ Render() string }, error) { return eval.Tilt(cfg) }},
		{"robustness", func() (interface{ Render() string }, error) {
			ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
			if err != nil {
				return nil, err
			}
			return eval.Robustness(ds, 17)
		}},
		{"dayinlife", func() (interface{ Render() string }, error) {
			ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
			if err != nil {
				return nil, err
			}
			points, err := har.Characterize(ds, har.PaperFive())
			if err != nil {
				return nil, err
			}
			dpCfg := har.CoreConfig(points, 1)
			models := make([]*har.Model, len(points))
			for i := range points {
				models[i] = points[i].Model
			}
			day, err := eval.SolarDayBudget(5)
			if err != nil {
				return nil, err
			}
			return eval.DayInLife(dpCfg, models, ds.Users[0], day, 33)
		}},
	}

	for _, ex := range experiments {
		trains := map[string]bool{
			"table2": true, "figure3": true, "quantization": true,
			"generalization": true, "extended": true,
			"confusion-dp1": true, "confusion-dp5": true, "dayinlife": true,
			"robustness": true,
		}
		if *skipTraining && trains[ex.name] {
			log.Printf("== %s skipped (-skip-training)", ex.name)
			continue
		}
		res, err := ex.run()
		if err != nil {
			log.Fatalf("%s: %v", ex.name, err)
		}
		report := res.Render()
		fmt.Println("==", ex.name)
		fmt.Println(report)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*outDir, ex.name+".txt")
			if err := os.WriteFile(path, []byte(strings.TrimRight(report, "\n")+"\n"), 0o644); err != nil {
				log.Fatal(err)
			}
			if *asCSV {
				csvOut, err := eval.RenderCSV(report)
				if err != nil {
					log.Fatalf("%s: csv: %v", ex.name, err)
				}
				csvPath := filepath.Join(*outDir, ex.name+".csv")
				if err := os.WriteFile(csvPath, []byte(csvOut), 0o644); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
}
