package service

import (
	"sync"
	"time"
)

// limiter is the per-tenant token-bucket admission controller: each
// tenant owns a bucket refilled at rate tokens/second up to burst.
// Admitting work costs one token per solve, so a batch of N items
// charges N — a tenant cannot buy cheaper solves by batching harder.
//
// The bucket map grows one entry per distinct tenant string and is
// never pruned: reapd deployments name tenants, they don't mint them
// per request. The clock is injectable for tests.
type limiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket depth
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64) *limiter {
	return &limiter{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// admit charges cost tokens against the tenant's bucket. When the
// bucket cannot cover the cost, admit refuses and returns how long the
// tenant must wait for the deficit to refill — the Retry-After hint.
// Refused work is not charged.
func (l *limiter) admit(tenant string, cost float64) (retryAfter time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, exists := l.buckets[tenant]
	if !exists {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return 0, true
	}
	deficit := cost - b.tokens
	return time.Duration(deficit / l.rate * float64(time.Second)), false
}
