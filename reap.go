// Package reap is the public API of this reproduction of
// "REAP: Runtime Energy-Accuracy Optimization for Energy Harvesting IoT
// Devices" (Bhat, Bagewadi, Lee, Ogras — DAC 2019).
//
// REAP co-optimizes recognition accuracy and active time for a device that
// exposes several design points with different energy-accuracy trade-offs
// and lives on a harvested energy budget. Every activity period (an hour),
// it solves a small linear program that decides how long to run each
// design point and how long to stay off.
//
// The API is layered (see DESIGN.md):
//
//   - Solver layer: named optimizer backends behind a registry
//     (RegisterSolver, LookupSolver, Solvers) sharing the Solver
//     interface, with typed sentinel errors (ErrInvalidConfig,
//     ErrBudgetNegative, ErrInfeasible, ErrUnknownSolver) classified via
//     errors.Is. The default backend is "plan", a compiled parametric
//     solver that turns each configuration into its piecewise-linear
//     budget→value envelope once and answers every solve with a binary
//     search; "simplex" (the paper's Algorithm 1) and "enumerate"
//     remain as exact cross-checks.
//   - Options layer: New and NewConfig assemble sessions and
//     configurations from functional options (WithDesignPoints,
//     WithAlpha, WithPeriod, WithSolver, WithBattery, ...).
//   - Fleet layer: Fleet steps many per-device sessions on a bounded
//     worker pool; SolveBatch is its stateless counterpart. Devices
//     solve directly on a shared compiled plan by default; a solve
//     cache (SolveCache, opt-in via WithSolveCache) quantizes budgets
//     so near-identical devices reuse one LP solution on expensive
//     backends, with singleflight dedup for concurrent misses.
//   - Wire layer: package wire defines the versioned request/response
//     structs of the reapd network service (cmd/reapd), shared verbatim
//     by clients; internal/service hosts the sharded daemon behind
//     them.
//
// # Quick start
//
//	cfg, _ := reap.NewConfig()               // the paper's five Table 2 DPs
//	solver, _ := reap.LookupSolver(reap.DefaultSolver)
//	alloc, err := solver.Solve(ctx, cfg, 5.0) // 5 J budget for this hour
//	if err != nil { ... }
//	fmt.Println(alloc)                       // dp4:42.9% dp5:57.1%
//	fmt.Println(alloc.ExpectedAccuracy(cfg)) // 0.82
//
// # Long-running devices
//
// A Controller session wraps the solver with battery tracking and
// planned-versus-measured energy accounting:
//
//	ctl, _ := reap.New(reap.WithBattery(20 /*J charge*/, 100 /*J capacity*/))
//	for hour := range harvest {
//	    alloc, _ := ctl.Step(harvest[hour])
//	    consumed := execute(alloc)           // run the device
//	    ctl.Report(consumed)                 // close the feedback loop
//	}
//
// # Fleets
//
// Fleet coordinates many devices from one process. By default every
// device solves on the fingerprint-memoized compiled plan — the
// fastest path. Fleets on expensive backends opt into a shared solve
// cache (WithSolveCache): budgets quantize down so devices under
// near-identical harvesting conditions reuse one LP solution:
//
//	fleet, _ := reap.NewFleet(1000, reap.WithBattery(20, 100))
//	allocs, _ := fleet.StepAll(ctx, budgets)  // budgets[i] for device i
//	stats, ok := fleet.CacheStats()           // ok only when caching is on
//
// # Beyond the optimizer
//
// The internal packages build the paper's whole evaluation stack from
// scratch — synthetic user studies (internal/synth), the HAR design-point
// space (internal/har), a calibrated component energy model
// (internal/energy), solar harvesting (internal/solar), a device simulator
// (internal/device) and one generator per table/figure (internal/eval) —
// see DESIGN.md and the examples/ directory.
package reap

import (
	"repro/internal/core"
)

// Core optimizer types, re-exported for API stability.
type (
	// DesignPoint is one operating configuration: a (accuracy, power)
	// pair the optimizer can schedule.
	DesignPoint = core.DesignPoint
	// Config fixes the period, off-state power, α and design points.
	Config = core.Config
	// Allocation is a schedule: seconds per design point, off and dead
	// time.
	Allocation = core.Allocation
	// Controller is the runtime loop: budget in, schedule out, consumed
	// energy back in.
	Controller = core.Controller
	// ControllerState is a Controller's serializable mutable state —
	// the unit of reapd's crash-safe snapshots (Controller.State /
	// Controller.Restore).
	ControllerState = core.ControllerState
	// Region classifies budgets into the paper's Figure 5 regimes.
	Region = core.Region
)

// Region values (see Figure 5 of the paper).
const (
	RegionDead = core.RegionDead
	Region1    = core.Region1
	Region2    = core.Region2
	Region3    = core.Region3
)

// Defaults from the paper's experimental setup.
const (
	// DefaultPeriod is the one-hour activity period TP in seconds.
	DefaultPeriod = core.DefaultPeriod
	// DefaultPOff is the 50 µW off-state draw (0.18 J per hour).
	DefaultPOff = core.DefaultPOff
)

// DefaultConfig returns the paper's configuration: one-hour period, 50 µW
// off-state power, α = 1 and the five Table 2 design points.
//
// Deprecated: use NewConfig, which starts from the same defaults and
// composes with options. DefaultConfig remains for source compatibility.
func DefaultConfig() Config { return core.DefaultConfig() }

// PaperDesignPoints returns the five Pareto-optimal design points of
// Table 2 as measured on the paper's prototype.
func PaperDesignPoints() []DesignPoint { return core.PaperDesignPoints() }

// Solve computes the optimal time allocation for one activity period with
// the given energy budget in joules, using the simplex method (the paper's
// Algorithm 1).
//
// Deprecated: look up a backend through the solver registry instead
// (LookupSolver(SolverSimplex)), which adds context cancellation and
// backend choice. Solve remains as a thin wrapper.
func Solve(cfg Config, budget float64) (Allocation, error) { return core.Solve(cfg, budget) }

// SolveEnumerate computes the same optimum by direct vertex enumeration;
// it exists as an independent cross-check and is faster for small N.
//
// Deprecated: use LookupSolver(SolverEnumerate). SolveEnumerate remains
// as a thin wrapper.
func SolveEnumerate(cfg Config, budget float64) (Allocation, error) {
	return core.SolveEnumerate(cfg, budget)
}

// NewController creates a runtime controller with a backup battery of the
// given charge and capacity in joules (zero capacity for battery-less
// devices).
//
// Deprecated: use New with options — New(WithConfig(cfg),
// WithBattery(batteryJ, capacityJ)) — which also selects the solver
// backend. NewController remains as a thin wrapper.
func NewController(cfg Config, batteryJ, capacityJ float64) (*Controller, error) {
	return core.NewController(cfg, batteryJ, capacityJ)
}

// StaticAllocation is the single-design-point baseline: run design point i
// for as long as the budget allows, then switch off.
func StaticAllocation(cfg Config, i int, budget float64) Allocation {
	return core.StaticAllocation(cfg, i, budget)
}

// StaticObjective evaluates J(t) for the static baseline.
func StaticObjective(cfg Config, i int, budget float64) float64 {
	return core.StaticObjective(cfg, i, budget)
}

// ParetoFront filters design points to the non-dominated set, ordered by
// decreasing power (DP1-first, like the paper).
func ParetoFront(dps []DesignPoint) []DesignPoint { return core.ParetoFront(dps) }

// Classify places an energy budget into its operating region.
func Classify(cfg Config, budget float64) Region { return core.Classify(cfg, budget) }

// RegionBoundaries returns the budgets at which optimizer behaviour
// changes: the idle floor and each design point's saturation energy.
func RegionBoundaries(cfg Config) []float64 { return core.RegionBoundaries(cfg) }
