package core

import (
	"errors"
	"fmt"

	"repro/internal/lp"
)

// Sentinel errors of the optimizer layer. Every error returned by the
// package wraps exactly one of these (or ErrNoDesignPoints, which itself
// pairs with ErrInvalidConfig), so callers classify failures with
// errors.Is instead of string matching:
//
//	_, err := core.Solve(cfg, budget)
//	switch {
//	case errors.Is(err, core.ErrBudgetNegative): // caller bug
//	case errors.Is(err, core.ErrInvalidConfig):  // bad design points etc.
//	case errors.Is(err, core.ErrInfeasible):     // no feasible schedule
//	}
var (
	// ErrInvalidConfig wraps every configuration validation failure:
	// non-positive period, negative off power or alpha, missing or
	// malformed design points.
	ErrInvalidConfig = errors.New("core: invalid configuration")
	// ErrBudgetNegative is returned when a solve or step receives a
	// negative or NaN energy budget.
	ErrBudgetNegative = errors.New("core: energy budget must be non-negative")
	// ErrInfeasible is returned when the allocation LP has no feasible
	// solution. With a validated Config this cannot happen for budgets at
	// or above the idle floor — its presence signals numerical trouble.
	ErrInfeasible = errors.New("core: allocation problem is infeasible")
	// ErrSolverFailure is returned when the LP terminates without an
	// optimum for any reason other than infeasibility (unbounded,
	// iteration limit) — always numerical trouble on this problem class.
	ErrSolverFailure = errors.New("core: solver failed to reach optimality")
)

// solveStatusError converts a terminal LP status into the package's error
// taxonomy: infeasibility maps onto ErrInfeasible, every other terminal
// status onto ErrSolverFailure, and the lp-layer sentinel always stays in
// the chain.
func solveStatusError(status lp.Status) error {
	err := status.Err()
	if errors.Is(err, lp.ErrInfeasible) {
		return fmt.Errorf("%w: %w", ErrInfeasible, err)
	}
	return fmt.Errorf("%w: %w", ErrSolverFailure, err)
}
