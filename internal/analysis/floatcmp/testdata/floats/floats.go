// Fixture for the floatcmp analyzer: raw float equality in a package
// that is not the fpx allowlist.
package floats

func compares(a, b float64, f32 float32, n int, s string) bool {
	if a == b { // want `raw float comparison \(==\)`
		return true
	}
	if a != 0.0 { // want `raw float comparison \(!=\)`
		return true
	}
	if f32 == 1.5 { // want `raw float comparison \(==\)`
		return true
	}
	if float64(n) == b { // want `raw float comparison \(==\)`
		return true
	}
	// Negative cases: integer and string comparisons are fine.
	if n == 3 {
		return false
	}
	if s == "x" {
		return false
	}
	// Ordered float comparisons are fine — only equality is banned.
	return a < b || a >= 0
}

// suppressed shows the escape hatch: exact comparison with a reason.
func suppressed(a, b float64) bool {
	return a == b //lint:reapvet floatcmp -- fixture: deliberately exact, mirrors a breakpoint hit
}

type meters float64

// namedFloat shows the check sees through named float types.
func namedFloat(m meters) bool {
	return m == 2.0 // want `raw float comparison \(==\)`
}
