// Fixture for the nodeprecated analyzer, loaded as repro/cmd/fixture:
// cross-package uses of the root package's deprecated wrappers are
// findings; the replacement API and same-named local symbols are not.
package fixture

import reap "repro"

func useDeprecated() error {
	cfg := reap.DefaultConfig()                   // want `repro\.DefaultConfig is deprecated — use NewConfig`
	if _, err := reap.Solve(cfg, 1); err != nil { // want `repro\.Solve is deprecated — use LookupSolver\(SolverSimplex\)`
		return err
	}
	if _, err := reap.SolveEnumerate(cfg, 1); err != nil { // want `repro\.SolveEnumerate is deprecated — use LookupSolver\(SolverEnumerate\)`
		return err
	}
	_, err := reap.NewController(cfg, 1, 10) // want `repro\.NewController is deprecated — use New with options`
	return err
}

func useReplacements() error {
	cfg, err := reap.NewConfig()
	if err != nil {
		return err
	}
	_, err = reap.New(reap.WithConfig(cfg), reap.WithBattery(1, 10))
	return err
}

// localSolver's method merely shares a deprecated symbol's name;
// methods are never package-scoped, so it must not be flagged.
type localSolver struct{}

func (localSolver) Solve() {}

// DefaultConfig shadows the deprecated name locally — also clean.
func DefaultConfig() int { return 0 }

func useLocals() int {
	localSolver{}.Solve()
	return DefaultConfig()
}
