package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*(1+cmplx.Abs(want[k])) {
				t.Fatalf("n=%d bin %d: FFT %v != DFT %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 100} {
		if err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT accepted length %d", n)
		}
	}
	if err := FFT(nil); err != nil {
		t.Errorf("FFT of empty input should be a no-op, got %v", err)
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := make([]complex128, 64)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= 64
	if !approx(timeEnergy, freqEnergy, 1e-8*(1+timeEnergy)) {
		t.Fatalf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestFFTPureTone(t *testing.T) {
	// A pure complex exponential at bin k concentrates all energy in bin k.
	const n, k = 16, 3
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * k * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ang))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for bin := range x {
		mag := cmplx.Abs(x[bin])
		if bin == k && !approx(mag, n, 1e-9) {
			t.Fatalf("bin %d magnitude %v, want %v", bin, mag, float64(n))
		}
		if bin != k && mag > 1e-9 {
			t.Fatalf("bin %d magnitude %v, want 0", bin, mag)
		}
	}
}

func TestRealFFTMagnitudes(t *testing.T) {
	// DC signal: all energy in bin 0.
	dc := make([]float64, 160)
	for i := range dc {
		dc[i] = 2.5
	}
	mags, err := RealFFTMagnitudes(dc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(mags) != 9 {
		t.Fatalf("got %d bins, want 9 (n/2+1)", len(mags))
	}
	if !approx(mags[0], 2.5, 1e-9) {
		t.Errorf("DC bin = %v, want 2.5", mags[0])
	}
	for i := 1; i < len(mags); i++ {
		if mags[i] > 1e-9 {
			t.Errorf("bin %d = %v, want 0 for DC input", i, mags[i])
		}
	}
	if _, err := RealFFTMagnitudes(dc, 15); err == nil {
		t.Error("accepted non-power-of-two size")
	}
	if _, err := RealFFTMagnitudes(dc, 0); err == nil {
		t.Error("accepted zero size")
	}
}

func TestRealFFTMagnitudesDetectsPeriodicity(t *testing.T) {
	// A 2 Hz sine sampled at 10 Hz for 1.6 s (16 samples after resampling
	// a 160-sample 100 Hz window): energy lands in a nonzero bin,
	// distinguishing periodic motion (walk) from static postures.
	x := make([]float64, 160)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 2 * float64(i) / 100)
	}
	mags, err := RealFFTMagnitudes(x, 16)
	if err != nil {
		t.Fatal(err)
	}
	peak, peakBin := 0.0, 0
	for i, m := range mags {
		if m > peak {
			peak = m
			peakBin = i
		}
	}
	if peakBin == 0 {
		t.Fatalf("peak in DC bin; spectrum %v", mags)
	}
}

func TestHammingWindow(t *testing.T) {
	w := Hamming(16)
	if len(w) != 16 {
		t.Fatal("wrong length")
	}
	if !approx(w[0], 0.08, 1e-9) || !approx(w[15], 0.08, 1e-9) {
		t.Errorf("edges %v %v, want 0.08", w[0], w[15])
	}
	max := Max(w)
	if max > 1 || max < 0.9 {
		t.Errorf("peak %v out of expected range", max)
	}
	if w1 := Hamming(1); w1[0] != 1 {
		t.Errorf("Hamming(1) = %v, want [1]", w1)
	}
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 2, 3}
	w := []float64{2, 0.5, 1, 9}
	got := ApplyWindow(x, w)
	want := []float64{2, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
