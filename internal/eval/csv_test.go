package eval

import (
	"strings"
	"testing"
)

func TestSplitAligned(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a  b  c", []string{"a", "b", "c"}},
		{"one two  three four", []string{"one two", "three four"}},
		{"x", []string{"x"}},
		{"cell    padded   ", []string{"cell", "padded"}},
		{"lead  9.93  region-2  1.00", []string{"lead", "9.93", "region-2", "1.00"}},
	}
	for _, tc := range cases {
		got := splitAligned(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("split(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("split(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestRenderCSVOnRealExperiments(t *testing.T) {
	// Every experiment's Render output must convert cleanly: same number
	// of data rows, title preserved as a comment.
	fig4, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderCSV(fig4.Render())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "# Figure 4") {
		t.Fatalf("missing title comment: %q", lines[0])
	}
	// Header + 5 components + total = 7 CSV rows.
	csvRows := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			csvRows++
		}
	}
	if csvRows != 7 {
		t.Fatalf("%d CSV rows, want 7:\n%s", csvRows, out)
	}
	if !strings.Contains(out, "accelerometer,") {
		t.Fatalf("component column not first:\n%s", out)
	}

	// A sweep experiment round-trips with consistent column counts.
	fig6, err := Figure6(paperCfg(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	out6, err := RenderCSV(fig6.Render())
	if err != nil {
		t.Fatal(err)
	}
	var width int
	for _, l := range strings.Split(strings.TrimRight(out6, "\n"), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		n := len(strings.Split(l, ","))
		if width == 0 {
			width = n
		} else if n != width {
			t.Fatalf("ragged CSV: %d vs %d columns in %q", n, width, l)
		}
	}
	if width != 7 { // budget, REAP J, 5 DP columns
		t.Fatalf("figure 6 CSV width %d, want 7", width)
	}
}
