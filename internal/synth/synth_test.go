package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func TestActivityStrings(t *testing.T) {
	for _, a := range Activities() {
		if a.String() == "" {
			t.Fatalf("empty name for activity %d", int(a))
		}
	}
	if Activity(42).String() == "" {
		t.Fatal("fallback name empty")
	}
	if len(Activities()) != NumActivities {
		t.Fatalf("Activities() has %d entries, want %d", len(Activities()), NumActivities)
	}
}

func TestWindowShape(t *testing.T) {
	u := NewUserProfile(0, 1)
	rng := rand.New(rand.NewSource(1))
	for _, act := range Activities() {
		w := Generate(u, act, rng)
		if len(w.AccelX) != WindowSamples || len(w.AccelY) != WindowSamples ||
			len(w.AccelZ) != WindowSamples || len(w.Stretch) != WindowSamples {
			t.Fatalf("%v: wrong window shape", act)
		}
		if w.Activity != act || w.User != 0 {
			t.Fatalf("%v: label/user not carried", act)
		}
	}
	if WindowSamples != 160 {
		t.Fatalf("WindowSamples = %d, want 160 (1.6 s at 100 Hz)", WindowSamples)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	u := NewUserProfile(3, 9)
	a := Generate(u, Walk, rand.New(rand.NewSource(5)))
	b := Generate(u, Walk, rand.New(rand.NewSource(5)))
	for i := range a.AccelY {
		if a.AccelY[i] != b.AccelY[i] || a.Stretch[i] != b.Stretch[i] {
			t.Fatal("same seed produced different windows")
		}
	}
}

func TestUserProfilesVary(t *testing.T) {
	a := NewUserProfile(0, 1)
	b := NewUserProfile(1, 1)
	if a.StepHz == b.StepHz && a.StretchBase == b.StretchBase && a.RotX == b.RotX {
		t.Fatal("distinct users have identical profiles")
	}
	// Same user, same seed: stable.
	c := NewUserProfile(0, 1)
	if a.StepHz != c.StepHz || a.RotZ != c.RotZ {
		t.Fatal("profile not deterministic")
	}
	if a.StepHz < 1.4 || a.StepHz > 2.3 {
		t.Fatalf("StepHz %v outside plausible gait range", a.StepHz)
	}
}

func TestSignalPhysicalPlausibility(t *testing.T) {
	u := NewUserProfile(2, 7)
	rng := rand.New(rand.NewSource(2))
	for _, act := range Activities() {
		w := Generate(u, act, rng)
		mag := dsp.Magnitude(w.AccelX, w.AccelY, w.AccelZ)
		m := dsp.Mean(mag)
		// Quasi-static activities hover near 1 g; dynamic ones exceed it.
		if m < 0.6 || m > 3.0 {
			t.Errorf("%v: mean |a| = %v g, implausible", act, m)
		}
		for _, v := range w.Stretch {
			if v < -0.5 || v > 1.5 {
				t.Errorf("%v: stretch %v outside sane range", act, v)
				break
			}
		}
	}
}

func TestDynamicActivitiesHaveMoreMotionEnergy(t *testing.T) {
	u := NewUserProfile(1, 3)
	rng := rand.New(rand.NewSource(3))
	motion := func(act Activity) float64 {
		var total float64
		const reps = 10
		for r := 0; r < reps; r++ {
			w := Generate(u, act, rng)
			total += dsp.Std(w.AccelY)
		}
		return total / reps
	}
	sit, walk, jump := motion(Sit), motion(Walk), motion(Jump)
	if !(sit < walk && walk < jump) {
		t.Fatalf("motion ordering violated: sit %v, walk %v, jump %v", sit, walk, jump)
	}
}

func TestWalkIsPeriodicInStretch(t *testing.T) {
	u := NewUserProfile(4, 11)
	rng := rand.New(rand.NewSource(4))
	w := Generate(u, Walk, rng)
	mags, err := dsp.RealFFTMagnitudes(w.Stretch, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Energy above DC must be substantial for gait.
	var ac float64
	for _, m := range mags[1:] {
		ac += m
	}
	s := Generate(u, Sit, rng)
	sitMags, err := dsp.RealFFTMagnitudes(s.Stretch, 16)
	if err != nil {
		t.Fatal(err)
	}
	var sitAC float64
	for _, m := range sitMags[1:] {
		sitAC += m
	}
	if ac < 3*sitAC {
		t.Fatalf("walk AC stretch energy %v not clearly above sit %v", ac, sitAC)
	}
}

func TestTransitionChangesPosture(t *testing.T) {
	u := NewUserProfile(5, 13)
	rng := rand.New(rand.NewSource(6))
	// Across many transitions, the first and last 20 samples should
	// frequently differ substantially in mean gravity.
	changed := 0
	const reps = 20
	for r := 0; r < reps; r++ {
		w := Generate(u, Transition, rng)
		head := dsp.Mean(w.AccelY[:20])
		tail := dsp.Mean(w.AccelY[len(w.AccelY)-20:])
		headX := dsp.Mean(w.AccelX[:20])
		tailX := dsp.Mean(w.AccelX[len(w.AccelX)-20:])
		if math.Abs(head-tail) > 0.15 || math.Abs(headX-tailX) > 0.15 {
			changed++
		}
	}
	if changed < reps/2 {
		t.Fatalf("only %d/%d transitions showed a posture change", changed, reps)
	}
}

func TestDatasetScale(t *testing.T) {
	ds, err := NewDataset(DefaultCorpusConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Windows) != 3553 {
		t.Fatalf("corpus size %d, want 3553", len(ds.Windows))
	}
	if len(ds.Users) != 14 {
		t.Fatalf("user count %d, want 14", len(ds.Users))
	}
	// Every user contributes ~254 windows.
	for u, n := range ds.CountByUser() {
		if n < 250 || n > 258 {
			t.Errorf("user %d has %d windows, want ~254", u, n)
		}
	}
	// Split proportions 60/20/20 within rounding.
	total := len(ds.Train) + len(ds.Val) + len(ds.Test)
	if total != 3553 {
		t.Fatalf("split covers %d windows, want 3553", total)
	}
	if f := float64(len(ds.Train)) / 3553; f < 0.55 || f > 0.62 {
		t.Errorf("train fraction %v, want ~0.6", f)
	}
	if f := float64(len(ds.Val)) / 3553; f < 0.17 || f > 0.23 {
		t.Errorf("val fraction %v, want ~0.2", f)
	}
	// No index appears in two partitions.
	seen := make(map[int]bool, total)
	for _, part := range [][]int{ds.Train, ds.Val, ds.Test} {
		for _, i := range part {
			if seen[i] {
				t.Fatal("overlapping split partitions")
			}
			seen[i] = true
		}
	}
}

func TestDatasetStratification(t *testing.T) {
	ds, err := NewDataset(CorpusConfig{NumUsers: 4, TotalWindows: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Every activity must appear in every partition.
	for name, part := range map[string][]int{"train": ds.Train, "val": ds.Val, "test": ds.Test} {
		got := make(map[Activity]bool)
		for _, i := range part {
			got[ds.Windows[i].Activity] = true
		}
		for _, act := range Activities() {
			if !got[act] {
				t.Errorf("%s partition missing activity %v", name, act)
			}
		}
	}
}

func TestDatasetActivityShares(t *testing.T) {
	ds, err := NewDataset(DefaultCorpusConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.CountByActivity()
	for act, share := range activityShare {
		got := float64(counts[act]) / float64(len(ds.Windows))
		if math.Abs(got-share) > 0.02 {
			t.Errorf("%v share %v, want ~%v", act, got, share)
		}
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(CorpusConfig{NumUsers: 0, TotalWindows: 10}); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := NewDataset(CorpusConfig{NumUsers: 10, TotalWindows: 5}); err == nil {
		t.Fatal("fewer windows than users accepted")
	}
}

func TestDatasetDeterminism(t *testing.T) {
	cfg := CorpusConfig{NumUsers: 3, TotalWindows: 120, Seed: 77}
	a, err := NewDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Windows {
		if a.Windows[i].Activity != b.Windows[i].Activity {
			t.Fatal("activity sequence differs")
		}
		for j := range a.Windows[i].AccelY {
			if a.Windows[i].AccelY[j] != b.Windows[i].AccelY[j] {
				t.Fatal("samples differ between identically-seeded corpora")
			}
		}
	}
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("train split differs")
		}
	}
}

func TestApportionExact(t *testing.T) {
	for _, n := range []int{1, 7, 253, 254, 1000} {
		counts := apportion(n, activityShare)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != n {
			t.Fatalf("apportion(%d) sums to %d", n, total)
		}
	}
}
