package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/har"
	"repro/internal/synth"
)

// RobustnessCell is the accuracy of one design point under one fault.
type RobustnessCell struct {
	DP          string
	Fault       synth.Fault
	AccuracyPct float64
}

// RobustnessResult measures how the design points degrade under injected
// sensor faults, and whether the accuracy ordering REAP's Pareto set
// relies on survives. A stuck accelerometer axis should hurt the
// accel-heavy DP1 more than the stretch-only DP5; a detached stretch band
// should invert that.
type RobustnessResult struct {
	// CleanPct is the fault-free accuracy per design point.
	CleanPct map[string]float64
	Cells    []RobustnessCell
}

// Robustness evaluates the five published design points against every
// fault on the corpus's test split (each test window corrupted once).
func Robustness(ds *synth.Dataset, seed int64) (*RobustnessResult, error) {
	points, err := har.Characterize(ds, har.PaperFive())
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{CleanPct: make(map[string]float64)}
	for _, p := range points {
		res.CleanPct[p.Spec.Name] = 100 * p.Accuracy
	}
	for _, f := range synth.Faults() {
		for _, p := range points {
			rng := rand.New(rand.NewSource(seed + int64(f)*1000))
			correct, total := 0, 0
			for _, i := range ds.Test {
				w, err := synth.Corrupt(ds.Windows[i], f, rng)
				if err != nil {
					return nil, err
				}
				pred, err := p.Model.Classify(w)
				if err != nil {
					return nil, err
				}
				total++
				if pred == w.Activity {
					correct++
				}
			}
			res.Cells = append(res.Cells, RobustnessCell{
				DP:          p.Spec.Name,
				Fault:       f,
				AccuracyPct: 100 * float64(correct) / float64(total),
			})
		}
	}
	return res, nil
}

// Accuracy returns the cell for (dp, fault).
func (r *RobustnessResult) Accuracy(dp string, f synth.Fault) (float64, bool) {
	for _, c := range r.Cells {
		if c.DP == dp && c.Fault == f {
			return c.AccuracyPct, true
		}
	}
	return 0, false
}

// Render prints the fault grid.
func (r *RobustnessResult) Render() string {
	t := &table{header: []string{"DP", "clean%"}}
	for _, f := range synth.Faults() {
		t.header = append(t.header, f.String()+"%")
	}
	for _, dp := range []string{"DP1", "DP2", "DP3", "DP4", "DP5"} {
		row := []string{dp, f1(r.CleanPct[dp])}
		for _, f := range synth.Faults() {
			if v, ok := r.Accuracy(dp, f); ok {
				row = append(row, f1(v))
			} else {
				row = append(row, "-")
			}
		}
		t.add(row...)
	}
	return "Robustness: accuracy under injected sensor faults (every test window corrupted)\n" +
		fmt.Sprintf("%s", t)
}
