// Package wire defines the versioned request/response structs of the
// reapd fleet-allocation service — the one vocabulary shared verbatim
// by the daemon (cmd/reapd via internal/service), its clients
// (cmd/reapload), and any program that wants to speak the protocol
// without linking the solver.
//
// Schema policy (see DESIGN.md "The wire schema"):
//
//   - Every request and response carries an explicit schema version in
//     its "v" field. A server only accepts versions it knows
//     (CheckVersion); an unversioned request is a version-0 request and
//     is rejected, so old clients fail loudly instead of being
//     misparsed.
//   - Requests decode strictly (DecodeStrict): unknown fields are
//     errors. Within a version the schema may only grow by adding
//     optional response fields — request fields are frozen, so a
//     client's request either round-trips exactly or fails with
//     CodeMalformed. Breaking changes bump Version.
//   - Errors are structured: machine-stable Code strings derived from
//     the public sentinel error taxonomy (CodeForError), plus a
//     human-readable message that carries no stability promise.
//
// Fields name their units (energy in joules "_j", power in watts "_w",
// time in seconds "_s") — the same discipline as the solver API, where a
// silent unit mismatch is the classic wrong-answer bug.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the current wire-schema version. Requests must carry it in
// their "v" field; responses echo it.
const Version = 1

// CheckVersion validates a request's schema version field, returning a
// *Error with CodeUnknownVersion for versions this build does not
// speak (including 0, the value of a request that omitted "v").
func CheckVersion(v int) error {
	if v != Version {
		return &Error{
			Code:    CodeUnknownVersion,
			Message: fmt.Sprintf("wire version %d not supported (this build speaks v%d)", v, Version),
		}
	}
	return nil
}

// DecodeStrict decodes one JSON value from r into dst, rejecting
// unknown fields and trailing garbage — the request-side contract: a
// payload either matches the schema exactly or fails with an error
// suitable for CodeMalformed. Decode failures return a *Error so
// handlers map them to a response without re-classifying.
func DecodeStrict(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return &Error{Code: CodeMalformed, Message: fmt.Sprintf("decoding request: %v", err)}
	}
	// A second Decode must see EOF: two values in one body means the
	// caller is confused about framing (NDJSON belongs on the telemetry
	// endpoint, nowhere else).
	if err := dec.Decode(&json.RawMessage{}); err != io.EOF {
		return &Error{Code: CodeMalformed, Message: "trailing data after JSON value"}
	}
	return nil
}

// DesignPoint is one operating configuration offered to the optimizer:
// a recognition accuracy in [0, 1] and the power drawn running it.
type DesignPoint struct {
	Name     string  `json:"name,omitempty"`
	Accuracy float64 `json:"accuracy"`
	PowerW   float64 `json:"power_w"`
}

// Config describes the allocation problem. The zero value (or an
// absent config) selects the paper's defaults: one-hour period, 50 µW
// off-state power, α = 1, the five Table 2 design points. POffW and
// Alpha are pointers because zero is a legal value for both — absent
// means "default", explicit 0 means 0.
type Config struct {
	PeriodS      float64       `json:"period_s,omitempty"`
	POffW        *float64      `json:"poff_w,omitempty"`
	Alpha        *float64      `json:"alpha,omitempty"`
	DesignPoints []DesignPoint `json:"design_points,omitempty"`
}

// Allocation is a solved schedule: seconds of runtime per design point
// (aligned with the config's design-point order), plus off and dead
// time.
type Allocation struct {
	ActiveS []float64 `json:"active_s"`
	OffS    float64   `json:"off_s"`
	DeadS   float64   `json:"dead_s"`
}

// SolveRequest asks for one allocation: POST /v1/solve.
type SolveRequest struct {
	V       int     `json:"v"`
	Config  *Config `json:"config,omitempty"`
	BudgetJ float64 `json:"budget_j"`
	// Solver names a registered backend; empty selects the default
	// (the compiled parametric plan).
	Solver string `json:"solver,omitempty"`
}

// SolveResponse answers a SolveRequest.
type SolveResponse struct {
	V          int        `json:"v"`
	Allocation Allocation `json:"allocation"`
	// EnergyJ is the energy the schedule consumes; ≤ the request budget.
	EnergyJ float64 `json:"energy_j"`
	// ExpectedAccuracy is the accuracy averaged over active time, 0 when
	// the schedule has no active time.
	ExpectedAccuracy float64 `json:"expected_accuracy"`
}

// BatchSolveRequest asks for many independent allocations in one round
// trip: POST /v1/batch-solve. Items share nothing but the connection —
// per-item failures are per-item results, not request failures.
type BatchSolveRequest struct {
	V     int         `json:"v"`
	Items []SolveItem `json:"items"`
}

// SolveItem is one solve within a batch: SolveRequest minus the
// envelope version.
type SolveItem struct {
	Config  *Config `json:"config,omitempty"`
	BudgetJ float64 `json:"budget_j"`
	Solver  string  `json:"solver,omitempty"`
}

// BatchSolveResponse answers a BatchSolveRequest; Results[i] answers
// Items[i], carrying exactly one of Solve or Error.
type BatchSolveResponse struct {
	V       int           `json:"v"`
	Results []SolveResult `json:"results"`
}

// SolveResult is one batch item's outcome.
type SolveResult struct {
	Solve *SolveResponse `json:"solve,omitempty"`
	Error *Error         `json:"error,omitempty"`
}

// ReportRequest closes the feedback loop for owned devices: POST
// /v1/report. Each entry reports the energy a device actually consumed
// executing its last planned period.
type ReportRequest struct {
	V       int            `json:"v"`
	Reports []DeviceReport `json:"reports"`
}

// DeviceReport is one device's measured consumption.
type DeviceReport struct {
	Device    int     `json:"device"`
	ConsumedJ float64 `json:"consumed_j"`
}

// ReportResponse acknowledges a ReportRequest.
type ReportResponse struct {
	V        int `json:"v"`
	Accepted int `json:"accepted"`
}

// TelemetryEvent is one line of the NDJSON stream on POST
// /v1/telemetry: a device reporting harvested energy (the service
// plans its next period and streams the allocation back) and/or
// measured consumption (the service closes its accounting loop).
type TelemetryEvent struct {
	V      int `json:"v"`
	Device int `json:"device"`
	// HarvestJ, when present, is the energy the device expects for its
	// next period; the service steps the device and answers with its
	// allocation.
	HarvestJ *float64 `json:"harvest_j,omitempty"`
	// ConsumedJ, when present, is the measured consumption of the
	// previously planned period, applied before any HarvestJ step in
	// the same event.
	ConsumedJ *float64 `json:"consumed_j,omitempty"`
}

// TelemetryResult is the response line streamed back for each
// TelemetryEvent, in input order.
type TelemetryResult struct {
	V          int         `json:"v"`
	Device     int         `json:"device"`
	Allocation *Allocation `json:"allocation,omitempty"`
	Error      *Error      `json:"error,omitempty"`
}

// AlphaRequest changes one owned device's accuracy/active-time
// emphasis at runtime: POST /v1/alpha. It is a state-mutating request,
// journaled like reports and telemetry steps.
type AlphaRequest struct {
	V      int     `json:"v"`
	Device int     `json:"device"`
	Alpha  float64 `json:"alpha"`
}

// AlphaResponse acknowledges an AlphaRequest.
type AlphaResponse struct {
	V      int     `json:"v"`
	Device int     `json:"device"`
	Alpha  float64 `json:"alpha"`
}

// StatsResponse is GET /v1/stats: service-level counters and, when the
// fleet runs with an opted-in solve cache, its statistics. Cache is nil
// when no cache is configured — distinct from a configured-but-cold
// cache, whose counters are present and zero. Journal is nil when the
// daemon runs without crash-safe state.
type StatsResponse struct {
	V           int    `json:"v"`
	Devices     int    `json:"devices"`
	Shards      int    `json:"shards"`
	Solves      uint64 `json:"solves"`
	BatchItems  uint64 `json:"batch_items"`
	Steps       uint64 `json:"steps"`
	Reports     uint64 `json:"reports"`
	AlphaSets   uint64 `json:"alpha_sets"`
	RateLimited uint64 `json:"rate_limited"`
	// Shed counts requests refused by queue-depth admission before any
	// work was done (503 + Retry-After, CodeOverloaded).
	Shed uint64 `json:"shed"`
	// Panics counts handler panics converted to responses by the
	// recover boundary; ShardsQuarantined counts shards refusing work
	// after repeated panics.
	Panics            uint64 `json:"panics"`
	ShardsQuarantined int    `json:"shards_quarantined"`
	// TotalBatteryJ sums every owned device's battery charge — the
	// fleet aggregate that must reconcile across a crash and replay.
	TotalBatteryJ float64           `json:"total_battery_j"`
	Draining      bool              `json:"draining"`
	Cache         *CacheStats       `json:"cache,omitempty"`
	Journal       *JournalStats     `json:"journal,omitempty"`
	Replication   *ReplicationStats `json:"replication,omitempty"`
}

// JournalStats mirrors the write-ahead journal's counters on the wire.
type JournalStats struct {
	// Seq is the total number of state-mutating events in history.
	Seq uint64 `json:"seq"`
	// SnapshotSeq is the event count covered by the newest snapshot.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Replayed counts events re-applied at boot; Appended counts
	// events logged since.
	Replayed uint64 `json:"replayed"`
	Appended uint64 `json:"appended"`
	// TornTail reports that boot truncated a torn journal tail.
	TornTail bool `json:"torn_tail"`
	// Compactions counts snapshots written since boot.
	Compactions uint64 `json:"compactions"`
	// FsyncPolicy names the configured durability policy: "always",
	// "interval" or "never".
	FsyncPolicy string `json:"fsync_policy"`
}

// ReplicationStats is the hot-standby replication block of /v1/stats.
// Role decides which halves are meaningful: a primary reports its
// followers' positions, a follower reports its own stream health.
type ReplicationStats struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Epoch is the node's current fencing term.
	Epoch uint64 `json:"epoch"`
	// Primary (follower only) is the address being tailed; Connected
	// whether the stream is currently up.
	Primary   string `json:"primary,omitempty"`
	Connected bool   `json:"connected,omitempty"`
	// LagEvents (follower) is primary seq minus locally applied seq as
	// of the last frame; LagS how long since any frame arrived.
	LagEvents uint64  `json:"lag_events,omitempty"`
	LagS      float64 `json:"lag_s,omitempty"`
	// Applied counts replicated events applied; Reconnects stream
	// re-establishments; Resyncs snapshot re-bootstraps forced by
	// divergence or retention.
	Applied    uint64 `json:"applied,omitempty"`
	Reconnects uint64 `json:"reconnects,omitempty"`
	Resyncs    uint64 `json:"resyncs,omitempty"`
	// Followers (primary only) is the per-follower shipped/acked view.
	Followers []FollowerLag `json:"followers,omitempty"`
}

// FollowerLag is one follower's position as the primary sees it.
type FollowerLag struct {
	ID string `json:"id"`
	// Live reports an attached stream; a false entry is the last known
	// ack of a detached follower.
	Live       bool    `json:"live"`
	ShippedSeq uint64  `json:"shipped_seq"`
	AckSeq     uint64  `json:"ack_seq"`
	AckAgeS    float64 `json:"ack_age_s"`
}

// PromoteRequest is POST /v1/promote: the admin failover action that
// turns a follower into the primary, bumping the fencing epoch.
type PromoteRequest struct {
	V int `json:"v"`
}

// PromoteResponse acknowledges a promotion (idempotent on a node that
// is already primary) with the epoch now in force and the journal
// position the node serves from.
type PromoteResponse struct {
	V     int    `json:"v"`
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// ReplicateAckRequest is POST /v1/replicate/ack: a follower reporting
// the sequence number it has durably applied through, so the primary's
// lag accounting stays honest between stream frames.
type ReplicateAckRequest struct {
	V     int    `json:"v"`
	ID    string `json:"id"`
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// ReplicateAckResponse acknowledges an ack.
type ReplicateAckResponse struct {
	V int `json:"v"`
}

// HealthzResponse is the GET /healthz body. Status is machine-readable
// so orchestrators can tell a draining daemon (which will exit soon and
// must stop receiving traffic, 503) from a dead one (no answer at all):
// "ok" or "draining".
//
// Role/Epoch/ReplicationLagS surface the replication state a load
// balancer routes on: "primary" accepts mutations, "follower" serves
// solves and names its leader, "degraded" is a primary refusing
// mutations (disk full) whose solves still work.
type HealthzResponse struct {
	V      int    `json:"v"`
	Status string `json:"status"`
	// Role is "primary", "follower" or "degraded"; empty for a daemon
	// running without a journal (implicitly a primary with no
	// replication machinery).
	Role string `json:"role,omitempty"`
	// Epoch is the fencing term currently in force.
	Epoch uint64 `json:"epoch,omitempty"`
	// ReplicationLagS (follower only) is seconds since the last frame
	// arrived from the primary; nil otherwise.
	ReplicationLagS *float64 `json:"replication_lag_s,omitempty"`
}

// Healthz status values.
const (
	HealthOK       = "ok"
	HealthDraining = "draining"
)

// Healthz role values. degraded (read-only: journal disk full) and
// fenced (a higher epoch is in force elsewhere) are what a load
// balancer must route mutations away from.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
	RoleDegraded = "degraded"
	RoleFenced   = "fenced"
)

// CacheStats mirrors the solve cache's counters on the wire.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Stable error codes. Codes are part of the wire contract: clients
// branch on them, so existing codes never change meaning; new failure
// modes get new codes.
const (
	// CodeInvalidConfig: the request's configuration failed validation.
	CodeInvalidConfig = "invalid_config"
	// CodeBudgetNegative: a budget, harvest or consumption value was
	// negative or NaN.
	CodeBudgetNegative = "budget_negative"
	// CodeInfeasible: the allocation LP has no feasible solution.
	CodeInfeasible = "infeasible"
	// CodeSolverFailure: the solver terminated without an optimum for a
	// reason other than infeasibility.
	CodeSolverFailure = "solver_failure"
	// CodeUnknownSolver: the named solver backend is not registered.
	CodeUnknownSolver = "unknown_solver"
	// CodeUnknownDevice: a device index outside the fleet the service
	// owns.
	CodeUnknownDevice = "unknown_device"
	// CodeUnknownVersion: the request's "v" field names a schema
	// version this server does not speak.
	CodeUnknownVersion = "unknown_version"
	// CodeMalformed: the body was not valid JSON for the endpoint's
	// request type (syntax error, unknown field, trailing data).
	CodeMalformed = "malformed_request"
	// CodeRateLimited: the tenant exceeded its admission rate; retry
	// after the Retry-After header's delay.
	CodeRateLimited = "rate_limited"
	// CodeDraining: the server is shutting down and no longer admits
	// new work.
	CodeDraining = "draining"
	// CodeDeadlineExceeded: the request's deadline (X-Deadline-Ms,
	// capped by server policy) expired before the work finished.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeOverloaded: queue-depth admission shed the request before any
	// work was done; retry after the Retry-After header's delay.
	CodeOverloaded = "overloaded"
	// CodePanic: the handler panicked; the recover boundary converted
	// it into this response instead of crashing the daemon.
	CodePanic = "panic"
	// CodeShardQuarantined: the shard owning the requested device is
	// quarantined after repeated panics; other shards still serve.
	CodeShardQuarantined = "shard_quarantined"
	// CodeNotPrimary: this node is a replication follower; mutations go
	// to the primary named by the Leader response header.
	CodeNotPrimary = "not_primary"
	// CodeStaleEpoch: the request's fencing epoch and the node's
	// disagree — one of the two is a fenced ex-primary. Re-resolve the
	// leader and its epoch before retrying.
	CodeStaleEpoch = "stale_epoch"
	// CodeDegraded: the node's journal disk is full; it serves stateless
	// solves but refuses mutations until an operator intervenes.
	CodeDegraded = "degraded"
	// CodeInternal: any failure the taxonomy does not classify.
	CodeInternal = "internal"
)

// Error is the structured error carried in responses; it implements
// error so service code can return it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// ErrorResponse is the top-level body of every non-2xx response.
type ErrorResponse struct {
	V     int   `json:"v"`
	Error Error `json:"error"`
}

// Errorf builds a *Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// AsError extracts a *Error from an error chain, classifying through
// CodeForError when the chain carries no wire error — the single seam
// where solver errors become wire codes.
func AsError(err error) *Error {
	var we *Error
	if errors.As(err, &we) {
		return we
	}
	return &Error{Code: CodeForError(err), Message: err.Error()}
}
