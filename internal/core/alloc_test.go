package core

import (
	"context"
	"testing"
)

// The //reap:hotpath annotations promise these paths allocate nothing in
// steady state; the hotalloc analyzer enforces that statically and these
// pins are the runtime ground truth it cross-validates.

func TestPlanSolveIntoZeroAllocs(t *testing.T) {
	p, err := NewPlan(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var dst Allocation
	if err := p.SolveInto(1.0, &dst); err != nil { // warm dst.Active
		t.Fatal(err)
	}
	budgets := []float64{0.05, 0.4, 1.1, 2.5, 10}
	allocs := testing.AllocsPerRun(200, func() {
		for _, b := range budgets {
			if err := p.SolveInto(b, &dst); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Plan.SolveInto allocated %v times per run, want 0", allocs)
	}
}

func TestPlanValueZeroAllocs(t *testing.T) {
	p, err := NewPlan(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_ = p.Value(0.7)
		_ = p.Value(100)
	})
	if allocs != 0 {
		t.Fatalf("Plan.Value allocated %v times per run, want 0", allocs)
	}
}

func TestStepIntoOnPlanZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	ct, err := NewController(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.SetPlan(p); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var dst Allocation
	if err := ct.StepInto(ctx, 1.0, &dst); err != nil { // warm dst.Active
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := ct.StepInto(ctx, 1.0, &dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Controller.StepInto on the plan path allocated %v times per run, want 0", allocs)
	}
}
