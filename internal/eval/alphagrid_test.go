package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestAlphaGridExperiment(t *testing.T) {
	res, err := AlphaGrid(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 25 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.BestRatio > 1+1e-9 {
			t.Errorf("alpha %g budget %v: static %s beats REAP (%v)",
				c.Alpha, c.BudgetJ, c.BestStatic, c.BestRatio)
		}
		if c.BestStatic == "" {
			t.Errorf("alpha %g budget %v: no best static found", c.Alpha, c.BudgetJ)
		}
	}
	// Corner structure: low alpha + low budget favours the cheap point;
	// high alpha + near-saturation budget favours DP1.
	lowLow, _ := res.Cell(0.5, 2)
	if lowLow.BestStatic != "DP5" {
		t.Errorf("alpha 0.5 / 2 J best static %s, want DP5", lowLow.BestStatic)
	}
	hiHi, _ := res.Cell(8, 9.9)
	if hiHi.BestStatic != "DP1" {
		t.Errorf("alpha 8 / 9.9 J best static %s, want DP1", hiHi.BestStatic)
	}
	// At extreme alpha REAP often collapses to a single design point, so
	// the best static may exactly match it (ratio 1); at moderate alpha
	// and a Region-2 budget it must strictly mix, leaving every static
	// point behind.
	mid1, _ := res.Cell(1, 6)
	if mid1.BestRatio >= 1-1e-9 {
		t.Errorf("alpha 1 / 6 J: best static ratio %v, want strictly below 1 (REAP mixes)",
			mid1.BestRatio)
	}
	if !strings.Contains(res.Render(), "alpha\\budget") {
		t.Error("render incomplete")
	}
	if _, err := AlphaGrid(core.Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
