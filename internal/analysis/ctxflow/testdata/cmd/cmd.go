// Fixture loaded under a repro/cmd/ import path: binaries own their
// lifecycle, so minting root contexts is legal — but dropping a context
// parameter is still a bug.
package main

import "context"

func main() {
	ctx := context.Background() // negative: cmd/ may mint root contexts
	Use(ctx, 1)
	Drop(ctx, 1)
}

// Use plumbs its context: fine.
func Use(ctx context.Context, x float64) float64 {
	<-ctx.Done()
	return x
}

// Drop ignores its context even in a binary.
func Drop(ctx context.Context, x float64) float64 { // want `Drop takes a context\.Context "ctx" but never uses it`
	return x
}
