// Package energy models the power consumption of the HAR prototype: the
// TI CC2650-class MCU, the motion and stretch sensors, and the BLE radio.
// The component constants are calibrated so the five Pareto design points
// of the paper reproduce Table 2's execution-time, energy and power columns
// (the calibration tests pin every column to within 15%).
//
// The paper measured these values on hardware test pads; this package
// regenerates them from a component model so that *all 24* design points —
// not just the five published ones — get consistent energy estimates from
// the same knobs (axes, sensing period, feature family, classifier size).
package energy

import (
	"fmt"
	"math"
)

// Calibrated model constants. Units: seconds, watts, joules unless noted.
const (
	// ActivityWindowSeconds is the activity duration an energy estimate
	// is amortized over (Table 2 is per-activity; DP1 senses 1.6 s).
	ActivityWindowSeconds = 1.6

	// POff is the off-state draw of the harvesting and monitoring
	// circuitry: the paper's 0.18 J per hour.
	POff = 0.18 / 3600

	// PMCUActive is the effective MCU power while executing the signal
	// chain at 47 MHz (measured-effective, including peripheral clocks;
	// fitted from Table 2's MCU-energy column).
	PMCUActive = 0.33

	// tStatsPerAxisFull is the feature-generation time for statistical
	// features over one full-window axis (Table 2: 0.27 ms per axis).
	tStatsPerAxisFull = 0.27e-3
	// tDWTPerAxisFull is the per-axis cost of the wavelet feature family,
	// roughly 2x the statistical features.
	tDWTPerAxisFull = 0.55e-3
	// tStretchFFT is the fixed cost of the 16-point FFT stretch feature
	// (Table 2: 3.83 ms in every design point that uses it).
	tStretchFFT = 3.83e-3
	// tStretchStats is the cost of statistical stretch features.
	tStretchStats = 0.90e-3
	// tStretchGoertzelPerBin is the cost of one Goertzel bin over the
	// 16-sample stretch window: O(n) per bin with no bit-reversal, but
	// slightly above the radix-2 FFT's amortized 0.43 ms/bin (3.83 ms /
	// 9 bins) — the crossover sits between 6 and 9 bins, so partial-
	// spectrum design points win and full-spectrum ones keep the FFT.
	tStretchGoertzelPerBin = 0.45e-3

	// tNNFixed and tNNPerMAC model classifier inference time: a fixed
	// activation/IO overhead plus a per-multiply-accumulate cost
	// (software floating point at 47 MHz). Fitted so DP1's 444-MAC
	// classifier takes 1.05 ms and DP5's 192-MAC one takes 0.85 ms.
	tNNFixed  = 0.70e-3
	tNNPerMAC = 0.80e-6
	// tNNPerMACInt8 prices an int8 multiply-accumulate: native MCU
	// arithmetic, ~4x cheaper than software floating point. Used by the
	// quantized-classifier design-point extension.
	tNNPerMACInt8 = 0.20e-6

	// eSampleHandling prices the interrupt/DMA handling of accelerometer
	// streams, per full-window axis equivalent.
	eSampleHandling = 0.08e-3

	// PAccelBase and PAccelPerAxis model the MPU-9250: a base draw while
	// the die is on plus a per-enabled-axis increment. Fitted from the
	// sensor-energy column (DP1 2.10 mJ, DP2 1.43 mJ, DP4 0.57 mJ).
	PAccelBase    = 0.63e-3
	PAccelPerAxis = 0.21e-3

	// PStretch is the passive stretch sensor's draw: 0.08 mJ per 1.6 s
	// activity (Table 2, DP5 sensor energy).
	PStretch = 0.05e-3

	// eBLEConnection and eBLEPerByte model a BLE transmission event:
	// connection-event overhead plus a per-payload-byte cost. Fitted so a
	// 2-byte recognized-activity packet costs the paper's 0.38 mJ and a
	// raw 1280-byte window costs ~5.5 mJ.
	eBLEConnection = 0.372e-3
	eBLEPerByte    = 4.0e-6
)

// RawWindowBytes is the payload for offloading one activity window:
// 160 samples x (3 accel axes + stretch) x 2 bytes.
const RawWindowBytes = 160 * 4 * 2

// LabelBytes is the payload for transmitting just the recognized activity.
const LabelBytes = 2

// Profile describes the energy-relevant knobs of a design point, the same
// knobs Figure 2 of the paper turns.
type Profile struct {
	// AccelAxes is the number of enabled accelerometer axes (0–3).
	AccelAxes int
	// SensingFraction is the fraction of the activity window the
	// accelerometer stays on (the paper's sensing-period knob); it is
	// ignored when AccelAxes is 0.
	SensingFraction float64
	// AccelDWT selects the wavelet feature family instead of statistical
	// features for the accelerometer.
	AccelDWT bool
	// StretchFFT enables the 16-point FFT stretch feature.
	StretchFFT bool
	// StretchStats enables statistical stretch features (mutually
	// exclusive with StretchFFT in the paper's design points).
	StretchStats bool
	// StretchGoertzelBins, when positive, replaces the full FFT with
	// per-bin Goertzel filters over the lowest bins (extension).
	StretchGoertzelBins int
	// NNMACs is the classifier's multiply-accumulate count per inference.
	NNMACs int
	// QuantizedNN prices classifier MACs at the int8 rate instead of
	// software floating point (post-training quantization extension).
	QuantizedNN bool
	// TxBytes is the BLE payload per activity (LabelBytes for on-device
	// classification, RawWindowBytes for offloading).
	TxBytes int
}

// Validate checks the profile for physical consistency.
func (p Profile) Validate() error {
	if p.AccelAxes < 0 || p.AccelAxes > 3 {
		return fmt.Errorf("energy: %d accelerometer axes", p.AccelAxes)
	}
	if p.AccelAxes > 0 && (p.SensingFraction <= 0 || p.SensingFraction > 1 ||
		math.IsNaN(p.SensingFraction)) {
		return fmt.Errorf("energy: sensing fraction %v outside (0,1]", p.SensingFraction)
	}
	if p.StretchFFT && p.StretchStats {
		return fmt.Errorf("energy: stretch FFT and stats are mutually exclusive")
	}
	if p.StretchGoertzelBins < 0 || p.StretchGoertzelBins > 9 {
		return fmt.Errorf("energy: %d Goertzel bins outside 0..9", p.StretchGoertzelBins)
	}
	if p.StretchGoertzelBins > 0 && (p.StretchFFT || p.StretchStats) {
		return fmt.Errorf("energy: Goertzel bins exclude other stretch features")
	}
	if p.NNMACs < 0 {
		return fmt.Errorf("energy: negative MAC count %d", p.NNMACs)
	}
	if p.TxBytes < 0 {
		return fmt.Errorf("energy: negative payload %d", p.TxBytes)
	}
	return nil
}

// Breakdown itemizes one activity's energy, in joules, and the execution
// time of each MCU stage, in seconds. It corresponds to one row of
// Table 2 plus the component split of Figure 4.
type Breakdown struct {
	// TimeAccelFeatures, TimeStretchFeatures, TimeNN are MCU execution
	// times per stage; TimeTotal is their sum (Table 2's "MCU exec. time
	// distribution").
	TimeAccelFeatures   float64
	TimeStretchFeatures float64
	TimeNN              float64
	TimeTotal           float64

	// MCUCompute is PMCUActive x TimeTotal; MCUSampling is the stream-
	// handling overhead; Radio is the BLE transmission. Their sum is
	// Table 2's "MCU energy".
	MCUCompute  float64
	MCUSampling float64
	Radio       float64

	// SensorAccel and SensorStretch are the sensor energies; their sum is
	// Table 2's "Sensor energy".
	SensorAccel   float64
	SensorStretch float64
}

// MCUEnergy is the Table 2 "MCU energy" column: compute + sampling + radio.
func (b Breakdown) MCUEnergy() float64 { return b.MCUCompute + b.MCUSampling + b.Radio }

// SensorEnergy is the Table 2 "Sensor energy" column.
func (b Breakdown) SensorEnergy() float64 { return b.SensorAccel + b.SensorStretch }

// Total is the Table 2 "Energy" column: everything consumed per activity.
func (b Breakdown) Total() float64 { return b.MCUEnergy() + b.SensorEnergy() }

// Power is the Table 2 "Power" column: per-activity energy amortized over
// the 1.6 s activity window.
func (b Breakdown) Power() float64 { return b.Total() / ActivityWindowSeconds }

// Activity computes the per-activity energy breakdown for a profile.
func Activity(p Profile) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	var b Breakdown

	// MCU stage times.
	axisWindows := float64(p.AccelAxes) * p.SensingFraction
	if p.AccelAxes == 0 {
		axisWindows = 0
	}
	perAxis := tStatsPerAxisFull
	if p.AccelDWT {
		perAxis = tDWTPerAxisFull
	}
	b.TimeAccelFeatures = perAxis * axisWindows
	switch {
	case p.StretchFFT:
		b.TimeStretchFeatures = tStretchFFT
	case p.StretchStats:
		b.TimeStretchFeatures = tStretchStats
	case p.StretchGoertzelBins > 0:
		b.TimeStretchFeatures = tStretchGoertzelPerBin * float64(p.StretchGoertzelBins)
	}
	if p.NNMACs > 0 {
		perMAC := tNNPerMAC
		if p.QuantizedNN {
			perMAC = tNNPerMACInt8
		}
		b.TimeNN = tNNFixed + perMAC*float64(p.NNMACs)
	}
	b.TimeTotal = b.TimeAccelFeatures + b.TimeStretchFeatures + b.TimeNN

	// MCU energies.
	b.MCUCompute = PMCUActive * b.TimeTotal
	b.MCUSampling = eSampleHandling * axisWindows
	b.Radio = 0
	if p.TxBytes > 0 {
		b.Radio = eBLEConnection + eBLEPerByte*float64(p.TxBytes)
	}

	// Sensor energies.
	if p.AccelAxes > 0 {
		onTime := ActivityWindowSeconds * p.SensingFraction
		b.SensorAccel = (PAccelBase + PAccelPerAxis*float64(p.AccelAxes)) * onTime
	}
	b.SensorStretch = PStretch * ActivityWindowSeconds
	return b, nil
}

// PerHour scales a per-activity breakdown to the paper's one-hour activity
// period TP with back-to-back 1.6 s activity windows (Figure 4's view).
func PerHour(b Breakdown) float64 {
	return b.Total() * 3600 / ActivityWindowSeconds
}

// BLETransmission returns the radio energy for a payload of n bytes,
// supporting the offloading analysis of Section 4.2.
func BLETransmission(n int) float64 {
	if n <= 0 {
		return 0
	}
	return eBLEConnection + eBLEPerByte*float64(n)
}

// OffloadProfile returns the profile of the offloading alternative: stream
// every raw sample to the host and run no local feature generation or
// classification.
func OffloadProfile() Profile {
	return Profile{
		AccelAxes:       3,
		SensingFraction: 1,
		TxBytes:         RawWindowBytes,
	}
}
