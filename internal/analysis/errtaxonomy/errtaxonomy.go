// Package errtaxonomy enforces the sentinel-error taxonomy at the
// public boundary of the solver packages.
//
// PR 1 established the contract that every error the library returns
// wraps one of the package sentinels (ErrInvalidConfig,
// ErrBudgetNegative, ErrInfeasible, ErrSolverFailure, ErrUnknownSolver
// in reap/internal/core; the lp package's own Err* set below it), so
// callers classify failures with errors.Is instead of string matching.
// That contract breaks silently the first time someone returns a fresh
// fmt.Errorf with no %w: errors.Is starts answering false and nothing
// fails until a caller's switch misroutes in production.
//
// The analyzer checks every return statement of every exported function
// or method in the scoped packages (repro, repro/internal/core,
// repro/internal/lp). A returned error expression that is a direct call
// to errors.New, or to fmt.Errorf whose format string contains no %w
// verb, is a diagnostic: the error it constructs wraps nothing, so it
// cannot satisfy errors.Is against any sentinel. Errors built
// elsewhere and returned through variables are trusted — the analyzer
// polices construction at the boundary, not full dataflow — which in
// practice is where every historical violation sat.
package errtaxonomy

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// scoped lists the packages whose public boundary the taxonomy governs.
// internal/journal and internal/replicate joined with the replication
// work: the service routes on their sentinels (journal.ErrDiskFull →
// degraded read-only mode, replicate.ErrOutOfSync → snapshot resync),
// so an unwrapped error there silently disables a failure mode.
var scoped = map[string]bool{
	"repro":                    true,
	"repro/internal/core":      true,
	"repro/internal/lp":        true,
	"repro/internal/journal":   true,
	"repro/internal/replicate": true,
	"repro/sim":                true,
}

// Analyzer enforces sentinel wrapping at the public boundary.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "errors returned by exported functions of repro, internal/core, internal/lp, " +
		"internal/journal, internal/replicate and sim must wrap a sentinel via %w " +
		"so errors.Is keeps working",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scoped[pass.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc inspects the return statements that belong to fn itself
// (not to closures nested inside it, whose results do not cross the
// public boundary directly).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, result := range n.Results {
				checkResult(pass, fn, result)
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func checkResult(pass *analysis.Pass, fn *ast.FuncDecl, result ast.Expr) {
	call, ok := result.(*ast.CallExpr)
	if !ok {
		return
	}
	pkg, name := analysis.CalleePkgFunc(pass.TypesInfo, call)
	switch {
	case pkg == "errors" && name == "New":
		pass.Reportf(call.Pos(),
			"%s returns errors.New(...), which wraps no sentinel: wrap one with fmt.Errorf(\"%%w: ...\", Err...)",
			fn.Name.Name)
	case pkg == "fmt" && name == "Errorf":
		if format, ok := formatLiteral(call); ok && !strings.Contains(format, "%w") {
			pass.Reportf(call.Pos(),
				"%s returns fmt.Errorf without %%w, so errors.Is cannot reach a sentinel: wrap one with %%w",
				fn.Name.Name)
		}
	}
}

// formatLiteral extracts fmt.Errorf's format string when it is a plain
// string literal (the only form the codebase uses; computed formats are
// left to reviewers).
func formatLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return "", false
	}
	return lit.Value, true
}
