package reap

// One benchmark per table and figure of the paper's evaluation section,
// plus microbenchmarks for the on-device costs the paper quotes (Algorithm
// 1's 1.5 ms at 5 design points and 8 ms at 100; Table 2's per-stage MCU
// times). Absolute times come from the host CPU, not a 47 MHz CC2650 —
// the scaling shapes are what these benchmarks pin down.
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ble"
	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/eval"
	"repro/internal/har"
	"repro/internal/nn"
	"repro/internal/solar"
	"repro/internal/synth"
)

var (
	benchDSOnce sync.Once
	benchDS     *synth.Dataset
	benchDSErr  error
)

// benchCorpus shares the paper-scale corpus across benchmarks so corpus
// generation does not dominate the training measurements.
func benchCorpus(b *testing.B) *synth.Dataset {
	b.Helper()
	benchDSOnce.Do(func() {
		benchDS, benchDSErr = synth.NewDataset(synth.DefaultCorpusConfig())
	})
	if benchDSErr != nil {
		b.Fatal(benchDSErr)
	}
	return benchDS
}

// BenchmarkTable2 regenerates Table 2: train + price the five Pareto
// design points on the 14-user corpus.
func BenchmarkTable2(b *testing.B) {
	ds := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table2On(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: the full 24-point design space.
func BenchmarkFigure3(b *testing.B) {
	ds := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure3On(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: DP1's hourly energy breakdown.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5a regenerates Figure 5(a)/(b): the α=1 energy sweep of
// expected accuracy and active time for REAP and the static points.
func BenchmarkFigure5a(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure5(cfg, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5b isolates the active-time normalization view (the same
// sweep re-rendered; measured separately so regressions in rendering do
// not hide in Figure5a).
func BenchmarkFigure5b(b *testing.B) {
	cfg := DefaultConfig()
	res, err := eval.Figure5(cfg, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: the α=2 normalized objective.
func BenchmarkFigure6(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure6(cfg, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: the month-long solar case study
// across five α values and three baselines.
func BenchmarkFigure7(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeadline recomputes the abstract's headline gains.
func BenchmarkHeadline(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Headline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDutyCycle measures the design-set ablation (on/off
// single-DP baselines versus the full Pareto set) over ten solar days.
func BenchmarkAblationDutyCycle(b *testing.B) {
	tr, err := solar.September2015()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	budgets := tr.Hours[:240]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationOn(cfg, budgets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve5DPs is Algorithm 1 at the paper's operating point: five
// design points (1.5 ms on the CC2650 prototype).
func BenchmarkSolve5DPs(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(cfg, 5.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolve100DPs is the paper's scaling claim: 100 design points
// stayed under 8 ms on the MCU, ~5x the 5-DP cost.
func BenchmarkSolve100DPs(b *testing.B) {
	cfg := core.Config{Period: 3600, POff: core.DefaultPOff, Alpha: 1}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		cfg.DPs = append(cfg.DPs, core.DesignPoint{
			Name:     "dp",
			Accuracy: 0.5 + rng.Float64()*0.5,
			Power:    1e-3 + rng.Float64()*2e-3,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(cfg, 5.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveEnumerate5DPs measures the independent O(N²) solver at
// the same operating point.
func BenchmarkSolveEnumerate5DPs(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEnumerate(cfg, 5.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolvePlan5DPs measures the compiled parametric backend at
// the paper's operating point, through the public registry (compile
// amortized across calls by the backend's fingerprint memo).
func BenchmarkSolvePlan5DPs(b *testing.B) {
	ctx := context.Background()
	cfg := DefaultConfig()
	solver, err := LookupSolver(SolverPlan)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(ctx, cfg, 5.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolvePlan100DPs is the scaling companion of
// BenchmarkSolve100DPs: the envelope compiles once, after which a solve
// is a binary search over at most 101 breakpoints.
func BenchmarkSolvePlan100DPs(b *testing.B) {
	ctx := context.Background()
	cfg := core.Config{Period: 3600, POff: core.DefaultPOff, Alpha: 1}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		cfg.DPs = append(cfg.DPs, core.DesignPoint{
			Name:     "dp",
			Accuracy: 0.5 + rng.Float64()*0.5,
			Power:    1e-3 + rng.Float64()*2e-3,
		})
	}
	solver, err := LookupSolver(SolverPlan)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(ctx, cfg, 5.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerStep measures one closed-loop hour: budget folding,
// LP solve and accounting.
func BenchmarkControllerStep(b *testing.B) {
	ctl, err := NewController(DefaultConfig(), 20, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc, err := ctl.Step(4.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := ctl.Report(alloc.Energy(ctl.Config())); err != nil {
			b.Fatal(err)
		}
	}
}

// batchRequests builds n independent solve requests spanning the full
// budget range, the workload shape of a fleet re-planning tick.
func batchRequests(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Budget: 11.0 * float64(i) / float64(n)}
	}
	return reqs
}

// BenchmarkSolveBatch compares the sequential baseline against the
// worker-pool batch layer at fleet scales (1k and 10k devices). The
// parallel path should scale with GOMAXPROCS; the recorded speedup is the
// headline number for the batch API.
func BenchmarkSolveBatch(b *testing.B) {
	ctx := context.Background()
	solver, err := LookupSolver(SolverSimplex)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, n := range []int{1000, 10000} {
		reqs := batchRequests(n)
		b.Run(fmt.Sprintf("sequential/%d", n), func(b *testing.B) {
			results := make([]Result, len(reqs))
			for i := 0; i < b.N; i++ {
				for j, req := range reqs {
					alloc, err := solver.Solve(ctx, cfg, req.Budget)
					if err != nil {
						b.Fatal(err)
					}
					results[j] = Result{Allocation: alloc}
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, res := range SolveBatch(ctx, reqs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// correlatedBudgets models a geographically clustered fleet: devices in
// the same cluster (same weather cell, same panel tilt) harvest
// near-identical energy, differing by far less than the cache's 1 mJ
// quantization resolution — the workload the solve cache is built for.
func correlatedBudgets(n int) []float64 {
	budgets := make([]float64, n)
	for i := range budgets {
		cluster := i % 24
		base := 0.5 + 9.0*float64(cluster)/24.0
		budgets[i] = base + 1e-6*float64(i%7) // jitter ≪ DefaultCacheResolution
	}
	return budgets
}

// BenchmarkFleetStepAll measures one fleet re-planning tick (stateful
// sessions, battery + accounting) at 1k and 10k devices under
// correlated budgets, across the solver backends and cache modes that
// make up the committed benchmark trajectory (BENCH_solve.json in CI):
//
//   - uncached-simplex / uncached-enumerate: every device runs the
//     iterative LP solver on the pooled path;
//   - uncached-plan: the compiled parametric backend, solving straight
//     into each controller's reused allocation via the plan fast path —
//     the benchmark behind the "miss path is near-free" claim
//     (uncached-plan/10000 versus uncached-simplex/10000 is the
//     headline, ≥3x on one core);
//   - sequential-uncached-plan: the same without the worker pool,
//     isolating pool overhead at plan-solve speeds;
//   - default: NewFleet with no options — since the plan-first re-tier
//     this is the plan-direct path, and the trajectory's acceptance
//     line is default/10000 ≤ uncached-plan/10000 (same code path, so
//     equal to noise);
//   - cached: the opted-in shared 1 mJ solve cache over the plan
//     backend (NewFleet's default before the re-tier — kept in the
//     trajectory to show why the default flipped: the cache pays
//     fingerprint+quantize+lookup per solve to save a ~300 ns binary
//     search).
func BenchmarkFleetStepAll(b *testing.B) {
	ctx := context.Background()
	variants := []struct {
		name string
		opts []Option
	}{
		{"sequential-uncached-plan", []Option{WithoutSolveCache(), WithWorkers(1)}},
		{"uncached-plan", []Option{WithoutSolveCache()}},
		{"default", nil}, // plan-direct since the plan-first re-tier
		{"uncached-simplex", []Option{WithoutSolveCache(), WithSolver(SolverSimplex)}},
		{"uncached-enumerate", []Option{WithoutSolveCache(), WithSolver(SolverEnumerate)}},
		{"cached", []Option{WithSolveCache(DefaultCacheSize, DefaultCacheResolution)}},
	}
	for _, n := range []int{1000, 10000} {
		budgets := correlatedBudgets(n)
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/%d", v.name, n), func(b *testing.B) {
				opts := append([]Option{WithBattery(20, 100)}, v.opts...)
				fleet, err := NewFleet(n, opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := fleet.StepAll(ctx, budgets); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchHarvest and benchConsumption close Fleet.Run's loop with fixed
// correlated budgets and exact execution, keeping the benchmark's
// allocations down to what the fleet layer itself does.
type benchHarvest struct{ budgets []float64 }

func (h benchHarvest) Budgets(step int, dst []float64) error {
	copy(dst, h.budgets)
	return nil
}

type benchConsumption struct{ cfg Config }

func (m benchConsumption) Consumed(step int, allocs []Allocation, dst []float64) error {
	for i := range dst {
		dst[i] = allocs[i].Energy(m.cfg)
	}
	return nil
}

// BenchmarkFleetRunClosedLoop measures one full closed-loop period
// (budgets → StepAll → consumption → ReportAll) per op at 1000 devices
// on the uncached plan path. Run reuses one allocation buffer across
// steps and every controller solves into its retained Active slice, so
// steady-state allocs/op stays O(1) per period — not O(devices).
func BenchmarkFleetRunClosedLoop(b *testing.B) {
	const n = 1000
	fleet, err := NewFleet(n, WithBattery(20, 100), WithoutSolveCache())
	if err != nil {
		b.Fatal(err)
	}
	src := benchHarvest{budgets: correlatedBudgets(n)}
	model := benchConsumption{cfg: DefaultConfig()}
	// One warm-up step grows every buffer to steady state.
	if err := fleet.Run(context.Background(), 1, src, model, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := fleet.Run(context.Background(), b.N, src, model, nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFeatureExtractionDP1 is Table 2's feature-generation stage for
// the richest design point (paper: 0.83 ms accel + 3.83 ms stretch on the
// MCU).
func BenchmarkFeatureExtractionDP1(b *testing.B) {
	w := synth.Generate(synth.NewUserProfile(0, 1), synth.Walk, rand.New(rand.NewSource(2)))
	cfg := har.PaperFive()[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Extract(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNInference is Table 2's classifier stage (paper: ~1 ms).
func BenchmarkNNInference(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net, err := nn.New([]int{30, 12, 7}, nn.ReLU, nn.Softmax, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFT16 is the stretch-sensor feature kernel (paper: 3.83 ms on
// the MCU, the dominant MCU stage).
func BenchmarkFFT16(b *testing.B) {
	w := synth.Generate(synth.NewUserProfile(0, 1), synth.Walk, rand.New(rand.NewSource(4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.RealFFTMagnitudes(w.Stretch, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShadowPrice measures the dual-value extraction extension.
func BenchmarkShadowPrice(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := core.ShadowPrice(cfg, 5.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookahead24h measures the joint 24-hour planning LP
// (149 variables, 73 constraints with the five paper design points).
func BenchmarkLookahead24h(b *testing.B) {
	cfg := DefaultConfig()
	tr, err := solar.September2015()
	if err != nil {
		b.Fatal(err)
	}
	day := tr.Hours[24:48]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Lookahead(cfg, 20, 200, day); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantizedInference compares with BenchmarkNNInference: the
// int8 path of the precision-knob extension.
func BenchmarkQuantizedInference(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net, err := nn.New([]int{30, 12, 7}, nn.ReLU, nn.Softmax, rng)
	if err != nil {
		b.Fatal(err)
	}
	q, err := nn.Quantize(net)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoertzel6 prices the partial-spectrum stretch feature.
func BenchmarkGoertzel6(b *testing.B) {
	w := synth.Generate(synth.NewUserProfile(0, 1), synth.Walk, rand.New(rand.NewSource(6)))
	bins := []int{0, 1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.GoertzelMagnitudes(w.Stretch, 16, bins); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBLETransferRaw prices the packet-level offloading transfer
// under 10% loss.
func BenchmarkBLETransferRaw(b *testing.B) {
	cfg := ble.Config{LossRate: 0.1, MaxRetries: 5}
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = int64(i)
		if _, err := ble.Transfer(c, 1280); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonthClosedLoop measures a full simulated September with the
// runtime controller (720 re-optimizations plus accounting).
func BenchmarkMonthClosedLoop(b *testing.B) {
	tr, err := solar.September2015()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl, err := NewController(DefaultConfig(), 20, 100)
		if err != nil {
			b.Fatal(err)
		}
		for _, h := range tr.Hours {
			alloc, err := ctl.Step(h)
			if err != nil {
				b.Fatal(err)
			}
			if err := ctl.Report(alloc.Energy(ctl.Config())); err != nil {
				b.Fatal(err)
			}
		}
	}
}
