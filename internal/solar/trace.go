package solar

import (
	"fmt"
	"math"
)

// Trace is a sequence of hourly harvested-energy values in joules.
type Trace struct {
	// Month and Year identify the simulated period (year only seeds the
	// weather; the irradiance geometry repeats annually).
	Month, Year int
	// Hours holds one entry per hour of the month, in joules.
	Hours []float64
	// Skies records the sky state of each hour (diagnostic).
	Skies []Sky
}

// MonthlyTrace synthesizes an hourly harvesting trace for a month at
// Golden, CO: clear-sky geometry x Markov weather x cell model. The same
// (month, year, cell) always produces the same trace — the year acts as
// the weather seed, standing in for the paper's measured 2015–2018 record.
func MonthlyTrace(month, year int, cell Cell) (*Trace, error) {
	return MonthlyTraceSeeded(month, year, cell, WeatherSeed(month, year))
}

// WeatherSeed is the canonical weather seed MonthlyTrace derives from a
// (month, year) pair. Exposed so callers composing regional variants
// (RegionWeatherSeed) stay anchored to the same base stream.
func WeatherSeed(month, year int) int64 {
	return int64(year)*100 + int64(month)
}

// RegionWeatherSeed derives a per-region weather seed: the canonical
// (month, year) seed salted with a hash of the region name. Distinct
// regions under the same calendar month get independent — but each
// individually deterministic — Markov sky sequences, the seam
// geographic fleet scenarios build on. The empty region name maps to
// the canonical seed, so "no region" and "one unnamed region" harvest
// identically.
func RegionWeatherSeed(month, year int, region string) int64 {
	base := WeatherSeed(month, year)
	if region == "" {
		return base
	}
	// FNV-1a over the region name, folded into the base seed.
	h := uint64(14695981039346656037)
	for i := 0; i < len(region); i++ {
		h ^= uint64(region[i])
		h *= 1099511628211
	}
	return base ^ int64(h)
}

// MonthlyTraceSeeded is MonthlyTrace with an explicit weather seed —
// the geographic seam: regions share the clear-sky geometry and cell
// model but run their own correlated cloud process.
func MonthlyTraceSeeded(month, year int, cell Cell, weatherSeed int64) (*Trace, error) {
	if err := validateMonth(month); err != nil {
		return nil, err
	}
	if err := cell.Validate(); err != nil {
		return nil, err
	}
	w := NewWeather(weatherSeed)
	tr := &Trace{Month: month, Year: year}
	for day := 1; day <= DaysInMonth(month); day++ {
		for hour := 0; hour < 24; hour++ {
			_, att := w.Step()
			// Mid-hour irradiance approximates the hourly mean.
			ghi := ClearSkyGHIAt(month, day, float64(hour)+0.5) * att
			tr.Hours = append(tr.Hours, cell.HourEnergy(ghi))
			tr.Skies = append(tr.Skies, w.State())
		}
	}
	return tr, nil
}

// September2015 regenerates the case-study month of Section 5.4 with the
// default cell.
func September2015() (*Trace, error) { return MonthlyTrace(9, 2015, DefaultCell()) }

// Total returns the month's harvested energy in joules.
func (t *Trace) Total() float64 {
	var s float64
	for _, v := range t.Hours {
		s += v
	}
	return s
}

// Peak returns the largest hourly harvest in the trace.
func (t *Trace) Peak() float64 {
	var m float64
	for _, v := range t.Hours {
		if v > m {
			m = v
		}
	}
	return m
}

// DaylightHours counts hours with harvest above the threshold (J).
func (t *Trace) DaylightHours(threshold float64) int {
	n := 0
	for _, v := range t.Hours {
		if v > threshold {
			n++
		}
	}
	return n
}

// Day returns the 24 hourly values of day d (1-based).
func (t *Trace) Day(d int) ([]float64, error) {
	lo := (d - 1) * 24
	if d < 1 || lo+24 > len(t.Hours) {
		return nil, fmt.Errorf("solar: day %d outside trace", d)
	}
	return t.Hours[lo : lo+24], nil
}

// Stats returns the mean and standard deviation of the positive (daylight)
// hourly harvests.
func (t *Trace) Stats() (mean, std float64) {
	var sum float64
	n := 0
	for _, v := range t.Hours {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	var ss float64
	for _, v := range t.Hours {
		if v > 0 {
			d := v - mean
			ss += d * d
		}
	}
	return mean, math.Sqrt(ss / float64(n))
}
