package reap

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestFleetStepAllMatchesSequential checks that the concurrent fleet path
// produces exactly the schedules a sequential per-device loop would, over
// 1000 devices spanning every operating region. Run under -race this is
// also the fleet's data-race test.
func TestFleetStepAllMatchesSequential(t *testing.T) {
	const n = 1000
	ctx := context.Background()

	fleet, err := NewFleet(n, WithBattery(20, 100))
	if err != nil {
		t.Fatal(err)
	}
	budgets := make([]float64, n)
	for i := range budgets {
		budgets[i] = 11.0 * float64(i) / n // dead region through saturation
	}

	allocs, err := fleet.StepAll(ctx, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != n {
		t.Fatalf("%d allocations for %d devices", len(allocs), n)
	}

	for i, alloc := range allocs {
		ref, err := New(WithBattery(20, 100))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Step(budgets[i])
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleet.Device(i).Config()
		if math.Abs(alloc.Objective(cfg)-want.Objective(cfg)) > 1e-12 {
			t.Fatalf("device %d: fleet %v, sequential %v", i, alloc, want)
		}
	}

	// Second period: the per-device battery state must have evolved
	// independently and ReportAll must close every loop.
	consumed := make([]float64, n)
	for i, alloc := range allocs {
		consumed[i] = alloc.Energy(fleet.Device(i).Config())
	}
	if err := fleet.ReportAll(consumed); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.StepAll(ctx, budgets); err != nil {
		t.Fatal(err)
	}
	if fleet.Device(0).Steps() != 2 {
		t.Fatalf("device 0 stepped %d times, want 2", fleet.Device(0).Steps())
	}
}

func TestFleetStepAllWorkerBounds(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		fleet, err := NewFleet(50, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		budgets := make([]float64, 50)
		for i := range budgets {
			budgets[i] = 5
		}
		allocs, err := fleet.StepAll(context.Background(), budgets)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, a := range allocs {
			if a.Total() == 0 {
				t.Fatalf("workers=%d: device %d unplanned", workers, i)
			}
		}
	}
}

func TestFleetStepAllBudgetMismatch(t *testing.T) {
	fleet, err := NewFleet(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.StepAll(context.Background(), []float64{1, 2}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("mismatched budgets: err %v, want ErrInvalidConfig", err)
	}
	if err := fleet.ReportAll([]float64{1}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("mismatched reports: err %v, want ErrInvalidConfig", err)
	}
}

func TestFleetStepAllPartialFailure(t *testing.T) {
	fleet, err := NewFleet(5)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []float64{5, math.NaN(), 5, -1, 5}
	allocs, err := fleet.StepAll(context.Background(), budgets)
	if err == nil {
		t.Fatal("bad budgets accepted")
	}
	if !errors.Is(err, ErrBudgetNegative) {
		t.Fatalf("err %v, want ErrBudgetNegative in the chain", err)
	}
	// The error names the failing devices; the healthy ones still planned.
	for _, d := range []string{"device 1", "device 3"} {
		if !strings.Contains(err.Error(), d) {
			t.Errorf("error %q does not name %s", err, d)
		}
	}
	for _, i := range []int{0, 2, 4} {
		if allocs[i].Total() == 0 {
			t.Errorf("healthy device %d unplanned", i)
		}
	}
}

func TestFleetStepAllCancelled(t *testing.T) {
	fleet, err := NewFleet(100, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	budgets := make([]float64, 100)
	if _, err := fleet.StepAll(ctx, budgets); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled StepAll: err %v, want context.Canceled", err)
	}
}

func TestSolveBatchMatchesDirectSolve(t *testing.T) {
	ctx := context.Background()
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	solver := LookupSolverMust(t, SolverSimplex)

	reqs := make([]Request, 200)
	for i := range reqs {
		reqs[i] = Request{Budget: 11.0 * float64(i) / float64(len(reqs))}
	}
	results := SolveBatch(ctx, reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		want, err := solver.Solve(ctx, cfg, reqs[i].Budget)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Allocation.Objective(cfg)-want.Objective(cfg)) > 1e-12 {
			t.Fatalf("request %d: batch %v, direct %v", i, res.Allocation, want)
		}
	}
}

func TestSolveBatchEmpty(t *testing.T) {
	if results := SolveBatch(context.Background(), nil); len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
}
