// Package ctxflow enforces the repo's context-plumbing invariant:
// cancellation flows from the caller through every solve path.
//
// Two diagnostics:
//
//  1. Library code must not mint root contexts. A call to
//     context.Background() or context.TODO() anywhere outside cmd/ and
//     examples/ severs the caller's cancellation; the three public
//     context-less convenience shims (Controller.Step, core.Solve,
//     core.SolveEnumerate) carry documented suppressions and every new
//     one must argue for its own.
//
//  2. A context parameter must be used. An exported function that
//     accepts a context.Context and then never reads it advertises
//     cancellation it does not deliver; either plumb it through or
//     name the parameter _ to declare the drop at the signature.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces context plumbing.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO in library code and flag exported " +
		"functions that accept a context.Context but drop it",
	Run: run,
}

// rootContextExempt reports whether the package may mint root contexts:
// binaries own their lifecycle, libraries inherit it.
func rootContextExempt(pkgPath string) bool {
	return strings.HasPrefix(pkgPath, "repro/cmd/") ||
		strings.HasPrefix(pkgPath, "repro/examples/")
}

func run(pass *analysis.Pass) error {
	exempt := rootContextExempt(pass.Path())
	for _, file := range pass.Files {
		if !exempt {
			checkRootContexts(pass, file)
		}
		checkDroppedParams(pass, file)
	}
	return nil
}

func checkRootContexts(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := analysis.CalleePkgFunc(pass.TypesInfo, call)
		if pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(),
				"library code must not call context.%s: accept a context.Context and pass it through", name)
		}
		return true
	})
}

func checkDroppedParams(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() {
			continue
		}
		for _, field := range fn.Type.Params.List {
			if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue // an explicit, visible drop
				}
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if !objUsed(pass.TypesInfo, obj, fn.Body) {
					pass.Reportf(name.Pos(),
						"%s takes a context.Context %q but never uses it: pass it through or rename it _",
						fn.Name.Name, name.Name)
				}
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// objUsed reports whether obj is referenced anywhere inside body.
func objUsed(info *types.Info, obj types.Object, body *ast.BlockStmt) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if ident, ok := n.(*ast.Ident); ok && info.Uses[ident] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
