package device

import (
	"testing"

	"repro/internal/core"
	"repro/internal/solar"
)

func TestCapacitorValidation(t *testing.T) {
	bad := []*Capacitor{
		{CapacityJ: 0, TurnOnJ: 1, TurnOffJ: 0.2},
		{CapacityJ: 5, TurnOnJ: 0.2, TurnOffJ: 0.5},
		{CapacityJ: 5, TurnOnJ: 6, TurnOffJ: 0.2},
		{CapacityJ: 5, TurnOnJ: 1, TurnOffJ: -0.1},
		{CapacityJ: 5, TurnOnJ: 1, TurnOffJ: 0.2, LeakWattsPerJoule: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultCapacitor().Validate(); err != nil {
		t.Fatalf("default capacitor invalid: %v", err)
	}
}

func TestCapacitorHysteresis(t *testing.T) {
	c := DefaultCapacitor()
	if c.On() {
		t.Fatal("capacitor starts on with no charge")
	}
	// Charge past turn-on.
	c.step(1.5, 0)
	if !c.On() {
		t.Fatalf("not on at %v J (turn-on %v)", c.Charge(), c.TurnOnJ)
	}
	// Drain to between the thresholds: must stay on (hysteresis).
	c.step(0, c.Charge()-0.5)
	if !c.On() {
		t.Fatal("turned off inside the hysteresis band")
	}
	// Drain below turn-off: off.
	c.step(0, c.Charge()-0.1)
	if c.On() {
		t.Fatalf("still on at %v J (turn-off %v)", c.Charge(), c.TurnOffJ)
	}
	// Small recharge below turn-on: stays off.
	c.step(0.5, 0)
	if c.On() {
		t.Fatal("turned on below the turn-on threshold")
	}
}

func TestCapacitorLeakageAndClamps(t *testing.T) {
	c := DefaultCapacitor()
	c.step(100, 0) // overcharge clamps at capacity
	if c.Charge() > c.CapacityJ {
		t.Fatalf("charge %v above capacity", c.Charge())
	}
	before := c.Charge()
	c.step(0, 0)
	if c.Charge() >= before {
		t.Fatal("no leakage over an idle hour")
	}
	c.step(0, 100) // over-drain clamps at zero
	if c.Charge() < 0 {
		t.Fatal("negative charge")
	}
}

func TestIntermittentDeviceOverSolarMonth(t *testing.T) {
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	d := &IntermittentDevice{Cfg: core.DefaultConfig(), Cap: DefaultCapacitor()}
	run, err := d.Run(tr.Hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Hours) != len(tr.Hours) {
		t.Fatal("length mismatch")
	}
	// The capacitor-only device must work during sunny hours and go dark
	// at night (5 J of storage cannot bridge 14 dark hours).
	gaps := ComputeGapStats(run)
	if gaps.ActiveHours < 100 {
		t.Fatalf("only %d active hours in September", gaps.ActiveHours)
	}
	if gaps.LongestGapHours < 10 {
		t.Fatalf("longest gap %d h; nights should black the device out", gaps.LongestGapHours)
	}
	// Compare with a battery-backed controller on the same trace: the
	// battery device must observe strictly more hours.
	ctl, err := core.NewController(core.DefaultConfig(), 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	cl := &ClosedLoop{Controller: ctl}
	outs, err := cl.Run(tr.Hours)
	if err != nil {
		t.Fatal(err)
	}
	batteryActive := 0
	for _, o := range outs {
		if o.ActiveTime > 0 {
			batteryActive++
		}
	}
	if batteryActive <= gaps.ActiveHours {
		t.Fatalf("battery device active %d h, capacitor device %d h",
			batteryActive, gaps.ActiveHours)
	}
}

func TestIntermittentValidation(t *testing.T) {
	d := &IntermittentDevice{Cfg: core.Config{}, Cap: DefaultCapacitor()}
	if _, err := d.Run([]float64{1}); err == nil {
		t.Fatal("invalid config accepted")
	}
	d = &IntermittentDevice{Cfg: core.DefaultConfig()}
	if _, err := d.Run([]float64{1}); err == nil {
		t.Fatal("nil capacitor accepted")
	}
	d = &IntermittentDevice{Cfg: core.DefaultConfig(), Cap: &Capacitor{}}
	if _, err := d.Run([]float64{1}); err == nil {
		t.Fatal("invalid capacitor accepted")
	}
}

func TestComputeGapStats(t *testing.T) {
	mk := func(active ...bool) *RunResult {
		r := &RunResult{}
		for _, a := range active {
			h := HourRecord{}
			if a {
				h.ActiveTime = 100
			}
			r.Hours = append(r.Hours, h)
		}
		return r
	}
	s := ComputeGapStats(mk(true, false, false, true, false, true))
	if s.ActiveHours != 3 || s.Gaps != 2 || s.LongestGapHours != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.MeanGapHours != 1.5 {
		t.Fatalf("mean gap %v", s.MeanGapHours)
	}
	// All active, no gaps.
	s = ComputeGapStats(mk(true, true))
	if s.Gaps != 0 || s.LongestGapHours != 0 || s.MeanGapHours != 0 {
		t.Fatalf("stats %+v", s)
	}
	// Trailing gap counted.
	s = ComputeGapStats(mk(true, false, false, false))
	if s.Gaps != 1 || s.LongestGapHours != 3 {
		t.Fatalf("stats %+v", s)
	}
	// Empty run.
	s = ComputeGapStats(&RunResult{})
	if s.ActiveHours != 0 || s.Gaps != 0 {
		t.Fatalf("stats %+v", s)
	}
}
