package wire

import (
	"context"
	"errors"

	reap "repro"
)

// This file is the bridge between the wire schema and the solver API:
// the daemon and any Go client share these conversions, so a request
// built from wire structs and a reap.SolveBatch call see byte-identical
// semantics.

// CodeForError maps the public sentinel error taxonomy onto stable wire
// codes. Order matters where sentinels wrap each other: the most
// specific classification wins.
func CodeForError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, reap.ErrBudgetNegative):
		return CodeBudgetNegative
	case errors.Is(err, reap.ErrUnknownSolver):
		return CodeUnknownSolver
	case errors.Is(err, reap.ErrInfeasible):
		return CodeInfeasible
	case errors.Is(err, reap.ErrSolverFailure):
		return CodeSolverFailure
	case errors.Is(err, reap.ErrInvalidConfig):
		return CodeInvalidConfig
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return CodeDraining
	default:
		return CodeInternal
	}
}

// ToReap resolves the wire config against the paper defaults: a nil
// receiver or zero field selects the default, an explicit value wins.
// Validation stays where it lives — reap.Config.Validate, run by every
// construction and solve path — so the wire layer cannot drift from the
// solver's rules.
func (c *Config) ToReap() reap.Config {
	cfg := reap.Config{
		Period: reap.DefaultPeriod,
		POff:   reap.DefaultPOff,
		Alpha:  1,
		DPs:    reap.PaperDesignPoints(),
	}
	if c == nil {
		return cfg
	}
	if c.PeriodS > 0 {
		cfg.Period = c.PeriodS
	}
	if c.POffW != nil {
		cfg.POff = *c.POffW
	}
	if c.Alpha != nil {
		cfg.Alpha = *c.Alpha
	}
	if len(c.DesignPoints) > 0 {
		cfg.DPs = make([]reap.DesignPoint, len(c.DesignPoints))
		for i, dp := range c.DesignPoints {
			cfg.DPs[i] = reap.DesignPoint{Name: dp.Name, Accuracy: dp.Accuracy, Power: dp.PowerW}
		}
	}
	return cfg
}

// FromReapConfig renders a solver config on the wire, for clients that
// assemble requests from an existing reap.Config.
func FromReapConfig(cfg reap.Config) *Config {
	out := &Config{PeriodS: cfg.Period, POffW: &cfg.POff, Alpha: &cfg.Alpha}
	out.DesignPoints = make([]DesignPoint, len(cfg.DPs))
	for i, dp := range cfg.DPs {
		out.DesignPoints[i] = DesignPoint{Name: dp.Name, Accuracy: dp.Accuracy, PowerW: dp.Power}
	}
	return out
}

// ToRequest converts one batch item into the reap.SolveBatch request
// shape.
func (it SolveItem) ToRequest() reap.Request {
	return reap.Request{Config: it.Config.ToReap(), Budget: it.BudgetJ, Solver: it.Solver}
}

// FromAllocation renders a solved schedule on the wire. The Active
// slice is copied: wire values outlive the solver's reused buffers.
func FromAllocation(a reap.Allocation) Allocation {
	return Allocation{
		ActiveS: append([]float64(nil), a.Active...),
		OffS:    a.Off,
		DeadS:   a.Dead,
	}
}

// ToReap converts a wire allocation back into the solver's type —
// clients replaying schedules into local accounting use this.
func (a Allocation) ToReap() reap.Allocation {
	return reap.Allocation{
		Active: append([]float64(nil), a.ActiveS...),
		Off:    a.OffS,
		Dead:   a.DeadS,
	}
}

// NewSolveResponse assembles the response for a solved request,
// deriving the reported energy and expected accuracy under the solved
// configuration.
func NewSolveResponse(cfg reap.Config, a reap.Allocation) *SolveResponse {
	return &SolveResponse{
		V:                Version,
		Allocation:       FromAllocation(a),
		EnergyJ:          a.Energy(cfg),
		ExpectedAccuracy: a.ExpectedAccuracy(cfg),
	}
}

// FromCacheStats mirrors solve-cache counters on the wire.
func FromCacheStats(s reap.CacheStats) *CacheStats {
	return &CacheStats{
		Hits:      s.Hits,
		Misses:    s.Misses,
		Coalesced: s.Coalesced,
		Evictions: s.Evictions,
		Entries:   s.Entries,
		Capacity:  s.Capacity,
	}
}
