package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsKnownLP(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6.
	// Optimum at (4, 0): the first constraint is binding with dual 3
	// (relaxing x+y <= 5 lets x=5, z=15: +3), the second is slack (dual 0).
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Op: LE, RHS: 6},
		},
	}
	sol, duals, err := SolveWithDuals(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if math.Abs(duals[0]-3) > 1e-7 {
		t.Errorf("dual[0] = %v, want 3", duals[0])
	}
	if math.Abs(duals[1]) > 1e-7 {
		t.Errorf("dual[1] = %v, want 0 (slack constraint)", duals[1])
	}
}

func TestDualsEqualityRowIsNaN(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 10},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 6},
		},
	}
	sol, duals, err := SolveWithDuals(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if !math.IsNaN(duals[0]) {
		t.Errorf("equality dual = %v, want NaN", duals[0])
	}
	// y <= 6 binds: each extra unit of y adds 2 to x+2y while removing 1
	// from x (equality), net +1.
	if math.Abs(duals[1]-1) > 1e-7 {
		t.Errorf("dual[1] = %v, want 1", duals[1])
	}
}

func TestDualsMatchFiniteDifference(t *testing.T) {
	// Property: for random non-degenerate bounded LPs, the dual of each
	// inequality equals the numerical sensitivity of z* to its RHS.
	rng := rand.New(rand.NewSource(21))
	trials := 0
	for attempt := 0; attempt < 400 && trials < 150; attempt++ {
		n := 2 + rng.Intn(3)
		p := randomBoundedProblem(rng, n)
		sol, duals, err := SolveWithDuals(p)
		if err != nil || sol.Status != Optimal {
			continue
		}
		const h = 1e-4
		degenerate := false
		for i := range p.Constraints {
			up := perturbRHS(p, i, +h)
			dn := perturbRHS(p, i, -h)
			su, err1 := Solve(up)
			sd, err2 := Solve(dn)
			if err1 != nil || err2 != nil || su.Status != Optimal || sd.Status != Optimal {
				degenerate = true
				break
			}
			numeric := (su.Objective - sd.Objective) / (2 * h)
			if math.Abs(numeric-duals[i]) > 1e-3*(1+math.Abs(numeric)) {
				// Degenerate vertices have one-sided sensitivities; skip
				// instances where the two one-sided slopes differ.
				left := (sol.Objective - sd.Objective) / h
				right := (su.Objective - sol.Objective) / h
				if math.Abs(left-right) > 1e-3*(1+math.Abs(numeric)) {
					degenerate = true
					break
				}
				t.Fatalf("constraint %d: dual %v vs numeric %v\n%s", i, duals[i], numeric, p)
			}
		}
		if !degenerate {
			trials++
		}
	}
	if trials < 50 {
		t.Fatalf("only %d clean trials", trials)
	}
}

func perturbRHS(p *Problem, i int, delta float64) *Problem {
	out := &Problem{Objective: p.Objective}
	for j, c := range p.Constraints {
		nc := Constraint{Coeffs: c.Coeffs, Op: c.Op, RHS: c.RHS}
		if j == i {
			nc.RHS += delta
		}
		out.Constraints = append(out.Constraints, nc)
	}
	return out
}

func TestDualsREAPEnergyShadowPrice(t *testing.T) {
	// For the REAP LP in Region 1 (budget binding, DP5 marginal), the
	// energy dual must equal a5/(P5 - Poff) scaled by 1/TP: the accuracy
	// gained per extra joule.
	const tp = 3600.0
	acc := []float64{0.94, 0.93, 0.92, 0.90, 0.76}
	pw := []float64{2.76e-3, 2.30e-3, 1.82e-3, 1.64e-3, 1.20e-3}
	const pOff = 50e-6
	obj := make([]float64, 6)
	timeRow := make([]float64, 6)
	energyRow := make([]float64, 6)
	for i := 0; i < 5; i++ {
		obj[i] = acc[i] / tp
		timeRow[i] = 1
		energyRow[i] = pw[i]
	}
	timeRow[5] = 1
	energyRow[5] = pOff
	p := &Problem{
		Objective: obj,
		Constraints: []Constraint{
			{Coeffs: timeRow, Op: EQ, RHS: tp},
			{Coeffs: energyRow, Op: LE, RHS: 2.0},
		},
	}
	sol, duals, err := SolveWithDuals(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	want := acc[4] / tp / (pw[4] - pOff)
	if math.Abs(duals[1]-want) > 1e-6*want {
		t.Fatalf("energy shadow price %v, want %v", duals[1], want)
	}
}

func TestSolveWithDualsValidation(t *testing.T) {
	if _, _, err := SolveWithDuals(&Problem{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
	// Infeasible: no duals.
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 5},
			{Coeffs: []float64{1}, Op: LE, RHS: 3},
		},
	}
	sol, duals, err := SolveWithDuals(p)
	if err != nil || sol.Status != Infeasible || duals != nil {
		t.Fatalf("err=%v status=%v duals=%v", err, sol.Status, duals)
	}
}
