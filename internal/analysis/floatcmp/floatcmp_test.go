package floatcmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "testdata/floats", "repro/sim/fixture")
}

// TestFloatcmpAllowsFpx loads the same kind of code under the fpx
// import path: the allowlisted helper package reports nothing.
func TestFloatcmpAllowsFpx(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "testdata/fpx", "repro/internal/fpx")
}
