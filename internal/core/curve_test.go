package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestObjectiveCurveMatchesLPSweep(t *testing.T) {
	// The closed-form curve must agree with the simplex at arbitrary
	// budgets, across α values.
	for _, alpha := range []float64{0, 0.5, 1, 2, 8} {
		c := DefaultConfig()
		c.Alpha = alpha
		knots, err := ObjectiveCurve(c)
		if err != nil {
			t.Fatal(err)
		}
		if !CurveIsConcave(knots) {
			t.Fatalf("alpha %v: curve not concave: %v", alpha, knots)
		}
		rng := rand.New(rand.NewSource(int64(10 * alpha)))
		for trial := 0; trial < 100; trial++ {
			budget := rng.Float64() * 12
			fromCurve, err := EvalCurve(knots, budget)
			if err != nil {
				t.Fatal(err)
			}
			alloc, err := Solve(c, budget)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fromCurve-alloc.Objective(c)) > 1e-6 {
				t.Fatalf("alpha %v budget %v: curve %v vs LP %v",
					alpha, budget, fromCurve, alloc.Objective(c))
			}
		}
	}
}

func TestObjectiveCurveQuickRandomConfigs(t *testing.T) {
	f := func(seed int64) bool {
		c, _ := randomConfig(seed)
		knots, err := ObjectiveCurve(c)
		if err != nil {
			return false
		}
		if !CurveIsConcave(knots) {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for trial := 0; trial < 10; trial++ {
			budget := rng.Float64() * c.MaxUsefulBudget() * 1.2
			fromCurve, err := EvalCurve(knots, budget)
			if err != nil {
				return false
			}
			alloc, err := Solve(c, budget)
			if err != nil {
				return false
			}
			if math.Abs(fromCurve-alloc.Objective(c)) > 1e-6*(1+fromCurve) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalCurveEdges(t *testing.T) {
	if _, err := EvalCurve(nil, 1); err == nil {
		t.Fatal("empty curve accepted")
	}
	knots := []Knot{{Budget: 1, J: 0}, {Budget: 2, J: 1}}
	if v, _ := EvalCurve(knots, 0.5); v != 0 {
		t.Fatalf("below-range value %v", v)
	}
	if v, _ := EvalCurve(knots, 5); v != 1 {
		t.Fatalf("above-range value %v", v)
	}
	if v, _ := EvalCurve(knots, 1.5); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("midpoint %v", v)
	}
	if _, err := EvalCurve(knots, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := ObjectiveCurve(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCurveIsConcaveDetectsViolations(t *testing.T) {
	good := []Knot{{0, 0}, {1, 2}, {2, 3}, {3, 3.5}}
	if !CurveIsConcave(good) {
		t.Fatal("concave curve rejected")
	}
	bad := []Knot{{0, 0}, {1, 1}, {2, 3}} // slope increases
	if CurveIsConcave(bad) {
		t.Fatal("convex kink accepted")
	}
	dup := []Knot{{1, 0}, {1, 1}}
	if CurveIsConcave(dup) {
		t.Fatal("zero-width segment accepted")
	}
}
