// Package analysistest runs one analyzer over a fixture package and
// diffs its diagnostics against // want comments — the in-repo
// equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under a testdata/ directory (invisible to the
// go tool, so fixtures may violate every invariant on purpose) and are
// loaded with the import path the test claims for them — analyzers
// scoped by package path (errtaxonomy, ctxflow) see whatever boundary
// the fixture wants to simulate.
//
// Expectations are trailing comments on the offending line:
//
//	return errors.New("boom") // want `wraps no sentinel`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match exactly one diagnostic reported on that
// line; diagnostics with no matching expectation, and expectations with
// no matching diagnostic, both fail the test.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads fixtureDir as a package named importPath, applies the
// analyzer, and asserts its diagnostics match the fixture's // want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDir, importPath string) {
	t.Helper()
	pkg, err := load.Dir(".", fixtureDir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixtureDir, err)
	}
	wants := collectWants(t, pkg)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pattern := range parsePatterns(t, pos, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pattern, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits `"re1" "re2"` or backquoted equivalents.
func parsePatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var patterns []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: want patterns must be quoted strings, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		raw := s[:end+2]
		pattern, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
		}
		patterns = append(patterns, pattern)
		s = strings.TrimSpace(s[end+2:])
	}
	return patterns
}
