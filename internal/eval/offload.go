package eval

import (
	"repro/internal/energy"
	"repro/internal/har"
)

// OffloadResult quantifies the Section 4.2 offloading analysis: streaming
// raw sensor data to a host versus classifying on device.
type OffloadResult struct {
	// RawStreamMJ is the per-activity cost of sending the raw window.
	RawStreamMJ float64
	// LabelTxMJ is the per-activity cost of sending just the label.
	LabelTxMJ float64
	// OffloadTotalMJ is the full offloading profile (sensing + raw TX).
	OffloadTotalMJ float64
	// DP1TotalMJ is the on-device DP1 cost for comparison.
	DP1TotalMJ float64
}

// Offload prices both alternatives.
func Offload() (*OffloadResult, error) {
	off, err := energy.Activity(energy.OffloadProfile())
	if err != nil {
		return nil, err
	}
	dp1, err := energy.Activity(har.PaperFive()[0].EnergyProfile())
	if err != nil {
		return nil, err
	}
	return &OffloadResult{
		RawStreamMJ:    1e3 * energy.BLETransmission(energy.RawWindowBytes),
		LabelTxMJ:      1e3 * energy.BLETransmission(energy.LabelBytes),
		OffloadTotalMJ: 1e3 * off.Total(),
		DP1TotalMJ:     1e3 * dp1.Total(),
	}, nil
}

// Render prints the comparison (paper: 5.5 mJ raw vs 0.38 mJ label).
func (r *OffloadResult) Render() string {
	t := &table{header: []string{"alternative", "energy/activity (mJ)", "paper"}}
	t.add("raw BLE stream (radio only)", f2(r.RawStreamMJ), "5.5")
	t.add("recognized-label BLE tx", f2(r.LabelTxMJ), "0.38")
	t.add("offloading total (sense+stream)", f2(r.OffloadTotalMJ), "-")
	t.add("on-device DP1 total", f2(r.DP1TotalMJ), "4.48")
	return "Offloading analysis (Section 4.2): local classification wins\n" + t.String()
}
