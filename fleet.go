package reap

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fpx"
)

// Fleet owns one Controller session per device and steps them all
// concurrently — the coordination layer for serving many harvesting
// devices from one process. Every device shares the same configuration,
// solver backend and initial battery state; per-device divergence happens
// through each device's own budgets, accounting carry and battery.
//
//	fleet, _ := reap.NewFleet(1000, reap.WithBattery(20, 100))
//	allocs, err := fleet.StepAll(ctx, budgets) // budgets[i] for device i
//
// By default every device solves directly on the compiled parametric
// plan: devices sharing a configuration share one memoized core.Plan,
// so a solve is a lock-free binary search with no allocation. A solve
// cache (WithSolveCache) is an explicit opt-in for expensive backends
// — simplex or remote solvers — where budgets quantize down to share
// one LP solution across near-identical devices and concurrent misses
// coalesce onto a single solve.
type Fleet struct {
	ctls    []*Controller
	workers int
	cache   *SolveCache

	// active is the membership mask for mid-run churn (SetActive): nil
	// means every device participates, the common case, so fleets that
	// never churn pay nothing for the feature. An inactive device is
	// skipped by StepAll (zero Allocation, no battery or accounting
	// mutation) and by ReportAll — its controller state freezes until it
	// rejoins.
	active []bool

	// errs and started are stepAllInto's per-tick scratch, hoisted here so
	// a steady-state fleet tick allocates nothing. StepAll/Run are
	// documented as not concurrency-safe with themselves, so one scratch
	// set per fleet suffices.
	errs    []error
	started []bool
}

// NewFleet creates n controller sessions from the same options New
// accepts, plus WithWorkers to bound StepAll's concurrency and
// WithDeviceOverride to vary settings per device. The default solve
// path is the fingerprint-memoized compiled plan — the fastest path;
// WithSolveCache opts into budget-quantized caching for expensive
// backends.
func NewFleet(n int, opts ...Option) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: fleet size %d must be positive", ErrInvalidConfig, n)
	}
	s := defaultSettings()
	if err := s.apply(opts); err != nil {
		return nil, err
	}
	solver, tag, err := s.resolveSolver()
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		ctls:    make([]*Controller, n),
		workers: s.workers,
		cache:   s.solveCache,
		errs:    make([]error, n),
		started: make([]bool, n),
	}
	for i := range f.ctls {
		ds, dSolver, dTag := s, solver, tag
		if s.deviceOverride != nil {
			// Copy the fleet-wide settings and refine them with the
			// device's own options. The copy shares the design-point slice
			// with the base, which is safe: every option that changes
			// design points replaces the slice rather than mutating it.
			dv := *s
			if err := dv.apply(s.deviceOverride(i)); err != nil {
				return nil, fmt.Errorf("device %d: %w", i, err)
			}
			if dSolver, dTag, err = dv.resolveSolver(); err != nil {
				return nil, fmt.Errorf("device %d: %w", i, err)
			}
			ds = &dv
		}
		ctl, err := core.NewController(ds.cfg, ds.batteryJ, ds.capacityJ)
		if err == nil {
			// Devices sharing a configuration share one compiled plan on
			// the uncached plan path (wireResolved memoizes per
			// fingerprint); a compiled core.Plan is immutable and safe
			// for the whole fleet to solve on concurrently.
			err = ds.wireResolved(ctl, dSolver, dTag)
		}
		if err != nil {
			if s.deviceOverride != nil {
				err = fmt.Errorf("device %d: %w", i, err)
			}
			return nil, err
		}
		f.ctls[i] = ctl
	}
	return f, nil
}

// Size returns the number of devices in the fleet.
func (f *Fleet) Size() int { return len(f.ctls) }

// Device returns device i's controller, for per-device inspection and
// tuning (battery level, SetAlpha). Out-of-range indices return an error
// wrapping ErrInvalidConfig. The controller is not safe to step
// concurrently with StepAll.
func (f *Fleet) Device(i int) (*Controller, error) {
	if i < 0 || i >= len(f.ctls) {
		return nil, fmt.Errorf("%w: device %d out of range [0, %d)", ErrInvalidConfig, i, len(f.ctls))
	}
	return f.ctls[i], nil
}

// SetActive changes device i's fleet membership mid-run — the churn
// seam for devices joining and leaving a live fleet. An inactive device
// is not stepped (StepAll returns the zero Allocation for it) and not
// reported to (ReportAll ignores its entry), so its battery and
// accounting state freeze exactly where they were; reactivating resumes
// from that state, the way a provisioned device coming back online
// resumes from its last-known charge. Out-of-range indices return an
// error wrapping ErrInvalidConfig. Like StepAll, SetActive is not safe
// to call concurrently with a step in flight.
func (f *Fleet) SetActive(i int, active bool) error {
	if i < 0 || i >= len(f.ctls) {
		return fmt.Errorf("%w: device %d out of range [0, %d)", ErrInvalidConfig, i, len(f.ctls))
	}
	if f.active == nil {
		if active {
			return nil // all devices are active by default
		}
		f.active = make([]bool, len(f.ctls))
		for j := range f.active {
			f.active[j] = true
		}
	}
	f.active[i] = active
	return nil
}

// Active reports whether device i currently participates in fleet
// steps; devices outside the fleet are never active.
func (f *Fleet) Active(i int) bool {
	if i < 0 || i >= len(f.ctls) {
		return false
	}
	return f.active == nil || f.active[i]
}

// ActiveCount returns the number of participating devices.
func (f *Fleet) ActiveCount() int {
	if f.active == nil {
		return len(f.ctls)
	}
	n := 0
	for _, a := range f.active {
		if a {
			n++
		}
	}
	return n
}

// CacheStats snapshots the fleet's shared solve cache; ok is false when
// the fleet solves without one (the default) — callers must branch on
// ok to tell "no cache configured" from "cache configured but cold",
// whose stats are both zero.
func (f *Fleet) CacheStats() (stats CacheStats, ok bool) {
	if f.cache == nil {
		return CacheStats{}, false
	}
	return f.cache.Stats(), true
}

// StepAll plans the next activity period for every device: budgets[i] is
// the energy (J) device i's harvesting subsystem expects to collect. The
// solves run on a bounded worker pool (WithWorkers, default GOMAXPROCS).
//
// The returned slice always has one entry per device. Per-device failures
// do not stop the rest of the fleet: failed entries hold the zero
// Allocation and the joined error names each failing device. Cancelling
// the context abandons devices not yet started; each abandoned device
// gets its own "not stepped" entry in the joined error, so callers can
// tell which devices already committed battery/accounting state (stepped
// devices must not be retried — Step is not idempotent).
func (f *Fleet) StepAll(ctx context.Context, budgets []float64) ([]Allocation, error) {
	if len(budgets) != len(f.ctls) {
		return nil, fmt.Errorf("%w: %d budgets for %d devices", ErrInvalidConfig, len(budgets), len(f.ctls))
	}
	allocs := make([]Allocation, len(f.ctls))
	return allocs, f.stepAllInto(ctx, budgets, allocs)
}

// stepAllInto is StepAll writing into a caller-owned allocation slice:
// each device steps with StepInto, so on the plan and cache-hit paths a
// reused allocs slice (Fleet.Run's loop) makes the whole fleet tick
// allocation-free per device in steady state — the single-worker case
// even avoids the worker-pool closure. Entries of failed or unstarted
// devices are reset to the zero Allocation.
//
//reap:hotpath
func (f *Fleet) stepAllInto(ctx context.Context, budgets []float64, allocs []Allocation) error {
	errs, started := f.errs, f.started
	for i := range errs {
		errs[i], started[i] = nil, false
	}
	if f.workerCount(len(f.ctls)) == 1 {
		for i := range f.ctls {
			if ctx.Err() != nil {
				break
			}
			started[i] = true
			if f.active != nil && !f.active[i] {
				allocs[i] = Allocation{}
				continue
			}
			if err := f.ctls[i].StepInto(ctx, budgets[i], &allocs[i]); err != nil {
				errs[i] = fmt.Errorf("device %d: %w", i, err) //lint:reapvet hotalloc -- cold error path
			}
		}
	} else {
		f.run(ctx, len(f.ctls), func(i int) { //lint:reapvet hotalloc -- one closure per multi-worker tick, not per device
			started[i] = true
			if f.active != nil && !f.active[i] {
				allocs[i] = Allocation{}
				return
			}
			if err := f.ctls[i].StepInto(ctx, budgets[i], &allocs[i]); err != nil {
				errs[i] = fmt.Errorf("device %d: %w", i, err) //lint:reapvet hotalloc -- cold error path
			}
		})
	}
	if err := ctx.Err(); err != nil {
		for i := range errs {
			if !started[i] {
				allocs[i] = Allocation{}
				errs[i] = fmt.Errorf("device %d: not stepped: %w", i, err) //lint:reapvet hotalloc -- cold cancellation path
			}
		}
	}
	return errors.Join(errs...)
}

// ReportAll closes the feedback loop for every device: consumed[i] is the
// energy device i actually spent during the period StepAll last planned.
// Inactive devices (SetActive) are skipped — they executed nothing, so
// their entry is ignored rather than booked as a zero-consumption period.
func (f *Fleet) ReportAll(consumed []float64) error {
	if len(consumed) != len(f.ctls) {
		return fmt.Errorf("%w: %d reports for %d devices", ErrInvalidConfig, len(consumed), len(f.ctls))
	}
	errs := make([]error, len(f.ctls))
	for i, ctl := range f.ctls {
		if f.active != nil && !f.active[i] {
			continue
		}
		if err := ctl.Report(consumed[i]); err != nil {
			errs[i] = fmt.Errorf("device %d: %w", i, err)
		}
	}
	return errors.Join(errs...)
}

// HarvestSource feeds a fleet's closed loop: for each step it fills
// dst[i] with the energy budget (J) device i's harvesting subsystem
// makes available for the period. Implementations range from replaying
// a recorded trace to the sim package's solar-plus-forecast composition.
type HarvestSource interface {
	Budgets(step int, dst []float64) error
}

// ConsumptionModel closes a fleet's feedback loop: after the fleet plans
// step, it fills dst[i] with the energy (J) device i actually consumed
// executing allocs[i] — planned energy plus whatever execution noise,
// activity dependence or faults the model simulates.
type ConsumptionModel interface {
	Consumed(step int, allocs []Allocation, dst []float64) error
}

// StepObserver sees each completed loop iteration: the step index, the
// budgets handed to the fleet, the allocations it planned, and the
// consumption reported back. The slices are reused across steps — copy
// what must outlive the call.
type StepObserver func(step int, budgets []float64, allocs []Allocation, consumed []float64) error

// Run drives the fleet closed-loop for steps periods: each iteration
// asks src for budgets, plans with StepAll, asks model for the realized
// consumption, and reports it back with ReportAll. observe (optional)
// sees every completed iteration. Run stops at the first error — a
// source or model failure, a failed device step, or context
// cancellation — identifying the step it happened on.
//
// Run is the seam the sim package builds on; any caller with a harvest
// trace and a consumption model gets the same multi-period loop the
// paper evaluates, without hand-rolling the bookkeeping.
func (f *Fleet) Run(ctx context.Context, steps int, src HarvestSource, model ConsumptionModel, observe StepObserver) error {
	if steps < 0 {
		return fmt.Errorf("%w: %d steps must be non-negative", ErrInvalidConfig, steps)
	}
	if src == nil || model == nil {
		return fmt.Errorf("%w: Run needs a harvest source and a consumption model", ErrInvalidConfig)
	}
	budgets := make([]float64, len(f.ctls))
	consumed := make([]float64, len(f.ctls))
	// One allocation buffer for the whole run: stepAllInto refills it in
	// place each period, and controllers on the plan fast path solve
	// straight into the retained Active slices — a steady-state device-
	// step allocates nothing. The observer contract already requires
	// copying anything that must outlive the call.
	allocs := make([]Allocation, len(f.ctls))
	for step := 0; step < steps; step++ {
		if err := src.Budgets(step, budgets); err != nil {
			return fmt.Errorf("step %d: harvest source: %w", step, err)
		}
		if err := f.stepAllInto(ctx, budgets, allocs); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		if err := model.Consumed(step, allocs, consumed); err != nil {
			return fmt.Errorf("step %d: consumption model: %w", step, err)
		}
		if err := f.ReportAll(consumed); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		if observe != nil {
			if err := observe(step, budgets, allocs, consumed); err != nil {
				return fmt.Errorf("step %d: observer: %w", step, err)
			}
		}
	}
	return nil
}

// workerCount resolves the pool width for n work items: the WithWorkers
// setting, defaulting to GOMAXPROCS, never wider than the work.
func (f *Fleet) workerCount(n int) int {
	workers := f.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// run executes work(0..n-1) on the fleet's worker pool, stopping early
// when ctx is cancelled.
func (f *Fleet) run(ctx context.Context, n int, work func(i int)) {
	poolRun(ctx, f.workerCount(n), n, work)
}

// poolChunk is how many indices a worker claims at a time. One solve
// runs in about a microsecond, so per-index handoff through a channel
// would cost more than the work; chunked claims off an atomic counter
// amortize the coordination to noise while keeping the pool balanced.
const poolChunk = 64

// poolRun fans indices 0..n-1 out to the given number of workers,
// stopping early (at chunk granularity) when ctx is cancelled.
func poolRun(ctx context.Context, workers, n int, work func(i int)) {
	if workers == 1 {
		for i := 0; i < n && ctx.Err() == nil; i++ {
			work(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				start := int(next.Add(poolChunk)) - poolChunk
				if start >= n {
					return
				}
				end := start + poolChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					work(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Request is one independent solve in a SolveBatch call.
type Request struct {
	// Config for the solve; the zero value selects the paper defaults
	// (DefaultConfig).
	Config Config
	// Budget is the energy available for the period, in joules.
	Budget float64
	// Solver names the registry backend to use; empty selects the
	// default backend (DefaultSolver, the compiled parametric plan).
	Solver string
}

// Result pairs a Request's allocation with its error; exactly one of the
// two is meaningful.
type Result struct {
	Allocation Allocation
	Err        error
}

// SolveBatch solves many independent allocation problems on a worker pool
// of GOMAXPROCS goroutines — the stateless counterpart of Fleet.StepAll
// for embarrassingly parallel workloads (budget sweeps, what-if grids,
// serving stateless solve RPCs). results[i] answers reqs[i]; cancelling
// the context marks every unstarted request with ctx.Err().
//
// Batches solve uncached by default, like every constructor since the
// plan-first re-tier (a sweep's budgets are all distinct, and exactness
// matters for grids). Opting in with WithSolveCache or
// WithSharedSolveCache routes every request through the cache — sharing
// entries across batches when the cache is shared.
// Option errors fail the whole batch: every result carries the error.
// Requests on the default plan backend compile each distinct
// configuration fingerprint once (the backend memoizes compiled plans),
// so a sweep of N budgets over one Config pays one compilation and N
// binary-search solves.
func SolveBatch(ctx context.Context, reqs []Request, opts ...Option) []Result {
	results := make([]Result, len(reqs))
	started := make([]bool, len(reqs))

	s := defaultSettings()
	if err := s.apply(opts); err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results
	}

	// Resolve every request's backend up front, memoized per distinct
	// name: the per-request work is a microsecond-scale solve, so
	// registry locking and map lookups must stay out of the hot loop.
	// resolved/resolveErr are read-only once the pool starts.
	defaultCfg := core.DefaultConfig()
	byName := map[string]Solver{}
	errByName := map[string]error{}
	resolved := make([]Solver, len(reqs))
	resolveErr := make([]error, len(reqs))
	for i, req := range reqs {
		name := req.Solver
		if name == "" {
			name = DefaultSolver
		}
		if _, seen := byName[name]; !seen && errByName[name] == nil {
			if solver, err := LookupSolver(name); err != nil {
				errByName[name] = err
			} else {
				if s.solveCache != nil {
					// Tag by registry name: entries stay per-backend but
					// shared across batches hitting the same cache.
					solver = s.solveCache.wrapTagged(registryTag(name), solver)
				}
				byName[name] = solver
			}
		}
		resolved[i], resolveErr[i] = byName[name], errByName[name]
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	poolRun(ctx, workers, len(reqs), func(i int) {
		started[i] = true
		if err := resolveErr[i]; err != nil {
			results[i] = Result{Err: err}
			return
		}
		cfg := reqs[i].Config
		if isZeroConfig(cfg) {
			cfg = defaultCfg
		}
		alloc, err := resolved[i].Solve(ctx, cfg, reqs[i].Budget)
		results[i] = Result{Allocation: alloc, Err: err}
	})
	// Requests the pool never started (context cancelled mid-batch) carry
	// the context error so callers can tell them from successes.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !started[i] {
				results[i].Err = err
			}
		}
	}
	return results
}

func isZeroConfig(c Config) bool {
	return fpx.Zero(c.Period) && fpx.Zero(c.POff) && fpx.Zero(c.Alpha) && c.DPs == nil
}
