package sim

import (
	"sort"

	"repro"
)

// The scenario library: named, seeded closed-loop situations covering
// the regimes the fleet layer must survive. Each constructor returns a
// fresh value, so callers can tweak fields (more devices, a different
// seed) without affecting the library.

// ClearMonth is a sunny June: generous harvest, moderate batteries, the
// energy-surplus regime where overflow losses dominate the neutrality
// residual and devices saturate their best design points at midday.
func ClearMonth() Scenario {
	return Scenario{
		Name:         "clear-month",
		Description:  "sunny June surplus: saturation, battery overflow",
		Devices:      4,
		Days:         3,
		Seed:         1,
		Month:        6,
		Year:         2016,
		HarvestScale: 1.8,
		DeviceJitter: 0.05,
		BatteryJ:     25,
		CapacityJ:    120,
		Noise:        0.03,
	}
}

// CloudyBursts is a volatile December planned on EWMA forecasts: weak,
// bursty harvest, prediction error absorbed by the accounting loop, the
// enumerate backend as the solver.
func CloudyBursts() Scenario {
	return Scenario{
		Name:         "cloudy-bursts",
		Description:  "volatile December on EWMA forecast budgets",
		Devices:      4,
		Days:         3,
		Seed:         2,
		Month:        12,
		Year:         2017,
		HarvestScale: 0.7,
		DeviceJitter: 0.12,
		BatteryJ:     10,
		CapacityJ:    60,
		Solver:       reap.SolverEnumerate,
		Forecast:     true,
		Noise:        0.06,
		FaultRate:    0.02,
	}
}

// Brownout is a starved February with tiny batteries and frequent
// faults: budgets routinely fall below the off-state floor, exercising
// the dead region and recovery from it.
func Brownout() Scenario {
	return Scenario{
		Name:         "brownout",
		Description:  "starved February: dead regions, fault storms",
		Devices:      3,
		Days:         3,
		Seed:         3,
		Month:        2,
		Year:         2018,
		HarvestScale: 0.3,
		DeviceJitter: 0.08,
		BatteryJ:     3,
		CapacityJ:    12,
		Cache:        true,
		Noise:        0.08,
		FaultRate:    0.12,
	}
}

// MixedFleet is a heterogeneous September fleet sharing one solve
// cache: a third of the devices emphasize active time (α = 0.5), a
// third emphasize accuracy with bigger batteries (α = 2), and a third
// run the enumerate backend — distinct cache keys per population. The
// populations are declarative, so the scenario round-trips through its
// config-file form unchanged.
func MixedFleet() Scenario {
	return Scenario{
		Name:         "mixed-fleet",
		Description:  "heterogeneous alphas, batteries and backends on one cache",
		Devices:      6,
		Days:         3,
		Seed:         4,
		Month:        9,
		Year:         2015,
		DeviceJitter: 0.10,
		BatteryJ:     15,
		CapacityJ:    80,
		Cache:        true,
		Noise:        0.04,
		FaultRate:    0.03,
		Populations: []Population{
			{Modulus: 3, Residue: 0, Alpha: 0.5},
			{Modulus: 3, Residue: 1, Alpha: 2, BatteryJ: 30, CapacityJ: 150},
			{Modulus: 3, Residue: 2, Solver: reap.SolverEnumerate},
		},
	}
}

// CacheHot is the correlated-budget regime the solve cache is built
// for: sixteen identical devices under identical skies with exact
// (flat) execution, so every device's budget lands on the same
// quantized cache entry and the fleet solves each hour once.
func CacheHot() Scenario {
	return Scenario{
		Name:            "cache-hot",
		Description:     "16 identical devices, correlated budgets, shared cache",
		Devices:         16,
		Days:            2,
		Seed:            5,
		Month:           9,
		Year:            2015,
		HarvestScale:    1.2,
		BatteryJ:        20,
		CapacityJ:       100,
		Workers:         4,
		Cache:           true,
		FlatConsumption: true,
	}
}

// Library returns the legacy constructor-defined scenario library,
// ordered by name. The embedded corpus (Corpus) is a superset: these
// five plus the config-only scenarios; the corpus config files for
// these five are pinned byte-for-byte against the constructors.
func Library() []Scenario {
	lib := []Scenario{ClearMonth(), CloudyBursts(), Brownout(), MixedFleet(), CacheHot()}
	sort.Slice(lib, func(i, j int) bool { return lib[i].Name < lib[j].Name })
	return lib
}

// Lookup returns the corpus scenario with the given name — the five
// legacy library scenarios plus every config-defined one. Unknown names
// return an error wrapping ErrUnknownScenario.
func Lookup(name string) (Scenario, error) {
	c, err := Corpus()
	if err != nil {
		return Scenario{}, err
	}
	return c.Lookup(name)
}
