package reap

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestSolverRegistryBuiltins(t *testing.T) {
	names := Solvers()
	want := map[string]bool{SolverSimplex: false, SolverEnumerate: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("built-in solver %q missing from registry %v", n, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Solvers() not sorted: %v", names)
		}
	}
}

func TestLookupSolverUnknown(t *testing.T) {
	_, err := LookupSolver("no-such-backend")
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("LookupSolver error %v, want ErrUnknownSolver", err)
	}
}

func TestRegisterSolverValidation(t *testing.T) {
	dummy := SolverFunc(func(ctx context.Context, cfg Config, budget float64) (Allocation, error) {
		return Allocation{}, nil
	})
	if err := RegisterSolver("", dummy); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterSolver("nil-backend", nil); err == nil {
		t.Error("nil solver accepted")
	}
	if err := RegisterSolver(SolverSimplex, dummy); err == nil {
		t.Error("duplicate registration accepted")
	}
	// A fresh name registers and becomes visible.
	if err := RegisterSolver("test-dummy", dummy); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupSolver("test-dummy"); err != nil {
		t.Fatal(err)
	}
}

// TestBackendsAgreeAcrossRegions is the acceptance sweep: both registered
// backends must produce identical allocations on the paper's Table 2
// configuration across every Figure 5 operating region, including the
// region boundaries themselves.
func TestBackendsAgreeAcrossRegions(t *testing.T) {
	ctx := context.Background()
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	simplex, err := LookupSolver(SolverSimplex)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := LookupSolver(SolverEnumerate)
	if err != nil {
		t.Fatal(err)
	}

	budgets := []float64{0, 0.05, 0.1, 0.18} // dead region and the idle floor
	for b := 0.2; b <= 11.0; b += 0.05 {     // regions 1-3 and beyond saturation
		budgets = append(budgets, b)
	}
	budgets = append(budgets, RegionBoundaries(cfg)...)

	regions := map[Region]int{}
	for _, budget := range budgets {
		a1, err := simplex.Solve(ctx, cfg, budget)
		if err != nil {
			t.Fatalf("simplex at %v J: %v", budget, err)
		}
		a2, err := enum.Solve(ctx, cfg, budget)
		if err != nil {
			t.Fatalf("enumerate at %v J: %v", budget, err)
		}
		if math.Abs(a1.Objective(cfg)-a2.Objective(cfg)) > 1e-9 {
			t.Fatalf("objectives disagree at %v J: simplex %v enumerate %v",
				budget, a1.Objective(cfg), a2.Objective(cfg))
		}
		for i := range a1.Active {
			if math.Abs(a1.Active[i]-a2.Active[i]) > 1e-6 {
				t.Fatalf("allocations disagree at %v J (%s): %v vs %v",
					budget, Classify(cfg, budget), a1, a2)
			}
		}
		if math.Abs(a1.Off-a2.Off) > 1e-6 || math.Abs(a1.Dead-a2.Dead) > 1e-6 {
			t.Fatalf("off/dead disagree at %v J: %v vs %v", budget, a1, a2)
		}
		regions[Classify(cfg, budget)]++
	}
	for _, r := range []Region{RegionDead, Region1, Region2, Region3} {
		if regions[r] == 0 {
			t.Errorf("sweep never visited %v", r)
		}
	}
}

func TestSolverContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg, err := NewConfig()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{SolverSimplex, SolverEnumerate} {
		s, err := LookupSolver(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(ctx, cfg, 5.0); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context: err %v, want context.Canceled", name, err)
		}
	}
}
