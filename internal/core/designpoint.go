package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/fpx"
)

// DesignPoint is one operating configuration of the application with a
// characterized recognition accuracy and average power draw. In the HAR
// case study a design point fixes the accelerometer axes, the sensing
// period, the feature set and the classifier structure; here only the two
// numbers REAP consumes remain.
type DesignPoint struct {
	// Name identifies the design point (e.g. "DP1").
	Name string
	// Accuracy is the recognition accuracy in [0, 1].
	Accuracy float64
	// Power is the average power consumption in watts while this design
	// point is active (sensing + feature generation + classification +
	// transmission, amortized over the activity window).
	Power float64
}

// Validate checks that the design point's parameters are physically
// meaningful.
func (d DesignPoint) Validate() error {
	if math.IsNaN(d.Accuracy) || d.Accuracy < 0 || d.Accuracy > 1 {
		return fmt.Errorf("%w: design point %q accuracy %v outside [0,1]", ErrInvalidConfig, d.Name, d.Accuracy)
	}
	if math.IsNaN(d.Power) || d.Power <= 0 {
		return fmt.Errorf("%w: design point %q power %v must be positive", ErrInvalidConfig, d.Name, d.Power)
	}
	return nil
}

// EnergyPerPeriod returns the energy (J) the design point consumes if it
// runs for the whole period tp (seconds).
func (d DesignPoint) EnergyPerPeriod(tp float64) float64 { return d.Power * tp }

// Dominates reports whether d is at least as good as o in both dimensions
// and strictly better in at least one (higher accuracy, lower power).
func (d DesignPoint) Dominates(o DesignPoint) bool {
	if d.Accuracy < o.Accuracy || d.Power > o.Power {
		return false
	}
	return d.Accuracy > o.Accuracy || d.Power < o.Power
}

// ErrNoDesignPoints is returned when a configuration has an empty DP list.
var ErrNoDesignPoints = errors.New("core: configuration has no design points")

// ParetoFront returns the subset of dps not dominated by any other entry,
// sorted by decreasing power (the paper's DP1..DP5 ordering: highest
// accuracy/power first). Ties in both coordinates keep the first
// occurrence.
func ParetoFront(dps []DesignPoint) []DesignPoint {
	var front []DesignPoint
	for i, d := range dps {
		dominated := false
		for j, o := range dps {
			if i == j {
				continue
			}
			if o.Dominates(d) {
				dominated = true
				break
			}
			// Exact duplicate: keep only the earliest.
			if j < i && fpx.Eq(o.Accuracy, d.Accuracy) && fpx.Eq(o.Power, d.Power) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, d)
		}
	}
	sort.SliceStable(front, func(i, j int) bool {
		if !fpx.Eq(front[i].Power, front[j].Power) {
			return front[i].Power > front[j].Power
		}
		return front[i].Accuracy > front[j].Accuracy
	})
	return front
}

// PaperDesignPoints returns the five Pareto-optimal design points of
// Table 2 in the paper, with power expressed in watts. These are the
// reference values measured on the TI-Sensortag prototype; the
// har/energy packages regenerate comparable values from simulation.
func PaperDesignPoints() []DesignPoint {
	return []DesignPoint{
		{Name: "DP1", Accuracy: 0.94, Power: 2.76e-3},
		{Name: "DP2", Accuracy: 0.93, Power: 2.30e-3},
		{Name: "DP3", Accuracy: 0.92, Power: 1.82e-3},
		{Name: "DP4", Accuracy: 0.90, Power: 1.64e-3},
		{Name: "DP5", Accuracy: 0.76, Power: 1.20e-3},
	}
}
