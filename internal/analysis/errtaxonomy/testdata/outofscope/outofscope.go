// Fixture loaded under a package path outside the taxonomy scope:
// support packages (dsp, nn, solar, ...) may return plain errors — the
// public layers wrap them before they cross the reap boundary.
package outofscope

import (
	"errors"
	"fmt"
)

// Fresh would be a violation inside the scope; here it is legal.
func Fresh() error {
	return errors.New("support package detail")
}

// Unwrapped likewise.
func Unwrapped(n int) error {
	return fmt.Errorf("bad n %d", n)
}
