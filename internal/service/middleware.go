package service

import (
	"bufio"
	"net"
	"net/http"
	"strconv"

	"repro/wire"
)

// The middleware chain composes the cross-cutting resilience concerns
// around the mux, outermost first:
//
//	recover → chaos → overload gate → deadline → handlers
//
// Recover sits outermost so a panic anywhere below — including one the
// chaos injector throws on purpose — answers 500 with the stable
// "panic" code instead of killing the connection. The gate sheds before
// any decoding happens; the deadline bounds the work that was admitted.

// trackingWriter records whether a response has started, so the recover
// middleware knows whether a 500 can still be written. It forwards the
// optional interfaces the handlers rely on: Flusher for telemetry
// streaming, Hijacker for chaos connection tears.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

func (t *trackingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		t.wrote = true
		f.Flush()
	}
}

func (t *trackingWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := t.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, http.ErrNotSupported
	}
	t.wrote = true
	return hj.Hijack()
}

// recoverMiddleware is the outermost boundary: any panic escaping the
// chain below is counted and answered as 500/CodePanic when the
// response has not started; a torn response stays torn (the client
// already saw a broken exchange). http.ErrAbortHandler keeps its
// net/http meaning and re-panics.
func (s *Service) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Add(1)
			if !tw.wrote {
				writeError(tw, http.StatusInternalServerError,
					wire.Errorf(wire.CodePanic, "internal panic: %v", rec))
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// gateMiddleware sheds work past the in-flight cap with 503 and a
// Retry-After hint, before the request body is touched. Health and
// stats stay reachable under overload — they are exactly what an
// operator needs then.
func (s *Service) gateMiddleware(next http.Handler) http.Handler {
	if s.cfg.MaxInflight <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/v1/stats" || replicationControl(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if !s.gate.Enter() {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			writeError(w, http.StatusServiceUnavailable,
				wire.Errorf(wire.CodeOverloaded,
					"server over capacity (%d requests in flight)", s.cfg.MaxInflight))
			return
		}
		defer s.gate.Leave()
		next.ServeHTTP(w, r)
	})
}

// deadlineMiddleware bounds each request's context by the client's
// X-Deadline-Ms header clamped into server policy. The telemetry and
// replication streams are exempt: both are long-lived by design and
// bounded per event by the work they do, not per connection.
func (s *Service) deadlineMiddleware(next http.Handler) http.Handler {
	if s.cfg.Deadline.Default <= 0 && s.cfg.Deadline.Max <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/telemetry" || r.URL.Path == "/v1/replicate" {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := s.cfg.Deadline.Context(r)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// retryAfterSeconds is the hint attached to every load-shedding and
// drain refusal: short, because the condition is either transient
// (overload) or terminal for this replica (drain, where the client
// should re-resolve anyway).
const retryAfterSeconds = 1
