package eval

import (
	"repro/internal/har"
	"repro/internal/synth"
)

// ExtendedRow is one design point of the extended space (published five +
// int8-quantized five + partial-spectrum Goertzel variants).
type ExtendedRow struct {
	Name        string
	AccuracyPct float64
	EnergyMJ    float64
	PowerMW     float64
	OnFront     bool
	Extension   bool
}

// ExtendedResult is the extended-design-space experiment: do the two new
// knobs (classifier precision, spectrum width) push the Pareto front?
type ExtendedResult struct {
	Rows []ExtendedRow
}

// Extended characterizes the published five plus the extension variants
// on a fresh paper-scale corpus.
func Extended() (*ExtendedResult, error) {
	ds, err := synth.NewDataset(synth.DefaultCorpusConfig())
	if err != nil {
		return nil, err
	}
	return ExtendedOn(ds)
}

// ExtendedOn runs the experiment against a caller-provided corpus.
func ExtendedOn(ds *synth.Dataset) (*ExtendedResult, error) {
	specs := append(har.PaperFive(), har.ExtendedSpecs()...)
	points, err := har.Characterize(ds, specs)
	if err != nil {
		return nil, err
	}
	front := har.ParetoFront(points)
	onFront := make(map[string]bool, len(front))
	for _, f := range front {
		onFront[f.Spec.Name] = true
	}
	base := map[string]bool{"DP1": true, "DP2": true, "DP3": true, "DP4": true, "DP5": true}
	res := &ExtendedResult{}
	for _, p := range points {
		res.Rows = append(res.Rows, ExtendedRow{
			Name:        p.Spec.Name,
			AccuracyPct: 100 * p.Accuracy,
			EnergyMJ:    1e3 * p.EnergyPerActivity(),
			PowerMW:     1e3 * p.Power(),
			OnFront:     onFront[p.Spec.Name],
			Extension:   !base[p.Spec.Name],
		})
	}
	return res, nil
}

// Row returns the named row.
func (r *ExtendedResult) Row(name string) (ExtendedRow, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return ExtendedRow{}, false
}

// Render prints the extended scatter.
func (r *ExtendedResult) Render() string {
	t := &table{header: []string{"name", "acc%", "E/act(mJ)", "power(mW)", "pareto", "kind"}}
	for _, row := range r.Rows {
		mark, kind := "", "paper"
		if row.OnFront {
			mark = "*"
		}
		if row.Extension {
			kind = "extension"
		}
		t.add(row.Name, f1(row.AccuracyPct), f2(row.EnergyMJ), f2(row.PowerMW), mark, kind)
	}
	return "Extended design space: precision and spectrum-width knobs (* = Pareto front)\n" +
		t.String()
}
