package reap

import (
	"math"
	"testing"
)

func TestPublicAPISolve(t *testing.T) {
	cfg := DefaultConfig()
	alloc, err := Solve(cfg, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.Utilization(cfg, 3)-0.42) > 0.02 {
		t.Fatalf("DP4 share %.3f, want ~0.42", alloc.Utilization(cfg, 3))
	}
	enum, err := SolveEnumerate(cfg, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.Objective(cfg)-enum.Objective(cfg)) > 1e-9 {
		t.Fatal("solvers disagree through the public API")
	}
}

func TestPublicAPIConstants(t *testing.T) {
	if DefaultPeriod != 3600 {
		t.Fatal("period")
	}
	if math.Abs(DefaultPOff*3600-0.18) > 1e-12 {
		t.Fatal("off power")
	}
	dps := PaperDesignPoints()
	if len(dps) != 5 || dps[0].Name != "DP1" || dps[4].Accuracy != 0.76 {
		t.Fatalf("paper DPs %v", dps)
	}
	front := ParetoFront(dps)
	if len(front) != 5 {
		t.Fatalf("paper DPs should all be Pareto-optimal, front %v", front)
	}
}

func TestPublicAPIRegions(t *testing.T) {
	cfg := DefaultConfig()
	cases := map[float64]Region{0.1: RegionDead, 2: Region1, 6: Region2, 11: Region3}
	for budget, want := range cases {
		if got := Classify(cfg, budget); got != want {
			t.Errorf("Classify(%v) = %v, want %v", budget, got, want)
		}
	}
	if len(RegionBoundaries(cfg)) != 6 {
		t.Fatal("boundaries")
	}
}

func TestPublicAPIController(t *testing.T) {
	cfg := DefaultConfig()
	ctl, err := NewController(cfg, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := ctl.Step(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Report(alloc.Energy(cfg)); err != nil {
		t.Fatal(err)
	}
	if ctl.Steps() != 1 {
		t.Fatal("steps")
	}
}

func TestPublicAPIStaticBaseline(t *testing.T) {
	cfg := DefaultConfig()
	for budget := 0.5; budget < 11; budget += 0.5 {
		reapAlloc, err := Solve(cfg, budget)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfg.DPs {
			if StaticObjective(cfg, i, budget) > reapAlloc.Objective(cfg)+1e-9 {
				t.Fatalf("static DP%d beats REAP at %v J", i+1, budget)
			}
			s := StaticAllocation(cfg, i, budget)
			if s.Energy(cfg) > budget+1e-6 {
				t.Fatalf("static DP%d overspends at %v J", i+1, budget)
			}
		}
	}
}
