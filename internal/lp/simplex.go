package lp

import (
	"math"

	"repro/internal/fpx"
)

// tableau is the dense simplex tableau used by both phases.
//
// Layout: rows[0..m-1] are the constraint rows, rows[m] is the objective
// row. Columns 0..total-1 are variables (original, then slack/surplus, then
// artificial); column total is the right-hand side.
//
// The objective row stores reduced costs in the convention where a column
// with a POSITIVE entry improves the (maximization) objective, matching the
// paper's Algorithm 1 ("find the column with the largest value in the last
// row"; terminate when all entries are non-positive).
type tableau struct {
	rows  [][]float64
	basis []int // basis[i] = variable index basic in row i
	m     int   // number of constraint rows
	total int   // number of variable columns
}

// Solve runs the two-phase simplex method on p.
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{Status: Infeasible}, err
	}
	n := p.NumVars()
	m := p.NumConstraints()
	maxIter := p.MaxIter
	if maxIter <= 0 {
		maxIter = 100 * (n + m + 10)
	}

	t, nArt := build(p)
	iters := 0

	// Phase 1: drive artificial variables to zero, if any were needed.
	if nArt > 0 {
		st, it := t.iterate(maxIter)
		iters += it
		if st == IterationLimit {
			return Solution{Status: IterationLimit, Iterations: iters}, nil
		}
		// With the c−z reduced-cost convention the phase-1 objective row
		// RHS equals the current sum of artificial variables; the problem
		// is feasible iff that sum is (numerically) zero at optimality.
		if t.rows[t.m][t.total] > 1e-7 {
			return Solution{Status: Infeasible, Iterations: iters}, nil
		}
		t.dropArtificials(nArt)
		t.setObjective(p.Objective)
	}

	// Phase 2: optimize the true objective.
	st, it := t.iterate(maxIter - iters)
	iters += it
	sol := Solution{Status: st, Iterations: iters}
	if st == Optimal || st == IterationLimit {
		sol.X = t.extract(n)
		sol.Objective = p.Value(sol.X)
	}
	return sol, nil
}

// build constructs the initial tableau, adding slack, surplus and artificial
// columns as required, and returns it along with the artificial count.
// The construction lives in buildWithMeta (duals.go), which additionally
// records per-row slack metadata; build discards it.
func build(p *Problem) (*tableau, int) {
	t, _, nArt := buildWithMeta(p)
	return t, nArt
}

// setObjective installs a fresh phase-2 objective row for the current basis:
// the row is initialized to the raw costs and then each basic column is
// eliminated so reduced costs are expressed in the current basis.
func (t *tableau) setObjective(c []float64) {
	obj := t.rows[t.m]
	for j := range obj {
		obj[j] = 0
	}
	copy(obj, c)
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if b >= 0 && b < len(obj)-1 && !fpx.Zero(obj[b]) {
			addRow(obj, t.rows[i], -obj[b])
		}
	}
}

// dropArtificials removes artificial columns after phase 1. Any artificial
// variable still basic (at zero, by feasibility) is pivoted out first; a row
// whose coefficients are all zero is redundant and is zeroed in place.
func (t *tableau) dropArtificials(nArt int) {
	firstArt := t.total - nArt
	for i := 0; i < t.m; i++ {
		if t.basis[i] < firstArt {
			continue
		}
		// Degenerate basic artificial: pivot in any non-artificial
		// column with a nonzero coefficient in this row.
		pivoted := false
		for j := 0; j < firstArt; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint row: clear it so it can never be
			// selected as a pivot row.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
			t.basis[i] = -1
		}
	}
	// Truncate artificial columns.
	for i := range t.rows {
		row := t.rows[i]
		row[firstArt] = row[t.total] // move RHS left
		t.rows[i] = row[:firstArt+1]
	}
	t.total = firstArt
}

// iterate performs simplex pivots until optimality, unboundedness or the
// iteration budget is exhausted. It uses Bland's rule (lowest eligible
// index) for both the entering and leaving variable, which guarantees
// termination on degenerate tableaus.
func (t *tableau) iterate(maxIter int) (Status, int) {
	obj := t.rows[t.m]
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return IterationLimit, iter
		}
		// Entering column: Bland's rule over positive reduced costs.
		col := -1
		for j := 0; j < t.total; j++ {
			if obj[j] > eps {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal, iter
		}
		// Leaving row: minimum ratio test, ties broken by lowest basis
		// index (Bland).
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][col]
			if a <= eps {
				continue
			}
			ratio := t.rows[i][t.total] / a
			if ratio < best-eps || (ratio < best+eps && (row < 0 || t.basis[i] < t.basis[row])) {
				best = ratio
				row = i
			}
		}
		if row < 0 {
			return Unbounded, iter
		}
		t.pivot(row, col)
	}
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // avoid drift
	for i := range t.rows {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if fpx.Zero(f) {
			continue
		}
		addRow(t.rows[i], pr, -f)
		t.rows[i][col] = 0
	}
	t.basis[row] = col
}

// extract reads the values of the first n (original) variables from the
// tableau, clamping tiny negatives introduced by floating-point error.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if b >= 0 && b < n {
			v := t.rows[i][t.total]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// addRow computes dst += f*src element-wise.
func addRow(dst, src []float64, f float64) {
	for j := range dst {
		dst[j] += f * src[j]
	}
}
