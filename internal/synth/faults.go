package synth

import (
	"fmt"
	"math/rand"
)

// Fault models sensor failure modes seen in deployed wearables. Faults
// corrupt windows *after* generation, so experiments can measure how each
// design point's accuracy degrades — and whether the Pareto ordering that
// REAP relies on survives hardware trouble.
type Fault int

const (
	// NoFault leaves the window untouched.
	NoFault Fault = iota
	// StuckAxis freezes one accelerometer axis at its first sample
	// (a common MEMS failure).
	StuckAxis
	// Dropout zeroes a contiguous chunk of all channels (bus stall,
	// brown-out during sampling).
	Dropout
	// SpikeNoise injects large impulsive outliers (connector chatter).
	SpikeNoise
	// StretchDetached drives the stretch channel to a constant: the band
	// lost tension or slipped off.
	StretchDetached
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case NoFault:
		return "none"
	case StuckAxis:
		return "stuck-axis"
	case Dropout:
		return "dropout"
	case SpikeNoise:
		return "spike-noise"
	case StretchDetached:
		return "stretch-detached"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Faults lists the injectable failure modes (excluding NoFault).
func Faults() []Fault {
	return []Fault{StuckAxis, Dropout, SpikeNoise, StretchDetached}
}

// Corrupt returns a deep copy of w with the fault applied. The original
// window is never modified. Randomness (which axis sticks, where the
// dropout lands) comes from rng.
func Corrupt(w Window, f Fault, rng *rand.Rand) (Window, error) {
	out := Window{
		User:     w.User,
		Activity: w.Activity,
		AccelX:   append([]float64(nil), w.AccelX...),
		AccelY:   append([]float64(nil), w.AccelY...),
		AccelZ:   append([]float64(nil), w.AccelZ...),
		Stretch:  append([]float64(nil), w.Stretch...),
	}
	switch f {
	case NoFault:
	case StuckAxis:
		axis := [][]float64{out.AccelX, out.AccelY, out.AccelZ}[rng.Intn(3)]
		if len(axis) > 0 {
			v := axis[0]
			for i := range axis {
				axis[i] = v
			}
		}
	case Dropout:
		n := len(out.AccelX)
		if n > 0 {
			chunk := n/4 + rng.Intn(n/4+1) // 25–50% of the window
			start := rng.Intn(n - chunk + 1)
			for i := start; i < start+chunk; i++ {
				out.AccelX[i], out.AccelY[i], out.AccelZ[i], out.Stretch[i] = 0, 0, 0, 0
			}
		}
	case SpikeNoise:
		for i := range out.AccelX {
			if rng.Float64() < 0.02 {
				spike := (rng.Float64()*2 - 1) * 4
				out.AccelX[i] += spike
				out.AccelY[i] += spike * 0.7
				out.AccelZ[i] += spike * 0.4
			}
		}
	case StretchDetached:
		v := 0.2 + rng.Float64()*0.1 // slack band reads a low constant
		for i := range out.Stretch {
			out.Stretch[i] = v
		}
	default:
		return Window{}, fmt.Errorf("synth: unknown fault %d", int(f))
	}
	return out, nil
}
