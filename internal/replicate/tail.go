package replicate

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/journal"
)

// TailConfig configures a follower's stream client. The callbacks run
// on the tail goroutine, one frame at a time; returning an error drops
// the stream (reconnect with backoff). OnEvent returning ErrOutOfSync
// additionally forces a snapshot resync on the next connect.
type TailConfig struct {
	// Primary is the host:port the follower replicates from.
	Primary string
	// ID names this follower in the primary's lag accounting.
	ID string
	// From returns the local journal position: the connect asks for
	// events after it.
	From func() uint64
	// Epoch returns the local term, carried on every connect and ack
	// so a demoted primary fences itself against us.
	Epoch func() uint64
	// OnHello sees the primary's epoch and seq at stream start; an
	// error (e.g. the primary's epoch is behind ours — a zombie)
	// refuses the stream.
	OnHello func(epoch, seq uint64) error
	// OnSnapshot installs a full state snapshot at seq, discarding
	// local history.
	OnSnapshot func(seq uint64, payload []byte) error
	// OnEvent applies one replicated journal event.
	OnEvent func(seq uint64, payload []byte) error
	// OnHeartbeat observes the primary's seq on an idle stream.
	OnHeartbeat func(seq uint64)
	// AckInterval rate-limits ack posts back to the primary (default
	// 500ms). Acks ride the tail loop, after applying frames.
	AckInterval time.Duration
	// Client is the HTTP client for both the stream and acks; nil uses
	// a dedicated default.
	Client *http.Client
}

// Tailer pulls the replication stream and keeps pulling: reconnect
// with exponential backoff on any failure, snapshot resync when the
// service reports divergence, clean teardown when the context ends.
type Tailer struct {
	cfg    TailConfig
	client *http.Client

	connected  atomic.Bool
	reconnects atomic.Uint64
	resyncs    atomic.Uint64
	forceSync  atomic.Bool
	lastAcked  atomic.Uint64
}

// NewTailer builds a tailer; Run starts it.
func NewTailer(cfg TailConfig) *Tailer {
	if cfg.AckInterval <= 0 {
		cfg.AckInterval = 500 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		// No overall timeout: the stream request legitimately lasts
		// forever. Cancellation comes from the Run context.
		client = &http.Client{}
	}
	return &Tailer{cfg: cfg, client: client}
}

// Connected reports whether a stream is currently established.
func (t *Tailer) Connected() bool { return t.connected.Load() }

// Reconnects counts stream (re)establishment attempts after the first.
func (t *Tailer) Reconnects() uint64 { return t.reconnects.Load() }

// Resyncs counts snapshot re-bootstraps forced by divergence.
func (t *Tailer) Resyncs() uint64 { return t.resyncs.Load() }

// Run pulls the stream until ctx ends. It is the follower's whole
// replication lifecycle; the caller owns the goroutine (reapd wraps it
// in resilience.Go).
func (t *Tailer) Run(ctx context.Context) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for first := true; ; first = false {
		if !first {
			t.reconnects.Add(1)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		if ctx.Err() != nil {
			return
		}
		progressed, err := t.stream(ctx)
		if ctx.Err() != nil {
			return
		}
		if progressed {
			backoff = 100 * time.Millisecond
		}
		if errors.Is(err, ErrOutOfSync) {
			t.forceSync.Store(true)
			t.resyncs.Add(1)
		}
	}
}

// stream runs one connection: request, hello, frame loop. progressed
// reports whether any frame was applied (resets backoff).
func (t *Tailer) stream(ctx context.Context) (progressed bool, err error) {
	q := url.Values{}
	q.Set("from", strconv.FormatUint(t.cfg.From(), 10))
	q.Set("epoch", strconv.FormatUint(t.cfg.Epoch(), 10))
	q.Set("id", t.cfg.ID)
	if t.forceSync.Swap(false) {
		q.Set("resync", "1")
	}
	u := "http://" + t.cfg.Primary + "/v1/replicate?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrStream, err)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrStream, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%w: primary answered %d", ErrStream, resp.StatusCode)
	}

	r := bufio.NewReader(resp.Body)
	lastAck := time.Now()
	sawHello := false
	for {
		p, rerr := journal.ReadFrame(r)
		if rerr != nil {
			// io.EOF: primary went away cleanly; ErrTornTail: mid-frame
			// cut. Either way the CRC framing guarantees nothing partial
			// was applied — reconnect resumes exactly at From().
			return progressed, fmt.Errorf("%w: %v", ErrStream, rerr)
		}
		m, derr := Decode(p)
		if derr != nil {
			return progressed, derr
		}
		switch m.Kind {
		case KindHello:
			sawHello = true
			if t.cfg.OnHello != nil {
				if err := t.cfg.OnHello(m.Epoch, m.Seq); err != nil {
					return progressed, err
				}
			}
			t.connected.Store(true)
			defer t.connected.Store(false)
		case KindSnapshot:
			if !sawHello {
				return progressed, fmt.Errorf("%w: frame before hello", ErrBadFrame)
			}
			if err := t.cfg.OnSnapshot(m.Seq, m.Payload); err != nil {
				return progressed, err
			}
			progressed = true
		case KindEvent:
			if !sawHello {
				return progressed, fmt.Errorf("%w: frame before hello", ErrBadFrame)
			}
			if err := t.cfg.OnEvent(m.Seq, m.Payload); err != nil {
				return progressed, err
			}
			progressed = true
		case KindHeartbeat:
			if t.cfg.OnHeartbeat != nil {
				t.cfg.OnHeartbeat(m.Seq)
			}
		}
		if time.Since(lastAck) >= t.cfg.AckInterval {
			t.postAck(ctx)
			lastAck = time.Now()
		}
	}
}

// postAck tells the primary how far we have applied. Best-effort: lag
// accounting, not correctness, rides on it.
func (t *Tailer) postAck(ctx context.Context) {
	seq := t.cfg.From()
	if seq == t.lastAcked.Load() {
		return
	}
	actx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	body := fmt.Sprintf(`{"v":1,"id":%q,"epoch":%d,"seq":%d}`, t.cfg.ID, t.cfg.Epoch(), seq)
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		"http://"+t.cfg.Primary+"/v1/replicate/ack", strings.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.lastAcked.Store(seq)
	}
}
