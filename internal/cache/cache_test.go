package cache

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func mustNew(t *testing.T, size int, res float64) *Cache {
	t.Helper()
	c, err := New(size, res)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		size int
		res  float64
	}{
		{0, 0.001}, {-1, 0.001}, {16, -0.001}, {16, math.NaN()}, {16, math.Inf(1)},
	} {
		if _, err := New(tc.size, tc.res); err == nil {
			t.Errorf("New(%d, %v) accepted", tc.size, tc.res)
		}
	}
	if _, err := New(1, 0); err != nil {
		t.Errorf("New(1, 0) rejected: %v", err)
	}
}

func TestHitMissAndQuantizationSharing(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	ctx := context.Background()

	var solves atomic.Int32
	counted := func(ctx context.Context, cfg core.Config, b float64) (core.Allocation, error) {
		solves.Add(1)
		return core.SolveContext(ctx, cfg, b)
	}

	// Budgets within one 1 mJ bucket share a single solve.
	a1, err := c.Solve(ctx, 0, counted, cfg, 5.0001)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Solve(ctx, 0, counted, cfg, 5.0009)
	if err != nil {
		t.Fatal(err)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("same-bucket budgets ran %d solves, want 1", got)
	}
	if a1.Objective(cfg) != a2.Objective(cfg) {
		t.Fatal("same-bucket budgets returned different allocations")
	}
	// The representative budget is the bucket floor: both match an exact
	// solve at 5.000 J.
	want, err := core.Solve(cfg, 5.000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.Objective(cfg)-want.Objective(cfg)) > 1e-12 {
		t.Fatalf("cached objective %v, want floor-budget objective %v", a1.Objective(cfg), want.Objective(cfg))
	}

	// The next bucket is a fresh solve.
	if _, err := c.Solve(ctx, 0, counted, cfg, 5.0011); err != nil {
		t.Fatal(err)
	}
	if got := solves.Load(); got != 2 {
		t.Fatalf("next bucket ran %d solves total, want 2", got)
	}

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses", s)
	}
}

func TestExactModeDistinguishesBudgets(t *testing.T) {
	c := mustNew(t, 64, 0)
	cfg := core.DefaultConfig()
	var solves atomic.Int32
	counted := func(ctx context.Context, cfg core.Config, b float64) (core.Allocation, error) {
		solves.Add(1)
		return core.SolveContext(ctx, cfg, b)
	}
	ctx := context.Background()
	if _, err := c.Solve(ctx, 0, counted, cfg, 5.0001); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, 0, counted, cfg, 5.0002); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, 0, counted, cfg, 5.0001); err != nil {
		t.Fatal(err)
	}
	if got := solves.Load(); got != 2 {
		t.Fatalf("exact mode ran %d solves, want 2 (one per distinct budget)", got)
	}
}

// TestTagsDoNotShareEntries: two backends (tags) over one cache must
// never serve each other's allocations, even at the same (cfg, budget).
func TestTagsDoNotShareEntries(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	ctx := context.Background()

	// Backend B is deliberately wrong: it always returns an all-off
	// schedule. If tags leaked, one backend would answer for the other.
	allOff := func(ctx context.Context, cfg core.Config, b float64) (core.Allocation, error) {
		return core.Allocation{Active: make([]float64, len(cfg.DPs)), Off: cfg.Period}, nil
	}
	simplexAlloc, err := c.Solve(ctx, 1, core.SolveContext, cfg, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	offAlloc, err := c.Solve(ctx, 2, allOff, cfg, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if simplexAlloc.Objective(cfg) == 0 {
		t.Fatal("tag 1 served tag 2's backend")
	}
	if offAlloc.Objective(cfg) != 0 {
		t.Fatal("tag 2 served tag 1's backend")
	}
	if s := c.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("stats %+v, want 2 misses (one per tag)", s)
	}
}

func TestConfigsDoNotShareEntries(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	ctx := context.Background()
	a := core.DefaultConfig()
	b := core.DefaultConfig()
	b.Alpha = 2

	ra, err := c.Solve(ctx, 0, core.SolveContext, a, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Solve(ctx, 0, core.SolveContext, b, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	wa, _ := core.Solve(a, 2.0)
	wb, _ := core.Solve(b, 2.0)
	if math.Abs(ra.Objective(a)-wa.Objective(a)) > 1e-12 || math.Abs(rb.Objective(b)-wb.Objective(b)) > 1e-12 {
		t.Fatal("configurations with different alpha shared a cache entry")
	}
	if s := c.Stats(); s.Misses != 2 {
		t.Fatalf("stats %+v, want 2 misses for 2 configs", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// size 8 < 64 forces a single shard, so LRU order is exact.
	c := mustNew(t, 8, 0.001)
	cfg := core.DefaultConfig()
	ctx := context.Background()
	var solves atomic.Int32
	counted := func(ctx context.Context, cfg core.Config, b float64) (core.Allocation, error) {
		solves.Add(1)
		return core.SolveContext(ctx, cfg, b)
	}

	for i := 0; i < 10; i++ {
		if _, err := c.Solve(ctx, 0, counted, cfg, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 8 || s.Capacity != 8 {
		t.Fatalf("entries/capacity %d/%d, want 8/8", s.Entries, s.Capacity)
	}
	if s.Evictions != 2 {
		t.Fatalf("%d evictions, want 2", s.Evictions)
	}

	// Budgets 0 and 1 were least recently used and must be gone; budget 9
	// must still be resident.
	solves.Store(0)
	if _, err := c.Solve(ctx, 0, counted, cfg, 9); err != nil {
		t.Fatal(err)
	}
	if solves.Load() != 0 {
		t.Fatal("recently used entry was evicted")
	}
	if _, err := c.Solve(ctx, 0, counted, cfg, 0); err != nil {
		t.Fatal(err)
	}
	if solves.Load() != 1 {
		t.Fatal("least recently used entry survived past capacity")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	release := make(chan struct{})
	var solves atomic.Int32
	blocking := func(ctx context.Context, cfg core.Config, b float64) (core.Allocation, error) {
		solves.Add(1)
		<-release
		return core.SolveContext(ctx, cfg, b)
	}

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]core.Allocation, 1+waiters)
	errs := make([]error, 1+waiters)
	for i := 0; i < 1+waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Solve(context.Background(), 0, blocking, cfg, 5.0)
		}(i)
	}

	// Wait until the leader is in the solver and every other caller has
	// registered as a coalesced waiter, then release the solve.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < waiters || solves.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats %+v after 5s, want %d coalesced waiters", c.Stats(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("%d solves for %d concurrent callers, want 1", got, 1+waiters)
	}
	want := results[0].Objective(cfg)
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].Objective(cfg) != want {
			t.Fatalf("caller %d got a different allocation", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != waiters {
		t.Fatalf("stats %+v, want 1 miss and %d coalesced", s, waiters)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	ctx := context.Background()
	boom := errors.New("transient solver failure")
	fail := true
	flaky := func(ctx context.Context, cfg core.Config, b float64) (core.Allocation, error) {
		if fail {
			return core.Allocation{}, boom
		}
		return core.SolveContext(ctx, cfg, b)
	}
	if _, err := c.Solve(ctx, 0, flaky, cfg, 3.0); !errors.Is(err, boom) {
		t.Fatalf("err %v, want the solver failure", err)
	}
	fail = false
	if _, err := c.Solve(ctx, 0, flaky, cfg, 3.0); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
	if s := c.Stats(); s.Entries != 1 || s.Misses != 2 {
		t.Fatalf("stats %+v, want the failure uncached (2 misses, 1 entry)", s)
	}
}

func TestInvalidBudgetsBypassCache(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	ctx := context.Background()
	for _, b := range []float64{-1, math.NaN()} {
		if _, err := c.Solve(ctx, 0, core.SolveContext, cfg, b); !errors.Is(err, core.ErrBudgetNegative) {
			t.Fatalf("budget %v: err %v, want ErrBudgetNegative", b, err)
		}
	}
	if s := c.Stats(); s.Hits+s.Misses+s.Coalesced != 0 || s.Entries != 0 {
		t.Fatalf("invalid budgets touched the cache: %+v", s)
	}
}

func TestReturnedAllocationsAreIsolated(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	ctx := context.Background()
	a, err := c.Solve(ctx, 0, core.SolveContext, cfg, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Objective(cfg)
	for i := range a.Active {
		a.Active[i] = -1e9 // caller scribbles on its copy
	}
	b, err := c.Solve(ctx, 0, core.SolveContext, cfg, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Objective(cfg) != want {
		t.Fatal("mutating a returned allocation corrupted the cached entry")
	}
}

func TestWaiterHonoursOwnContext(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	release := make(chan struct{})
	defer close(release)
	blocking := func(ctx context.Context, cfg core.Config, b float64) (core.Allocation, error) {
		<-release
		return core.SolveContext(ctx, cfg, b)
	}

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Solve(context.Background(), 0, blocking, cfg, 5.0)
		leaderErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Misses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Solve(ctx, 0, blocking, cfg, 5.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
}

func TestSolveFuncWrapper(t *testing.T) {
	c := mustNew(t, 64, 0.001)
	cfg := core.DefaultConfig()
	fn := c.SolveFunc(0, core.SolveContext)
	if _, err := fn(context.Background(), cfg, 5.0); err != nil {
		t.Fatal(err)
	}
	if _, err := fn(context.Background(), cfg, 5.0); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss through the wrapper", s)
	}
}

func TestHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("empty hit rate %v, want 0", r)
	}
	if r := (Stats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", r)
	}
}
