package sim

import "errors"

// Sentinel errors of the sim package, mirroring the root package's
// taxonomy discipline (see errors.go at the repo root and the reapvet
// errtaxonomy analyzer, which scopes this package): every error sim
// returns wraps one of these, so callers branch with errors.Is instead
// of string matching.
var (
	// ErrUnknownScenario is returned by Lookup and Corpus.Lookup when no
	// scenario carries the requested name.
	ErrUnknownScenario = errors.New("sim: unknown scenario")
	// ErrInvalidScenario wraps every scenario-validation failure: bad
	// fleet shapes, out-of-range rates, malformed populations, regions,
	// churn schedules or storms, and invalid statistics-helper inputs.
	ErrInvalidScenario = errors.New("sim: invalid scenario")
	// ErrConfigMalformed wraps every config-decoding failure: JSON
	// syntax errors, unknown fields, version mismatches and trailing
	// data. A config either matches the schema exactly or fails with
	// this sentinel — the same strict-decode contract as wire/.
	ErrConfigMalformed = errors.New("sim: malformed scenario config")
)
