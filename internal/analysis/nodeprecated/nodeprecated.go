// Package nodeprecated keeps deprecated API out of shipping code.
//
// The root package carries thin wrappers kept for source compatibility
// (DefaultConfig, Solve, SolveEnumerate, NewController), each marked
// with a standard "Deprecated:" doc paragraph. Every caller in the tree
// has been migrated to the replacement API; this analyzer is the
// ratchet that keeps it that way — a new use of a deprecated symbol is
// a reapvet finding, not a code-review coin flip.
//
// Detection is two-layered because the loader resolves imports through
// compiler export data, which carries no doc comments:
//
//   - Cross-package uses check against a hardcoded table of deprecated
//     symbols per import path. The table is pinned to the source of
//     truth by a test that greps the defining package's doc comments —
//     deprecating or un-deprecating a symbol without updating the table
//     fails the analyzer's own tests.
//
//   - Same-package uses (where source, and therefore doc comments, are
//     in hand) detect "Deprecated:" markers directly, so a package
//     cannot quietly keep calling its own deprecated API. The
//     deprecated declarations themselves are exempt — a wrapper may
//     reference its own kind while it exists.
package nodeprecated

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Deprecated maps import path → symbol → replacement hint for packages
// whose deprecations must be visible across package boundaries (export
// data strips doc comments, so this table is the boundary's memory).
// TestTableMatchesSource pins it to the actual Deprecated: markers in
// the defining package's source.
var Deprecated = map[string]map[string]string{
	"repro": {
		"DefaultConfig":  "NewConfig",
		"Solve":          "LookupSolver(SolverSimplex)",
		"SolveEnumerate": "LookupSolver(SolverEnumerate)",
		"NewController":  "New with options",
	},
}

// Analyzer reports uses of deprecated symbols.
var Analyzer = &analysis.Analyzer{
	Name: "nodeprecated",
	Doc: "no new callers of Deprecated: symbols — use the replacement " +
		"API named in the deprecation notice",
	Run: run,
}

func run(pass *analysis.Pass) error {
	local := localDeprecated(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Uses inside a deprecated declaration are exempt: the
			// wrappers exist to delegate, and they may go together.
			if decl, ok := n.(*ast.FuncDecl); ok && isDeprecatedDecl(decl.Doc) {
				return false
			}
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[ident]
			if obj == nil || obj.Pkg() == nil || !packageScoped(obj) {
				return true
			}
			if obj.Pkg() == pass.Pkg {
				if local[obj] {
					pass.Reportf(ident.Pos(),
						"%s is deprecated — see its Deprecated: notice for the replacement", obj.Name())
				}
				return true
			}
			if hint, ok := Deprecated[obj.Pkg().Path()][obj.Name()]; ok {
				pass.Reportf(ident.Pos(),
					"%s.%s is deprecated — use %s", obj.Pkg().Path(), obj.Name(), hint)
			}
			return true
		})
	}
	return nil
}

// packageScoped reports whether obj is declared at package scope —
// methods and locals that merely share a deprecated symbol's name must
// not be flagged.
func packageScoped(obj types.Object) bool {
	return obj.Parent() == obj.Pkg().Scope()
}

// localDeprecated collects the pass package's own objects whose doc
// comment carries a Deprecated: paragraph.
func localDeprecated(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(name *ast.Ident) {
		if obj := pass.TypesInfo.Defs[name]; obj != nil {
			out[obj] = true
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if isDeprecatedDecl(decl.Doc) {
					mark(decl.Name)
				}
			case *ast.GenDecl:
				declDoc := isDeprecatedDecl(decl.Doc)
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						if declDoc || isDeprecatedDecl(spec.Doc) {
							mark(spec.Name)
						}
					case *ast.ValueSpec:
						if declDoc || isDeprecatedDecl(spec.Doc) {
							for _, name := range spec.Names {
								mark(name)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// isDeprecatedDecl implements the godoc convention: a doc-comment
// paragraph starting "Deprecated:" marks the symbol deprecated.
func isDeprecatedDecl(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "Deprecated:") {
			return true
		}
	}
	return false
}
