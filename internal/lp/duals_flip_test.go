package lp

import (
	"math"
	"math/rand"
	"testing"
)

// These tests target the row-normalization path of the dual extraction:
// constraints entered with negative right-hand sides are sign-flipped
// internally, and the reported dual must be expressed against the
// ORIGINAL orientation.

func TestDualsFlippedLERow(t *testing.T) {
	// max x + y s.t. -x - y <= -3 (i.e. x+y >= 3), x <= 5, y <= 5.
	// Optimum x=y=5, z=10; the flipped row is slack there (x+y=10 > 3),
	// so its dual is 0 and the two box rows carry dual 1 each.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1, -1}, Op: LE, RHS: -3},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 5},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 5},
		},
	}
	sol, duals, err := SolveWithDuals(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if math.Abs(duals[0]) > 1e-7 {
		t.Errorf("slack flipped row dual = %v, want 0", duals[0])
	}
	if math.Abs(duals[1]-1) > 1e-7 || math.Abs(duals[2]-1) > 1e-7 {
		t.Errorf("box duals = %v %v, want 1 1", duals[1], duals[2])
	}
}

func TestDualsBindingFlippedRow(t *testing.T) {
	// min x+y (as max -x-y) s.t. x+y >= 3 entered as -x-y <= -3.
	// Optimum on the flipped row with z = -3. Sensitivity to the ORIGINAL
	// RHS b = -3: raising b to -3+h tightens x+y >= 3-h... careful:
	// original row is -x-y <= b, so z*(b) = b (since x+y = -b at the
	// optimum and z = -(x+y) = b). The dual must therefore be 1.
	p := &Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1, -1}, Op: LE, RHS: -3},
		},
	}
	sol, duals, err := SolveWithDuals(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if math.Abs(sol.Objective-(-3)) > 1e-9 {
		t.Fatalf("objective %v, want -3", sol.Objective)
	}
	const h = 1e-5
	up := perturbRHS(p, 0, +h)
	su, err := Solve(up)
	if err != nil || su.Status != Optimal {
		t.Fatalf("perturbed solve: err=%v status=%v", err, su.Status)
	}
	numeric := (su.Objective - sol.Objective) / h
	if math.Abs(duals[0]-numeric) > 1e-4*(1+math.Abs(numeric)) {
		t.Fatalf("flipped binding dual %v vs numeric %v", duals[0], numeric)
	}
}

func TestDualsGERows(t *testing.T) {
	// Diet-style problem: minimize cost (max negative cost) subject to
	// nutritional floors entered as GE rows.
	// max -(2x + 3y) s.t. x + 2y >= 4, 2x + y >= 4.
	// Optimum x = y = 4/3, z = -20/3. Both rows bind.
	p := &Problem{
		Objective: []float64{-2, -3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Op: GE, RHS: 4},
			{Coeffs: []float64{2, 1}, Op: GE, RHS: 4},
		},
	}
	sol, duals, err := SolveWithDuals(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if math.Abs(sol.Objective+20.0/3) > 1e-7 {
		t.Fatalf("objective %v, want -20/3", sol.Objective)
	}
	// Finite-difference check of both GE duals.
	for i := range p.Constraints {
		const h = 1e-5
		su, err := Solve(perturbRHS(p, i, +h))
		if err != nil || su.Status != Optimal {
			t.Fatal("perturbed solve failed")
		}
		sd, err := Solve(perturbRHS(p, i, -h))
		if err != nil || sd.Status != Optimal {
			t.Fatal("perturbed solve failed")
		}
		numeric := (su.Objective - sd.Objective) / (2 * h)
		if math.Abs(duals[i]-numeric) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("GE row %d: dual %v vs numeric %v", i, duals[i], numeric)
		}
	}
	// Raising a nutritional floor must cost: duals are negative for a
	// maximization with binding GE rows.
	for i, d := range duals {
		if d >= 0 {
			t.Errorf("GE dual %d = %v, want negative (tightening hurts)", i, d)
		}
	}
}

func TestDualsMixedRowsRandomized(t *testing.T) {
	// Randomized LPs with LE, GE and flipped rows, duals checked by
	// finite differences on clean (non-degenerate) instances.
	rng := rand.New(rand.NewSource(77))
	clean := 0
	for attempt := 0; attempt < 500 && clean < 60; attempt++ {
		n := 2 + rng.Intn(2)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*6 - 3
		}
		// Box constraints guarantee boundedness.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Op: LE, RHS: 3 + rng.Float64()*5})
		}
		// One GE floor on the sum (feasible at the boxes' scale).
		all := make([]float64, n)
		for j := range all {
			all[j] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: all, Op: GE, RHS: rng.Float64() * 2})
		// One flipped LE row: -x0 <= -r  (x0 >= r).
		neg := make([]float64, n)
		neg[0] = -1
		p.Constraints = append(p.Constraints, Constraint{Coeffs: neg, Op: LE, RHS: -rng.Float64()})

		sol, duals, err := SolveWithDuals(p)
		if err != nil || sol.Status != Optimal {
			continue
		}
		ok := true
		for i := range p.Constraints {
			const h = 1e-5
			su, e1 := Solve(perturbRHS(p, i, +h))
			sd, e2 := Solve(perturbRHS(p, i, -h))
			if e1 != nil || e2 != nil || su.Status != Optimal || sd.Status != Optimal {
				ok = false
				break
			}
			numeric := (su.Objective - sd.Objective) / (2 * h)
			left := (sol.Objective - sd.Objective) / h
			right := (su.Objective - sol.Objective) / h
			if math.Abs(left-right) > 1e-3*(1+math.Abs(numeric)) {
				ok = false // degenerate: one-sided sensitivities differ
				break
			}
			if math.Abs(duals[i]-numeric) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("attempt %d row %d: dual %v vs numeric %v\n%s",
					attempt, i, duals[i], numeric, p)
			}
		}
		if ok {
			clean++
		}
	}
	if clean < 30 {
		t.Fatalf("only %d clean randomized instances", clean)
	}
}
