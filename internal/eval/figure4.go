package eval

import (
	"repro/internal/energy"
	"repro/internal/har"
)

// Figure4Result is the DP1 energy decomposition over a one-hour activity
// period: the paper reports 9.9 J total with ~47% going to the sensors.
type Figure4Result struct {
	// TotalJ is the hourly energy of DP1.
	TotalJ float64
	// Components maps component name to its hourly energy in joules.
	Components map[string]float64
	// SensorSharePct is the sensors' percentage of the total.
	SensorSharePct float64
}

// Figure4 prices DP1's hour from the component model.
func Figure4() (*Figure4Result, error) {
	dp1 := har.PaperFive()[0]
	b, err := energy.Activity(dp1.EnergyProfile())
	if err != nil {
		return nil, err
	}
	scale := 3600 / energy.ActivityWindowSeconds
	res := &Figure4Result{
		TotalJ: energy.PerHour(b),
		Components: map[string]float64{
			"accelerometer":    b.SensorAccel * scale,
			"stretch sensor":   b.SensorStretch * scale,
			"mcu compute":      b.MCUCompute * scale,
			"mcu sampling":     b.MCUSampling * scale,
			"ble transmission": b.Radio * scale,
		},
	}
	res.SensorSharePct = 100 * (b.SensorAccel + b.SensorStretch) / b.Total()
	return res, nil
}

// Render prints the decomposition.
func (r *Figure4Result) Render() string {
	t := &table{header: []string{"component", "energy (J/hour)", "share (%)"}}
	order := []string{"accelerometer", "stretch sensor", "mcu compute", "mcu sampling", "ble transmission"}
	for _, name := range order {
		v := r.Components[name]
		t.add(name, f2(v), f1(100*v/r.TotalJ))
	}
	t.add("total", f2(r.TotalJ), "100.0")
	return "Figure 4: DP1 energy distribution over one hour (paper: 9.9 J total, ~47% sensors)\n" +
		t.String()
}
