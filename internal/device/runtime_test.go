package device

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/har"
	"repro/internal/solar"
	"repro/internal/synth"
)

// sharedModels trains the five paper design points once for the package.
var (
	modelsOnce sync.Once
	modelsDS   *synth.Dataset
	modelsVal  []har.Characterized
	modelsErr  error
)

func trainedFive(t *testing.T) (*synth.Dataset, []har.Characterized) {
	t.Helper()
	modelsOnce.Do(func() {
		modelsDS, modelsErr = synth.NewDataset(synth.CorpusConfig{
			NumUsers: 8, TotalWindows: 1600, Seed: 2019,
		})
		if modelsErr != nil {
			return
		}
		modelsVal, modelsErr = har.Characterize(modelsDS, har.PaperFive())
	})
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	return modelsDS, modelsVal
}

func TestClosedLoopValidation(t *testing.T) {
	if _, err := (&ClosedLoop{}).Run([]float64{1}); err == nil {
		t.Fatal("nil controller accepted")
	}
	ctrl, err := core.NewController(core.DefaultConfig(), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	cl := &ClosedLoop{Controller: ctrl, Models: make([]*har.Model, 2)}
	if _, err := cl.Run([]float64{1}); err == nil {
		t.Fatal("model/DP count mismatch accepted")
	}
}

func TestClosedLoopPlanOnly(t *testing.T) {
	ctrl, err := core.NewController(core.DefaultConfig(), 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	cl := &ClosedLoop{Controller: ctrl, ExecutionNoise: 0.03, Seed: 9}
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Run(tr.Hours[:72]) // three days
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 72 {
		t.Fatalf("%d outcomes", len(out))
	}
	active := 0.0
	for _, o := range out {
		if o.Battery < 0 || o.Battery > 50 {
			t.Fatalf("battery %v out of bounds", o.Battery)
		}
		active += o.ActiveTime
	}
	if active <= 0 {
		t.Fatal("device never active across three September days")
	}
}

func TestClosedLoopRealizedAccuracyTracksExpected(t *testing.T) {
	// The headline validation: the realized accuracy measured by pushing
	// live synthetic windows through the trained classifiers must track
	// the LP's expected accuracy within a few points (it cannot do so
	// exactly: the LP uses test-split accuracies, the live stream has a
	// uniform activity mix).
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	ds, chars := trainedFive(t)
	cfg := har.CoreConfig(chars, 1)
	ctrl, err := core.NewController(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	models := make([]*har.Model, len(chars))
	for i := range chars {
		models[i] = chars[i].Model
	}
	cl := &ClosedLoop{
		Controller:     ctrl,
		Models:         models,
		Users:          ds.Users,
		WindowsPerHour: 60,
		Seed:           13,
	}
	// Budgets that keep the device fully active on various DP mixes.
	budgets := []float64{5, 6, 7, 8, 9, 10, 5, 6, 7, 8, 9, 10}
	out, err := cl.Run(budgets)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.ActiveTime <= 0 {
			t.Fatalf("hour %d inactive at budget %v", i, budgets[i])
		}
		diff := o.RealizedAccuracy - o.ExpectedAccuracy
		if diff > 0.10 || diff < -0.10 {
			t.Errorf("hour %d: realized %0.3f vs expected %0.3f (gap %0.3f)",
				i, o.RealizedAccuracy, o.ExpectedAccuracy, diff)
		}
	}
}

func TestClosedLoopSurvivesMonth(t *testing.T) {
	ctrl, err := core.NewController(core.DefaultConfig(), 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	cl := &ClosedLoop{Controller: ctrl, Seed: 5}
	tr, err := solar.September2015()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Run(tr.Hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(tr.Hours) {
		t.Fatal("length mismatch")
	}
	// Over a sunny month the device must be active most daylight hours.
	activeHours := 0
	for _, o := range out {
		if o.ActiveTime > 0 {
			activeHours++
		}
	}
	if activeHours < 200 {
		t.Fatalf("only %d active hours in September", activeHours)
	}
}
