// lookahead demonstrates the multi-hour planning extension: instead of
// optimizing each hour myopically against whatever the allocator hands it
// (the paper's REAP), the device plans a whole day jointly against a
// harvest forecast, banking midday surplus in the battery for the night.
// Compares greedy REAP, an EWMA-forecast receding-horizon planner, and a
// perfect-forecast oracle over a week of synthetic solar.
package main

import (
	"fmt"

	"repro"
	"repro/internal/device"
	"repro/internal/forecast"
	"repro/internal/solar"
)

func main() {
	tr, err := solar.September2015()
	if err != nil {
		panic(err)
	}
	week := tr.Hours[:168]
	cfg, err := reap.NewConfig()
	if err != nil {
		panic(err)
	}

	// Myopic greedy: each hour spends what it harvests.
	sim := &device.Simulator{Cfg: cfg}
	greedy, err := sim.Run(device.REAPPolicy{}, week)
	if err != nil {
		panic(err)
	}

	// Deployable: diurnal EWMA forecast + 24 h receding horizon.
	ew, err := forecast.NewEWMA(0.5)
	if err != nil {
		panic(err)
	}
	rhEWMA := &device.RecedingHorizon{Cfg: cfg, CapacityJ: 200, Horizon: 24, Forecast: ew}
	ewmaRun, err := rhEWMA.Run(week)
	if err != nil {
		panic(err)
	}

	// Upper bound: perfect forecast.
	rhOracle := &device.RecedingHorizon{
		Cfg: cfg, CapacityJ: 200, Horizon: 24,
		Forecast: &device.OracleForecaster{Trace: week},
	}
	oracleRun, err := rhOracle.Run(week)
	if err != nil {
		panic(err)
	}

	fmt.Println("one week of synthetic September solar, alpha = 1")
	fmt.Printf("%-28s %-12s %-10s\n", "planner", "mean E{a}", "active (h)")
	for _, r := range []*device.RunResult{greedy, ewmaRun, oracleRun} {
		name := r.Policy
		if r == greedy {
			name = "myopic greedy (paper)"
		} else if r == ewmaRun {
			name = "EWMA lookahead"
		} else {
			name = "oracle lookahead"
		}
		fmt.Printf("%-28s %-12.3f %-10.1f\n",
			name, r.MeanExpectedAccuracy(), r.TotalActiveTime()/3600)
	}

	// Show one day hour by hour: where the night activity comes from.
	fmt.Println("\nday 3, hour by hour (expected accuracy %):")
	fmt.Printf("%-6s %-10s %-10s %-10s %-10s\n", "hour", "harvest", "greedy", "ewma", "oracle")
	for h := 48; h < 72; h++ {
		fmt.Printf("%-6d %-10.2f %-10.1f %-10.1f %-10.1f\n",
			h-48, week[h],
			100*greedy.Hours[h].ExpectedAccuracy,
			100*ewmaRun.Hours[h].ExpectedAccuracy,
			100*oracleRun.Hours[h].ExpectedAccuracy)
	}
	fmt.Println("\nThe lookahead planners stay on after sunset by spending banked energy;")
	fmt.Println("greedy REAP goes dark the moment harvest stops.")
}
