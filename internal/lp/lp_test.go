package lp

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve returned error: %v\nproblem:\n%s", err, p)
	}
	return sol
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
	}{
		{"empty", Problem{}},
		{"width mismatch", Problem{
			Objective:   []float64{1, 2},
			Constraints: []Constraint{{Coeffs: []float64{1}, Op: LE, RHS: 1}},
		}},
		{"nan objective", Problem{Objective: []float64{math.NaN()}}},
		{"nan rhs", Problem{
			Objective:   []float64{1},
			Constraints: []Constraint{{Coeffs: []float64{1}, Op: LE, RHS: math.NaN()}},
		}},
		{"inf coeff", Problem{
			Objective:   []float64{1},
			Constraints: []Constraint{{Coeffs: []float64{math.Inf(1)}, Op: LE, RHS: 1}},
		}},
		{"bad op", Problem{
			Objective:   []float64{1},
			Constraints: []Constraint{{Coeffs: []float64{1}, Op: Op(42), RHS: 1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err == nil {
				t.Fatalf("Validate accepted invalid problem %q", tc.name)
			}
			if _, err := Solve(&tc.p); err == nil {
				t.Fatalf("Solve accepted invalid problem %q", tc.name)
			}
		})
	}
}

func TestSimpleLE(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6  -> x=4, y=0, obj=12.
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Op: LE, RHS: 6},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approx(sol.Objective, 12, 1e-7) {
		t.Fatalf("objective = %v, want 12", sol.Objective)
	}
	if !approx(sol.X[0], 4, 1e-7) || !approx(sol.X[1], 0, 1e-7) {
		t.Fatalf("x = %v, want [4 0]", sol.X)
	}
}

func TestClassicProductionLP(t *testing.T) {
	// max 5x + 4y s.t. 6x+4y<=24, x+2y<=6 -> x=3, y=1.5, obj=21.
	p := &Problem{
		Objective: []float64{5, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{6, 4}, Op: LE, RHS: 24},
			{Coeffs: []float64{1, 2}, Op: LE, RHS: 6},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 21, 1e-7) {
		t.Fatalf("got status=%v obj=%v, want optimal 21", sol.Status, sol.Objective)
	}
	if !approx(sol.X[0], 3, 1e-7) || !approx(sol.X[1], 1.5, 1e-7) {
		t.Fatalf("x = %v, want [3 1.5]", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + 2y s.t. x + y = 10, y <= 6 -> x=4, y=6, obj=16.
	p := &Problem{
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 10},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 6},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 16, 1e-7) {
		t.Fatalf("got status=%v obj=%v x=%v, want optimal 16", sol.Status, sol.Objective, sol.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// max -x - y s.t. x + y >= 3, x <= 5, y <= 5.
	// Optimum sits on x+y=3 with objective -3.
	p := &Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: GE, RHS: 3},
			{Coeffs: []float64{1, 0}, Op: LE, RHS: 5},
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 5},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, -3, 1e-7) {
		t.Fatalf("got status=%v obj=%v, want optimal -3", sol.Status, sol.Objective)
	}
	if !p.Feasible(sol.X, 1e-7) {
		t.Fatalf("solution %v infeasible", sol.X)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x - y <= -3 is x + y >= 3 in disguise.
	p := &Problem{
		Objective: []float64{-1, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{-1, -1}, Op: LE, RHS: -3},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, -3, 1e-7) {
		t.Fatalf("got status=%v obj=%v x=%v, want optimal -3 at [3 0]", sol.Status, sol.Objective, sol.X)
	}
	if !approx(sol.X[0], 3, 1e-7) {
		t.Fatalf("x = %v, want x0=3", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Op: GE, RHS: 5},
			{Coeffs: []float64{1}, Op: LE, RHS: 3},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 5},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 1}, Op: LE, RHS: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows leave a redundant artificial in the basis
	// after phase 1; the solver must still reach the optimum.
	p := &Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 4},
			{Coeffs: []float64{2, 2}, Op: EQ, RHS: 8},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 12, 1e-7) {
		t.Fatalf("got status=%v obj=%v x=%v, want optimal 12 at [0 4]", sol.Status, sol.Objective, sol.X)
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	p := &Problem{
		Objective: []float64{0.75, -150, 0.02, -6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Op: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Op: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Op: LE, RHS: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approx(sol.Objective, 0.05, 1e-7) {
		t.Fatalf("objective = %v, want 0.05", sol.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	p := &Problem{
		Objective: []float64{0, 0},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 1},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 0, 1e-12) {
		t.Fatalf("got status=%v obj=%v", sol.Status, sol.Objective)
	}
}

func TestIterationLimit(t *testing.T) {
	p := &Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Op: LE, RHS: 6},
		},
		MaxIter: 1,
	}
	sol := solveOK(t, p)
	if sol.Status != IterationLimit && sol.Status != Optimal {
		t.Fatalf("status = %v, want iteration-limit (or optimal if 1 pivot suffices)", sol.Status)
	}
}

func TestREAPShapedProblem(t *testing.T) {
	// The exact structure solved on-device: five design points plus an off
	// state, one time-equality, one energy budget. Paper's 5 J example:
	// optimal mix is DP4 for ~42% and DP5 for ~58% of the hour.
	const tp = 3600.0
	acc := []float64{0.94, 0.93, 0.92, 0.90, 0.76}
	pw := []float64{2.76e-3, 2.30e-3, 1.82e-3, 1.64e-3, 1.20e-3} // W
	const pOff = 50e-6
	budget := 5.0 // J

	obj := make([]float64, 6)
	timeRow := make([]float64, 6)
	energyRow := make([]float64, 6)
	for i := 0; i < 5; i++ {
		obj[i] = acc[i] / tp
		timeRow[i] = 1
		energyRow[i] = pw[i]
	}
	timeRow[5] = 1 // t_off
	energyRow[5] = pOff

	p := &Problem{
		Objective: obj,
		Constraints: []Constraint{
			{Coeffs: timeRow, Op: EQ, RHS: tp},
			{Coeffs: energyRow, Op: LE, RHS: budget},
		},
	}
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !p.Feasible(sol.X, 1e-6) {
		t.Fatalf("solution infeasible: %v", sol.X)
	}
	t4, t5 := sol.X[3], sol.X[4]
	if !approx(t4/tp, 0.42, 0.02) || !approx(t5/tp, 0.58, 0.02) {
		t.Fatalf("allocation DP4=%.1f%% DP5=%.1f%%, want ~42%%/58%%", 100*t4/tp, 100*t5/tp)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Op.String mismatch")
	}
	if Op(9).String() == "" || Status(9).String() == "" {
		t.Fatal("fallback strings empty")
	}
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterationLimit} {
		if s.String() == "" {
			t.Fatalf("empty string for status %d", int(s))
		}
	}
}

func TestProblemString(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, -2},
		Constraints: []Constraint{
			{Coeffs: []float64{0, 0}, Op: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Op: EQ, RHS: 2},
		},
	}
	s := p.String()
	if s == "" {
		t.Fatal("empty render")
	}
	// Zero row must render as "0", not an empty expression.
	if want := "0 <= 1"; !contains(s, want) {
		t.Fatalf("render %q missing %q", s, want)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFeasibleHelper(t *testing.T) {
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Op: LE, RHS: 2},
			{Coeffs: []float64{1, 0}, Op: GE, RHS: 0.5},
			{Coeffs: []float64{0, 1}, Op: EQ, RHS: 1},
		},
	}
	if !p.Feasible([]float64{1, 1}, 1e-9) {
		t.Fatal("feasible point rejected")
	}
	if p.Feasible([]float64{2, 1}, 1e-9) {
		t.Fatal("LE violation accepted")
	}
	if p.Feasible([]float64{0.1, 1}, 1e-9) {
		t.Fatal("GE violation accepted")
	}
	if p.Feasible([]float64{1, 0.5}, 1e-9) {
		t.Fatal("EQ violation accepted")
	}
	if p.Feasible([]float64{-0.1, 1}, 1e-9) {
		t.Fatal("negative variable accepted")
	}
	if p.Feasible([]float64{1}, 1e-9) {
		t.Fatal("wrong dimension accepted")
	}
}
