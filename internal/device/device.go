// Package device simulates the wearable prototype end to end: hour by
// hour it receives a harvesting budget, asks a policy (REAP or a static
// design point) for a schedule, executes the schedule — optionally pushing
// real synthetic sensor windows through the trained classifiers — and
// accounts for the energy actually consumed. It is the closed loop that
// the paper evaluates in Section 5.4.
package device

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Policy plans one activity period given the configuration and budget.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Plan returns the allocation for a period with the given budget (J).
	Plan(cfg core.Config, budget float64) (core.Allocation, error)
}

// REAPPolicy runs the paper's optimizer every period.
type REAPPolicy struct{}

// Name implements Policy.
func (REAPPolicy) Name() string { return "REAP" }

// Plan implements Policy.
func (REAPPolicy) Plan(cfg core.Config, budget float64) (core.Allocation, error) {
	return core.Solve(cfg, budget)
}

// StaticPolicy always runs one design point, duty-cycled against the off
// state — the baselines DP1..DP5 of Figures 5–7. It also embodies the
// on/off-only power management of the prior work the paper argues against
// (Section 2): two power states, no accuracy-aware mixing.
type StaticPolicy struct {
	// Index selects the design point in cfg.DPs.
	Index int
}

// Name implements Policy.
func (p StaticPolicy) Name() string { return fmt.Sprintf("DP%d", p.Index+1) }

// Plan implements Policy.
func (p StaticPolicy) Plan(cfg core.Config, budget float64) (core.Allocation, error) {
	if p.Index < 0 || p.Index >= len(cfg.DPs) {
		return core.Allocation{}, fmt.Errorf("device: static index %d outside 0..%d",
			p.Index, len(cfg.DPs)-1)
	}
	return core.StaticAllocation(cfg, p.Index, budget), nil
}

// OraclePolicy solves with the enumeration solver; used in tests to
// validate that the simulator is solver-agnostic.
type OraclePolicy struct{}

// Name implements Policy.
func (OraclePolicy) Name() string { return "oracle" }

// Plan implements Policy.
func (OraclePolicy) Plan(cfg core.Config, budget float64) (core.Allocation, error) {
	return core.SolveEnumerate(cfg, budget)
}

// HourRecord is the outcome of one simulated activity period.
type HourRecord struct {
	// Budget is the energy made available to the period.
	Budget float64
	// Alloc is the planned schedule.
	Alloc core.Allocation
	// Consumed is the energy actually drawn (planned energy plus
	// execution noise).
	Consumed float64
	// ExpectedAccuracy, ActiveTime and Objective evaluate the plan.
	ExpectedAccuracy float64
	ActiveTime       float64
	Objective        float64
	// Region classifies the budget.
	Region core.Region
}

// RunResult aggregates a simulated horizon.
type RunResult struct {
	Policy string
	Hours  []HourRecord
}

// MeanObjective averages J(t) over all hours.
func (r *RunResult) MeanObjective() float64 {
	if len(r.Hours) == 0 {
		return 0
	}
	var s float64
	for _, h := range r.Hours {
		s += h.Objective
	}
	return s / float64(len(r.Hours))
}

// MeanExpectedAccuracy averages E{a} over all hours.
func (r *RunResult) MeanExpectedAccuracy() float64 {
	if len(r.Hours) == 0 {
		return 0
	}
	var s float64
	for _, h := range r.Hours {
		s += h.ExpectedAccuracy
	}
	return s / float64(len(r.Hours))
}

// TotalActiveTime sums active seconds over the horizon.
func (r *RunResult) TotalActiveTime() float64 {
	var s float64
	for _, h := range r.Hours {
		s += h.ActiveTime
	}
	return s
}

// TotalConsumed sums the energy drawn over the horizon.
func (r *RunResult) TotalConsumed() float64 {
	var s float64
	for _, h := range r.Hours {
		s += h.Consumed
	}
	return s
}

// Simulator executes policies against an hourly budget sequence.
type Simulator struct {
	// Cfg is the REAP configuration (period, off power, alpha, DPs).
	Cfg core.Config
	// ExecutionNoise is the relative standard deviation of actual-vs-
	// planned consumption (strap slip, BLE retries, clock drift). Zero
	// disables it.
	ExecutionNoise float64
	// Seed drives the execution noise.
	Seed int64
}

// Run simulates the policy over the budget sequence. Budgets are taken as
// produced by an allocator (harvest + battery smoothing happen upstream).
func (s *Simulator) Run(p Policy, budgets []float64) (*RunResult, error) {
	if err := s.Cfg.Validate(); err != nil {
		return nil, err
	}
	if s.ExecutionNoise < 0 || s.ExecutionNoise > 0.5 || math.IsNaN(s.ExecutionNoise) {
		return nil, fmt.Errorf("device: execution noise %v outside [0, 0.5]", s.ExecutionNoise)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	res := &RunResult{Policy: p.Name()}
	for _, budget := range budgets {
		alloc, err := p.Plan(s.Cfg, budget)
		if err != nil {
			return nil, err
		}
		planned := alloc.Energy(s.Cfg)
		consumed := planned
		if s.ExecutionNoise > 0 {
			consumed = planned * (1 + rng.NormFloat64()*s.ExecutionNoise)
			if consumed < 0 {
				consumed = 0
			}
		}
		res.Hours = append(res.Hours, HourRecord{
			Budget:           budget,
			Alloc:            alloc,
			Consumed:         consumed,
			ExpectedAccuracy: alloc.ExpectedAccuracy(s.Cfg),
			ActiveTime:       alloc.ActiveTime(),
			Objective:        alloc.Objective(s.Cfg),
			Region:           core.Classify(s.Cfg, budget),
		})
	}
	return res, nil
}
