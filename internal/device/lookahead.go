package device

import (
	"fmt"

	"repro/internal/core"
)

// Forecaster predicts future hourly harvests; internal/forecast.EWMA
// satisfies it, and OracleForecaster supplies perfect knowledge for
// upper-bound experiments.
type Forecaster interface {
	// Observe folds in the harvest of the hour that just elapsed.
	Observe(harvest float64) error
	// Predict returns the expected harvest for the next k hours.
	Predict(k int) []float64
}

// OracleForecaster returns the true future trace — the perfect-forecast
// upper bound for receding-horizon planning.
type OracleForecaster struct {
	Trace []float64
	pos   int
}

// Observe advances the oracle's clock (the value is already known).
func (o *OracleForecaster) Observe(float64) error {
	o.pos++
	return nil
}

// Predict returns the next k true values, zero-padded past the end.
func (o *OracleForecaster) Predict(k int) []float64 {
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		if o.pos+i < len(o.Trace) {
			out[i] = o.Trace[o.pos+i]
		}
	}
	return out
}

// RecedingHorizon runs the lookahead planner in closed loop: every hour it
// re-plans the next Horizon hours against the forecast, executes only the
// first hour against the true harvest, settles the battery, and feeds the
// observation back to the forecaster. With an oracle forecaster this is
// the paper's natural "what if the budget allocation layer saw the
// future" extension; with an EWMA forecaster it is deployable.
type RecedingHorizon struct {
	Cfg       core.Config
	CapacityJ float64
	BatteryJ  float64
	Horizon   int
	Forecast  Forecaster
}

// Run executes the policy over the true hourly harvest sequence and
// returns per-hour records (budgets are the planner's energy spend).
func (rh *RecedingHorizon) Run(harvest []float64) (*RunResult, error) {
	if err := rh.Cfg.Validate(); err != nil {
		return nil, err
	}
	if rh.Forecast == nil {
		return nil, fmt.Errorf("device: receding horizon needs a forecaster")
	}
	if rh.Horizon <= 0 {
		rh.Horizon = 24
	}
	if rh.CapacityJ < 0 || rh.BatteryJ < 0 || rh.BatteryJ > rh.CapacityJ+1e-9 {
		return nil, fmt.Errorf("device: battery state %v/%v invalid", rh.BatteryJ, rh.CapacityJ)
	}
	battery := rh.BatteryJ
	res := &RunResult{Policy: "lookahead"}
	for _, actual := range harvest {
		forecast := rh.Forecast.Predict(rh.Horizon)
		// The first planned hour uses the actual harvest (now known to
		// the harvesting circuitry as it arrives); later hours use the
		// forecast. This mirrors how the controller would experience it.
		if len(forecast) > 0 {
			forecast[0] = actual
		}
		plan, err := core.Lookahead(rh.Cfg, battery, rh.CapacityJ, forecast)
		if err != nil {
			return nil, err
		}
		alloc := plan.Allocations[0]
		spent := alloc.Energy(rh.Cfg)
		battery = battery + actual - spent
		if battery > rh.CapacityJ {
			battery = rh.CapacityJ
		}
		if battery < 0 {
			battery = 0
		}
		res.Hours = append(res.Hours, HourRecord{
			Budget:           actual,
			Alloc:            alloc,
			Consumed:         spent,
			ExpectedAccuracy: alloc.ExpectedAccuracy(rh.Cfg),
			ActiveTime:       alloc.ActiveTime(),
			Objective:        alloc.Objective(rh.Cfg),
			Region:           core.Classify(rh.Cfg, actual),
		})
		if err := rh.Forecast.Observe(actual); err != nil {
			return nil, err
		}
	}
	return res, nil
}
