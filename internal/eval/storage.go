package eval

import (
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/solar"
)

// StorageRow compares one storage architecture over the solar month.
type StorageRow struct {
	Name            string
	MeanAccuracy    float64
	ActiveHours     int
	LongestGapHours int
	MeanGapHours    float64
}

// StorageResult contrasts the two device classes of the paper's Section 2:
// capacitor-only intermittent devices (turn off when no energy arrives)
// and battery-backed devices (small reserve extends active time), both
// running REAP on the same September trace.
type StorageResult struct {
	Rows []StorageRow
}

// Storage runs the comparison.
func Storage(cfg core.Config) (*StorageResult, error) {
	cfg.Alpha = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := solar.September2015()
	if err != nil {
		return nil, err
	}
	res := &StorageResult{}

	// Capacitor-only intermittent device.
	inter := &device.IntermittentDevice{Cfg: cfg, Cap: device.DefaultCapacitor()}
	interRun, err := inter.Run(tr.Hours)
	if err != nil {
		return nil, err
	}
	res.addRun("capacitor only (intermittent class)", interRun)

	// Battery-backed controller at two reserve sizes.
	for _, batt := range []struct {
		name     string
		capacity float64
	}{
		{"20 J battery + controller", 20},
		{"100 J battery + controller", 100},
	} {
		ctl, err := core.NewController(cfg, batt.capacity/2, batt.capacity)
		if err != nil {
			return nil, err
		}
		cl := &device.ClosedLoop{Controller: ctl}
		outs, err := cl.Run(tr.Hours)
		if err != nil {
			return nil, err
		}
		run := &device.RunResult{Policy: batt.name}
		for _, o := range outs {
			run.Hours = append(run.Hours, o.HourRecord)
		}
		res.addRun(batt.name, run)
	}
	return res, nil
}

func (r *StorageResult) addRun(name string, run *device.RunResult) {
	gaps := device.ComputeGapStats(run)
	r.Rows = append(r.Rows, StorageRow{
		Name:            name,
		MeanAccuracy:    run.MeanExpectedAccuracy(),
		ActiveHours:     gaps.ActiveHours,
		LongestGapHours: gaps.LongestGapHours,
		MeanGapHours:    gaps.MeanGapHours,
	})
}

// Render prints the storage-architecture grid.
func (r *StorageResult) Render() string {
	t := &table{header: []string{
		"storage", "mean E{a}", "active(h)", "longest gap(h)", "mean gap(h)",
	}}
	for _, row := range r.Rows {
		t.add(row.Name, f3(row.MeanAccuracy),
			f1(float64(row.ActiveHours)), f1(float64(row.LongestGapHours)), f1(row.MeanGapHours))
	}
	return "Storage architectures: intermittent vs battery-backed REAP (September, alpha=1)\n" +
		t.String()
}
