package solar

import "math/rand"

// Sky is the coarse weather state of the Markov cloud model.
type Sky int

const (
	// Clear sky: near-full clear-sky irradiance.
	Clear Sky = iota
	// Partly cloudy: substantial, fluctuating attenuation.
	Partly
	// Overcast: heavy attenuation.
	Overcast
)

// String names the sky state.
func (s Sky) String() string {
	switch s {
	case Clear:
		return "clear"
	case Partly:
		return "partly"
	case Overcast:
		return "overcast"
	default:
		return "sky(?)"
	}
}

// weatherTransition is the hourly Markov transition matrix
// [from][to] over {Clear, Partly, Overcast}. Rows sum to 1. The values
// favour persistence, matching the hour-scale autocorrelation of real
// irradiance records.
var weatherTransition = [3][3]float64{
	{0.82, 0.15, 0.03},
	{0.25, 0.55, 0.20},
	{0.10, 0.35, 0.55},
}

// attenuation returns the fraction of clear-sky irradiance that reaches
// the panel under the given sky, with within-state variation.
func attenuation(s Sky, rng *rand.Rand) float64 {
	switch s {
	case Clear:
		return 0.92 + rng.Float64()*0.08
	case Partly:
		return 0.40 + rng.Float64()*0.40
	default:
		return 0.08 + rng.Float64()*0.25
	}
}

// Weather is a seeded Markov cloud process. The zero value is not usable;
// construct with NewWeather.
type Weather struct {
	state Sky
	rng   *rand.Rand
}

// NewWeather creates a cloud process with the given seed. The initial
// state is drawn from the approximate stationary distribution.
func NewWeather(seed int64) *Weather {
	rng := rand.New(rand.NewSource(seed))
	w := &Weather{rng: rng}
	r := rng.Float64()
	switch {
	case r < 0.55:
		w.state = Clear
	case r < 0.85:
		w.state = Partly
	default:
		w.state = Overcast
	}
	return w
}

// Step advances one hour and returns the new sky state and its
// attenuation factor.
func (w *Weather) Step() (Sky, float64) {
	r := w.rng.Float64()
	row := weatherTransition[w.state]
	switch {
	case r < row[0]:
		w.state = Clear
	case r < row[0]+row[1]:
		w.state = Partly
	default:
		w.state = Overcast
	}
	return w.state, attenuation(w.state, w.rng)
}

// State returns the current sky state without advancing.
func (w *Weather) State() Sky { return w.state }
