package reap

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestWithDeviceOverride(t *testing.T) {
	fleet, err := NewFleet(4,
		WithAlpha(1),
		WithBattery(10, 50),
		WithDeviceOverride(func(i int) []Option {
			if i%2 == 1 {
				return []Option{WithAlpha(2), WithBattery(20, 100)}
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		dev, err := fleet.Device(i)
		if err != nil {
			t.Fatal(err)
		}
		wantAlpha, wantBattery := 1.0, 10.0
		if i%2 == 1 {
			wantAlpha, wantBattery = 2, 20
		}
		if got := dev.Config().Alpha; got != wantAlpha {
			t.Errorf("device %d alpha %v, want %v", i, got, wantAlpha)
		}
		if got := dev.Battery(); got != wantBattery {
			t.Errorf("device %d battery %v, want %v", i, got, wantBattery)
		}
	}
}

func TestWithDeviceOverrideErrors(t *testing.T) {
	if _, err := NewFleet(1, WithDeviceOverride(nil)); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil override: %v", err)
	}
	_, err := NewFleet(3, WithDeviceOverride(func(i int) []Option {
		if i == 2 {
			return []Option{WithBattery(-1, 10)}
		}
		return nil
	}))
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("bad per-device option: %v", err)
	}
	if err == nil || err.Error()[:8] != "device 2" {
		t.Fatalf("error %v does not name the failing device", err)
	}
}

// recordedLoop implements HarvestSource and ConsumptionModel for
// Fleet.Run tests: fixed budgets, consumption equal to plan.
type recordedLoop struct {
	budget float64
	cfg    Config
	failAt int // step whose Budgets call fails; -1 for never
}

func (r *recordedLoop) Budgets(step int, dst []float64) error {
	if step == r.failAt {
		return fmt.Errorf("harvest offline")
	}
	for i := range dst {
		dst[i] = r.budget
	}
	return nil
}

func (r *recordedLoop) Consumed(_ int, allocs []Allocation, dst []float64) error {
	for i := range dst {
		dst[i] = allocs[i].Energy(r.cfg)
	}
	return nil
}

func TestFleetRun(t *testing.T) {
	fleet, err := NewFleet(3, WithoutSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	loop := &recordedLoop{budget: 5, cfg: DefaultConfig(), failAt: -1}
	var steps []int
	err = fleet.Run(context.Background(), 4, loop, loop,
		func(step int, budgets []float64, allocs []Allocation, consumed []float64) error {
			steps = append(steps, step)
			if len(budgets) != 3 || len(allocs) != 3 || len(consumed) != 3 {
				t.Fatalf("step %d: slice lengths %d/%d/%d", step, len(budgets), len(allocs), len(consumed))
			}
			if consumed[0] != allocs[0].Energy(loop.cfg) {
				t.Fatalf("step %d: consumption not from the model", step)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4 || steps[0] != 0 || steps[3] != 3 {
		t.Fatalf("observer saw steps %v, want [0 1 2 3]", steps)
	}
	dev, err := fleet.Device(0)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Steps() != 4 {
		t.Fatalf("device stepped %d times, want 4", dev.Steps())
	}
}

func TestFleetRunErrors(t *testing.T) {
	fleet, err := NewFleet(2, WithoutSolveCache())
	if err != nil {
		t.Fatal(err)
	}
	loop := &recordedLoop{budget: 5, cfg: DefaultConfig(), failAt: 2}
	err = fleet.Run(context.Background(), 5, loop, loop, nil)
	if err == nil || err.Error()[:6] != "step 2" {
		t.Fatalf("source failure: %v", err)
	}
	if dev, _ := fleet.Device(0); dev.Steps() != 2 {
		t.Fatalf("run continued past the failing step: %d steps", dev.Steps())
	}
	if err := fleet.Run(context.Background(), 1, nil, loop, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil source: %v", err)
	}
	if err := fleet.Run(context.Background(), 1, loop, nil, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil model: %v", err)
	}
	if err := fleet.Run(context.Background(), -1, loop, loop, nil); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("negative steps: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	loop2 := &recordedLoop{budget: 5, cfg: DefaultConfig(), failAt: -1}
	if err := fleet.Run(ctx, 3, loop2, loop2, nil); err == nil {
		t.Fatal("cancelled Run reported success")
	}
}
