package device

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Segment is one contiguous stretch of the hour spent in a single state.
type Segment struct {
	// DP is the design-point index, or -1 for the off state.
	DP int
	// Start and Duration are in seconds from the period start.
	Start, Duration float64
}

// Switching-cost constants: changing design points reconfigures sensors
// (accelerometer power-up and settling) and reloads classifier weights.
// The LP ignores these; Schedule prices them so the error of that
// simplification can be measured.
const (
	// SwitchTime is the dead time per design-point switch (sensor
	// power-up + reconfiguration), during which no activity is observed.
	SwitchTime = 0.05
	// SwitchEnergy is the energy per switch (accelerometer startup
	// transient plus MCU reconfiguration).
	SwitchEnergy = 0.5e-3
)

// Schedule realizes an Allocation as an ordered segment list. Because an
// optimal basic solution mixes at most two design points plus off, block
// scheduling needs at most two switches per hour; the order runs the
// higher-power design point first (while the hour's harvest is typically
// still arriving) and off last.
type Schedule struct {
	Segments []Segment
	// Switches is the number of state changes (including into off).
	Switches int
	// OverheadEnergy and OverheadTime price the switches.
	OverheadEnergy float64
	OverheadTime   float64
}

// BuildSchedule converts an allocation into segments with switching
// overhead. The overhead time is charged against the largest segment so
// the period total is preserved.
func BuildSchedule(cfg core.Config, a core.Allocation) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(a.Active) != len(cfg.DPs) {
		return nil, fmt.Errorf("device: allocation width %d for %d design points",
			len(a.Active), len(cfg.DPs))
	}
	s := &Schedule{}
	// Collect active states, highest power first.
	type block struct {
		dp  int
		dur float64
	}
	var blocks []block
	for i, t := range a.Active {
		if t > 1e-9 {
			blocks = append(blocks, block{i, t})
		}
	}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			if cfg.DPs[blocks[j].dp].Power > cfg.DPs[blocks[i].dp].Power {
				blocks[i], blocks[j] = blocks[j], blocks[i]
			}
		}
	}
	if a.Off+a.Dead > 1e-9 {
		blocks = append(blocks, block{-1, a.Off + a.Dead})
	}
	if len(blocks) == 0 {
		return s, nil
	}
	s.Switches = len(blocks) - 1
	s.OverheadEnergy = float64(s.Switches) * SwitchEnergy
	s.OverheadTime = float64(s.Switches) * SwitchTime

	// Charge the switch dead time to the longest block.
	longest := 0
	for i := range blocks {
		if blocks[i].dur > blocks[longest].dur {
			longest = i
		}
	}
	blocks[longest].dur -= s.OverheadTime
	if blocks[longest].dur < 0 {
		return nil, fmt.Errorf("device: switching overhead %v exceeds the longest block", s.OverheadTime)
	}
	at := 0.0
	for _, b := range blocks {
		s.Segments = append(s.Segments, Segment{DP: b.dp, Start: at, Duration: b.dur})
		at += b.dur + SwitchTime
	}
	// The trailing switch slot does not exist; clamp bookkeeping.
	return s, nil
}

// Energy prices the schedule including switching overhead.
func (s *Schedule) Energy(cfg core.Config) float64 {
	total := s.OverheadEnergy
	for _, seg := range s.Segments {
		if seg.DP >= 0 {
			total += cfg.DPs[seg.DP].Power * seg.Duration
		} else {
			total += cfg.POff * seg.Duration
		}
	}
	return total
}

// ActiveTime is the observing time (switch dead time excluded).
func (s *Schedule) ActiveTime() float64 {
	var t float64
	for _, seg := range s.Segments {
		if seg.DP >= 0 {
			t += seg.Duration
		}
	}
	return t
}

// OverheadFraction compares the schedule's switching cost to a fine-
// grained interleaving that switches every interleaveSeconds (e.g. a
// naive per-activity-window round robin at 1.6 s): it returns the energy
// overhead of both as fractions of the allocation's LP energy. This is
// the block-scheduling ablation: the LP's "switching is free" assumption
// is safe for block schedules (two switches/hour) and catastrophic for
// naive interleaving.
func OverheadFraction(cfg core.Config, a core.Allocation, interleaveSeconds float64) (block, interleaved float64, err error) {
	if interleaveSeconds <= 0 {
		return 0, 0, fmt.Errorf("device: interleave period %v must be positive", interleaveSeconds)
	}
	s, err := BuildSchedule(cfg, a)
	if err != nil {
		return 0, 0, err
	}
	lpEnergy := a.Energy(cfg)
	if lpEnergy <= 0 {
		return 0, 0, nil
	}
	block = s.OverheadEnergy / lpEnergy

	// Fine-grained interleaving: every interleave slot that changes state
	// pays a switch. With k active states sharing the hour uniformly, a
	// fraction (k-1)/k of slot boundaries switch (plus off boundaries).
	states := 0
	for _, t := range a.Active {
		if t > 1e-9 {
			states++
		}
	}
	if a.Off+a.Dead > 1e-9 {
		states++
	}
	if states <= 1 {
		return block, 0, nil
	}
	slots := math.Floor(cfg.Period / interleaveSeconds)
	switches := slots * float64(states-1) / float64(states)
	interleaved = switches * SwitchEnergy / lpEnergy
	return block, interleaved, nil
}
