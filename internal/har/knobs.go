package har

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/nn"
)

// DesignPointSpec is one complete configuration from the knob space of
// Figure 2: sensing, features and classifier structure.
type DesignPointSpec struct {
	// Name identifies the spec; the paper's five Pareto points keep their
	// published names DP1..DP5.
	Name string
	// Features fixes the sensing and feature knobs.
	Features FeatureConfig
	// Hidden is the classifier's hidden-layer widths; nil means a single
	// softmax layer (the paper's "4×7" structure).
	Hidden []int
	// Quantized selects int8 post-training quantization of the trained
	// classifier, priced at the native-MAC rate (extension).
	Quantized bool
}

// NNSizes returns the full layer-size spec for the classifier.
func (s DesignPointSpec) NNSizes() []int {
	sizes := []int{s.Features.Dim()}
	sizes = append(sizes, s.Hidden...)
	return append(sizes, NumClasses)
}

// NumClasses is the activity-class count (six activities + transition).
const NumClasses = 7

// MACs returns the classifier's multiply-accumulate count.
func (s DesignPointSpec) MACs() int {
	sizes := s.NNSizes()
	total := 0
	for i := 0; i+1 < len(sizes); i++ {
		total += sizes[i] * sizes[i+1]
	}
	return total
}

// EnergyProfile maps the spec onto the component energy model.
func (s DesignPointSpec) EnergyProfile() energy.Profile {
	p := energy.Profile{
		AccelAxes:       s.Features.Axes.Count(),
		SensingFraction: s.Features.SensingFraction,
		AccelDWT:        s.Features.AccelFeat == AccelDWT,
		StretchFFT:      s.Features.StretchFeat == StretchFFT16,
		StretchStats:    s.Features.StretchFeat == StretchStats,
		NNMACs:          s.MACs(),
		QuantizedNN:     s.Quantized,
		TxBytes:         energy.LabelBytes,
	}
	if s.Features.StretchFeat == StretchGoertzel6 {
		p.StretchGoertzelBins = goertzelBins
	}
	return p
}

// String renders the spec compactly.
func (s DesignPointSpec) String() string {
	return fmt.Sprintf("%s{axes:%s sense:%.0f%% accel:%v stretch:%v nn:%v}",
		s.Name, s.Features.Axes, 100*s.Features.SensingFraction,
		s.Features.AccelFeat, s.Features.StretchFeat, s.NNSizes())
}

// withStretchFFT builds the common feature shape of the published points.
func withStretchFFT(axes AxesMask, fraction float64) FeatureConfig {
	accel := AccelStats
	if axes == AxesNone {
		accel = AccelNone
		fraction = 0
	}
	return FeatureConfig{
		Axes:            axes,
		SensingFraction: fraction,
		AccelFeat:       accel,
		StretchFeat:     StretchFFT16,
	}
}

// PaperFive returns the five Pareto-optimal design points of Table 2.
func PaperFive() []DesignPointSpec {
	return []DesignPointSpec{
		{Name: "DP1", Features: withStretchFFT(AxesAll, 1.0), Hidden: []int{12}},
		{Name: "DP2", Features: withStretchFFT(AxisY, 1.0), Hidden: []int{12}},
		{Name: "DP3", Features: withStretchFFT(AxesXY, 0.5), Hidden: []int{12}},
		{Name: "DP4", Features: withStretchFFT(AxisY, 0.375), Hidden: []int{12}},
		{Name: "DP5", Features: withStretchFFT(AxesNone, 0), Hidden: []int{12}},
	}
}

// AllSpecs returns the full 24-point design space the paper implemented on
// the prototype: the five published points plus nineteen further
// combinations of the Figure 2 knobs (sensing-period sweeps, wavelet
// features, smaller classifiers, single-sensor variants). The published
// five appear first.
func AllSpecs() []DesignPointSpec {
	specs := PaperFive()
	add := func(name string, f FeatureConfig, hidden []int) {
		specs = append(specs, DesignPointSpec{Name: name, Features: f, Hidden: hidden})
	}

	// Sensing-period sweep on all axes.
	add("xyz-75", withStretchFFT(AxesAll, 0.75), []int{12})
	add("xyz-50", withStretchFFT(AxesAll, 0.5), []int{12})
	// Sensing-period sweep on x+y.
	add("xy-100", withStretchFFT(AxesXY, 1.0), []int{12})
	add("xy-75", withStretchFFT(AxesXY, 0.75), []int{12})
	add("xy-37", withStretchFFT(AxesXY, 0.375), []int{12})
	// Sensing-period sweep on y alone.
	add("y-75", withStretchFFT(AxisY, 0.75), []int{12})
	add("y-50", withStretchFFT(AxisY, 0.5), []int{12})
	// Wavelet feature family.
	add("xyz-dwt", FeatureConfig{Axes: AxesAll, SensingFraction: 1,
		AccelFeat: AccelDWT, StretchFeat: StretchFFT16}, []int{12})
	add("y-dwt", FeatureConfig{Axes: AxisY, SensingFraction: 1,
		AccelFeat: AccelDWT, StretchFeat: StretchFFT16}, []int{12})
	// Smaller classifiers (the paper's 4×8×7 and 4×7 structures).
	add("xyz-nn8", withStretchFFT(AxesAll, 1.0), []int{8})
	add("xyz-nn0", withStretchFFT(AxesAll, 1.0), nil)
	add("y-nn8", withStretchFFT(AxisY, 1.0), []int{8})
	add("y-nn0", withStretchFFT(AxisY, 1.0), nil)
	add("stretch-nn8", withStretchFFT(AxesNone, 0), []int{8})
	add("stretch-nn0", withStretchFFT(AxesNone, 0), nil)
	// Statistical stretch features instead of the FFT.
	add("stretch-stats", FeatureConfig{StretchFeat: StretchStats}, []int{12})
	// Alternative axis pair.
	add("xz-100", withStretchFFT(AxisX|AxisZ, 1.0), []int{12})
	// Accelerometer without the stretch sensor.
	add("xyz-nostretch", FeatureConfig{Axes: AxesAll, SensingFraction: 1,
		AccelFeat: AccelStats, StretchFeat: StretchNone}, []int{12})
	add("y-nostretch", FeatureConfig{Axes: AxisY, SensingFraction: 1,
		AccelFeat: AccelStats, StretchFeat: StretchNone}, []int{12})

	return specs
}

// ExtendedSpecs returns the design points beyond the paper's 24: the five
// published points with int8-quantized classifiers, and partial-spectrum
// Goertzel variants of the stretch-heavy points. These exercise the two
// extension knobs (precision, spectrum width) the paper's Figure 2 does
// not include.
func ExtendedSpecs() []DesignPointSpec {
	var specs []DesignPointSpec
	for _, s := range PaperFive() {
		q := s
		q.Name = s.Name + "-int8"
		q.Quantized = true
		specs = append(specs, q)
	}
	gz := func(name string, axes AxesMask, fraction float64) DesignPointSpec {
		f := withStretchFFT(axes, fraction)
		f.StretchFeat = StretchGoertzel6
		return DesignPointSpec{Name: name, Features: f, Hidden: []int{12}}
	}
	specs = append(specs,
		gz("DP2-gz6", AxisY, 1.0),
		gz("DP5-gz6", AxesNone, 0),
	)
	return specs
}

// TrainSpec fixes the training hyper-parameters shared by every design
// point, so accuracy differences come from the knobs, not the tuning.
func TrainSpec() nn.TrainConfig {
	return nn.TrainConfig{
		Epochs:       80,
		BatchSize:    32,
		LearningRate: 0.08,
		Momentum:     0.9,
		WeightDecay:  1e-4,
		Seed:         97,
		Patience:     12,
	}
}
