package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	reap "repro"
	"repro/wire"
)

func init() {
	// A deterministic way to exercise the infeasible → 422 path: the
	// stateless solve endpoints accept any budget ≥ 0 on the real
	// backends, so infeasibility must come from a backend that produces
	// it.
	err := reap.RegisterSolver("svc-test-infeasible",
		reap.SolverFunc(func(ctx context.Context, cfg reap.Config, budget float64) (reap.Allocation, error) {
			return reap.Allocation{}, fmt.Errorf("svc test: %w", reap.ErrInfeasible)
		}))
	if err != nil {
		panic(err)
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Devices == 0 {
		cfg.Devices = 16
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

// do sends one request through the service handler. body is marshalled
// unless it is already a []byte (raw payloads for malformed-input
// cases).
func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var raw []byte
	switch b := body.(type) {
	case nil:
	case []byte:
		raw = b
	default:
		var err error
		if raw, err = json.Marshal(b); err != nil {
			t.Fatalf("marshal request: %v", err)
		}
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeErrCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var resp wire.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding error response %q: %v", rec.Body.String(), err)
	}
	return resp.Error.Code
}

func TestSolveHappyPath(t *testing.T) {
	svc := newTestService(t, Config{})
	h := svc.Handler()

	rec := do(t, h, http.MethodPost, "/v1/solve", &wire.SolveRequest{V: wire.Version, BudgetJ: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp wire.SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.V != wire.Version {
		t.Errorf("response v = %d, want %d", resp.V, wire.Version)
	}
	if resp.EnergyJ > 5+1e-9 {
		t.Errorf("allocation spends %.6f J over the 5 J budget", resp.EnergyJ)
	}
	if resp.ExpectedAccuracy <= 0 {
		t.Errorf("expected accuracy %.6f, want positive for a mid-range budget", resp.ExpectedAccuracy)
	}
	cfg := (*wire.Config)(nil).ToReap()
	var total float64
	for _, a := range resp.Allocation.ActiveS {
		total += a
	}
	total += resp.Allocation.OffS + resp.Allocation.DeadS
	if diff := total - cfg.Period; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("allocation covers %.9f s of a %.1f s period", total, cfg.Period)
	}
	if got := svc.Stats().Solves; got != 1 {
		t.Errorf("stats solves = %d, want 1", got)
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	svc := newTestService(t, Config{})
	h := svc.Handler()

	cases := []struct {
		name     string
		body     any
		wantCode string
	}{
		{"malformed_json", []byte(`{"v":1,`), wire.CodeMalformed},
		{"unknown_field", []byte(`{"v":1,"budget_j":1,"bogus":true}`), wire.CodeMalformed},
		{"trailing_data", []byte(`{"v":1,"budget_j":1}{"again":true}`), wire.CodeMalformed},
		{"unknown_version", &wire.SolveRequest{V: wire.Version + 7, BudgetJ: 1}, wire.CodeUnknownVersion},
		{"missing_version", []byte(`{"budget_j":1}`), wire.CodeUnknownVersion},
		{"negative_budget", &wire.SolveRequest{V: wire.Version, BudgetJ: -1}, wire.CodeBudgetNegative},
		{"unknown_solver", &wire.SolveRequest{V: wire.Version, BudgetJ: 1, Solver: "nope"}, wire.CodeUnknownSolver},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, h, http.MethodPost, "/v1/solve", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body)
			}
			if got := decodeErrCode(t, rec); got != tc.wantCode {
				t.Errorf("error code = %q, want %q", got, tc.wantCode)
			}
		})
	}
}

func TestSolveInfeasibleMapsTo422(t *testing.T) {
	svc := newTestService(t, Config{})
	rec := do(t, svc.Handler(), http.MethodPost, "/v1/solve",
		&wire.SolveRequest{V: wire.Version, BudgetJ: 1, Solver: "svc-test-infeasible"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body %s", rec.Code, rec.Body)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeInfeasible {
		t.Errorf("error code = %q, want %q", got, wire.CodeInfeasible)
	}
}

func TestBatchSolvePerItemResults(t *testing.T) {
	svc := newTestService(t, Config{})
	rec := do(t, svc.Handler(), http.MethodPost, "/v1/batch-solve", &wire.BatchSolveRequest{
		V: wire.Version,
		Items: []wire.SolveItem{
			{BudgetJ: 3},
			{BudgetJ: -1},
			{BudgetJ: 8},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp wire.BatchSolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	for _, i := range []int{0, 2} {
		if resp.Results[i].Solve == nil || resp.Results[i].Error != nil {
			t.Errorf("item %d: want a solve, got error %+v", i, resp.Results[i].Error)
		}
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != wire.CodeBudgetNegative {
		t.Errorf("item 1: want %s error, got %+v", wire.CodeBudgetNegative, resp.Results[1])
	}
	if got := svc.Stats().BatchItems; got != 3 {
		t.Errorf("stats batch items = %d, want 3", got)
	}
}

func TestReportEndpoint(t *testing.T) {
	svc := newTestService(t, Config{BatteryJ: 50, CapacityJ: 100})
	h := svc.Handler()

	rec := do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V:       wire.Version,
		Reports: []wire.DeviceReport{{Device: 0, ConsumedJ: 0.5}, {Device: 15, ConsumedJ: 0.25}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp wire.ReportResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Accepted != 2 {
		t.Errorf("accepted = %d, want 2", resp.Accepted)
	}

	rec = do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V:       wire.Version,
		Reports: []wire.DeviceReport{{Device: 16, ConsumedJ: 0.1}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range device: status = %d, want 400", rec.Code)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeUnknownDevice {
		t.Errorf("error code = %q, want %q", got, wire.CodeUnknownDevice)
	}
}

func TestTelemetryStream(t *testing.T) {
	svc := newTestService(t, Config{BatteryJ: 20, CapacityJ: 100})
	h := svc.Handler()

	harvest := 2.0
	consumed := 0.05
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	events := []wire.TelemetryEvent{
		{V: wire.Version, Device: 1, HarvestJ: &harvest},
		{V: wire.Version, Device: 2, ConsumedJ: &consumed, HarvestJ: &harvest},
	}
	for _, ev := range events {
		if err := enc.Encode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteString(`{"v":1,"device":3,"bogus":true}` + "\n") // malformed, stream must continue
	badDev := wire.TelemetryEvent{V: wire.Version, Device: 99, HarvestJ: &harvest}
	if err := enc.Encode(&badDev); err != nil {
		t.Fatal(err)
	}

	rec := do(t, h, http.MethodPost, "/v1/telemetry", buf.Bytes())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var results []wire.TelemetryResult
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var res wire.TelemetryResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("decoding result line %q: %v", sc.Text(), err)
		}
		results = append(results, res)
	}
	if len(results) != 4 {
		t.Fatalf("got %d result lines, want 4: %+v", len(results), results)
	}
	for i := range 2 {
		if results[i].Error != nil || results[i].Allocation == nil {
			t.Errorf("event %d: want allocation, got %+v", i, results[i])
		}
	}
	if results[2].Error == nil || results[2].Error.Code != wire.CodeMalformed {
		t.Errorf("malformed line: got %+v, want %s", results[2], wire.CodeMalformed)
	}
	if results[3].Error == nil || results[3].Error.Code != wire.CodeUnknownDevice {
		t.Errorf("unknown device: got %+v, want %s", results[3], wire.CodeUnknownDevice)
	}
	stats := svc.Stats()
	if stats.Steps != 2 || stats.Reports != 1 {
		t.Errorf("stats steps/reports = %d/%d, want 2/1", stats.Steps, stats.Reports)
	}
}

func TestRateLimitRefusesWithRetryAfter(t *testing.T) {
	svc := newTestService(t, Config{RatePerSec: 1, Burst: 2})
	h := svc.Handler()

	for i := range 2 {
		rec := do(t, h, http.MethodPost, "/v1/solve", &wire.SolveRequest{V: wire.Version, BudgetJ: 1})
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d within burst: status = %d, body %s", i, rec.Code, rec.Body)
		}
	}
	rec := do(t, h, http.MethodPost, "/v1/solve", &wire.SolveRequest{V: wire.Version, BudgetJ: 1})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over burst: status = %d, want 429; body %s", rec.Code, rec.Body)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeRateLimited {
		t.Errorf("error code = %q, want %q", got, wire.CodeRateLimited)
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a whole number of seconds ≥ 1", rec.Header().Get("Retry-After"))
	}
	if got := svc.Stats().RateLimited; got != 1 {
		t.Errorf("stats rate limited = %d, want 1", got)
	}

	// Tenants are isolated: a fresh tenant has its own bucket.
	req := httptest.NewRequest(http.MethodPost, "/v1/solve",
		bytes.NewReader(mustMarshal(t, &wire.SolveRequest{V: wire.Version, BudgetJ: 1})))
	req.Header.Set("X-Tenant", "other")
	other := httptest.NewRecorder()
	h.ServeHTTP(other, req)
	if other.Code != http.StatusOK {
		t.Errorf("fresh tenant: status = %d, want 200", other.Code)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestBatchChargesPerItem(t *testing.T) {
	svc := newTestService(t, Config{RatePerSec: 1, Burst: 4})
	h := svc.Handler()

	batch := func(n int) *httptest.ResponseRecorder {
		items := make([]wire.SolveItem, n)
		for i := range items {
			items[i].BudgetJ = 1
		}
		return do(t, h, http.MethodPost, "/v1/batch-solve", &wire.BatchSolveRequest{V: wire.Version, Items: items})
	}
	if rec := batch(4); rec.Code != http.StatusOK {
		t.Fatalf("batch within burst: status = %d, body %s", rec.Code, rec.Body)
	}
	if rec := batch(2); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch over burst: status = %d, want 429", rec.Code)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	svc := newTestService(t, Config{})
	h := svc.Handler()
	svc.Drain()

	rec := do(t, h, http.MethodPost, "/v1/solve", &wire.SolveRequest{V: wire.Version, BudgetJ: 1})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: status = %d, want 503", rec.Code)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeDraining {
		t.Errorf("error code = %q, want %q", got, wire.CodeDraining)
	}
	if rec := do(t, h, http.MethodGet, "/healthz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status = %d, want 503", rec.Code)
	}
	if !svc.Stats().Draining {
		t.Error("stats draining = false after Drain")
	}
}

// TestServerDrainWaitsForInFlight pins the SIGTERM semantics end to end
// over a real listener: a request already past admission completes with
// 200 while Drain is underway, Drain returns only after it finishes,
// and the listener is closed afterwards.
func TestServerDrainWaitsForInFlight(t *testing.T) {
	svc := newTestService(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	svc.testHookSolve = func() {
		entered <- struct{}{}
		<-release
	}
	srv := NewServer(svc, "127.0.0.1:0")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	type result struct {
		status int
		err    error
	}
	clientDone := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+srv.Addr()+"/v1/solve", "application/json",
			bytes.NewReader(mustMarshal(t, &wire.SolveRequest{V: wire.Version, BudgetJ: 2})))
		if err != nil {
			clientDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		clientDone <- result{status: resp.StatusCode}
	}()

	<-entered // the request is in flight, holding inside the handler
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()

	// Drain must not complete while the request is held.
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if res := <-clientDone; res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight request: status %d, err %v; want 200", res.status, res.err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve after drain: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("listener still accepting connections after drain")
	}
}

// lineWriter is a ResponseWriter that hands each written NDJSON line to
// the test as it is produced — the handler-level stand-in for a
// streaming client. (Go's HTTP/1 transport cannot read a response while
// the request body is still open, so the mid-stream drain exchange is
// driven against the handler directly; the per-event flush behaviour
// over a real socket is what the reapload smoke run exercises.)
type lineWriter struct {
	header http.Header
	buf    bytes.Buffer
	lines  chan string
}

func newLineWriter() *lineWriter {
	return &lineWriter{header: make(http.Header), lines: make(chan string, 16)}
}

func (w *lineWriter) Header() http.Header { return w.header }
func (w *lineWriter) WriteHeader(int)     {}
func (w *lineWriter) Flush()              {}
func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	for {
		raw := w.buf.Bytes()
		i := bytes.IndexByte(raw, '\n')
		if i < 0 {
			return len(p), nil
		}
		w.lines <- string(raw[:i])
		w.buf.Next(i + 1)
	}
}

// TestTelemetryDrainFinishesCurrentEvent drains mid-stream and checks
// the contract: the event in flight is answered, then the handler
// closes the stream instead of abandoning the client or processing a
// backlog.
func TestTelemetryDrainFinishesCurrentEvent(t *testing.T) {
	svc := newTestService(t, Config{BatteryJ: 20, CapacityJ: 100})
	h := svc.Handler()

	pr, pw := io.Pipe()
	w := newLineWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/telemetry", pr))
	}()

	harvest := 1.5
	send := func(device int) {
		raw := mustMarshal(t, &wire.TelemetryEvent{V: wire.Version, Device: device, HarvestJ: &harvest})
		if _, err := pw.Write(append(raw, '\n')); err != nil {
			t.Fatalf("writing event: %v", err)
		}
	}
	readResult := func() wire.TelemetryResult {
		select {
		case line := <-w.lines:
			var res wire.TelemetryResult
			if err := json.Unmarshal([]byte(line), &res); err != nil {
				t.Fatalf("decoding %q: %v", line, err)
			}
			return res
		case <-time.After(10 * time.Second):
			t.Fatal("no result line")
			panic("unreachable")
		}
	}

	send(0)
	if res := readResult(); res.Error != nil || res.Allocation == nil {
		t.Fatalf("pre-drain event: %+v", res)
	}

	svc.Drain()

	// The next event was already accepted by the open stream: it must be
	// answered, after which the handler returns even though the request
	// body is still open — the "finish current event, then close"
	// contract SIGTERM relies on.
	send(1)
	if res := readResult(); res.Error != nil || res.Allocation == nil {
		t.Fatalf("in-flight event during drain: %+v", res)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler kept the stream open after drain")
	}
	pw.Close()

	// A fresh stream against the draining service is refused outright.
	rec := do(t, h, http.MethodPost, "/v1/telemetry", []byte(""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("new stream while draining: status = %d, want 503", rec.Code)
	}
}

func TestStatsDistinguishesNoCacheFromColdCache(t *testing.T) {
	planDirect := newTestService(t, Config{})
	if got := planDirect.Stats().Cache; got != nil {
		t.Errorf("plan-direct service reports cache stats %+v, want nil", got)
	}

	cached := newTestService(t, Config{CacheSize: 64, CacheResolutionJ: 0.001})
	stats := cached.Stats().Cache
	if stats == nil {
		t.Fatal("cached service reports nil cache stats, want cold (zero) stats")
	}
	if stats.Capacity != 64 || stats.Hits != 0 {
		t.Errorf("cold cache stats = %+v, want capacity 64 and zero hits", stats)
	}
}

func TestShardForCoversFleet(t *testing.T) {
	svc := newTestService(t, Config{Devices: 10, Shards: 3})
	for device := 0; device < 10; device++ {
		sh, err := svc.shardFor(device)
		if err != nil {
			t.Fatalf("device %d: %v", device, err)
		}
		local := device - sh.lo
		if _, err := sh.fleet.Device(local); err != nil {
			t.Errorf("device %d maps to shard-local %d: %v", device, local, err)
		}
	}
	for _, device := range []int{-1, 10, 1 << 20} {
		if _, err := svc.shardFor(device); err == nil {
			t.Errorf("device %d: want unknown-device error", device)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Devices: 0}); err == nil {
		t.Error("Devices=0: want error")
	}
	if _, err := New(Config{Devices: -3}); err == nil {
		t.Error("negative devices: want error")
	}
	if _, err := New(Config{Devices: 4, Solver: "no-such-backend"}); err == nil {
		t.Error("unknown solver: want error")
	}
}
