package service

import (
	"math"
	"reflect"
	"testing"

	"repro/wire"
)

func TestEventCodecRoundTrip(t *testing.T) {
	harvest := 1.5
	alpha := 0.25
	tiny := 5e-324 // smallest subnormal: raw-bits transport must not lose it
	cases := []struct {
		name string
		ev   journalEvent
	}{
		{"report", journalEvent{Op: opReport, Reports: []wire.DeviceReport{
			{Device: 0, ConsumedJ: 0.001},
			{Device: 300, ConsumedJ: tiny},
			{Device: 7, ConsumedJ: math.MaxFloat64},
		}}},
		{"report_empty", journalEvent{Op: opReport, Reports: []wire.DeviceReport{}}},
		{"step", journalEvent{Op: opStep, Device: 3, HarvestJ: &harvest}},
		{"step_device_zero", journalEvent{Op: opStep, Device: 0, HarvestJ: &harvest}},
		{"alpha", journalEvent{Op: opAlpha, Device: 1 << 20, Alpha: &alpha}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := encodeEvent(nil, &tc.ev)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := decodeEvent(payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(*got, tc.ev) {
				t.Errorf("round trip changed the event:\n got %+v\nwant %+v", *got, tc.ev)
			}
		})
	}
}

func TestEventCodecRejectsInvalid(t *testing.T) {
	harvest := 1.5
	valid, err := encodeEvent(nil, &journalEvent{Op: opStep, Device: 3, HarvestJ: &harvest})
	if err != nil {
		t.Fatal(err)
	}

	bad := map[string][]byte{
		"empty":          {},
		"format_only":    {evFormat},
		"unknown_format": {99, evStep},
		"unknown_op":     {evFormat, 99},
		"truncated":      valid[:len(valid)-3],
		"trailing":       append(append([]byte{}, valid...), 0),
		// Report count larger than the bytes that follow could carry.
		"implausible_count": {evFormat, evReport, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, payload := range bad {
		if ev, err := decodeEvent(payload); err == nil {
			t.Errorf("%s: decoded %+v, want error", name, ev)
		}
	}

	// Encoding refuses events that could not replay.
	for name, ev := range map[string]*journalEvent{
		"unknown_op":      {Op: "flush"},
		"step_no_harvest": {Op: opStep, Device: 1},
		"alpha_no_alpha":  {Op: opAlpha, Device: 1},
		"negative_device": {Op: opStep, Device: -1, HarvestJ: &harvest},
		"negative_report": {Op: opReport, Reports: []wire.DeviceReport{{Device: -2}}},
	} {
		if _, err := encodeEvent(nil, ev); err == nil {
			t.Errorf("encode %s: want error", name)
		}
	}
}
