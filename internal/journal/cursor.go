package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrNotReady reports that a cursor has consumed everything currently
// readable: the next event is not on disk yet. Retry after more
// appends land — for a replication stream this is the "caught up,
// switch to live shipping" signal.
var ErrNotReady = errors.New("journal: cursor: next event not yet on disk")

// ErrCompacted reports that the events a cursor needs are no longer
// retained on disk (or never existed). The only way forward is a
// snapshot bootstrap.
var ErrCompacted = errors.New("journal: cursor: events not retained")

// errSegmentEnd is the internal "nothing more in this file" signal:
// either the segment finished (a successor exists) or the active tail
// has not been written yet. Next disambiguates via segmentAt.
var errSegmentEnd = errors.New("journal: cursor: segment end")

// Cursor reads committed events back out of a Store's on-disk
// segments, starting after a given sequence number — the read side of
// journal shipping. It tolerates a concurrently-appending writer: a
// half-written tail record reads as ErrNotReady (never as data,
// thanks to the CRC), and rotation is followed by hopping to the
// successor segment. A Cursor is not safe for concurrent use; each
// replication stream owns one.
type Cursor struct {
	s    *Store
	seq  uint64 // events consumed; the next Next returns seq+1
	f    *os.File
	path string
	off  int64
}

// OpenCursor positions a cursor so its first Next returns event from+1.
// It fails with ErrCompacted when that event is no longer on disk or
// does not exist yet (a position beyond history means the reader
// diverged from this store and must bootstrap, not wait).
func (s *Store) OpenCursor(from uint64) (*Cursor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started || s.closed {
		return nil, fmt.Errorf("%w: cursor before Start or after Close", ErrClosed)
	}
	if from > s.seq {
		return nil, fmt.Errorf("%w: cursor at %d beyond history (seq %d)", ErrCompacted, from, s.seq)
	}
	if len(s.disk) == 0 || from < s.disk[0].start {
		return nil, fmt.Errorf("%w: cursor at %d predates oldest retained segment", ErrCompacted, from)
	}
	return &Cursor{s: s, seq: from}, nil
}

// Seq returns the cursor position: the sequence number of the last
// event returned by Next (or the starting position before any Next).
func (c *Cursor) Seq() uint64 { return c.seq }

// Close releases the open segment file, if any. The cursor may be
// reused after Close; the next Next reopens at the current position.
func (c *Cursor) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Next returns the next event payload and its sequence number.
// ErrNotReady means the event has not been appended (or fully written)
// yet; ErrCompacted means retention has removed it and the reader must
// re-bootstrap from a snapshot. Any other error is an I/O failure.
func (c *Cursor) Next() ([]byte, uint64, error) {
	for {
		if c.f == nil {
			if err := c.seek(); err != nil {
				return nil, 0, err
			}
		}
		payload, err := c.read()
		if err == nil {
			c.seq++
			return payload, c.seq, nil
		}
		if !errors.Is(err, errSegmentEnd) {
			return nil, 0, err
		}
		// End of the open file. If a successor segment starts exactly at
		// our position, rotation finished this one — hop. Otherwise the
		// tail is still being written (or, mid-segment, a record is only
		// partially visible): not ready yet.
		next, ok := c.s.segmentAt(c.seq)
		if !ok || next == c.path {
			return nil, 0, ErrNotReady
		}
		_ = c.f.Close()
		c.f = nil
		// Loop: seek reopens at c.seq, landing on the successor.
	}
}

// seek opens the segment containing event c.seq+1 and skips to it by
// hopping frame headers. A partially-written record encountered while
// skipping surfaces as ErrNotReady (the open is retried whole next
// call — skips are short and reopens rare).
func (c *Cursor) seek() error {
	path, start, ok := c.s.segmentContaining(c.seq)
	if !ok {
		return fmt.Errorf("%w: no segment holds event %d", ErrCompacted, c.seq+1)
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Removed by compaction between lookup and open.
			return fmt.Errorf("%w: segment for event %d removed", ErrCompacted, c.seq+1)
		}
		return fmt.Errorf("journal: cursor: %w", err)
	}
	var off int64
	var hdr [frameSize]byte
	for skip := c.seq - start; skip > 0; skip-- {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			_ = f.Close()
			return ErrNotReady
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n > MaxPayload {
			_ = f.Close()
			return ErrNotReady
		}
		off += int64(frameSize) + int64(n)
	}
	c.f, c.path, c.off = f, path, off
	return nil
}

// read attempts one framed record at the current offset. Anything
// short, torn or checksum-failed maps to errSegmentEnd: with a live
// writer those bytes may simply not all be visible yet, and the CRC
// guarantees a record is returned only when completely written.
func (c *Cursor) read() ([]byte, error) {
	var hdr [frameSize]byte
	if _, err := c.f.ReadAt(hdr[:], c.off); err != nil {
		return nil, errSegmentEnd
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxPayload {
		return nil, errSegmentEnd
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(c.f, c.off+frameSize, int64(n)), payload); err != nil {
		return nil, errSegmentEnd
	}
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, errSegmentEnd
	}
	c.off += int64(frameSize) + int64(n)
	return payload, nil
}
