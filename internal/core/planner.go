package core

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// Schedule is a multi-period schedule produced by the lookahead planner: one
// Allocation per hour plus the planned battery trajectory.
type Schedule struct {
	// Allocations holds one schedule per planned period.
	Allocations []Allocation
	// Battery holds the planned battery level at the START of each
	// period, plus one final entry for the end of the horizon.
	Battery []float64
	// Objective is the horizon-mean J(t).
	Objective float64
}

// Lookahead jointly optimizes K consecutive periods against a harvest
// forecast and a finite battery — the natural extension of the paper's
// myopic hourly LP (REAP re-optimizes each hour because "the available
// energy budget is not known at design time"; with a forecast, energy can
// be shifted across hours through the battery). The joint problem is still
// an LP:
//
//	maximize   (1/(K·TP)) Σ_k Σ_i aᵢ^α t[k,i]
//	subject to Σ_i t[k,i] + t_off[k] = TP                         ∀k
//	           b[k+1] = b[k] + h[k] − Σ_i Pᵢ t[k,i] − P_off t_off[k] ∀k
//	           0 ≤ b[k] ≤ capacity,  b[0] = battery0,  t ≥ 0
//
// Storage round-trip losses are not modelled (they would make the dynamics
// non-linear); DESIGN.md documents the simplification.
//
// Unlike the single-period LP, each hour also carries an explicit dead
// variable (zero power, zero objective): a schedule may let the device
// die partway through a lean hour instead of banking energy just to pay
// that hour's idle floor. This keeps the joint problem feasible for any
// harvest sequence — including total blackouts — and makes its optimum
// genuinely dominate every myopic schedule. A myopic fallback remains as
// a defensive path should the solver ever fail numerically.
func Lookahead(c Config, battery0, capacity float64, forecast []float64) (*Schedule, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if battery0 < 0 || capacity < 0 || battery0 > capacity+1e-9 {
		return nil, fmt.Errorf("%w: battery state %v/%v invalid", ErrInvalidConfig, battery0, capacity)
	}
	k := len(forecast)
	if k == 0 {
		return &Schedule{Battery: []float64{battery0}}, nil
	}
	for _, h := range forecast {
		if h < 0 || math.IsNaN(h) {
			return nil, fmt.Errorf("%w: forecast value %v", ErrBudgetNegative, h)
		}
	}

	n := len(c.DPs)
	perHour := n + 2 // t[k,0..n-1], t_off[k], t_dead[k]
	// Variable layout: k*perHour + i for times, then battery levels
	// b[1..k] at offset k*perHour (b[0] is the constant battery0).
	nt := k * perHour
	nv := nt + k

	obj := make([]float64, nv)
	for kk := 0; kk < k; kk++ {
		for i := 0; i < n; i++ {
			obj[kk*perHour+i] = c.weight(i) / (float64(k) * c.Period)
		}
	}

	var cons []lp.Constraint
	// Time identity per hour (design points + off + dead).
	for kk := 0; kk < k; kk++ {
		row := make([]float64, nv)
		for i := 0; i <= n+1; i++ {
			row[kk*perHour+i] = 1
		}
		cons = append(cons, lp.Constraint{Coeffs: row, Op: lp.EQ, RHS: c.Period})
	}
	// Battery dynamics: b[kk+1] + spend[kk] - b[kk] = h[kk].
	for kk := 0; kk < k; kk++ {
		row := make([]float64, nv)
		for i := 0; i < n; i++ {
			row[kk*perHour+i] = c.DPs[i].Power
		}
		row[kk*perHour+n] = c.POff // t_dead draws nothing
		row[nt+kk] = 1             // b[kk+1]
		rhs := forecast[kk]
		if kk == 0 {
			rhs += battery0
		} else {
			row[nt+kk-1] = -1 // -b[kk]
		}
		cons = append(cons, lp.Constraint{Coeffs: row, Op: lp.EQ, RHS: rhs})
	}
	// Battery capacity (non-negativity is implicit in the LP).
	for kk := 0; kk < k; kk++ {
		row := make([]float64, nv)
		row[nt+kk] = 1
		cons = append(cons, lp.Constraint{Coeffs: row, Op: lp.LE, RHS: capacity})
	}

	sol, err := lp.Solve(&lp.Problem{Objective: obj, Constraints: cons})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		// Some prefix cannot even idle: fall back to myopic planning,
		// which handles dead time explicitly.
		return lookaheadMyopic(c, battery0, capacity, forecast)
	}

	plan := &Schedule{Battery: []float64{battery0}}
	var sumJ float64
	for kk := 0; kk < k; kk++ {
		a := Allocation{Active: make([]float64, n)}
		copy(a.Active, sol.X[kk*perHour:kk*perHour+n])
		a.Off = sol.X[kk*perHour+n]
		a.Dead = sol.X[kk*perHour+n+1]
		if a.Dead < 1e-9 {
			a.Dead = 0
		}
		clampAllocation(&a, c)
		plan.Allocations = append(plan.Allocations, a)
		plan.Battery = append(plan.Battery, sol.X[nt+kk])
		sumJ += a.Objective(c)
	}
	plan.Objective = sumJ / float64(k)
	return plan, nil
}

// lookaheadMyopic degrades gracefully when the joint LP is infeasible:
// each hour is planned with Solve against harvest plus whatever the
// battery holds, exactly like the runtime Controller would.
func lookaheadMyopic(c Config, battery0, capacity float64, forecast []float64) (*Schedule, error) {
	plan := &Schedule{Battery: []float64{battery0}}
	battery := battery0
	var sumJ float64
	for _, h := range forecast {
		budget := battery + h
		alloc, err := Solve(c, budget)
		if err != nil {
			return nil, err
		}
		spent := alloc.Energy(c)
		battery = math.Min(capacity, math.Max(0, battery+h-spent))
		plan.Allocations = append(plan.Allocations, alloc)
		plan.Battery = append(plan.Battery, battery)
		sumJ += alloc.Objective(c)
	}
	plan.Objective = sumJ / float64(len(forecast))
	return plan, nil
}
