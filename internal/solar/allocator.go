package solar

import (
	"fmt"
	"math"
)

// Allocator turns a harvesting forecast into per-period energy budgets.
// The paper cites Kansal et al. and Bhat et al. for this layer ("Energy
// budget Eb ... is determined by energy allocation techniques using the
// expected amount of harvested energy and battery capacity") — REAP itself
// is agnostic to how the budget is produced.
type Allocator interface {
	// Budgets maps an hourly harvest trace onto hourly energy budgets of
	// the same length.
	Budgets(harvest []float64) []float64
}

// GreedyAllocator spends each hour exactly what it harvests: the
// battery-less class of harvesting devices.
type GreedyAllocator struct{}

// Budgets implements Allocator.
func (GreedyAllocator) Budgets(harvest []float64) []float64 {
	return append([]float64(nil), harvest...)
}

// BatteryAllocator smooths harvest through a finite battery: each hour's
// budget is the harvest plus a bounded draw from (or charge into) the
// battery, targeting equal spending across a sliding horizon. This is the
// linear-programming duty-cycle idea of Kansal et al. reduced to a rolling
// average, which keeps it deterministic and O(n).
type BatteryAllocator struct {
	// CapacityJ is the battery capacity in joules.
	CapacityJ float64
	// InitialJ is the starting charge.
	InitialJ float64
	// HorizonHours is the smoothing window (e.g. 24 for day-scale
	// smoothing).
	HorizonHours int
	// Efficiency is the round-trip storage efficiency applied to energy
	// that passes through the battery.
	Efficiency float64
}

// DefaultBatteryAllocator returns a day-smoothing allocator with a small
// wearable-scale battery (200 J ≈ 15 mAh at 3.7 V is far more than REAP
// needs; the paper's prototype uses a small backup cell).
func DefaultBatteryAllocator() BatteryAllocator {
	return BatteryAllocator{CapacityJ: 200, InitialJ: 50, HorizonHours: 24, Efficiency: 0.9}
}

// Validate checks the allocator parameters.
func (b BatteryAllocator) Validate() error {
	if b.CapacityJ <= 0 || b.InitialJ < 0 || b.InitialJ > b.CapacityJ {
		return fmt.Errorf("solar: battery state %v/%v invalid", b.InitialJ, b.CapacityJ)
	}
	if b.HorizonHours <= 0 {
		return fmt.Errorf("solar: horizon %d must be positive", b.HorizonHours)
	}
	if b.Efficiency <= 0 || b.Efficiency > 1 || math.IsNaN(b.Efficiency) {
		return fmt.Errorf("solar: efficiency %v outside (0,1]", b.Efficiency)
	}
	return nil
}

// Budgets implements Allocator. The budget for hour t is
// min(available, mean harvest over the trailing horizon), where available
// is this hour's harvest plus the battery charge; the remainder charges
// the battery at the round-trip efficiency.
func (b BatteryAllocator) Budgets(harvest []float64) []float64 {
	if err := b.Validate(); err != nil {
		// An allocator misconfiguration is a programming error; fall back
		// to greedy rather than return nil budgets.
		return GreedyAllocator{}.Budgets(harvest)
	}
	out := make([]float64, len(harvest))
	battery := b.InitialJ
	var window []float64
	var windowSum float64
	for t, h := range harvest {
		window = append(window, h)
		windowSum += h
		if len(window) > b.HorizonHours {
			windowSum -= window[0]
			window = window[1:]
		}
		target := windowSum / float64(len(window))
		available := h + battery
		budget := math.Min(target, available)
		if budget < 0 {
			budget = 0
		}
		out[t] = budget
		// Settle the battery: surplus charges with loss, deficit drains.
		delta := h - budget
		if delta >= 0 {
			battery += delta * b.Efficiency
		} else {
			battery += delta
		}
		battery = clamp(battery, 0, b.CapacityJ)
	}
	return out
}
