package core

import (
	"math"
	"testing"
)

func TestShadowPriceRegions(t *testing.T) {
	c := DefaultConfig()
	// Dead region and saturated region: zero price.
	for _, budget := range []float64{0, 0.1, 9.94, 12} {
		p, err := ShadowPrice(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		if p != 0 {
			t.Errorf("budget %v: price %v, want 0", budget, p)
		}
	}
	// Region 1: price equals DP5's marginal accuracy per joule.
	p1, err := ShadowPrice(c, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	want := c.DPs[4].Accuracy / c.Period / (c.DPs[4].Power - c.POff)
	if math.Abs(p1-want) > 1e-6*want {
		t.Errorf("region-1 price %v, want %v", p1, want)
	}
	// Region 2: price is positive but lower (mixing DP4 for DP5 buys less
	// accuracy per joule).
	p2, err := ShadowPrice(c, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	if p2 <= 0 || p2 >= p1 {
		t.Errorf("region-2 price %v not in (0, %v)", p2, p1)
	}
}

func TestShadowPriceMatchesFiniteDifference(t *testing.T) {
	c := DefaultConfig()
	for _, budget := range []float64{1.5, 3.0, 5.0, 7.5, 9.0} {
		price, err := ShadowPrice(c, budget)
		if err != nil {
			t.Fatal(err)
		}
		const h = 1e-3
		up, err := Solve(c, budget+h)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := Solve(c, budget-h)
		if err != nil {
			t.Fatal(err)
		}
		numeric := (up.Objective(c) - dn.Objective(c)) / (2 * h)
		if math.Abs(price-numeric) > 1e-3*(1+numeric) {
			t.Errorf("budget %v: dual %v vs numeric %v", budget, price, numeric)
		}
	}
}

func TestShadowPriceValidation(t *testing.T) {
	if _, err := ShadowPrice(Config{}, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := ShadowPrice(DefaultConfig(), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestLookaheadValidation(t *testing.T) {
	c := DefaultConfig()
	if _, err := Lookahead(Config{}, 0, 10, []float64{1}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Lookahead(c, 5, 1, []float64{1}); err == nil {
		t.Fatal("charge above capacity accepted")
	}
	if _, err := Lookahead(c, 0, 10, []float64{-1}); err == nil {
		t.Fatal("negative forecast accepted")
	}
	plan, err := Lookahead(c, 3, 10, nil)
	if err != nil || len(plan.Allocations) != 0 || plan.Battery[0] != 3 {
		t.Fatalf("empty horizon: %+v err %v", plan, err)
	}
}

func TestLookaheadMatchesMyopicOnFlatHarvest(t *testing.T) {
	// With a constant harvest and ample battery, shifting energy across
	// hours buys nothing: the lookahead optimum must equal the myopic
	// per-hour optimum.
	c := DefaultConfig()
	harvest := []float64{5, 5, 5, 5}
	plan, err := Lookahead(c, 0, 100, harvest)
	if err != nil {
		t.Fatal(err)
	}
	myopic, err := Solve(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Objective-myopic.Objective(c)) > 1e-6 {
		t.Fatalf("lookahead J %v vs myopic J %v on flat harvest", plan.Objective, myopic.Objective(c))
	}
}

func TestLookaheadShiftsEnergyAcrossHours(t *testing.T) {
	// Feast then famine: 10 J then 0.5 J. Myopic burns the feast hour on
	// DP1 and starves the famine hour; lookahead banks energy.
	c := DefaultConfig()
	harvest := []float64{10, 0.5}
	plan, err := Lookahead(c, 0, 100, harvest)
	if err != nil {
		t.Fatal(err)
	}
	// Myopic baseline.
	var myopicJ float64
	battery := 0.0
	for _, h := range harvest {
		alloc, err := Solve(c, battery+h)
		if err != nil {
			t.Fatal(err)
		}
		battery = math.Max(0, battery+h-alloc.Energy(c))
		myopicJ += alloc.Objective(c)
	}
	myopicJ /= 2
	if plan.Objective <= myopicJ+1e-9 {
		t.Fatalf("lookahead J %v does not beat myopic %v on feast/famine", plan.Objective, myopicJ)
	}
	// The plan must bank energy: battery after hour 1 is positive.
	if plan.Battery[1] <= 0 {
		t.Fatalf("no energy banked: battery trajectory %v", plan.Battery)
	}
	// And both hours satisfy the time identity.
	for k, a := range plan.Allocations {
		if math.Abs(a.Total()-c.Period) > 1e-5 {
			t.Fatalf("hour %d: total %v != period", k, a.Total())
		}
	}
}

func TestLookaheadRespectsCapacity(t *testing.T) {
	// A tiny battery forbids banking: lookahead degenerates toward
	// myopic. Capacity must never be exceeded in the trajectory.
	c := DefaultConfig()
	harvest := []float64{10, 0.5, 10, 0.5}
	plan, err := Lookahead(c, 0, 2, harvest)
	if err != nil {
		t.Fatal(err)
	}
	for k, b := range plan.Battery {
		if b < -1e-6 || b > 2+1e-6 {
			t.Fatalf("battery[%d] = %v outside [0, 2]", k, b)
		}
	}
	big, err := Lookahead(c, 0, 100, harvest)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective > big.Objective+1e-9 {
		t.Fatalf("small battery (%v) beats large (%v)", plan.Objective, big.Objective)
	}
}

func TestLookaheadDarkStretchFallsBack(t *testing.T) {
	// Nothing harvested and nothing stored: the joint LP is infeasible
	// (the idle floor cannot be paid); the planner must degrade to the
	// myopic path with dead time rather than fail.
	c := DefaultConfig()
	plan, err := Lookahead(c, 0, 10, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocations) != 3 {
		t.Fatalf("%d allocations", len(plan.Allocations))
	}
	for k, a := range plan.Allocations {
		if a.ActiveTime() != 0 {
			t.Fatalf("hour %d active with no energy", k)
		}
		if a.Dead <= 0 {
			t.Fatalf("hour %d has no dead time in a blackout", k)
		}
	}
	if plan.Objective != 0 {
		t.Fatalf("objective %v in a blackout", plan.Objective)
	}
}

func TestLookaheadEnergyConservation(t *testing.T) {
	c := DefaultConfig()
	harvest := []float64{3, 7, 1, 5, 0.5, 6}
	plan, err := Lookahead(c, 10, 50, harvest)
	if err != nil {
		t.Fatal(err)
	}
	// Check the battery recursion hour by hour.
	for k, a := range plan.Allocations {
		want := plan.Battery[k] + harvest[k] - a.Energy(c)
		if math.Abs(plan.Battery[k+1]-want) > 1e-4 {
			t.Fatalf("hour %d: battery %v, recursion gives %v", k, plan.Battery[k+1], want)
		}
	}
}
