package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/wire"
)

// solveWithDeadline posts a solve carrying an X-Deadline-Ms header.
func solveWithDeadline(t *testing.T, h http.Handler, ms string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/solve",
		bytes.NewReader(mustMarshal(t, &wire.SolveRequest{V: wire.Version, BudgetJ: 2})))
	req.Header.Set("Content-Type", "application/json")
	if ms != "" {
		req.Header.Set(resilience.DeadlineHeader, ms)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestDeadlineExceededMapsTo504(t *testing.T) {
	svc := newTestService(t, Config{
		Deadline: resilience.DeadlinePolicy{Default: 5 * time.Second, Max: 10 * time.Second},
	})
	// Hold the handler past the requested deadline: the solve runs with
	// an already-expired context and the solver's ctx check fires.
	svc.testHookSolve = func() { time.Sleep(60 * time.Millisecond) }
	h := svc.Handler()

	rec := solveWithDeadline(t, h, "20")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeDeadlineExceeded {
		t.Errorf("error code = %q, want %q", got, wire.CodeDeadlineExceeded)
	}

	// Without the header the default (5s) applies and the request is
	// comfortably inside it.
	if rec := solveWithDeadline(t, h, ""); rec.Code != http.StatusOK {
		t.Errorf("no header: status = %d, want 200; body %s", rec.Code, rec.Body)
	}
}

func TestDeadlineClampedByServerMax(t *testing.T) {
	svc := newTestService(t, Config{
		Deadline: resilience.DeadlinePolicy{Default: time.Second, Max: 20 * time.Millisecond},
	})
	svc.testHookSolve = func() { time.Sleep(60 * time.Millisecond) }
	h := svc.Handler()

	// The client asks for 10 s; policy clamps to 20 ms, so the held
	// request still times out.
	rec := solveWithDeadline(t, h, "10000")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (clamped deadline); body %s", rec.Code, rec.Body)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeDeadlineExceeded {
		t.Errorf("error code = %q, want %q", got, wire.CodeDeadlineExceeded)
	}
}

func TestNoDeadlinePolicyIgnoresHeader(t *testing.T) {
	svc := newTestService(t, Config{})
	svc.testHookSolve = func() { time.Sleep(30 * time.Millisecond) }
	if rec := solveWithDeadline(t, svc.Handler(), "1"); rec.Code != http.StatusOK {
		t.Errorf("status = %d, want 200 — without a policy the header must not bind", rec.Code)
	}
}

func TestOverloadShedsBeforeWork(t *testing.T) {
	svc := newTestService(t, Config{MaxInflight: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	svc.testHookSolve = func() {
		entered <- struct{}{}
		<-release
	}
	h := svc.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := solveWithDeadline(t, h, "")
		if rec.Code != http.StatusOK {
			t.Errorf("held request: status = %d, want 200", rec.Code)
		}
	}()
	<-entered // the only slot is occupied

	svc.testHookSolve = nil // the shed request must never reach the hook
	rec := solveWithDeadline(t, h, "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over capacity: status = %d, want 503; body %s", rec.Code, rec.Body)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeOverloaded {
		t.Errorf("error code = %q, want %q", got, wire.CodeOverloaded)
	}
	if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want seconds ≥ 1", rec.Header().Get("Retry-After"))
	}

	// Operator surfaces stay reachable under overload.
	if rec := do(t, h, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz under overload: status = %d, want 200", rec.Code)
	}
	if rec := do(t, h, http.MethodGet, "/v1/stats", nil); rec.Code != http.StatusOK {
		t.Errorf("stats under overload: status = %d, want 200", rec.Code)
	}

	close(release)
	wg.Wait()
	if got := svc.Stats().Shed; got != 1 {
		t.Errorf("stats shed = %d, want 1", got)
	}
}

func TestHandlerPanicAnswers500AndServiceSurvives(t *testing.T) {
	svc := newTestService(t, Config{})
	svc.testHookSolve = func() { panic("faults test: solve handler bug") }
	h := svc.Handler()

	rec := solveWithDeadline(t, h, "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", rec.Code, rec.Body)
	}
	if got := decodeErrCode(t, rec); got != wire.CodePanic {
		t.Errorf("error code = %q, want %q", got, wire.CodePanic)
	}

	svc.testHookSolve = nil
	if rec := solveWithDeadline(t, h, ""); rec.Code != http.StatusOK {
		t.Errorf("after panic: status = %d, want 200 — one bad request must not take the daemon down", rec.Code)
	}
	if got := svc.Stats().Panics; got != 1 {
		t.Errorf("stats panics = %d, want 1", got)
	}
}

func TestShardPanicsQuarantineShard(t *testing.T) {
	svc := newTestService(t, Config{Devices: 16, Shards: 4, BatteryJ: 20, CapacityJ: 60, QuarantineAfter: 2})
	svc.testHookReport = func() { panic("faults test: shard state corruption") }
	h := svc.Handler()

	report := func(device int) *httptest.ResponseRecorder {
		return do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
			V: wire.Version, Reports: []wire.DeviceReport{{Device: device, ConsumedJ: 0.1}},
		})
	}

	// Shard 0 owns devices [0, 4). Two panics trip its breaker.
	for i := 0; i < 2; i++ {
		rec := report(0)
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("panic %d: status = %d, want 500; body %s", i, rec.Code, rec.Body)
		}
		if got := decodeErrCode(t, rec); got != wire.CodePanic {
			t.Fatalf("panic %d: error code = %q, want %q", i, got, wire.CodePanic)
		}
	}

	svc.testHookReport = nil // the shard stays quarantined even with the bug gone
	rec := report(1)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined shard: status = %d, want 503; body %s", rec.Code, rec.Body)
	}
	if got := decodeErrCode(t, rec); got != wire.CodeShardQuarantined {
		t.Errorf("error code = %q, want %q", got, wire.CodeShardQuarantined)
	}

	// The rest of the fleet serves on: another shard's device and the
	// stateless solve path are unaffected.
	if rec := report(12); rec.Code != http.StatusOK {
		t.Errorf("healthy shard: status = %d, want 200; body %s", rec.Code, rec.Body)
	}
	if rec := solveWithDeadline(t, h, ""); rec.Code != http.StatusOK {
		t.Errorf("stateless solve with a quarantined shard: status = %d, want 200", rec.Code)
	}

	stats := svc.Stats()
	if stats.Panics != 2 {
		t.Errorf("stats panics = %d, want 2", stats.Panics)
	}
	if stats.ShardsQuarantined != 1 {
		t.Errorf("stats shards_quarantined = %d, want 1", stats.ShardsQuarantined)
	}
}

// TestQuarantineDisabledStillCountsPanics: without a threshold the
// daemon contains panics but never fences devices off.
func TestQuarantineDisabledStillCountsPanics(t *testing.T) {
	svc := newTestService(t, Config{Devices: 4, BatteryJ: 20, CapacityJ: 60})
	svc.testHookReport = func() { panic("boom") }
	h := svc.Handler()
	for i := 0; i < 3; i++ {
		if rec := do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
			V: wire.Version, Reports: []wire.DeviceReport{{Device: 0, ConsumedJ: 0.1}},
		}); rec.Code != http.StatusInternalServerError {
			t.Fatalf("panic %d: status = %d, want 500", i, rec.Code)
		}
	}
	svc.testHookReport = nil
	if rec := do(t, h, http.MethodPost, "/v1/report", &wire.ReportRequest{
		V: wire.Version, Reports: []wire.DeviceReport{{Device: 0, ConsumedJ: 0.1}},
	}); rec.Code != http.StatusOK {
		t.Errorf("after panics without quarantine: status = %d, want 200", rec.Code)
	}
	if got := svc.Stats().Panics; got != 3 {
		t.Errorf("stats panics = %d, want 3", got)
	}
}
