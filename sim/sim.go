// Package sim is a deterministic, seedable scenario simulator for fleets
// of REAP devices: the closed loop the paper evaluates (harvest → solve →
// execute → report), scaled to N devices over multi-day horizons and made
// reproducible enough to diff byte-for-byte.
//
// A Scenario composes the repository's models end to end:
//
//   - internal/solar synthesizes the hourly harvest trace (clear-sky
//     geometry × Markov weather × cell model), scaled and jittered per
//     device — per region, for geographic fleets;
//   - internal/forecast optionally turns the trace into EWMA-predicted
//     budgets, so devices plan on forecasts and absorb prediction error
//     through the controller's accounting loop;
//   - internal/synth streams per-device activity timelines whose hourly
//     intensity modulates realized consumption, plus injected sensor
//     faults with documented energy/utility effects;
//   - internal/energy prices the hourly fleet-telemetry BLE upload that
//     rides on top of every powered device's consumption;
//   - the public Fleet drives one Controller per device through
//     StepAll/ReportAll via the Fleet.Run closed-loop seam, including
//     mid-run membership churn (Fleet.SetActive).
//
// Scenarios are data: the canonical definition of a scenario is a
// versioned, strictly-decoded JSON config (see config.go and the
// committed corpus under scenarios/), loaded with LoadScenario or
// through the Corpus API. The Go constructors in scenario.go remain for
// the five legacy library scenarios and are pinned byte-for-byte
// against their config-file forms.
//
// Determinism: every random draw derives from Scenario.Seed through
// per-device, per-purpose sub-streams consumed in a fixed order, and the
// LP backends and solve cache are deterministic (the cache solves the
// quantized representative budget, so results do not depend on which
// device populated an entry). Two runs of the same scenario therefore
// produce byte-identical traces — the property the golden-trace harness
// in this package's tests locks down. Goldens are regenerated with
// `go test ./sim -run TestGolden -update`.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro"
	"repro/internal/energy"
	"repro/internal/forecast"
	"repro/internal/fpx"
	"repro/internal/solar"
	"repro/internal/synth"
)

// Scenario describes one deterministic simulation: the fleet, the
// harvest climate, the controller configuration, and the execution
// realism knobs. The zero value is not runnable; start from a corpus
// scenario (Corpus, Lookup), a config file (LoadScenario) or fill the
// fields and let Run apply the documented defaults.
type Scenario struct {
	// Name identifies the scenario in traces and reports.
	Name string
	// Description is a one-line summary for listings.
	Description string

	// Devices is the fleet size; Days the simulated horizon. Each day is
	// 24 hourly activity periods.
	Devices, Days int
	// Seed derives every random stream in the run.
	Seed int64

	// Month and Year select the solar trace (internal/solar's Golden, CO
	// climate; the year seeds the Markov weather). Months extends the
	// horizon across that many consecutive calendar months (default 1),
	// wrapping past December into the next year — the seasonal-drift
	// seam: Days counts from the start of the span and may cross month
	// boundaries.
	Month, Year, Months int
	// HarvestScale scales every hourly harvest (default 1). DeviceJitter
	// spreads a per-device multiplicative factor uniformly in
	// [1-j, 1+j]; zero gives every device an identical harvest, the
	// correlated-budget regime the solve cache exploits.
	HarvestScale, DeviceJitter float64

	// Alpha, BatteryJ, CapacityJ configure every controller (refine per
	// device with Populations or PerDevice). Solver names the registry
	// backend; an empty Solver resolves to simplex — deliberately
	// pinned, rather than following reap.DefaultSolver, so golden traces
	// cannot move when the registry default changes (the golden harness
	// separately asserts the plan backend reproduces them byte-for-byte).
	// Workers bounds StepAll's pool (0 = GOMAXPROCS).
	Alpha               float64
	BatteryJ, CapacityJ float64
	Solver              string
	Workers             int

	// Cache routes solves through a shared solve cache of CacheSize
	// entries (default reap.DefaultCacheSize) at CacheResolutionJ
	// (default reap.DefaultCacheResolution; negative selects the
	// cache's exact mode — no quantization, bit-identical to uncached,
	// dedup only). Without Cache the fleet solves exactly, uncached.
	Cache            bool
	CacheSize        int
	CacheResolutionJ float64

	// Forecast plans each budget from an EWMA prediction of the hour's
	// harvest (internal/forecast, per device) instead of the actual
	// value; the first day warms the predictor up on actuals.
	Forecast       bool
	ForecastLambda float64

	// Noise is the relative standard deviation of execution noise on
	// consumed energy. FaultRate is the per-device-hour probability of a
	// sensor fault episode (internal/synth's failure modes) with the
	// energy/utility effects documented at faultEffect. TelemetryBytes
	// is the hourly fleet-telemetry BLE payload every powered device
	// uploads (internal/energy's radio model; default 24 bytes).
	Noise, FaultRate float64
	TelemetryBytes   int

	// AgingPerDay models battery aging over long horizons: each elapsed
	// day inflates realized consumption by a factor (1+AgingPerDay) —
	// compounding coulombic-efficiency loss, so a months-long run slides
	// out of energy neutrality unless the controller's accounting
	// absorbs it. Zero (the default) disables aging; FlatConsumption
	// runs are exempt (they are the exactness baseline).
	AgingPerDay float64

	// FlatConsumption makes execution exact: consumed = planned energy
	// (+ telemetry), no activity modulation, noise, faults or aging.
	// Used by cache-correlation scenarios, where divergent consumption
	// would decorrelate budgets, and by differential baselines.
	FlatConsumption bool

	// Populations declaratively refines subsets of the fleet — the
	// config-file counterpart of PerDevice: device i takes the overrides
	// of every population it matches, in order. Mixed-α, mixed-battery
	// and mixed-backend fleets are expressed this way.
	Populations []Population

	// Regions partitions the fleet geographically: device i belongs to
	// Regions[i % len(Regions)]. Each region runs its own deterministic
	// Markov sky (seeded from the region name) over the same clear-sky
	// geometry, with a per-region harvest scale. Empty means one
	// implicit region on the canonical weather stream.
	Regions []Region

	// Churn schedules mid-run fleet membership changes: at each event's
	// step, listed devices leave (battery and accounting freeze) or join
	// (resume from frozen state). A device whose first mention in the
	// schedule is a join starts the run offline — a provisioned device
	// that has not yet come online.
	Churn []ChurnEvent

	// Storm, when non-nil, injects correlated fault storms: fleet-wide
	// weather windows during which every device's fault probability
	// jumps to Storm.FaultRate and harvest is scaled by
	// Storm.HarvestScale — the brownout-cascade regime, where faults and
	// energy starvation arrive together across the fleet instead of as
	// independent per-device coin flips.
	Storm *Storm

	// PerDevice refines device i's options after the fleet-wide ones
	// (reap.WithDeviceOverride). Populations is the declarative form;
	// PerDevice remains for programmatic callers and must not be
	// combined with Populations.
	PerDevice func(device int) []reap.Option
}

// Population selects a subset of the fleet by index arithmetic and
// overrides its controller configuration. Zero-valued fields inherit
// the scenario-wide setting.
type Population struct {
	// Modulus/Residue select devices i with i % Modulus == Residue;
	// Modulus 0 selects every device.
	Modulus, Residue int
	// Alpha overrides the accuracy/active-time emphasis (0 inherits).
	Alpha float64
	// BatteryJ/CapacityJ override the battery (both zero inherits; when
	// set, CapacityJ must be positive and BatteryJ within it).
	BatteryJ, CapacityJ float64
	// Solver overrides the backend ("" inherits).
	Solver string
}

// Region is one geographic segment of a fleet: its own deterministic
// sky sequence (seeded from the name) and harvest scale over the shared
// clear-sky geometry.
type Region struct {
	// Name seeds the region's weather stream and labels it; regions of
	// one scenario must have distinct names.
	Name string
	// HarvestScale multiplies the region's hourly harvest (0 means 1).
	HarvestScale float64
}

// ChurnEvent is one scheduled fleet-membership change.
type ChurnEvent struct {
	// Step is the hour index (from scenario start) the event applies at,
	// before budgets are drawn for that hour.
	Step int
	// Join and Leave list device indices coming online / going offline.
	Join, Leave []int
}

// Storm configures correlated fault storms and brownout cascades. Storm
// windows are drawn once per run from a dedicated fleet-level seed
// stream: each hour outside a storm starts one with probability
// StartRate, lasting DurationHours.
type Storm struct {
	// StartRate is the per-hour probability a storm begins.
	StartRate float64
	// DurationHours is how long each storm lasts.
	DurationHours int
	// FaultRate replaces the scenario fault rate during a storm when it
	// is larger — correlated episodes across the whole fleet.
	FaultRate float64
	// HarvestScale multiplies harvest during a storm (0 means 1); values
	// below 1 model the cloud bank that arrives with the storm.
	HarvestScale float64
}

// months returns the calendar span of the horizon (default 1).
func (sc Scenario) months() int {
	if sc.Months <= 0 {
		return 1
	}
	return sc.Months
}

// spanDays returns the total days available in the scenario's calendar
// span (non-leap, like solar.DaysInMonth).
func (sc Scenario) spanDays() int {
	total := 0
	m := sc.Month
	for k := 0; k < sc.months(); k++ {
		total += solar.DaysInMonth(m)
		m++
		if m > 12 {
			m = 1
		}
	}
	return total
}

// withDefaults fills the zero-value knobs with the documented defaults.
func (sc Scenario) withDefaults() Scenario {
	if fpx.Zero(sc.HarvestScale) {
		sc.HarvestScale = 1
	}
	if fpx.Zero(sc.Alpha) {
		sc.Alpha = 1
	}
	if sc.Solver == "" {
		sc.Solver = reap.SolverSimplex
	}
	if sc.CacheSize == 0 {
		sc.CacheSize = reap.DefaultCacheSize
	}
	if fpx.Zero(sc.CacheResolutionJ) {
		sc.CacheResolutionJ = reap.DefaultCacheResolution
	}
	if fpx.Zero(sc.ForecastLambda) {
		sc.ForecastLambda = 0.5
	}
	if sc.TelemetryBytes == 0 {
		sc.TelemetryBytes = 24
	}
	return sc
}

// Validate checks the scenario after defaults are applied.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("%w: scenario needs a name", ErrInvalidScenario)
	}
	if sc.Devices <= 0 {
		return fmt.Errorf("%w: %s: %d devices must be positive", ErrInvalidScenario, sc.Name, sc.Devices)
	}
	if sc.Month < 1 || sc.Month > 12 {
		return fmt.Errorf("%w: %s: month %d outside 1..12", ErrInvalidScenario, sc.Name, sc.Month)
	}
	if sc.Months < 0 || sc.Months > 36 {
		return fmt.Errorf("%w: %s: months %d outside 0..36", ErrInvalidScenario, sc.Name, sc.Months)
	}
	if sc.Days <= 0 || sc.Days > sc.spanDays() {
		return fmt.Errorf("%w: %s: %d days outside 1..%d (month %d, %d months)",
			ErrInvalidScenario, sc.Name, sc.Days, sc.spanDays(), sc.Month, sc.months())
	}
	if sc.HarvestScale <= 0 || math.IsNaN(sc.HarvestScale) || math.IsInf(sc.HarvestScale, 0) {
		return fmt.Errorf("%w: %s: harvest scale %v must be positive and finite", ErrInvalidScenario, sc.Name, sc.HarvestScale)
	}
	if sc.DeviceJitter < 0 || sc.DeviceJitter >= 1 || math.IsNaN(sc.DeviceJitter) {
		return fmt.Errorf("%w: %s: device jitter %v outside [0,1)", ErrInvalidScenario, sc.Name, sc.DeviceJitter)
	}
	if sc.Noise < 0 || math.IsNaN(sc.Noise) {
		return fmt.Errorf("%w: %s: noise %v must be non-negative", ErrInvalidScenario, sc.Name, sc.Noise)
	}
	if sc.FaultRate < 0 || sc.FaultRate > 1 || math.IsNaN(sc.FaultRate) {
		return fmt.Errorf("%w: %s: fault rate %v outside [0,1]", ErrInvalidScenario, sc.Name, sc.FaultRate)
	}
	if sc.TelemetryBytes < 0 {
		return fmt.Errorf("%w: %s: telemetry payload %d must be non-negative", ErrInvalidScenario, sc.Name, sc.TelemetryBytes)
	}
	if sc.AgingPerDay < 0 || sc.AgingPerDay > 0.1 || math.IsNaN(sc.AgingPerDay) {
		return fmt.Errorf("%w: %s: aging %v per day outside [0, 0.1]", ErrInvalidScenario, sc.Name, sc.AgingPerDay)
	}
	if len(sc.Populations) > 0 && sc.PerDevice != nil {
		return fmt.Errorf("%w: %s: Populations and PerDevice are mutually exclusive", ErrInvalidScenario, sc.Name)
	}
	for pi, p := range sc.Populations {
		if p.Modulus < 0 || (p.Modulus > 0 && (p.Residue < 0 || p.Residue >= p.Modulus)) {
			return fmt.Errorf("%w: %s: population %d: residue %d outside [0,%d)",
				ErrInvalidScenario, sc.Name, pi, p.Residue, p.Modulus)
		}
		if p.Alpha < 0 || math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0) {
			return fmt.Errorf("%w: %s: population %d: alpha %v must be non-negative and finite",
				ErrInvalidScenario, sc.Name, pi, p.Alpha)
		}
		if !fpx.Zero(p.BatteryJ) || !fpx.Zero(p.CapacityJ) {
			if p.CapacityJ <= 0 || p.BatteryJ < 0 || p.BatteryJ > p.CapacityJ {
				return fmt.Errorf("%w: %s: population %d: battery %v/%v J inconsistent",
					ErrInvalidScenario, sc.Name, pi, p.BatteryJ, p.CapacityJ)
			}
		}
	}
	seen := map[string]bool{}
	for ri, r := range sc.Regions {
		if seen[r.Name] {
			return fmt.Errorf("%w: %s: duplicate region %q", ErrInvalidScenario, sc.Name, r.Name)
		}
		seen[r.Name] = true
		if r.HarvestScale < 0 || math.IsNaN(r.HarvestScale) || math.IsInf(r.HarvestScale, 0) {
			return fmt.Errorf("%w: %s: region %d: harvest scale %v must be non-negative and finite",
				ErrInvalidScenario, sc.Name, ri, r.HarvestScale)
		}
	}
	steps := sc.Days * 24
	for ei, ev := range sc.Churn {
		if ev.Step < 0 || ev.Step >= steps {
			return fmt.Errorf("%w: %s: churn event %d: step %d outside [0,%d)",
				ErrInvalidScenario, sc.Name, ei, ev.Step, steps)
		}
		if ei > 0 && ev.Step < sc.Churn[ei-1].Step {
			return fmt.Errorf("%w: %s: churn events out of order at %d", ErrInvalidScenario, sc.Name, ei)
		}
		for _, d := range append(append([]int(nil), ev.Join...), ev.Leave...) {
			if d < 0 || d >= sc.Devices {
				return fmt.Errorf("%w: %s: churn event %d: device %d outside fleet [0,%d)",
					ErrInvalidScenario, sc.Name, ei, d, sc.Devices)
			}
		}
	}
	if st := sc.Storm; st != nil {
		if st.StartRate < 0 || st.StartRate > 1 || math.IsNaN(st.StartRate) {
			return fmt.Errorf("%w: %s: storm start rate %v outside [0,1]", ErrInvalidScenario, sc.Name, st.StartRate)
		}
		if st.StartRate > 0 && st.DurationHours <= 0 {
			return fmt.Errorf("%w: %s: storm duration %d hours must be positive", ErrInvalidScenario, sc.Name, st.DurationHours)
		}
		if st.FaultRate < 0 || st.FaultRate > 1 || math.IsNaN(st.FaultRate) {
			return fmt.Errorf("%w: %s: storm fault rate %v outside [0,1]", ErrInvalidScenario, sc.Name, st.FaultRate)
		}
		if st.HarvestScale < 0 || math.IsNaN(st.HarvestScale) || math.IsInf(st.HarvestScale, 0) {
			return fmt.Errorf("%w: %s: storm harvest scale %v must be non-negative and finite",
				ErrInvalidScenario, sc.Name, st.HarvestScale)
		}
	}
	return nil
}

// perDeviceOverride resolves the per-device option source: the explicit
// PerDevice hook, or one synthesized from the declarative Populations
// (overrides applied in population order: alpha, then battery, then
// solver — each touches a distinct setting, so the order is cosmetic).
func (sc Scenario) perDeviceOverride() func(int) []reap.Option {
	if sc.PerDevice != nil {
		return sc.PerDevice
	}
	if len(sc.Populations) == 0 {
		return nil
	}
	pops := sc.Populations
	return func(i int) []reap.Option {
		var opts []reap.Option
		for _, p := range pops {
			if p.Modulus > 0 && i%p.Modulus != p.Residue {
				continue
			}
			if !fpx.Zero(p.Alpha) {
				opts = append(opts, reap.WithAlpha(p.Alpha))
			}
			if !fpx.Zero(p.BatteryJ) || !fpx.Zero(p.CapacityJ) {
				opts = append(opts, reap.WithBattery(p.BatteryJ, p.CapacityJ))
			}
			if p.Solver != "" {
				opts = append(opts, reap.WithSolver(p.Solver))
			}
		}
		return opts
	}
}

// Result bundles one run's outputs: the fully-defaulted scenario, the
// per-step trace, summary metrics, each device's resolved configuration
// (needed to evaluate allocations from the trace), and the solve-cache
// statistics when the scenario caches.
type Result struct {
	Scenario   Scenario
	Trace      *Trace
	Summary    Summary
	Configs    []reap.Config
	CacheStats *reap.CacheStats
}

// Sub-stream salts: each randomized concern draws from its own
// deterministic stream so adding draws to one never perturbs another.
const (
	saltJitter = iota + 1
	saltTimeline
	saltNoise
	saltFault
	saltStorm
)

// subSeed derives a per-device, per-purpose seed from the scenario seed
// (splitmix64 finalizer — consecutive inputs map to well-spread outputs).
func subSeed(seed int64, device int, salt int64) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(device+1) + 0xbf58476d1ce4e5b9*uint64(salt)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// activityIntensity maps each synth activity class onto a motion-
// intensity coefficient in [0,1]; an hour's mean intensity modulates the
// consumption model (vigorous hours cost slightly more: extra interrupt
// handling and BLE retransmissions under motion artifacts).
var activityIntensity = [synth.NumActivities]float64{
	synth.Sit:        0.08,
	synth.Stand:      0.15,
	synth.Walk:       0.60,
	synth.Jump:       1.00,
	synth.Drive:      0.30,
	synth.LieDown:    0.02,
	synth.Transition: 0.45,
}

// faultEffect returns the consumption and utility multipliers of a fault
// episode lasting one activity period:
//
//   - StuckAxis: energy unchanged, recognition degraded (one axis lies).
//   - Dropout: the bus stall browns the period out partway — both
//     consumption and useful output are cut roughly in half.
//   - SpikeNoise: connector chatter re-triggers processing (slightly
//     more energy) and corrupts windows (less utility).
//   - StretchDetached: energy unchanged, stretch-dependent accuracy lost.
func faultEffect(f synth.Fault) (consumedScale, utilityScale float64) {
	switch f {
	case synth.StuckAxis:
		return 1.00, 0.85
	case synth.Dropout:
		return 0.55, 0.50
	case synth.SpikeNoise:
		return 1.08, 0.90
	case synth.StretchDetached:
		return 1.00, 0.80
	default:
		return 1, 1
	}
}

// simulator holds one run's state; it implements reap.HarvestSource and
// reap.ConsumptionModel, and records the trace from the step observer.
type simulator struct {
	sc    Scenario
	fleet *reap.Fleet
	cfgs  []reap.Config

	// hours and skies are per-region: device i reads region i % len.
	hours [][]float64 // scenario- and region-scaled hourly harvest
	skies [][]solar.Sky

	jitter    []float64
	ewma      []*forecast.EWMA
	timelines []*synth.Timeline
	noiseRng  []*rand.Rand
	faultRng  []*rand.Rand

	telemetryJ float64

	// stormMask marks the hours a correlated storm covers; aging holds
	// the per-day consumption inflation factor. Both nil when unused.
	stormMask []bool
	aging     []float64

	// churnIdx walks the (validated, step-ordered) churn schedule as
	// Budgets advances through the horizon.
	churnIdx int

	// Per-step scratch, filled by Budgets/Consumed and read by observe.
	actual    []float64
	intensity []float64
	faults    []synth.Fault

	records []StepRecord
}

// regionOf maps a device to its region index (round-robin).
func (s *simulator) regionOf(i int) int { return i % len(s.hours) }

// applyChurn applies every churn event scheduled at the given step.
func (s *simulator) applyChurn(step int) error {
	for s.churnIdx < len(s.sc.Churn) && s.sc.Churn[s.churnIdx].Step == step {
		ev := s.sc.Churn[s.churnIdx]
		for _, d := range ev.Leave {
			if err := s.fleet.SetActive(d, false); err != nil {
				return err
			}
		}
		for _, d := range ev.Join {
			if err := s.fleet.SetActive(d, true); err != nil {
				return err
			}
		}
		s.churnIdx++
	}
	return nil
}

// Budgets implements reap.HarvestSource: actual harvest is the device's
// regional solar hour scaled per device; the budget handed to the fleet
// is either that actual value or, under Forecast, the device's EWMA
// prediction (actuals warm the predictor up during the first day).
// Offline devices (churn) harvest nothing and keep their predictors
// frozen.
func (s *simulator) Budgets(step int, dst []float64) error {
	if err := s.applyChurn(step); err != nil {
		return err
	}
	storm := s.stormMask != nil && s.stormMask[step]
	for i := range dst {
		if !s.fleet.Active(i) {
			s.actual[i] = 0
			dst[i] = 0
			continue
		}
		h := s.hours[s.regionOf(i)][step]
		if storm {
			h *= s.stormHarvestScale()
		}
		actual := h * s.jitter[i]
		s.actual[i] = actual
		budget := actual
		if s.sc.Forecast {
			if step >= forecast.SlotsPerDay {
				budget = s.ewma[i].Predict(1)[0]
			}
			if err := s.ewma[i].Observe(actual); err != nil {
				return err
			}
		}
		dst[i] = budget
	}
	return nil
}

// stormHarvestScale resolves the storm's harvest multiplier (0 = 1).
func (s *simulator) stormHarvestScale() float64 {
	if s.sc.Storm == nil || fpx.Zero(s.sc.Storm.HarvestScale) {
		return 1
	}
	return s.sc.Storm.HarvestScale
}

// Consumed implements reap.ConsumptionModel: realized consumption is the
// planned energy modulated by the hour's activity intensity, execution
// noise, fault episodes and battery aging, plus the telemetry upload for
// powered devices. Under FlatConsumption it is exactly planned
// (+ telemetry). Offline devices consume nothing, but their users keep
// living: the activity timeline skips the hour so a rejoining device
// lands at the right time of day.
func (s *simulator) Consumed(step int, allocs []reap.Allocation, dst []float64) error {
	storm := s.stormMask != nil && s.stormMask[step]
	for i := range dst {
		cfg := s.cfgs[i]
		s.faults[i] = synth.NoFault
		if !s.fleet.Active(i) {
			if s.timelines != nil {
				s.timelines[i].Skip(synth.WindowsPerHour)
			}
			s.intensity[i] = 0
			dst[i] = 0
			continue
		}
		planned := allocs[i].Energy(cfg)
		// A device dead for most of the period cannot run its hourly
		// telemetry upload.
		telemetry := s.telemetryJ
		if allocs[i].Dead >= cfg.Period/2 {
			telemetry = 0
		}
		if s.sc.FlatConsumption {
			s.intensity[i] = 0
			dst[i] = planned + telemetry
			continue
		}
		intensity := s.hourIntensity(i)
		s.intensity[i] = intensity
		consumed := planned * (0.95 + 0.10*intensity)
		rate := s.sc.FaultRate
		if storm && s.sc.Storm.FaultRate > rate {
			rate = s.sc.Storm.FaultRate
		}
		if rate > 0 && s.faultRng[i].Float64() < rate {
			faults := synth.Faults()
			f := faults[s.faultRng[i].Intn(len(faults))]
			s.faults[i] = f
			scale, _ := faultEffect(f)
			consumed *= scale
		}
		if s.sc.Noise > 0 {
			factor := 1 + s.sc.Noise*s.noiseRng[i].NormFloat64()
			factor = math.Min(1.5, math.Max(0.5, factor))
			consumed *= factor
		}
		consumed += telemetry
		if s.aging != nil {
			consumed *= s.aging[step/24]
		}
		if consumed < 0 {
			consumed = 0
		}
		dst[i] = consumed
	}
	return nil
}

// hourIntensity streams one hour of activity labels from device i's
// timeline and returns their mean intensity.
func (s *simulator) hourIntensity(i int) float64 {
	var sum float64
	for w := 0; w < synth.WindowsPerHour; w++ {
		sum += activityIntensity[s.timelines[i].NextLabel()]
	}
	return sum / synth.WindowsPerHour
}

// observe records one trace line per device for the completed step.
// Offline devices record a fully-dead period: no budget, no allocation,
// no consumption, battery frozen at its last online value.
func (s *simulator) observe(step int, budgets []float64, allocs []reap.Allocation, consumed []float64) error {
	for i := range allocs {
		dev, err := s.fleet.Device(i)
		if err != nil {
			return err
		}
		cfg := s.cfgs[i]
		sky := s.skies[s.regionOf(i)][step].String()
		if !s.fleet.Active(i) {
			s.records = append(s.records, StepRecord{
				Step:     step,
				Device:   i,
				Sky:      sky,
				DeadS:    cfg.Period,
				BatteryJ: dev.Battery(),
				Fault:    synth.NoFault.String(),
			})
			continue
		}
		acc := allocs[i].ExpectedAccuracy(cfg)
		_, utilScale := faultEffect(s.faults[i])
		s.records = append(s.records, StepRecord{
			Step:         step,
			Device:       i,
			Sky:          sky,
			HarvestJ:     s.actual[i],
			BudgetJ:      budgets[i],
			SolveBudgetJ: dev.LastBudget(),
			Active:       append([]float64(nil), allocs[i].Active...),
			OffS:         allocs[i].Off,
			DeadS:        allocs[i].Dead,
			PlannedJ:     allocs[i].Energy(cfg),
			ConsumedJ:    consumed[i],
			BatteryJ:     dev.Battery(),
			Intensity:    s.intensity[i],
			Fault:        s.faults[i].String(),
			Accuracy:     acc,
			Utility:      acc * utilScale,
		})
	}
	return nil
}

// buildHarvest assembles the per-region hourly harvest and sky
// sequences over the scenario's calendar span.
func (s *simulator) buildHarvest(sc Scenario, steps int) error {
	regions := sc.Regions
	if len(regions) == 0 {
		regions = []Region{{}}
	}
	s.hours = make([][]float64, len(regions))
	s.skies = make([][]solar.Sky, len(regions))
	for r, region := range regions {
		scale := region.HarvestScale
		if fpx.Zero(scale) {
			scale = 1
		}
		hours := make([]float64, 0, steps)
		skies := make([]solar.Sky, 0, steps)
		month, year := sc.Month, sc.Year
		for k := 0; k < sc.months() && len(hours) < steps; k++ {
			tr, err := solar.MonthlyTraceSeeded(month, year, solar.DefaultCell(),
				solar.RegionWeatherSeed(month, year, region.Name))
			if err != nil {
				return fmt.Errorf("%s: region %q: %w", sc.Name, region.Name, err)
			}
			for h := 0; h < len(tr.Hours) && len(hours) < steps; h++ {
				hours = append(hours, tr.Hours[h]*sc.HarvestScale*scale)
				skies = append(skies, tr.Skies[h])
			}
			month++
			if month > 12 {
				month, year = 1, year+1
			}
		}
		if len(hours) < steps {
			return fmt.Errorf("%w: %s: span yields %d hours for %d steps",
				ErrInvalidScenario, sc.Name, len(hours), steps)
		}
		s.hours[r] = hours
		s.skies[r] = skies
	}
	return nil
}

// buildStormMask draws the correlated storm windows from the dedicated
// fleet-level seed stream.
func (s *simulator) buildStormMask(sc Scenario, steps int) {
	st := sc.Storm
	if st == nil || fpx.Zero(st.StartRate) {
		return
	}
	rng := rand.New(rand.NewSource(subSeed(sc.Seed, 0, saltStorm)))
	mask := make([]bool, steps)
	remaining := 0
	for h := 0; h < steps; h++ {
		if remaining == 0 && rng.Float64() < st.StartRate {
			remaining = st.DurationHours
		}
		if remaining > 0 {
			mask[h] = true
			remaining--
		}
	}
	s.stormMask = mask
}

// initialChurnState marks devices whose first scheduled mention is a
// join as offline from the start — provisioned but not yet online.
func initialChurnState(sc Scenario, fleet *reap.Fleet) error {
	mentioned := map[int]bool{}
	for _, ev := range sc.Churn {
		for _, d := range ev.Leave {
			mentioned[d] = true
		}
		for _, d := range ev.Join {
			if !mentioned[d] {
				mentioned[d] = true
				if err := fleet.SetActive(d, false); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Run executes the scenario and returns its trace, summary metrics and
// per-device configurations. Same scenario (including seed) in, same
// trace bytes out — see the package comment for the determinism
// contract.
func Run(ctx context.Context, sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if _, err := reap.LookupSolver(sc.Solver); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}
	steps := sc.Days * 24

	opts := []reap.Option{
		reap.WithAlpha(sc.Alpha),
		reap.WithBattery(sc.BatteryJ, sc.CapacityJ),
		reap.WithSolver(sc.Solver),
		reap.WithWorkers(sc.Workers),
	}
	if sc.Cache {
		res := sc.CacheResolutionJ
		if res < 0 {
			res = 0 // exact mode
		}
		opts = append(opts, reap.WithSolveCache(sc.CacheSize, res))
	} else {
		// Uncached solving is NewFleet's default since the plan-first
		// re-tier; saying so explicitly keeps scenario semantics pinned
		// to the scenario definition rather than the library default.
		opts = append(opts, reap.WithoutSolveCache())
	}
	if override := sc.perDeviceOverride(); override != nil {
		opts = append(opts, reap.WithDeviceOverride(override))
	}
	fleet, err := reap.NewFleet(sc.Devices, opts...)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}

	s := &simulator{
		sc:         sc,
		fleet:      fleet,
		cfgs:       make([]reap.Config, sc.Devices),
		jitter:     make([]float64, sc.Devices),
		telemetryJ: energy.BLETransmission(sc.TelemetryBytes),
		actual:     make([]float64, sc.Devices),
		intensity:  make([]float64, sc.Devices),
		faults:     make([]synth.Fault, sc.Devices),
		records:    make([]StepRecord, 0, steps*sc.Devices),
	}
	if err := s.buildHarvest(sc, steps); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.buildStormMask(sc, steps)
	if sc.AgingPerDay > 0 && !sc.FlatConsumption {
		s.aging = make([]float64, sc.Days)
		for d := range s.aging {
			s.aging[d] = math.Pow(1+sc.AgingPerDay, float64(d))
		}
	}
	if err := initialChurnState(sc, fleet); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}

	batteryStarts := make([]float64, sc.Devices)
	for i := 0; i < sc.Devices; i++ {
		dev, err := fleet.Device(i)
		if err != nil {
			return nil, err
		}
		s.cfgs[i] = dev.Config()
		batteryStarts[i] = dev.Battery()
	}

	jitterRng := rand.New(rand.NewSource(subSeed(sc.Seed, 0, saltJitter)))
	for i := range s.jitter {
		s.jitter[i] = 1
		if sc.DeviceJitter > 0 {
			s.jitter[i] = 1 + sc.DeviceJitter*(2*jitterRng.Float64()-1)
		}
	}
	if sc.Forecast {
		s.ewma = make([]*forecast.EWMA, sc.Devices)
		for i := range s.ewma {
			if s.ewma[i], err = forecast.NewEWMA(sc.ForecastLambda); err != nil {
				return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
			}
		}
	}
	if !sc.FlatConsumption {
		s.timelines = make([]*synth.Timeline, sc.Devices)
		s.noiseRng = make([]*rand.Rand, sc.Devices)
		s.faultRng = make([]*rand.Rand, sc.Devices)
		for i := 0; i < sc.Devices; i++ {
			user := synth.NewUserProfile(i, sc.Seed)
			if s.timelines[i], err = synth.NewTimeline(user, 0, subSeed(sc.Seed, i, saltTimeline)); err != nil {
				return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
			}
			s.noiseRng[i] = rand.New(rand.NewSource(subSeed(sc.Seed, i, saltNoise)))
			s.faultRng[i] = rand.New(rand.NewSource(subSeed(sc.Seed, i, saltFault)))
		}
	}

	start := time.Now()
	if err := fleet.Run(ctx, steps, s, s, s.observe); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}
	elapsed := time.Since(start)

	batteryEnd := 0.0
	for i := 0; i < sc.Devices; i++ {
		dev, _ := fleet.Device(i)
		batteryEnd += dev.Battery()
	}

	res := &Result{
		Scenario: sc,
		Trace: &Trace{
			Scenario: sc.Name,
			Seed:     sc.Seed,
			Devices:  sc.Devices,
			Steps:    steps,
			Solver:   sc.Solver,
			Cached:   sc.Cache,
			Records:  s.records,
		},
		Configs: s.cfgs,
	}
	if stats, ok := fleet.CacheStats(); ok {
		res.CacheStats = &stats
	}
	if res.Summary, err = summarize(res, batteryStarts, batteryEnd, elapsed); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", sc.Name, err)
	}
	return res, nil
}
